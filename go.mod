module aim

go 1.22
