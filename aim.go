// Package aim is a from-scratch Go reproduction of "AIM: A practical
// approach to automated index management for SQL databases" (Yadav, Valluri,
// Zaït — ICDE 2023): a structure-driven secondary-index advisor together
// with the full substrate it needs — an embedded SQL engine (parser,
// clustered B+tree storage, cost-based optimizer with what-if hypothetical
// indexes, executor), a workload monitor, a shadow validation environment
// and a continuous regression detector — plus the baseline advisors (Extend,
// DTA, Drop, DB2Advis) the paper compares against and harnesses that
// regenerate every table and figure of its evaluation.
//
// This root package is a thin facade over the implementation packages; see
// the examples/ directory and README.md for end-to-end usage.
//
//	db := aim.NewDB("mydb")
//	db.MustExec(`CREATE TABLE t (id INT, a INT, PRIMARY KEY (id))`)
//	mon := aim.NewMonitor()
//	res, _ := db.Exec("SELECT a FROM t WHERE a = 1")
//	mon.Record("SELECT a FROM t WHERE a = 1", res.Stats)
//	adv := aim.NewAdvisor(db, aim.DefaultConfig())
//	rec, _ := adv.Recommend(mon)
package aim

import (
	"aim/internal/catalog"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/workload"
)

// DB is an embedded SQL database (catalog, storage, optimizer, executor).
type DB = engine.DB

// NewDB creates an empty database.
func NewDB(name string) *DB { return engine.New(name) }

// Index describes a secondary index definition.
type Index = catalog.Index

// Monitor aggregates per-normalized-query execution statistics (§III-C).
type Monitor = workload.Monitor

// NewMonitor returns an empty workload monitor.
func NewMonitor() *Monitor { return workload.NewMonitor() }

// Advisor is the AIM index advisor (Algorithm 1).
type Advisor = core.Advisor

// Config tunes the advisor (join parameter, budget, covering, ...).
type Config = core.Config

// Recommendation is the advisor output with explanations.
type Recommendation = core.Recommendation

// NewAdvisor builds an advisor over a database.
func NewAdvisor(db *DB, cfg Config) *Advisor { return core.NewAdvisor(db, cfg) }

// DefaultConfig mirrors the paper's deployment defaults.
func DefaultConfig() Config { return core.DefaultConfig() }

// Gate holds the λ₁/λ₂/λ₃ thresholds of the no-regression guarantee
// (Eq. 2-4).
type Gate = shadow.Gate

// DefaultGate returns mild validation thresholds.
func DefaultGate() Gate { return shadow.DefaultGate() }

// Validate materializes candidates on a clone, replays the workload and
// applies the gate — the MyShadow protocol (§VII-B).
func Validate(db *DB, candidates []*Index, mon *Monitor, gate Gate) (*shadow.Report, error) {
	return shadow.Validate(db, candidates, mon, gate)
}

// RegressionDetector watches per-query cpu_avg across windows (§VII-C).
type RegressionDetector = regression.Detector

// NewRegressionDetector returns a detector with the given relative
// cpu_avg-increase threshold.
func NewRegressionDetector(threshold float64) *RegressionDetector {
	return regression.NewDetector(threshold)
}
