GO ?= go

.PHONY: check vet build test race benchsmoke metricssmoke benchstorage benchstoragesmoke bench clean

# check is the tier-1 gate: everything here must pass before a change lands.
check: vet build race benchsmoke metricssmoke benchstoragesmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each advisor benchmark as a smoke test — exercises the
# full pipeline (candidates, cache, parallel costing) without the cost of a
# real benchmarking run. '^$$' skips unit tests; only benchmarks execute.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkAdvisor -benchtime 1x .

# Observability overhead gate: a fully instrumented advisor run must stay
# within 5% of an uninstrumented one. Wall-clock sensitive, so it is
# env-gated out of plain `go test ./...`.
metricssmoke:
	AIM_METRICS_SMOKE=1 $(GO) test -run TestMetricsOverheadSmoke ./internal/core/

# Storage fast-path benchmarks (bulk tree construction, shadow clones) vs
# their incremental-Put baselines at 100k rows; writes BENCH_storage.json at
# the repo root. Wall-clock sensitive, so the report run is env-gated.
benchstorage:
	AIM_BENCH_STORAGE=1 $(GO) test -run TestBenchStorageReport -v ./internal/storage/

# One iteration of each storage fast-path benchmark as a smoke test (no
# baselines, no report) — keeps `make check` fast while still exercising the
# bulk clone/build paths end to end.
benchstoragesmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkStoreClone$$|BenchmarkBuildIndex$$' -benchtime 1x ./internal/storage/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .

clean:
	$(GO) clean ./...
