GO ?= go

.PHONY: check vet build test race benchsmoke bench clean

# check is the tier-1 gate: everything here must pass before a change lands.
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each advisor benchmark as a smoke test — exercises the
# full pipeline (candidates, cache, parallel costing) without the cost of a
# real benchmarking run. '^$$' skips unit tests; only benchmarks execute.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkAdvisor -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .

clean:
	$(GO) clean ./...
