GO ?= go

# Per-target budget for the CI fuzz smoke (FUZZTIME=5s for a quick local run).
FUZZTIME ?= 30s

# Minimum total statement coverage `make cover` accepts. The repo measures
# 75.7% as of the aimd daemon change (the new server/loadgen packages and
# the aimd main are counted; the full fleet suite is env-gated out of plain
# `go test`); the floor sits just below to absorb counting noise while still
# catching real coverage regressions.
COVER_BASELINE ?= 75.2

.PHONY: check vet build test race benchsmoke metricssmoke telemetrysmoke benchstorage benchstoragesmoke benchexec benchexecsmoke bench fuzzsmoke faultsuite scenariosuite servesuite servesoak cover clean

# check is the tier-1 gate: everything here must pass before a change lands.
check: vet build race benchsmoke metricssmoke telemetrysmoke benchstoragesmoke benchexecsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each advisor benchmark as a smoke test — exercises the
# full pipeline (candidates, cache, parallel costing) without the cost of a
# real benchmarking run. '^$$' skips unit tests; only benchmarks execute.
benchsmoke:
	$(GO) test -run '^$$' -bench BenchmarkAdvisor -benchtime 1x .

# Observability + failpoint + audit overhead gate: a fully instrumented
# advisor run must stay within 5% of an uninstrumented one, an advisor run
# with failpoints armed-but-unmatched within 1% of one with injection off,
# and a run with the audit journal attached plus a live /metricsz scraper
# within 5% of a bare run. Wall-clock sensitive, so all three are env-gated
# out of plain `go test ./...`.
metricssmoke:
	AIM_METRICS_SMOKE=1 $(GO) test -run 'TestMetricsOverheadSmoke|TestFailpointOverheadSmoke|TestAuditOverheadSmoke' ./internal/core/
	AIM_METRICS_SMOKE=1 $(GO) test -run TestRecorderOverheadSmoke ./internal/server/

# Telemetry server smoke: boots a real loopback server and validates
# /metricsz (exposition format), /statusz (JSON sections), /healthz and
# /debug/pprof over actual TCP. Env-gated because it binds a socket.
telemetrysmoke:
	AIM_TELEMETRY_SMOKE=1 $(GO) test -run TestTelemetrySmoke -v ./internal/telemetry/

# Short budgeted runs of every native fuzz target: the bulk-load/merge/DNF
# equivalence properties and the failpoint spec parser. Go allows one -fuzz
# pattern per invocation, hence one line per target.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz 'FuzzBulkLoadEquivalence$$' -fuzztime $(FUZZTIME) ./internal/btree/
	$(GO) test -run '^$$' -fuzz 'FuzzCOWSnapshotEquivalence$$' -fuzztime $(FUZZTIME) ./internal/btree/
	$(GO) test -run '^$$' -fuzz 'FuzzMergeCandidatesPairwise$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzDNFSemanticEquivalence$$' -fuzztime $(FUZZTIME) ./internal/queryinfo/
	$(GO) test -run '^$$' -fuzz 'FuzzFailpointSpec$$' -fuzztime $(FUZZTIME) ./internal/failpoint/
	$(GO) test -run '^$$' -fuzz 'FuzzScenarioDeterminism$$' -fuzztime $(FUZZTIME) ./internal/scenarios/
	$(GO) test -run '^$$' -fuzz 'FuzzExecScanOracle$$' -fuzztime $(FUZZTIME) ./internal/exec/
	$(GO) test -run '^$$' -fuzz 'FuzzWireFrame$$' -fuzztime $(FUZZTIME) ./internal/server/

# The fault-injection acceptance sweep: 1000 tuning cycles at fault rates
# {1%, 5%, 20%} with a fixed seed, asserting no ungated adoptions, no
# partial-index leaks and convergence to the fault-free recommendation set.
faultsuite:
	AIM_FAULT_SUITE=1 $(GO) test -run TestTuningLoopUnderFaults -v ./internal/experiments/

# The adversarial-scenario acceptance sweep: five seeded workload scenarios
# (diurnal mix shifts, flash crowds, mid-stream migration, drifting range
# predicates, write-amplification traps) run at their full cycle counts,
# asserting bounded adopt/revert flips, bounded time-to-revert after each
# trap, zero ungated adoptions and a reconstructable audit lineage for every
# adopted-then-reverted index.
scenariosuite:
	AIM_SCENARIO_SUITE=1 $(GO) test -run 'TestTuningLoopUnderScenarios|TestScenarioExplainGoldenDrift' -v ./internal/experiments/

# Live-serving acceptance suite: a real aimd server on loopback driven by a
# 16-client seeded fleet over TCP under the race detector, with the advisor
# worker sweep {1,2,4}. Asserts zero statement errors, a clean drain, zero
# ungated adoptions, complete adoption lineage, and byte-identical verdicts,
# journals and adopted index sets across worker counts AND against the
# offline experiments.Loop replay of the same statement stream.
servesuite:
	AIM_SERVE_SUITE=1 $(GO) test -race -run TestServeSuite -v ./internal/experiments/

# Nightly soak variant: a longer fleet run (40 tuned rounds) that leaves the
# normalized decision journal behind as aimd-soak.jsonl and the flight
# recorder's per-round time-series ring as aimd-soak-timeseries.json for the
# artifact upload.
servesoak:
	AIM_SERVE_SOAK=1 AIM_SERVE_JOURNAL=$(CURDIR)/aimd-soak.jsonl AIM_SERVE_TIMESERIES=$(CURDIR)/aimd-soak-timeseries.json $(GO) test -race -run TestServeSuite -v ./internal/experiments/

# Coverage gate: full-repo statement coverage must not drop below
# COVER_BASELINE. Writes coverage.out + coverage.html at the repo root.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -html=coverage.out -o coverage.html
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v f="$(COVER_BASELINE)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || \
	{ echo "coverage $$total% fell below the $(COVER_BASELINE)% floor"; exit 1; }

# Storage fast-path benchmarks (bulk tree construction, shadow clones) vs
# their incremental-Put baselines at 100k rows; writes BENCH_storage.json at
# the repo root. Wall-clock sensitive, so the report run is env-gated.
benchstorage:
	AIM_BENCH_STORAGE=1 $(GO) test -run TestBenchStorageReport -v ./internal/storage/

# One iteration of each storage fast-path benchmark as a smoke test (no
# baselines, no report) — keeps `make check` fast while still exercising the
# bulk clone/build paths end to end.
benchstoragesmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkStoreClone$$|BenchmarkBuildIndex$$' -benchtime 1x ./internal/storage/

# Replay/serving executor benchmark: row engine vs vectorized batch engine on
# a 100k-row products workload, with a statement-level parity gate before any
# timing. Writes BENCH_exec.json at the repo root and fails under 2x speedup.
# Wall-clock sensitive, so the report run is env-gated.
benchexec:
	AIM_BENCH_EXEC=1 $(GO) test -run TestBenchExecReport -v ./internal/experiments/

# Scaled-down exec benchmark (2k rows, 8+2 statements) — runs the full
# parity-gate + measure pipeline in a few seconds for `make check`.
benchexecsmoke:
	$(GO) test -run TestExecBenchSmoke -v ./internal/experiments/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .

clean:
	$(GO) clean ./...
