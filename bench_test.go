package aim_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI), plus ablation benchmarks for the design choices called
// out in DESIGN.md. Experiment sizes are reduced so `go test -bench=.`
// completes in minutes; cmd/aimbench runs the full-size versions and prints
// the actual rows/series.
//
// Reported custom metrics carry the reproduction targets, e.g.
// `jaccard`, `rel_cost_*`, `optcalls_*`, `tput_gain_%`.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"aim/internal/baselines"
	"aim/internal/core"
	"aim/internal/experiments"
	"aim/internal/workload"
	"aim/internal/workloads/job"
	"aim/internal/workloads/products"
	"aim/internal/workloads/tpch"
)

func benchSpec(name string) products.Spec {
	return products.Spec{Name: name, Tables: 10, JoinQueries: 12, Type: products.Balanced,
		TargetDBA: 26, RowsPerTable: 900, Seed: 9}
}

// BenchmarkTable2ProductsDBAvsAIM regenerates Table II on a reduced product.
func BenchmarkTable2ProductsDBAvsAIM(b *testing.B) {
	opts := experiments.DefaultTable2Options()
	opts.WorkloadStatements = 400
	var row *experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.RunTable2Product(benchSpec("Product bench"), opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Jaccard, "jaccard")
	b.ReportMetric(float64(row.AIMIndexCount), "aim_indexes")
	b.ReportMetric(float64(row.DBAIndexCount), "dba_indexes")
	b.ReportMetric(float64(row.AIMBytes)/float64(row.DBABytes), "size_ratio")
}

// fig3Bench runs the Fig. 3 convergence protocol for one product letter.
func fig3Bench(b *testing.B, name string) {
	opts := experiments.DefaultFig3Options()
	opts.WarmTicks, opts.ObserveTicks, opts.RecoverTicks = 3, 4, 8
	opts.QueriesPerTick = 30
	spec := benchSpec(name)
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig3(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Test.AvgCPU(3), "final_cpu_%")
	b.ReportMetric(res.Control.AvgCPU(3), "control_cpu_%")
	b.ReportMetric(res.Test.AvgThroughput(3), "final_tput")
	b.ReportMetric(float64(len(res.IndexTicks)), "indexes_built")
}

// BenchmarkFig3ConvergenceProductA..C regenerate Figures 3a-3f (reduced).
func BenchmarkFig3ConvergenceProductA(b *testing.B) { fig3Bench(b, "Product A") }
func BenchmarkFig3ConvergenceProductB(b *testing.B) { fig3Bench(b, "Product B") }
func BenchmarkFig3ConvergenceProductC(b *testing.B) { fig3Bench(b, "Product C") }

// fig4Bench sweeps one benchmark and reports per-algorithm cost & calls.
func fig4Bench(b *testing.B, bench string) {
	opts := experiments.DefaultFig4Options(bench)
	opts.Scale = 0.05
	opts.BudgetFractions = []float64{0.5, 1.0}
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig4(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		if p.BudgetBytes == 0 {
			continue
		}
	}
	// Report the full-budget point per algorithm.
	last := map[string]experiments.Fig4Point{}
	for _, p := range res.Points {
		last[p.Algorithm] = p
	}
	for algo, p := range last {
		b.ReportMetric(p.RelativeCost, "rel_cost_"+algo)
		b.ReportMetric(float64(p.OptimizerCalls), "optcalls_"+algo)
		b.ReportMetric(p.Runtime.Seconds()*1000, "runtime_ms_"+algo)
	}
}

// BenchmarkFig4TPCHCostAndRuntime regenerates Figures 4a/4b (reduced).
func BenchmarkFig4TPCHCostAndRuntime(b *testing.B) { fig4Bench(b, "tpch") }

// BenchmarkFig4JOBCostAndRuntime regenerates Figures 4c/4d (reduced).
func BenchmarkFig4JOBCostAndRuntime(b *testing.B) { fig4Bench(b, "job") }

// BenchmarkFig5PerQueryCosts regenerates Figure 5 (per-query TPC-H costs).
func BenchmarkFig5PerQueryCosts(b *testing.B) {
	opts := experiments.DefaultFig5Options()
	opts.Scale = 0.05
	var rows []*experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig5(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	affected := 0
	var aimSum, unindexedSum float64
	for _, r := range rows {
		if r.Affected {
			affected++
		}
		aimSum += r.Costs["AIM"]
		unindexedSum += r.Unindexed
	}
	b.ReportMetric(float64(affected), "affected_queries")
	b.ReportMetric(aimSum/unindexedSum, "aim_rel_cost")
}

// BenchmarkFig6JoinParameter regenerates Figure 6 (reduced).
func BenchmarkFig6JoinParameter(b *testing.B) {
	opts := experiments.DefaultFig6Options()
	opts.Rows = 1500
	opts.PhaseTicks = 3
	opts.QueriesPerTick = 15
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFig6(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ThroughputGainOverGIA()*100, "tput_gain_vs_gia_%")
	b.ReportMetric(res.CPUReductionOverGIA()*100, "cpu_saving_vs_gia_%")
	b.ReportMetric(res.J2GainOverJ1()*100, "j2_vs_j1_%")
	b.ReportMetric(res.J3GainOverJ2()*100, "j3_vs_j2_%")
}

// BenchmarkContinuousTuning regenerates the §VI-D study (reduced).
func BenchmarkContinuousTuning(b *testing.B) {
	opts := experiments.DefaultContinuousOptions()
	opts.Rows = 2000
	opts.WindowStatements = 120
	var res *experiments.ContinuousResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunContinuous(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CPUSavingFraction*100, "cpu_saving_%")
	b.ReportMetric(float64(res.ImprovedQueries), "improved_queries")
	b.ReportMetric(float64(res.OrderOfMagnitude), "10x_improved")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationPartialOrderMerging compares candidate counts and final
// workload cost with merging ON vs OFF.
func BenchmarkAblationPartialOrderMerging(b *testing.B) {
	db, err := tpch.Build(0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	mon := workload.NewMonitor()
	for _, q := range tpch.Queries(11) {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		mon.Record(q, res.Stats)
	}
	queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})

	run := func(disable bool) (*core.Recommendation, float64) {
		cfg := core.DefaultConfig()
		cfg.MaxWidth = 4
		cfg.Selection.MinExecutions = 1
		cfg.DisableMerging = disable
		adv := core.NewAdvisor(db, cfg)
		rec, err := adv.RecommendQueries(queries)
		if err != nil {
			b.Fatal(err)
		}
		return rec, baselines.WorkloadCost(db, queries, rec.Create)
	}
	var onRec, offRec *core.Recommendation
	var onCost, offCost float64
	for i := 0; i < b.N; i++ {
		onRec, onCost = run(false)
		offRec, offCost = run(true)
	}
	b.ReportMetric(float64(onRec.PartialOrders), "pos_merged")
	b.ReportMetric(float64(offRec.PartialOrders), "pos_unmerged")
	b.ReportMetric(offCost/onCost, "cost_ratio_off_vs_on")
}

// BenchmarkAblationDatalessRangeColumn compares the dataless-index range
// column probe against taking an arbitrary range column.
func BenchmarkAblationDatalessRangeColumn(b *testing.B) {
	db, err := tpch.Build(0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	mon := workload.NewMonitor()
	for _, q := range tpch.Queries(11) {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		mon.Record(q, res.Stats)
	}
	queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})
	run := func(arbitrary bool) float64 {
		cfg := core.DefaultConfig()
		cfg.MaxWidth = 4
		cfg.Selection.MinExecutions = 1
		cfg.ArbitraryRangeColumn = arbitrary
		adv := core.NewAdvisor(db, cfg)
		rec, err := adv.RecommendQueries(queries)
		if err != nil {
			b.Fatal(err)
		}
		return baselines.WorkloadCost(db, queries, rec.Create)
	}
	var probed, arbitrary float64
	for i := 0; i < b.N; i++ {
		probed = run(false)
		arbitrary = run(true)
	}
	b.ReportMetric(arbitrary/probed, "cost_ratio_arbitrary_vs_probed")
}

// BenchmarkAblationCoveringMode compares covering ON vs OFF on a seek-heavy
// workload.
func BenchmarkAblationCoveringMode(b *testing.B) {
	run := func(covering bool) float64 {
		spec := benchSpec("Product cov")
		spec.Type = products.ReadHeavy
		p, err := products.Build(spec)
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		mon := workload.NewMonitor()
		for i := 0; i < 300; i++ {
			sql := p.SampleStatement(r)
			res, err := p.DB.Exec(sql)
			if err != nil {
				b.Fatal(err)
			}
			mon.Record(sql, res.Stats)
		}
		cfg := core.DefaultConfig()
		cfg.EnableCovering = covering
		cfg.SeekThreshold = 10
		cfg.Selection.MinExecutions = 1
		adv := core.NewAdvisor(p.DB, cfg)
		rec, err := adv.Recommend(mon)
		if err != nil {
			b.Fatal(err)
		}
		return baselines.WorkloadCost(p.DB, mon.Representative(workload.SelectionConfig{MinExecutions: 1}), rec.Create)
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = run(true)
		off = run(false)
	}
	b.ReportMetric(off/on, "cost_ratio_noncovering_vs_covering")
}

// BenchmarkAblationJoinPowerset sweeps the join parameter j = 0..3 on a
// star join and reports how the candidate pool grows with j.
func BenchmarkAblationJoinPowerset(b *testing.B) {
	db, err := job.Build(0.05, 3)
	if err != nil {
		b.Fatal(err)
	}
	mon := workload.NewMonitor()
	for _, q := range job.Queries(3) {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		mon.Record(q, res.Stats)
	}
	queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})
	counts := map[int]int{}
	for i := 0; i < b.N; i++ {
		for j := 0; j <= 3; j++ {
			cfg := core.DefaultConfig()
			cfg.J = j
			cfg.Selection.MinExecutions = 1
			adv := core.NewAdvisor(db, cfg)
			rec, err := adv.RecommendQueries(queries)
			if err != nil {
				b.Fatal(err)
			}
			counts[j] = rec.CandidateCount
		}
	}
	for j := 0; j <= 3; j++ {
		b.ReportMetric(float64(counts[j]), fmt.Sprintf("candidates_j%d", j))
	}
}

// BenchmarkAblationKnapsackCriterion compares utility-per-byte against raw
// utility under a tight budget.
func BenchmarkAblationKnapsackCriterion(b *testing.B) {
	db, err := tpch.Build(0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	mon := workload.NewMonitor()
	for _, q := range tpch.Queries(11) {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		mon.Record(q, res.Stats)
	}
	queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})
	// Budget = half of the unconstrained recommendation.
	cfg := core.DefaultConfig()
	cfg.MaxWidth = 4
	cfg.Selection.MinExecutions = 1
	adv := core.NewAdvisor(db, cfg)
	full, err := adv.RecommendQueries(queries)
	if err != nil {
		b.Fatal(err)
	}
	budget := full.TotalCreateBytes() / 2
	run := func(byUtility bool) float64 {
		cfg := core.DefaultConfig()
		cfg.MaxWidth = 4
		cfg.Selection.MinExecutions = 1
		cfg.BudgetBytes = budget
		cfg.RankByUtilityOnly = byUtility
		adv := core.NewAdvisor(db, cfg)
		rec, err := adv.RecommendQueries(queries)
		if err != nil {
			b.Fatal(err)
		}
		return baselines.WorkloadCost(db, queries, rec.Create)
	}
	var perByte, raw float64
	for i := 0; i < b.N; i++ {
		perByte = run(false)
		raw = run(true)
	}
	b.ReportMetric(raw/perByte, "cost_ratio_utility_vs_perbyte")
}

// BenchmarkAdvisorRuntimeScaling measures AIM's advisor runtime as the
// workload grows — the "cheap and stable runtime" claim of §VI-B.
func BenchmarkAdvisorRuntimeScaling(b *testing.B) {
	for _, n := range []int{5, 10, 22} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			db, err := tpch.Build(0.05, 11)
			if err != nil {
				b.Fatal(err)
			}
			mon := workload.NewMonitor()
			for _, q := range tpch.Queries(11)[:n] {
				res, err := db.Exec(q)
				if err != nil {
					b.Fatal(err)
				}
				mon.Record(q, res.Stats)
			}
			queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})
			cfg := core.DefaultConfig()
			cfg.Selection.MinExecutions = 1
			adv := core.NewAdvisor(db, cfg)
			var rec *core.Recommendation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rec, err = adv.RecommendQueries(queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rec.Cache.HitRate()*100, "cache_hit_%")
		})
	}
}

// BenchmarkAdvisorParallelism measures the parallel what-if fan-out at
// pool sizes 1 and GOMAXPROCS. The cost cache is dropped before every run,
// so the time measured is genuine plan computation, not memo replay; the
// recommendation is bit-identical across pool sizes (see the golden
// determinism tests).
func BenchmarkAdvisorParallelism(b *testing.B) {
	db, err := tpch.Build(0.05, 11)
	if err != nil {
		b.Fatal(err)
	}
	mon := workload.NewMonitor()
	for _, q := range tpch.Queries(11) {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		mon.Record(q, res.Stats)
	}
	queries := mon.Representative(workload.SelectionConfig{MinExecutions: 1})
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Selection.MinExecutions = 1
			cfg.Parallelism = workers
			adv := core.NewAdvisor(db, cfg)
			var rec *core.Recommendation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.WhatIf.Invalidate()
				var err error
				if rec, err = adv.RecommendQueries(queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rec.Cache.HitRate()*100, "cache_hit_%")
		})
	}
}
