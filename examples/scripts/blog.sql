-- A small blogging schema for `aimctl -script examples/scripts/blog.sql`.
-- Everything before the "-- workload" marker loads schema and data; the
-- statements after it are replayed (25x each) into the workload monitor.
-- Note: with only a handful of rows, AIM correctly concludes that no
-- secondary index pays for itself — declining is the right answer here.
-- Use `aimctl -demo` for a dataset large enough to earn indexes.
CREATE TABLE posts (id INT, author_id INT, category VARCHAR(12), published_day INT, views INT, PRIMARY KEY (id));
CREATE TABLE comments (id INT, post_id INT, user_id INT, day INT, PRIMARY KEY (id));
INSERT INTO posts VALUES (1, 1, 'go', 100, 250);
INSERT INTO posts VALUES (2, 1, 'db', 120, 90);
INSERT INTO posts VALUES (3, 2, 'go', 130, 1200);
INSERT INTO posts VALUES (4, 3, 'ml', 140, 40);
INSERT INTO posts VALUES (5, 2, 'db', 160, 770);
INSERT INTO posts VALUES (6, 4, 'go', 170, 15);
INSERT INTO posts VALUES (7, 4, 'db', 180, 640);
INSERT INTO posts VALUES (8, 5, 'ml', 190, 310);
INSERT INTO comments VALUES (1, 3, 9, 131);
INSERT INTO comments VALUES (2, 3, 8, 133);
INSERT INTO comments VALUES (3, 5, 9, 161);
INSERT INTO comments VALUES (4, 7, 7, 181);
INSERT INTO comments VALUES (5, 8, 6, 195);
-- workload 25
SELECT id, views FROM posts WHERE category = 'go' AND published_day > 120;
SELECT p.id FROM posts p JOIN comments c ON c.post_id = p.id WHERE c.user_id = 9;
SELECT category, COUNT(*), SUM(views) FROM posts GROUP BY category;
UPDATE posts SET views = views + 1 WHERE id = 3;
