// Quickstart: create a database, run a workload, let AIM recommend indexes,
// validate them on a shadow clone, apply, and observe the speedup.
package main

import (
	"fmt"
	"log"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/shadow"
	"aim/internal/workload"
)

func main() {
	// 1. A database with a table and some data.
	db := engine.New("quickstart")
	db.MustExec(`CREATE TABLE students (id INT, name VARCHAR(24), score INT, class INT, PRIMARY KEY (id))`)
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO students VALUES (%d, 'student%d', %d, %d)",
			i, i, i%1000, i%25))
	}
	db.Analyze()

	// 2. Run the workload while the monitor records execution statistics.
	mon := workload.NewMonitor()
	queries := []string{
		"SELECT id, name FROM students WHERE score > 990",
		"SELECT name FROM students WHERE class = 7 AND score > 500",
		"SELECT class, COUNT(*), AVG(score) FROM students WHERE score > 900 GROUP BY class",
	}
	var beforeCPU float64
	for round := 0; round < 20; round++ {
		for _, q := range queries {
			res, err := db.Exec(q)
			if err != nil {
				log.Fatal(err)
			}
			beforeCPU += res.Stats.CPUSeconds()
			if err := mon.Record(q, res.Stats); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("before tuning: %.4fs cpu for %d statements\n", beforeCPU, 20*len(queries))

	// 3. Ask AIM for a recommendation.
	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	adv := core.NewAdvisor(db, cfg)
	rec, err := adv.Recommend(mon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAIM recommends %d indexes (%d optimizer calls in %s):\n",
		len(rec.Create), rec.OptimizerCalls, rec.Elapsed.Round(1000000))
	for _, e := range rec.Explanations {
		fmt.Println("  " + e.String())
	}

	// 4. Validate on a shadow clone (the no-regression gate), then apply.
	report, err := shadow.Validate(db, rec.Create, mon, shadow.DefaultGate())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshadow gate: %s\n", report.Reason)
	if !report.Accepted {
		return
	}
	if _, err := adv.Apply(rec); err != nil {
		log.Fatal(err)
	}

	// 5. Re-run the workload and compare.
	var afterCPU float64
	for round := 0; round < 20; round++ {
		for _, q := range queries {
			res, err := db.Exec(q)
			if err != nil {
				log.Fatal(err)
			}
			afterCPU += res.Stats.CPUSeconds()
		}
	}
	fmt.Printf("\nafter tuning:  %.4fs cpu (%.1fx faster)\n", afterCPU, beforeCPU/afterCPU)
}
