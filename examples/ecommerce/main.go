// Ecommerce: continuous index tuning under a workload shift. An online shop
// runs steadily until a "code push" introduces new query patterns; AIM's
// periodic runs detect the new inefficiencies, the shadow gate validates
// the fix, and the continuous regression detector watches every window.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/workload"
)

func main() {
	db := engine.New("shop")
	db.MustExec(`CREATE TABLE products (id INT, category INT, price FLOAT, stock INT, vendor INT, PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE orders (id INT, product_id INT, user_id INT, day INT, qty INT, PRIMARY KEY (id))`)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO products VALUES (%d, %d, %.2f, %d, %d)",
			i, r.Intn(40), 1+r.Float64()*500, r.Intn(1000), r.Intn(100)))
	}
	for i := 0; i < 9000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %d, %d)",
			i, r.Intn(3000), r.Intn(800), r.Intn(365), 1+r.Intn(5)))
	}
	db.Analyze()

	steady := func(r *rand.Rand) string {
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("SELECT id, price FROM products WHERE category = %d AND price < %d", r.Intn(40), 50+r.Intn(400))
		case 1:
			return fmt.Sprintf("SELECT qty FROM orders WHERE user_id = %d", r.Intn(800))
		default:
			return fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, %d, %d, 1)", 100000+r.Intn(1<<28), r.Intn(3000), r.Intn(800), r.Intn(365))
		}
	}
	// The code push adds a vendor dashboard: joins + day ranges.
	pushed := func(r *rand.Rand) string {
		if r.Intn(2) == 0 {
			return fmt.Sprintf(`SELECT p.id, o.qty FROM products p JOIN orders o ON o.product_id = p.id
				WHERE p.vendor = %d AND o.day > %d`, r.Intn(100), 250+r.Intn(100))
		}
		return fmt.Sprintf("SELECT id FROM products WHERE vendor = %d AND stock < %d", r.Intn(100), r.Intn(200))
	}

	window := func(sample func(*rand.Rand) string, n int) (*workload.Monitor, float64) {
		mon := workload.NewMonitor()
		cpu := 0.0
		for i := 0; i < n; i++ {
			sql := sample(r)
			res, err := db.Exec(sql)
			if err != nil {
				log.Fatal(err)
			}
			mon.Record(sql, res.Stats)
			cpu += res.Stats.CPUSeconds()
		}
		return mon, cpu
	}

	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 2
	adv := core.NewAdvisor(db, cfg)
	detector := regression.NewDetector(0.5)

	tune := func(mon *workload.Monitor, label string) {
		rec, err := adv.Recommend(mon)
		if err != nil {
			log.Fatal(err)
		}
		if len(rec.Create) == 0 && len(rec.Drop) == 0 {
			fmt.Printf("[%s] AIM: physical design already adequate\n", label)
			return
		}
		report, err := shadow.Validate(db, rec.Create, mon, shadow.DefaultGate())
		if err != nil {
			log.Fatal(err)
		}
		if len(rec.Create) > 0 && !report.Accepted {
			fmt.Printf("[%s] AIM: recommendation rejected by shadow gate (%s)\n", label, report.Reason)
			return
		}
		if _, err := adv.Apply(rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] AIM applied %d new indexes, dropped %d:\n", label, len(rec.Create), len(rec.Drop))
		for _, e := range rec.Explanations {
			fmt.Println("    " + e.String())
		}
	}

	// Window 1: steady state, bootstrap tuning.
	mon, cpu := window(steady, 300)
	fmt.Printf("[w1] steady workload: %.4fs cpu\n", cpu)
	tune(mon, "w1")
	detector.Observe(db, mon)

	// Window 2: tuned steady state.
	mon, cpu = window(steady, 300)
	fmt.Printf("[w2] tuned steady state: %.4fs cpu\n", cpu)
	detector.Observe(db, mon)

	// Window 3: the code push lands — mixed workload, new queries slow.
	mixed := func(r *rand.Rand) string {
		if r.Intn(2) == 0 {
			return steady(r)
		}
		return pushed(r)
	}
	mon, cpu = window(mixed, 300)
	fmt.Printf("[w3] after code push: %.4fs cpu (developers forgot their indexes!)\n", cpu)
	if regs := detector.Observe(db, mon); len(regs) > 0 {
		for _, reg := range regs {
			fmt.Println("    regression detector: " + reg.String())
		}
	}
	tune(mon, "w3")

	// Window 4: re-tuned mixed workload.
	_, cpu = window(mixed, 300)
	fmt.Printf("[w4] re-tuned: %.4fs cpu\n", cpu)
}
