// Joinheavy: the join parameter study in miniature. A composite-key join
// workload is tuned with increasing j; watch which candidate indexes appear
// at each level and how query cost responds (§IV-C / Fig. 6).
package main

import (
	"fmt"
	"log"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/workload"
)

func main() {
	db := engine.New("joins")
	db.MustExec(`CREATE TABLE facts (id INT, k1 INT, k2 INT, m1 INT, p1 INT, val INT, PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE d1 (id INT, k1 INT, k2 INT, region INT, PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE d2 (id INT, m1 INT, carrier INT, PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE d3 (id INT, p1 INT, tier INT, PRIMARY KEY (id))`)
	for i := 0; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO facts VALUES (%d, %d, %d, %d, %d, %d)",
			i, i%13, (i/13)%13, (i/7)%13, (i/11)%13, i))
	}
	for i := 0; i < 600; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO d1 VALUES (%d, %d, %d, %d)", i, i%13, (i/3)%13, i%10))
		db.MustExec(fmt.Sprintf("INSERT INTO d2 VALUES (%d, %d, %d)", i, i%13, i%8))
		db.MustExec(fmt.Sprintf("INSERT INTO d3 VALUES (%d, %d, %d)", i, i%13, i%6))
	}
	db.Analyze()

	// facts joins three dimensions — single columns each, so only a
	// coordinated multi-column index on facts serves all of them, and that
	// candidate only exists once j covers enough joined tables.
	q := `SELECT COUNT(*) FROM d1 JOIN facts f ON f.k1 = d1.k1 AND f.k2 = d1.k2
		JOIN d2 ON d2.m1 = f.m1 JOIN d3 ON d3.p1 = f.p1
		WHERE d1.region = 3 AND d2.carrier = 2 AND d3.tier = 1`

	mon := workload.NewMonitor()
	res, err := db.Exec(q)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mon.Record(q, res.Stats)
	}
	fmt.Printf("query cpu before tuning: %.5fs\n\n", res.Stats.CPUSeconds())

	for j := 0; j <= 3; j++ {
		cfg := core.DefaultConfig()
		cfg.J = j
		cfg.Selection.MinExecutions = 1
		adv := core.NewAdvisor(db.Clone(fmt.Sprintf("j%d", j)), cfg)
		rec, err := adv.Recommend(mon)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("j=%d: %d candidates, %d selected\n", j, rec.CandidateCount, len(rec.Create))
		for _, ix := range rec.Create {
			fmt.Printf("    %s\n", ix)
		}
		if _, err := adv.Apply(rec); err != nil {
			log.Fatal(err)
		}
		after, err := adv.DB.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    query cpu: %.5fs (plan: %v)\n\n", after.Stats.CPUSeconds(), after.PlanDesc)
	}
}
