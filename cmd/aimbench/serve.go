package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"aim/internal/experiments"
)

// runServe drives the live-serving experiment: a real aimd server on
// loopback with a seeded concurrent client fleet, swept across advisor
// worker counts, cross-checked against the offline batch replay of the
// same statement stream (see experiments.RunServeSuite).
func runServe(fast bool, workers int) error {
	opts := experiments.DefaultServeSuiteOptions()
	if fast {
		opts.Clients = 4
		opts.Rounds = 3
		opts.PerRound = 12
		opts.Rows = 600
	}
	if workers > 0 {
		opts.Parallelism = []int{workers}
	}
	res, err := experiments.RunServeSuite(opts)
	if err != nil {
		return err
	}
	fmt.Printf("reference index set (offline replay): %s\n", strings.Join(res.ReferenceKeys, ", "))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Workers\tStmts\tRows\tAdoptions\tReverted\tDrain(s)\tJournal")
	for _, run := range res.Runs {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.3f\t%d records\n",
			run.Workers, run.Statements, run.Rows, run.Adoptions, run.Reverted, run.DrainSeconds, len(run.Journal))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("verdicts (identical across workers and vs offline replay):")
	for _, line := range res.ReferenceVerdicts {
		fmt.Println("  " + line)
	}
	return nil
}
