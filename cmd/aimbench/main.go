// Command aimbench regenerates the paper's tables and figures on the
// embedded engine and prints their rows/series.
//
// Usage:
//
//	aimbench -exp table2              # Table II (DBA vs AIM per product)
//	aimbench -exp fig3  -product C    # CPU%/throughput convergence series
//	aimbench -exp fig4  -bench tpch   # cost & runtime vs budget sweep
//	aimbench -exp fig4  -bench job
//	aimbench -exp fig5                # per-query TPC-H costs at fixed budget
//	aimbench -exp fig6                # join-parameter study vs greedy
//	aimbench -exp continuous          # workload-shift continuous tuning
//	aimbench -exp exec                # row vs vectorized executor replay bench
//	aimbench -exp scenario -scenario drift   # one adversarial scenario
//	aimbench -exp scenario -scenario all     # the whole adversarial suite
//	aimbench -exp serve               # live aimd fleet vs offline replay
//	aimbench -exp all                 # everything (slow)
//
// -fast shrinks datasets for quick smoke runs. -metrics dumps the
// observability registry (counters, gauges, what-if latency percentiles,
// per-phase span timings) after each experiment; -trace-out writes every
// span as a JSON line for offline flame-graph analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"

	"aim/internal/audit"
	"aim/internal/experiments"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/pool"
	"aim/internal/scenarios"
	"aim/internal/storage"
	"aim/internal/workloads/products"
)

// obsReg is non-nil when -metrics or -trace-out is set; the run helpers
// thread it into every experiment's options.
var obsReg *obs.Registry

// contAuditOut/contTelemetryAddr carry -audit-out and -telemetry-addr into
// the continuous experiment (the only one with a decision loop to observe).
var contAuditOut, contTelemetryAddr string

func main() {
	exp := flag.String("exp", "all", "experiment: table2|fig3|fig4|fig5|fig6|continuous|exec|scenario|serve|all")
	bench := flag.String("bench", "tpch", "benchmark for fig4: tpch|job")
	scenario := flag.String("scenario", "all", "adversarial scenario for -exp scenario: "+strings.Join(scenarios.Names(), "|")+"|all")
	product := flag.String("product", "C", "product for fig3: A..G")
	fast := flag.Bool("fast", false, "reduced dataset sizes")
	workers := flag.Int("workers", 0, "cap what-if costing parallelism (0 = all cores)")
	metrics := flag.Bool("metrics", false, "print the metrics registry after each experiment")
	traceOut := flag.String("trace-out", "", "write advisor spans as JSON lines to this file")
	failpoints := flag.String("failpoints", "", `fault spec, e.g. "shadow.clone=err(0.05)" (or env `+failpoint.EnvVar+")")
	fpSeed := flag.Int64("failpoint-seed", 1, "seed for failpoint firing schedules")
	auditOut := flag.String("audit-out", "", "write the continuous experiment's decision journal (JSON lines) to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metricsz /statusz /healthz /debug/pprof on this address during the continuous experiment")
	flag.Parse()
	contAuditOut, contTelemetryAddr = *auditOut, *telemetryAddr

	if _, err := failpoint.Setup(*failpoints, *fpSeed); err != nil {
		fmt.Fprintf(os.Stderr, "aimbench: %v\n", err)
		os.Exit(1)
	}

	// The experiments construct their advisor configs internally with the
	// default Parallelism (0 = GOMAXPROCS), so bounding GOMAXPROCS bounds
	// every worker pool in the run.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	// -telemetry-addr implies a registry: an attached scraper expects
	// /metricsz to carry the run's counters, not an empty exposition.
	if *metrics || *traceOut != "" || *telemetryAddr != "" {
		obsReg = obs.NewRegistry()
		pool.Instrument(obsReg)
		storage.Instrument(obsReg)
		failpoint.Instrument(obsReg)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			obsReg.SetTraceWriter(f)
		}
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "aimbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *metrics {
			fmt.Printf("\n--- metrics (%s) ---\n", name)
			obsReg.WriteTo(os.Stdout)
		}
	}

	switch *exp {
	case "table2":
		run("Table II", func() error { return runTable2(*fast) })
	case "fig3":
		run("Figure 3", func() error { return runFig3(*product, *fast) })
	case "fig4":
		run("Figure 4 ("+*bench+")", func() error { return runFig4(*bench, *fast) })
	case "fig5":
		run("Figure 5", func() error { return runFig5(*fast) })
	case "fig6":
		run("Figure 6", func() error { return runFig6(*fast) })
	case "continuous":
		run("Continuous tuning (§VI-D)", func() error { return runContinuous(*fast) })
	case "exec":
		run("Executor replay bench", func() error { return runExecBench(*fast) })
	case "scenario":
		run("Adversarial scenarios", func() error { return runScenarios(*scenario, *fast) })
	case "serve":
		run("Live serving (aimd fleet)", func() error { return runServe(*fast, *workers) })
	case "all":
		run("Table II", func() error { return runTable2(*fast) })
		run("Figure 3", func() error { return runFig3(*product, *fast) })
		run("Figure 4 (tpch)", func() error { return runFig4("tpch", *fast) })
		run("Figure 4 (job)", func() error { return runFig4("job", *fast) })
		run("Figure 5", func() error { return runFig5(*fast) })
		run("Figure 6", func() error { return runFig6(*fast) })
		run("Continuous tuning (§VI-D)", func() error { return runContinuous(*fast) })
	default:
		fmt.Fprintf(os.Stderr, "aimbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func runTable2(fast bool) error {
	opts := experiments.DefaultTable2Options()
	opts.Obs = obsReg
	specs := products.Catalog
	if fast {
		opts.WorkloadStatements = 300
		scaled := make([]products.Spec, len(specs))
		for i, s := range specs {
			s.Tables = min(s.Tables, 20)
			s.JoinQueries = min(s.JoinQueries, 30)
			s.TargetDBA = min(s.TargetDBA, 40)
			s.RowsPerTable = 150
			scaled[i] = s
		}
		specs = scaled
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Product\tTables\tJoinQ\tType\tDBA#\tAIM#\tDBA size\tAIM size\tJaccard")
	for _, spec := range specs {
		row, err := experiments.RunTable2Product(spec, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%s\t%s\t%.2f\n",
			row.Product, row.Tables, row.JoinQueries, row.WorkloadType,
			row.DBAIndexCount, row.AIMIndexCount,
			sizeStr(row.DBABytes), sizeStr(row.AIMBytes), row.Jaccard)
		w.Flush()
	}
	return nil
}

func runFig3(product string, fast bool) error {
	spec, ok := products.SpecByName(product)
	if !ok {
		return fmt.Errorf("unknown product %q", product)
	}
	opts := experiments.DefaultFig3Options()
	opts.Obs = obsReg
	if fast {
		spec.Tables = min(spec.Tables, 15)
		spec.JoinQueries = min(spec.JoinQueries, 20)
		spec.TargetDBA = min(spec.TargetDBA, 30)
		spec.RowsPerTable = 150
		opts.WarmTicks, opts.ObserveTicks, opts.RecoverTicks = 4, 6, 10
	}
	res, err := experiments.RunFig3(spec, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%s — drop@t%d, AIM@t%d, builds@%v\n", res.Product, res.DropTick, res.AIMStartTick, res.IndexTicks)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tick\tcontrol CPU%\ttest CPU%\tcontrol tput\ttest tput\tevent")
	for i := range res.Test.Ticks {
		event := ""
		if i == res.DropTick {
			event = "<- secondary indexes dropped"
		}
		if i == res.AIMStartTick {
			event = "<- AIM begins"
		}
		for _, bt := range res.IndexTicks {
			if bt == i {
				event = "<- index built"
			}
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.0f\t%.0f\t%s\n",
			i, res.Control.Ticks[i].CPUPercent, res.Test.Ticks[i].CPUPercent,
			res.Control.Ticks[i].Throughput, res.Test.Ticks[i].Throughput, event)
	}
	return w.Flush()
}

func runFig4(bench string, fast bool) error {
	opts := experiments.DefaultFig4Options(bench)
	opts.Obs = obsReg
	if fast {
		opts.Scale = 0.05
		opts.BudgetFractions = []float64{0.25, 0.5, 1.0}
	}
	res, err := experiments.RunFig4(opts)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "budget\talgorithm\trel. cost\truntime\topt calls\tindexes")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%s\t%d\t%d\n",
			sizeStr(p.BudgetBytes), p.Algorithm, p.RelativeCost, p.Runtime.Round(1000000), p.OptimizerCalls, p.IndexCount)
	}
	return w.Flush()
}

func runFig5(fast bool) error {
	opts := experiments.DefaultFig5Options()
	opts.Obs = obsReg
	if fast {
		opts.Scale = 0.05
	}
	rows, err := experiments.RunFig5(opts)
	if err != nil {
		return err
	}
	var algos []string
	for a := range rows[0].Costs {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "query\tunindexed")
	for _, a := range algos {
		fmt.Fprintf(w, "\t%s", a)
	}
	fmt.Fprintln(w, "\taffected")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f", r.Query, r.Unindexed)
		for _, a := range algos {
			fmt.Fprintf(w, "\t%.4f", r.Costs[a])
		}
		fmt.Fprintf(w, "\t%v\n", r.Affected)
	}
	return w.Flush()
}

func runFig6(fast bool) error {
	opts := experiments.DefaultFig6Options()
	opts.Obs = obsReg
	if fast {
		opts.Rows = 1500
		opts.PhaseTicks = 4
		opts.QueriesPerTick = 15
		opts.Capacity = 0.5
	}
	res, err := experiments.RunFig6(opts)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tick\tAIM CPU%\tGIA CPU%\tAIM tput\tGIA tput\tphase")
	for i := range res.AIM.Ticks {
		phase := ""
		for j, start := range res.JStartTicks {
			if start == i {
				phase = fmt.Sprintf("<- AIM j=%d indexes", j)
			}
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.0f\t%.0f\t%s\n",
			i, res.AIM.Ticks[i].CPUPercent, res.GIA.Ticks[i].CPUPercent,
			res.AIM.Ticks[i].Throughput, res.GIA.Ticks[i].Throughput, phase)
	}
	w.Flush()
	fmt.Printf("\nAIM vs GIA: throughput %+.1f%%, CPU %+.1f%% (paper: +27%%, -4.8%%)\n",
		res.ThroughputGainOverGIA()*100, -res.CPUReductionOverGIA()*100)
	fmt.Printf("j=1→2 throughput gain: %+.1f%% (paper: +16%%); j=2→3: %+.1f%% (paper: insignificant)\n",
		res.J2GainOverJ1()*100, res.J3GainOverJ2()*100)
	return nil
}

func runContinuous(fast bool) error {
	opts := experiments.DefaultContinuousOptions()
	opts.Obs = obsReg
	if fast {
		opts.Rows = 2000
		opts.WindowStatements = 150
	}
	if contAuditOut != "" {
		jrn, err := audit.Create(contAuditOut)
		if err != nil {
			return err
		}
		defer func() {
			if err := jrn.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: audit journal: %v\n", err)
			}
		}()
		opts.Audit = jrn
	}
	if contTelemetryAddr != "" {
		opts.TelemetryAddr = contTelemetryAddr
		opts.OnTelemetryStart = func(addr string) {
			fmt.Printf("telemetry on http://%s (/metricsz /statusz /healthz /debug/pprof)\n", addr)
		}
	}
	res, err := experiments.RunContinuous(opts)
	if err != nil {
		return err
	}
	fmt.Printf("window CPU: steady %.3fs -> shifted %.3fs -> re-tuned %.3fs\n",
		res.Phase1CPU, res.Phase2CPU, res.Phase3CPU)
	fmt.Printf("new indexes: %d (shadow gate accepted: %v)\n", res.NewIndexes, res.ShadowAccepted)
	fmt.Printf("improved queries: %d (≥10x: %d); CPU saving: %.1f%%\n",
		res.ImprovedQueries, res.OrderOfMagnitude, res.CPUSavingFraction*100)
	fmt.Printf("data surge: %d regressions flagged, %d automation indexes reverted\n",
		res.Phase4Regressions, res.RevertedIndexes)
	return nil
}

// runExecBench compares tuple-at-a-time and vectorized execution on the
// replay/serving hot path. Parity is enforced on every sampled statement
// before any timing runs, so a reported speedup is always a speedup on
// byte-identical results.
func runExecBench(fast bool) error {
	opts := experiments.DefaultExecBenchOptions()
	if fast {
		opts.Rows = 4000
		opts.Statements = 16
		opts.JoinStatements = 4
	}
	res, err := experiments.RunExecBench(opts)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "replay set\tengine\tns/op\titerations")
	fmt.Fprintf(w, "single-table (%d stmts)\trow\t%d\t%d\n", res.Statements, res.RowEngine.NsPerOp, res.RowEngine.Iterations)
	fmt.Fprintf(w, "single-table (%d stmts)\tvectorized\t%d\t%d\n", res.Statements, res.VecEngine.NsPerOp, res.VecEngine.Iterations)
	fmt.Fprintf(w, "join fallback (%d stmts)\trow\t%d\t%d\n", res.JoinStatements, res.JoinRowEngine.NsPerOp, res.JoinRowEngine.Iterations)
	fmt.Fprintf(w, "join fallback (%d stmts)\tvectorized\t%d\t%d\n", res.JoinStatements, res.JoinVecEngine.NsPerOp, res.JoinVecEngine.Iterations)
	w.Flush()
	fmt.Printf("\nreplay speedup: %.2fx (%d rows); join fallback: %.2fx\n",
		res.Speedup(), res.Rows, res.JoinSpeedup())
	return nil
}

// runScenarios drives the adversarial scenario suite outside the test
// harness: each scenario runs its full profile (reduced with -fast), prints
// the stability summary, and fails if any profile bound is violated.
func runScenarios(name string, fast bool) error {
	var list []scenarios.Scenario
	if name == "all" {
		list = scenarios.All()
	} else {
		sc, ok := scenarios.ByName(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (have %s)", name, strings.Join(scenarios.Names(), ", "))
		}
		list = []scenarios.Scenario{sc}
	}
	var jrn *audit.Journal
	if contAuditOut != "" {
		j, err := audit.Create(contAuditOut)
		if err != nil {
			return err
		}
		jrn = j
		defer func() {
			if err := jrn.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "aimbench: audit journal: %v\n", err)
			}
		}()
	}
	violated := 0
	for _, sc := range list {
		p := sc.Profile()
		cycles := p.Cycles
		if fast {
			cycles = p.ReducedCycles
		}
		res, err := experiments.RunScenario(sc, experiments.ScenarioOptions{
			Cycles: cycles, Seed: 1, Obs: obsReg, Audit: jrn,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s — %s\n%s", sc.Name(), sc.Description(), res.Render())
		for _, v := range res.Violations(p) {
			violated++
			fmt.Printf("VIOLATION: %s\n", v)
		}
	}
	if violated > 0 {
		return fmt.Errorf("%d stability bound(s) violated", violated)
	}
	return nil
}

func sizeStr(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
