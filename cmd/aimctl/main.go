// Command aimctl demonstrates the AIM advisor end to end on a SQL script:
// it loads schema + data, replays a workload section, prints the workload
// monitor's view, runs the advisor and prints the recommendation with its
// metrics-driven explanations, optionally validating through the shadow
// gate and applying.
//
// Script format: plain SQL statements separated by semicolons/newlines.
// Lines starting with "-- workload" switch from loading to workload replay
// (statements after it are recorded in the monitor; a trailing integer sets
// the repeat count, e.g. "-- workload 20").
//
// Usage:
//
//	aimctl -script setup.sql [-j 2] [-budget 64MiB] [-apply] [-validate]
//	aimctl -demo                       # built-in demo script
//	aimctl -demo -metrics              # + metrics registry dump after the run
//	aimctl -demo -trace-out spans.json # + advisor spans as JSON lines
//	aimctl -demo -audit-out aim.jsonl  # + decision journal (one JSON line per decision)
//	aimctl -demo -telemetry-addr :8080 # + /metricsz /statusz /healthz /debug/pprof
//
//	aimctl explain orders.aim_orders_1a2b3c4d -journal aim.jsonl [-trace spans.json]
//	    reconstruct why an index was created (or a candidate rejected) from
//	    the decision journal; -trace annotates each step with its span name.
//
//	aimctl remote -addr 127.0.0.1:4440 "SELECT ..." | -tune | -ping | -slow
//	    talk to a running aimd over the wire protocol (see cmd/aimd);
//	    -trace stamps statements with a trace ID, -slow dumps the server's
//	    slow-query log.
//
//	aimctl top -url http://127.0.0.1:8080
//	    live terminal dashboard over aimd's /timeseriesz samples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"aim/internal/audit"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/pool"
	"aim/internal/shadow"
	"aim/internal/storage"
	"aim/internal/telemetry"
	"aim/internal/workload"
)

const demoScript = `
CREATE TABLE users (id INT, city VARCHAR(16), tier INT, signup_day INT, PRIMARY KEY (id));
CREATE TABLE orders (id INT, user_id INT, status VARCHAR(8), amount FLOAT, day INT, PRIMARY KEY (id));
-- demo data is generated programmatically below
-- workload 25
SELECT id FROM users WHERE city = 'sf' AND tier = 2;
SELECT o.amount FROM users u JOIN orders o ON o.user_id = u.id WHERE u.city = 'nyc' AND o.status = 'paid';
SELECT status, COUNT(*) FROM orders WHERE day > 180 GROUP BY status;
SELECT id FROM orders WHERE day BETWEEN 100 AND 140 ORDER BY day LIMIT 10;
UPDATE orders SET status = 'done' WHERE id = 42;
`

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		runExplain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "remote" {
		runRemote(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		runTop(os.Args[2:])
		return
	}
	script := flag.String("script", "", "SQL script file (schema + data, then -- workload section)")
	demo := flag.Bool("demo", false, "run the built-in demo")
	j := flag.Int("j", 2, "join parameter")
	budget := flag.String("budget", "", "storage budget, e.g. 64MiB (empty = unlimited)")
	apply := flag.Bool("apply", false, "materialize the recommendation")
	validate := flag.Bool("validate", false, "run the shadow no-regression gate before applying")
	workers := flag.Int("workers", 0, "what-if costing worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	metrics := flag.Bool("metrics", false, "print the metrics registry after the run")
	traceOut := flag.String("trace-out", "", "write advisor spans as JSON lines to this file")
	failpoints := flag.String("failpoints", "", `fault spec, e.g. "shadow.clone=err(0.05)" (or env `+failpoint.EnvVar+")")
	fpSeed := flag.Int64("failpoint-seed", 1, "seed for failpoint firing schedules")
	auditOut := flag.String("audit-out", "", "write the decision journal (JSON lines) to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metricsz /statusz /healthz /debug/pprof on this address for the run")
	flag.Parse()

	if _, err := failpoint.Setup(*failpoints, *fpSeed); err != nil {
		fatal(err)
	}

	var reg *obs.Registry
	// -telemetry-addr implies a registry: an attached scraper expects
	// /metricsz to carry the run's counters, not an empty exposition.
	if *metrics || *traceOut != "" || *telemetryAddr != "" {
		reg = obs.NewRegistry()
		pool.Instrument(reg)
		storage.Instrument(reg)
		failpoint.Instrument(reg)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			reg.SetTraceWriter(f)
		}
	}
	if *metrics {
		defer func() {
			fmt.Println("\n--- metrics ---")
			reg.WriteTo(os.Stdout)
		}()
	}

	var text string
	switch {
	case *demo:
		text = demoScript
	case *script != "":
		b, err := os.ReadFile(*script)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	default:
		flag.Usage()
		os.Exit(2)
	}

	db := engine.New("aimctl")
	if reg != nil {
		db.SetObs(reg)
	}
	var jrn *audit.Journal
	if *auditOut != "" {
		var err error
		if jrn, err = audit.Create(*auditOut); err != nil {
			fatal(err)
		}
		defer func() {
			if err := jrn.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "aimctl: audit journal: %v\n", err)
			}
		}()
		db.SetAudit(jrn)
	}
	var tel *telemetry.Server
	if *telemetryAddr != "" {
		tel = telemetry.New(telemetry.Options{Registry: reg, DB: db, Audit: jrn})
		addr, err := tel.Start(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer tel.Close()
		fmt.Printf("telemetry on http://%s (/metricsz /statusz /healthz /debug/pprof)\n", addr)
	}
	mon := workload.NewMonitor()
	if err := runScript(db, mon, text, *demo); err != nil {
		fatal(err)
	}

	fmt.Printf("observed %d distinct normalized queries, %.4fs total cpu\n",
		mon.Len(), mon.TotalCPUSeconds())
	for _, q := range mon.Queries() {
		fmt.Printf("  %6.4fs cpu  %4d exec  ddr %.3f  %s\n", q.CPUSeconds, q.Executions, q.DDR(), q.Normalized)
	}

	cfg := core.DefaultConfig()
	cfg.J = *j
	cfg.Parallelism = *workers
	cfg.Selection.MinExecutions = 1
	if *budget != "" {
		n, err := parseSize(*budget)
		if err != nil {
			fatal(err)
		}
		cfg.BudgetBytes = n
	}
	adv := core.NewAdvisor(db, cfg)
	rec, err := adv.Recommend(mon)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nAIM: %d partial orders -> %d candidates -> %d selected (%d optimizer calls, %s)\n",
		rec.PartialOrders, rec.CandidateCount, len(rec.Create), rec.OptimizerCalls, rec.Elapsed.Round(1000000))
	fmt.Printf("cost cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d entries\n",
		rec.Cache.Hits, rec.Cache.Misses, rec.Cache.HitRate()*100, rec.Cache.Evictions, rec.Cache.Entries)
	for _, e := range rec.Explanations {
		fmt.Printf("  CREATE %s\n    %s\n", e.Index, e.String())
	}
	for _, d := range rec.Drop {
		fmt.Printf("  DROP %s (unused by observed workload)\n", d)
	}
	if len(rec.Create) == 0 {
		return
	}

	if *validate {
		report, err := shadow.Validate(db, rec.Create, mon, shadow.DefaultGate())
		if err != nil {
			fatal(err)
		}
		if tel != nil {
			tel.SetShadowReport(report)
		}
		fmt.Printf("\nshadow validation: %s [%s] (gain %.4fs cpu/window)\n", report.Verdict(), report.Code, report.TotalGain)
		fmt.Printf("  %s\n", report.Reason)
		for _, o := range report.Outcomes {
			fmt.Printf("  %+6.1f%%  %s\n", o.Change()*100, o.Normalized)
		}
		if !report.Accepted {
			return
		}
	}
	if *apply {
		created, err := adv.Apply(rec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\napplied: %s\n", strings.Join(created, ", "))
	}
}

// runExplain implements `aimctl explain <ref>`: it reads a decision journal
// (written by -audit-out) and renders the full why-lineage of one index —
// the candidate it came from, its ranking and knapsack verdict under the
// budget, the shadow-gate verdict, the adoption and any regression revert.
// With -trace, each step is annotated with the obs span that produced it.
func runExplain(args []string) {
	fs := flag.NewFlagSet("aimctl explain", flag.ExitOnError)
	journal := fs.String("journal", "", "decision journal file (written with -audit-out)")
	trace := fs.String("trace", "", "span trace file (written with -trace-out) for phase annotations")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aimctl explain <table.index | index | table(col,...)> -journal aim.jsonl [-trace spans.json]")
		fs.PrintDefaults()
	}
	// Accept the reference before or after the flags.
	var ref string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		ref, args = args[0], args[1:]
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if ref == "" && fs.NArg() > 0 {
		ref = fs.Arg(0)
	}
	if ref == "" || *journal == "" {
		fs.Usage()
		os.Exit(2)
	}
	recs, err := audit.ReadFile(*journal)
	if err != nil {
		fatal(err)
	}
	var spans map[uint64]audit.SpanInfo
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		spans, err = audit.ParseTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	lineage, err := audit.Explain(recs, ref)
	if err != nil {
		fatal(err)
	}
	lineage.Render(os.Stdout, spans)
}

// runScript executes the load section and replays the workload section.
func runScript(db *engine.DB, mon *workload.Monitor, text string, demo bool) error {
	inWorkload := false
	repeat := 1
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(raw), ";"))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "--") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "--"))
			if strings.HasPrefix(rest, "workload") {
				inWorkload = true
				if n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(rest, "workload"))); err == nil && n > 0 {
					repeat = n
				}
				if demo {
					loadDemoData(db)
				}
			}
			continue
		}
		if !inWorkload {
			if _, err := db.Exec(line); err != nil {
				return fmt.Errorf("load: %v (sql: %s)", err, line)
			}
			continue
		}
		for i := 0; i < repeat; i++ {
			res, err := db.Exec(line)
			if err != nil {
				return fmt.Errorf("workload: %v (sql: %s)", err, line)
			}
			if err := mon.Record(line, res.Stats); err != nil {
				return err
			}
		}
	}
	db.Analyze()
	return nil
}

func loadDemoData(db *engine.DB) {
	cities := []string{"sf", "nyc", "la", "chi"}
	statuses := []string{"new", "paid", "done"}
	for i := 0; i < 500; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO users VALUES (%d, '%s', %d, %d)",
			i, cities[i%4], i%4, i%365))
	}
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, '%s', %d.5, %d)",
			i, (i*7)%500, statuses[i%3], i%400, i%365))
	}
	db.Analyze()
}

func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	for suffix, m := range map[string]int64{"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30, "KB": 1000, "MB": 1000000, "GB": 1000000000} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int64(n * float64(mult)), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aimctl: %v\n", err)
	os.Exit(1)
}
