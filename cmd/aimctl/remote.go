package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aim/internal/server"
)

// runRemote is the `aimctl remote` subcommand: a thin wire-protocol client
// for a running aimd. Statements come from the command line or, with none
// given, from stdin one per line; -tune triggers one tuning cycle and
// prints the verdict; -slow dumps the server's slow-query log as JSON lines;
// -trace stamps each statement with a client-supplied trace ID (suffixed
// with the statement ordinal when several are sent).
//
//	aimctl remote -addr 127.0.0.1:4440 "SELECT id FROM events WHERE user_id = 7"
//	aimctl remote -addr 127.0.0.1:4440 -trace deploy-42 "SELECT ..."
//	aimctl remote -addr 127.0.0.1:4440 -tune
//	aimctl remote -addr 127.0.0.1:4440 -slow
//	cat stmts.sql | aimctl remote -addr 127.0.0.1:4440
func runRemote(args []string) {
	fs := flag.NewFlagSet("aimctl remote", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4440", "aimd address")
	label := fs.String("label", "aimctl", "session label (window attribution)")
	tune := fs.Bool("tune", false, "trigger one tuning cycle and print the verdict")
	ping := fs.Bool("ping", false, "liveness round-trip only")
	slow := fs.Bool("slow", false, "dump the server's slow-query log (JSON lines, oldest first)")
	traceID := fs.String("trace", "", "trace ID to stamp on statements (needs a v2 server; audit windows then name it)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-frame round-trip bound")
	fs.Parse(args) //nolint:errcheck

	c, err := server.Dial(*addr, *timeout)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	if *ping {
		if err := c.Ping(); err != nil {
			fatal(err)
		}
		fmt.Println("pong")
		return
	}
	if err := c.Hello(*label); err != nil {
		fatal(err)
	}
	if *traceID != "" && c.Version() < 2 {
		fmt.Fprintln(os.Stderr, "aimctl: peer speaks protocol v1; -trace will be dropped")
	}

	nth := 0
	run := func(sql string) {
		var res *server.Result
		var err error
		if *traceID != "" {
			id := *traceID
			if nth > 0 {
				id = fmt.Sprintf("%s-%d", id, nth)
			}
			nth++
			res, err = c.QueryTraced(id, sql)
		} else {
			res, err = c.Query(sql)
		}
		if err != nil {
			fatal(err)
		}
		if res.Columns == nil && len(res.Rows) == 0 {
			fmt.Printf("ok (%d rows affected)\n", res.Affected)
			return
		}
		fmt.Println(strings.Join(res.Columns, "\t"))
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	}

	if stmts := fs.Args(); len(stmts) > 0 {
		for _, sql := range stmts {
			run(sql)
		}
	} else if !*tune && !*slow {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64*1024), server.MaxFrame)
		for sc.Scan() {
			line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), ";"))
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			run(line)
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
	}

	if *tune {
		line, err := c.Tune()
		if err != nil {
			fatal(err)
		}
		fmt.Println(line)
	}
	if *slow {
		entries, err := c.Slow()
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		for i := range entries {
			if err := enc.Encode(&entries[i]); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "(%d slow-log entries)\n", len(entries))
	}
}
