package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// runTop is the `aimctl top` subcommand: a terminal dashboard over a running
// aimd's /timeseriesz endpoint. Each refresh fetches the sample ring and
// renders the newest sample — counter rates, gauges and span latency
// quantiles — so an operator can watch a live tuning loop without wiring up
// a metrics stack.
//
//	aimctl top -url http://127.0.0.1:8080
//	aimctl top -url http://127.0.0.1:8080 -iterations 1   # one snapshot (scripts)
func runTop(args []string) {
	fs := flag.NewFlagSet("aimctl top", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "aimd telemetry base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	iterations := fs.Int("iterations", 0, "refresh count before exiting (0 = until interrupted)")
	rows := fs.Int("rows", 12, "max rows per section")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	client := &http.Client{Timeout: 10 * time.Second}
	for n := 0; *iterations == 0 || n < *iterations; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		payload, err := fetchTimeSeries(client, strings.TrimSuffix(*url, "/")+"/timeseriesz")
		if err != nil {
			fatal(err)
		}
		renderTop(os.Stdout, payload, *rows)
	}
}

// topPayload mirrors the /timeseriesz wire shape (obs.TimeSeries.MarshalJSON).
type topPayload struct {
	Capacity int `json:"capacity"`
	Samples  []struct {
		TSUS            int64              `json:"ts_us"`
		IntervalSeconds float64            `json:"interval_seconds"`
		Rates           map[string]float64 `json:"rates,omitempty"`
		Gauges          map[string]int64   `json:"gauges,omitempty"`
		Histograms      map[string]topQ    `json:"histograms,omitempty"`
		Spans           map[string]topQ    `json:"spans,omitempty"`
	} `json:"samples"`
}

type topQ struct {
	CountDelta int64   `json:"count_delta"`
	P50        float64 `json:"p50"`
	P95        float64 `json:"p95"`
	P99        float64 `json:"p99"`
}

func fetchTimeSeries(client *http.Client, url string) (*topPayload, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	p := &topPayload{}
	if err := json.Unmarshal(body, p); err != nil {
		return nil, fmt.Errorf("%s: %v", url, err)
	}
	return p, nil
}

func renderTop(w io.Writer, p *topPayload, maxRows int) {
	if len(p.Samples) == 0 {
		fmt.Fprintln(w, "aimctl top: no samples yet (is -timeseries-interval on?)")
		return
	}
	s := p.Samples[len(p.Samples)-1]
	fmt.Fprintf(w, "── %s  (interval %.1fs, ring %d/%d) ──\n",
		time.UnixMicro(s.TSUS).Format("15:04:05"), s.IntervalSeconds, len(p.Samples), p.Capacity)

	type kv struct {
		k string
		v float64
	}
	section := func(title, unit string, m map[string]kv) {
		if len(m) == 0 {
			return
		}
		rows := make([]kv, 0, len(m))
		for _, e := range m {
			rows = append(rows, e)
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		if len(rows) > maxRows {
			rows = rows[:maxRows]
		}
		fmt.Fprintf(w, "%s\n", title)
		for _, r := range rows {
			fmt.Fprintf(w, "  %12.2f %-6s %s\n", r.v, unit, r.k)
		}
	}

	rates := map[string]kv{}
	for k, v := range s.Rates {
		rates[k] = kv{k, v}
	}
	section("rates", "/s", rates)
	gauges := map[string]kv{}
	for k, v := range s.Gauges {
		gauges[k] = kv{k, float64(v)}
	}
	section("gauges", "", gauges)
	spans := map[string]kv{}
	for k, v := range s.Spans {
		if v.CountDelta > 0 {
			spans[k+" p95"] = kv{k + " p95", v.P95 * 1000}
		}
	}
	section("span latency (active this tick)", "ms", spans)
}
