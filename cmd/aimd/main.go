// Command aimd is the AIM daemon: a long-running TCP server speaking the
// length-prefixed wire protocol of internal/server, with the
// continuous-tuning advisor running in-process against the live statement
// stream. Clients send one SQL statement per frame; every WindowStatements
// observed statements the collector seals a window and the advisor →
// shadow-gate → regression-detector cycle runs against live traffic. The
// telemetry server, the decision audit journal and the failpoint registry
// are the ops surface.
//
// Usage:
//
//	aimd -demo                                # built-in fixture, :4440
//	aimd -addr :4440 -init schema.sql         # load a SQL script, serve
//	aimd -demo -window 200                    # tune every 200 statements
//	aimd -demo -telemetry-addr :8080          # /metricsz /statusz /slowz /timeseriesz ...
//	aimd -demo -audit-out aimd.jsonl          # decision journal for `aimctl explain`
//	aimd -demo -slow-threshold 50ms -trace-sample 100   # slow-query capture + 1-in-100 sample
//	aimd -demo -failpoints "server.read_frame=err(0.01)"
//
// SIGTERM or SIGINT drains gracefully: accepting stops, in-flight
// statements finish and are answered, a final partial window is tuned, and
// the observed drain wall-clock lands in server.drain_seconds.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aim/internal/audit"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/pool"
	"aim/internal/regression"
	"aim/internal/server"
	"aim/internal/shadow"
	"aim/internal/storage"
	"aim/internal/telemetry"

	icore "aim/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4440", "listen address")
	initScript := flag.String("init", "", "SQL script executed before serving (schema + data)")
	demo := flag.Bool("demo", false, "load the built-in demo fixture")
	window := flag.Int("window", 500, "statements per tuning window (0 = tune only on client OpTune frames)")
	workers := flag.Int("workers", 0, "what-if costing worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	maxConns := flag.Int("max-conns", 0, "max concurrent client sessions (0 = 8x cores)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "per-frame read deadline")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "per-frame write deadline")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful drain bound on SIGTERM")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metricsz /statusz /slowz /timeseriesz /healthz /debug/pprof on this address")
	slowThreshold := flag.Duration("slow-threshold", 250*time.Millisecond, "slow-query log latency threshold (0 = no over-threshold capture)")
	traceSample := flag.Int("trace-sample", 0, "also capture every Nth statement in the slow-query log (0 = off)")
	slowCap := flag.Int("slow-log", 256, "slow-query log ring capacity (0 = disable the log entirely)")
	tsInterval := flag.Duration("timeseries-interval", 5*time.Second, "registry sampling period for /timeseriesz (0 = off)")
	tsCap := flag.Int("timeseries-window", 360, "samples kept in the /timeseriesz ring")
	auditOut := flag.String("audit-out", "", "write the decision journal (JSON lines) to this file")
	failpoints := flag.String("failpoints", "", `fault spec, e.g. "server.read_frame=err(0.01)" (or env `+failpoint.EnvVar+")")
	fpSeed := flag.Int64("failpoint-seed", 1, "seed for failpoint firing schedules")
	flag.Parse()

	if _, err := failpoint.Setup(*failpoints, *fpSeed); err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	pool.Instrument(reg)
	storage.Instrument(reg)
	failpoint.Instrument(reg)

	db := engine.New("aimd")
	db.SetObs(reg)
	var jrn *audit.Journal
	if *auditOut != "" {
		var err error
		if jrn, err = audit.Create(*auditOut); err != nil {
			fatal(err)
		}
		defer func() {
			if err := jrn.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "aimd: audit journal: %v\n", err)
			}
		}()
		db.SetAudit(jrn)
	}

	switch {
	case *demo:
		loadDemoFixture(db)
	case *initScript != "":
		b, err := os.ReadFile(*initScript)
		if err != nil {
			fatal(err)
		}
		if err := loadScript(db, string(b)); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "aimd: serving an empty database (use -demo or -init to preload; clients may CREATE TABLE over the wire)")
	}
	db.Analyze()

	cfg := icore.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	cfg.Parallelism = *workers
	det := regression.NewDetector(0.5)

	// The query flight recorder: a slow-query ring fed by the statement path
	// (over-threshold capture plus deterministic 1-in-N sampling) and a
	// periodic registry sampler behind /timeseriesz. Both are nil when off —
	// the statement path then pays a single nil check.
	var slow *obs.SlowLog
	if *slowCap > 0 && (*slowThreshold > 0 || *traceSample > 0) {
		slow = obs.NewSlowLog(*slowCap, *slowThreshold, *traceSample)
		slow.Instrument(reg)
	}
	var series *obs.TimeSeries
	if *telemetryAddr != "" && *tsInterval > 0 {
		series = obs.NewTimeSeries(reg, *tsCap)
		stop := series.Start(*tsInterval)
		defer stop()
	}

	var tel *telemetry.Server
	var onReport func(*shadow.Report)
	if *telemetryAddr != "" {
		tel = telemetry.New(telemetry.Options{Registry: reg, DB: db, Detector: det, Audit: jrn,
			Slow: slow, TimeSeries: series})
		taddr, err := tel.Start(*telemetryAddr)
		if err != nil {
			fatal(err)
		}
		defer tel.Close()
		onReport = tel.SetShadowReport
		fmt.Printf("aimd: telemetry on http://%s (/metricsz /statusz /slowz /timeseriesz /healthz /debug/pprof)\n", taddr)
	}

	srv := server.New(server.Options{
		DB:               db,
		AdvisorCfg:       &cfg,
		Detector:         det,
		WindowStatements: *window,
		MaxConns:         *maxConns,
		ReadTimeout:      *readTimeout,
		WriteTimeout:     *writeTimeout,
		DrainTimeout:     *drainTimeout,
		Obs:              reg,
		SlowLog:          slow,
		OnReport:         onReport,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("aimd: listening on %s (window=%d statements, workers=%d)\n", bound, *window, pool.Workers(*workers))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Printf("aimd: %s received, draining...\n", got)
	start := time.Now()
	if err := srv.Shutdown(); err != nil {
		fmt.Fprintf(os.Stderr, "aimd: %v\n", err)
	}
	t := srv.Tuner()
	fmt.Printf("aimd: drained in %.3fs (cycles=%d adoptions=%d reverted=%d degraded=%d)\n",
		time.Since(start).Seconds(), t.Cycles, t.Adoptions, t.Reverted, t.DegradedValidations)
}

// loadScript executes a plain SQL script: statements separated by
// semicolons or newlines, `--` comment lines skipped. The aimctl script
// format's `-- workload` marker is accepted and ignored — aimd's workload
// arrives over the wire, not from the file.
func loadScript(db *engine.DB, text string) error {
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(raw), ";"))
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if _, err := db.Exec(line); err != nil {
			return fmt.Errorf("aimd: init: %v (sql: %s)", err, line)
		}
	}
	return nil
}

// loadDemoFixture builds the events table the experiments use, sized so the
// advisor has something worth indexing within a few windows.
func loadDemoFixture(db *engine.DB) {
	db.MustExec(`CREATE TABLE events (id INT, user_id INT, kind INT, day INT, score INT, PRIMARY KEY (id))`)
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 5000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO events VALUES (%d, %d, %d, %d, %d)",
			i, r.Intn(300), r.Intn(10), r.Intn(365), r.Intn(1000)))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "aimd: %v\n", err)
	os.Exit(1)
}
