package catalog

import (
	"testing"

	"aim/internal/sqltypes"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("users", []Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "name", Type: sqltypes.KindString},
		{Name: "age", Type: sqltypes.KindInt},
		{Name: "city", Type: sqltypes.KindString},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("t", []Column{{Name: "a"}, {Name: "A"}}, []string{"a"}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, []string{"b"}); err == nil {
		t.Error("missing pk column accepted")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, nil); err == nil {
		t.Error("empty pk accepted")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := testTable(t)
	if tbl.ColumnIndex("AGE") != 2 {
		t.Error("case-insensitive lookup failed")
	}
	if tbl.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if got := tbl.PrimaryKeyNames(); len(got) != 1 || got[0] != "id" {
		t.Errorf("pk names = %v", got)
	}
	if !tbl.IsPrimaryKeyColumn(0) || tbl.IsPrimaryKeyColumn(1) {
		t.Error("IsPrimaryKeyColumn wrong")
	}
	if got := tbl.ColumnNames(); len(got) != 4 || got[3] != "city" {
		t.Errorf("column names = %v", got)
	}
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := NewSchema()
	tbl := testTable(t)
	if err := s.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(tbl); err == nil {
		t.Error("duplicate table accepted")
	}
	if s.Table("USERS") != tbl {
		t.Error("case-insensitive table lookup failed")
	}
	if s.Table("missing") != nil {
		t.Error("missing table should be nil")
	}
}

func TestIndexValidation(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(testTable(t)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ix   *Index
		ok   bool
		name string
	}{
		{&Index{Name: "i1", Table: "users", Columns: []string{"age"}}, true, "valid"},
		{&Index{Name: "i2", Table: "nosuch", Columns: []string{"a"}}, false, "unknown table"},
		{&Index{Name: "i3", Table: "users", Columns: nil}, false, "no columns"},
		{&Index{Name: "i4", Table: "users", Columns: []string{"zzz"}}, false, "unknown column"},
		{&Index{Name: "i5", Table: "users", Columns: []string{"age", "AGE"}}, false, "repeated column"},
		{&Index{Name: "I1", Table: "users", Columns: []string{"city"}}, false, "duplicate name"},
	}
	for _, c := range cases {
		err := s.AddIndex(c.ix)
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestIndexCoversAndKey(t *testing.T) {
	tbl := testTable(t)
	ix := &Index{Name: "i", Table: "users", Columns: []string{"city", "age"}}
	if !ix.Covers(tbl, []string{"city", "age", "id"}) {
		t.Error("index + pk should cover")
	}
	if ix.Covers(tbl, []string{"name"}) {
		t.Error("name is not covered")
	}
	if ix.Key() != "users(city,age)" {
		t.Errorf("Key = %q", ix.Key())
	}
	other := &Index{Name: "different_name", Table: "USERS", Columns: []string{"CITY", "age"}}
	if !ix.Equal(other) {
		t.Error("Equal should ignore names and case")
	}
	if ix.Equal(&Index{Table: "users", Columns: []string{"age", "city"}}) {
		t.Error("column order must matter")
	}
}

func TestSchemaIndexManagement(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(testTable(t)); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddIndex(&Index{Name: "b_idx", Table: "users", Columns: []string{"age"}}))
	must(s.AddIndex(&Index{Name: "a_idx", Table: "users", Columns: []string{"city", "age"}}))
	got := s.Indexes()
	if len(got) != 2 || got[0].Name != "a_idx" {
		t.Errorf("Indexes() = %v", got)
	}
	if len(s.TableIndexes("users")) != 2 {
		t.Error("TableIndexes count")
	}
	if s.FindIndexByColumns("users", []string{"city", "age"}) == nil {
		t.Error("FindIndexByColumns missed")
	}
	if s.FindIndexByColumns("users", []string{"age", "city"}) != nil {
		t.Error("FindIndexByColumns order should matter")
	}
	if !s.DropIndex("B_IDX") {
		t.Error("DropIndex failed")
	}
	if s.DropIndex("b_idx") {
		t.Error("double drop succeeded")
	}
	if len(s.Indexes()) != 1 {
		t.Error("index not removed")
	}
}

func TestSchemaCloneIsolation(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(testTable(t)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddIndex(&Index{Name: "i", Table: "users", Columns: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.AddIndex(&Index{Name: "j", Table: "users", Columns: []string{"city"}}); err != nil {
		t.Fatal(err)
	}
	if s.Index("j") != nil {
		t.Error("clone leaked into original")
	}
	c.Index("i").Columns[0] = "city"
	if s.Index("i").Columns[0] != "age" {
		t.Error("clone shares column slices")
	}
}
