// Package catalog holds schema metadata: tables, columns, primary keys and
// secondary index definitions (both materialized and hypothetical/dataless).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"aim/internal/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name string
	Type sqltypes.Kind
}

// Table describes a table: its columns and clustered primary key.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []int // ordinals into Columns
	colIndex   map[string]int
}

// NewTable builds a table definition. pk lists primary key column names in
// key order; every name must exist among cols.
func NewTable(name string, cols []Column, pk []string) (*Table, error) {
	t := &Table{Name: name, Columns: cols, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIndex[lc]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", c.Name, name)
		}
		t.colIndex[lc] = i
	}
	for _, p := range pk {
		i, ok := t.colIndex[strings.ToLower(p)]
		if !ok {
			return nil, fmt.Errorf("catalog: primary key column %q not in table %q", p, name)
		}
		t.PrimaryKey = append(t.PrimaryKey, i)
	}
	if len(t.PrimaryKey) == 0 {
		return nil, fmt.Errorf("catalog: table %q requires a primary key", name)
	}
	return t, nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the column names in ordinal order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// PrimaryKeyNames returns the primary key column names in key order.
func (t *Table) PrimaryKeyNames() []string {
	out := make([]string, len(t.PrimaryKey))
	for i, o := range t.PrimaryKey {
		out[i] = t.Columns[o].Name
	}
	return out
}

// IsPrimaryKeyColumn reports whether ordinal is part of the primary key.
func (t *Table) IsPrimaryKeyColumn(ordinal int) bool {
	for _, o := range t.PrimaryKey {
		if o == ordinal {
			return true
		}
	}
	return false
}

// Index describes a secondary index. Hypothetical (dataless) indexes carry
// statistics but no materialized entries; the optimizer can cost plans with
// them exactly as with real indexes.
type Index struct {
	Name         string
	Table        string
	Columns      []string // key columns in order
	Hypothetical bool
	// CreatedBy records provenance ("dba", "aim", "extend", ...) so the
	// continuous regression detector can target automation-added indexes.
	CreatedBy string
}

// ColumnSet returns the index key columns as a set of lower-cased names.
func (ix *Index) ColumnSet() map[string]bool {
	s := make(map[string]bool, len(ix.Columns))
	for _, c := range ix.Columns {
		s[strings.ToLower(c)] = true
	}
	return s
}

// Covers reports whether the index key columns plus the table's primary key
// cover all of the named columns (i.e. an index-only read can answer them).
func (ix *Index) Covers(t *Table, needed []string) bool {
	have := ix.ColumnSet()
	for _, p := range t.PrimaryKeyNames() {
		have[strings.ToLower(p)] = true
	}
	for _, n := range needed {
		if !have[strings.ToLower(n)] {
			return false
		}
	}
	return true
}

// Equal reports whether two indexes have the same table and column list.
func (ix *Index) Equal(other *Index) bool {
	if !strings.EqualFold(ix.Table, other.Table) || len(ix.Columns) != len(other.Columns) {
		return false
	}
	for i := range ix.Columns {
		if !strings.EqualFold(ix.Columns[i], other.Columns[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical identity string for the index definition
// (table + ordered columns), independent of the index name.
func (ix *Index) Key() string {
	cols := make([]string, len(ix.Columns))
	for i, c := range ix.Columns {
		cols[i] = strings.ToLower(c)
	}
	return strings.ToLower(ix.Table) + "(" + strings.Join(cols, ",") + ")"
}

// String renders the index like "CREATE INDEX name ON table (a, b)".
func (ix *Index) String() string {
	return fmt.Sprintf("INDEX %s ON %s (%s)", ix.Name, ix.Table, strings.Join(ix.Columns, ", "))
}

// Schema is a collection of tables and index definitions. Reads and writes
// are safe for concurrent use: the advisor's parallel what-if costing reads
// the schema from many goroutines while DDL may land from another.
type Schema struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index // by lower-cased index name
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: map[string]*Table{}, indexes: map[string]*Index{}}
}

// AddTable registers a table.
func (s *Schema) AddTable(t *Table) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	s.tables[key] = t
	return nil
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[strings.ToLower(name)]
}

// Tables returns all tables sorted by name.
func (s *Schema) Tables() []*Table {
	s.mu.RLock()
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AddIndex registers an index definition after validating it.
func (s *Schema) AddIndex(ix *Index) error {
	t := s.Table(ix.Table)
	s.mu.Lock()
	defer s.mu.Unlock()
	if t == nil {
		return fmt.Errorf("catalog: index %q references unknown table %q", ix.Name, ix.Table)
	}
	if len(ix.Columns) == 0 {
		return fmt.Errorf("catalog: index %q has no columns", ix.Name)
	}
	seen := map[string]bool{}
	for _, c := range ix.Columns {
		if t.ColumnIndex(c) < 0 {
			return fmt.Errorf("catalog: index %q references unknown column %q", ix.Name, c)
		}
		lc := strings.ToLower(c)
		if seen[lc] {
			return fmt.Errorf("catalog: index %q repeats column %q", ix.Name, c)
		}
		seen[lc] = true
	}
	key := strings.ToLower(ix.Name)
	if _, dup := s.indexes[key]; dup {
		return fmt.Errorf("catalog: index %q already exists", ix.Name)
	}
	s.indexes[key] = ix
	return nil
}

// DropIndex removes the named index and reports whether it existed.
func (s *Schema) DropIndex(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.indexes[key]; !ok {
		return false
	}
	delete(s.indexes, key)
	return true
}

// Index returns the named index, or nil.
func (s *Schema) Index(name string) *Index {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexes[strings.ToLower(name)]
}

// Indexes returns all index definitions sorted by name.
func (s *Schema) Indexes() []*Index {
	s.mu.RLock()
	out := make([]*Index, 0, len(s.indexes))
	for _, ix := range s.indexes {
		out = append(out, ix)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TableIndexes returns the indexes on the named table, sorted by name.
func (s *Schema) TableIndexes(table string) []*Index {
	var out []*Index
	for _, ix := range s.Indexes() {
		if strings.EqualFold(ix.Table, table) {
			out = append(out, ix)
		}
	}
	return out
}

// FindIndexByColumns returns an existing index (materialized or not) with
// the exact same table and column sequence, or nil.
func (s *Schema) FindIndexByColumns(table string, cols []string) *Index {
	probe := &Index{Table: table, Columns: cols}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ix := range s.indexes {
		if ix.Equal(probe) {
			return ix
		}
	}
	return nil
}

// Clone returns a deep copy of the schema (tables are shared, as they are
// immutable; index definitions are copied).
func (s *Schema) Clone() *Schema {
	out := NewSchema()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, t := range s.tables {
		out.tables[k] = t
	}
	for k, ix := range s.indexes {
		cp := *ix
		cp.Columns = append([]string(nil), ix.Columns...)
		out.indexes[k] = &cp
	}
	return out
}
