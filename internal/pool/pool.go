// Package pool provides a bounded, deterministic fan-out helper for the
// advisor's what-if costing loops. Work items are identified by index so
// callers can collect per-item results into pre-sized slices and fold them
// in input order afterwards — the fold order, not the execution order,
// determines the output, which is how parallel advisor runs stay
// byte-identical to sequential ones.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"aim/internal/failpoint"
	"aim/internal/obs"
)

// Workers resolves a requested pool size: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// metricsSet bundles the pool's observability handles so they swap
// atomically as a unit.
type metricsSet struct {
	runs   *obs.Counter   // ForEach fan-outs started
	tasks  *obs.Counter   // work items executed
	active *obs.Gauge     // workers currently inside fn
	queue  *obs.Gauge     // items not yet claimed by a worker
	fanout *obs.Histogram // items per ForEach call
}

// instr holds the active metrics set; nil means instrumentation is off.
// ForEach is package-level (no pool object to hang state on), so the handles
// live here behind one atomic pointer load per fan-out.
var instr atomic.Pointer[metricsSet]

// Instrument attaches pool metrics to the registry (nil detaches):
// pool.{runs,tasks} counters, pool.{active_workers,queue_depth} gauges, and
// the pool.fanout items-per-run histogram.
func Instrument(r *obs.Registry) {
	if r == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&metricsSet{
		runs:   r.Counter("pool.runs"),
		tasks:  r.Counter("pool.tasks"),
		active: r.Gauge("pool.active_workers"),
		queue:  r.Gauge("pool.queue_depth"),
		fanout: r.Histogram("pool.fanout"),
	})
}

// ForEach invokes fn(i) for every i in [0, n), fanning out over at most
// workers goroutines, and returns once every call has completed. workers <= 0
// means GOMAXPROCS. With a single worker (or a single item) the calls run
// inline in index order, which is the advisor's sequential reference mode.
//
// fn must write results only to its own slot i of any shared output; ForEach
// provides the necessary happens-before edge between the last fn return and
// ForEach returning.
//
// A panicking task no longer kills the process from an anonymous worker
// goroutine: the remaining items still run (their result slots stay
// consistent) and the first panic is re-raised on the calling goroutine
// after the fan-out drains, where the caller's own defer/recover hardening
// can see it. The "pool.task" failpoint fires before each task; delay and
// panic actions apply, err actions are ignored (tasks have no error
// channel — fallible work reports through its own result slot).
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Every item is claimed exactly once, so the per-claim queue decrements
	// return the gauge to its prior value by the time ForEach returns.
	m := instr.Load()
	if m != nil {
		m.runs.Inc()
		m.tasks.Add(int64(n))
		m.fanout.Observe(float64(n))
		m.queue.Add(int64(n))
	}
	var panicOnce sync.Once
	var panicked any
	run := func(i int) {
		defer func() {
			if m != nil {
				m.active.Add(-1)
			}
			if p := recover(); p != nil {
				panicOnce.Do(func() { panicked = p })
			}
		}()
		if m != nil {
			m.queue.Add(-1)
			m.active.Add(1)
		}
		_ = failpoint.Inject("pool.task")
		fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	if panicked != nil {
		panic(panicked)
	}
}
