// Package pool provides a bounded, deterministic fan-out helper for the
// advisor's what-if costing loops. Work items are identified by index so
// callers can collect per-item results into pre-sized slices and fold them
// in input order afterwards — the fold order, not the execution order,
// determines the output, which is how parallel advisor runs stay
// byte-identical to sequential ones.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested pool size: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), fanning out over at most
// workers goroutines, and returns once every call has completed. workers <= 0
// means GOMAXPROCS. With a single worker (or a single item) the calls run
// inline in index order, which is the advisor's sequential reference mode.
//
// fn must write results only to its own slot i of any shared output; ForEach
// provides the necessary happens-before edge between the last fn return and
// ForEach returning.
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
