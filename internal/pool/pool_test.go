package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaults(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called with no items")
	}
}

func TestForEachSequentialWhenSingleWorker(t *testing.T) {
	// workers==1 must run inline, in order — the determinism baseline.
	var order []int
	ForEach(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}
