package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// Snapshot is the wire format of a monitor window, modelling the §VII-A
// export pipeline: per-replica daemons serialize their windows and ship
// them to the warehouse, where they are merged into the fleet view.
type Snapshot struct {
	Queries []QuerySnapshot `json:"queries"`
}

// QuerySnapshot serializes one normalized query's statistics. Parameter
// samples travel as rendered SQL literals so the snapshot is engine- and
// version-agnostic.
type QuerySnapshot struct {
	Normalized   string     `json:"normalized"`
	Weight       float64    `json:"weight,omitempty"`
	Executions   int64      `json:"executions"`
	CPUSeconds   float64    `json:"cpu_seconds"`
	RowsRead     int64      `json:"rows_read"`
	RowsSent     int64      `json:"rows_sent"`
	SampleParams [][]string `json:"sample_params,omitempty"`
}

// Export writes the monitor's current window as JSON.
func (m *Monitor) Export(w io.Writer) error {
	snap := Snapshot{}
	for _, q := range m.Queries() {
		qs := QuerySnapshot{
			Normalized: q.Normalized,
			Weight:     q.Weight,
			Executions: q.Executions,
			CPUSeconds: q.CPUSeconds,
			RowsRead:   q.RowsRead,
			RowsSent:   q.RowsSent,
		}
		for _, params := range q.SampleParams {
			row := make([]string, len(params))
			for i, v := range params {
				row[i] = v.String()
			}
			qs.SampleParams = append(qs.SampleParams, row)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Import reads a snapshot and merges it into the monitor (additive, so
// several replica snapshots can be imported into one fleet monitor).
func (m *Monitor) Import(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("workload: decoding snapshot: %v", err)
	}
	for _, qs := range snap.Queries {
		stmt, err := sqlparser.Parse(qs.Normalized)
		if err != nil {
			return fmt.Errorf("workload: snapshot query %q: %v", qs.Normalized, err)
		}
		q := m.queries[qs.Normalized]
		if q == nil {
			q = &QueryStats{Normalized: qs.Normalized, Stmt: stmt}
			m.queries[qs.Normalized] = q
		}
		q.Executions += qs.Executions
		q.CPUSeconds += qs.CPUSeconds
		q.RowsRead += qs.RowsRead
		q.RowsSent += qs.RowsSent
		if qs.Weight != 0 {
			q.Weight = qs.Weight
		}
		for _, row := range qs.SampleParams {
			if len(q.SampleParams) >= sampleParamsKeep {
				break
			}
			params, err := parseParamRow(row)
			if err != nil {
				return err
			}
			q.SampleParams = append(q.SampleParams, params)
		}
	}
	return nil
}

// parseParamRow decodes SQL-literal-rendered parameters back into values.
func parseParamRow(row []string) ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(row))
	for i, lit := range row {
		// Reuse the SQL parser: a literal is a valid expression.
		stmt, err := sqlparser.Parse("SELECT x FROM t WHERE x = " + lit)
		if err != nil {
			return nil, fmt.Errorf("workload: bad parameter literal %q: %v", lit, err)
		}
		where := stmt.(*sqlparser.Select).Where.(*sqlparser.BinaryExpr)
		l, ok := where.Right.(*sqlparser.Literal)
		if !ok {
			return nil, fmt.Errorf("workload: parameter %q is not a literal", lit)
		}
		out[i] = l.Val
	}
	return out, nil
}
