package workload

import (
	"fmt"
	"math"
	"testing"

	"aim/internal/exec"
)

func TestRecordGroupsByNormalizedForm(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 10; i++ {
		err := m.Record(fmt.Sprintf("SELECT id FROM t WHERE a = %d", i),
			exec.Stats{RowsRead: 100, RowsSent: 1, PageReads: 5})
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("normalized groups = %d", m.Len())
	}
	q := m.Get("SELECT id FROM t WHERE a = ?")
	if q == nil {
		t.Fatal("normalized query missing")
	}
	if q.Executions != 10 || q.RowsRead != 1000 || q.RowsSent != 10 {
		t.Fatalf("stats = %+v", q)
	}
	if len(q.SampleParams) != 8 {
		t.Fatalf("sample params = %d", len(q.SampleParams))
	}
}

func TestRecordParseError(t *testing.T) {
	m := NewMonitor()
	if err := m.Record("NOT SQL AT ALL", exec.Stats{}); err == nil {
		t.Fatal("bad sql accepted")
	}
}

func TestDDRAndBenefit(t *testing.T) {
	m := NewMonitor()
	// Query reads 1000 rows, returns 10: ddr = 0.01, benefit ≈ 0.99 × cpu.
	st := exec.Stats{RowsRead: 1000, RowsSent: 10, PageReads: 100}
	if err := m.Record("SELECT id FROM t WHERE a = 5", st); err != nil {
		t.Fatal(err)
	}
	q := m.Queries()[0]
	if math.Abs(q.DDR()-0.01) > 1e-9 {
		t.Fatalf("ddr = %v", q.DDR())
	}
	wantB := 0.99 * st.CPUSeconds()
	if math.Abs(q.Benefit()-wantB) > 1e-12 {
		t.Fatalf("benefit = %v, want %v", q.Benefit(), wantB)
	}
	// An efficient query (reads ≈ sends) has near-zero benefit.
	m2 := NewMonitor()
	m2.Record("SELECT id FROM t WHERE a = 5", exec.Stats{RowsRead: 10, RowsSent: 10, PageReads: 2})
	if b := m2.Queries()[0].Benefit(); b != 0 {
		t.Fatalf("efficient query benefit = %v", b)
	}
}

func TestDDREdgeCases(t *testing.T) {
	q := &QueryStats{}
	if q.DDR() != 1 {
		t.Error("zero reads should ddr=1 (no benefit)")
	}
	q = &QueryStats{RowsRead: 5, RowsSent: 50}
	if q.DDR() != 1 {
		t.Error("sent > read must clamp to 1")
	}
}

func TestWeightScalesBenefit(t *testing.T) {
	m := NewMonitor()
	m.Record("SELECT id FROM t WHERE a = 1", exec.Stats{RowsRead: 100, RowsSent: 1, PageReads: 10})
	q := m.Queries()[0]
	base := q.Benefit()
	m.SetWeight(q.Normalized, 3)
	if math.Abs(q.Benefit()-3*base) > 1e-12 {
		t.Fatalf("weighted benefit = %v, want %v", q.Benefit(), 3*base)
	}
}

func TestRepresentativeSelection(t *testing.T) {
	m := NewMonitor()
	// Hot inefficient query.
	for i := 0; i < 100; i++ {
		m.Record("SELECT id FROM t WHERE hot = 1", exec.Stats{RowsRead: 1000, RowsSent: 1, PageReads: 200})
	}
	// Rare query (below MinExecutions).
	m.Record("SELECT id FROM t WHERE rare = 1", exec.Stats{RowsRead: 1000, RowsSent: 1, PageReads: 200})
	// Efficient query (no benefit).
	for i := 0; i < 100; i++ {
		m.Record("SELECT id FROM t WHERE efficient = 1", exec.Stats{RowsRead: 1, RowsSent: 1, PageReads: 1})
	}
	// DML.
	for i := 0; i < 50; i++ {
		m.Record("INSERT INTO t (a) VALUES (1)", exec.Stats{RowsWritten: 1, IndexWrites: 2})
	}
	cfg := SelectionConfig{MinExecutions: 3, MinBenefit: 1e-6, TopK: 10, IncludeDML: true}
	rep := m.Representative(cfg)
	if len(rep) != 2 {
		t.Fatalf("representative = %d queries", len(rep))
	}
	if rep[0].Normalized != "SELECT id FROM t WHERE hot = ?" {
		t.Fatalf("first = %s", rep[0].Normalized)
	}
	if !rep[1].IsDML() {
		t.Fatal("DML should be appended")
	}
	// Without DML.
	cfg.IncludeDML = false
	rep = m.Representative(cfg)
	if len(rep) != 1 {
		t.Fatalf("without dml = %d", len(rep))
	}
}

func TestTopKCapsSelection(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 20; i++ {
		sql := fmt.Sprintf("SELECT id FROM t WHERE col%d = 1", i)
		for j := 0; j <= i; j++ {
			m.Record(sql, exec.Stats{RowsRead: 100, RowsSent: 1, PageReads: 10})
		}
	}
	rep := m.Representative(SelectionConfig{MinExecutions: 1, TopK: 5})
	if len(rep) != 5 {
		t.Fatalf("topk = %d", len(rep))
	}
	// Must be the 5 highest-benefit ones (most executions).
	if rep[0].Executions != 20 {
		t.Fatalf("first has %d executions", rep[0].Executions)
	}
}

func TestMergeReplicas(t *testing.T) {
	a, b := NewMonitor(), NewMonitor()
	a.Record("SELECT id FROM t WHERE a = 1", exec.Stats{RowsRead: 10, RowsSent: 1, PageReads: 2})
	b.Record("SELECT id FROM t WHERE a = 2", exec.Stats{RowsRead: 20, RowsSent: 2, PageReads: 4})
	b.Record("SELECT id FROM t WHERE b = 1", exec.Stats{RowsRead: 5, RowsSent: 5, PageReads: 1})
	merged := Merge(a, b)
	if merged.Len() != 2 {
		t.Fatalf("merged queries = %d", merged.Len())
	}
	q := merged.Get("SELECT id FROM t WHERE a = ?")
	if q.Executions != 2 || q.RowsRead != 30 {
		t.Fatalf("merged stats = %+v", q)
	}
	if merged.TotalCPUSeconds() <= 0 {
		t.Fatal("total cpu")
	}
	// Merging must not alias the source monitors.
	a.Record("SELECT id FROM t WHERE a = 3", exec.Stats{RowsRead: 10, RowsSent: 1})
	if q.Executions != 2 {
		t.Fatal("merge aliased source")
	}
}

func TestResetClears(t *testing.T) {
	m := NewMonitor()
	m.Record("SELECT id FROM t WHERE a = 1", exec.Stats{RowsRead: 10})
	m.Reset()
	if m.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestQueriesOrderedByBenefit(t *testing.T) {
	m := NewMonitor()
	m.Record("SELECT id FROM t WHERE small = 1", exec.Stats{RowsRead: 10, RowsSent: 1, PageReads: 1})
	for i := 0; i < 10; i++ {
		m.Record("SELECT id FROM t WHERE big = 1", exec.Stats{RowsRead: 10000, RowsSent: 1, PageReads: 500})
	}
	qs := m.Queries()
	if qs[0].Normalized != "SELECT id FROM t WHERE big = ?" {
		t.Fatalf("order wrong: %s first", qs[0].Normalized)
	}
}
