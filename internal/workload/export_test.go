package workload

import (
	"bytes"
	"strings"
	"testing"

	"aim/internal/exec"
)

func TestExportImportRoundTrip(t *testing.T) {
	m := NewMonitor()
	for i := 0; i < 7; i++ {
		m.Record("SELECT a FROM t WHERE x = 5 AND s = 'it''s'", exec.Stats{RowsRead: 100, RowsSent: 2, PageReads: 10})
	}
	m.Record("UPDATE t SET a = 1 WHERE id = 9", exec.Stats{RowsWritten: 1, PageReads: 3})
	m.SetWeight("SELECT a FROM t WHERE x = ? AND s = ?", 2.5)

	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	out := NewMonitor()
	if err := out.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if out.Len() != m.Len() {
		t.Fatalf("len = %d, want %d", out.Len(), m.Len())
	}
	q := out.Get("SELECT a FROM t WHERE x = ? AND s = ?")
	if q == nil {
		t.Fatal("query missing after import")
	}
	orig := m.Get(q.Normalized)
	if q.Executions != orig.Executions || q.CPUSeconds != orig.CPUSeconds ||
		q.RowsRead != orig.RowsRead || q.RowsSent != orig.RowsSent || q.Weight != orig.Weight {
		t.Fatalf("stats diverged:\n  got  %+v\n  want %+v", q, orig)
	}
	// Parameter samples survive (including the quoted string) and rebind.
	if len(q.SampleParams) == 0 {
		t.Fatal("sample params lost")
	}
	if q.SampleParams[0][0].Int() != 5 || q.SampleParams[0][1].Str() != "it's" {
		t.Fatalf("params = %v", q.SampleParams[0])
	}
	if q.Benefit() != orig.Benefit() {
		t.Fatal("benefit diverged")
	}
}

func TestImportIsAdditiveAcrossReplicas(t *testing.T) {
	mk := func() *bytes.Buffer {
		m := NewMonitor()
		m.Record("SELECT a FROM t WHERE x = 1", exec.Stats{RowsRead: 10, RowsSent: 1, PageReads: 2})
		var buf bytes.Buffer
		if err := m.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	fleet := NewMonitor()
	for i := 0; i < 3; i++ {
		if err := fleet.Import(mk()); err != nil {
			t.Fatal(err)
		}
	}
	q := fleet.Get("SELECT a FROM t WHERE x = ?")
	if q == nil || q.Executions != 3 || q.RowsRead != 30 {
		t.Fatalf("aggregate = %+v", q)
	}
}

func TestImportErrors(t *testing.T) {
	m := NewMonitor()
	if err := m.Import(strings.NewReader("{not json")); err == nil {
		t.Error("bad json accepted")
	}
	if err := m.Import(strings.NewReader(`{"queries":[{"normalized":"NOT SQL"}]}`)); err == nil {
		t.Error("bad normalized sql accepted")
	}
	if err := m.Import(strings.NewReader(`{"queries":[{"normalized":"SELECT a FROM t","sample_params":[["@@@"]]}]}`)); err == nil {
		t.Error("bad parameter literal accepted")
	}
}
