// Package workload implements AIM's workload monitor (§III-C): it groups
// executions by normalized query, accumulates execution statistics (CPU,
// rows read/sent, execution counts), computes the discarded data ratio and
// the optimistic expected benefit of Eq. 5, and selects the representative
// workload that the candidate generator optimizes.
//
// It also models the continuous statistics export pipeline (§VII-A): per
// replica monitors can be merged into a fleet-wide view.
package workload

import (
	"fmt"
	"sort"

	"aim/internal/exec"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// sampleParamsKeep bounds how many parameter sets are retained per
// normalized query for replay.
const sampleParamsKeep = 8

// QueryStats accumulates execution statistics for one normalized query.
type QueryStats struct {
	Normalized string
	// Stmt is the parsed normalized statement (contains placeholders).
	Stmt sqlparser.Statement
	// Weight is a manual importance multiplier (default 1).
	Weight float64

	Executions int64
	CPUSeconds float64
	RowsRead   int64
	RowsSent   int64
	// SampleParams holds recent parameter bindings for replay.
	SampleParams [][]sqltypes.Value
}

// CPUAvg returns average CPU seconds per execution.
func (q *QueryStats) CPUAvg() float64 {
	if q.Executions == 0 {
		return 0
	}
	return q.CPUSeconds / float64(q.Executions)
}

// DDR returns the data-sent-to-data-read ratio in [0, 1] (§III-A2). A low
// value means most of the data read was discarded — the query is a strong
// optimization candidate.
func (q *QueryStats) DDR() float64 {
	if q.RowsRead == 0 {
		return 1
	}
	r := float64(q.RowsSent) / float64(q.RowsRead)
	if r > 1 {
		return 1
	}
	return r
}

// Benefit is the optimistic expected benefit B(q, X, Δt) of Eq. 5: the CPU
// seconds that could be saved if every read that was not returned had been
// avoided by a perfect index.
func (q *QueryStats) Benefit() float64 {
	w := q.Weight
	if w == 0 {
		w = 1
	}
	return w * (1 - q.DDR()) * q.CPUSeconds
}

// IsDML reports whether the normalized statement mutates data.
func (q *QueryStats) IsDML() bool {
	switch q.Stmt.(type) {
	case *sqlparser.Insert, *sqlparser.Update, *sqlparser.Delete:
		return true
	}
	return false
}

// Monitor aggregates execution statistics per normalized query.
type Monitor struct {
	queries map[string]*QueryStats
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{queries: map[string]*QueryStats{}} }

// Record ingests one execution of sql with its observed statistics.
func (m *Monitor) Record(sql string, st exec.Stats) error {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return err
	}
	return m.RecordStmt(stmt, st)
}

// RecordStmt ingests one execution of a parsed statement.
func (m *Monitor) RecordStmt(stmt sqlparser.Statement, st exec.Stats) error {
	norm, params := sqlparser.Normalize(stmt)
	q := m.queries[norm]
	if q == nil {
		normStmt, err := sqlparser.Parse(norm)
		if err != nil {
			return fmt.Errorf("workload: re-parse of normalized query failed: %v", err)
		}
		q = &QueryStats{Normalized: norm, Stmt: normStmt}
		m.queries[norm] = q
	}
	q.Executions++
	q.CPUSeconds += st.CPUSeconds()
	q.RowsRead += st.RowsRead
	q.RowsSent += st.RowsSent
	if len(q.SampleParams) < sampleParamsKeep {
		q.SampleParams = append(q.SampleParams, params)
	} else {
		// Deterministic reservoir-ish rotation keeps recent variety.
		q.SampleParams[int(q.Executions)%sampleParamsKeep] = params
	}
	return nil
}

// SetWeight assigns a manual importance weight to a normalized query.
func (m *Monitor) SetWeight(normalized string, w float64) {
	if q := m.queries[normalized]; q != nil {
		q.Weight = w
	}
}

// Queries returns all tracked normalized queries sorted by descending
// benefit.
func (m *Monitor) Queries() []*QueryStats {
	out := make([]*QueryStats, 0, len(m.queries))
	for _, q := range m.queries {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i].Benefit(), out[j].Benefit()
		if bi != bj {
			return bi > bj
		}
		return out[i].Normalized < out[j].Normalized
	})
	return out
}

// Get returns the stats for a normalized query text, or nil.
func (m *Monitor) Get(normalized string) *QueryStats { return m.queries[normalized] }

// Len returns the number of distinct normalized queries.
func (m *Monitor) Len() int { return len(m.queries) }

// Reset clears all accumulated statistics (start of a new interval).
func (m *Monitor) Reset() { m.queries = map[string]*QueryStats{} }

// TotalCPUSeconds sums CPU across all queries — the denominator for
// fleet-level savings accounting.
func (m *Monitor) TotalCPUSeconds() float64 {
	t := 0.0
	for _, q := range m.queries {
		t += q.CPUSeconds
	}
	return t
}

// Merge combines per-replica monitors into a fleet-wide view (§VII-A).
func Merge(monitors ...*Monitor) *Monitor {
	out := NewMonitor()
	for _, m := range monitors {
		for norm, q := range m.queries {
			dst := out.queries[norm]
			if dst == nil {
				cp := *q
				cp.SampleParams = append([][]sqltypes.Value(nil), q.SampleParams...)
				out.queries[norm] = &cp
				continue
			}
			dst.Executions += q.Executions
			dst.CPUSeconds += q.CPUSeconds
			dst.RowsRead += q.RowsRead
			dst.RowsSent += q.RowsSent
			for _, p := range q.SampleParams {
				if len(dst.SampleParams) < sampleParamsKeep {
					dst.SampleParams = append(dst.SampleParams, p)
				}
			}
		}
	}
	return out
}

// SelectionConfig tunes representative workload selection (§III-C).
type SelectionConfig struct {
	// MinExecutions weeds out spurious ad-hoc queries.
	MinExecutions int64
	// MinBenefit is the threshold on B (e.g. 1/20 of a CPU core over the
	// observation interval, i.e. 0.05 × Δt seconds).
	MinBenefit float64
	// TopK caps the number of queries selected; 0 = unlimited.
	TopK int
	// IncludeDML keeps DML statements in the workload so that index
	// maintenance costs are observed. DML is never *optimized* for reads,
	// but Eq. 8 needs it.
	IncludeDML bool
}

// DefaultSelection mirrors the paper's deployment defaults.
func DefaultSelection() SelectionConfig {
	return SelectionConfig{MinExecutions: 3, MinBenefit: 0, TopK: 50, IncludeDML: true}
}

// Representative selects the queries worth optimizing, ordered by expected
// benefit (Eq. 5). DML statements, when included, are appended after read
// queries regardless of benefit: they matter for maintenance accounting.
func (m *Monitor) Representative(cfg SelectionConfig) []*QueryStats {
	var reads, dml []*QueryStats
	for _, q := range m.Queries() {
		if q.Executions < cfg.MinExecutions {
			continue
		}
		if q.IsDML() {
			if cfg.IncludeDML {
				dml = append(dml, q)
			}
			continue
		}
		if q.Benefit() < cfg.MinBenefit {
			continue
		}
		reads = append(reads, q)
	}
	if cfg.TopK > 0 && len(reads) > cfg.TopK {
		reads = reads[:cfg.TopK]
	}
	return append(reads, dml...)
}
