package products

import (
	"math/rand"
	"testing"

	"aim/internal/catalog"
	"aim/internal/workload"
)

// smallSpec is a fast test-sized product.
func smallSpec() Spec {
	return Spec{Name: "Product T", Tables: 6, JoinQueries: 8, Type: Balanced, TargetDBA: 20, RowsPerTable: 200, Seed: 7}
}

func TestBuildProduct(t *testing.T) {
	p, err := Build(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.DB.Schema.Tables()); got != 6 {
		t.Fatalf("tables = %d", got)
	}
	if p.DB.Store.Table("t000").RowCount() != 200 {
		t.Fatal("rows missing")
	}
	if len(p.DBAIndexes) == 0 {
		t.Fatal("no DBA indexes derived")
	}
	// DBA indexes must be valid for the schema.
	if err := p.ApplyDBAIndexes(); err != nil {
		t.Fatal(err)
	}
	if got := len(p.DB.Schema.Indexes()); got != len(p.DBAIndexes) {
		t.Fatalf("materialized %d of %d", got, len(p.DBAIndexes))
	}
	p.DropAllSecondaryIndexes()
	if got := len(p.DB.Schema.Indexes()); got != 0 {
		t.Fatalf("%d indexes survived drop", got)
	}
}

func TestSampledWorkloadExecutes(t *testing.T) {
	p, err := Build(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	mon := workload.NewMonitor()
	reads, writes := 0, 0
	for i := 0; i < 300; i++ {
		sql := p.SampleStatement(r)
		res, err := p.DB.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if err := mon.Record(sql, res.Stats); err != nil {
			t.Fatal(err)
		}
		if res.Columns == nil && res.Rows == nil {
			writes++
		} else {
			reads++
		}
	}
	if mon.Len() == 0 {
		t.Fatal("no normalized queries")
	}
}

func TestWorkloadMixMatchesType(t *testing.T) {
	for _, ty := range []WorkloadType{WriteHeavy, ReadHeavy, Balanced} {
		spec := smallSpec()
		spec.Type = ty
		p, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(2))
		writes := 0
		const n = 2000
		for i := 0; i < n; i++ {
			sql := p.SampleStatement(r)
			if sql[0] == 'I' || sql[0] == 'U' || sql[0] == 'D' {
				writes++
			}
		}
		frac := float64(writes) / n
		want := ty.writeFraction()
		if frac < want-0.05 || frac > want+0.05 {
			t.Errorf("%v: write fraction %.2f, want ~%.2f", ty, frac, want)
		}
	}
}

func TestCatalogSpecsMatchTable2(t *testing.T) {
	if len(Catalog) != 7 {
		t.Fatalf("products = %d", len(Catalog))
	}
	wantTables := map[string]int{
		"Product A": 147, "Product B": 184, "Product C": 42, "Product D": 16,
		"Product E": 51, "Product F": 5, "Product G": 79,
	}
	wantJoins := map[string]int{
		"Product A": 67, "Product B": 733, "Product C": 25, "Product D": 18,
		"Product E": 41, "Product F": 10, "Product G": 386,
	}
	for _, s := range Catalog {
		if s.Tables != wantTables[s.Name] {
			t.Errorf("%s tables = %d", s.Name, s.Tables)
		}
		if s.JoinQueries != wantJoins[s.Name] {
			t.Errorf("%s joins = %d", s.Name, s.JoinQueries)
		}
	}
	if _, ok := SpecByName("C"); !ok {
		t.Error("SpecByName by letter failed")
	}
	if _, ok := SpecByName("Product F"); !ok {
		t.Error("SpecByName by full name failed")
	}
	if _, ok := SpecByName("Z"); ok {
		t.Error("unknown product found")
	}
}

func TestJaccard(t *testing.T) {
	mk := func(cols ...string) *catalog.Index {
		return &catalog.Index{Table: "t", Columns: cols}
	}
	a := []*catalog.Index{mk("a"), mk("b")}
	b := []*catalog.Index{mk("a"), mk("c")}
	if got := Jaccard(a, b); got != 1.0/3 {
		t.Errorf("jaccard = %v", got)
	}
	if Jaccard(nil, nil) != 1 {
		t.Error("empty sets should be identical")
	}
	if Jaccard(a, a) != 1 {
		t.Error("self similarity")
	}
	if Jaccard(a, nil) != 0 {
		t.Error("disjoint")
	}
}
