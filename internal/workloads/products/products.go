// Package products synthesizes the seven production workloads of Table II
// (Products A-G). The paper's real workloads are proprietary; this
// generator reproduces the *experiment design*: per product it matches the
// table count, join-query count, read/write mix, and a manually tuned DBA
// index set derived the way a DBA would (one obvious index per query
// template, plus a sprinkle of stale/legacy indexes). Experiments then drop
// all secondary indexes and let AIM rebuild from scratch, comparing index
// count, total size and Jaccard similarity against the DBA set.
package products

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/sqltypes"
	"aim/internal/stats"
)

// WorkloadType is the read/write mix classification from Table II.
type WorkloadType int

// Workload types.
const (
	WriteHeavy WorkloadType = iota
	ReadHeavy
	Balanced
)

func (w WorkloadType) String() string {
	switch w {
	case WriteHeavy:
		return "Write Heavy"
	case ReadHeavy:
		return "Read Heavy"
	default:
		return "Balanced"
	}
}

// writeFraction returns the probability that a sampled statement is DML.
func (w WorkloadType) writeFraction() float64 {
	switch w {
	case WriteHeavy:
		return 0.55
	case ReadHeavy:
		return 0.08
	default:
		return 0.30
	}
}

// Spec parameterizes one synthetic product.
type Spec struct {
	Name         string
	Tables       int
	JoinQueries  int
	Type         WorkloadType
	TargetDBA    int // approximate DBA index count from Table II
	RowsPerTable int
	Seed         int64
}

// Catalog mirrors Table II's product metadata. RowsPerTable is chosen so
// the whole fleet stays laptop-sized; relative proportions drive the size
// comparisons, not absolute GiB.
var Catalog = []Spec{
	{Name: "Product A", Tables: 147, JoinQueries: 67, Type: WriteHeavy, TargetDBA: 248, RowsPerTable: 600, Seed: 101},
	{Name: "Product B", Tables: 184, JoinQueries: 733, Type: ReadHeavy, TargetDBA: 287, RowsPerTable: 400, Seed: 102},
	{Name: "Product C", Tables: 42, JoinQueries: 25, Type: Balanced, TargetDBA: 51, RowsPerTable: 800, Seed: 103},
	{Name: "Product D", Tables: 16, JoinQueries: 18, Type: WriteHeavy, TargetDBA: 56, RowsPerTable: 1000, Seed: 104},
	{Name: "Product E", Tables: 51, JoinQueries: 41, Type: ReadHeavy, TargetDBA: 109, RowsPerTable: 800, Seed: 105},
	{Name: "Product F", Tables: 5, JoinQueries: 10, Type: ReadHeavy, TargetDBA: 33, RowsPerTable: 1500, Seed: 106},
	{Name: "Product G", Tables: 79, JoinQueries: 386, Type: Balanced, TargetDBA: 232, RowsPerTable: 500, Seed: 107},
}

// SpecByName finds a catalog entry ("A".."G" or full name).
func SpecByName(name string) (Spec, bool) {
	for _, s := range Catalog {
		if strings.EqualFold(s.Name, name) || strings.EqualFold(s.Name, "Product "+name) {
			return s, true
		}
	}
	return Spec{}, false
}

// template is one generated query shape with the metadata needed to derive
// the DBA's "obvious" index for it.
type template struct {
	text     string // with %d / %s markers replaced per sample
	kind     tmplKind
	table    string
	eqCols   []string
	rangeCol string
	orderCol string
	joinWith string // second table for join templates
	weight   int    // relative sampling frequency
}

type tmplKind int

const (
	tmplEq tmplKind = iota
	tmplEqRange
	tmplEqOrder
	tmplGroup
	tmplIn
	tmplJoin2
	tmplJoin3
)

// Product is a generated database plus its workload and DBA index set.
type Product struct {
	Spec Spec
	DB   *engine.DB
	// DBAIndexes is the manually tuned configuration (materialize with
	// ApplyDBAIndexes).
	DBAIndexes []*catalog.Index
	templates  []template
	rows       map[string]int // live row count per table for DML sampling
	nextID     map[string]int64
}

// numCols is the number of non-id columns per table.
const numCols = 6

func tableName(i int) string { return fmt.Sprintf("t%03d", i) }
func colName(i int) string   { return fmt.Sprintf("c%d", i) }

// Build generates the product database, workload templates and DBA set.
func Build(spec Spec) (*Product, error) {
	if spec.RowsPerTable <= 0 {
		spec.RowsPerTable = 300
	}
	db := engine.New(strings.ReplaceAll(strings.ToLower(spec.Name), " ", "-"))
	r := rand.New(rand.NewSource(spec.Seed))
	p := &Product{Spec: spec, DB: db, rows: map[string]int{}, nextID: map[string]int64{}}

	// Schema: every table has id PK, c1..c4 ints of varying cardinality,
	// c5 string, c6 int "ref" used for joins.
	for i := 0; i < spec.Tables; i++ {
		name := tableName(i)
		ddl := fmt.Sprintf(`CREATE TABLE %s (id INT, c1 INT, c2 INT, c3 INT, c4 INT, c5 VARCHAR(8), c6 INT, c7 INT, PRIMARY KEY (id))`, name)
		if _, err := db.Exec(ddl); err != nil {
			return nil, err
		}
		var rows []sqltypes.Row
		for k := 0; k < spec.RowsPerTable; k++ {
			rows = append(rows, p.randomRow(r, int64(k), spec.RowsPerTable))
		}
		if err := db.InsertRows(name, rows); err != nil {
			return nil, err
		}
		p.rows[name] = spec.RowsPerTable
		p.nextID[name] = int64(spec.RowsPerTable)
	}
	db.Analyze()

	p.generateTemplates(r)
	p.deriveDBAIndexes(r)
	return p, nil
}

func (p *Product) randomRow(r *rand.Rand, id int64, n int) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewInt(id),
		sqltypes.NewInt(int64(r.Intn(max(5, n/10)))),       // c1: mid cardinality
		sqltypes.NewInt(int64(r.Intn(max(3, n/40)))),       // c2: low cardinality
		sqltypes.NewInt(int64(r.Intn(n * 2))),              // c3: high cardinality
		sqltypes.NewInt(int64(r.Intn(100))),                // c4: range-ish
		sqltypes.NewString(fmt.Sprintf("s%d", r.Intn(12))), // c5
		sqltypes.NewInt(int64(r.Intn(max(5, n/8)))),        // c6: join key
		sqltypes.NewInt(int64(r.Intn(10000))),              // c7: payload, updated by DML
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// generateTemplates builds read templates: enough single-table shapes to
// roughly hit the DBA index target, plus the Table II join-query count.
func (p *Product) generateTemplates(r *rand.Rand) {
	single := p.Spec.TargetDBA - p.Spec.JoinQueries/4
	if single < p.Spec.Tables/2 {
		single = p.Spec.Tables / 2
	}
	shapes := []tmplKind{tmplEq, tmplEq, tmplEqRange, tmplEqOrder, tmplGroup, tmplIn}
	for i := 0; i < single; i++ {
		table := tableName(r.Intn(p.Spec.Tables))
		kind := shapes[r.Intn(len(shapes))]
		t := template{kind: kind, table: table, weight: 1 + r.Intn(8)}
		switch kind {
		case tmplEq:
			t.eqCols = pickCols(r, 1+r.Intn(2))
		case tmplEqRange:
			t.eqCols = pickCols(r, 1+r.Intn(2))
			t.rangeCol = "c4"
		case tmplEqOrder:
			t.eqCols = pickCols(r, 1)
			t.orderCol = "c3"
		case tmplGroup:
			t.eqCols = nil
			t.orderCol = ""
			t.rangeCol = ""
		case tmplIn:
			t.eqCols = []string{"c5"}
		}
		p.templates = append(p.templates, t)
	}
	// Join queries concentrate on a small set of hub tables (real schemas
	// join through a few central entities), which makes distinct join
	// indexes far fewer than join queries — as in Table II, where Product B
	// has 733 join queries but only 287 DBA indexes.
	nJoin := p.Spec.JoinQueries
	hubs := p.Spec.Tables / 5
	if hubs < 2 {
		hubs = 2
	}
	for i := 0; i < nJoin; i++ {
		a := tableName(r.Intn(p.Spec.Tables))
		b := tableName(r.Intn(hubs))
		for b == a {
			b = tableName(r.Intn(p.Spec.Tables))
		}
		t := template{kind: tmplJoin2, table: a, joinWith: b,
			eqCols: []string{colName(1 + r.Intn(2))}, weight: 1 + r.Intn(4)}
		if r.Intn(4) == 0 {
			t.kind = tmplJoin3
		}
		p.templates = append(p.templates, t)
	}
}

func pickCols(r *rand.Rand, n int) []string {
	perm := r.Perm(4)
	var out []string
	for i := 0; i < n && i < len(perm); i++ {
		out = append(out, colName(perm[i]+1)) // c1..c4
	}
	return out
}

// deriveDBAIndexes builds the manual configuration. A competent DBA
// reasons about index column order much like AIM does (that is what gives
// Table II its high Jaccard similarities): per query template they write
// down the equality columns followed by the range/order column, then fold
// narrower templates into wider indexes on the same table by putting the
// shared (prefix) columns first, order equality groups by selectivity, and
// finally drop prefix-redundant leftovers. A sprinkle of stale "legacy"
// indexes that no current query uses survives the cleanup, as in any real
// deployment. The count is capped near the Table II target, hottest
// templates first.
func (p *Product) deriveDBAIndexes(r *rand.Rand) {
	type naive struct {
		table  string
		fronts [][]string // ordered groups; within a group NDV-desc
		tail   []string   // range/order suffix
		weight int
		merged bool
	}
	colsOf := func(n *naive) map[string]bool {
		set := map[string]bool{}
		for _, g := range n.fronts {
			for _, c := range g {
				set[c] = true
			}
		}
		for _, c := range n.tail {
			set[c] = true
		}
		return set
	}

	// One naive index sketch per template, hottest first.
	ordered := append([]template(nil), p.templates...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].weight > ordered[j].weight })
	var sketches []*naive
	for _, t := range ordered {
		n := &naive{table: t.table, weight: t.weight}
		switch t.kind {
		case tmplGroup:
			n.fronts = [][]string{{"c2"}}
		case tmplJoin2, tmplJoin3:
			n.fronts = [][]string{unionColsP(append([]string{"c6"}, t.eqCols...))}
			sketches = append(sketches, &naive{table: t.joinWith, fronts: [][]string{{"c6"}}, weight: t.weight})
		default:
			if len(t.eqCols) > 0 {
				n.fronts = [][]string{unionColsP(t.eqCols)}
			}
			if t.rangeCol != "" {
				n.tail = append(n.tail, t.rangeCol)
			}
			if t.orderCol != "" {
				n.tail = append(n.tail, t.orderCol)
			}
		}
		if len(n.fronts) > 0 || len(n.tail) > 0 {
			sketches = append(sketches, n)
		}
	}

	// One folding pass: a sketch whose columns are a subset of a wider
	// sketch's first equality group gets pulled to the front of it.
	for i, small := range sketches {
		if small.merged || len(small.tail) > 0 || len(small.fronts) != 1 {
			continue
		}
		for j, big := range sketches {
			if i == j || big.merged || small.table != big.table || len(big.fronts) == 0 {
				continue
			}
			group := map[string]bool{}
			for _, c := range big.fronts[0] {
				group[c] = true
			}
			sub := true
			for c := range colsOf(small) {
				if !group[c] {
					sub = false
					break
				}
			}
			if !sub || len(small.fronts[0]) == len(big.fronts[0]) {
				continue
			}
			var rest []string
			for _, c := range big.fronts[0] {
				if !contains(small.fronts[0], c) {
					rest = append(rest, c)
				}
			}
			big.fronts = append([][]string{small.fronts[0], rest}, big.fronts[1:]...)
			small.merged = true
			break
		}
	}

	seen := map[string]bool{}
	add := func(table string, cols []string) {
		uniq := cols[:0:0]
		seenCol := map[string]bool{}
		for _, c := range cols {
			if c != "" && !seenCol[c] {
				seenCol[c] = true
				uniq = append(uniq, c)
			}
		}
		if len(uniq) == 0 {
			return
		}
		ix := &catalog.Index{
			Name:      fmt.Sprintf("dba_%s_%d", table, len(p.DBAIndexes)),
			Table:     table,
			Columns:   uniq,
			CreatedBy: "dba",
		}
		if !seen[ix.Key()] {
			seen[ix.Key()] = true
			p.DBAIndexes = append(p.DBAIndexes, ix)
		}
	}
	for _, n := range sketches {
		if n.merged {
			continue
		}
		if len(p.DBAIndexes) >= p.Spec.TargetDBA {
			break
		}
		ts := p.DB.TableStats(n.table)
		var cols []string
		for _, g := range n.fronts {
			gg := append([]string(nil), g...)
			sortColsByNDV(gg, ts)
			cols = append(cols, gg...)
		}
		cols = append(cols, n.tail...)
		add(n.table, cols)
	}
	// Legacy indexes: plausible once, unused by the current workload.
	legacy := len(p.DBAIndexes) / 12
	for i := 0; i < legacy; i++ {
		table := tableName(r.Intn(p.Spec.Tables))
		add(table, []string{"c3", "c5"})
	}
	// A tidy DBA drops indexes that are prefixes of wider ones.
	p.DBAIndexes = dropPrefixIndexes(p.DBAIndexes)
}

func unionColsP(cols []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func contains(list []string, c string) bool {
	for _, x := range list {
		if x == c {
			return true
		}
	}
	return false
}

// dropPrefixIndexes removes indexes whose columns are a strict prefix of
// another index on the same table.
func dropPrefixIndexes(ixs []*catalog.Index) []*catalog.Index {
	out := ixs[:0:0]
	for i, ix := range ixs {
		redundant := false
		for j, other := range ixs {
			if i == j || !strings.EqualFold(ix.Table, other.Table) || len(ix.Columns) >= len(other.Columns) {
				continue
			}
			match := true
			for k, c := range ix.Columns {
				if !strings.EqualFold(c, other.Columns[k]) {
					match = false
					break
				}
			}
			if match {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, ix)
		}
	}
	return out
}

// sortColsByNDV orders columns by decreasing NDV (ties alphabetical).
func sortColsByNDV(cols []string, ts *stats.TableStats) {
	sort.SliceStable(cols, func(i, j int) bool {
		if ts != nil {
			ci, cj := ts.Column(cols[i]), ts.Column(cols[j])
			if ci != nil && cj != nil && ci.NDV != cj.NDV {
				return ci.NDV > cj.NDV
			}
		}
		return cols[i] < cols[j]
	})
}

// NumTemplates returns the number of generated query templates; harnesses
// size their observation windows with it.
func (p *Product) NumTemplates() int { return len(p.templates) }

// ApplyDBAIndexes materializes the manual configuration on the database.
func (p *Product) ApplyDBAIndexes() error {
	for _, ix := range p.DBAIndexes {
		def := *ix
		def.Columns = append([]string(nil), ix.Columns...)
		if _, err := p.DB.CreateIndex(&def); err != nil {
			return err
		}
	}
	p.DB.Analyze()
	return nil
}

// DropAllSecondaryIndexes removes every secondary index (the Fig. 3
// experiment's starting point).
func (p *Product) DropAllSecondaryIndexes() {
	for _, ix := range p.DB.Schema.Indexes() {
		p.DB.DropIndex(ix.Name)
	}
	p.DB.Analyze()
}

// SampleStatement draws one workload statement according to the product's
// read/write mix. It is safe to execute (inserts use fresh ids).
func (p *Product) SampleStatement(r *rand.Rand) string {
	if r.Float64() < p.Spec.Type.writeFraction() {
		return p.sampleWrite(r)
	}
	return p.sampleRead(r)
}

// SampleRead draws one read statement.
func (p *Product) SampleRead(r *rand.Rand) string { return p.sampleRead(r) }

// SampleWrite draws one DML statement (insert with a fresh id, delete or
// payload update by primary key).
func (p *Product) SampleWrite(r *rand.Rand) string { return p.sampleWrite(r) }

// SampleMixed draws one statement with an explicit write fraction,
// overriding the spec's mix. Scenario generators use it to shift the
// read/write balance over time (a diurnal workload is read-heavy by day and
// write-heavy by night) while keeping the template population fixed.
func (p *Product) SampleMixed(r *rand.Rand, writeFraction float64) string {
	if r.Float64() < writeFraction {
		return p.sampleWrite(r)
	}
	return p.sampleRead(r)
}

func (p *Product) sampleRead(r *rand.Rand) string {
	// Weighted template choice.
	total := 0
	for _, t := range p.templates {
		total += t.weight
	}
	pick := r.Intn(total)
	var t template
	for _, cand := range p.templates {
		pick -= cand.weight
		if pick < 0 {
			t = cand
			break
		}
	}
	n := p.Spec.RowsPerTable
	eq := func(col string) string {
		switch col {
		case "c1":
			return fmt.Sprintf("%s = %d", col, r.Intn(max(5, n/10)))
		case "c2":
			return fmt.Sprintf("%s = %d", col, r.Intn(max(3, n/40)))
		case "c3":
			return fmt.Sprintf("%s = %d", col, r.Intn(n*2))
		case "c4":
			return fmt.Sprintf("%s = %d", col, r.Intn(100))
		default:
			return fmt.Sprintf("%s = 's%d'", col, r.Intn(12))
		}
	}
	var where []string
	for _, c := range t.eqCols {
		where = append(where, eq(c))
	}
	switch t.kind {
	case tmplEq:
		return fmt.Sprintf("SELECT id, c3, c5 FROM %s WHERE %s", t.table, strings.Join(where, " AND "))
	case tmplEqRange:
		lo := r.Intn(80)
		where = append(where, fmt.Sprintf("c4 BETWEEN %d AND %d", lo, lo+10+r.Intn(15)))
		return fmt.Sprintf("SELECT id, c5 FROM %s WHERE %s", t.table, strings.Join(where, " AND "))
	case tmplEqOrder:
		return fmt.Sprintf("SELECT id, c3 FROM %s WHERE %s ORDER BY c3 LIMIT %d",
			t.table, strings.Join(where, " AND "), 5+r.Intn(20))
	case tmplGroup:
		return fmt.Sprintf("SELECT c2, COUNT(*), SUM(c4) FROM %s WHERE c4 > %d GROUP BY c2", t.table, r.Intn(60))
	case tmplIn:
		return fmt.Sprintf("SELECT id, c4 FROM %s WHERE c5 IN ('s%d', 's%d', 's%d')",
			t.table, r.Intn(12), r.Intn(12), r.Intn(12))
	case tmplJoin2:
		return fmt.Sprintf(`SELECT a.id, b.c3 FROM %s a JOIN %s b ON b.c6 = a.c6 WHERE %s LIMIT 100`,
			t.table, t.joinWith, "a."+eqPrefix(where))
	case tmplJoin3:
		third := t.joinWith
		return fmt.Sprintf(`SELECT a.id FROM %s a JOIN %s b ON b.c6 = a.c6 JOIN %s c ON c.c6 = b.c6
			WHERE %s AND c.c4 < %d LIMIT 50`,
			t.table, t.joinWith, third, "a."+eqPrefix(where), 20+r.Intn(60))
	}
	return fmt.Sprintf("SELECT id FROM %s LIMIT 10", t.table)
}

// eqPrefix qualifies the first predicate with the alias prefix.
func eqPrefix(where []string) string {
	if len(where) == 0 {
		return "c4 < 50"
	}
	return where[0]
}

func (p *Product) sampleWrite(r *rand.Rand) string {
	table := tableName(r.Intn(p.Spec.Tables))
	n := p.Spec.RowsPerTable
	switch r.Intn(8) {
	case 0, 1: // insert
		id := p.nextID[table]
		p.nextID[table]++
		p.rows[table]++
		return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, %d, %d, %d, 's%d', %d, %d)",
			table, id, r.Intn(max(5, n/10)), r.Intn(max(3, n/40)), r.Intn(n*2), r.Intn(100), r.Intn(12), r.Intn(max(5, n/8)), r.Intn(10000))
	case 2: // delete by pk
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, r.Int63n(p.nextID[table]))
	default: // update of the unindexed payload column by pk
		return fmt.Sprintf("UPDATE %s SET c7 = %d WHERE id = %d",
			table, r.Intn(10000), r.Int63n(p.nextID[table]))
	}
}

// Jaccard computes the Jaccard similarity of two index sets by identity
// key (table + ordered columns), as reported in Table II.
func Jaccard(a, b []*catalog.Index) float64 {
	sa := map[string]bool{}
	for _, ix := range a {
		sa[ix.Key()] = true
	}
	inter, union := 0, 0
	seen := map[string]bool{}
	for _, ix := range b {
		k := ix.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		union++
		if sa[k] {
			inter++
		}
	}
	for k := range sa {
		if !seen[k] {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
