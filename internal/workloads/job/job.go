// Package job builds a Join-Order-Benchmark-like workload: an IMDb-style
// schema (titles, names, companies, keywords and their many-to-many link
// tables) with join-heavy analytical query templates of 3-6 way joins.
// The paper uses JOB for Figure 4c/4d because its snowflake joins stress
// join-order-sensitive index selection.
package job

import (
	"fmt"
	"math/rand"

	"aim/internal/engine"
	"aim/internal/sqltypes"
)

// Base row counts at scale 1.0 (IMDb proportions, heavily reduced).
const (
	titleScale     = 8000
	nameScale      = 6000
	companyScale   = 600
	keywordScale   = 1500
	castScale      = 24000
	movieCompScale = 10000
	movieKwScale   = 16000
	infoScale      = 12000
)

var kinds = []string{"movie", "tv series", "video", "short"}
var roles = []string{"actor", "actress", "director", "producer", "writer"}
var countries = []string{"us", "uk", "de", "fr", "jp", "in", "it"}
var infoTypes = []string{"budget", "rating", "genres", "runtime", "votes"}

// Build creates and loads the JOB-like database.
func Build(scale float64, seed int64) (*engine.DB, error) {
	db := engine.New("job")
	ddl := []string{
		`CREATE TABLE title (id INT, kind VARCHAR(12), production_year INT, episode_nr INT, PRIMARY KEY (id))`,
		`CREATE TABLE name (id INT, gender VARCHAR(2), name_pcode INT, PRIMARY KEY (id))`,
		`CREATE TABLE company_name (id INT, country_code VARCHAR(4), name_pcode INT, PRIMARY KEY (id))`,
		`CREATE TABLE keyword (id INT, phonetic INT, PRIMARY KEY (id))`,
		`CREATE TABLE cast_info (id INT, person_id INT, movie_id INT, role VARCHAR(12), nr_order INT, PRIMARY KEY (id))`,
		`CREATE TABLE movie_companies (id INT, movie_id INT, company_id INT, company_type INT, PRIMARY KEY (id))`,
		`CREATE TABLE movie_keyword (id INT, movie_id INT, keyword_id INT, PRIMARY KEY (id))`,
		`CREATE TABLE movie_info (id INT, movie_id INT, info_type INT, info_val INT, PRIMARY KEY (id))`,
	}
	for _, d := range ddl {
		if _, err := db.Exec(d); err != nil {
			return nil, err
		}
	}
	r := rand.New(rand.NewSource(seed))
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	iv := sqltypes.NewInt
	sv := sqltypes.NewString

	nTitle := n(titleScale)
	var rows []sqltypes.Row
	for i := 0; i < nTitle; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), sv(kinds[r.Intn(len(kinds))]), iv(int64(1930 + r.Intn(95))), iv(int64(r.Intn(30))),
		})
	}
	if err := db.InsertRows("title", rows); err != nil {
		return nil, err
	}

	nName := n(nameScale)
	rows = nil
	genders := []string{"m", "f"}
	for i := 0; i < nName; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), sv(genders[r.Intn(2)]), iv(int64(r.Intn(1000)))})
	}
	if err := db.InsertRows("name", rows); err != nil {
		return nil, err
	}

	nComp := n(companyScale)
	rows = nil
	for i := 0; i < nComp; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), sv(countries[r.Intn(len(countries))]), iv(int64(r.Intn(500)))})
	}
	if err := db.InsertRows("company_name", rows); err != nil {
		return nil, err
	}

	nKw := n(keywordScale)
	rows = nil
	for i := 0; i < nKw; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), iv(int64(r.Intn(800)))})
	}
	if err := db.InsertRows("keyword", rows); err != nil {
		return nil, err
	}

	nCast := n(castScale)
	rows = nil
	for i := 0; i < nCast; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), iv(int64(r.Intn(nName))), iv(int64(r.Intn(nTitle))),
			sv(roles[r.Intn(len(roles))]), iv(int64(r.Intn(50))),
		})
	}
	if err := db.InsertRows("cast_info", rows); err != nil {
		return nil, err
	}

	nMC := n(movieCompScale)
	rows = nil
	for i := 0; i < nMC; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), iv(int64(r.Intn(nTitle))), iv(int64(r.Intn(nComp))), iv(int64(1 + r.Intn(4))),
		})
	}
	if err := db.InsertRows("movie_companies", rows); err != nil {
		return nil, err
	}

	nMK := n(movieKwScale)
	rows = nil
	for i := 0; i < nMK; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), iv(int64(r.Intn(nTitle))), iv(int64(r.Intn(nKw)))})
	}
	if err := db.InsertRows("movie_keyword", rows); err != nil {
		return nil, err
	}

	nMI := n(infoScale)
	rows = nil
	for i := 0; i < nMI; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), iv(int64(r.Intn(nTitle))), iv(int64(1 + r.Intn(len(infoTypes)))), iv(int64(r.Intn(10000))),
		})
	}
	if err := db.InsertRows("movie_info", rows); err != nil {
		return nil, err
	}
	db.Analyze()
	return db, nil
}

// Queries returns the join-heavy templates (JOB-style families 1a..13d
// condensed into 12 shapes) with deterministic parameters.
func Queries(seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	yr := func() int { return 1960 + r.Intn(60) }
	return []string{
		// 2-way: production company filter.
		fmt.Sprintf(`SELECT t.id, t.production_year FROM title t
			JOIN movie_companies mc ON mc.movie_id = t.id
			JOIN company_name cn ON cn.id = mc.company_id
			WHERE cn.country_code = '%s' AND t.production_year > %d LIMIT 100`,
			countries[r.Intn(len(countries))], yr()),
		// keyword join.
		fmt.Sprintf(`SELECT t.id FROM title t
			JOIN movie_keyword mk ON mk.movie_id = t.id
			JOIN keyword k ON k.id = mk.keyword_id
			WHERE k.phonetic = %d AND t.kind = 'movie' LIMIT 100`, r.Intn(800)),
		// cast + title.
		fmt.Sprintf(`SELECT n.id, t.production_year FROM name n
			JOIN cast_info ci ON ci.person_id = n.id
			JOIN title t ON t.id = ci.movie_id
			WHERE ci.role = 'director' AND n.gender = 'f' AND t.production_year BETWEEN %d AND %d LIMIT 50`,
			yr(), yr()+20),
		// info filter + company.
		fmt.Sprintf(`SELECT t.id FROM title t
			JOIN movie_info mi ON mi.movie_id = t.id
			JOIN movie_companies mc ON mc.movie_id = t.id
			WHERE mi.info_type = %d AND mi.info_val > %d AND mc.company_type = %d LIMIT 100`,
			1+r.Intn(5), r.Intn(9000), 1+r.Intn(4)),
		// 5-way snowflake.
		fmt.Sprintf(`SELECT t.id, cn.country_code FROM title t
			JOIN movie_companies mc ON mc.movie_id = t.id
			JOIN company_name cn ON cn.id = mc.company_id
			JOIN movie_keyword mk ON mk.movie_id = t.id
			JOIN keyword k ON k.id = mk.keyword_id
			WHERE k.phonetic = %d AND cn.country_code = '%s' AND t.production_year > %d LIMIT 50`,
			r.Intn(800), countries[r.Intn(len(countries))], yr()),
		// cast aggregation.
		fmt.Sprintf(`SELECT ci.role, COUNT(*) FROM cast_info ci
			JOIN title t ON t.id = ci.movie_id
			WHERE t.production_year = %d GROUP BY ci.role`, yr()),
		// movie info aggregation by type.
		fmt.Sprintf(`SELECT mi.info_type, COUNT(*), AVG(mi.info_val) FROM movie_info mi
			JOIN title t ON t.id = mi.movie_id
			WHERE t.kind = '%s' GROUP BY mi.info_type`, kinds[r.Intn(len(kinds))]),
		// 6-way: person through keyword.
		fmt.Sprintf(`SELECT n.id FROM name n
			JOIN cast_info ci ON ci.person_id = n.id
			JOIN title t ON t.id = ci.movie_id
			JOIN movie_keyword mk ON mk.movie_id = t.id
			JOIN keyword k ON k.id = mk.keyword_id
			JOIN movie_info mi ON mi.movie_id = t.id
			WHERE k.phonetic = %d AND mi.info_type = %d AND n.gender = 'm' LIMIT 20`,
			r.Intn(800), 1+r.Intn(5)),
		// ordered scan with limit.
		fmt.Sprintf(`SELECT id, production_year FROM title
			WHERE kind = '%s' ORDER BY production_year LIMIT 25`, kinds[r.Intn(len(kinds))]),
		// episode range.
		fmt.Sprintf(`SELECT id FROM title WHERE kind = 'tv series' AND episode_nr BETWEEN %d AND %d LIMIT 200`,
			r.Intn(10), 15+r.Intn(15)),
		// company fan-out count.
		fmt.Sprintf(`SELECT mc.company_id, COUNT(*) FROM movie_companies mc
			JOIN title t ON t.id = mc.movie_id
			WHERE t.production_year > %d GROUP BY mc.company_id LIMIT 100`, yr()),
		// double link-table join.
		fmt.Sprintf(`SELECT t.id FROM title t
			JOIN movie_info mi ON mi.movie_id = t.id
			JOIN movie_keyword mk ON mk.movie_id = t.id
			WHERE mi.info_val BETWEEN %d AND %d AND mk.keyword_id = %d LIMIT 50`,
			r.Intn(4000), 5000+r.Intn(4000), r.Intn(1000)),
	}
}
