package job

import (
	"testing"

	"aim/internal/workload"
)

func TestBuildAndRunAllQueries(t *testing.T) {
	db, err := Build(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if db.Store.Table("cast_info").RowCount() < 500 {
		t.Fatalf("cast_info rows = %d", db.Store.Table("cast_info").RowCount())
	}
	qs := Queries(3)
	if len(qs) != 12 {
		t.Fatalf("queries = %d", len(qs))
	}
	mon := workload.NewMonitor()
	for i, q := range qs {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("JOB q%d: %v\n%s", i+1, err, q)
		}
		mon.Record(q, res.Stats)
	}
	if mon.Len() != 12 {
		t.Fatalf("normalized = %d", mon.Len())
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Build(0.02, 5)
	b, _ := Build(0.02, 5)
	ra, _ := a.Exec("SELECT COUNT(*), SUM(info_val) FROM movie_info")
	rb, _ := b.Exec("SELECT COUNT(*), SUM(info_val) FROM movie_info")
	if ra.Rows[0][1].Float() != rb.Rows[0][1].Float() {
		t.Fatal("not deterministic")
	}
}
