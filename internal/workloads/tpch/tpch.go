// Package tpch builds a scaled-down TPC-H-like analytical benchmark: the
// eight TPC-H tables with proportional row counts and 22 query templates
// that preserve the structural shape of TPC-H Q1-Q22 within this engine's
// dialect (no subqueries; dates are integer day keys). The paper uses TPC-H
// on PostgreSQL for Figure 4a/4b and Figure 5; the absolute numbers differ
// here, but the algorithm comparison is structure-for-structure.
package tpch

import (
	"fmt"
	"math/rand"

	"aim/internal/engine"
	"aim/internal/sqltypes"
)

// Rows per unit scale factor. TPC-H proportions at 1/1000 of SF1.
const (
	regionRows    = 5
	nationRows    = 25
	supplierScale = 100
	customerScale = 1500
	partScale     = 2000
	partsuppScale = 4000
	ordersScale   = 15000
	lineitemScale = 60000
)

// dayEpoch spans ~7 years of order dates, like TPC-H's 1992-1998.
const (
	dayMin = 8036  // 1992-01-01 as days
	dayMax = 10591 // 1998-12-31
)

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPEC", "5-LOW"}
var shipmodes = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}
var types = []string{"ECONOMY", "STANDARD", "PROMO", "SMALL", "LARGE", "MEDIUM"}
var containers = []string{"SM CASE", "LG BOX", "MED BAG", "JUMBO PKG", "WRAP CASE"}
var flags = []string{"A", "N", "R"}
var statuses = []string{"F", "O", "P"}

// Build creates and loads the TPC-H-like database at the given scale
// (scale 1.0 ≈ 80k rows total). The seed fixes the data distribution.
func Build(scale float64, seed int64) (*engine.DB, error) {
	db := engine.New("tpch")
	ddl := []string{
		`CREATE TABLE region (r_regionkey INT, r_name VARCHAR(16), PRIMARY KEY (r_regionkey))`,
		`CREATE TABLE nation (n_nationkey INT, n_name VARCHAR(16), n_regionkey INT, PRIMARY KEY (n_nationkey))`,
		`CREATE TABLE supplier (s_suppkey INT, s_name VARCHAR(24), s_nationkey INT, s_acctbal FLOAT, PRIMARY KEY (s_suppkey))`,
		`CREATE TABLE customer (c_custkey INT, c_name VARCHAR(24), c_nationkey INT, c_mktsegment VARCHAR(12),
			c_acctbal FLOAT, PRIMARY KEY (c_custkey))`,
		`CREATE TABLE part (p_partkey INT, p_name VARCHAR(32), p_type VARCHAR(16), p_size INT,
			p_container VARCHAR(12), p_retailprice FLOAT, p_brand VARCHAR(12), PRIMARY KEY (p_partkey))`,
		`CREATE TABLE partsupp (ps_partkey INT, ps_suppkey INT, ps_availqty INT, ps_supplycost FLOAT,
			PRIMARY KEY (ps_partkey, ps_suppkey))`,
		`CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_orderstatus VARCHAR(2), o_totalprice FLOAT,
			o_orderdate INT, o_orderpriority VARCHAR(12), o_shippriority INT, PRIMARY KEY (o_orderkey))`,
		`CREATE TABLE lineitem (l_orderkey INT, l_linenumber INT, l_partkey INT, l_suppkey INT,
			l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT,
			l_returnflag VARCHAR(2), l_linestatus VARCHAR(2), l_shipdate INT, l_commitdate INT,
			l_receiptdate INT, l_shipmode VARCHAR(8), PRIMARY KEY (l_orderkey, l_linenumber))`,
	}
	for _, d := range ddl {
		if _, err := db.Exec(d); err != nil {
			return nil, err
		}
	}
	r := rand.New(rand.NewSource(seed))
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	iv := sqltypes.NewInt
	fv := sqltypes.NewFloat
	sv := sqltypes.NewString

	regions := []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"}
	var rows []sqltypes.Row
	for i := 0; i < regionRows; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), sv(regions[i])})
	}
	if err := db.InsertRows("region", rows); err != nil {
		return nil, err
	}

	rows = nil
	for i := 0; i < nationRows; i++ {
		rows = append(rows, sqltypes.Row{iv(int64(i)), sv(fmt.Sprintf("NATION%02d", i)), iv(int64(i % regionRows))})
	}
	if err := db.InsertRows("nation", rows); err != nil {
		return nil, err
	}

	nSupp := n(supplierScale)
	rows = nil
	for i := 0; i < nSupp; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), sv(fmt.Sprintf("Supplier#%05d", i)), iv(int64(r.Intn(nationRows))),
			fv(r.Float64()*11000 - 1000),
		})
	}
	if err := db.InsertRows("supplier", rows); err != nil {
		return nil, err
	}

	nCust := n(customerScale)
	rows = nil
	for i := 0; i < nCust; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), sv(fmt.Sprintf("Customer#%06d", i)), iv(int64(r.Intn(nationRows))),
			sv(segments[r.Intn(len(segments))]), fv(r.Float64()*11000 - 1000),
		})
	}
	if err := db.InsertRows("customer", rows); err != nil {
		return nil, err
	}

	nPart := n(partScale)
	rows = nil
	for i := 0; i < nPart; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), sv(fmt.Sprintf("part moss %d", i)), sv(types[r.Intn(len(types))]),
			iv(int64(1 + r.Intn(50))), sv(containers[r.Intn(len(containers))]),
			fv(900 + r.Float64()*1100), sv(fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))),
		})
	}
	if err := db.InsertRows("part", rows); err != nil {
		return nil, err
	}

	nPS := n(partsuppScale)
	rows = nil
	for i := 0; i < nPS; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i % nPart)), iv(int64((i / nPart * 7) % nSupp)), iv(int64(r.Intn(10000))),
			fv(r.Float64() * 1000),
		})
	}
	if err := db.InsertRows("partsupp", rows); err != nil {
		return nil, err
	}

	nOrders := n(ordersScale)
	rows = nil
	for i := 0; i < nOrders; i++ {
		rows = append(rows, sqltypes.Row{
			iv(int64(i)), iv(int64(r.Intn(nCust))), sv(statuses[r.Intn(len(statuses))]),
			fv(1000 + r.Float64()*450000), iv(int64(dayMin + r.Intn(dayMax-dayMin))),
			sv(priorities[r.Intn(len(priorities))]), iv(int64(r.Intn(2))),
		})
	}
	if err := db.InsertRows("orders", rows); err != nil {
		return nil, err
	}

	nLine := n(lineitemScale)
	rows = nil
	perOrder := nLine / nOrders
	if perOrder < 1 {
		perOrder = 1
	}
	for i := 0; i < nLine; i++ {
		orderkey := int64(i / perOrder % nOrders)
		ship := int64(dayMin + r.Intn(dayMax-dayMin))
		rows = append(rows, sqltypes.Row{
			iv(orderkey), iv(int64(i % perOrder)), iv(int64(r.Intn(nPart))), iv(int64(r.Intn(nSupp))),
			fv(1 + float64(r.Intn(50))), fv(900 + r.Float64()*100000), fv(float64(r.Intn(11)) / 100),
			fv(float64(r.Intn(9)) / 100), sv(flags[r.Intn(len(flags))]), sv(statuses[r.Intn(2)]),
			iv(ship), iv(ship + int64(r.Intn(30))), iv(ship + int64(r.Intn(60))),
			sv(shipmodes[r.Intn(len(shipmodes))]),
		})
	}
	if err := db.InsertRows("lineitem", rows); err != nil {
		return nil, err
	}
	db.Analyze()
	return db, nil
}

// Queries returns the 22 query templates (Q1..Q22 shapes) instantiated with
// deterministic parameters from seed. Index i holds "Qi+1".
func Queries(seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	day := func(lo, span int) int { return dayMin + lo + r.Intn(span) }
	seg := segments[r.Intn(len(segments))]
	_ = priorities[r.Intn(len(priorities))] // keep the deterministic draw sequence stable
	mode1 := shipmodes[r.Intn(len(shipmodes))]
	mode2 := shipmodes[r.Intn(len(shipmodes))]
	brand := fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))
	typ := types[r.Intn(len(types))]

	return []string{
		// Q1: pricing summary report.
		fmt.Sprintf(`SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice),
			AVG(l_discount), COUNT(*) FROM lineitem WHERE l_shipdate <= %d
			GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`, dayMax-90),
		// Q2: minimum cost supplier (simplified join).
		fmt.Sprintf(`SELECT s.s_name, s.s_acctbal, n.n_name, p.p_partkey FROM part p
			JOIN partsupp ps ON ps.ps_partkey = p.p_partkey
			JOIN supplier s ON s.s_suppkey = ps.ps_suppkey
			JOIN nation n ON n.n_nationkey = s.s_nationkey
			WHERE p.p_size = %d AND n.n_regionkey = %d ORDER BY s.s_acctbal DESC LIMIT 100`, 1+r.Intn(50), r.Intn(5)),
		// Q3: shipping priority.
		fmt.Sprintf(`SELECT o.o_orderkey, SUM(l.l_extendedprice), o.o_orderdate, o.o_shippriority
			FROM customer c JOIN orders o ON o.o_custkey = c.c_custkey
			JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE c.c_mktsegment = '%s' AND o.o_orderdate < %d AND l.l_shipdate > %d
			GROUP BY o.o_orderkey, o.o_orderdate, o.o_shippriority LIMIT 10`, seg, day(800, 400), day(800, 400)),
		// Q4: order priority checking (semi-join flattened).
		fmt.Sprintf(`SELECT o.o_orderpriority, COUNT(*) FROM orders o JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE o.o_orderdate >= %d AND o.o_orderdate < %d AND l.l_commitdate < l.l_receiptdate
			GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`, day(0, 200), day(400, 200)),
		// Q5: local supplier volume.
		fmt.Sprintf(`SELECT n.n_name, SUM(l.l_extendedprice) FROM customer c
			JOIN orders o ON o.o_custkey = c.c_custkey
			JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			JOIN supplier s ON s.s_suppkey = l.l_suppkey
			JOIN nation n ON n.n_nationkey = s.s_nationkey
			WHERE n.n_regionkey = %d AND o.o_orderdate >= %d AND o.o_orderdate < %d
			GROUP BY n.n_name`, r.Intn(5), day(0, 600), day(900, 600)),
		// Q6: forecasting revenue change.
		fmt.Sprintf(`SELECT SUM(l_extendedprice) FROM lineitem
			WHERE l_shipdate >= %d AND l_shipdate < %d AND l_discount BETWEEN 0.02 AND 0.04
			AND l_quantity < %d`, day(0, 300), day(500, 300), 10+r.Intn(15)),
		// Q7: volume shipping.
		fmt.Sprintf(`SELECT n.n_name, COUNT(*) FROM supplier s
			JOIN lineitem l ON l.l_suppkey = s.s_suppkey
			JOIN orders o ON o.o_orderkey = l.l_orderkey
			JOIN nation n ON n.n_nationkey = s.s_nationkey
			WHERE l.l_shipdate BETWEEN %d AND %d GROUP BY n.n_name`, day(0, 200), day(1200, 600)),
		// Q8: national market share.
		fmt.Sprintf(`SELECT o.o_orderdate, SUM(l.l_extendedprice) FROM part p
			JOIN lineitem l ON l.l_partkey = p.p_partkey
			JOIN orders o ON o.o_orderkey = l.l_orderkey
			JOIN customer c ON c.c_custkey = o.o_custkey
			WHERE p.p_type = '%s' AND c.c_nationkey = %d
			GROUP BY o.o_orderdate LIMIT 50`, typ, r.Intn(nationRows)),
		// Q9: product type profit.
		fmt.Sprintf(`SELECT n.n_name, SUM(l.l_extendedprice) FROM part p
			JOIN lineitem l ON l.l_partkey = p.p_partkey
			JOIN supplier s ON s.s_suppkey = l.l_suppkey
			JOIN nation n ON n.n_nationkey = s.s_nationkey
			WHERE p.p_name LIKE 'part m%%' AND p.p_size > %d GROUP BY n.n_name`, r.Intn(25)),
		// Q10: returned item reporting.
		fmt.Sprintf(`SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice), c.c_acctbal
			FROM customer c JOIN orders o ON o.o_custkey = c.c_custkey
			JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE l.l_returnflag = 'R' AND o.o_orderdate >= %d AND o.o_orderdate < %d
			GROUP BY c.c_custkey, c.c_name, c.c_acctbal LIMIT 20`, day(0, 400), day(700, 400)),
		// Q11: important stock identification.
		fmt.Sprintf(`SELECT ps.ps_partkey, SUM(ps.ps_supplycost) FROM partsupp ps
			JOIN supplier s ON s.s_suppkey = ps.ps_suppkey
			WHERE s.s_nationkey = %d GROUP BY ps.ps_partkey LIMIT 100`, r.Intn(nationRows)),
		// Q12: shipping modes and order priority.
		fmt.Sprintf(`SELECT l.l_shipmode, COUNT(*) FROM orders o
			JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE l.l_shipmode IN ('%s', '%s') AND l.l_receiptdate >= %d AND l.l_receiptdate < %d
			GROUP BY l.l_shipmode ORDER BY l.l_shipmode`, mode1, mode2, day(0, 300), day(600, 400)),
		// Q13: customer distribution.
		`SELECT c.c_custkey, COUNT(*) FROM customer c JOIN orders o ON o.o_custkey = c.c_custkey
			GROUP BY c.c_custkey LIMIT 200`,
		// Q14: promotion effect.
		fmt.Sprintf(`SELECT SUM(l.l_extendedprice), COUNT(*) FROM lineitem l
			JOIN part p ON p.p_partkey = l.l_partkey
			WHERE l.l_shipdate >= %d AND l.l_shipdate < %d AND p.p_type = 'PROMO'`, day(0, 500), day(700, 300)),
		// Q15: top supplier (flattened).
		fmt.Sprintf(`SELECT l_suppkey, SUM(l_extendedprice) FROM lineitem
			WHERE l_shipdate >= %d AND l_shipdate < %d GROUP BY l_suppkey
			ORDER BY l_suppkey LIMIT 20`, day(0, 400), day(800, 300)),
		// Q16: parts/supplier relationship.
		fmt.Sprintf(`SELECT p.p_brand, p.p_type, p.p_size, COUNT(*) FROM partsupp ps
			JOIN part p ON p.p_partkey = ps.ps_partkey
			WHERE p.p_brand != '%s' AND p.p_size IN (1, 5, 9, 14, 20)
			GROUP BY p.p_brand, p.p_type, p.p_size LIMIT 100`, brand),
		// Q17: small-quantity-order revenue.
		fmt.Sprintf(`SELECT AVG(l.l_extendedprice) FROM lineitem l
			JOIN part p ON p.p_partkey = l.l_partkey
			WHERE p.p_brand = '%s' AND p.p_container = 'MED BAG' AND l.l_quantity < 5`, brand),
		// Q18: large volume customer.
		fmt.Sprintf(`SELECT c.c_name, o.o_orderkey, o.o_totalprice, SUM(l.l_quantity)
			FROM customer c JOIN orders o ON o.o_custkey = c.c_custkey
			JOIN lineitem l ON l.l_orderkey = o.o_orderkey
			WHERE o.o_totalprice > %d GROUP BY c.c_name, o.o_orderkey, o.o_totalprice
			ORDER BY o.o_totalprice DESC LIMIT 100`, 350000+r.Intn(80000)),
		// Q19: discounted revenue.
		fmt.Sprintf(`SELECT SUM(l.l_extendedprice) FROM lineitem l
			JOIN part p ON p.p_partkey = l.l_partkey
			WHERE (p.p_container = 'SM CASE' AND l.l_quantity BETWEEN 1 AND 11)
			OR (p.p_container = 'MED BAG' AND l.l_quantity BETWEEN 10 AND 20)
			OR (p.p_container = 'LG BOX' AND l.l_quantity BETWEEN 20 AND 30)`),
		// Q20: potential part promotion (flattened).
		fmt.Sprintf(`SELECT s.s_name FROM supplier s
			JOIN partsupp ps ON ps.ps_suppkey = s.s_suppkey
			WHERE ps.ps_availqty > %d AND s.s_nationkey = %d ORDER BY s.s_name LIMIT 50`,
			5000+r.Intn(4000), r.Intn(nationRows)),
		// Q21: suppliers who kept orders waiting.
		fmt.Sprintf(`SELECT s.s_name, COUNT(*) FROM supplier s
			JOIN lineitem l ON l.l_suppkey = s.s_suppkey
			JOIN orders o ON o.o_orderkey = l.l_orderkey
			WHERE o.o_orderstatus = 'F' AND l.l_receiptdate > l.l_commitdate AND s.s_nationkey = %d
			GROUP BY s.s_name ORDER BY s.s_name LIMIT 100`, r.Intn(nationRows)),
		// Q22: global sales opportunity.
		`SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer
			WHERE c_acctbal > 7000 GROUP BY c_nationkey ORDER BY c_nationkey`,
	}
}
