package tpch

import (
	"testing"

	"aim/internal/workload"
)

func TestBuildAndRunAllQueries(t *testing.T) {
	db, err := Build(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Store.Table("lineitem").RowCount(); got < 1000 {
		t.Fatalf("lineitem rows = %d", got)
	}
	if got := db.Store.Table("region").RowCount(); got != 5 {
		t.Fatalf("region rows = %d", got)
	}
	qs := Queries(7)
	if len(qs) != 22 {
		t.Fatalf("queries = %d", len(qs))
	}
	mon := workload.NewMonitor()
	for i, q := range qs {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("Q%d: %v\n%s", i+1, err, q)
		}
		if err := mon.Record(q, res.Stats); err != nil {
			t.Fatalf("Q%d record: %v", i+1, err)
		}
	}
	if mon.Len() != 22 {
		t.Fatalf("distinct normalized queries = %d", mon.Len())
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Exec("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem")
	rb, _ := b.Exec("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem")
	if ra.Rows[0][0].Int() != rb.Rows[0][0].Int() || ra.Rows[0][1].Float() != rb.Rows[0][1].Float() {
		t.Fatal("generator not deterministic")
	}
	qa, qb := Queries(3), Queries(3)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("query templates not deterministic")
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	small, err := Build(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(0.06, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Store.Table("orders").RowCount() <= small.Store.Table("orders").RowCount() {
		t.Fatal("scale did not grow orders")
	}
}
