// Package sqltypes defines the dynamically typed values that flow through
// the storage engine, executor and optimizer, together with total ordering
// and an order-preserving binary key encoding used by B+tree indexes.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// Supported value kinds. KindNull sorts before every other value, matching
// the behaviour of NULLS FIRST index ordering in MySQL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBytes
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBytes:
		return "BYTES"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBytes returns a binary string value.
func NewBytes(v []byte) Value { return Value{kind: KindBytes, s: string(v)} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool, i: 0}
}

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is only meaningful for KindInt and
// KindBool values.
func (v Value) Int() int64 { return v.i }

// Float returns the value as a float64, converting integers and booleans.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload for KindString and KindBytes values.
func (v Value) Str() string { return v.s }

// Bool returns the value interpreted as a boolean.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString, KindBytes:
		return v.s != ""
	default:
		return false
	}
}

// IsNumeric reports whether v is an INT, FLOAT or BOOL value.
func (v Value) IsNumeric() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindBool
}

// String renders the value for display and query normalization.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.s)
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Compare totally orders two values: NULL < numbers < strings/bytes.
// Numeric kinds compare by numeric value; INT/FLOAT cross-compare exactly.
// It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ar, br := rank(a.kind), rank(b.kind)
	if ar != br {
		if ar < br {
			return -1
		}
		return 1
	}
	switch ar {
	case 0: // both NULL
		return 0
	case 1: // numeric
		return compareNumeric(a, b)
	default: // string-ish
		return strings.Compare(a.s, b.s)
	}
}

// rank groups kinds into comparison families.
func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat, KindBool:
		return 1
	default:
		return 2
	}
}

func compareNumeric(a, b Value) int {
	if a.kind == KindFloat || b.kind == KindFloat {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a.i < b.i:
		return -1
	case a.i > b.i:
		return 1
	default:
		return 0
	}
}

// ComparePtr is Compare for hot loops: identical ordering, but operands are
// passed by pointer so tight per-row kernels avoid copying two Value structs
// per comparison. Neither operand is mutated.
func ComparePtr(a, b *Value) int {
	ar, br := rank(a.kind), rank(b.kind)
	if ar != br {
		if ar < br {
			return -1
		}
		return 1
	}
	switch ar {
	case 0: // both NULL
		return 0
	case 1: // numeric
		if a.kind == KindFloat || b.kind == KindFloat {
			af, bf := a.Float(), b.Float()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	default: // string-ish
		return strings.Compare(a.s, b.s)
	}
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is a tuple of values.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Size returns an approximate in-memory footprint of the row in bytes,
// used for storage accounting.
func (r Row) Size() int {
	n := 0
	for _, v := range r {
		n += v.StorageSize()
	}
	return n
}

// StorageSize approximates the stored footprint of a single value in bytes.
func (v Value) StorageSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	default:
		return 2 + len(v.s)
	}
}

// Float64ToValue converts a float that may hold an integral value back to
// the narrowest numeric Value.
func Float64ToValue(f float64) Value {
	if f == math.Trunc(f) && math.Abs(f) < 1<<53 {
		return NewInt(int64(f))
	}
	return NewFloat(f)
}
