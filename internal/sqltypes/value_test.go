package sqltypes

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		null bool
	}{
		{Null, KindNull, true},
		{NewInt(42), KindInt, false},
		{NewFloat(3.5), KindFloat, false},
		{NewString("abc"), KindString, false},
		{NewBytes([]byte{1, 2}), KindBytes, false},
		{NewBool(true), KindBool, false},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v: IsNull = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
	}
	if got := NewInt(7).Int(); got != 7 {
		t.Errorf("Int() = %d, want 7", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v, want 2.5", got)
	}
	if got := NewInt(7).Float(); got != 7 {
		t.Errorf("int Float() = %v, want 7", got)
	}
	if got := NewString("x").Str(); got != "x" {
		t.Errorf("Str() = %q, want x", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool round-trip failed")
	}
}

func TestCompareOrdering(t *testing.T) {
	// Ascending order across families: NULL < numerics < strings.
	asc := []Value{
		Null,
		NewFloat(-1e9),
		NewInt(-5),
		NewBool(false),
		NewFloat(0.5),
		NewBool(true),
		NewInt(2),
		NewFloat(2.5),
		NewInt(1000),
		NewString(""),
		NewString("a"),
		NewString("ab"),
		NewString("b"),
	}
	for i := range asc {
		for j := range asc {
			got := Compare(asc[i], asc[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", asc[i], asc[j], got, want)
			}
		}
	}
}

func TestCompareIntFloatCross(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("2 != 2.0")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("2 should be < 2.5")
	}
	if Compare(NewFloat(2.5), NewInt(2)) != 1 {
		t.Error("2.5 should be > 2")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewString("a'b"), "'a''b'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestStorageSize(t *testing.T) {
	if Null.StorageSize() != 1 {
		t.Error("null size")
	}
	if NewInt(1).StorageSize() != 8 {
		t.Error("int size")
	}
	if NewString("abcd").StorageSize() != 6 {
		t.Error("string size")
	}
	r := Row{NewInt(1), NewString("ab")}
	if r.Size() != 12 {
		t.Errorf("row size = %d, want 12", r.Size())
	}
}

func TestFloat64ToValue(t *testing.T) {
	if v := Float64ToValue(4); v.Kind() != KindInt || v.Int() != 4 {
		t.Errorf("Float64ToValue(4) = %v", v)
	}
	if v := Float64ToValue(4.5); v.Kind() != KindFloat || v.Float() != 4.5 {
		t.Errorf("Float64ToValue(4.5) = %v", v)
	}
}

// randomValue generates values across kinds for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(r.Int63n(2000) - 1000)
	case 2:
		return NewFloat((r.Float64() - 0.5) * 2000)
	case 3:
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return NewString(string(b))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

func TestKeyEncodingOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed ^ r.Int63()))
		n := 1 + rr.Intn(3)
		a := make([]Value, n)
		b := make([]Value, n)
		for i := 0; i < n; i++ {
			a[i] = randomValue(rr)
			b[i] = randomValue(rr)
		}
		ea := EncodeKey(nil, a...)
		eb := EncodeKey(nil, b...)
		cmp := 0
		for i := 0; i < n && cmp == 0; i++ {
			cmp = Compare(a[i], b[i])
		}
		bcmp := bytes.Compare(ea, eb)
		if cmp < 0 {
			return bcmp < 0
		}
		if cmp > 0 {
			return bcmp > 0
		}
		return bcmp == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingPrefixProperty(t *testing.T) {
	// An encoded prefix of a multi-column key must be a bytewise prefix of
	// the full key, so that prefix range scans work.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomValue(rr), randomValue(rr)
		full := EncodeKey(nil, a, b)
		prefix := EncodeKey(nil, a)
		return bytes.HasPrefix(full, prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestKeyDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.Intn(4)
		in := make([]Value, n)
		for i := range in {
			in[i] = randomValue(r)
		}
		enc := EncodeKey(nil, in...)
		out, rest, err := DecodeKey(enc, n)
		if err != nil {
			t.Fatalf("decode error: %v (in=%v)", err, in)
		}
		if len(rest) != 0 {
			t.Fatalf("decode left %d bytes", len(rest))
		}
		for i := range in {
			if Compare(in[i], out[i]) != 0 {
				t.Fatalf("value %d: got %v want %v", i, out[i], in[i])
			}
		}
	}
}

func TestKeyDecodeErrors(t *testing.T) {
	if _, _, err := DecodeKey([]byte{}, 1); err == nil {
		t.Error("empty key should fail")
	}
	if _, _, err := DecodeKey([]byte{tagNum, 1, 2}, 1); err == nil {
		t.Error("short numeric should fail")
	}
	if _, _, err := DecodeKey([]byte{0x77}, 1); err == nil {
		t.Error("unknown tag should fail")
	}
	if _, _, err := DecodeKey([]byte{tagString, 'a'}, 1); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, _, err := DecodeKey([]byte{tagString, 0x00, 0x55}, 1); err == nil {
		t.Error("bad escape should fail")
	}
}

func TestEncodedKeysSortLikeValues(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vals := make([]Value, 200)
	for i := range vals {
		vals[i] = randomValue(r)
	}
	sortedByValue := append([]Value(nil), vals...)
	sort.Slice(sortedByValue, func(i, j int) bool {
		return Compare(sortedByValue[i], sortedByValue[j]) < 0
	})
	encs := make([][]byte, len(vals))
	for i, v := range vals {
		encs[i] = EncodeKey(nil, v)
	}
	sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
	for i := range encs {
		want := EncodeKey(nil, sortedByValue[i])
		if !bytes.Equal(encs[i], want) {
			t.Fatalf("position %d: encoded sort order diverges from value sort order", i)
		}
	}
}
