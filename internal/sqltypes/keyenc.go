package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key encoding produces a binary string whose bytewise (memcmp) order equals
// the Compare order of the encoded values. It is used as the B+tree key for
// both clustered tables and secondary indexes, so that multi-column range
// scans reduce to contiguous byte ranges.
//
// Layout per value: a 1-byte tag followed by a kind-specific payload.
//
//	0x00           NULL (no payload)
//	0x01           numeric: 8-byte order-preserving encoding of float64
//	0x02           string/bytes: escaped payload terminated by 0x00 0x01
//
// All numeric kinds (INT, FLOAT, BOOL) share the numeric tag so that mixed
// comparisons order identically to Compare. Integers up to 2^53 round-trip
// exactly through float64; larger magnitudes lose low bits in the encoded
// ordering, which matches compareNumeric's float path and is acceptable for
// the synthetic datasets used here.

const (
	tagNull   byte = 0x00
	tagNum    byte = 0x01
	tagString byte = 0x02
)

// EncodeKey appends the order-preserving encoding of vals to dst.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		dst = encodeOne(dst, v)
	}
	return dst
}

func encodeOne(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindInt, KindFloat, KindBool:
		dst = append(dst, tagNum)
		return encodeFloatOrdered(dst, v.Float())
	default:
		dst = append(dst, tagString)
		return encodeStringOrdered(dst, v.s)
	}
}

// encodeFloatOrdered encodes f such that bytewise order equals numeric order.
func encodeFloatOrdered(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip all bits
	} else {
		bits |= 1 << 63 // non-negative: flip the sign bit
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], bits)
	return append(dst, buf[:]...)
}

// encodeStringOrdered escapes 0x00 bytes as 0x00 0xFF and terminates the
// payload with 0x00 0x01, preserving prefix ordering.
func encodeStringOrdered(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// DecodeKey decodes n values previously written by EncodeKey. It returns the
// decoded values and the remaining bytes. String and bytes values both decode
// as KindString; integral floats decode as KindInt (consistent with
// Float64ToValue), which is sufficient for index-only (covering) reads of the
// synthetic data in this repository.
func DecodeKey(src []byte, n int) ([]Value, []byte, error) {
	out := make([]Value, n)
	rest, err := DecodeKeyInto(out, src, n)
	if err != nil {
		return nil, nil, err
	}
	return out, rest, nil
}

// DecodeKeyInto decodes n values into dst (which must have len >= n) and
// returns the remaining bytes. It is the allocation-free core of DecodeKey:
// batch decoders reuse one dst slice across many keys instead of allocating a
// result slice per entry.
func DecodeKeyInto(dst []Value, src []byte, n int) ([]byte, error) {
	for i := 0; i < n; i++ {
		if len(src) == 0 {
			return nil, fmt.Errorf("sqltypes: truncated key, want %d values got %d", n, i)
		}
		tag := src[0]
		src = src[1:]
		switch tag {
		case tagNull:
			dst[i] = Null
		case tagNum:
			if len(src) < 8 {
				return nil, fmt.Errorf("sqltypes: truncated numeric payload")
			}
			bits := binary.BigEndian.Uint64(src[:8])
			src = src[8:]
			if bits&(1<<63) != 0 {
				bits &^= 1 << 63
			} else {
				bits = ^bits
			}
			dst[i] = Float64ToValue(math.Float64frombits(bits))
		case tagString:
			var b []byte
			for {
				if len(src) < 2 && !(len(src) >= 1 && src[0] != 0x00) {
					return nil, fmt.Errorf("sqltypes: truncated string payload")
				}
				c := src[0]
				if c != 0x00 {
					b = append(b, c)
					src = src[1:]
					continue
				}
				if len(src) < 2 {
					return nil, fmt.Errorf("sqltypes: truncated string terminator")
				}
				next := src[1]
				src = src[2:]
				if next == 0x01 { // terminator
					break
				}
				if next == 0xFF {
					b = append(b, 0x00)
					continue
				}
				return nil, fmt.Errorf("sqltypes: bad string escape 0x00 0x%02x", next)
			}
			dst[i] = NewString(string(b))
		default:
			return nil, fmt.Errorf("sqltypes: unknown key tag 0x%02x", tag)
		}
	}
	return src, nil
}
