package queryinfo

import (
	"fmt"
	"math/rand"
	"testing"

	"aim/internal/exec"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// genBoolExpr generates a random small boolean WHERE expression over
// t1.col1..col4 — shared by the property test and the fuzz target.
func genBoolExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(3) == 0 {
		col := fmt.Sprintf("col%d", 1+r.Intn(4))
		switch r.Intn(4) {
		case 0:
			return fmt.Sprintf("%s = %d", col, r.Intn(4))
		case 1:
			return fmt.Sprintf("%s > %d", col, r.Intn(4))
		case 2:
			return fmt.Sprintf("%s IN (%d, %d)", col, r.Intn(4), r.Intn(4))
		default:
			return fmt.Sprintf("%s BETWEEN %d AND %d", col, r.Intn(3), 2+r.Intn(3))
		}
	}
	op := "AND"
	if r.Intn(2) == 0 {
		op = "OR"
	}
	left, right := genBoolExpr(r, depth-1), genBoolExpr(r, depth-1)
	e := "(" + left + " " + op + " " + right + ")"
	if r.Intn(5) == 0 {
		e = "NOT " + e
	}
	return e
}

// checkDNFEquivalence asserts that the OR-of-ANDs reconstruction of
// DNF(where) evaluates identically to the original expression on `rows`
// random rows. The caller must have excluded the oversized-expansion
// fallback, which is deliberately an over-approximation.
func checkDNFEquivalence(t *testing.T, layout *exec.Layout, whereSQL string, where sqlparser.Expr, r *rand.Rand, rows int) {
	t.Helper()
	factors := DNF(where)

	// Reconstruct OR of ANDs.
	var rebuilt sqlparser.Expr
	for _, factor := range factors {
		var conj sqlparser.Expr
		for _, atom := range factor {
			if conj == nil {
				conj = atom
			} else {
				conj = &sqlparser.BinaryExpr{Op: "AND", Left: conj, Right: atom}
			}
		}
		if rebuilt == nil {
			rebuilt = conj
		} else {
			rebuilt = &sqlparser.BinaryExpr{Op: "OR", Left: rebuilt, Right: conj}
		}
	}
	evalBool := func(ce exec.CompiledExpr, env []sqltypes.Value) bool {
		v, err := ce(env)
		if err != nil {
			t.Fatal(err)
		}
		return !v.IsNull() && v.Bool()
	}
	orig, err := exec.Compile(where, layout)
	if err != nil {
		t.Fatalf("%s: %v", whereSQL, err)
	}
	re, err := exec.Compile(rebuilt, layout)
	if err != nil {
		t.Fatalf("rebuilt %s: %v", rebuilt.SQL(), err)
	}
	env := make([]sqltypes.Value, layout.Width)
	for row := 0; row < rows; row++ {
		for i := range env {
			env[i] = sqltypes.NewInt(int64(r.Intn(5)))
		}
		if evalBool(orig, env) != evalBool(re, env) {
			t.Fatalf("DNF changed semantics for %s on %v\nfactors: %d", whereSQL, env, len(factors))
		}
	}
}

// TestDNFSemanticEquivalenceProperty: for random small boolean expressions,
// the OR-of-ANDs reconstruction of queryinfo.DNF must evaluate identically
// to the original expression on random rows. (The fallback path for
// oversized expansions is an over-approximation and is excluded by keeping
// the generated expressions small.)
func TestDNFSemanticEquivalenceProperty(t *testing.T) {
	schema := testSchema(t)
	layout := exec.NewLayout([]exec.Instance{{Alias: "t1", Table: schema.Table("t1")}})

	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		whereSQL := genBoolExpr(r, 2)
		stmt, err := sqlparser.Parse("SELECT col1 FROM t1 WHERE " + whereSQL)
		if err != nil {
			t.Fatalf("%s: %v", whereSQL, err)
		}
		checkDNFEquivalence(t, layout, whereSQL, stmt.(*sqlparser.Select).Where, r, 30)
	}
}

// FuzzDNFSemanticEquivalence is the §III-E DNF-rewrite fuzz target run by
// `make fuzzsmoke`: the fuzzer explores (seed, depth) pairs, each deriving
// one random boolean expression, and the same equivalence property must
// hold. Expressions whose expansion overflows DNFLimit take the documented
// over-approximation fallback and are skipped (the white-box dnf call
// mirrors DNF's own decision).
func FuzzDNFSemanticEquivalence(f *testing.F) {
	schema := testSchema(f)
	layout := exec.NewLayout([]exec.Instance{{Alias: "t1", Table: schema.Table("t1")}})

	f.Add(int64(77), uint8(2))
	f.Add(int64(1), uint8(0))
	f.Add(int64(-42), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, depth uint8) {
		r := rand.New(rand.NewSource(seed))
		whereSQL := genBoolExpr(r, int(depth%4))
		stmt, err := sqlparser.Parse("SELECT col1 FROM t1 WHERE " + whereSQL)
		if err != nil {
			t.Fatalf("generator produced unparsable SQL %q: %v", whereSQL, err)
		}
		where := stmt.(*sqlparser.Select).Where
		if out, ok := dnf(where, false); !ok || len(out) > DNFLimit {
			t.Skip("expansion takes the over-approximation fallback")
		}
		checkDNFEquivalence(t, layout, whereSQL, where, r, 10)
	})
}
