package queryinfo

import (
	"fmt"
	"math/rand"
	"testing"

	"aim/internal/exec"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// TestDNFSemanticEquivalenceProperty: for random small boolean expressions,
// the OR-of-ANDs reconstruction of queryinfo.DNF must evaluate identically
// to the original expression on random rows. (The fallback path for
// oversized expansions is an over-approximation and is excluded by keeping
// the generated expressions small.)
func TestDNFSemanticEquivalenceProperty(t *testing.T) {
	schema := testSchema(t)
	layout := exec.NewLayout([]exec.Instance{{Alias: "t1", Table: schema.Table("t1")}})

	var genExpr func(r *rand.Rand, depth int) string
	genExpr = func(r *rand.Rand, depth int) string {
		if depth <= 0 || r.Intn(3) == 0 {
			col := fmt.Sprintf("col%d", 1+r.Intn(4))
			switch r.Intn(4) {
			case 0:
				return fmt.Sprintf("%s = %d", col, r.Intn(4))
			case 1:
				return fmt.Sprintf("%s > %d", col, r.Intn(4))
			case 2:
				return fmt.Sprintf("%s IN (%d, %d)", col, r.Intn(4), r.Intn(4))
			default:
				return fmt.Sprintf("%s BETWEEN %d AND %d", col, r.Intn(3), 2+r.Intn(3))
			}
		}
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		left, right := genExpr(r, depth-1), genExpr(r, depth-1)
		e := "(" + left + " " + op + " " + right + ")"
		if r.Intn(5) == 0 {
			e = "NOT " + e
		}
		return e
	}

	evalBool := func(ce exec.CompiledExpr, env []sqltypes.Value) bool {
		v, err := ce(env)
		if err != nil {
			t.Fatal(err)
		}
		return !v.IsNull() && v.Bool()
	}

	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		whereSQL := genExpr(r, 2)
		stmt, err := sqlparser.Parse("SELECT col1 FROM t1 WHERE " + whereSQL)
		if err != nil {
			t.Fatalf("%s: %v", whereSQL, err)
		}
		where := stmt.(*sqlparser.Select).Where
		factors := DNF(where)

		// Reconstruct OR of ANDs.
		var rebuilt sqlparser.Expr
		for _, factor := range factors {
			var conj sqlparser.Expr
			for _, atom := range factor {
				if conj == nil {
					conj = atom
				} else {
					conj = &sqlparser.BinaryExpr{Op: "AND", Left: conj, Right: atom}
				}
			}
			if rebuilt == nil {
				rebuilt = conj
			} else {
				rebuilt = &sqlparser.BinaryExpr{Op: "OR", Left: rebuilt, Right: conj}
			}
		}
		orig, err := exec.Compile(where, layout)
		if err != nil {
			t.Fatalf("%s: %v", whereSQL, err)
		}
		re, err := exec.Compile(rebuilt, layout)
		if err != nil {
			t.Fatalf("rebuilt %s: %v", rebuilt.SQL(), err)
		}
		env := make([]sqltypes.Value, layout.Width)
		for row := 0; row < 30; row++ {
			for i := range env {
				env[i] = sqltypes.NewInt(int64(r.Intn(5)))
			}
			if evalBool(orig, env) != evalBool(re, env) {
				t.Fatalf("DNF changed semantics for %s on %v\nfactors: %d", whereSQL, env, len(factors))
			}
		}
	}
}
