package queryinfo

import (
	"testing"

	"aim/internal/catalog"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

func testSchema(t testing.TB) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema()
	add := func(name string, cols []string, pk string) {
		cc := make([]catalog.Column, len(cols))
		for i, c := range cols {
			kind := sqltypes.KindInt
			if c == "name" || c == "status" || c == "city" {
				kind = sqltypes.KindString
			}
			cc[i] = catalog.Column{Name: c, Type: kind}
		}
		tbl, err := catalog.NewTable(name, cc, []string{pk})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", []string{"id", "col1", "col2", "col3", "col4", "col5", "name"}, "id")
	add("t2", []string{"id", "col2", "col4", "t1_id"}, "id")
	add("t3", []string{"id", "col2", "col7"}, "id")
	return s
}

func analyze(t *testing.T, sql string) *Info {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(stmt.(*sqlparser.Select), testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestAnalyzeFilterAtoms(t *testing.T) {
	info := analyze(t, `SELECT col1 FROM t1 WHERE col1 = 5 AND col2 > 3 AND col3 IN (1,2)
		AND name LIKE 'ab%' AND col4 BETWEEN 1 AND 9 AND col5 IS NULL`)
	atoms := info.FilterAtoms[0]
	if len(atoms) != 6 {
		t.Fatalf("atoms = %d", len(atoms))
	}
	byCol := map[string]*Atom{}
	for _, a := range atoms {
		byCol[a.Column] = a
	}
	if byCol["col1"].Op != OpEq || byCol["col1"].EqValue.Int() != 5 {
		t.Error("col1 eq atom")
	}
	if byCol["col2"].Op != OpRange || byCol["col2"].Lo.Int() != 3 || byCol["col2"].LoInc {
		t.Error("col2 range atom")
	}
	if byCol["col3"].Op != OpIn || len(byCol["col3"].InValues) != 2 {
		t.Error("col3 in atom")
	}
	if byCol["name"].Op != OpLikePrefix || byCol["name"].LikePrefix != "ab" {
		t.Error("name like atom")
	}
	if byCol["col4"].Op != OpRange || !byCol["col4"].LoInc || !byCol["col4"].HiInc {
		t.Error("col4 between atom")
	}
	if byCol["col5"].Op != OpIsNull {
		t.Error("col5 is-null atom")
	}
	// IPP classification.
	for col, wantIPP := range map[string]bool{"col1": true, "col3": true, "col5": true, "col2": false, "col4": false, "name": false} {
		if byCol[col].Op.IsIPP() != wantIPP {
			t.Errorf("%s IPP = %v, want %v", col, byCol[col].Op.IsIPP(), wantIPP)
		}
	}
}

func TestAnalyzeFlippedComparison(t *testing.T) {
	info := analyze(t, "SELECT col1 FROM t1 WHERE 5 < col2")
	a := info.FilterAtoms[0][0]
	if a.Op != OpRange || a.Column != "col2" || a.Lo.Int() != 5 || a.LoInc {
		t.Errorf("flipped atom = %+v", a)
	}
}

func TestAnalyzePlaceholderAtoms(t *testing.T) {
	info := analyze(t, "SELECT col1 FROM t1 WHERE col1 = ? AND col2 > ?")
	atoms := info.FilterAtoms[0]
	if atoms[0].Op != OpEq || atoms[0].EqValue != nil {
		t.Error("placeholder eq should have shape but no value")
	}
	if atoms[1].Op != OpRange || atoms[1].Lo != nil {
		t.Error("placeholder range")
	}
}

func TestAnalyzeJoinGraph(t *testing.T) {
	// The Q2 example from the paper (Fig. 2).
	info := analyze(t, `SELECT t1.col1, t2.col2, t3.col2 FROM t1, t2, t3
		WHERE t1.col2 = t3.col2 AND t2.col4 = t3.col7`)
	if len(info.JoinEdges) != 2 {
		t.Fatalf("edges = %d", len(info.JoinEdges))
	}
	nb := info.JoinNeighbors()
	if !nb[0][2] || !nb[1][2] || !nb[2][0] || !nb[2][1] {
		t.Errorf("neighbors = %v", nb)
	}
	if nb[0][1] {
		t.Error("t1 and t2 are not joined")
	}
	cols := info.JoinColumns(2, map[int]bool{0: true, 1: true})
	if len(cols) != 2 {
		t.Errorf("t3 join columns = %v", cols)
	}
	cols = info.JoinColumns(2, map[int]bool{0: true})
	if len(cols) != 1 || cols[0] != "col2" {
		t.Errorf("t3 join columns wrt t1 = %v", cols)
	}
}

func TestAnalyzeGroupOrderReferenced(t *testing.T) {
	info := analyze(t, `SELECT col3, COUNT(*) FROM t1 WHERE col2 = 5
		GROUP BY col3 ORDER BY col3 DESC LIMIT 5`)
	if len(info.GroupBy) != 1 || info.GroupBy[0].Column != "col3" {
		t.Errorf("group by = %v", info.GroupBy)
	}
	if len(info.OrderBy) != 1 || !info.OrderBy[0].Desc {
		t.Errorf("order by = %v", info.OrderBy)
	}
	want := []string{"col2", "col3"}
	if len(info.Referenced[0]) != 2 || info.Referenced[0][0] != want[0] || info.Referenced[0][1] != want[1] {
		t.Errorf("referenced = %v", info.Referenced[0])
	}
	if len(info.Aggregates) != 1 {
		t.Errorf("aggregates = %v", info.Aggregates)
	}
}

func TestAnalyzeStarReferencesAllColumns(t *testing.T) {
	info := analyze(t, "SELECT * FROM t2 WHERE col2 = 1")
	if len(info.Referenced[0]) != 4 {
		t.Errorf("star referenced = %v", info.Referenced[0])
	}
	if !info.SelectsStar {
		t.Error("star flag")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	schema := testSchema(t)
	bad := []string{
		"SELECT x FROM nosuch",
		"SELECT nope FROM t1",
		"SELECT t9.col1 FROM t1",
	}
	for _, sql := range bad {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Analyze(stmt.(*sqlparser.Select), schema); err == nil {
			t.Errorf("Analyze(%q) should fail", sql)
		}
	}
}

func TestConjunctClassification(t *testing.T) {
	info := analyze(t, `SELECT t1.col1 FROM t1, t2 WHERE t1.col1 = 5
		AND t1.id = t2.t1_id AND t1.col2 + t2.col2 > 3`)
	if len(info.Conjuncts) != 3 {
		t.Fatalf("conjuncts = %d", len(info.Conjuncts))
	}
	if info.Conjuncts[0].Atom == nil || info.Conjuncts[0].Join != nil {
		t.Error("first should be atom")
	}
	if info.Conjuncts[1].Join == nil {
		t.Error("second should be join edge")
	}
	if info.Conjuncts[2].Atom != nil || info.Conjuncts[2].Join != nil {
		t.Error("third is neither atom nor join")
	}
	if len(info.Conjuncts[2].Instances) != 2 {
		t.Error("third references both instances")
	}
}

func TestSplitAndOr(t *testing.T) {
	stmt, _ := sqlparser.Parse("SELECT col1 FROM t1 WHERE col1 = 1 AND (col2 = 2 OR col3 = 3) AND col4 = 4")
	where := stmt.(*sqlparser.Select).Where
	ands := SplitAnd(where)
	if len(ands) != 3 {
		t.Fatalf("ands = %d", len(ands))
	}
	ors := SplitOr(ands[1])
	if len(ors) != 2 {
		t.Fatalf("ors = %d", len(ors))
	}
}

func TestDNFPaperExample(t *testing.T) {
	// E2 from §IV-B1: (col1=? AND col2=? AND col3>?) OR (col2=? AND col4<?)
	stmt, _ := sqlparser.Parse(`SELECT col1 FROM t1 WHERE
		(col1 = 1 AND col2 = 2 AND col3 > 3) OR (col2 = 4 AND col4 < 5)`)
	factors := DNF(stmt.(*sqlparser.Select).Where)
	if len(factors) != 2 {
		t.Fatalf("factors = %d", len(factors))
	}
	if len(factors[0]) != 3 || len(factors[1]) != 2 {
		t.Fatalf("factor sizes = %d, %d", len(factors[0]), len(factors[1]))
	}
}

func TestDNFDistribution(t *testing.T) {
	// a AND (b OR c) => (a AND b) OR (a AND c)
	stmt, _ := sqlparser.Parse("SELECT col1 FROM t1 WHERE col1 = 1 AND (col2 = 2 OR col3 = 3)")
	factors := DNF(stmt.(*sqlparser.Select).Where)
	if len(factors) != 2 {
		t.Fatalf("factors = %d", len(factors))
	}
	for _, f := range factors {
		if len(f) != 2 {
			t.Fatalf("factor size = %d", len(f))
		}
	}
}

func TestDNFNotPushdown(t *testing.T) {
	// NOT (a OR b) => NOT a AND NOT b (single factor, two atoms)
	stmt, _ := sqlparser.Parse("SELECT col1 FROM t1 WHERE NOT (col1 = 1 OR col2 = 2)")
	factors := DNF(stmt.(*sqlparser.Select).Where)
	if len(factors) != 1 || len(factors[0]) != 2 {
		t.Fatalf("factors = %v", factors)
	}
}

func TestDNFBlowupFallback(t *testing.T) {
	// 2^8 = 256 > DNFLimit: falls back to one factor with all atoms.
	sql := "SELECT col1 FROM t1 WHERE (col1=1 OR col2=1)"
	for i := 0; i < 7; i++ {
		sql += " AND (col1=1 OR col2=1)"
	}
	stmt, _ := sqlparser.Parse(sql)
	factors := DNF(stmt.(*sqlparser.Select).Where)
	if len(factors) != 1 {
		t.Fatalf("fallback factors = %d", len(factors))
	}
	if len(factors[0]) != 16 {
		t.Fatalf("fallback atoms = %d, want 16", len(factors[0]))
	}
}

func TestNotAtomsAreOther(t *testing.T) {
	info := analyze(t, "SELECT col1 FROM t1 WHERE col1 != 3 AND NOT col2 = 1")
	for _, a := range info.FilterAtoms[0] {
		if a.Op != OpOther {
			t.Errorf("atom %v should be OTHER", a.Column)
		}
	}
}

func TestAnalyzeOrderByAlias(t *testing.T) {
	// ORDER BY a select-list alias must not fail binding, and must not
	// produce index-candidate order columns.
	info := analyze(t, "SELECT col2, col1 + 1 AS score FROM t1 GROUP BY col2 ORDER BY score DESC")
	if len(info.OrderBy) != 0 {
		t.Fatalf("alias order column resolved to table column: %v", info.OrderBy)
	}
	if len(info.GroupBy) != 1 {
		t.Fatalf("group by = %v", info.GroupBy)
	}
}
