// Package queryinfo binds a parsed SELECT against a catalog and extracts the
// structural metadata AIM reasons about (Table I of the paper): which columns
// appear in filter, join, group-by, order-by and projection roles, the table
// join graph, and the AND-OR structure of the selection predicate.
//
// Both the optimizer (for access-path selection) and the AIM candidate
// generator (Algorithms 2-7) consume this analysis.
package queryinfo

import (
	"fmt"
	"strings"

	"aim/internal/catalog"
	"aim/internal/exec"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// AtomOp classifies an atomic predicate by how an index can use it.
type AtomOp int

// Atom operators. Eq-like operators (Eq, NullSafeEq, In) are index prefix
// predicates (IPP) per §IV-B2: matching rows share a constant key prefix.
const (
	OpEq AtomOp = iota
	OpNullSafeEq
	OpIn
	OpRange      // <, <=, >, >=, BETWEEN
	OpLikePrefix // LIKE with a non-empty constant prefix
	OpIsNull
	OpOther
)

func (op AtomOp) String() string {
	switch op {
	case OpEq:
		return "EQ"
	case OpNullSafeEq:
		return "NULLSAFE_EQ"
	case OpIn:
		return "IN"
	case OpRange:
		return "RANGE"
	case OpLikePrefix:
		return "LIKE_PREFIX"
	case OpIsNull:
		return "IS_NULL"
	default:
		return "OTHER"
	}
}

// IsIPP reports whether the operator forms an index prefix predicate.
func (op AtomOp) IsIPP() bool {
	return op == OpEq || op == OpNullSafeEq || op == OpIn || op == OpIsNull
}

// Atom is an atomic single-table predicate of the form `column op constant`.
type Atom struct {
	Instance int    // table instance ordinal
	Column   string // lower-cased column name
	Op       AtomOp
	Expr     sqlparser.Expr
	// Eq/NullSafeEq value, or nil when the comparand is a placeholder.
	EqValue *sqltypes.Value
	// In list values (literals only).
	InValues []sqltypes.Value
	// Range bounds; nil pointer = unbounded / unknown.
	Lo, Hi       *sqltypes.Value
	LoInc, HiInc bool
	// LikePrefix holds the constant prefix for OpLikePrefix.
	LikePrefix string
}

// JoinEdge is one equality predicate between columns of two instances.
type JoinEdge struct {
	LeftInstance  int
	LeftColumn    string
	RightInstance int
	RightColumn   string
	Expr          sqlparser.Expr
}

// Other returns the opposite instance/column of the edge relative to inst,
// and ok=false when the edge does not touch inst.
func (e JoinEdge) Other(inst int) (otherInst int, thisCol, otherCol string, ok bool) {
	switch inst {
	case e.LeftInstance:
		return e.RightInstance, e.LeftColumn, e.RightColumn, true
	case e.RightInstance:
		return e.LeftInstance, e.RightColumn, e.LeftColumn, true
	}
	return 0, "", "", false
}

// OrderColumn is one ORDER BY element resolved to an instance column.
type OrderColumn struct {
	Instance int
	Column   string
	Desc     bool
}

// Conjunct is one top-level AND factor of the WHERE clause.
type Conjunct struct {
	Expr      sqlparser.Expr
	Instances []int // instance ordinals referenced, sorted
	// Atom is non-nil when the conjunct is a recognizable single-table atom.
	Atom *Atom
	// Join is non-nil when the conjunct is an equality between two columns
	// of different instances.
	Join *JoinEdge
}

// Info is the full structural analysis of one SELECT.
type Info struct {
	Select    *sqlparser.Select
	Layout    *exec.Layout
	Conjuncts []*Conjunct
	JoinEdges []JoinEdge
	// Per-instance metadata, indexed by instance ordinal.
	FilterAtoms [][]*Atom     // atoms from top-level conjuncts
	GroupBy     []OrderColumn // resolved GROUP BY columns (in clause order)
	OrderBy     []OrderColumn // resolved ORDER BY columns (in clause order)
	Referenced  [][]string    // all referenced column names per instance
	SelectsStar bool
	Aggregates  []*sqlparser.FuncExpr
}

// Analyze binds sel against the schema and extracts structural metadata.
func Analyze(sel *sqlparser.Select, schema *catalog.Schema) (*Info, error) {
	instances := make([]exec.Instance, len(sel.Tables))
	for i, tr := range sel.Tables {
		tbl := schema.Table(tr.Name)
		if tbl == nil {
			return nil, fmt.Errorf("queryinfo: unknown table %q", tr.Name)
		}
		instances[i] = exec.Instance{Alias: tr.EffectiveAlias(), Table: tbl}
	}
	layout := exec.NewLayout(instances)
	info := &Info{
		Select:      sel,
		Layout:      layout,
		FilterAtoms: make([][]*Atom, len(instances)),
		Referenced:  make([][]string, len(instances)),
	}

	refSets := make([]map[string]bool, len(instances))
	for i := range refSets {
		refSets[i] = map[string]bool{}
	}
	addRef := func(e sqlparser.Expr) error {
		var err error
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if c, ok := x.(*sqlparser.ColumnRef); ok {
				inst, col, rerr := resolveRef(layout, c)
				if rerr != nil {
					err = rerr
					return false
				}
				refSets[inst][col] = true
			}
			return true
		})
		return err
	}

	// Projection.
	for _, se := range sel.Exprs {
		if se.Star {
			info.SelectsStar = true
			if se.Table == "" {
				for i, in := range instances {
					for _, c := range in.Table.ColumnNames() {
						refSets[i][strings.ToLower(c)] = true
					}
				}
			} else {
				i := layout.InstanceOf(se.Table)
				if i < 0 {
					return nil, fmt.Errorf("queryinfo: unknown table %q in projection", se.Table)
				}
				for _, c := range instances[i].Table.ColumnNames() {
					refSets[i][strings.ToLower(c)] = true
				}
			}
			continue
		}
		if err := addRef(se.Expr); err != nil {
			return nil, err
		}
		sqlparser.WalkExpr(se.Expr, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
				info.Aggregates = append(info.Aggregates, f)
			}
			return true
		})
	}

	// WHERE conjuncts.
	if sel.Where != nil {
		if err := addRef(sel.Where); err != nil {
			return nil, err
		}
		for _, e := range SplitAnd(sel.Where) {
			cj, err := classifyConjunct(e, layout)
			if err != nil {
				return nil, err
			}
			info.Conjuncts = append(info.Conjuncts, cj)
			if cj.Atom != nil {
				info.FilterAtoms[cj.Atom.Instance] = append(info.FilterAtoms[cj.Atom.Instance], cj.Atom)
			}
			if cj.Join != nil {
				info.JoinEdges = append(info.JoinEdges, *cj.Join)
			}
		}
	}

	// GROUP BY / ORDER BY. Bare references to select-list aliases (e.g.
	// ORDER BY n for COUNT(*) AS n) are legal and simply do not resolve to
	// a table column; they never generate index candidates.
	aliases := map[string]bool{}
	for _, se := range sel.Exprs {
		if se.Alias != "" {
			aliases[strings.ToLower(se.Alias)] = true
		}
	}
	isAliasRef := func(e sqlparser.Expr) bool {
		c, ok := e.(*sqlparser.ColumnRef)
		return ok && c.Table == "" && aliases[strings.ToLower(c.Column)]
	}
	for _, g := range sel.GroupBy {
		if isAliasRef(g) {
			continue
		}
		if err := addRef(g); err != nil {
			return nil, err
		}
		if c, ok := g.(*sqlparser.ColumnRef); ok {
			inst, col, err := resolveRef(layout, c)
			if err != nil {
				return nil, err
			}
			info.GroupBy = append(info.GroupBy, OrderColumn{Instance: inst, Column: col})
		}
	}
	for _, o := range sel.OrderBy {
		if isAliasRef(o.Expr) {
			continue
		}
		if err := addRef(o.Expr); err != nil {
			return nil, err
		}
		if c, ok := o.Expr.(*sqlparser.ColumnRef); ok {
			inst, col, err := resolveRef(layout, c)
			if err != nil {
				return nil, err
			}
			info.OrderBy = append(info.OrderBy, OrderColumn{Instance: inst, Column: col, Desc: o.Desc})
		}
	}

	for i, set := range refSets {
		for c := range set {
			info.Referenced[i] = append(info.Referenced[i], c)
		}
		sortStrings(info.Referenced[i])
	}
	return info, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// resolveRef maps a column reference to (instance ordinal, lower column).
func resolveRef(l *exec.Layout, c *sqlparser.ColumnRef) (int, string, error) {
	off, err := l.Resolve(c.Table, c.Column)
	if err != nil {
		return 0, "", err
	}
	inst := l.InstanceForOffset(off)
	return inst, strings.ToLower(c.Column), nil
}

// SplitAnd flattens a conjunction into its factors.
func SplitAnd(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "AND" {
		return append(SplitAnd(b.Left), SplitAnd(b.Right)...)
	}
	return []sqlparser.Expr{e}
}

// SplitOr flattens a disjunction into its terms.
func SplitOr(e sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(*sqlparser.BinaryExpr); ok && b.Op == "OR" {
		return append(SplitOr(b.Left), SplitOr(b.Right)...)
	}
	return []sqlparser.Expr{e}
}

func classifyConjunct(e sqlparser.Expr, l *exec.Layout) (*Conjunct, error) {
	cj := &Conjunct{Expr: e}
	instSet := map[int]bool{}
	var err error
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if c, ok := x.(*sqlparser.ColumnRef); ok {
			inst, _, rerr := resolveRef(l, c)
			if rerr != nil {
				err = rerr
				return false
			}
			instSet[inst] = true
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	for i := range instSet {
		cj.Instances = append(cj.Instances, i)
	}
	sortInts(cj.Instances)

	switch len(cj.Instances) {
	case 1:
		cj.Atom = classifyAtom(e, l, cj.Instances[0])
	case 2:
		cj.Join = classifyJoin(e, l)
	}
	return cj, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ClassifyAtom classifies a single-table predicate over the given instance.
// It returns an Atom with op OpOther when the shape is not index-usable.
func ClassifyAtom(e sqlparser.Expr, l *exec.Layout, inst int) *Atom {
	return classifyAtom(e, l, inst)
}

func classifyAtom(e sqlparser.Expr, l *exec.Layout, inst int) *Atom {
	a := &Atom{Instance: inst, Op: OpOther, Expr: e}
	col := func(x sqlparser.Expr) (string, bool) {
		c, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return "", false
		}
		return strings.ToLower(c.Column), true
	}
	lit := func(x sqlparser.Expr) (*sqltypes.Value, bool) {
		switch v := x.(type) {
		case *sqlparser.Literal:
			val := v.Val
			return &val, true
		case *sqlparser.Placeholder:
			return nil, true // shape is usable, value unknown
		}
		return nil, false
	}
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		c, okL := col(v.Left)
		val, okR := lit(v.Right)
		op := v.Op
		if !okL || !okR {
			// Try the flipped orientation, e.g. 5 < col.
			if c2, ok := col(v.Right); ok {
				if val2, ok2 := lit(v.Left); ok2 {
					c, val, okL, okR = c2, val2, true, true
					op = flipOp(op)
				}
			}
		}
		if !okL || !okR {
			return a
		}
		a.Column = c
		switch op {
		case "=":
			a.Op = OpEq
			a.EqValue = val
		case "<=>":
			a.Op = OpNullSafeEq
			a.EqValue = val
		case "<", "<=":
			a.Op = OpRange
			a.Hi = val
			a.HiInc = op == "<="
		case ">", ">=":
			a.Op = OpRange
			a.Lo = val
			a.LoInc = op == ">="
		default:
			a.Op = OpOther
		}
		return a
	case *sqlparser.InExpr:
		if v.Not {
			return a
		}
		c, ok := col(v.Left)
		if !ok {
			return a
		}
		a.Column = c
		a.Op = OpIn
		for _, item := range v.List {
			if litv, ok := item.(*sqlparser.Literal); ok {
				a.InValues = append(a.InValues, litv.Val)
			}
		}
		return a
	case *sqlparser.BetweenExpr:
		if v.Not {
			return a
		}
		c, ok := col(v.Left)
		if !ok {
			return a
		}
		lo, okLo := lit(v.Low)
		hi, okHi := lit(v.High)
		if !okLo || !okHi {
			return a
		}
		a.Column = c
		a.Op = OpRange
		a.Lo, a.Hi = lo, hi
		a.LoInc, a.HiInc = true, true
		return a
	case *sqlparser.LikeExpr:
		if v.Not {
			return a
		}
		c, ok := col(v.Left)
		if !ok {
			return a
		}
		pat, ok := v.Pattern.(*sqlparser.Literal)
		if !ok {
			return a
		}
		prefix := exec.LikePrefix(pat.Val.Str())
		if prefix == "" {
			return a
		}
		a.Column = c
		a.Op = OpLikePrefix
		a.LikePrefix = prefix
		lo := sqltypes.NewString(prefix)
		hi := sqltypes.NewString(prefix + "\xff")
		a.Lo, a.Hi = &lo, &hi
		a.LoInc, a.HiInc = true, false
		return a
	case *sqlparser.IsNullExpr:
		if v.Not {
			return a
		}
		c, ok := col(v.Left)
		if !ok {
			return a
		}
		a.Column = c
		a.Op = OpIsNull
		null := sqltypes.Null
		a.EqValue = &null
		return a
	default:
		return a
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func classifyJoin(e sqlparser.Expr, l *exec.Layout) *JoinEdge {
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || b.Op != "=" {
		return nil
	}
	lc, ok1 := b.Left.(*sqlparser.ColumnRef)
	rc, ok2 := b.Right.(*sqlparser.ColumnRef)
	if !ok1 || !ok2 {
		return nil
	}
	li, lcol, err1 := resolveRef(l, lc)
	ri, rcol, err2 := resolveRef(l, rc)
	if err1 != nil || err2 != nil || li == ri {
		return nil
	}
	return &JoinEdge{LeftInstance: li, LeftColumn: lcol, RightInstance: ri, RightColumn: rcol, Expr: e}
}

// JoinNeighbors returns, per instance, the set of instances it shares a join
// edge with.
func (info *Info) JoinNeighbors() []map[int]bool {
	out := make([]map[int]bool, len(info.Layout.Instances))
	for i := range out {
		out[i] = map[int]bool{}
	}
	for _, e := range info.JoinEdges {
		out[e.LeftInstance][e.RightInstance] = true
		out[e.RightInstance][e.LeftInstance] = true
	}
	return out
}

// JoinColumns returns the columns of instance inst that participate in join
// edges with any instance in others.
func (info *Info) JoinColumns(inst int, others map[int]bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range info.JoinEdges {
		other, thisCol, _, ok := e.Other(inst)
		if !ok || !others[other] {
			continue
		}
		if !seen[thisCol] {
			seen[thisCol] = true
			out = append(out, thisCol)
		}
	}
	return out
}

// DNFLimit caps the number of disjuncts produced by DNF conversion; beyond
// it the predicate is treated as a single conjunctive factor.
const DNFLimit = 64

// DNF converts a boolean expression to disjunctive normal form, returning
// one atom list per disjunct. NOT is pushed down with De Morgan's laws;
// negated atoms are kept as opaque atoms. When the expansion would exceed
// DNFLimit the function falls back to a single factor containing every atom
// found in the expression (a safe over-approximation for candidate
// generation).
func DNF(e sqlparser.Expr) [][]sqlparser.Expr {
	out, ok := dnf(e, false)
	if ok && len(out) <= DNFLimit {
		return out
	}
	// Fallback: single factor of all atoms.
	var atoms []sqlparser.Expr
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		switch b := x.(type) {
		case *sqlparser.BinaryExpr:
			if b.Op == "AND" || b.Op == "OR" {
				return true
			}
			atoms = append(atoms, x)
			return false
		case *sqlparser.NotExpr:
			return true
		default:
			atoms = append(atoms, x)
			return false
		}
	})
	return [][]sqlparser.Expr{atoms}
}

func dnf(e sqlparser.Expr, negated bool) ([][]sqlparser.Expr, bool) {
	switch v := e.(type) {
	case *sqlparser.BinaryExpr:
		op := v.Op
		if negated {
			switch op {
			case "AND":
				op = "OR"
			case "OR":
				op = "AND"
			}
		}
		switch op {
		case "OR":
			left, ok1 := dnf(v.Left, negated)
			right, ok2 := dnf(v.Right, negated)
			if !ok1 || !ok2 {
				return nil, false
			}
			return append(left, right...), len(left)+len(right) <= DNFLimit
		case "AND":
			left, ok1 := dnf(v.Left, negated)
			right, ok2 := dnf(v.Right, negated)
			if !ok1 || !ok2 {
				return nil, false
			}
			if len(left)*len(right) > DNFLimit {
				return nil, false
			}
			var out [][]sqlparser.Expr
			for _, l := range left {
				for _, r := range right {
					factor := make([]sqlparser.Expr, 0, len(l)+len(r))
					factor = append(factor, l...)
					factor = append(factor, r...)
					out = append(out, factor)
				}
			}
			return out, true
		}
	case *sqlparser.NotExpr:
		return dnf(v.Inner, !negated)
	}
	if negated {
		return [][]sqlparser.Expr{{&sqlparser.NotExpr{Inner: e}}}, true
	}
	return [][]sqlparser.Expr{{e}}, true
}
