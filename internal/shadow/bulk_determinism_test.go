package shadow

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/exec"
	"aim/internal/obs"
	"aim/internal/storage"
	"aim/internal/workload"
)

// renderReport serializes a validation verdict at full float precision so
// runs can be compared byte-for-byte.
func renderReport(rep *Report) string {
	hex := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "accepted=%v reason=%s gain=%s divergent=%v\n",
		rep.Accepted, rep.Reason, hex(rep.TotalGain), rep.Divergent)
	for _, o := range rep.Outcomes {
		fmt.Fprintf(&b, "%s exec=%d replays=%d before=%s after=%s\n",
			o.Normalized, o.Executions, o.Replays, hex(o.BeforeCPU), hex(o.AfterCPU))
	}
	return b.String()
}

// TestValidateDeterministicAcrossWorkersAndObs pins the determinism
// guarantee of the bulk clone/build substrate at the gate level: the full
// shadow verdict — every outcome, at bit-exact float precision — must be
// byte-identical whether clone trees are copied by one worker or eight,
// and with storage/engine instrumentation on or off.
func TestValidateDeterministicAcrossWorkersAndObs(t *testing.T) {
	run := func(workers int, withObs bool) string {
		db, mon := fixture(t)
		// Mix DML into the replayed workload so index maintenance costs are
		// part of the verdict.
		for i := 0; i < 25; i++ {
			sql := fmt.Sprintf("UPDATE t SET a = a + 1 WHERE id = %d", i)
			res, err := db.Exec(sql)
			if err != nil {
				t.Fatal(err)
			}
			mon.Record(sql, res.Stats)
		}
		db.Store.Workers = workers
		if withObs {
			reg := obs.NewRegistry()
			db.SetObs(reg)
			storage.Instrument(reg)
			defer storage.Instrument(nil)
		}
		idx := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true}
		rep, err := Validate(db, []*catalog.Index{idx}, mon, DefaultGate())
		if err != nil {
			t.Fatal(err)
		}
		return renderReport(rep)
	}
	want := run(1, false)
	if !strings.Contains(want, "accepted=true") {
		t.Fatalf("reference run rejected:\n%s", want)
	}
	for _, workers := range []int{0, 2, 8} {
		if got := run(workers, false); got != want {
			t.Errorf("workers=%d diverged\n--- want ---\n%s--- got ---\n%s", workers, want, got)
		}
	}
	for _, workers := range []int{1, 8} {
		if got := run(workers, true); got != want {
			t.Errorf("instrumented workers=%d diverged\n--- want ---\n%s--- got ---\n%s", workers, want, got)
		}
	}
}

// TestReplayEngineParityAcrossWorkersAndObs extends the determinism gate
// across execution engines: the full shadow verdict — replay outcomes,
// bit-exact CPU gains, and the accept/reject recommendation — must be
// byte-identical whether statements replay on the vectorized batch engine
// (production default) or the tuple-at-a-time row loop, at worker counts
// 1/2/4, with instrumentation on or off. This is the end-to-end proof that
// batch execution cannot shift an advisor decision.
func TestReplayEngineParityAcrossWorkersAndObs(t *testing.T) {
	run := func(workers int, withObs, rowOnly bool) string {
		db, mon := fixture(t)
		db.Store.Workers = workers
		db.SetRowOnlyExec(rowOnly)
		if withObs {
			reg := obs.NewRegistry()
			db.SetObs(reg)
			storage.Instrument(reg)
			defer storage.Instrument(nil)
		}
		idx := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true}
		rep, err := Validate(db, []*catalog.Index{idx}, mon, DefaultGate())
		if err != nil {
			t.Fatal(err)
		}
		return renderReport(rep)
	}
	want := run(1, false, true) // row engine is the reference
	for _, workers := range []int{1, 2, 4} {
		for _, withObs := range []bool{false, true} {
			if got := run(workers, withObs, false); got != want {
				t.Errorf("vectorized verdict diverged (workers=%d obs=%v)\n--- row ---\n%s--- vec ---\n%s",
					workers, withObs, want, got)
			}
		}
	}
}

// TestDivergenceRebuildByteIdenticalVerdicts forces the one-sided DML
// divergence path, rebuilds the clone pair exactly as Validate does (clone
// + batch CreateIndexes, all on the bulk construction path), and asserts
// the rebuilt pair produces byte-identical replay verdicts at any worker
// count and with instrumentation on or off.
func TestDivergenceRebuildByteIdenticalVerdicts(t *testing.T) {
	run := func(workers int, withObs bool) string {
		db, mon := fixture(t)
		db.Store.Workers = workers
		if withObs {
			reg := obs.NewRegistry()
			db.SetObs(reg)
			storage.Instrument(reg)
			defer storage.Instrument(nil)
		}
		cand := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true}
		makeClones := func() (*engine.DB, *engine.DB) {
			baseline := db.Clone("shadow-baseline")
			test := db.Clone("shadow-test")
			def := *cand
			def.Columns = append([]string(nil), cand.Columns...)
			def.Hypothetical = false
			if _, err := test.CreateIndexes([]*catalog.Index{&def}); err != nil {
				t.Fatal(err)
			}
			test.Analyze()
			return baseline, test
		}
		baseline, test := makeClones()

		// Half-apply a write: land it on the baseline only, exactly the state
		// an aborted replay leaves behind. The next replay of that statement
		// fails on the baseline, succeeds on the test clone — a one-sided DML
		// error that must be reported as divergence.
		baseline.MustExec("INSERT INTO t VALUES (99999, 1, 1, 'w')")
		dmlMon := workload.NewMonitor()
		if err := dmlMon.Record("INSERT INTO t VALUES (99999, 1, 1, 'w')", exec.Stats{RowsWritten: 1}); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := replayQuery(baseline, test, dmlMon.Queries()[0], 3); !errors.Is(err, errDiverged) {
			t.Fatalf("half-applied write returned %v, want errDiverged", err)
		}

		// Rebuild the pair on the bulk path and replay the read workload.
		baseline, test = makeClones()
		hex := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
		var b strings.Builder
		for _, q := range mon.Queries() {
			before, after, replays, err := replayQuery(baseline, test, q, 3)
			fmt.Fprintf(&b, "%s replays=%d before=%s after=%s err=%v\n",
				q.Normalized, replays, hex(before), hex(after), err != nil)
		}
		// The rebuilt baseline must not contain the half-applied row.
		if res := baseline.MustExec("SELECT a FROM t WHERE id = 99999"); len(res.Rows) != 0 {
			t.Fatal("rebuilt baseline kept the diverged write")
		}
		return b.String()
	}
	want := run(1, false)
	if want == "" {
		t.Fatal("no verdicts rendered")
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers, false); got != want {
			t.Errorf("workers=%d diverged\n--- want ---\n%s--- got ---\n%s", workers, want, got)
		}
	}
	if got := run(8, true); got != want {
		t.Errorf("instrumented run diverged\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
