package shadow

// ReasonCode is the machine-readable verdict classification of one shadow
// validation. Report.Reason keeps the human-facing sentence; the code is
// what /statusz, the audit journal and fleet dashboards consume — stable
// across wording changes and greppable. Every verdict carries a code,
// accepted ones included (the old free-text scheme only explained
// rejections, which made accepted runs unauditable).
type ReasonCode string

const (
	// CodeAccepted: the gate equations (Eq. 2-4) all passed.
	CodeAccepted ReasonCode = "accepted"
	// CodeNoCandidates: the caller passed an empty recommendation.
	CodeNoCandidates ReasonCode = "no_candidates"
	// CodeQueryRegressed: Eq. 4 failed — a query regressed beyond λ₃.
	CodeQueryRegressed ReasonCode = "query_regressed"
	// CodeNoQueryImproved: Eq. 3 failed — no query improved by λ₂.
	CodeNoQueryImproved ReasonCode = "no_query_improved"
	// CodeOverallRegressed: Eq. 2 failed — total cost rose beyond λ₁.
	CodeOverallRegressed ReasonCode = "overall_regressed"
	// CodeCloneUnavailable: the clone pair could not be built (degraded).
	CodeCloneUnavailable ReasonCode = "clone_unavailable"
	// CodeCloneRebuildFailed: a post-divergence clone rebuild failed
	// (degraded).
	CodeCloneRebuildFailed ReasonCode = "clone_rebuild_failed"
	// CodeUnreplayable: one or more queries stayed unreplayable after
	// retries, so the gate would have decided on partial evidence
	// (degraded).
	CodeUnreplayable ReasonCode = "unreplayable_queries"
	// CodePanicked: the validation panicked and was contained (degraded).
	CodePanicked ReasonCode = "validation_panic"
)

// Verdict is the three-way outcome string used by /statusz and the audit
// journal: "accepted", "rejected" or "degraded".
func (r *Report) Verdict() string {
	switch {
	case r.Accepted:
		return "accepted"
	case r.Degraded:
		return "degraded"
	default:
		return "rejected"
	}
}
