package shadow

import (
	"strings"
	"testing"

	"aim/internal/catalog"
	"aim/internal/failpoint"
	"aim/internal/obs"
)

// arm activates a fault spec for the duration of the test.
func arm(t *testing.T, spec string) {
	t.Helper()
	fp, err := failpoint.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(fp)
	t.Cleanup(func() { failpoint.Activate(nil) })
}

func goodIndex() *catalog.Index {
	return &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true, CreatedBy: "aim"}
}

// TestValidateDegradesOnPersistentCloneFailure: when the shadow environment
// cannot be provisioned at all, validation must return a degraded verdict —
// not an error, and never an acceptance.
func TestValidateDegradesOnPersistentCloneFailure(t *testing.T) {
	db, mon := fixture(t)
	arm(t, "shadow.clone=err(1)")
	rep, err := Validate(db, []*catalog.Index{goodIndex()}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("accepted without a validated shadow run")
	}
	if !rep.Degraded {
		t.Fatalf("verdict not degraded: %s", rep.Reason)
	}
	if !strings.Contains(rep.Reason, "clone environment unavailable") {
		t.Errorf("reason = %q", rep.Reason)
	}
	if db.Schema.Index("aim_t_a") != nil {
		t.Fatal("degraded validation leaked index into production")
	}
}

// TestValidateRetriesTransientCloneFailure: the first two clone attempts
// fail, the third succeeds — the index must still be validated and
// accepted, with no degradation.
func TestValidateRetriesTransientCloneFailure(t *testing.T) {
	db, mon := fixture(t)
	arm(t, "shadow.clone=err()@1-2")
	rep, err := Validate(db, []*catalog.Index{goodIndex()}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("degraded despite successful retry: %s", rep.Reason)
	}
	if !rep.Accepted {
		t.Fatalf("rejected: %s", rep.Reason)
	}
}

// TestValidateDegradesOnUnreplayableQueries: when every replay fails, the
// gate has no evidence — it must fail closed with a degraded verdict
// instead of accepting on an empty outcome set.
func TestValidateDegradesOnUnreplayableQueries(t *testing.T) {
	db, mon := fixture(t)
	reg := obs.NewRegistry()
	db.SetObs(reg)
	arm(t, "replay.query=err(1)")
	rep, err := Validate(db, []*catalog.Index{goodIndex()}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("accepted with zero replayed queries")
	}
	if !rep.Degraded {
		t.Fatalf("verdict not degraded: %s", rep.Reason)
	}
	if len(rep.ReplayErrors) == 0 {
		t.Fatal("replay errors not surfaced")
	}
	if got := reg.Counter("shadow.degraded").Value(); got != 1 {
		t.Errorf("shadow.degraded = %d", got)
	}
	if reg.Counter("shadow.replay_errors").Value() == 0 {
		t.Error("shadow.replay_errors never incremented")
	}
}

// TestValidateSurvivesClonePanic: a panic while provisioning the shadow
// environment is contained and converted into a degraded verdict.
func TestValidateSurvivesClonePanic(t *testing.T) {
	db, mon := fixture(t)
	arm(t, "shadow.clone=panic()")
	rep, err := Validate(db, []*catalog.Index{goodIndex()}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || !rep.Degraded {
		t.Fatalf("panic not degraded: accepted=%v degraded=%v reason=%q", rep.Accepted, rep.Degraded, rep.Reason)
	}
	if !strings.Contains(rep.Reason, "panic") {
		t.Errorf("reason = %q", rep.Reason)
	}
}

// TestValidateToleratesPartialReplayErrors is the boundary between the two
// fail-closed cases: a minority of replays failing degrades the verdict as
// well — adoption decisions are only made on complete evidence.
func TestValidateToleratesPartialReplayErrors(t *testing.T) {
	db, mon := fixture(t)
	// Both replayPolicy attempts of the first query fail; the rest succeed.
	arm(t, "replay.query=err()@1-2")
	rep, err := Validate(db, []*catalog.Index{goodIndex()}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ReplayErrors) != 1 {
		t.Fatalf("replay errors = %v", rep.ReplayErrors)
	}
	if rep.Accepted || !rep.Degraded {
		t.Fatalf("partial evidence must degrade: accepted=%v degraded=%v", rep.Accepted, rep.Degraded)
	}
}
