// Package shadow is the MyShadow analogue (§VII-B): it materializes a
// recommendation on a logical clone of the database, replays the observed
// workload against both the old and new configuration, and enforces the
// continuous-tuning guarantees of Eq. 2-4 — overall improvement, at least
// one query improved by λ₂, and no query regressed by more than λ₃ — before
// anything touches production.
//
// Failure semantics: validation is the loop's safety gate, so it must fail
// *closed*. Clone builds and replays are retried with bounded backoff
// (failpoint.Policy); when a phase keeps failing — or any query stays
// unreplayable — the verdict is Degraded: not accepted, nothing applied,
// production untouched. A fault can delay an adoption, never cause an
// unvalidated one.
package shadow

import (
	"errors"
	"fmt"
	"time"

	"aim/internal/audit"
	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/workload"
)

// Gate holds the λ parameters of the continuous index tuning problem
// (§II-B). All are fractions in [0, 1).
type Gate struct {
	// Lambda1 bounds overall cost increase versus the candidate config.
	Lambda1 float64
	// Lambda2 is the minimum relative improvement required for at least
	// one query (Eq. 3).
	Lambda2 float64
	// Lambda3 is the maximum tolerated per-query regression (Eq. 4).
	Lambda3 float64
	// MinRegressCPU is an absolute noise floor under the λ₃ check: a query
	// whose per-execution CPU grew by less than this many seconds is not
	// counted as regressed even when the relative change exceeds λ₃. Cheap
	// statements (a single-row INSERT costs a few microseconds) otherwise
	// veto every first index on their table, because fixed per-index
	// maintenance is huge *relative* to their cost while being irrelevant in
	// absolute terms. 0 disables the floor (pure-λ₃ semantics).
	MinRegressCPU float64
	// MaxReplays caps how many parameter samples are replayed per query
	// (0 = replay every sample). Fewer samples may be available; the actual
	// count lands in QueryOutcome.Replays.
	MaxReplays int
}

// DefaultGate uses mild thresholds suitable for the synthetic workloads.
func DefaultGate() Gate {
	return Gate{Lambda1: 0.1, Lambda2: 0.05, Lambda3: 0.25, MinRegressCPU: 50e-6, MaxReplays: 3}
}

// Retry policies for the two fallible phases. Package variables so the
// fault tests can tighten them; production code treats them as constants.
var (
	// clonePolicy guards clone-pair construction (clone + candidate
	// materialization), retried as a unit: a half-built pair is discarded,
	// never patched.
	clonePolicy = failpoint.DefaultPolicy()
	// replayPolicy guards one query's replay. Divergence aborts the retry
	// loop immediately (the clones must be rebuilt, retrying cannot help).
	replayPolicy = failpoint.Policy{Attempts: 2, Base: 500 * time.Microsecond, Max: 2 * time.Millisecond, Deadline: 100 * time.Millisecond}
)

// QueryOutcome is the before/after comparison for one normalized query.
type QueryOutcome struct {
	Normalized string
	Executions int64 // weight used for the overall aggregate
	// Replays is how many parameter samples were actually replayed on each
	// clone (bounded by Gate.MaxReplays).
	Replays   int
	BeforeCPU float64
	AfterCPU  float64
}

// Change returns the relative CPU delta (negative = improvement).
func (o *QueryOutcome) Change() float64 {
	if o.BeforeCPU == 0 {
		return 0
	}
	return (o.AfterCPU - o.BeforeCPU) / o.BeforeCPU
}

// Report is the verdict of one validation run.
type Report struct {
	Accepted bool
	// Code is the typed, machine-readable classification of the verdict;
	// Reason is the human-facing sentence carrying the specifics (which
	// query, by how much). Both are always set — accepted and rejected
	// verdicts alike.
	Code   ReasonCode
	Reason string
	// Degraded marks a verdict produced under failure rather than by the
	// gate: the clone environment could not be built, one or more queries
	// stayed unreplayable after retries, or the validation panicked. A
	// degraded verdict is never Accepted — the loop's answer to a fault is
	// "no change", not an unvalidated adoption.
	Degraded  bool
	Outcomes  []QueryOutcome
	TotalGain float64 // weighted CPU seconds saved per window
	// Divergent lists normalized queries whose DML replay succeeded on one
	// clone but failed on the other. Their comparison was aborted and the
	// clones rebuilt; the gate verdict excludes them.
	Divergent []string
	// ReplayErrors lists normalized queries that could not be replayed at
	// all after retries (clone errors, unbindable samples). Any entry here
	// degrades the verdict: a gate decided on partial evidence could let a
	// regression through on exactly the queries it failed to see.
	ReplayErrors []string
	// AcceptedIndexes are the indexes that survive validation (currently
	// all-or-nothing, like the paper's per-database gate).
	AcceptedIndexes []*catalog.Index
}

// errDiverged signals a one-sided DML replay failure: one clone applied the
// write and the other did not, so every subsequent replay would compare
// different data. The caller must discard both clones.
var errDiverged = errors.New("shadow: clones diverged on one-sided DML error")

// Validate clones the database, materializes the candidate indexes on the
// clone, replays the workload on both configurations, and applies the gate.
// Runtime failures (clone build dying, replays erroring, panics below the
// validator) produce a Degraded non-accepting report, not an error: the
// returned error is reserved for misuse by the caller.
func Validate(db *engine.DB, candidates []*catalog.Index, mon *workload.Monitor, gate Gate) (rep *Report, err error) {
	reg := db.ObsRegistry()
	reg.Counter("shadow.validations").Inc()
	span := reg.StartSpan("shadow/validate")
	defer span.End()
	verdict := func(rep *Report) (*Report, error) {
		if rep.Accepted {
			reg.Counter("shadow.accepted").Inc()
		} else {
			reg.Counter("shadow.rejected").Inc()
		}
		if rep.Degraded {
			reg.Counter("shadow.degraded").Inc()
			failpoint.CountDegraded()
		}
		journalVerdict(db, span, candidates, mon, rep)
		return rep, nil
	}
	// Everything below runs on clones; production state is untouched until
	// the caller applies an accepted recommendation. A panic mid-validation
	// (e.g. an injected panic action in a clone build) therefore degrades
	// to "no change" instead of taking the tuning loop down.
	defer func() {
		if p := recover(); p != nil {
			rep, err = verdict(&Report{
				Degraded: true,
				Code:     CodePanicked,
				Reason:   fmt.Sprintf("validation panicked: %v", p),
			})
		}
	}()
	if len(candidates) == 0 {
		return verdict(&Report{Accepted: false, Code: CodeNoCandidates, Reason: "no candidate indexes"})
	}

	// makeClones builds a fresh baseline/test pair from production as O(1)
	// copy-on-write snapshots, with the candidates materialized on the test
	// side in one batch (the per-index builds fan out over the storage
	// worker pool). Rebuilding restores comparability after a divergence
	// (the engine has no transactions to roll back a half-applied replay).
	// The whole pair is built or none of it: a snapshot or materialization
	// failure discards both sides, and clonePolicy retries from scratch
	// with backoff. Discarded and superseded snapshot handles are Released
	// so the storage.snapshots_live gauge tracks the pair actually held.
	release := func(dbs ...*engine.DB) {
		for _, d := range dbs {
			if d != nil {
				d.Release()
			}
		}
	}
	makeClones := func() (*engine.DB, *engine.DB, error) {
		var baseline, test *engine.DB
		err := clonePolicy.Do(func() error {
			release(baseline, test)
			baseline, test = nil, nil
			if err := failpoint.Inject("shadow.clone"); err != nil {
				return err
			}
			var err error
			if baseline, err = db.CloneChecked("shadow-baseline"); err != nil {
				return err
			}
			if test, err = db.CloneChecked("shadow-test"); err != nil {
				return err
			}
			defs := make([]*catalog.Index, len(candidates))
			for i, ix := range candidates {
				def := *ix
				def.Columns = append([]string(nil), ix.Columns...)
				def.Hypothetical = false
				defs[i] = &def
			}
			if _, err := test.CreateIndexes(defs); err != nil {
				return fmt.Errorf("shadow: materializing candidates: %v", err)
			}
			test.Analyze()
			return nil
		})
		if err != nil {
			reg.Counter("shadow.clone_failures").Inc()
			return nil, nil, err
		}
		reg.Counter("shadow.clone_pairs").Inc()
		return baseline, test, nil
	}
	baseline, test, err := makeClones()
	if err != nil {
		return verdict(&Report{
			Degraded: true,
			Code:     CodeCloneUnavailable,
			Reason:   fmt.Sprintf("clone environment unavailable: %v", err),
		})
	}
	defer func() { release(baseline, test) }()

	rep = &Report{}
	improvedOne := false
	var totalBefore, totalAfter float64
	for _, q := range mon.Queries() {
		var before, after float64
		var replays int
		rerr := replayPolicy.Do(func() error {
			var e error
			before, after, replays, e = replayQuery(baseline, test, q, gate.MaxReplays)
			reg.Counter("shadow.replays").Add(int64(replays))
			if errors.Is(e, errDiverged) {
				return failpoint.Abort(e)
			}
			return e
		})
		if rerr != nil {
			if errors.Is(rerr, errDiverged) {
				rep.Divergent = append(rep.Divergent, q.Normalized)
				reg.Counter("shadow.divergent").Inc()
				release(baseline, test)
				if baseline, test, err = makeClones(); err != nil {
					rep.Degraded = true
					rep.Code = CodeCloneRebuildFailed
					rep.Reason = fmt.Sprintf("clone rebuild after divergence failed: %v", err)
					return verdict(rep)
				}
				continue
			}
			// A query that stays unreplayable after retries degrades the
			// verdict below: the gate must not pass on evidence that is
			// silently missing exactly this query.
			rep.ReplayErrors = append(rep.ReplayErrors, q.Normalized)
			reg.Counter("shadow.replay_errors").Inc()
			continue
		}
		out := QueryOutcome{
			Normalized: q.Normalized,
			Executions: q.Executions,
			Replays:    replays,
			BeforeCPU:  before,
			AfterCPU:   after,
		}
		rep.Outcomes = append(rep.Outcomes, out)
		reg.Counter("shadow.replayed_queries").Inc()
		w := float64(q.Executions)
		totalBefore += before * w
		totalAfter += after * w
		if before > 0 && (before-after)/before >= gate.Lambda2 {
			improvedOne = true
		}
	}
	rep.TotalGain = totalBefore - totalAfter

	// Fail closed on partial evidence: any unreplayable query (or an empty
	// comparison with a non-empty workload) yields a Degraded rejection
	// before the gate equations run.
	if len(rep.ReplayErrors) > 0 || (len(rep.Outcomes) == 0 && mon.Len() > 0) {
		rep.Degraded = true
		rep.Code = CodeUnreplayable
		rep.Reason = fmt.Sprintf("validation degraded: %d of %d queries unreplayable",
			len(rep.ReplayErrors), mon.Len())
		return verdict(rep)
	}

	// Eq. 4: no individual regression beyond λ₃ (ignoring absolute deltas
	// under the MinRegressCPU noise floor).
	for _, out := range rep.Outcomes {
		if out.BeforeCPU > 0 && out.Change() > gate.Lambda3 &&
			out.AfterCPU-out.BeforeCPU >= gate.MinRegressCPU {
			rep.Code = CodeQueryRegressed
			rep.Reason = fmt.Sprintf("query regressed %.1f%% > λ₃: %s", out.Change()*100, out.Normalized)
			return verdict(rep)
		}
	}
	// Eq. 3: at least one query improved by λ₂.
	if !improvedOne {
		rep.Code = CodeNoQueryImproved
		rep.Reason = "no query improved by λ₂"
		return verdict(rep)
	}
	// Eq. 2 (approximated): the overall cost must not increase by more
	// than λ₁ relative to the candidate configuration's promise.
	if totalBefore > 0 && totalAfter > totalBefore*(1+gate.Lambda1) {
		rep.Code = CodeOverallRegressed
		rep.Reason = "overall cost regressed beyond λ₁"
		return verdict(rep)
	}
	rep.Accepted = true
	rep.Code = CodeAccepted
	// Accepted verdicts carry the evidence, not just the word: how many
	// queries were compared and what the gate measured.
	rep.Reason = fmt.Sprintf("accepted: %d queries compared, gain %.4fs cpu/window", len(rep.Outcomes), rep.TotalGain)
	rep.AcceptedIndexes = candidates
	return verdict(rep)
}

// journalVerdict writes one shadow record per candidate index to the
// database's audit journal (no-op when none is attached), each carrying the
// validation span so the journal joins against the trace.
func journalVerdict(db *engine.DB, span *obs.Span, candidates []*catalog.Index, mon *workload.Monitor, rep *Report) {
	j := db.AuditJournal()
	if j == nil {
		return
	}
	var replays int64
	for _, o := range rep.Outcomes {
		replays += int64(o.Replays)
	}
	for _, ix := range candidates {
		j.Append(&audit.Record{
			Event:               audit.EventShadow,
			SpanID:              span.ID(),
			IndexKey:            ix.Key(),
			Index:               ix.Name,
			Table:               ix.Table,
			Verdict:             rep.Verdict(),
			ReasonCode:          string(rep.Code),
			Reason:              rep.Reason,
			Replays:             replays,
			QueriesCompared:     len(rep.Outcomes),
			QueriesDiverged:     len(rep.Divergent),
			QueriesUnreplayable: len(rep.ReplayErrors),
		})
	}
}

// replayQuery executes the query's sampled parameterizations on both clones
// and returns average CPU seconds per execution for each, plus the number of
// samples replayed. A one-sided DML failure returns errDiverged: the write
// landed on one clone only, so the pair is no longer comparable and the
// caller must rebuild both clones. The "replay.query" failpoint fires before
// any sample executes, so an injected replay failure is retryable without
// re-applying DML.
func replayQuery(baseline, test *engine.DB, q *workload.QueryStats, maxReplays int) (before, after float64, replays int, err error) {
	if err := failpoint.Inject("replay.query"); err != nil {
		return 0, 0, 0, err
	}
	params := q.SampleParams
	if len(params) == 0 {
		params = [][]sqltypes.Value{nil}
	}
	if maxReplays > 0 && len(params) > maxReplays {
		params = params[:maxReplays]
	}
	for _, p := range params {
		stmt, err := sqlparser.Bind(q.Stmt, p)
		if err != nil {
			continue
		}
		// DML must not change clone contents between replays in a way that
		// breaks comparability; replay on both sides keeps them in step.
		resB, errB := baseline.ExecStmt(stmt)
		resT, errT := test.ExecStmt(stmt)
		if errB != nil || errT != nil {
			if _, isSelect := stmt.(*sqlparser.Select); !isSelect && (errB == nil) != (errT == nil) {
				// The statement mutated exactly one clone.
				return 0, 0, replays, errDiverged
			}
			continue
		}
		before += resB.Stats.CPUSeconds()
		after += resT.Stats.CPUSeconds()
		replays++
	}
	if replays == 0 {
		return 0, 0, 0, fmt.Errorf("shadow: no replayable samples for %s", q.Normalized)
	}
	return before / float64(replays), after / float64(replays), replays, nil
}
