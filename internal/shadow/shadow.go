// Package shadow is the MyShadow analogue (§VII-B): it materializes a
// recommendation on a logical clone of the database, replays the observed
// workload against both the old and new configuration, and enforces the
// continuous-tuning guarantees of Eq. 2-4 — overall improvement, at least
// one query improved by λ₂, and no query regressed by more than λ₃ — before
// anything touches production.
package shadow

import (
	"errors"
	"fmt"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/workload"
)

// Gate holds the λ parameters of the continuous index tuning problem
// (§II-B). All are fractions in [0, 1).
type Gate struct {
	// Lambda1 bounds overall cost increase versus the candidate config.
	Lambda1 float64
	// Lambda2 is the minimum relative improvement required for at least
	// one query (Eq. 3).
	Lambda2 float64
	// Lambda3 is the maximum tolerated per-query regression (Eq. 4).
	Lambda3 float64
	// MaxReplays caps how many parameter samples are replayed per query
	// (0 = replay every sample). Fewer samples may be available; the actual
	// count lands in QueryOutcome.Replays.
	MaxReplays int
}

// DefaultGate uses mild thresholds suitable for the synthetic workloads.
func DefaultGate() Gate {
	return Gate{Lambda1: 0.1, Lambda2: 0.05, Lambda3: 0.25, MaxReplays: 3}
}

// QueryOutcome is the before/after comparison for one normalized query.
type QueryOutcome struct {
	Normalized string
	Executions int64 // weight used for the overall aggregate
	// Replays is how many parameter samples were actually replayed on each
	// clone (bounded by Gate.MaxReplays).
	Replays   int
	BeforeCPU float64
	AfterCPU  float64
}

// Change returns the relative CPU delta (negative = improvement).
func (o *QueryOutcome) Change() float64 {
	if o.BeforeCPU == 0 {
		return 0
	}
	return (o.AfterCPU - o.BeforeCPU) / o.BeforeCPU
}

// Report is the verdict of one validation run.
type Report struct {
	Accepted  bool
	Reason    string
	Outcomes  []QueryOutcome
	TotalGain float64 // weighted CPU seconds saved per window
	// Divergent lists normalized queries whose DML replay succeeded on one
	// clone but failed on the other. Their comparison was aborted and the
	// clones rebuilt; the gate verdict excludes them.
	Divergent []string
	// AcceptedIndexes are the indexes that survive validation (currently
	// all-or-nothing, like the paper's per-database gate).
	AcceptedIndexes []*catalog.Index
}

// errDiverged signals a one-sided DML replay failure: one clone applied the
// write and the other did not, so every subsequent replay would compare
// different data. The caller must discard both clones.
var errDiverged = errors.New("shadow: clones diverged on one-sided DML error")

// Validate clones the database, materializes the candidate indexes on the
// clone, replays the workload on both configurations, and applies the gate.
func Validate(db *engine.DB, candidates []*catalog.Index, mon *workload.Monitor, gate Gate) (*Report, error) {
	reg := db.ObsRegistry()
	reg.Counter("shadow.validations").Inc()
	verdict := func(rep *Report) (*Report, error) {
		if rep.Accepted {
			reg.Counter("shadow.accepted").Inc()
		} else {
			reg.Counter("shadow.rejected").Inc()
		}
		return rep, nil
	}
	if len(candidates) == 0 {
		return verdict(&Report{Accepted: false, Reason: "no candidate indexes"})
	}

	// makeClones builds a fresh baseline/test pair from production, with the
	// candidates materialized on the test side in one batch (the per-index
	// builds fan out over the storage worker pool). Rebuilding restores
	// comparability after a divergence (the engine has no transactions to
	// roll back a half-applied replay). Clone and build both ride the bulk
	// tree-construction path, keeping divergence recovery linear in data
	// size rather than O(n log n) per tree.
	makeClones := func() (*engine.DB, *engine.DB, error) {
		reg.Counter("shadow.clone_pairs").Inc()
		baseline := db.Clone("shadow-baseline")
		test := db.Clone("shadow-test")
		defs := make([]*catalog.Index, len(candidates))
		for i, ix := range candidates {
			def := *ix
			def.Columns = append([]string(nil), ix.Columns...)
			def.Hypothetical = false
			defs[i] = &def
		}
		if _, err := test.CreateIndexes(defs); err != nil {
			return nil, nil, fmt.Errorf("shadow: materializing candidates: %v", err)
		}
		test.Analyze()
		return baseline, test, nil
	}
	baseline, test, err := makeClones()
	if err != nil {
		return nil, err
	}

	rep := &Report{}
	improvedOne := false
	var totalBefore, totalAfter float64
	for _, q := range mon.Queries() {
		before, after, replays, err := replayQuery(baseline, test, q, gate.MaxReplays)
		reg.Counter("shadow.replays").Add(int64(replays))
		if err != nil {
			if errors.Is(err, errDiverged) {
				rep.Divergent = append(rep.Divergent, q.Normalized)
				reg.Counter("shadow.divergent").Inc()
				if baseline, test, err = makeClones(); err != nil {
					return nil, err
				}
			}
			// Queries that cannot be replayed (e.g. dropped tables) are
			// skipped rather than failing the whole validation.
			continue
		}
		out := QueryOutcome{
			Normalized: q.Normalized,
			Executions: q.Executions,
			Replays:    replays,
			BeforeCPU:  before,
			AfterCPU:   after,
		}
		rep.Outcomes = append(rep.Outcomes, out)
		reg.Counter("shadow.replayed_queries").Inc()
		w := float64(q.Executions)
		totalBefore += before * w
		totalAfter += after * w
		if before > 0 && (before-after)/before >= gate.Lambda2 {
			improvedOne = true
		}
	}
	rep.TotalGain = totalBefore - totalAfter

	// Eq. 4: no individual regression beyond λ₃.
	for _, out := range rep.Outcomes {
		if out.BeforeCPU > 0 && out.Change() > gate.Lambda3 {
			rep.Reason = fmt.Sprintf("query regressed %.1f%% > λ₃: %s", out.Change()*100, out.Normalized)
			return verdict(rep)
		}
	}
	// Eq. 3: at least one query improved by λ₂.
	if !improvedOne {
		rep.Reason = "no query improved by λ₂"
		return verdict(rep)
	}
	// Eq. 2 (approximated): the overall cost must not increase by more
	// than λ₁ relative to the candidate configuration's promise.
	if totalBefore > 0 && totalAfter > totalBefore*(1+gate.Lambda1) {
		rep.Reason = "overall cost regressed beyond λ₁"
		return verdict(rep)
	}
	rep.Accepted = true
	rep.Reason = "accepted"
	rep.AcceptedIndexes = candidates
	return verdict(rep)
}

// replayQuery executes the query's sampled parameterizations on both clones
// and returns average CPU seconds per execution for each, plus the number of
// samples replayed. A one-sided DML failure returns errDiverged: the write
// landed on one clone only, so the pair is no longer comparable and the
// caller must rebuild both clones.
func replayQuery(baseline, test *engine.DB, q *workload.QueryStats, maxReplays int) (before, after float64, replays int, err error) {
	params := q.SampleParams
	if len(params) == 0 {
		params = [][]sqltypes.Value{nil}
	}
	if maxReplays > 0 && len(params) > maxReplays {
		params = params[:maxReplays]
	}
	for _, p := range params {
		stmt, err := sqlparser.Bind(q.Stmt, p)
		if err != nil {
			continue
		}
		// DML must not change clone contents between replays in a way that
		// breaks comparability; replay on both sides keeps them in step.
		resB, errB := baseline.ExecStmt(stmt)
		resT, errT := test.ExecStmt(stmt)
		if errB != nil || errT != nil {
			if _, isSelect := stmt.(*sqlparser.Select); !isSelect && (errB == nil) != (errT == nil) {
				// The statement mutated exactly one clone.
				return 0, 0, replays, errDiverged
			}
			continue
		}
		before += resB.Stats.CPUSeconds()
		after += resT.Stats.CPUSeconds()
		replays++
	}
	if replays == 0 {
		return 0, 0, 0, fmt.Errorf("shadow: no replayable samples for %s", q.Normalized)
	}
	return before / float64(replays), after / float64(replays), replays, nil
}
