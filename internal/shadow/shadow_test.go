package shadow

import (
	"fmt"
	"math/rand"
	"testing"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/workload"
)

func fixture(t testing.TB) (*engine.DB, *workload.Monitor) {
	t.Helper()
	db := engine.New("prod")
	db.MustExec("CREATE TABLE t (id INT, a INT, b INT, c VARCHAR(8), PRIMARY KEY (id))")
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d, 'w%d')",
			i, r.Intn(100), r.Intn(10), r.Intn(5)))
	}
	db.Analyze()
	mon := workload.NewMonitor()
	for i := 0; i < 20; i++ {
		sql := fmt.Sprintf("SELECT b FROM t WHERE a = %d", i%100)
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		mon.Record(sql, res.Stats)
	}
	return db, mon
}

func TestValidateAcceptsGoodIndex(t *testing.T) {
	db, mon := fixture(t)
	good := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true, CreatedBy: "aim"}
	rep, err := Validate(db, []*catalog.Index{good}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("rejected: %s (outcomes %+v)", rep.Reason, rep.Outcomes)
	}
	if rep.TotalGain <= 0 {
		t.Errorf("gain = %v", rep.TotalGain)
	}
	if len(rep.AcceptedIndexes) != 1 {
		t.Error("accepted indexes missing")
	}
	// Validation must not touch the production database.
	if db.Schema.Index("aim_t_a") != nil {
		t.Fatal("validation leaked index into production")
	}
}

func TestValidateRejectsUselessIndex(t *testing.T) {
	db, mon := fixture(t)
	// An index on b doesn't help a-filtered queries enough: no query
	// improves by λ₂.
	useless := &catalog.Index{Name: "aim_t_b", Table: "t", Columns: []string{"b"}, Hypothetical: true}
	rep, err := Validate(db, []*catalog.Index{useless}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("useless index accepted (outcomes %+v)", rep.Outcomes)
	}
}

func TestValidateEmptyCandidates(t *testing.T) {
	db, mon := fixture(t)
	rep, err := Validate(db, nil, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("empty candidate set accepted")
	}
}

func TestValidateGateRegressionBound(t *testing.T) {
	db, mon := fixture(t)
	// Record a DML-heavy component whose cost increases with the index:
	// updates to the indexed column rewrite index entries. With a tiny λ₃
	// the per-query regression bound must trip. (Updates replay cleanly on
	// clones, unlike inserts, which would collide on primary keys.)
	for i := 0; i < 50; i++ {
		sql := fmt.Sprintf("UPDATE t SET a = a + 1 WHERE id = %d", i)
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		mon.Record(sql, res.Stats)
	}
	gate := DefaultGate()
	gate.Lambda3 = 0.0001
	idx := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true}
	rep, err := Validate(db, []*catalog.Index{idx}, mon, gate)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("regressing DML accepted under strict λ₃")
	}
}

func TestOutcomeChange(t *testing.T) {
	o := QueryOutcome{BeforeCPU: 2, AfterCPU: 1}
	if o.Change() != -0.5 {
		t.Errorf("change = %v", o.Change())
	}
	o = QueryOutcome{BeforeCPU: 0, AfterCPU: 1}
	if o.Change() != 0 {
		t.Error("zero baseline should be neutral")
	}
}
