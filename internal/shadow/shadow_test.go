package shadow

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/exec"
	"aim/internal/workload"
)

func fixture(t testing.TB) (*engine.DB, *workload.Monitor) {
	t.Helper()
	db := engine.New("prod")
	db.MustExec("CREATE TABLE t (id INT, a INT, b INT, c VARCHAR(8), PRIMARY KEY (id))")
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d, 'w%d')",
			i, r.Intn(100), r.Intn(10), r.Intn(5)))
	}
	db.Analyze()
	mon := workload.NewMonitor()
	for i := 0; i < 20; i++ {
		sql := fmt.Sprintf("SELECT b FROM t WHERE a = %d", i%100)
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		mon.Record(sql, res.Stats)
	}
	return db, mon
}

func TestValidateAcceptsGoodIndex(t *testing.T) {
	db, mon := fixture(t)
	good := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true, CreatedBy: "aim"}
	rep, err := Validate(db, []*catalog.Index{good}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("rejected: %s (outcomes %+v)", rep.Reason, rep.Outcomes)
	}
	if rep.TotalGain <= 0 {
		t.Errorf("gain = %v", rep.TotalGain)
	}
	if len(rep.AcceptedIndexes) != 1 {
		t.Error("accepted indexes missing")
	}
	// Validation must not touch the production database.
	if db.Schema.Index("aim_t_a") != nil {
		t.Fatal("validation leaked index into production")
	}
}

func TestValidateRejectsUselessIndex(t *testing.T) {
	db, mon := fixture(t)
	// An index on b doesn't help a-filtered queries enough: no query
	// improves by λ₂.
	useless := &catalog.Index{Name: "aim_t_b", Table: "t", Columns: []string{"b"}, Hypothetical: true}
	rep, err := Validate(db, []*catalog.Index{useless}, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("useless index accepted (outcomes %+v)", rep.Outcomes)
	}
}

func TestValidateEmptyCandidates(t *testing.T) {
	db, mon := fixture(t)
	rep, err := Validate(db, nil, mon, DefaultGate())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("empty candidate set accepted")
	}
}

func TestValidateGateRegressionBound(t *testing.T) {
	db, mon := fixture(t)
	// Record a DML-heavy component whose cost increases with the index:
	// updates to the indexed column rewrite index entries. With a tiny λ₃
	// the per-query regression bound must trip. (Updates replay cleanly on
	// clones, unlike inserts, which would collide on primary keys.)
	for i := 0; i < 50; i++ {
		sql := fmt.Sprintf("UPDATE t SET a = a + 1 WHERE id = %d", i)
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		mon.Record(sql, res.Stats)
	}
	gate := DefaultGate()
	gate.Lambda3 = 0.0001
	gate.MinRegressCPU = 0 // pure-λ₃ semantics: no absolute noise floor
	idx := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true}
	rep, err := Validate(db, []*catalog.Index{idx}, mon, gate)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("regressing DML accepted under strict λ₃")
	}
}

func TestOutcomeChange(t *testing.T) {
	o := QueryOutcome{BeforeCPU: 2, AfterCPU: 1}
	if o.Change() != -0.5 {
		t.Errorf("change = %v", o.Change())
	}
	o = QueryOutcome{BeforeCPU: 0, AfterCPU: 1}
	if o.Change() != 0 {
		t.Error("zero baseline should be neutral")
	}
}

func TestReplayQueryDivergesOnOneSidedDMLError(t *testing.T) {
	// Two clones that are *already* out of step: the test side holds primary
	// key 42, the baseline does not. Replaying INSERT (42, ...) succeeds on
	// the baseline and fails with a duplicate-key error on the test side —
	// exactly the one-sided DML failure that must abort the comparison
	// instead of silently continuing with diverged clones.
	mk := func(withExtra bool) *engine.DB {
		db := engine.New("clone")
		db.MustExec("CREATE TABLE t (id INT, a INT, PRIMARY KEY (id))")
		for i := 0; i < 10; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
		}
		if withExtra {
			db.MustExec("INSERT INTO t VALUES (42, 0)")
		}
		db.Analyze()
		return db
	}
	baseline := mk(false)
	test := mk(true)

	mon := workload.NewMonitor()
	if err := mon.Record("INSERT INTO t VALUES (42, 1)", exec.Stats{RowsWritten: 1}); err != nil {
		t.Fatal(err)
	}
	q := mon.Queries()[0]

	_, _, _, err := replayQuery(baseline, test, q, 3)
	if !errors.Is(err, errDiverged) {
		t.Fatalf("one-sided DML error returned %v, want errDiverged", err)
	}
	// The baseline must not have kept replaying after the divergence was
	// detected (the write that did land is unavoidable, but only one).
	res := baseline.MustExec("SELECT a FROM t WHERE id = 42")
	if len(res.Rows) != 1 {
		t.Fatalf("baseline rows for id=42: %d", len(res.Rows))
	}
}

func TestReplayQuerySkipsBothSidedErrors(t *testing.T) {
	// When BOTH clones fail the same replay (duplicate key on each), the
	// clones stay in step: the sample is skipped, not treated as divergence.
	mk := func() *engine.DB {
		db := engine.New("clone")
		db.MustExec("CREATE TABLE t (id INT, a INT, PRIMARY KEY (id))")
		for i := 0; i < 10; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i))
		}
		db.Analyze()
		return db
	}
	baseline, test := mk(), mk()
	mon := workload.NewMonitor()
	// id 5 exists on both sides: both inserts fail identically.
	if err := mon.Record("INSERT INTO t VALUES (5, 1)", exec.Stats{RowsWritten: 1}); err != nil {
		t.Fatal(err)
	}
	q := mon.Queries()[0]
	_, _, _, err := replayQuery(baseline, test, q, 3)
	if errors.Is(err, errDiverged) {
		t.Fatal("both-sided error misreported as divergence")
	}
	if err == nil {
		t.Fatal("expected no-replayable-samples error")
	}
}

func TestReplayCountRecordedInOutcome(t *testing.T) {
	db, mon := fixture(t)
	good := &catalog.Index{Name: "aim_t_a", Table: "t", Columns: []string{"a"}, Hypothetical: true, CreatedBy: "aim"}
	gate := DefaultGate()
	gate.MaxReplays = 2
	rep, err := Validate(db, []*catalog.Index{good}, mon, gate)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, out := range rep.Outcomes {
		if out.Replays < 1 || out.Replays > gate.MaxReplays {
			t.Errorf("outcome %s replays = %d, want 1..%d", out.Normalized, out.Replays, gate.MaxReplays)
		}
	}
}
