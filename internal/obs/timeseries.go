package obs

import (
	"encoding/json"
	"math"
	"sync"
	"time"
)

// TSQuantiles is the per-sample view of one histogram or span family:
// cumulative count movement over the sample interval plus the approximate
// distribution quantiles at sample time.
type TSQuantiles struct {
	// CountDelta is how many observations landed during the interval.
	CountDelta int64 `json:"count_delta"`
	// SumDelta is the observed-value mass added during the interval.
	SumDelta float64 `json:"sum_delta"`
	// P50/P95/P99 are the lifetime-distribution quantiles at sample time
	// (bucket-resolution, like every obs histogram quantile).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// TSSample is one tick of the time-series recorder: for every counter the
// absolute value and the per-second rate since the previous tick, every
// gauge's instantaneous reading, and every histogram/span family's interval
// movement + quantiles. The first tick of a run carries no rates (there is
// no previous tick to difference against).
type TSSample struct {
	TSUS int64 `json:"ts_us"`
	// IntervalSeconds is the wall clock since the previous tick (0 on the
	// first).
	IntervalSeconds float64 `json:"interval_seconds"`
	Counters        map[string]int64 `json:"counters,omitempty"`
	// Rates are counter deltas divided by IntervalSeconds.
	Rates      map[string]float64      `json:"rates,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]TSQuantiles  `json:"histograms,omitempty"`
	Spans      map[string]TSQuantiles  `json:"spans,omitempty"`
}

// TimeSeries samples an obs registry into a fixed-size ring, turning the
// registry's lifetime-cumulative counters into rates and its histograms into
// per-interval movement — the "is the daemon healthier than an hour ago"
// view that a single cumulative scrape cannot answer. Ticking is pulled, not
// pushed: callers either drive Tick themselves (tests, the serve suite's
// per-round sampling) or run Start for a background ticker (aimd). Nil is
// off; sampling never mutates the registry.
type TimeSeries struct {
	reg *Registry

	mu   sync.Mutex
	ring []TSSample
	next int
	size int
	prev *Snapshot
	last time.Time
}

// NewTimeSeries returns a recorder over reg keeping the last capacity
// samples (<= 0 defaults to 360). A nil registry yields a nil recorder.
func NewTimeSeries(reg *Registry, capacity int) *TimeSeries {
	if reg == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 360
	}
	return &TimeSeries{reg: reg, ring: make([]TSSample, capacity)}
}

// Tick takes one sample at now. No-op on a nil recorder.
func (t *TimeSeries) Tick(now time.Time) {
	if t == nil {
		return
	}
	snap := t.reg.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TSSample{
		TSUS:     now.UnixMicro(),
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	if t.prev != nil {
		dt := now.Sub(t.last).Seconds()
		s.IntervalSeconds = dt
		if dt > 0 {
			s.Rates = make(map[string]float64, len(snap.Counters))
			for k, v := range snap.Counters {
				s.Rates[k] = float64(v-t.prev.Counters[k]) / dt
			}
		}
	}
	s.Histograms = quantileDeltas(snap.Histograms, prevHists(t.prev))
	s.Spans = quantileDeltas(snap.Spans, prevSpans(t.prev))
	t.prev = snap
	t.last = now
	if t.size == len(t.ring) {
		// oldest sample falls off the ring
	} else {
		t.size++
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
}

func prevHists(s *Snapshot) map[string]HistogramSnapshot {
	if s == nil {
		return nil
	}
	return s.Histograms
}

func prevSpans(s *Snapshot) map[string]HistogramSnapshot {
	if s == nil {
		return nil
	}
	return s.Spans
}

// quantileDeltas folds histogram snapshots into per-interval movement +
// current quantiles. Quantiles are recomputed from the cumulative bucket
// counts — the same bucket-resolution answer Histogram.Quantile gives.
func quantileDeltas(cur, prev map[string]HistogramSnapshot) map[string]TSQuantiles {
	if len(cur) == 0 {
		return nil
	}
	out := make(map[string]TSQuantiles, len(cur))
	for k, h := range cur {
		q := TSQuantiles{CountDelta: h.Count, SumDelta: h.Sum}
		if p, ok := prev[k]; ok {
			q.CountDelta -= p.Count
			q.SumDelta -= p.Sum
		}
		q.P50 = snapshotQuantile(h, 0.50)
		q.P95 = snapshotQuantile(h, 0.95)
		q.P99 = snapshotQuantile(h, 0.99)
		out[k] = q
	}
	return out
}

// snapshotQuantile computes the approximate q-quantile from a snapshot's
// non-empty bucket list, mirroring Histogram.Quantile's representative-value
// semantics.
func snapshotQuantile(h HistogramSnapshot, q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			// UpperBound is 2^(i-histBias); the representative is the
			// geometric midpoint, except the zero bucket which reports 0.
			if b.UpperBound <= math.Exp2(float64(-histBias)) {
				return 0
			}
			return b.UpperBound * math.Sqrt2 / 2
		}
	}
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].UpperBound * math.Sqrt2 / 2
	}
	return 0
}

// Samples copies the ring, oldest first (nil on a nil or empty recorder).
func (t *TimeSeries) Samples() []TSSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.size == 0 {
		return nil
	}
	out := make([]TSSample, 0, t.size)
	start := t.next - t.size
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.size; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// MarshalJSON renders the recorder as the /timeseriesz payload: capacity,
// live sample count, and the samples oldest-first. Safe on nil (renders an
// empty payload).
func (t *TimeSeries) MarshalJSON() ([]byte, error) {
	payload := struct {
		Capacity int        `json:"capacity"`
		Samples  []TSSample `json:"samples"`
	}{Samples: []TSSample{}}
	if t != nil {
		payload.Capacity = len(t.ring)
		if s := t.Samples(); s != nil {
			payload.Samples = s
		}
	}
	return json.Marshal(payload)
}

// Start launches a background ticker sampling every interval until Stop.
// Returns a stop function (safe to call more than once); on a nil recorder
// the stop function is a no-op.
func (t *TimeSeries) Start(interval time.Duration) (stop func()) {
	if t == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		t.Tick(time.Now())
		for {
			select {
			case now := <-tick.C:
				t.Tick(now)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
