package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("z")
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram accumulated")
	}
	r.GaugeFunc("f", func() int64 { return 1 })
	sp := r.StartSpan("root")
	child := sp.Child("phase")
	child.End()
	sp.End()
	r.SetTraceWriter(nil)
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Errorf("nil WriteTo = (%d, %v)", n, err)
	}
}

func TestNilRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.5)
		sp := r.StartSpan("s")
		sp.Child("c").End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op", allocs)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("hits") != c {
		t.Error("counter handle not stable")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations, 10 slow ones: p50 ~ 1ms, p95+ ~ 1s.
	for i := 0; i < 90; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 10.0 || got > 10.2 {
		t.Errorf("sum = %v", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Errorf("p50 = %v, want ~0.001", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.5 || p99 > 2 {
		t.Errorf("p99 = %v, want ~1", p99)
	}
	if h.Quantile(0) == 0 && h.Count() > 0 {
		// q=0 clamps to the first observation's bucket, not zero.
		t.Error("q=0 returned 0 with observations present")
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	h := NewRegistry().Histogram("edge")
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1e300) // clamps to last bucket
	h.Observe(1e-300)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	// Must not panic and quantiles must be finite.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		v := h.Quantile(q)
		if v < 0 {
			t.Errorf("quantile(%v) = %v", q, v)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 4000 {
		t.Errorf("sum = %v", got)
	}
}

func TestWriteToSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(7)
	r.Gauge("b.depth").Set(3)
	r.GaugeFunc("b.live", func() int64 { return 42 })
	r.Histogram("c.lat").Observe(0.25)
	sp := r.StartSpan("advisor")
	sp.Child("rank").End()
	sp.End()

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"counter a.hits", "7",
		"gauge   b.depth", "gauge   b.live", "42",
		"hist    c.lat", "count=1",
		"span    advisor ", "span    advisor/rank",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestSpanTraceJSON(t *testing.T) {
	r := NewRegistry()
	var buf TraceBuffer
	r.SetTraceWriter(&buf)
	root := r.StartSpan("advisor")
	child := root.Child("generate")
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d: %q", len(lines), buf.String())
	}
	type rec struct {
		Name    string  `json:"name"`
		ID      uint64  `json:"id"`
		Parent  uint64  `json:"parent"`
		StartUS int64   `json:"start_us"`
		DurUS   float64 `json:"dur_us"`
	}
	var childRec, rootRec rec
	if err := json.Unmarshal([]byte(lines[0]), &childRec); err != nil {
		t.Fatalf("child line not JSON: %v (%s)", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &rootRec); err != nil {
		t.Fatalf("root line not JSON: %v (%s)", err, lines[1])
	}
	if childRec.Name != "advisor/generate" || rootRec.Name != "advisor" {
		t.Errorf("names = %q, %q", childRec.Name, rootRec.Name)
	}
	if childRec.Parent != rootRec.ID {
		t.Errorf("child.parent = %d, root.id = %d", childRec.Parent, rootRec.ID)
	}
	if childRec.DurUS < 0 || rootRec.DurUS < childRec.DurUS {
		t.Errorf("durations inconsistent: root %v < child %v", rootRec.DurUS, childRec.DurUS)
	}
}

// TestTraceBufferRotation drives the byte-capped trace sink across the
// rotation boundary: the write that pushes the buffer over the limit must
// evict whole oldest lines (never partial ones), and a single line larger
// than the limit is truncated with a visible marker so the cap stays a hard
// bound without silently discarding the span.
func TestTraceBufferRotation(t *testing.T) {
	line := func(i int) string { return fmt.Sprintf("{\"id\":%03d}\n", i) } // fixed 11 bytes
	tb := NewTraceBuffer(3 * len(line(0)))

	// Exactly at the limit: nothing dropped.
	for i := 0; i < 3; i++ {
		tb.Write([]byte(line(i)))
	}
	if tb.Dropped() != 0 || tb.Len() != 3*len(line(0)) {
		t.Fatalf("at boundary: dropped=%d len=%d", tb.Dropped(), tb.Len())
	}
	// One byte over: exactly one whole oldest line goes.
	tb.Write([]byte(line(3)))
	if tb.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tb.Dropped())
	}
	if got, want := tb.String(), line(1)+line(2)+line(3); got != want {
		t.Fatalf("after rotation:\n got %q\nwant %q", got, want)
	}

	// A burst lands and only the newest lines survive.
	for i := 4; i < 20; i++ {
		tb.Write([]byte(line(i)))
	}
	if got, want := tb.String(), line(17)+line(18)+line(19); got != want {
		t.Fatalf("after burst:\n got %q\nwant %q", got, want)
	}

	// An oversized single line cannot wedge the buffer above the cap: it is
	// truncated in place and flagged with the marker.
	huge := strings.Repeat("x", 4*len(line(0))) // no trailing newline yet
	tb.Write([]byte(huge))
	if tb.Len() > 3*len(line(0)) {
		t.Fatalf("oversized line wedged buffer above cap: len=%d", tb.Len())
	}
	if got := tb.String(); !strings.HasSuffix(got, traceTruncMarker) || !strings.HasPrefix(got, "xxx") {
		t.Fatalf("oversized line not truncated-with-marker: %q", got)
	}

	// Shrinking the limit evicts immediately.
	tb2 := &TraceBuffer{} // zero value: unbounded
	for i := 0; i < 5; i++ {
		tb2.Write([]byte(line(i)))
	}
	tb2.SetLimit(2 * len(line(0)))
	if got, want := tb2.String(), line(3)+line(4); got != want {
		t.Fatalf("after SetLimit:\n got %q\nwant %q", got, want)
	}
}

// TestHistogramSnapshotBuckets pins the bucket export the Prometheus
// endpoint renders: non-empty buckets only, ascending power-of-two upper
// bounds, counts matching the observations.
func TestHistogramSnapshotBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0.75) // bucket upper bound 1
	h.Observe(0.75)
	h.Observe(3) // bucket upper bound 4
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Sum != 4.5 {
		t.Fatalf("count=%d sum=%v", snap.Count, snap.Sum)
	}
	if len(snap.Buckets) != 2 {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	if snap.Buckets[0].UpperBound != 1 || snap.Buckets[0].Count != 2 {
		t.Errorf("bucket[0] = %+v", snap.Buckets[0])
	}
	if snap.Buckets[1].UpperBound != 4 || snap.Buckets[1].Count != 1 {
		t.Errorf("bucket[1] = %+v", snap.Buckets[1])
	}
	var nilH *Histogram
	if s := nilH.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

// TestTraceBufferTruncateMarker is the regression for single-line rotation:
// a complete line (trailing newline present) that alone exceeds the limit
// must be truncated with the marker, not kept verbatim and not silently
// dropped — and a limit smaller than the marker still holds as a hard cap.
func TestTraceBufferTruncateMarker(t *testing.T) {
	tb := NewTraceBuffer(24)
	before := tb.Dropped()
	tb.Write([]byte(strings.Repeat("y", 40) + "\n")) // one complete oversized line
	if tb.Dropped() != before+1 {
		t.Fatalf("dropped = %d, want %d", tb.Dropped(), before+1)
	}
	if tb.Len() > 24 {
		t.Fatalf("cap violated: len=%d", tb.Len())
	}
	got := tb.String()
	if !strings.HasSuffix(got, traceTruncMarker) {
		t.Fatalf("missing marker: %q", got)
	}
	if !strings.HasPrefix(got, "yyy") {
		t.Fatalf("head of line not preserved: %q", got)
	}

	// Writes after a truncation start cleanly on a new line.
	tb.Write([]byte("{\"id\":1}\n"))
	lines := strings.Split(strings.TrimSuffix(tb.String(), "\n"), "\n")
	if last := lines[len(lines)-1]; last != "{\"id\":1}" {
		t.Fatalf("post-truncation line corrupted: %q (buffer %q)", last, tb.String())
	}

	// Limit below the marker size: still a hard bound.
	tiny := NewTraceBuffer(5)
	tiny.Write([]byte(strings.Repeat("z", 30) + "\n"))
	if tiny.Len() > 5 {
		t.Fatalf("tiny cap violated: len=%d", tiny.Len())
	}
}

// TestSpanAnnotate pins the trace-line annotation format the flight recorder
// relies on: key/value pairs appended to the span JSON, absent when no
// annotations were made, and nil-safe.
func TestSpanAnnotate(t *testing.T) {
	r := NewRegistry()
	var buf TraceBuffer
	r.SetTraceWriter(&buf)

	r.StartSpan("server/stmt").
		Annotate("session", "lg-0001").
		Annotate("seq", "42").
		Annotate("trace", "t-0001-0-3").
		End()
	r.StartSpan("plain").End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d: %q", len(lines), buf.String())
	}
	var annotated map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &annotated); err != nil {
		t.Fatalf("annotated line not JSON: %v (%s)", err, lines[0])
	}
	if annotated["session"] != "lg-0001" || annotated["seq"] != "42" || annotated["trace"] != "t-0001-0-3" {
		t.Errorf("annotations = %v", annotated)
	}
	var plain map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &plain); err != nil {
		t.Fatalf("plain line not JSON: %v (%s)", err, lines[1])
	}
	if _, ok := plain["session"]; ok {
		t.Errorf("unannotated span leaked attrs: %v", plain)
	}

	var nilSpan *Span
	if nilSpan.Annotate("k", "v") != nil {
		t.Error("nil span Annotate should return nil")
	}
}

// TestHistogramEdgeBucketQuantiles pins quantile semantics at the bucket
// extremes before /timeseriesz starts publishing them: the zero bucket
// reports 0, the overflow (96th) bucket reports its geometric midpoint, and
// a single observation pins every percentile to its bucket representative.
func TestHistogramEdgeBucketQuantiles(t *testing.T) {
	// Bucket 0: zero, negative, NaN and sub-range observations all land in
	// bucket 0, whose representative is exactly 0 at every percentile.
	h0 := &Histogram{}
	h0.Observe(0)
	h0.Observe(-3)
	h0.Observe(math.NaN())
	h0.Observe(1e-15) // below the bucket range floor
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got := h0.Quantile(q); got != 0 {
			t.Errorf("bucket-0 Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Overflow bucket: observations past the top of the range clamp into the
	// last (96th) bucket; its representative is the geometric midpoint of
	// [2^54, 2^55).
	hTop := &Histogram{}
	hTop.Observe(1e30)
	hTop.Observe(math.MaxFloat64)
	wantTop := math.Exp2(float64(histBuckets-1-histBias)) * math.Sqrt2 / 2
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got := hTop.Quantile(q); got != wantTop {
			t.Errorf("overflow Quantile(%v) = %v, want %v", q, got, wantTop)
		}
	}
	if snap := hTop.Snapshot(); len(snap.Buckets) != 1 ||
		snap.Buckets[0].UpperBound != math.Exp2(float64(histBuckets-1-histBias)) {
		t.Errorf("overflow snapshot = %+v", hTop.Snapshot())
	}

	// Single observation: p50 = p95 = p99 = the one bucket's representative.
	h1 := &Histogram{}
	h1.Observe(0.75)
	want := math.Sqrt2 / 2 // geometric midpoint of [0.5, 1)
	for _, q := range []float64{0.50, 0.95, 0.99} {
		if got := h1.Quantile(q); got != want {
			t.Errorf("single-obs Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if h1.Count() != 1 || h1.Sum() != 0.75 {
		t.Errorf("count=%d sum=%v", h1.Count(), h1.Sum())
	}
}
