package obs

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one timed phase of the pipeline. Spans nest: Child spans extend
// the parent's slash-separated name (advisor → advisor/rank →
// advisor/rank/gains), so the registry's span histograms form the phase
// hierarchy directly and the JSON trace can be folded into a flame graph.
//
// A nil *Span (from a nil registry) is the disabled state: Child returns
// nil and End is a no-op, so instrumented code never branches on "is
// tracing on" — it just calls through.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []spanAttr
}

// spanAttr is one key/value annotation carried on the span's trace line.
type spanAttr struct {
	key, val string
}

// StartSpan opens a root span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, id: r.spanSeq.Add(1), start: time.Now()}
}

// ID returns the span's registry-unique identifier (0 on nil). The audit
// journal stores it on every decision record so a journal line can be joined
// against the JSON trace (-trace-out) of the phase that produced it.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a nested span under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		reg:    s.reg,
		name:   s.name + "/" + name,
		id:     s.reg.spanSeq.Add(1),
		parent: s.id,
		start:  time.Now(),
	}
}

// Annotate attaches a key/value pair to the span's trace line — the flight
// recorder uses it to stamp per-statement spans with (session, seq, trace)
// so a journal or slow-log entry can be joined back to the exact span.
// Annotations are emit-only: they never affect the span histogram. Returns
// the span for chaining; no-op on nil.
func (s *Span) Annotate(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, spanAttr{key: key, val: value})
	return s
}

// End closes the span: its duration lands in the registry's span histogram
// for the name, and — when a trace writer is attached — one JSON line is
// emitted for offline flame-graph analysis. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.spanHist(s.name).Observe(d.Seconds())
	s.reg.emitTrace(s, d)
}

// SetTraceWriter attaches a JSON-lines trace sink (the -trace-out file).
// Pass nil to detach. Span names are code-controlled identifiers
// ([a-z0-9_./-]), so lines are built with Fprintf rather than a JSON
// encoder; unexpected characters are escaped defensively. No-op on a nil
// registry.
func (r *Registry) SetTraceWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.traceMu.Lock()
	r.trace = w
	r.traceMu.Unlock()
}

// emitTrace writes one span record: name, ids, start (unix microseconds)
// and duration (microseconds).
func (r *Registry) emitTrace(s *Span, d time.Duration) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.trace == nil {
		return
	}
	// The line is built up front and handed to the sink in one Write:
	// bounded sinks (TraceBuffer) evict on line boundaries, so a span must
	// never arrive split across writes.
	line := fmt.Appendf(nil, `{"name":%q,"id":%d,"parent":%d,"start_us":%d,"dur_us":%.1f`,
		s.name, s.id, s.parent, s.start.UnixMicro(), float64(d.Nanoseconds())/1e3)
	for _, a := range s.attrs {
		line = fmt.Appendf(line, `,%q:%q`, a.key, a.val)
	}
	line = append(line, '}', '\n')
	r.trace.Write(line)
}

// TraceBuffer is a minimal in-memory trace sink for tests and for callers
// that want to post-process spans without a file. The zero value buffers
// without bound; long-lived sinks (a continuous-tuning loop with tracing
// attached) should set a byte limit so the buffer cannot grow memory
// unboundedly — once over the limit, whole oldest lines are dropped first.
type TraceBuffer struct {
	mu      sync.Mutex
	limit   int
	buf     []byte
	dropped int64
}

// NewTraceBuffer returns a trace sink capped at limitBytes (0 = unbounded,
// equivalent to the zero value).
func NewTraceBuffer(limitBytes int) *TraceBuffer {
	return &TraceBuffer{limit: limitBytes}
}

// SetLimit changes the byte cap (0 = unbounded) and immediately evicts
// oldest lines if the buffered content already exceeds it.
func (t *TraceBuffer) SetLimit(limitBytes int) {
	t.mu.Lock()
	t.limit = limitBytes
	t.evictLocked()
	t.mu.Unlock()
}

// Write implements io.Writer.
func (t *TraceBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	t.evictLocked()
	return len(p), nil
}

// traceTruncMarker replaces the tail of a span line that alone exceeds the
// buffer limit. Consumers treat any line ending in the marker as damaged.
const traceTruncMarker = "...truncated\n"

// evictLocked drops whole lines from the front until the buffer fits the
// limit. When the buffer is down to a single line that still exceeds the
// limit, the line is truncated in place with traceTruncMarker appended —
// the cap is a hard memory bound, and the marker makes the damage visible
// instead of silently discarding the span.
func (t *TraceBuffer) evictLocked() {
	if t.limit <= 0 {
		return
	}
	for len(t.buf) > t.limit {
		nl := bytes.IndexByte(t.buf, '\n')
		if nl < 0 || nl == len(t.buf)-1 {
			// One line left (complete or still being appended to) and it is
			// over the limit by itself: truncate with marker.
			t.dropped++
			keep := t.limit - len(traceTruncMarker)
			if keep < 0 {
				keep = 0
			}
			t.buf = append(t.buf[:keep], traceTruncMarker...)
			if len(t.buf) > t.limit {
				t.buf = t.buf[:t.limit]
			}
			return
		}
		t.buf = t.buf[nl+1:]
		t.dropped++
	}
}

// Dropped returns how many lines rotation has discarded.
func (t *TraceBuffer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the buffered byte count.
func (t *TraceBuffer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// String returns the buffered JSON lines.
func (t *TraceBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
