package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of the pipeline. Spans nest: Child spans extend
// the parent's slash-separated name (advisor → advisor/rank →
// advisor/rank/gains), so the registry's span histograms form the phase
// hierarchy directly and the JSON trace can be folded into a flame graph.
//
// A nil *Span (from a nil registry) is the disabled state: Child returns
// nil and End is a no-op, so instrumented code never branches on "is
// tracing on" — it just calls through.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time
}

// StartSpan opens a root span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, id: r.spanSeq.Add(1), start: time.Now()}
}

// Child opens a nested span under s. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		reg:    s.reg,
		name:   s.name + "/" + name,
		id:     s.reg.spanSeq.Add(1),
		parent: s.id,
		start:  time.Now(),
	}
}

// End closes the span: its duration lands in the registry's span histogram
// for the name, and — when a trace writer is attached — one JSON line is
// emitted for offline flame-graph analysis. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.spanHist(s.name).Observe(d.Seconds())
	s.reg.emitTrace(s, d)
}

// SetTraceWriter attaches a JSON-lines trace sink (the -trace-out file).
// Pass nil to detach. Span names are code-controlled identifiers
// ([a-z0-9_./-]), so lines are built with Fprintf rather than a JSON
// encoder; unexpected characters are escaped defensively. No-op on a nil
// registry.
func (r *Registry) SetTraceWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.traceMu.Lock()
	r.trace = w
	r.traceMu.Unlock()
}

// emitTrace writes one span record: name, ids, start (unix microseconds)
// and duration (microseconds).
func (r *Registry) emitTrace(s *Span, d time.Duration) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.trace == nil {
		return
	}
	fmt.Fprintf(r.trace, `{"name":%q,"id":%d,"parent":%d,"start_us":%d,"dur_us":%.1f}`+"\n",
		s.name, s.id, s.parent, s.start.UnixMicro(), float64(d.Nanoseconds())/1e3)
}

// TraceBuffer is a minimal in-memory trace sink for tests and for callers
// that want to post-process spans without a file.
type TraceBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

// Write implements io.Writer.
func (t *TraceBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.Write(p)
}

// String returns the buffered JSON lines.
func (t *TraceBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.String()
}
