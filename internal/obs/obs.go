// Package obs is the advisor pipeline's observability layer: a
// dependency-free metrics registry (atomic counters, gauges, bounded
// histograms with approximate percentiles) plus a lightweight span API for
// phase timings (span.go). The paper pitches AIM as *auditable* automation —
// §VII's no-regression machinery only earns trust when operators can see
// what the advisor did and why; this package is the substrate the
// explanations and fleet-stats pipeline export through.
//
// Design rules:
//
//   - Nil is off. Every method is safe on a nil *Registry, nil *Counter,
//     nil *Gauge, nil *Histogram and nil *Span, and the disabled path does
//     zero allocation — instrumented components resolve metric handles once
//     at attach time (SetObs) and pay a single nil check per event when
//     observability is off.
//   - Metrics never influence behaviour. Instrumentation records what
//     happened; the golden determinism tests assert recommendations are
//     byte-identical with the registry attached and detached.
//   - Naming convention: "<package>.<metric>" in snake case
//     (optimizer.whatif_seconds, costcache.entries, pool.queue_depth);
//     span names are slash-separated phase paths (advisor/rank/gains).
//     Cross-cutting families may use a domain prefix instead of a package
//     name: the fault-injection counters are faults.{injected,retries,
//     degraded} (emitted by internal/failpoint) because they aggregate
//     events from every instrumented call site, not one package's.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (queue depths,
// live cache entries, active workers).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative deltas allowed). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge reading (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets and percentile coverage. Buckets are base-2
// exponential: bucket i covers [2^(i-histBias-1), 2^(i-histBias)), spanning
// ~1e-12 (sub-nanosecond timings in seconds) to ~3.6e16 (large counts) —
// every observation in the pipeline lands inside the range.
const (
	histBuckets = 96
	histBias    = 40
)

// Histogram is a bounded, lock-free histogram over float64 observations.
// Memory is fixed (histBuckets atomic slots); percentiles are approximate
// (bucket-resolution, ~±41% worst case at base-2 buckets) which is plenty
// for latency-distribution shape and p50/p95/p99 reporting.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps an observation to its bucket ordinal.
func bucketFor(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	i := exp + histBias
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketRep is the representative value reported for a bucket: the
// geometric midpoint of its bounds.
func bucketRep(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Exp2(float64(i-histBias)) * math.Sqrt2 / 2
}

// Observe records one value. No-op on a nil histogram; never allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// BucketCount is one non-empty histogram bucket in a snapshot: the count of
// observations that fell inside (UpperBound's bucket, non-cumulative).
type BucketCount struct {
	// UpperBound is the bucket's exclusive upper bound (2^(i-histBias)).
	UpperBound float64
	Count      int64
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, used by
// exporters that need the full bucket distribution rather than fixed
// percentiles (the /metricsz Prometheus endpoint).
type HistogramSnapshot struct {
	Count   int64
	Sum     float64
	Buckets []BucketCount // non-empty buckets only, ascending bound
}

// Snapshot copies the histogram's current state. Zero-value on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out.Buckets = append(out.Buckets, BucketCount{
				UpperBound: math.Exp2(float64(i - histBias)),
				Count:      n,
			})
		}
	}
	return out
}

// Quantile returns the approximate q-quantile (q in [0, 1]); 0 on nil or
// with no observations. The answer is the representative value of the
// bucket containing the rank-q observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketRep(i)
		}
	}
	return bucketRep(histBuckets - 1)
}

// Registry holds named metrics and the span/trace machinery. A nil
// *Registry is the disabled state: every accessor returns nil handles and
// every operation is a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram
	spans      map[string]*Histogram

	spanSeq atomic.Uint64
	traceMu sync.Mutex
	trace   io.Writer
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		hists:      map[string]*Histogram{},
		spans:      map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time — for values
// that are cheaper to read on demand than to maintain (live LRU entry
// counts, pool sizes). Re-registering a name replaces the callback. No-op
// on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// spanHist returns the duration histogram for a span name.
func (r *Registry) spanHist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.spans[name]
	if !ok {
		h = &Histogram{}
		r.spans[name] = h
	}
	return h
}

// snapshotKeys returns the sorted key set of a map under the registry lock.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot is a point-in-time copy of every metric in a registry. It is the
// exporter-facing view: the /metricsz Prometheus renderer and the /statusz
// JSON endpoint read snapshots instead of holding the registry lock while
// formatting. GaugeFunc callbacks are evaluated (outside the registry lock)
// and folded into Gauges.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
	Spans      map[string]HistogramSnapshot
}

// Snapshot captures the registry's current state. Returns an empty (but
// non-nil-map) snapshot on a nil registry so exporters need no nil checks.
func (r *Registry) Snapshot() *Snapshot {
	out := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string]HistogramSnapshot{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	for k, c := range r.counters {
		out.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		out.Gauges[k] = g.Value()
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		funcs[k] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	spans := make(map[string]*Histogram, len(r.spans))
	for k, h := range r.spans {
		spans[k] = h
	}
	r.mu.Unlock()
	// Callbacks and histogram copies run outside the lock: GaugeFunc
	// callbacks may take other components' locks (cache shards), and bucket
	// copies are O(histBuckets) each.
	for k, fn := range funcs {
		out.Gauges[k] = fn()
	}
	for k, h := range hists {
		out.Histograms[k] = h.Snapshot()
	}
	for k, h := range spans {
		out.Spans[k] = h.Snapshot()
	}
	return out
}

// WriteTo renders an expvar-style text snapshot of every metric, sorted by
// kind then name — the -metrics output of aimctl/aimbench. Histograms and
// spans report count, sum and approximate p50/p95/p99. Implements
// io.WriterTo; a nil registry writes nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		funcs[k] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	spans := make(map[string]*Histogram, len(r.spans))
	for k, h := range r.spans {
		spans[k] = h
	}
	r.mu.Unlock()

	// GaugeFunc callbacks run outside the lock: they may read other
	// components (cache shard locks) and must not deadlock with them.
	for k, fn := range funcs {
		gauges[k] = fn()
	}

	var n int64
	emit := func(format string, args ...any) error {
		m, err := fmt.Fprintf(w, format, args...)
		n += int64(m)
		return err
	}
	for _, k := range sortedKeys(counters) {
		if err := emit("counter %-40s %d\n", k, counters[k]); err != nil {
			return n, err
		}
	}
	for _, k := range sortedKeys(gauges) {
		if err := emit("gauge   %-40s %d\n", k, gauges[k]); err != nil {
			return n, err
		}
	}
	histLine := func(kind, k string, h *Histogram) error {
		return emit("%s %-40s count=%d sum=%.6g p50=%.3g p95=%.3g p99=%.3g\n",
			kind, k, h.Count(), h.Sum(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	for _, k := range sortedKeys(hists) {
		if err := histLine("hist   ", k, hists[k]); err != nil {
			return n, err
		}
	}
	for _, k := range sortedKeys(spans) {
		if err := histLine("span   ", k, spans[k]); err != nil {
			return n, err
		}
	}
	return n, nil
}
