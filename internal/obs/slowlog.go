package obs

import (
	"sync"
	"time"
)

// SlowEntry is one captured statement in the slow-query log: identity
// (session, per-session sequence, wire-propagated trace ID), the raw SQL,
// the plan shape the optimizer chose, the executor's per-operator counters,
// and the observed wall latency. Slow marks an over-threshold capture;
// false means the entry is one of the deterministic 1-in-N samples that
// keep the log representative of the whole stream, not just its tail.
type SlowEntry struct {
	TSUS    int64  `json:"ts_us"`
	Session string `json:"session,omitempty"`
	Seq     uint64 `json:"seq,omitempty"`
	Trace   string `json:"trace,omitempty"`
	SQL     string `json:"sql"`
	// Plan is the optimizer's plan description (one line per step).
	Plan []string `json:"plan,omitempty"`
	// Operator counters, copied from the executor's Stats for the statement.
	RowsRead    int64 `json:"rows_read,omitempty"`
	RowsSent    int64 `json:"rows_sent,omitempty"`
	PageReads   int64 `json:"page_reads,omitempty"`
	SortRows    int64 `json:"sort_rows,omitempty"`
	RowsWritten int64 `json:"rows_written,omitempty"`
	IndexWrites int64 `json:"index_writes,omitempty"`
	// CPUSeconds is the modelled CPU cost; LatencySeconds the wall clock
	// observed at the server (gate waits included — that is what the client
	// experienced).
	CPUSeconds     float64 `json:"cpu_seconds,omitempty"`
	LatencySeconds float64 `json:"latency_seconds"`
	Slow           bool    `json:"slow"`
}

// SlowLog is a bounded ring of captured statements: everything at or over
// the latency threshold, plus a deterministic 1-in-N sample of the rest so
// the log shows the shape of normal traffic next to its outliers. The ring
// overwrites oldest entries; memory is fixed at capacity. Nil is off: every
// method on a nil *SlowLog is a no-op costing one nil check, and a disabled
// log allocates nothing per statement.
//
// Sampling determinism contract: the k-th non-slow statement observed
// (1-based, in Observe call order) is captured iff (k-1) % sampleN == 0.
// For a serialized stream the captured set is a pure function of the stream;
// under concurrent sessions the arrival order — and therefore which
// statements land in the sample — depends on interleaving, but the 1-in-N
// rate does not. Capture never feeds back into execution.
type SlowLog struct {
	threshold time.Duration
	sampleN   int

	mu   sync.Mutex
	ring []SlowEntry
	next int   // ring write cursor
	size int   // live entries (≤ len(ring))
	seen int64 // non-slow statements observed (sampling clock)

	observed *Counter // slowlog.observed — statements offered
	slow     *Counter // slowlog.slow — over-threshold captures
	sampled  *Counter // slowlog.sampled — 1-in-N captures
	evicted  *Counter // slowlog.evicted — ring overwrites
}

// NewSlowLog returns a slow-query log keeping up to capacity entries,
// capturing statements with latency >= threshold, and sampling one in
// sampleN of the rest (0 disables sampling). capacity <= 0 defaults to 256.
func NewSlowLog(capacity int, threshold time.Duration, sampleN int) *SlowLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &SlowLog{
		threshold: threshold,
		sampleN:   sampleN,
		ring:      make([]SlowEntry, capacity),
	}
}

// Instrument attaches the slowlog.* counters to r (nil detaches).
func (l *SlowLog) Instrument(r *Registry) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r == nil {
		l.observed, l.slow, l.sampled, l.evicted = nil, nil, nil, nil
		return
	}
	l.observed = r.Counter("slowlog.observed")
	l.slow = r.Counter("slowlog.slow")
	l.sampled = r.Counter("slowlog.sampled")
	l.evicted = r.Counter("slowlog.evicted")
}

// Threshold returns the capture threshold (0 on nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// SampleN returns the 1-in-N sampling divisor (0 on nil or disabled).
func (l *SlowLog) SampleN() int {
	if l == nil {
		return 0
	}
	return l.sampleN
}

// Observe offers one executed statement. The entry is captured when its
// latency reaches the threshold or when it is the next 1-in-N sample;
// otherwise it is discarded. e.Slow and e.LatencySeconds are set from
// latency. No-op on a nil log.
func (l *SlowLog) Observe(e SlowEntry, latency time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed.Inc()
	e.LatencySeconds = latency.Seconds()
	switch {
	case l.threshold > 0 && latency >= l.threshold:
		e.Slow = true
		l.slow.Inc()
	case l.sampleN > 0:
		k := l.seen
		l.seen++
		if k%int64(l.sampleN) != 0 {
			return
		}
		e.Slow = false
		l.sampled.Inc()
	default:
		return
	}
	if l.size == len(l.ring) {
		l.evicted.Inc()
	} else {
		l.size++
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
}

// Snapshot copies the captured entries, oldest first. Nil on a nil or empty
// log.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size == 0 {
		return nil
	}
	out := make([]SlowEntry, 0, l.size)
	start := l.next - l.size
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.size; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// Len returns the number of captured entries held (0 on nil).
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}
