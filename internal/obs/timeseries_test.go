package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestTimeSeriesRates drives two ticks and checks counter deltas turn into
// per-second rates, gauges snapshot instantaneously, and the first tick
// carries no rates.
func TestTimeSeriesRates(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, 8)
	t0 := time.UnixMicro(1_000_000)

	reg.Counter("server.statements").Add(100)
	reg.Gauge("server.active_conns").Set(3)
	ts.Tick(t0)

	reg.Counter("server.statements").Add(50)
	reg.Gauge("server.active_conns").Set(7)
	ts.Tick(t0.Add(2 * time.Second))

	samples := ts.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	first, second := samples[0], samples[1]
	if first.Rates != nil || first.IntervalSeconds != 0 {
		t.Errorf("first tick has rates: %+v", first)
	}
	if first.Counters["server.statements"] != 100 || first.Gauges["server.active_conns"] != 3 {
		t.Errorf("first sample = %+v", first)
	}
	if second.IntervalSeconds != 2 {
		t.Errorf("interval = %v", second.IntervalSeconds)
	}
	if got := second.Rates["server.statements"]; got != 25 { // 50 over 2s
		t.Errorf("rate = %v, want 25", got)
	}
	if second.Counters["server.statements"] != 150 || second.Gauges["server.active_conns"] != 7 {
		t.Errorf("second sample = %+v", second)
	}
}

// TestTimeSeriesHistogramDeltas checks histogram and span families report
// per-interval count/sum movement plus current quantiles.
func TestTimeSeriesHistogramDeltas(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, 8)
	t0 := time.UnixMicro(0)

	reg.Histogram("exec.latency").Observe(0.75)
	ts.Tick(t0)
	reg.Histogram("exec.latency").Observe(0.75)
	reg.Histogram("exec.latency").Observe(0.75)
	sp := reg.StartSpan("cycle")
	sp.End()
	ts.Tick(t0.Add(time.Second))

	samples := ts.Samples()
	h1 := samples[0].Histograms["exec.latency"]
	if h1.CountDelta != 1 || h1.SumDelta != 0.75 {
		t.Errorf("first hist delta = %+v", h1)
	}
	h2 := samples[1].Histograms["exec.latency"]
	if h2.CountDelta != 2 || h2.SumDelta != 1.5 {
		t.Errorf("second hist delta = %+v", h2)
	}
	want := math.Sqrt2 / 2 // all observations in the [0.5,1) bucket
	if h2.P50 != want || h2.P95 != want || h2.P99 != want {
		t.Errorf("quantiles = %+v, want %v", h2, want)
	}
	if s, ok := samples[1].Spans["cycle"]; !ok || s.CountDelta != 1 {
		t.Errorf("span family = %+v", samples[1].Spans)
	}
}

// TestTimeSeriesRingWrap fills past capacity: oldest samples fall off,
// newest survive in order.
func TestTimeSeriesRingWrap(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, 3)
	base := time.UnixMicro(0)
	for i := 0; i < 7; i++ {
		reg.Counter("c").Inc()
		ts.Tick(base.Add(time.Duration(i) * time.Second))
	}
	samples := ts.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i, s := range samples {
		if want := int64(5 + i); s.Counters["c"] != want {
			t.Fatalf("samples[%d] counter = %d, want %d", i, s.Counters["c"], want)
		}
	}
}

// TestTimeSeriesJSON pins the /timeseriesz payload shape: capacity plus
// oldest-first samples, and an empty-but-valid document from a nil or
// unticked recorder.
func TestTimeSeriesJSON(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, 4)
	reg.Counter("c").Inc()
	ts.Tick(time.UnixMicro(42))

	raw, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int        `json:"capacity"`
		Samples  []TSSample `json:"samples"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("payload not JSON: %v (%s)", err, raw)
	}
	if doc.Capacity != 4 || len(doc.Samples) != 1 || doc.Samples[0].TSUS != 42 {
		t.Errorf("payload = %+v", doc)
	}

	// Direct MarshalJSON on a nil recorder (the /timeseriesz handler path
	// when time-series sampling is off) renders an empty-but-valid payload.
	var nilTS *TimeSeries
	raw, err = nilTS.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Capacity != 0 || len(doc.Samples) != 0 {
		t.Errorf("nil recorder payload = %s (err %v)", raw, err)
	}
}

// TestTimeSeriesNilSafe: nil registry → nil recorder; every method inert.
func TestTimeSeriesNilSafe(t *testing.T) {
	ts := NewTimeSeries(nil, 8)
	if ts != nil {
		t.Fatal("nil registry should yield nil recorder")
	}
	ts.Tick(time.Now())
	if ts.Samples() != nil {
		t.Error("nil recorder returned samples")
	}
	stop := ts.Start(time.Second)
	stop()
	stop()
}

// TestTimeSeriesStartStop exercises the background ticker: at least the
// immediate first sample lands, and stop is idempotent.
func TestTimeSeriesStartStop(t *testing.T) {
	reg := NewRegistry()
	ts := NewTimeSeries(reg, 8)
	stop := ts.Start(time.Hour) // immediate tick, then effectively never
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(ts.Samples()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sample after Start")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop()
}
