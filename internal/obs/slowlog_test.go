package obs

import (
	"testing"
	"time"
)

// TestSlowLogThreshold pins over-threshold capture: every statement at or
// over the threshold is kept with Slow=true regardless of sampling, and
// everything under it (with sampling off) is discarded.
func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(8, 10*time.Millisecond, 0)
	reg := NewRegistry()
	l.Instrument(reg)

	l.Observe(SlowEntry{SQL: "fast"}, 2*time.Millisecond)
	l.Observe(SlowEntry{SQL: "edge"}, 10*time.Millisecond)
	l.Observe(SlowEntry{SQL: "slow"}, 50*time.Millisecond)

	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("captured = %d, want 2: %+v", len(snap), snap)
	}
	if snap[0].SQL != "edge" || snap[1].SQL != "slow" {
		t.Fatalf("order = %q, %q", snap[0].SQL, snap[1].SQL)
	}
	for _, e := range snap {
		if !e.Slow {
			t.Errorf("%q not marked slow", e.SQL)
		}
	}
	if snap[1].LatencySeconds != 0.05 {
		t.Errorf("latency = %v", snap[1].LatencySeconds)
	}
	s := reg.Snapshot()
	if s.Counters["slowlog.observed"] != 3 || s.Counters["slowlog.slow"] != 2 ||
		s.Counters["slowlog.sampled"] != 0 {
		t.Errorf("counters = %v", s.Counters)
	}
}

// TestSlowLogSamplingDeterminism pins the sampling contract DESIGN.md
// documents: the k-th non-slow statement (1-based, Observe call order) is
// captured iff (k-1) % sampleN == 0. Slow statements do not advance the
// sampling clock.
func TestSlowLogSamplingDeterminism(t *testing.T) {
	l := NewSlowLog(64, 10*time.Millisecond, 4)
	for i := 0; i < 12; i++ {
		l.Observe(SlowEntry{Seq: uint64(i)}, time.Millisecond)
		if i == 5 {
			// A slow capture mid-stream must not perturb which non-slow
			// statements get sampled.
			l.Observe(SlowEntry{Seq: 1000}, time.Second)
		}
	}
	var sampled []uint64
	for _, e := range l.Snapshot() {
		if !e.Slow {
			sampled = append(sampled, e.Seq)
		}
	}
	// Non-slow statements k=1..12 → captured at k=1,5,9 → Seq 0, 4, 8.
	want := []uint64{0, 4, 8}
	if len(sampled) != len(want) {
		t.Fatalf("sampled = %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled = %v, want %v", sampled, want)
		}
	}
	if l.Len() != 4 { // 3 sampled + 1 slow
		t.Errorf("len = %d", l.Len())
	}
}

// TestSlowLogRingEviction fills the ring past capacity and checks the
// oldest entries fall off, with evictions counted.
func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(4, time.Millisecond, 0)
	reg := NewRegistry()
	l.Instrument(reg)
	for i := 0; i < 10; i++ {
		l.Observe(SlowEntry{Seq: uint64(i)}, time.Second)
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(6+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, 6+i)
		}
	}
	if got := reg.Snapshot().Counters["slowlog.evicted"]; got != 6 {
		t.Errorf("evicted = %d, want 6", got)
	}
}

// TestSlowLogNilSafe: a nil log is the disabled state — every method is a
// no-op, matching the package's nil-is-off rule.
func TestSlowLogNilSafe(t *testing.T) {
	var l *SlowLog
	l.Instrument(NewRegistry())
	l.Observe(SlowEntry{SQL: "x"}, time.Second)
	if l.Snapshot() != nil || l.Len() != 0 || l.Threshold() != 0 || l.SampleN() != 0 {
		t.Error("nil SlowLog not inert")
	}
}

// TestSlowLogDefaults pins the constructor defaults the flag plumbing
// relies on.
func TestSlowLogDefaults(t *testing.T) {
	l := NewSlowLog(0, 5*time.Millisecond, 100)
	if len(l.ring) != 256 {
		t.Errorf("default capacity = %d", len(l.ring))
	}
	if l.Threshold() != 5*time.Millisecond || l.SampleN() != 100 {
		t.Errorf("threshold=%v sampleN=%d", l.Threshold(), l.SampleN())
	}
}
