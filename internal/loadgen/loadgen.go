// Package loadgen is a seeded, deterministic client-fleet load generator
// for aimd: N concurrent connections replaying generated statement streams
// over real TCP, in barrier-synchronized rounds. Within a round every
// client issues its statements concurrently (real network interleaving,
// real contention on the server's statement gate); between rounds the
// fleet synchronizes, and optionally one control connection triggers a
// tuning cycle — which is what makes a networked run comparable,
// bit-for-bit, to an offline replay of the same stream.
//
// Determinism contract: the statement stream depends only on (Seed, client
// index, round, position) via Stream; the fleet's scheduling never feeds
// back into generation. Two runs with the same options produce the same
// per-client statement sequences regardless of goroutine or network
// interleaving.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aim/internal/server"
)

// Options shapes the fleet.
type Options struct {
	// Addr is the aimd address to connect to.
	Addr string
	// Clients is the fleet size (concurrent TCP connections).
	Clients int
	// Rounds is the number of barrier-synchronized rounds.
	Rounds int
	// PerRound is statements per client per round.
	PerRound int
	// Seed fixes every client's statement stream.
	Seed int64
	// Sample draws statement i of the given round for one client, from that
	// client's private PRNG. It must not share state across clients.
	Sample func(client, round, i int, r *rand.Rand) string
	// TuneEachRound, when set, triggers one tuning cycle (OpTune) at each
	// round barrier, after every client's statements are answered.
	TuneEachRound bool
	// TraceIDs, when set, sends every statement as a traced query carrying
	// Trace(client, round, i). Against a v1 server the client silently falls
	// back to plain queries, so the option is safe across generations.
	TraceIDs bool
	// OnRound, when set, runs at each round barrier — after every client's
	// statements are answered and after the round's tuning cycle — on the
	// fleet goroutine. Used for periodic sampling (time-series ticks) pinned
	// to round boundaries.
	OnRound func(round int)
	// Timeout bounds each frame round-trip (0 = 30s).
	Timeout time.Duration
}

// Result summarizes a fleet run.
type Result struct {
	// Statements and Rows count successful statements and returned rows
	// across the fleet.
	Statements int64
	Rows       int64
	// Errors collects per-statement failures (remote or transport), in
	// nondeterministic order. A healthy run has none.
	Errors []string
	// Verdicts are the per-round tuning verdict lines (TuneEachRound).
	Verdicts []string
}

// Label returns the deterministic session label of one fleet client. The
// zero-padded index keeps the canonical window sort order equal to client
// index order.
func Label(client int) string { return fmt.Sprintf("lg-%04d", client) }

// Trace returns the deterministic trace ID of statement i of one client's
// round — a pure function of position, so an offline replay of the stream
// can reconstruct the exact IDs a networked fleet sent and journals stay
// byte-comparable.
func Trace(client, round, i int) string {
	return fmt.Sprintf("t-%04d-%d-%d", client, round, i)
}

// Stream precomputes the full fleet statement stream:
// stream[round][client*PerRound+i] is statement i of that client's round,
// i.e. rounds are ordered by client index then issue order — exactly the
// canonical (session, seq) window order the server's collector seals, and
// the order an offline replay must execute.
func Stream(opts Options) [][]string {
	rngs := make([]*rand.Rand, opts.Clients)
	for c := range rngs {
		rngs[c] = rand.New(rand.NewSource(clientSeed(opts.Seed, c)))
	}
	out := make([][]string, opts.Rounds)
	for round := 0; round < opts.Rounds; round++ {
		stmts := make([]string, 0, opts.Clients*opts.PerRound)
		for c := 0; c < opts.Clients; c++ {
			for i := 0; i < opts.PerRound; i++ {
				stmts = append(stmts, opts.Sample(c, round, i, rngs[c]))
			}
		}
		out[round] = stmts
	}
	return out
}

// clientSeed derives one client's PRNG seed via splitmix64 so neighboring
// client indexes get uncorrelated streams.
func clientSeed(seed int64, client int) int64 {
	z := uint64(seed) + uint64(client+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run drives the fleet against a live server. Every client dials once,
// declares its label, and replays its share of Stream(opts) round by
// round; the round barrier holds until every client's statements are
// answered. Connections close before Run returns.
func Run(opts Options) (*Result, error) {
	if opts.Clients <= 0 || opts.Rounds <= 0 || opts.PerRound <= 0 {
		return nil, fmt.Errorf("loadgen: Clients, Rounds and PerRound must be positive: %+v", opts)
	}
	if opts.Sample == nil {
		return nil, fmt.Errorf("loadgen: Sample is required")
	}
	stream := Stream(opts)

	clients := make([]*server.Client, opts.Clients)
	for c := range clients {
		cl, err := server.Dial(opts.Addr, opts.Timeout)
		if err != nil {
			closeAll(clients)
			return nil, err
		}
		clients[c] = cl
		if err := cl.Hello(Label(c)); err != nil {
			closeAll(clients)
			return nil, fmt.Errorf("loadgen: hello %s: %v", Label(c), err)
		}
	}
	defer closeAll(clients)

	var control *server.Client
	if opts.TuneEachRound {
		cl, err := server.Dial(opts.Addr, opts.Timeout)
		if err != nil {
			return nil, err
		}
		control = cl
		defer control.Close()
	}

	res := &Result{}
	var stmts, rows atomic.Int64
	var errMu sync.Mutex
	for round := 0; round < opts.Rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < opts.Clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				base := c * opts.PerRound
				for i := 0; i < opts.PerRound; i++ {
					var r *server.Result
					var err error
					if opts.TraceIDs {
						r, err = clients[c].QueryTraced(Trace(c, round, i), stream[round][base+i])
					} else {
						r, err = clients[c].Query(stream[round][base+i])
					}
					if err != nil {
						errMu.Lock()
						res.Errors = append(res.Errors, fmt.Sprintf("%s r%d#%d: %v", Label(c), round, i, err))
						errMu.Unlock()
						continue
					}
					stmts.Add(1)
					rows.Add(int64(len(r.Rows)))
				}
			}(c)
		}
		wg.Wait()
		if control != nil {
			line, err := control.Tune()
			if err != nil {
				return nil, fmt.Errorf("loadgen: tune after round %d: %v", round, err)
			}
			res.Verdicts = append(res.Verdicts, line)
		}
		if opts.OnRound != nil {
			opts.OnRound(round)
		}
	}
	res.Statements = stmts.Load()
	res.Rows = rows.Load()
	return res, nil
}

func closeAll(clients []*server.Client) {
	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
}
