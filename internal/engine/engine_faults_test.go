package engine

import (
	"errors"
	"testing"

	"aim/internal/catalog"
	"aim/internal/failpoint"
)

// arm activates a fault spec for the duration of the test.
func arm(t *testing.T, spec string) {
	t.Helper()
	fp, err := failpoint.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(fp)
	t.Cleanup(func() { failpoint.Activate(nil) })
}

// TestCreateIndexesRollsBackOnInjectedFault: when injected faults defeat
// every per-index retry, the batch must fail wholesale and leave neither
// schema entries nor materialized trees behind; once the faults clear, the
// identical batch succeeds from the clean state.
func TestCreateIndexesRollsBackOnInjectedFault(t *testing.T) {
	db := newSalesDB(t)
	defs := []*catalog.Index{
		{Name: "ix_cust_city", Table: "customers", Columns: []string{"city"}, CreatedBy: "aim"},
		{Name: "ix_orders_status", Table: "orders", Columns: []string{"status"}, CreatedBy: "aim"},
	}
	arm(t, "engine.create_index=err(1)")
	if _, err := db.CreateIndexes(defs); err == nil {
		t.Fatal("persistent build faults must fail the batch")
	} else if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("error lost the injected cause: %v", err)
	}
	for _, def := range defs {
		if db.Schema.Index(def.Name) != nil {
			t.Errorf("%s leaked into schema", def.Name)
		}
		if db.Store.Table(def.Table).Index(def.Name) != nil {
			t.Errorf("%s leaked into store", def.Name)
		}
	}
	// Faults stop: the same defs build cleanly — nothing half-applied blocks
	// the retry.
	failpoint.Activate(nil)
	if _, err := db.CreateIndexes(defs); err != nil {
		t.Fatal(err)
	}
	for _, def := range defs {
		tbl := db.Store.Table(def.Table)
		mat := tbl.Index(def.Name)
		if mat == nil {
			t.Fatalf("%s not materialized after retry", def.Name)
		}
		if err := mat.Tree().Validate(); err != nil {
			t.Fatalf("%s tree invalid: %v", def.Name, err)
		}
		if mat.Len() != tbl.RowCount() {
			t.Fatalf("%s has %d entries for %d rows", def.Name, mat.Len(), tbl.RowCount())
		}
	}
}

// TestCreateIndexesRetriesTransientFault: the first two build attempts
// fail, the retry succeeds — the batch lands without caller involvement.
func TestCreateIndexesRetriesTransientFault(t *testing.T) {
	db := newSalesDB(t)
	arm(t, "engine.create_index=err()@1-2")
	defs := []*catalog.Index{{Name: "ix_cust_tier", Table: "customers", Columns: []string{"tier"}, CreatedBy: "aim"}}
	if _, err := db.CreateIndexes(defs); err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	if db.Schema.Index("ix_cust_tier") == nil || db.Store.Table("customers").Index("ix_cust_tier") == nil {
		t.Fatal("index missing after successful retry")
	}
}

// TestDropIndexInjectedFault: a drop fault surfaces the error before any
// mutation, so the index stays fully intact and a later drop succeeds.
func TestDropIndexInjectedFault(t *testing.T) {
	db := newSalesDB(t)
	defs := []*catalog.Index{{Name: "ix_orders_day", Table: "orders", Columns: []string{"day"}, CreatedBy: "aim"}}
	if _, err := db.CreateIndexes(defs); err != nil {
		t.Fatal(err)
	}
	arm(t, "engine.drop_index=err(1)")
	if _, err := db.DropIndex("ix_orders_day"); err == nil {
		t.Fatal("injected drop fault not surfaced")
	}
	mat := db.Store.Table("orders").Index("ix_orders_day")
	if db.Schema.Index("ix_orders_day") == nil || mat == nil {
		t.Fatal("failed drop mutated catalog or store")
	}
	if mat.Len() != db.Store.Table("orders").RowCount() {
		t.Fatal("failed drop left a partial index")
	}
	failpoint.Activate(nil)
	if _, err := db.DropIndex("ix_orders_day"); err != nil {
		t.Fatal(err)
	}
	if db.Schema.Index("ix_orders_day") != nil || db.Store.Table("orders").Index("ix_orders_day") != nil {
		t.Fatal("drop after fault clearance did not land")
	}
}
