package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"aim/internal/catalog"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// newSalesDB builds a small e-commerce database used across engine tests.
func newSalesDB(t testing.TB) *DB {
	db := New("sales")
	db.MustExec(`CREATE TABLE customers (id INT, city VARCHAR(16), tier INT, name VARCHAR(32), PRIMARY KEY (id))`)
	db.MustExec(`CREATE TABLE orders (id INT, cust_id INT, status VARCHAR(8), amount FLOAT, day INT, PRIMARY KEY (id))`)
	cities := []string{"sf", "nyc", "la", "chi", "sea"}
	statuses := []string{"new", "paid", "shipped", "done"}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO customers VALUES (%d, '%s', %d, 'cust%d')",
			i, cities[i%len(cities)], i%4, i))
	}
	for i := 0; i < 4000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO orders VALUES (%d, %d, '%s', %.2f, %d)",
			i, r.Intn(200), statuses[r.Intn(4)], r.Float64()*500, r.Intn(365)))
	}
	db.Analyze()
	return db
}

func rowsKey(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(sqltypes.EncodeKey(nil, r...))
	}
	sort.Strings(out)
	return out
}

func sameResults(t *testing.T, a, b []sqltypes.Row) {
	t.Helper()
	ka, kb := rowsKey(a), rowsKey(b)
	if len(ka) != len(kb) {
		t.Fatalf("row counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("rows differ at %d", i)
		}
	}
}

func TestEndToEndSelect(t *testing.T) {
	db := newSalesDB(t)
	res, err := db.Exec("SELECT id, city FROM customers WHERE tier = 2 AND city = 'sf'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r[1].Str() != "sf" {
			t.Fatalf("filter leak: %v", r)
		}
	}
	if res.Columns[0] != "id" || res.Columns[1] != "city" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestIndexChangesPlanNotResults(t *testing.T) {
	db := newSalesDB(t)
	q := "SELECT id, amount FROM orders WHERE cust_id = 42 AND status = 'paid'"
	before, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.UsedIndexes) != 0 {
		t.Fatalf("unexpected index use: %v", before.UsedIndexes)
	}
	if _, err := db.Exec("CREATE INDEX o_cs ON orders (cust_id, status)"); err != nil {
		t.Fatal(err)
	}
	after, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.UsedIndexes) != 1 || after.UsedIndexes[0] != "o_cs" {
		t.Fatalf("index not used: %v (plan %v)", after.UsedIndexes, after.PlanDesc)
	}
	sameResults(t, before.Rows, after.Rows)
	if after.Stats.RowsRead >= before.Stats.RowsRead {
		t.Errorf("index did not reduce rows read: %d vs %d", after.Stats.RowsRead, before.Stats.RowsRead)
	}
}

func TestJoinUsesIndexNestedLoop(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	q := `SELECT c.name, o.amount FROM customers c JOIN orders o ON o.cust_id = c.id
		WHERE c.city = 'nyc' AND o.status = 'paid'`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ix := range res.UsedIndexes {
		if ix == "o_cust" {
			found = true
		}
	}
	if !found {
		t.Fatalf("join should use o_cust: %v", res.PlanDesc)
	}
	// Compare against forced full order (straight join from orders side).
	res2, err := db.Exec(`SELECT STRAIGHT_JOIN c.name, o.amount FROM orders o, customers c
		WHERE o.cust_id = c.id AND c.city = 'nyc' AND o.status = 'paid'`)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, res.Rows, res2.Rows)
}

func TestGroupByAndAggregates(t *testing.T) {
	db := newSalesDB(t)
	res, err := db.Exec("SELECT status, COUNT(*), SUM(amount), AVG(amount) FROM orders GROUP BY status")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	var total int64
	for _, r := range res.Rows {
		total += r[1].Int()
	}
	if total != 4000 {
		t.Fatalf("counts sum to %d", total)
	}
}

func TestOrderByLimitUsesIndexOrder(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_day ON orders (day)")
	db.Analyze()
	res, err := db.Exec("SELECT id, day FROM orders ORDER BY day LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int() > res.Rows[i][1].Int() {
			t.Fatal("not sorted")
		}
	}
	// The ordered index + early termination should read far fewer rows
	// than the table size.
	if res.Stats.RowsRead > 400 {
		t.Errorf("ordered limit read %d rows (plan %v)", res.Stats.RowsRead, res.PlanDesc)
	}
	if res.Stats.SortRows != 0 {
		t.Errorf("sort not avoided (plan %v)", res.PlanDesc)
	}
}

func TestWhatIfEstimates(t *testing.T) {
	db := newSalesDB(t)
	stmt, err := sqlparser.Parse("SELECT id FROM orders WHERE cust_id = 7")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sqlparser.Select)
	base, err := db.Optimizer.EstimateSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	hypo := &catalog.Index{Name: "hypo_cust", Table: "orders", Columns: []string{"cust_id"}, Hypothetical: true}
	with, err := db.Optimizer.EstimateSelect(sel, []*catalog.Index{hypo})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost >= base.Cost {
		t.Fatalf("hypothetical index did not reduce cost: %v vs %v", with.Cost, base.Cost)
	}
	keys := with.UsedIndexKeys()
	if len(keys) != 1 || keys[0] != "orders(cust_id)" {
		t.Fatalf("used = %v", keys)
	}
	if db.Optimizer.Calls() < 2 {
		t.Error("optimizer calls not counted")
	}
}

func TestWhatIfMatchesMaterializedEstimate(t *testing.T) {
	db := newSalesDB(t)
	stmt, _ := sqlparser.Parse("SELECT id FROM orders WHERE cust_id = 7 AND status = 'paid'")
	sel := stmt.(*sqlparser.Select)
	hypo := &catalog.Index{Name: "h", Table: "orders", Columns: []string{"cust_id", "status"}, Hypothetical: true}
	withHypo, err := db.Optimizer.EstimateSelect(sel, []*catalog.Index{hypo})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE INDEX real_cs ON orders (cust_id, status)")
	withReal, err := db.Optimizer.EstimateSelect(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same statistics, same shape: the estimates must agree.
	if diff := withHypo.Cost - withReal.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("hypothetical %v != materialized %v", withHypo.Cost, withReal.Cost)
	}
}

func TestEstimateTracksActualOrdering(t *testing.T) {
	// The optimizer's cost should rank plans consistently with observed
	// work: indexed access must be both estimated and measured cheaper.
	db := newSalesDB(t)
	q := "SELECT id FROM orders WHERE cust_id = 3"
	stmt, _ := sqlparser.Parse(q)
	sel := stmt.(*sqlparser.Select)
	estBefore, _ := db.Optimizer.EstimateSelect(sel, nil)
	resBefore, _ := db.Exec(q)
	db.MustExec("CREATE INDEX oc ON orders (cust_id)")
	estAfter, _ := db.Optimizer.EstimateSelect(sel, nil)
	resAfter, _ := db.Exec(q)
	if !(estAfter.Cost < estBefore.Cost) {
		t.Error("estimates did not improve")
	}
	cpuBefore := resBefore.Stats.CPUSeconds()
	cpuAfter := resAfter.Stats.CPUSeconds()
	if !(cpuAfter < cpuBefore) {
		t.Errorf("actual cpu did not improve: %v vs %v", cpuAfter, cpuBefore)
	}
}

func TestUpdateDeleteViaIndexes(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	res, err := db.Exec("UPDATE orders SET status = 'void' WHERE cust_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RowsSent == 0 {
		t.Fatal("nothing updated")
	}
	check, _ := db.Exec("SELECT COUNT(*) FROM orders WHERE cust_id = 12 AND status = 'void'")
	if check.Rows[0][0].Int() != res.Stats.RowsSent {
		t.Fatalf("updated %d but see %d", res.Stats.RowsSent, check.Rows[0][0].Int())
	}
	del, err := db.Exec("DELETE FROM orders WHERE cust_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	if del.Stats.RowsSent != res.Stats.RowsSent {
		t.Fatalf("deleted %d, expected %d", del.Stats.RowsSent, res.Stats.RowsSent)
	}
	verify, _ := db.Exec("SELECT COUNT(*) FROM orders WHERE cust_id = 12")
	if verify.Rows[0][0].Int() != 0 {
		t.Fatal("rows survived delete")
	}
}

func TestCloneIsolation(t *testing.T) {
	db := newSalesDB(t)
	clone := db.Clone("shadow")
	clone.MustExec("CREATE INDEX c_city ON customers (city)")
	clone.MustExec("DELETE FROM orders WHERE id < 100")
	if db.Schema.Index("c_city") != nil {
		t.Fatal("index leaked to original")
	}
	orig, _ := db.Exec("SELECT COUNT(*) FROM orders")
	if orig.Rows[0][0].Int() != 4000 {
		t.Fatal("delete leaked to original")
	}
	cl, _ := clone.Exec("SELECT COUNT(*) FROM orders")
	if cl.Rows[0][0].Int() != 3900 {
		t.Fatal("clone delete missing")
	}
}

func TestEstimateDMLAttributesIndexMaintenance(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	db.MustExec("CREATE INDEX o_status ON orders (status)")
	stmt, _ := sqlparser.Parse("INSERT INTO orders VALUES (99999, 1, 'new', 5.0, 1)")
	est, err := db.Optimizer.EstimateDML(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.IndexMaintenance) != 2 {
		t.Fatalf("maintenance entries = %v", est.IndexMaintenance)
	}
	if est.TotalCost() <= est.BaseCost {
		t.Error("maintenance should add cost")
	}
	// Updates only charge indexes whose columns are modified.
	stmt2, _ := sqlparser.Parse("UPDATE orders SET status = 'x' WHERE id = 5")
	est2, err := db.Optimizer.EstimateDML(stmt2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, hasCust := est2.IndexMaintenance["orders(cust_id)"]; hasCust {
		t.Error("cust index should not be charged for status update")
	}
	if _, hasStatus := est2.IndexMaintenance["orders(status)"]; !hasStatus {
		t.Error("status index must be charged")
	}
}

func TestCoveringIndexAvoidsLookups(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cov ON orders (cust_id, status, amount)")
	res, err := db.Exec("SELECT status, amount FROM orders WHERE cust_id = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PlanDesc) == 0 || !contains(res.PlanDesc[0], "covering") {
		t.Fatalf("expected covering plan, got %v", res.PlanDesc)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExplain(t *testing.T) {
	db := newSalesDB(t)
	desc, err := db.Explain("SELECT id FROM orders WHERE cust_id = 1")
	if err != nil || len(desc) != 1 {
		t.Fatalf("explain: %v %v", desc, err)
	}
	if _, err := db.Explain("DELETE FROM orders"); err == nil {
		t.Error("explain DML should fail")
	}
}

func TestInListQuery(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	res, err := db.Exec("SELECT id FROM orders WHERE cust_id IN (3, 5, 8)")
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Exec("SELECT id FROM orders WHERE cust_id = 3 OR cust_id = 5 OR cust_id = 8")
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, res.Rows, full.Rows)
	if len(res.UsedIndexes) == 0 {
		t.Errorf("IN should use index: %v", res.PlanDesc)
	}
}

func TestThreeWayJoinCorrectness(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec(`CREATE TABLE regions (city VARCHAR(16), region VARCHAR(8), PRIMARY KEY (city))`)
	for _, rc := range [][2]string{{"sf", "west"}, {"la", "west"}, {"sea", "west"}, {"nyc", "east"}, {"chi", "mid"}} {
		db.MustExec(fmt.Sprintf("INSERT INTO regions VALUES ('%s', '%s')", rc[0], rc[1]))
	}
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	db.Analyze()
	q := `SELECT r.region, COUNT(*) FROM regions r
		JOIN customers c ON c.city = r.city
		JOIN orders o ON o.cust_id = c.id
		WHERE r.region = 'west' GROUP BY r.region`
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "west" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Verify the count against a manual computation.
	manual, _ := db.Exec(`SELECT COUNT(*) FROM customers c JOIN orders o ON o.cust_id = c.id
		WHERE c.city IN ('sf', 'la', 'sea')`)
	if res.Rows[0][1].Int() != manual.Rows[0][0].Int() {
		t.Fatalf("join count %v != manual %v", res.Rows[0][1], manual.Rows[0][0])
	}
}

// TestPlanEquivalenceProperty executes randomized filter queries with and
// without indexes and requires identical results — the core executor/
// optimizer correctness invariant.
func TestPlanEquivalenceProperty(t *testing.T) {
	db := newSalesDB(t)
	r := rand.New(rand.NewSource(21))
	queries := make([]string, 0, 30)
	statuses := []string{"new", "paid", "shipped", "done"}
	for i := 0; i < 30; i++ {
		switch r.Intn(4) {
		case 0:
			queries = append(queries, fmt.Sprintf("SELECT id FROM orders WHERE cust_id = %d", r.Intn(200)))
		case 1:
			queries = append(queries, fmt.Sprintf("SELECT id FROM orders WHERE cust_id = %d AND status = '%s'", r.Intn(200), statuses[r.Intn(4)]))
		case 2:
			queries = append(queries, fmt.Sprintf("SELECT id, amount FROM orders WHERE day BETWEEN %d AND %d AND amount > %d", r.Intn(180), 180+r.Intn(180), r.Intn(400)))
		case 3:
			queries = append(queries, fmt.Sprintf("SELECT status, COUNT(*) FROM orders WHERE day > %d GROUP BY status", r.Intn(300)))
		}
	}
	before := make([][]sqltypes.Row, len(queries))
	for i, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		before[i] = res.Rows
	}
	db.MustExec("CREATE INDEX x1 ON orders (cust_id, status)")
	db.MustExec("CREATE INDEX x2 ON orders (day, amount)")
	db.MustExec("CREATE INDEX x3 ON orders (status)")
	db.Analyze()
	for i, q := range queries {
		res, err := db.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sameResults(t, before[i], res.Rows)
	}
}

func TestIndexSizeAccounting(t *testing.T) {
	db := newSalesDB(t)
	if db.TotalIndexBytes() != 0 {
		t.Fatal("no indexes yet")
	}
	def := &catalog.Index{Name: "o_cust", Table: "orders", Columns: []string{"cust_id"}}
	// Hypothetical sizing before materialization.
	hypo := &catalog.Index{Name: "h", Table: "orders", Columns: []string{"cust_id"}, Hypothetical: true}
	est := db.EstimateIndexSize(hypo)
	if est <= 0 {
		t.Fatal("estimate zero")
	}
	if got := db.IndexSizeBytes(hypo); got != est {
		t.Fatalf("IndexSizeBytes for hypothetical = %d, want estimate %d", got, est)
	}
	if _, err := db.CreateIndex(def); err != nil {
		t.Fatal(err)
	}
	real := db.IndexSizeBytes(def)
	if real <= 0 {
		t.Fatal("materialized size zero")
	}
	if db.TotalIndexBytes() != real {
		t.Fatalf("total = %d, index = %d", db.TotalIndexBytes(), real)
	}
	// The statistics-based estimate should be within 3x of the real size.
	ratio := float64(est) / float64(real)
	if ratio < 0.33 || ratio > 3 {
		t.Errorf("estimate %d vs real %d (ratio %.2f)", est, real, ratio)
	}
	// Unknown-table estimate is zero, not a panic.
	if db.EstimateIndexSize(&catalog.Index{Name: "x", Table: "ghost", Columns: []string{"a"}}) != 0 {
		t.Error("ghost estimate should be 0")
	}
}

func TestEngineDDLErrors(t *testing.T) {
	db := newSalesDB(t)
	if _, err := db.Exec("DROP INDEX nosuch"); err == nil {
		t.Error("dropping missing index should fail")
	}
	if _, err := db.CreateIndex(&catalog.Index{Name: "h", Table: "orders", Columns: []string{"cust_id"}, Hypothetical: true}); err == nil {
		t.Error("materializing hypothetical index should fail")
	}
	if _, err := db.Exec("CREATE TABLE orders (id INT, PRIMARY KEY (id))"); err == nil {
		t.Error("duplicate table should fail")
	}
	if _, err := db.Exec("CREATE INDEX bad ON orders (nope)"); err == nil {
		t.Error("unknown column index should fail")
	}
	if _, err := db.Exec("INSERT INTO orders (id) VALUES (1, 2)"); err == nil {
		t.Error("column/value mismatch should fail")
	}
	if _, err := db.Exec("INSERT INTO orders (ghost) VALUES (1)"); err == nil {
		t.Error("unknown insert column should fail")
	}
	if _, err := db.Exec("INSERT INTO ghost VALUES (1)"); err == nil {
		t.Error("unknown table insert should fail")
	}
}

func TestInsertRowsBulkLoader(t *testing.T) {
	db := newSalesDB(t)
	rows := []sqltypes.Row{
		{sqltypes.NewInt(50000), sqltypes.NewInt(1), sqltypes.NewString("new"), sqltypes.NewFloat(1), sqltypes.NewInt(1)},
		{sqltypes.NewInt(50001), sqltypes.NewInt(2), sqltypes.NewString("new"), sqltypes.NewFloat(2), sqltypes.NewInt(2)},
	}
	if err := db.InsertRows("orders", rows); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT COUNT(*) FROM orders WHERE id >= 50000")
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("bulk rows missing: %v", res.Rows)
	}
	if err := db.InsertRows("ghost", rows); err == nil {
		t.Error("unknown table should fail")
	}
	if err := db.InsertRows("orders", rows); err == nil {
		t.Error("duplicate PKs should fail")
	}
}

func TestEstimateStatementDispatch(t *testing.T) {
	db := newSalesDB(t)
	for _, sql := range []string{
		"SELECT id FROM orders WHERE cust_id = 1",
		"INSERT INTO orders VALUES (60000, 1, 'new', 1.0, 1)",
		"UPDATE orders SET status = 'x' WHERE id = 1",
		"DELETE FROM orders WHERE id = 1",
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := db.Optimizer.EstimateStatement(stmt, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if cost <= 0 {
			t.Errorf("%s: cost %v", sql, cost)
		}
	}
	ddl, _ := sqlparser.Parse("CREATE INDEX i ON orders (cust_id)")
	if _, err := db.Optimizer.EstimateStatement(ddl, nil); err == nil {
		t.Error("DDL estimate should fail")
	}
}

func TestEstimateDMLConfigIgnoresSchemaIndexes(t *testing.T) {
	db := newSalesDB(t)
	db.MustExec("CREATE INDEX o_cust ON orders (cust_id)")
	stmt, _ := sqlparser.Parse("INSERT INTO orders VALUES (70000, 1, 'new', 1.0, 1)")
	est, err := db.Optimizer.EstimateDMLConfig(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.IndexMaintenance) != 0 {
		t.Fatalf("replace-mode config should hide schema indexes: %v", est.IndexMaintenance)
	}
	withEst, err := db.Optimizer.EstimateDML(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(withEst.IndexMaintenance) != 1 {
		t.Fatalf("augment mode should see schema index: %v", withEst.IndexMaintenance)
	}
}

func TestSelectWithArithmeticProjectionAndAliases(t *testing.T) {
	db := newSalesDB(t)
	res, err := db.Exec("SELECT amount * 2 AS double_amt, day + 1 FROM orders WHERE id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "double_amt" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	single, _ := db.Exec("SELECT amount, day FROM orders WHERE id = 5")
	if res.Rows[0][0].Float() != single.Rows[0][0].Float()*2 {
		t.Error("arithmetic projection wrong")
	}
	if res.Rows[0][1].Int() != single.Rows[0][1].Int()+1 {
		t.Error("day+1 wrong")
	}
}

func TestOrderByAggregate(t *testing.T) {
	db := newSalesDB(t)
	res, err := db.Exec("SELECT status, COUNT(*) AS n FROM orders GROUP BY status ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int() < res.Rows[i][1].Int() {
			t.Fatal("not sorted by aggregate")
		}
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	db := newSalesDB(t)
	res, err := db.Exec("SELECT id FROM orders WHERE cust_id = 3 ORDER BY amount DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows[0]) != 1 {
		t.Fatalf("hidden sort column leaked: %v", res.Rows)
	}
}

func TestCreateIndexesBatch(t *testing.T) {
	db := newSalesDB(t)
	defs := []*catalog.Index{
		{Name: "ix_cust_city", Table: "customers", Columns: []string{"city"}, CreatedBy: "aim"},
		{Name: "ix_orders_status", Table: "orders", Columns: []string{"status"}, CreatedBy: "aim"},
		{Name: "ix_orders_day", Table: "orders", Columns: []string{"day"}, CreatedBy: "aim"},
	}
	res, err := db.CreateIndexes(defs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexWrites == 0 || res.Stats.RowsRead == 0 {
		t.Errorf("batch build metrics empty: %+v", res.Stats)
	}
	for _, def := range defs {
		if db.Schema.Index(def.Name) == nil {
			t.Errorf("%s missing from schema", def.Name)
		}
		if db.Store.Table(def.Table).Index(def.Name) == nil {
			t.Errorf("%s missing from store", def.Name)
		}
	}
	// The batch-built indexes must serve queries like incrementally built ones.
	r1, _ := db.Exec("SELECT id FROM orders WHERE status = 'paid'")
	db2 := newSalesDB(t)
	r2, _ := db2.Exec("SELECT id FROM orders WHERE status = 'paid'")
	sameResults(t, r1.Rows, r2.Rows)
	if len(r1.UsedIndexes) == 0 {
		t.Errorf("batch-built index unused: %v", r1.PlanDesc)
	}
}

func TestCreateIndexesBatchRollback(t *testing.T) {
	db := newSalesDB(t)
	defs := []*catalog.Index{
		{Name: "ix_ok", Table: "customers", Columns: []string{"tier"}, CreatedBy: "aim"},
		{Name: "ix_bad", Table: "orders", Columns: []string{"nope"}, CreatedBy: "aim"},
	}
	if _, err := db.CreateIndexes(defs); err == nil {
		t.Fatal("bad column should fail the batch")
	}
	// The whole batch rolls back: neither schema nor store keeps the good one.
	for _, name := range []string{"ix_ok", "ix_bad"} {
		if db.Schema.Index(name) != nil {
			t.Errorf("%s leaked into schema", name)
		}
	}
	if db.Store.Table("customers").Index("ix_ok") != nil {
		t.Error("ix_ok leaked into store")
	}
	// A hypothetical def must be refused without side effects.
	hyp := []*catalog.Index{{Name: "ix_hyp", Table: "orders", Columns: []string{"day"}, Hypothetical: true}}
	if _, err := db.CreateIndexes(hyp); err == nil {
		t.Fatal("hypothetical index materialized")
	}
	if db.Schema.Index("ix_hyp") != nil {
		t.Error("hypothetical def leaked into schema")
	}
}
