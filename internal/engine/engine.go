// Package engine is the embedded database facade: it owns the catalog,
// row store, statistics cache, optimizer and executor, and exposes a simple
// Exec/Query API plus the clone and what-if hooks AIM builds on.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"aim/internal/audit"
	"aim/internal/catalog"
	"aim/internal/costcache"
	"aim/internal/exec"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/optimizer"
	"aim/internal/pool"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/stats"
	"aim/internal/storage"
)

// DefaultSampleLimit bounds ANALYZE sampling per table.
const DefaultSampleLimit = 5000

// DB is one logical database.
type DB struct {
	Name      string
	Schema    *catalog.Schema
	Store     *storage.Store
	Optimizer *optimizer.Optimizer
	// WhatIf memoizes what-if estimates behind a sharded LRU; all advisor
	// costing routes through it. The engine invalidates it whenever
	// statistics or the materialized schema change.
	WhatIf     *costcache.Coster
	executor   *exec.Executor
	mu         sync.RWMutex // guards statsCache and writesSince
	statsCache map[string]*stats.TableStats
	// autoAnalyzeEvery re-collects a table's stats after this many writes.
	writesSince map[string]int
	// obs is the attached metrics registry (nil = observability off). The DB
	// is the wiring hub: SetObs fans the registry out to the optimizer, the
	// what-if cache and the executor, and Clone propagates it so shadow
	// clones aggregate into the same registry as production.
	obs *obs.Registry
	// audit is the attached decision journal (nil = journaling off). Unlike
	// obs it is NOT propagated to clones: decisions are made against the
	// production handle, and a shadow clone writing duplicate records would
	// corrupt the lineage.
	audit *audit.Journal
	// cloneGate, when set, is held around snapshot creation. COW clones must
	// be serialized with writers to this DB; an embedding server installs
	// its statement gate's write side here so shadow validation can snapshot
	// mid-traffic (the O(1) clone holds the lock for microseconds) and then
	// replay against the frozen snapshot while live DML proceeds. Clones do
	// not inherit the gate — they are private to their creator.
	cloneGate sync.Locker
}

// SetObs attaches a metrics registry to this database and its components
// (optimizer what-if latency, cost-cache gauges, executor operator
// counters). Pass nil to detach. Call before concurrent use.
func (db *DB) SetObs(r *obs.Registry) {
	db.obs = r
	db.Optimizer.SetObs(r)
	db.WhatIf.SetObs(r)
	db.executor.SetObs(r)
}

// ObsRegistry returns the attached registry, or nil when observability is
// off. Components that only hold a *DB (the advisor, the shadow validator)
// reach the registry through this.
func (db *DB) ObsRegistry() *obs.Registry { return db.obs }

// SetAudit attaches a decision journal to this database. Pass nil to detach.
// Clones never inherit it (see the field comment). Call before concurrent
// use.
func (db *DB) SetAudit(j *audit.Journal) { db.audit = j }

// SetRowOnlyExec forces (true) or lifts (false) tuple-at-a-time execution.
// The default is the vectorized batch engine for eligible plans; differential
// tests and benchmarks pin the row loop to compare the two engines. Clones
// inherit the setting (see cloneFrom). Call before concurrent use.
func (db *DB) SetRowOnlyExec(rowOnly bool) { db.executor.RowOnly = rowOnly }

// SetCloneGate installs a lock held around snapshot creation (nil removes
// it). Callers that interleave live writers with Clone/CloneChecked — the
// network server's tuning loop — pass the exclusive side of their write
// gate; single-threaded drivers never need one. Call before concurrent use.
func (db *DB) SetCloneGate(l sync.Locker) { db.cloneGate = l }

// AuditJournal returns the attached journal, or nil when journaling is off.
// The advisor, the shadow validator and the regression detector reach the
// journal through this; all of them tolerate nil.
func (db *DB) AuditJournal() *audit.Journal { return db.audit }

// New creates an empty database.
func New(name string) *DB {
	db := &DB{
		Name:        name,
		Schema:      catalog.NewSchema(),
		Store:       storage.NewStore(),
		statsCache:  map[string]*stats.TableStats{},
		writesSince: map[string]int{},
	}
	db.Optimizer = optimizer.New(db.Schema, db)
	db.WhatIf = costcache.NewCoster(db.Optimizer, costcache.DefaultCapacity)
	db.executor = exec.New(db.Store)
	return db
}

// TableStats implements optimizer.StatsProvider with lazy collection. It is
// safe for concurrent use; the first caller for a table collects under the
// write lock.
func (db *DB) TableStats(table string) *stats.TableStats {
	key := strings.ToLower(table)
	db.mu.RLock()
	ts, ok := db.statsCache[key]
	db.mu.RUnlock()
	if ok {
		return ts
	}
	tbl := db.Store.Table(table)
	if tbl == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if ts, ok := db.statsCache[key]; ok {
		return ts // another goroutine collected while we waited
	}
	ts = stats.Collect(tbl, DefaultSampleLimit)
	db.statsCache[key] = ts
	return ts
}

// Analyze refreshes statistics for every table (or one named table).
func (db *DB) Analyze(tables ...string) {
	if len(tables) == 0 {
		for _, t := range db.Schema.Tables() {
			tables = append(tables, t.Name)
		}
	}
	db.mu.Lock()
	for _, t := range tables {
		tbl := db.Store.Table(t)
		if tbl == nil {
			continue
		}
		db.statsCache[strings.ToLower(t)] = stats.Collect(tbl, DefaultSampleLimit)
	}
	db.mu.Unlock()
	db.WhatIf.Invalidate()
}

// Result is the outcome of one statement execution.
type Result struct {
	Columns []string
	Rows    []sqltypes.Row
	Stats   exec.Stats
	// Plan annotations for SELECTs.
	PlanDesc    []string
	UsedIndexes []string
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// MustExec executes and panics on error — for fixtures and generators.
func (db *DB) MustExec(sql string) *Result {
	r, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("engine: %v (sql: %s)", err, sql))
	}
	return r
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(stmt sqlparser.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.Select:
		return db.execSelect(s)
	case *sqlparser.Insert:
		return db.execInsert(s)
	case *sqlparser.Update, *sqlparser.Delete:
		return db.execUpdateDelete(s)
	case *sqlparser.CreateTable:
		return db.execCreateTable(s)
	case *sqlparser.CreateIndex:
		return db.CreateIndex(&catalog.Index{Name: s.Name, Table: s.Table, Columns: s.Columns})
	case *sqlparser.DropIndex:
		return db.DropIndex(s.Name)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (db *DB) execSelect(s *sqlparser.Select) (*Result, error) {
	plan, desc, err := db.Optimizer.BuildSelectPlan(s)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(s.Exprs))
	for i, se := range s.Exprs {
		switch {
		case se.Alias != "":
			cols[i] = se.Alias
		case se.Star:
			cols[i] = "*"
		default:
			cols[i] = se.Expr.SQL()
		}
	}
	res, err := db.executor.Run(plan, cols)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:     res.Columns,
		Rows:        res.Rows,
		Stats:       res.Stats,
		PlanDesc:    desc,
		UsedIndexes: plan.UsedIndexes,
	}, nil
}

func (db *DB) execInsert(s *sqlparser.Insert) (*Result, error) {
	tbl := db.Schema.Table(s.Table)
	if tbl == nil {
		return nil, fmt.Errorf("engine: unknown table %q", s.Table)
	}
	// Evaluate row expressions (must be constant).
	emptyLayout := exec.NewLayout(nil)
	rows := make([]sqltypes.Row, 0, len(s.Rows))
	for _, exprRow := range s.Rows {
		full := make(sqltypes.Row, len(tbl.Columns))
		for i := range full {
			full[i] = sqltypes.Null
		}
		if len(s.Columns) == 0 {
			if len(exprRow) != len(tbl.Columns) {
				return nil, fmt.Errorf("engine: INSERT expects %d values, got %d", len(tbl.Columns), len(exprRow))
			}
			for i, e := range exprRow {
				v, err := constEval(e, emptyLayout)
				if err != nil {
					return nil, err
				}
				full[i] = v
			}
		} else {
			if len(exprRow) != len(s.Columns) {
				return nil, fmt.Errorf("engine: INSERT expects %d values, got %d", len(s.Columns), len(exprRow))
			}
			for i, c := range s.Columns {
				ord := tbl.ColumnIndex(c)
				if ord < 0 {
					return nil, fmt.Errorf("engine: unknown column %q", c)
				}
				v, err := constEval(exprRow[i], emptyLayout)
				if err != nil {
					return nil, err
				}
				full[ord] = v
			}
		}
		rows = append(rows, full)
	}
	st, err := db.executor.Insert(s.Table, rows)
	if err != nil {
		return nil, err
	}
	db.noteWrites(s.Table, len(rows))
	return &Result{Stats: st}, nil
}

func constEval(e sqlparser.Expr, l *exec.Layout) (sqltypes.Value, error) {
	ce, err := exec.Compile(e, l)
	if err != nil {
		return sqltypes.Null, err
	}
	return ce(nil)
}

func (db *DB) execUpdateDelete(stmt sqlparser.Statement) (*Result, error) {
	plan, assigns, err := db.Optimizer.BuildDMLPlan(stmt)
	if err != nil {
		return nil, err
	}
	var st exec.Stats
	var table string
	switch s := stmt.(type) {
	case *sqlparser.Update:
		table = s.Table
		st, err = db.executor.Update(plan, assigns)
	case *sqlparser.Delete:
		table = s.Table
		st, err = db.executor.Delete(plan)
	}
	if err != nil {
		return nil, err
	}
	db.noteWrites(table, int(st.RowsSent))
	return &Result{Stats: st}, nil
}

// noteWrites invalidates cached statistics after enough churn.
func (db *DB) noteWrites(table string, n int) {
	key := strings.ToLower(table)
	invalidated := false
	db.mu.Lock()
	db.writesSince[key] += n
	if ts := db.statsCache[key]; ts != nil {
		threshold := int(ts.RowCount/5) + 100
		if db.writesSince[key] >= threshold {
			delete(db.statsCache, key)
			db.writesSince[key] = 0
			invalidated = true
		}
	}
	db.mu.Unlock()
	if invalidated {
		db.WhatIf.Invalidate()
	}
}

func (db *DB) execCreateTable(s *sqlparser.CreateTable) (*Result, error) {
	cols := make([]catalog.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	def, err := catalog.NewTable(s.Table, cols, s.PrimaryKey)
	if err != nil {
		return nil, err
	}
	if err := db.Schema.AddTable(def); err != nil {
		return nil, err
	}
	if _, err := db.Store.CreateTable(def); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// CreateIndex registers and materializes a secondary index.
func (db *DB) CreateIndex(def *catalog.Index) (*Result, error) {
	return db.CreateIndexes([]*catalog.Index{def})
}

// buildPolicy bounds per-index build retries inside CreateIndexes: a
// transient build failure (the "engine.create_index" failpoint, or a real
// allocator/IO error in a disk-backed port) is retried with backoff before
// the whole batch rolls back.
var buildPolicy = failpoint.Policy{Attempts: 3, Base: 500 * time.Microsecond, Max: 4 * time.Millisecond, Deadline: 250 * time.Millisecond}

// CreateIndexes registers and materializes several secondary indexes in one
// batch. The per-index tree builds (scan + sort + bulk load) fan out over
// the storage worker pool — builds only read the clustered trees and each
// writes its own result slot — while schema registration, attachment and
// metric folding stay sequential in input order, so the outcome is
// byte-identical at any worker count. On any failure every index of the
// batch is rolled back.
func (db *DB) CreateIndexes(defs []*catalog.Index) (*Result, error) {
	if len(defs) == 0 {
		return &Result{}, nil
	}
	registered := 0
	rollback := func() {
		for _, def := range defs[:registered] {
			db.Schema.DropIndex(def.Name)
		}
	}
	for _, def := range defs {
		if def.Hypothetical {
			rollback()
			return nil, fmt.Errorf("engine: cannot materialize hypothetical index %q", def.Name)
		}
		if err := db.Schema.AddIndex(def); err != nil {
			rollback()
			return nil, err
		}
		registered++
	}
	built := make([]*storage.Index, len(defs))
	errs := make([]error, len(defs))
	ms := make([]storage.Metrics, len(defs))
	pool.ForEach(db.Store.Workers, len(defs), func(i int) {
		tbl := db.Store.Table(defs[i].Table)
		if tbl == nil {
			errs[i] = fmt.Errorf("engine: unknown table %q", defs[i].Table)
			return
		}
		// Per-index builds retry transient failures (the
		// "engine.create_index" failpoint stands in for them) with bounded
		// backoff; metrics reset per attempt so a retried build is not
		// double-counted.
		errs[i] = buildPolicy.Do(func() error {
			if err := failpoint.Inject("engine.create_index"); err != nil {
				return err
			}
			ms[i] = storage.Metrics{}
			var err error
			built[i], err = tbl.PrepareIndex(defs[i], &ms[i])
			return err
		})
	})
	var m storage.Metrics
	for i := range defs {
		if errs[i] == nil {
			errs[i] = db.Store.Table(defs[i].Table).AttachIndex(built[i])
		}
		if errs[i] != nil {
			for _, def := range defs[:i] {
				db.Store.Table(def.Table).DropIndex(def.Name)
			}
			rollback()
			return nil, errs[i]
		}
		m.Add(ms[i])
	}
	db.WhatIf.Invalidate()
	return &Result{Stats: exec.Stats{RowsRead: m.RowsRead, PageReads: m.PageReads, IndexWrites: m.IndexWrites}}, nil
}

// DropIndex removes a secondary index from the schema and store. The
// "engine.drop_index" failpoint fires before any mutation, so an injected
// drop failure leaves the index fully intact (regression.Revert retries it).
func (db *DB) DropIndex(name string) (*Result, error) {
	ix := db.Schema.Index(name)
	if ix == nil {
		return nil, fmt.Errorf("engine: unknown index %q", name)
	}
	if err := failpoint.Inject("engine.drop_index"); err != nil {
		return nil, err
	}
	db.Schema.DropIndex(name)
	if tbl := db.Store.Table(ix.Table); tbl != nil {
		tbl.DropIndex(name)
	}
	db.WhatIf.Invalidate()
	return &Result{}, nil
}

// IndexSizeBytes returns the materialized size of an index, or an estimate
// from statistics when the index is hypothetical.
func (db *DB) IndexSizeBytes(def *catalog.Index) int64 {
	if tbl := db.Store.Table(def.Table); tbl != nil {
		if ix := tbl.Index(def.Name); ix != nil {
			return ix.SizeBytes()
		}
	}
	return db.EstimateIndexSize(def)
}

// EstimateIndexSize sizes a (possibly hypothetical) index from statistics:
// per entry, the key columns' average widths plus the primary key twice
// (suffix + payload) plus fixed overhead.
func (db *DB) EstimateIndexSize(def *catalog.Index) int64 {
	ts := db.TableStats(def.Table)
	tbl := db.Schema.Table(def.Table)
	if ts == nil || tbl == nil || ts.RowCount == 0 {
		return 0
	}
	perEntry := 16.0
	width := func(col string) float64 {
		switch tbl.Columns[tbl.ColumnIndex(col)].Type {
		case sqltypes.KindString, sqltypes.KindBytes:
			return 18 // typical short-string payload
		default:
			return 8
		}
	}
	for _, c := range def.Columns {
		perEntry += width(c)
	}
	for _, c := range tbl.PrimaryKeyNames() {
		perEntry += 2 * width(c)
	}
	return int64(perEntry * float64(ts.RowCount))
}

// TotalIndexBytes returns the materialized secondary index footprint.
func (db *DB) TotalIndexBytes() int64 { return db.Store.TotalIndexBytes() }

// Clone produces an isolated copy of the database (schema, data, indexes,
// statistics) as an O(1) copy-on-write snapshot: the store shares every
// tree node with the original until one side writes. This is the MyShadow
// substrate — experiments run on the clone never touch the original, and
// reads on the clone stay byte-stable under live DML on the original.
// Clone must be serialized with writers to this DB; the returned handle is
// then fully independent.
func (db *DB) Clone(name string) *DB {
	if db.cloneGate != nil {
		db.cloneGate.Lock()
		defer db.cloneGate.Unlock()
	}
	return db.cloneFrom(name, db.Store.Clone())
}

// CloneChecked is Clone behind the storage layer's "storage.clone"
// failpoint. The continuous-tuning path (shadow validation) clones through
// this so a refused snapshot surfaces as an error the caller can retry or
// degrade on, instead of an invariant the loop silently assumes.
func (db *DB) CloneChecked(name string) (*DB, error) {
	if db.cloneGate != nil {
		db.cloneGate.Lock()
		defer db.cloneGate.Unlock()
	}
	st, err := db.Store.CloneChecked()
	if err != nil {
		return nil, err
	}
	return db.cloneFrom(name, st), nil
}

// Release retires a snapshot database for the storage.snapshots_live gauge.
// Idempotent; a no-op on non-snapshot databases. Dropping a snapshot without
// releasing it is safe — this only keeps the gauge honest.
func (db *DB) Release() { db.Store.Release() }

func (db *DB) cloneFrom(name string, store *storage.Store) *DB {
	out := &DB{
		Name:        name,
		Schema:      db.Schema.Clone(),
		Store:       store,
		statsCache:  map[string]*stats.TableStats{},
		writesSince: map[string]int{},
	}
	db.mu.RLock()
	for k, v := range db.statsCache {
		out.statsCache[k] = v
	}
	db.mu.RUnlock()
	out.Optimizer = optimizer.New(out.Schema, out)
	out.WhatIf = costcache.NewCoster(out.Optimizer, costcache.DefaultCapacity)
	out.executor = exec.New(out.Store)
	// Shadow replay must execute exactly like production, so the engine
	// selection travels with the clone.
	out.executor.RowOnly = db.executor.RowOnly
	if db.obs != nil {
		out.SetObs(db.obs)
	}
	return out
}

// Explain plans a SELECT and returns the access descriptions without
// executing it.
func (db *DB) Explain(sql string) ([]string, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.Select)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports only SELECT")
	}
	_, desc, err := db.Optimizer.BuildSelectPlan(sel)
	return desc, err
}

// InsertRows bulk-loads rows (already in full table column order) without
// per-row SQL parsing. Generators use it to build benchmark datasets;
// batches arriving in primary-key order take the storage layer's O(n)
// bulk-append path.
func (db *DB) InsertRows(table string, rows []sqltypes.Row) error {
	tbl := db.Store.Table(table)
	if tbl == nil {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	if err := tbl.InsertBatch(rows, nil); err != nil {
		return err
	}
	db.noteWrites(table, len(rows))
	return nil
}
