package server

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/pool"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/sqlparser"
)

// Options configures a Server. DB is the one required field; everything
// else has serving defaults.
type Options struct {
	// DB is the serving database (schema and data already loaded).
	DB *engine.DB
	// AdvisorCfg configures the in-process advisor. The zero value selects
	// core.DefaultConfig with MinExecutions=1 — live windows are short, and
	// a statement seen once in a window is real traffic, not noise.
	AdvisorCfg *core.Config
	// Gate is the shadow no-regression gate (nil = shadow.DefaultGate).
	Gate *shadow.Gate
	// Detector watches post-adoption windows (nil = NewDetector(0.5)).
	Detector *regression.Detector
	// WindowStatements seals a tuning window every N observed statements
	// (0 = manual tuning via OpTune only).
	WindowStatements int
	// MaxConns bounds concurrent sessions; further accepts wait. <= 0
	// resolves through pool.Workers (the same sizing rule as the advisor's
	// fan-out) times a fan-in factor of 8, so a small machine still serves a
	// realistic fleet.
	MaxConns int
	// ReadTimeout/WriteTimeout are per-frame deadlines (0 = 2 minutes). A
	// session that stalls mid-frame is cut, not leaked.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for sessions to finish their
	// in-flight statement (0 = 5 seconds).
	DrainTimeout time.Duration
	// Obs receives the server metrics (server.connections_open,
	// server.frames, server.window_statements, server.windows_sealed,
	// server.tune_cycles, server.drain_seconds) and, when set, a
	// "server/stmt" span per executed statement annotated with (session,
	// seq, trace). Nil = metrics off.
	Obs *obs.Registry
	// OnReport forwards every shadow verdict (telemetry SetShadowReport).
	OnReport func(*shadow.Report)
	// SlowLog, when set, captures executed statements (over-threshold plus
	// 1-in-N samples) with plan shape and operator stats. Served by OpSlow
	// and /slowz. Nil = capture off, zero per-statement cost.
	SlowLog *obs.SlowLog
}

// Server is the aimd daemon core: a TCP listener, per-connection sessions,
// a statement gate serializing writers, and the live-stream tuner.
type Server struct {
	opts Options
	db   *engine.DB

	// exec is the statement gate: SELECTs hold the read side, DML/DDL and
	// tuning-loop applies the write side, and COW snapshot creation inside
	// shadow validation serializes through the write side via the engine's
	// clone gate.
	exec sync.RWMutex

	collector *Collector
	tuner     *Tuner

	ln       net.Listener
	draining atomic.Bool
	closed   chan struct{} // accept loop exited

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions sync.WaitGroup
	sem      chan struct{} // bounds concurrent sessions
	seq      atomic.Int64  // accept-order session labels

	windows chan []Record // auto-sealed windows to the tuner goroutine
	tunerWG sync.WaitGroup

	connsOpen *obs.Gauge
	frames    *obs.Counter
	acceptErr *obs.Counter
	readErr   *obs.Counter
	drainHist *obs.Histogram
}

// writeLocker adapts the server's statement gate to the engine's clone
// gate: snapshot creation excludes writers, briefly.
type writeLocker struct{ mu *sync.RWMutex }

func (l writeLocker) Lock()   { l.mu.Lock() }
func (l writeLocker) Unlock() { l.mu.Unlock() }

// New assembles an unstarted server around a loaded database.
func New(opts Options) *Server {
	if opts.DB == nil {
		panic("server: Options.DB is required")
	}
	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	if opts.AdvisorCfg != nil {
		cfg = *opts.AdvisorCfg
	}
	gate := shadow.DefaultGate()
	if opts.Gate != nil {
		gate = *opts.Gate
	}
	det := opts.Detector
	if det == nil {
		det = regression.NewDetector(0.5)
	}
	maxConns := opts.MaxConns
	if maxConns <= 0 {
		maxConns = pool.Workers(0) * 8
	}
	s := &Server{
		opts:      opts,
		db:        opts.DB,
		collector: NewCollector(opts.WindowStatements, opts.Obs),
		conns:     map[net.Conn]struct{}{},
		sem:       make(chan struct{}, maxConns),
		closed:    make(chan struct{}),
		windows:   make(chan []Record, 1),
	}
	s.tuner = &Tuner{
		DB:       opts.DB,
		Adv:      core.NewAdvisor(opts.DB, cfg),
		Detector: det,
		Gate:     gate,
		Exec:     &s.exec,
		OnReport: opts.OnReport,
	}
	opts.DB.SetCloneGate(writeLocker{&s.exec})
	if r := opts.Obs; r != nil {
		s.connsOpen = r.Gauge("server.connections_open")
		s.frames = r.Counter("server.frames")
		s.acceptErr = r.Counter("server.accept_errors")
		s.readErr = r.Counter("server.read_errors")
		s.drainHist = r.Histogram("server.drain_seconds")
		s.tuner.Instrument(r)
	}
	return s
}

// Tuner exposes the live tuner (counters and verdicts) for telemetry and
// the serve suite.
func (s *Server) Tuner() *Tuner { return s.tuner }

// Collector exposes the window collector.
func (s *Server) Collector() *Collector { return s.collector }

// DB returns the serving database handle.
func (s *Server) DB() *engine.DB { return s.db }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port), spawns
// the accept loop and the tuner goroutine, and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %v", err)
	}
	s.ln = ln
	s.tunerWG.Add(1)
	go s.runTuner()
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) acceptLoop() {
	defer close(s.closed)
	for {
		// The "server.accept" failpoint models a transient accept failure
		// (fd exhaustion, a dying load balancer probe): the connection in
		// flight is refused, the loop keeps serving.
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		if s.draining.Load() {
			conn.Close()
			continue
		}
		if ferr := failpoint.Inject("server.accept"); ferr != nil {
			if s.acceptErr != nil {
				s.acceptErr.Inc()
			}
			conn.Close()
			continue
		}
		s.sem <- struct{}{} // bounded worker model: blocks when MaxConns busy
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.sessions.Add(1)
		if s.connsOpen != nil {
			s.connsOpen.Add(1)
		}
		go s.serve(conn)
	}
}

func (s *Server) runTuner() {
	defer s.tunerWG.Done()
	for w := range s.windows {
		// A cycle error is an invariant violation (degraded-accepted); the
		// daemon must not adopt past it, so tuning stops while serving
		// continues. The suite asserts this never fires.
		if _, err := s.tuner.CycleWindow(w); err != nil {
			s.tuner.mu.Lock()
			s.tuner.verdicts = append(s.tuner.verdicts, "FATAL "+err.Error())
			s.tuner.mu.Unlock()
			return
		}
	}
}

// serve runs one session: read frame, execute, respond, until the peer
// closes, a deadline cuts a stalled frame, or drain begins.
func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		<-s.sem
		if s.connsOpen != nil {
			s.connsOpen.Add(-1)
		}
		s.sessions.Done()
	}()
	session := fmt.Sprintf("conn-%04d", s.seq.Add(1))
	var stmtSeq uint64
	readTO := s.opts.ReadTimeout
	if readTO <= 0 {
		readTO = 2 * time.Minute
	}
	writeTO := s.opts.WriteTimeout
	if writeTO <= 0 {
		writeTO = 2 * time.Minute
	}
	for {
		if s.draining.Load() {
			return
		}
		conn.SetReadDeadline(time.Now().Add(readTO)) //nolint:errcheck
		if err := failpoint.Inject("server.read_frame"); err != nil {
			// An injected read failure models a torn connection: the session
			// ends exactly as it would on a real socket error.
			if s.readErr != nil {
				s.readErr.Inc()
			}
			return
		}
		payload, err := ReadFrame(conn, MaxFrame)
		if err != nil {
			// Oversized and zero-length frames get a best-effort typed error
			// before the cut; EOF and deadlines close silently.
			if err == ErrFrameTooLarge || err == ErrZeroFrame {
				s.respond(conn, writeTO, &Response{Tag: TagError, Code: CodeBadFrame, Msg: err.Error()})
			}
			if s.readErr != nil && err != nil {
				s.readErr.Inc()
			}
			return
		}
		if s.frames != nil {
			s.frames.Inc()
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			s.respond(conn, writeTO, &Response{Tag: TagError, Code: CodeBadFrame, Msg: err.Error()})
			return
		}
		var resp *Response
		switch req.Op {
		case OpHello:
			if req.SQL != "" {
				session = req.SQL
			}
			// Affected advertises the server's protocol version (see
			// ProtoVersion). v1 clients never read it; v2 clients use it to
			// decide whether OpQueryTraced/OpSlow are safe to send.
			resp = &Response{Tag: TagOK, Affected: ProtoVersion}
		case OpPing:
			resp = &Response{Tag: TagPong}
		case OpTune:
			line, err := s.TuneNow()
			if err != nil {
				resp = &Response{Tag: TagError, Code: CodeTune, Msg: err.Error()}
			} else {
				resp = &Response{Tag: TagVerdict, Verdict: line}
			}
		case OpSlow:
			resp = &Response{Tag: TagSlow, Slow: s.opts.SlowLog.Snapshot()}
		case OpQuery, OpQueryTraced:
			if s.draining.Load() {
				resp = &Response{Tag: TagError, Code: CodeDraining, Msg: "server draining"}
			} else {
				stmtSeq++
				resp = s.execStatement(session, stmtSeq, req.Trace, req.SQL)
			}
		}
		if !s.respond(conn, writeTO, resp) {
			return
		}
	}
}

func (s *Server) respond(conn net.Conn, writeTO time.Duration, resp *Response) bool {
	payload := EncodeResponse(resp)
	if len(payload) > MaxFrame {
		payload = EncodeResponse(&Response{Tag: TagError, Code: CodeExec, Msg: "result exceeds max frame"})
	}
	conn.SetWriteDeadline(time.Now().Add(writeTO)) //nolint:errcheck
	return WriteFrame(conn, payload) == nil
}

// execStatement parses, classifies and executes one statement under the
// statement gate (SELECTs share the read side; DML and DDL serialize on the
// write side), then feeds the collector, the per-statement span, and the
// slow-query log. Failed statements produce a typed error and are not
// observed — the monitor sees only executions that contributed load,
// matching the batch loop's semantics.
func (s *Server) execStatement(session string, seq uint64, trace, sql string) *Response {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return &Response{Tag: TagError, Code: CodeParse, Msg: err.Error()}
	}
	// The latency clock starts before the gate: lock waits are part of what
	// the client experienced, so they belong in the slow log. Only read the
	// clock when something will consume it — recorder off stays zero-cost.
	slow := s.opts.SlowLog
	sp := s.opts.Obs.StartSpan("server/stmt")
	var start time.Time
	if slow != nil || sp != nil {
		start = time.Now()
	}
	if sp != nil {
		sp.Annotate("session", session).Annotate("seq", strconv.FormatUint(seq, 10))
		if trace != "" {
			sp.Annotate("trace", trace)
		}
	}
	_, isSelect := stmt.(*sqlparser.Select)
	if isSelect {
		s.exec.RLock()
	} else {
		s.exec.Lock()
	}
	res, err := s.db.ExecStmt(stmt)
	if isSelect {
		s.exec.RUnlock()
	} else {
		s.exec.Unlock()
	}
	sp.End()
	if err != nil {
		return &Response{Tag: TagError, Code: CodeExec, Msg: err.Error()}
	}
	if slow != nil {
		slow.Observe(obs.SlowEntry{
			TSUS:        start.UnixMicro(),
			Session:     session,
			Seq:         seq,
			Trace:       trace,
			SQL:         sql,
			Plan:        res.PlanDesc,
			RowsRead:    res.Stats.RowsRead,
			RowsSent:    res.Stats.RowsSent,
			PageReads:   res.Stats.PageReads,
			SortRows:    res.Stats.SortRows,
			RowsWritten: res.Stats.RowsWritten,
			IndexWrites: res.Stats.IndexWrites,
			CPUSeconds:  res.Stats.CPUSeconds(),
		}, time.Since(start))
	}
	if w := s.collector.Observe(Record{Session: session, Seq: seq, Trace: trace, SQL: sql, Stats: res.Stats}); w != nil {
		select {
		case s.windows <- w:
		default:
			// The tuner is mid-cycle and the queue is full: re-buffer is
			// pointless (the statements were consumed), drop the window and
			// let the next one carry fresher traffic.
		}
	}
	if isSelect {
		return &Response{Tag: TagRows, Columns: res.Columns, Rows: res.Rows}
	}
	return &Response{Tag: TagOK, Affected: res.Stats.RowsSent}
}

// TuneNow seals the collector's current window and runs one tuning cycle
// synchronously, returning the rendered verdict line. Serialized against
// the background tuner by the tuner's own cycle lock.
func (s *Server) TuneNow() (string, error) {
	w := s.collector.Flush()
	return s.tuner.CycleWindow(w)
}

// Shutdown drains the server: stop accepting, let every session finish its
// in-flight statement and response, then close. Sessions blocked waiting
// for a client frame are woken by an immediate read deadline and exit on
// the drain flag. Returns an error when the drain deadline forced
// connections closed; a nil return is a clean drain. The observed drain
// wall-clock lands in server.drain_seconds.
func (s *Server) Shutdown() error {
	start := time.Now()
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.ln.Close()
	<-s.closed
	// Wake sessions parked in ReadFrame: the expired deadline errors the
	// read, and the drain flag stops the loop before the next one.
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	s.mu.Unlock()

	timeout := s.opts.DrainTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	done := make(chan struct{})
	go func() {
		s.sessions.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		n := len(s.conns)
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		forced = fmt.Errorf("server: drain timeout forced %d connections closed", n)
	}
	// Final partial window: observed traffic the auto-seal had not reached
	// yet still gets one last cycle, so a drained daemon leaves no
	// unconsidered statements behind. Manual-window servers (OpTune-driven)
	// skip this — their operator owns cycle boundaries.
	close(s.windows)
	s.tunerWG.Wait()
	if s.opts.WindowStatements > 0 {
		if w := s.collector.Flush(); w != nil {
			if _, err := s.tuner.CycleWindow(w); err != nil && forced == nil {
				forced = err
			}
		}
	}
	if s.drainHist != nil {
		s.drainHist.Observe(time.Since(start).Seconds())
	}
	s.db.SetCloneGate(nil)
	return forced
}
