package server

import (
	"fmt"
	"strings"
	"sync"

	"aim/internal/audit"
	"aim/internal/catalog"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/obs"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/sqlparser"
	"aim/internal/workload"
)

// Tuner runs the continuous-tuning cycle against the serving database, fed
// by sealed collector windows instead of a replayed workload file. The
// per-cycle ordering is the same safety contract the fault and scenario
// suites assert on the batch loop (experiments.Loop): recommend, filter
// cooldowns, gate every creation through shadow validation or change
// nothing, apply, then let the regression detector revert. An
// accepted-but-degraded verdict is the one fatal error — it would be an
// ungated adoption.
//
// Locking: the tuner shares the server's statement gate. Recommending and
// observing hold the read side (stats collection must not race live DML);
// applying and reverting hold the write side; snapshot creation inside
// shadow validation serializes through the engine's clone gate (see
// engine.DB.SetCloneGate), so replays run against frozen snapshots while
// live client traffic proceeds.
type Tuner struct {
	DB       *engine.DB
	Adv      *core.Advisor
	Detector *regression.Detector
	Gate     shadow.Gate
	// Exec is the server's statement gate; nil means the caller already
	// serializes (offline replay).
	Exec *sync.RWMutex
	// OnReport, when set, receives every shadow verdict (telemetry hook).
	OnReport func(*shadow.Report)

	mu sync.Mutex // serializes cycles (background seals vs OpTune)

	Cycles              int
	Adoptions           int
	ApplyFailures       int
	DegradedValidations int
	Reverted            int
	verdicts            []string

	tuneCycles *obs.Counter // server.tune_cycles
}

// Instrument attaches the tuner's counters to r.
func (t *Tuner) Instrument(r *obs.Registry) {
	if r != nil {
		t.tuneCycles = r.Counter("server.tune_cycles")
	}
}

// CycleWindow builds the window's monitor from a sealed (sorted) record
// slice and runs one tuning cycle. Statements are fed to the monitor in the
// canonical window order, so the resulting recommendation is byte-identical
// to an offline replay of the same stream. When the serving database has an
// audit journal attached, the window itself is journaled first (one
// EventWindow record mapping normalized queries to live statement IDs), so
// every decision record of the cycle can be traced back to the statements
// that drove it.
func (t *Tuner) CycleWindow(w []Record) (string, error) {
	mon := workload.NewMonitor()
	var queries []audit.WindowQuery
	index := map[string]int{} // normalized query -> queries slot
	for i := range w {
		rec := &w[i]
		// A statement that executed successfully always re-parses; a failure
		// here means the collector was fed garbage.
		stmt, err := sqlparser.Parse(rec.SQL)
		if err != nil {
			return "", fmt.Errorf("server: window record: %v", err)
		}
		if err := mon.RecordStmt(stmt, rec.Stats); err != nil {
			return "", fmt.Errorf("server: window record: %v", err)
		}
		norm, _ := sqlparser.Normalize(stmt)
		slot, ok := index[norm]
		if !ok {
			slot = len(queries)
			index[norm] = slot
			queries = append(queries, audit.WindowQuery{Query: norm})
		}
		q := &queries[slot]
		q.Count++
		if len(q.Statements) < audit.MaxWindowStatements {
			id := rec.Trace
			if id == "" {
				id = fmt.Sprintf("%s#%d", rec.Session, rec.Seq)
			}
			q.Statements = append(q.Statements, id)
		}
	}
	return t.cycle(mon, queries)
}

// Cycle runs one tuning cycle over an observed window and returns a short
// rendered verdict line. The error path is reserved for invariant
// violations (an ungated adoption); operational failures degrade to "no
// change this cycle" exactly like the batch loop.
func (t *Tuner) Cycle(mon *workload.Monitor) (string, error) {
	return t.cycle(mon, nil)
}

// cycle is the locked cycle body. windowQueries, when non-nil, is journaled
// as an EventWindow record before any decision record of this cycle — under
// the cycle lock, so the journal's window → candidate → shadow → adopt
// ordering is deterministic.
func (t *Tuner) cycle(mon *workload.Monitor, windowQueries []audit.WindowQuery) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cycle := t.Cycles
	t.Cycles++
	if t.tuneCycles != nil {
		t.tuneCycles.Inc()
	}
	if len(windowQueries) > 0 {
		t.DB.AuditJournal().Append(&audit.Record{
			Event:   audit.EventWindow,
			Cycle:   int64(cycle),
			Queries: windowQueries,
		})
	}

	t.rlock()
	rec, err := t.Adv.Recommend(mon)
	t.runlock()
	if err != nil {
		return "", fmt.Errorf("server: recommend: %v", err)
	}

	create := rec.Create
	if t.Detector != nil {
		kept := make([]*catalog.Index, 0, len(create))
		for _, ix := range create {
			if t.Detector.InCooldown(ix.Key()) {
				continue
			}
			kept = append(kept, ix)
		}
		create = kept
	}

	verdict := "no_candidates"
	if len(create) > 0 {
		// Validation clones through the engine's clone gate (write-side of
		// the statement gate when serving), then replays on frozen COW
		// snapshots with no server lock held: live traffic continues.
		report, err := shadow.Validate(t.DB, create, mon, t.Gate)
		if err != nil {
			return "", fmt.Errorf("server: validate: %v", err)
		}
		if t.OnReport != nil {
			t.OnReport(report)
		}
		if report.Accepted && report.Degraded {
			return "", fmt.Errorf("server: degraded verdict accepted: %s", report.Reason)
		}
		if report.Degraded {
			t.DegradedValidations++
		}
		verdict = fmt.Sprintf("%s[%s]", report.Verdict(), report.Code)
		if report.Accepted {
			t.lock()
			_, err := t.Adv.Apply(&core.Recommendation{Create: create})
			t.unlock()
			if err != nil {
				t.ApplyFailures++
				verdict += " apply_failed"
			} else {
				t.Adoptions++
				verdict += " adopted=" + strings.Join(indexKeys(create), ",")
			}
		}
	}

	reverted := 0
	if t.Detector != nil {
		t.rlock()
		regs := t.Detector.Observe(t.DB, mon)
		t.runlock()
		if len(regs) > 0 {
			t.lock()
			keys := t.Detector.Revert(t.DB, regs)
			t.unlock()
			reverted = len(keys)
			t.Reverted += reverted
			if reverted > 0 {
				verdict += " reverted=" + strings.Join(keys, ",")
			}
		}
	}

	line := fmt.Sprintf("cycle %d: stmts=%d queries=%d %s", cycle, statementCount(mon), mon.Len(), verdict)
	t.verdicts = append(t.verdicts, line)
	return line, nil
}

// Verdicts returns the rendered per-cycle verdict lines so far.
func (t *Tuner) Verdicts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.verdicts...)
}

func (t *Tuner) rlock() {
	if t.Exec != nil {
		t.Exec.RLock()
	}
}
func (t *Tuner) runlock() {
	if t.Exec != nil {
		t.Exec.RUnlock()
	}
}
func (t *Tuner) lock() {
	if t.Exec != nil {
		t.Exec.Lock()
	}
}
func (t *Tuner) unlock() {
	if t.Exec != nil {
		t.Exec.Unlock()
	}
}

func statementCount(mon *workload.Monitor) int64 {
	var n int64
	for _, q := range mon.Queries() {
		n += q.Executions
	}
	return n
}

func indexKeys(ixs []*catalog.Index) []string {
	out := make([]string, len(ixs))
	for i, ix := range ixs {
		out[i] = ix.Key()
	}
	return out
}
