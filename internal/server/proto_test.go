package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"aim/internal/audit"
	"aim/internal/obs"
)

// TestProtocolV2Negotiation: a v2 client against a v2 server learns the
// version from Hello, sends traced queries, and the trace IDs land on the
// collector records.
func TestProtocolV2Negotiation(t *testing.T) {
	s, addr := startTestServer(t, Options{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Version(); got != 0 {
		t.Fatalf("version before hello = %d", got)
	}
	if err := c.Hello("lg-0001"); err != nil {
		t.Fatal(err)
	}
	if got := c.Version(); got != ProtoVersion {
		t.Fatalf("negotiated version = %d, want %d", got, ProtoVersion)
	}
	if _, err := c.QueryTraced("t-0001-0-1", "SELECT v FROM kv WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryTraced("", "SELECT v FROM kv WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	w := s.Collector().Flush()
	if len(w) != 2 {
		t.Fatalf("window = %d records", len(w))
	}
	if w[0].Trace != "t-0001-0-1" || w[0].Session != "lg-0001" || w[0].Seq != 1 {
		t.Fatalf("traced record = %+v", w[0])
	}
	if w[1].Trace != "" {
		t.Fatalf("untraced record carries trace: %+v", w[1])
	}
}

// TestProtocolOldClientNewServer drives a new server with raw v1 frames —
// exactly the bytes an old client emits — and checks every response is
// what a v1 client expects. The only observable difference is the hello
// Affected field, which v1 clients never read.
func TestProtocolOldClientNewServer(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rt := func(req Request) *Response {
		t.Helper()
		conn.SetDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		if err := WriteFrame(conn, EncodeRequest(req)); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(conn, MaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := rt(Request{Op: OpHello, SQL: "old-client"}); resp.Tag != TagOK {
		t.Fatalf("hello tag = %c", resp.Tag)
	}
	if resp := rt(Request{Op: OpPing}); resp.Tag != TagPong {
		t.Fatalf("ping tag = %c", resp.Tag)
	}
	resp := rt(Request{Op: OpQuery, SQL: "SELECT v FROM kv WHERE id = 3"})
	if resp.Tag != TagRows || len(resp.Rows) != 1 || resp.Rows[0][0].Int() != 9 {
		t.Fatalf("v1 query response = %+v", resp)
	}
	if resp := rt(Request{Op: OpQuery, SQL: "UPDATE kv SET v = 5 WHERE id = 3"}); resp.Tag != TagOK {
		t.Fatalf("v1 DML response = %+v", resp)
	}
}

// startV1Server is a faithful v1-only stub: it speaks the original frame
// set and rejects v2 opcodes with the unknown-opcode error a v1 binary
// produces, and never sets Affected on hello.
func startV1Server(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					payload, err := ReadFrame(conn, MaxFrame)
					if err != nil {
						return
					}
					var resp *Response
					switch payload[0] {
					case OpHello:
						resp = &Response{Tag: TagOK} // v1: Affected never set
					case OpPing:
						resp = &Response{Tag: TagPong}
					case OpQuery:
						resp = &Response{Tag: TagOK, Affected: 1}
					default:
						resp = &Response{Tag: TagError, Code: CodeBadFrame,
							Msg: "server: unknown opcode"}
					}
					if WriteFrame(conn, EncodeResponse(resp)) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestProtocolNewClientOldServer: a v2 client against a v1 server reads
// version 0 from hello and silently falls back to v1 frames — traced
// queries go out as plain Q frames, and the slow-log request fails locally
// instead of confusing the old peer.
func TestProtocolNewClientOldServer(t *testing.T) {
	addr := startV1Server(t)
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("lg-0001"); err != nil {
		t.Fatal(err)
	}
	if got := c.Version(); got != 0 {
		t.Fatalf("version against v1 server = %d, want 0", got)
	}
	// The trace is dropped, not sent: the v1 stub answers plain Q with
	// TagOK, and would have answered 'q' with an error.
	res, err := c.QueryTraced("t-0001-0-1", "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("fallback query result = %+v", res)
	}
	if _, err := c.Slow(); err == nil || !strings.Contains(err.Error(), "v2") {
		t.Fatalf("Slow against v1 server: %v", err)
	}
	// A forced v2 frame is rejected by the old server with its ordinary
	// unknown-opcode error — decoder totality across generations.
	if _, err := c.query(Request{Op: OpQueryTraced, Trace: "t", SQL: "SELECT 1"}); err == nil {
		t.Fatal("v1 server accepted a v2 frame")
	}
}

// TestServerSlowLogCapture wires a SlowLog into the server and checks
// capture plus OpSlow retrieval end-to-end: plan shape, operator stats,
// trace IDs and the slow/sampled split all arrive at the client.
func TestServerSlowLogCapture(t *testing.T) {
	slow := obs.NewSlowLog(32, time.Nanosecond, 0) // everything is "slow"
	reg := obs.NewRegistry()
	slow.Instrument(reg)
	_, addr := startTestServer(t, Options{SlowLog: slow, Obs: reg})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("lg-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryTraced("t-0001-0-1", "SELECT v FROM kv WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	// Parse failures are not executions: they must not reach the log.
	if _, err := c.Query("SELEKT nope"); err == nil {
		t.Fatal("parse error expected")
	}
	entries, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("slow entries = %+v", entries)
	}
	e := entries[0]
	if e.Session != "lg-0001" || e.Seq != 1 || e.Trace != "t-0001-0-1" || !e.Slow {
		t.Fatalf("entry identity = %+v", e)
	}
	if e.SQL != "SELECT v FROM kv WHERE id = 7" || len(e.Plan) == 0 {
		t.Fatalf("entry payload = %+v", e)
	}
	if e.RowsRead == 0 || e.RowsSent != 1 || e.LatencySeconds <= 0 {
		t.Fatalf("entry stats = %+v", e)
	}
	if got := reg.Snapshot().Counters["slowlog.slow"]; got != 1 {
		t.Fatalf("slowlog.slow = %d", got)
	}
}

// TestTunerJournalsWindowEvents: a tuning cycle over a sealed live window
// writes one EventWindow record (before the cycle's decision records)
// mapping normalized queries to the trace IDs / session#seq of the live
// statements, in canonical window order.
func TestTunerJournalsWindowEvents(t *testing.T) {
	var sb strings.Builder
	jrn := audit.New(&sb)
	s, addr := startTestServer(t, Options{})
	s.DB().SetAudit(jrn)
	defer s.DB().SetAudit(nil)
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("lg-0001"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryTraced("t-0001-0-1", "SELECT v FROM kv WHERE id = 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryTraced("t-0001-0-2", "SELECT v FROM kv WHERE id = 6"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT v FROM kv WHERE id = 7"); err != nil { // untraced
		t.Fatal(err)
	}
	if _, err := c.Tune(); err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	var win *audit.Record
	for _, r := range recs {
		if r.Event == audit.EventWindow {
			win = r
			break
		}
	}
	if win == nil {
		t.Fatalf("no window record in journal:\n%s", sb.String())
	}
	if win.Seq != 1 {
		t.Errorf("window record not first: seq=%d", win.Seq)
	}
	if len(win.Queries) != 1 {
		t.Fatalf("window queries = %+v", win.Queries)
	}
	q := win.Queries[0]
	if q.Count != 3 || len(q.Statements) != 3 {
		t.Fatalf("window query = %+v", q)
	}
	want := []string{"t-0001-0-1", "t-0001-0-2", "lg-0001#3"}
	for i := range want {
		if q.Statements[i] != want[i] {
			t.Fatalf("statements = %v, want %v", q.Statements, want)
		}
	}
}
