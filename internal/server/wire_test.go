package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"aim/internal/obs"
	"aim/internal/sqltypes"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{0x01},
		[]byte("QSELECT 1"),
		bytes.Repeat([]byte("x"), MaxFrame),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, MaxFrame)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, MaxFrame); err != io.EOF {
		t.Fatalf("EOF between frames must be io.EOF, got %v", err)
	}
}

func TestWriteFrameRejectsBadSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != ErrZeroFrame {
		t.Errorf("zero-length write: got %v, want ErrZeroFrame", err)
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Errorf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Errorf("rejected writes must not emit bytes, wrote %d", buf.Len())
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	hdr := make([]byte, 4) // length 0
	if _, err := ReadFrame(bytes.NewReader(hdr), MaxFrame); err != ErrZeroFrame {
		t.Fatalf("got %v, want ErrZeroFrame", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), MaxFrame); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// A corrupt length prefix must be rejected before any allocation: feed
	// a 4 GiB claim with no body and expect the typed error, instantly.
	binary.BigEndian.PutUint32(hdr[:], 0xFFFFFFFF)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), MaxFrame); err != ErrFrameTooLarge {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncation(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, []byte("Qhello")); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Every proper prefix except the empty one is a truncated frame.
	for cut := 1; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]), MaxFrame)
		if err != ErrTruncatedFrame {
			t.Fatalf("cut at %d/%d: got %v, want ErrTruncatedFrame", cut, len(raw), err)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{Op: OpHello, SQL: "lg-0001"},
		{Op: OpQuery, SQL: "SELECT id FROM events WHERE user_id = 7"},
		{Op: OpTune},
		{Op: OpPing},
		{Op: OpQueryTraced, Trace: "t-0001-2-7", SQL: "SELECT id FROM events WHERE user_id = 7"},
		{Op: OpQueryTraced, Trace: "", SQL: "SELECT 1"}, // trace field present but empty
		{Op: OpQueryTraced, Trace: strings.Repeat("x", MaxTraceID), SQL: "SELECT 1"},
		{Op: OpSlow},
	} {
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("%c: %v", req.Op, err)
		}
		if got != req {
			t.Fatalf("round trip changed %+v into %+v", req, got)
		}
	}
	if _, err := DecodeRequest([]byte{'Z', 'x'}); err == nil {
		t.Fatal("unknown opcode must not decode")
	}
	if _, err := DecodeRequest(nil); err != ErrZeroFrame {
		t.Fatalf("empty request: got %v, want ErrZeroFrame", err)
	}
}

// TestDecodeRequestTracedCorrupt feeds malformed v2 query frames: a cut
// length prefix, a trace claiming more bytes than the payload holds, and a
// trace over the MaxTraceID cap must all yield errors, never a panic.
func TestDecodeRequestTracedCorrupt(t *testing.T) {
	over := []byte{OpQueryTraced}
	over = binary.BigEndian.AppendUint16(over, MaxTraceID+1)
	over = append(over, bytes.Repeat([]byte("t"), MaxTraceID+1)...)
	cases := map[string][]byte{
		"cut length":     {OpQueryTraced, 0},
		"no length":      {OpQueryTraced},
		"trace overrun":  append(binary.BigEndian.AppendUint16([]byte{OpQueryTraced}, 40), 't', 'r'),
		"trace over cap": over,
		"slow with body": {OpSlow, 'x'},
	}
	for name, p := range cases {
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestResponseRoundTripAllKinds(t *testing.T) {
	want := &Response{
		Tag:     TagRows,
		Columns: []string{"id", "name", "score", "ok", "blob", "missing"},
		Rows: []sqltypes.Row{
			{
				sqltypes.NewInt(-42),
				sqltypes.NewString("héllo"),
				sqltypes.NewFloat(3.25),
				sqltypes.NewBool(true),
				sqltypes.NewBytes([]byte{0, 1, 2}),
				sqltypes.Null,
			},
			{
				sqltypes.NewInt(1 << 40),
				sqltypes.NewString(""),
				sqltypes.NewFloat(-0.5),
				sqltypes.NewBool(false),
				sqltypes.NewBytes(nil),
				sqltypes.Null,
			},
		},
	}
	got, err := DecodeResponse(EncodeResponse(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Columns) != len(want.Columns) || len(got.Rows) != len(want.Rows) {
		t.Fatalf("shape changed: %d cols %d rows", len(got.Columns), len(got.Rows))
	}
	for i, row := range want.Rows {
		for j, v := range row {
			g := got.Rows[i][j]
			if g.Kind() != v.Kind() || !sqltypes.Equal(g, v) {
				t.Errorf("row %d col %d: got %s %v, want %s %v", i, j, g.Kind(), g, v.Kind(), v)
			}
		}
	}
}

func TestResponseRoundTripScalars(t *testing.T) {
	for _, want := range []*Response{
		{Tag: TagOK, Affected: 123},
		{Tag: TagOK, Affected: -1},
		{Tag: TagError, Code: CodeDraining, Msg: "server draining"},
		{Tag: TagVerdict, Verdict: "cycle 0: stmts=10 queries=2 accepted[ok]"},
		{Tag: TagPong},
	} {
		got, err := DecodeResponse(EncodeResponse(want))
		if err != nil {
			t.Fatalf("%c: %v", want.Tag, err)
		}
		if got.Affected != want.Affected || got.Code != want.Code || got.Msg != want.Msg || got.Verdict != want.Verdict {
			t.Fatalf("round trip changed %+v into %+v", want, got)
		}
	}
	if err := (&Response{Tag: TagError, Code: CodeExec, Msg: "boom"}).Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("TagError.Err() = %v", err)
	}
	if err := (&Response{Tag: TagOK}).Err(); err != nil {
		t.Fatalf("TagOK.Err() = %v", err)
	}
}

// TestResponseRoundTripSlow pins the TagSlow carrier: entries survive the
// JSON body, an empty log round-trips as an empty (non-nil) slice, and a
// corrupt body errors.
func TestResponseRoundTripSlow(t *testing.T) {
	want := &Response{Tag: TagSlow, Slow: []obs.SlowEntry{
		{Session: "lg-0001", Seq: 3, Trace: "t-0001-0-3", SQL: "SELECT 1",
			Plan: []string{"Scan(kv)"}, RowsRead: 200, LatencySeconds: 0.012, Slow: true},
		{Session: "lg-0002", Seq: 9, SQL: "UPDATE kv SET v = 1 WHERE id = 2", LatencySeconds: 0.0001},
	}}
	got, err := DecodeResponse(EncodeResponse(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Slow) != 2 {
		t.Fatalf("slow round trip changed %+v into %+v", want.Slow, got.Slow)
	}
	e := got.Slow[0]
	if e.Session != "lg-0001" || e.Seq != 3 || e.Trace != "t-0001-0-3" || e.SQL != "SELECT 1" ||
		len(e.Plan) != 1 || e.Plan[0] != "Scan(kv)" || e.RowsRead != 200 ||
		e.LatencySeconds != 0.012 || !e.Slow {
		t.Fatalf("slow fields lost: %+v", e)
	}
	if got.Slow[1].Trace != "" || got.Slow[1].Slow {
		t.Fatalf("slow fields invented: %+v", got.Slow[1])
	}

	empty, err := DecodeResponse(EncodeResponse(&Response{Tag: TagSlow}))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Slow == nil || len(empty.Slow) != 0 {
		t.Fatalf("empty slow log = %+v", empty.Slow)
	}
	if _, err := DecodeResponse([]byte{TagSlow, '{', 'x'}); err == nil {
		t.Fatal("corrupt slow body decoded without error")
	}
}

// TestDecodeResponseCorrupt feeds structurally invalid response payloads;
// every one must produce an error, never a panic or a giant allocation.
func TestDecodeResponseCorrupt(t *testing.T) {
	huge := []byte{TagRows}
	huge = binary.BigEndian.AppendUint16(huge, 1)
	huge = binary.BigEndian.AppendUint32(huge, 0xFFFFFFFF) // column name "length"
	cases := map[string][]byte{
		"empty":               nil,
		"unknown tag":         {0x7F, 1, 2, 3},
		"rows: cut count":     {TagRows, 0},
		"rows: huge string":   huge,
		"rows: row overclaim": append(binary.BigEndian.AppendUint16([]byte{TagRows}, 0), 0, 0, 0, 9, 0, 1), // 9 rows, 2 bytes
		"ok: short body":      {TagOK, 1, 2, 3},
		"pong: trailing":      {TagPong, 1},
		"error: cut code":     {TagError, 0},
	}
	for name, p := range cases {
		if _, err := DecodeResponse(p); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Trailing bytes after a well-formed row block are corruption too.
	good := EncodeResponse(&Response{Tag: TagRows, Columns: []string{"a"}, Rows: []sqltypes.Row{{sqltypes.NewInt(1)}}})
	if _, err := DecodeResponse(append(good, 0xAA)); err == nil {
		t.Error("trailing bytes: decoded without error")
	}
}

// FuzzWireFrame fuzzes both framing layers: arbitrary bytes through
// ReadFrame, and the surviving payloads through the request and response
// decoders. The invariant is totality — any input yields a value or an
// error, with no panics, and anything that decodes as a response re-encodes
// and re-decodes to the same wire image (round-trip stability).
func FuzzWireFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	var seed bytes.Buffer
	WriteFrame(&seed, EncodeRequest(Request{Op: OpQuery, SQL: "SELECT 1"})) //nolint:errcheck
	f.Add(seed.Bytes())
	// v2 frames: a traced query (trace present), a traced query with the
	// trace field empty, and a truncated traced frame (length prefix claims
	// more trace bytes than the payload holds).
	var traced bytes.Buffer
	WriteFrame(&traced, EncodeRequest(Request{Op: OpQueryTraced, Trace: "t-0001-0-1", SQL: "SELECT 1"})) //nolint:errcheck
	f.Add(traced.Bytes())
	var untraced bytes.Buffer
	WriteFrame(&untraced, EncodeRequest(Request{Op: OpQueryTraced, SQL: "SELECT 1"})) //nolint:errcheck
	f.Add(untraced.Bytes())
	var cut bytes.Buffer
	WriteFrame(&cut, append(binary.BigEndian.AppendUint16([]byte{OpQueryTraced}, 200), 'x')) //nolint:errcheck
	f.Add(cut.Bytes())
	var slowReq bytes.Buffer
	WriteFrame(&slowReq, EncodeRequest(Request{Op: OpSlow})) //nolint:errcheck
	f.Add(slowReq.Bytes())
	var slowResp bytes.Buffer
	WriteFrame(&slowResp, EncodeResponse(&Response{Tag: TagSlow, Slow: []obs.SlowEntry{ //nolint:errcheck
		{Session: "s", Seq: 1, Trace: "t", SQL: "SELECT 1", Slow: true},
	}}))
	f.Add(slowResp.Bytes())
	var rows bytes.Buffer
	WriteFrame(&rows, EncodeResponse(&Response{ //nolint:errcheck
		Tag:     TagRows,
		Columns: []string{"id", "v"},
		Rows:    []sqltypes.Row{{sqltypes.NewInt(7), sqltypes.NewString("x")}},
	}))
	f.Add(rows.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), MaxFrame)
		if err != nil {
			// Errors must be the typed framing errors or clean EOF — never a
			// raw short-read leaking through.
			if !errors.Is(err, io.EOF) && err != ErrZeroFrame && err != ErrFrameTooLarge && err != ErrTruncatedFrame {
				t.Fatalf("unexpected framing error type: %v", err)
			}
			return
		}
		if len(payload) == 0 || len(payload) > MaxFrame {
			t.Fatalf("ReadFrame returned %d bytes outside (0, MaxFrame]", len(payload))
		}
		// Whatever decodes must re-encode to a decodable image.
		if req, err := DecodeRequest(payload); err == nil {
			if again, err := DecodeRequest(EncodeRequest(req)); err != nil || again != req {
				t.Fatalf("request round trip diverged: %+v vs %+v (%v)", req, again, err)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			wire := EncodeResponse(resp)
			if _, err := DecodeResponse(wire); err != nil {
				t.Fatalf("re-encoded response stopped decoding: %v", err)
			}
		}
	})
}
