package server

import (
	"sort"
	"sync"

	"aim/internal/exec"
	"aim/internal/obs"
)

// Record is one observed statement: which session executed it, its
// per-session sequence number, the raw SQL, and the execution statistics
// the engine reported. Sessions observe concurrently, so arrival order in
// the buffer is nondeterministic; sealing sorts by (session, seq) to give
// every window one canonical order regardless of goroutine interleaving —
// that is what makes a live window replayable bit-for-bit offline.
type Record struct {
	Session string
	Seq     uint64
	// Trace is the client-supplied trace ID ("" when the statement arrived
	// on a v1 frame). It rides the record into the tuning cycle so the audit
	// journal's window events can name the exact live statements that drove
	// a decision.
	Trace string
	SQL   string
	Stats exec.Stats
}

// Collector buffers the live statement stream into sliding windows for the
// in-process tuner. When Window > 0 it seals automatically every Window
// statements; Flush seals on demand (the OpTune path and the drain path).
// The buffer is bounded: when the tuner falls behind, the oldest
// statements are dropped (counted, never silently) rather than growing
// without bound under sustained overload.
type Collector struct {
	// Window is the auto-seal threshold in statements (0 = manual only).
	Window int
	// MaxBuffered bounds the unsealed buffer (0 = 4×Window, or 4096 when
	// Window is 0).
	MaxBuffered int

	mu  sync.Mutex
	buf []Record

	statements *obs.Counter // server.window_statements
	dropped    *obs.Counter // server.window_dropped
	sealedN    *obs.Counter // server.windows_sealed
}

// NewCollector returns a collector sealing every window statements
// (0 = manual), reporting into r (nil = metrics off).
func NewCollector(window int, r *obs.Registry) *Collector {
	c := &Collector{Window: window}
	if r != nil {
		c.statements = r.Counter("server.window_statements")
		c.dropped = r.Counter("server.window_dropped")
		c.sealedN = r.Counter("server.windows_sealed")
	}
	return c
}

func (c *Collector) maxBuffered() int {
	if c.MaxBuffered > 0 {
		return c.MaxBuffered
	}
	if c.Window > 0 {
		return 4 * c.Window
	}
	return 4096
}

// Observe appends one executed statement and returns a sealed window when
// the auto-seal threshold was reached (nil otherwise). Safe for concurrent
// use by sessions.
func (c *Collector) Observe(rec Record) []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.statements != nil {
		c.statements.Inc()
	}
	c.buf = append(c.buf, rec)
	if max := c.maxBuffered(); len(c.buf) > max {
		over := len(c.buf) - max
		c.buf = append(c.buf[:0], c.buf[over:]...)
		if c.dropped != nil {
			c.dropped.Add(int64(over))
		}
	}
	if c.Window > 0 && len(c.buf) >= c.Window {
		return c.sealLocked()
	}
	return nil
}

// Flush seals and returns everything buffered since the last seal (nil when
// empty).
func (c *Collector) Flush() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.buf) == 0 {
		return nil
	}
	return c.sealLocked()
}

// Buffered reports the number of unsealed statements.
func (c *Collector) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

func (c *Collector) sealLocked() []Record {
	w := c.buf
	c.buf = nil
	if c.sealedN != nil {
		c.sealedN.Inc()
	}
	SortWindow(w)
	return w
}

// SortWindow orders a sealed window canonically: by session label, then by
// the session's own statement sequence. Within one session, seq order is
// the order the client issued statements; across sessions, the label order
// stands in for arrival order so the window is interleaving-independent.
func SortWindow(w []Record) {
	sort.Slice(w, func(i, j int) bool {
		if w[i].Session != w[j].Session {
			return w[i].Session < w[j].Session
		}
		return w[i].Seq < w[j].Seq
	})
}
