// Package server is the network face of AIM: a long-running TCP daemon
// (`aimd`) speaking a simple length-prefixed wire protocol — one SQL
// statement per frame, responses carrying rows, an affected-count, or a
// typed error — with per-connection sessions, a bounded accept/worker
// model, per-frame read/write deadlines, and graceful drain.
//
// The continuous-tuning advisor runs in-process against the *live*
// statement stream: every successfully executed statement is observed by a
// window collector, and each sealed window drives one advisor →
// shadow-gate → regression-detector cycle against the serving database —
// the deployment shape of the paper (§VI), where AIM tunes production
// traffic rather than a pre-recorded workload file.
//
// This file is the wire layer. A frame is a 4-byte big-endian payload
// length followed by the payload; zero-length and oversized frames are
// protocol errors. Request payloads start with a one-byte opcode; response
// payloads with a one-byte tag. All multi-byte integers are big-endian.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"aim/internal/obs"
	"aim/internal/sqltypes"
)

// MaxFrame is the largest payload either side accepts. Large enough for any
// realistic statement or result page, small enough that a corrupt length
// prefix cannot make the reader allocate gigabytes.
const MaxFrame = 1 << 20

// ProtoVersion is the protocol this build speaks. Version history:
//
//	1 — the original frame set (H/Q/T/P).
//	2 — adds OpQueryTraced ('q', a Q frame carrying a client trace ID) and
//	    OpSlow/TagSlow (slow-query log retrieval).
//
// Negotiation is server-advertised: the OpHello response's Affected field
// carries the server's ProtoVersion. A v1 server never sets Affected (the
// field decodes as 0), so a new client talking to an old server reads 0 and
// stays on the v1 frame set; an old client never reads Affected at all, so
// a new server's advertisement is invisible to it. Frames themselves are
// unversioned — a v2 frame is just a new opcode a v1 peer would reject with
// its ordinary unknown-opcode error.
const ProtoVersion = 2

// MaxTraceID caps the client-supplied trace ID carried by OpQueryTraced.
// Trace IDs are identifiers, not payloads; the cap keeps a hostile client
// from using the trace field as a memory amplifier in the slow log and the
// audit journal.
const MaxTraceID = 128

// Request opcodes.
const (
	// OpHello declares the session label (body: label bytes). Clients that
	// need deterministic statement attribution (the loadgen fleet) send it
	// first; sessions without a hello get an accept-order label.
	OpHello = byte('H')
	// OpQuery executes one SQL statement (body: SQL text).
	OpQuery = byte('Q')
	// OpTune seals the collector's current window and runs one tuning cycle
	// synchronously (empty body). The response carries the cycle verdict.
	OpTune = byte('T')
	// OpPing is a liveness round-trip (empty body).
	OpPing = byte('P')
	// OpQueryTraced (v2) executes one SQL statement with a client-supplied
	// trace ID (body: u16 trace length | trace bytes | SQL text). Identical
	// to OpQuery in every other respect; a client that negotiated v1 must
	// send OpQuery instead.
	OpQueryTraced = byte('q')
	// OpSlow (v2) requests the server's slow-query log (empty body). The
	// response is TagSlow.
	OpSlow = byte('S')
)

// Response tags.
const (
	// TagRows carries a SELECT result: columns and fully typed rows.
	TagRows = byte('R')
	// TagOK carries the affected-row count of a DML/DDL statement.
	TagOK = byte('K')
	// TagError carries a typed error (code + message).
	TagError = byte('E')
	// TagVerdict carries the rendered outcome of an OpTune cycle.
	TagVerdict = byte('V')
	// TagPong answers OpPing.
	TagPong = byte('O')
	// TagSlow (v2) answers OpSlow with the slow-query log as a JSON array
	// of obs.SlowEntry.
	TagSlow = byte('L')
)

// Wire error codes carried by TagError responses.
const (
	CodeParse    uint16 = 1 // statement failed to parse
	CodeExec     uint16 = 2 // statement failed during execution
	CodeBadFrame uint16 = 3 // malformed or oversized request frame
	CodeDraining uint16 = 4 // server is draining; no new statements
	CodeTune     uint16 = 5 // tuning cycle failed
)

// Framing errors. ReadFrame wraps io errors from short reads as
// ErrTruncatedFrame so callers can distinguish a half-written frame from a
// clean EOF between frames.
var (
	ErrFrameTooLarge  = errors.New("server: frame exceeds MaxFrame")
	ErrZeroFrame      = errors.New("server: zero-length frame")
	ErrTruncatedFrame = errors.New("server: truncated frame")
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return ErrZeroFrame
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting zero-length frames
// and frames larger than max (max <= 0 means MaxFrame). A clean EOF before
// the first header byte returns io.EOF; EOF mid-frame returns
// ErrTruncatedFrame.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF between frames is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, truncated(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, ErrZeroFrame
	}
	if n > uint32(max) {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, truncated(err)
	}
	return payload, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrTruncatedFrame
	}
	return err
}

// Request is one decoded client frame.
type Request struct {
	Op byte
	// SQL is the statement text (OpQuery, OpQueryTraced) or the session
	// label (OpHello).
	SQL string
	// Trace is the client-supplied trace ID (OpQueryTraced only; "" on every
	// v1 opcode).
	Trace string
}

// EncodeRequest renders a request payload (opcode + body).
func EncodeRequest(req Request) []byte {
	if req.Op == OpQueryTraced {
		out := make([]byte, 0, 3+len(req.Trace)+len(req.SQL))
		out = append(out, OpQueryTraced)
		out = binary.BigEndian.AppendUint16(out, uint16(len(req.Trace)))
		out = append(out, req.Trace...)
		return append(out, req.SQL...)
	}
	out := make([]byte, 0, 1+len(req.SQL))
	out = append(out, req.Op)
	return append(out, req.SQL...)
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) == 0 {
		return Request{}, ErrZeroFrame
	}
	switch p[0] {
	case OpHello, OpQuery, OpTune, OpPing:
		return Request{Op: p[0], SQL: string(p[1:])}, nil
	case OpQueryTraced:
		n, rest, err := takeUint16(p[1:])
		if err != nil {
			return Request{}, err
		}
		if n > MaxTraceID {
			return Request{}, fmt.Errorf("server: trace ID length %d exceeds %d", n, MaxTraceID)
		}
		if int(n) > len(rest) {
			return Request{}, fmt.Errorf("server: trace ID length %d exceeds payload", n)
		}
		return Request{Op: OpQueryTraced, Trace: string(rest[:n]), SQL: string(rest[n:])}, nil
	case OpSlow:
		if len(p) != 1 {
			return Request{}, fmt.Errorf("server: slow request carries no body")
		}
		return Request{Op: OpSlow}, nil
	default:
		return Request{}, fmt.Errorf("server: unknown opcode 0x%02x", p[0])
	}
}

// Response is one decoded server frame.
type Response struct {
	Tag     byte
	Columns []string       // TagRows
	Rows    []sqltypes.Row // TagRows
	// Affected is the row count a DML statement touched (TagOK).
	Affected int64
	// Code and Msg describe a TagError; Verdict carries TagVerdict text.
	Code    uint16
	Msg     string
	Verdict string
	// Slow carries the slow-query log (TagSlow).
	Slow []obs.SlowEntry
}

// Err converts a TagError response into a Go error (nil for other tags).
func (r *Response) Err() error {
	if r.Tag != TagError {
		return nil
	}
	return fmt.Errorf("server: remote error %d: %s", r.Code, r.Msg)
}

// EncodeResponse renders a response payload (tag + body).
func EncodeResponse(resp *Response) []byte {
	switch resp.Tag {
	case TagRows:
		// u16 ncols | cols | u32 nrows | rows, values fully typed so the
		// client round-trips exactly what the engine produced.
		out := []byte{TagRows}
		out = binary.BigEndian.AppendUint16(out, uint16(len(resp.Columns)))
		for _, c := range resp.Columns {
			out = appendString(out, c)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(resp.Rows)))
		for _, row := range resp.Rows {
			out = binary.BigEndian.AppendUint16(out, uint16(len(row)))
			for _, v := range row {
				out = appendValue(out, v)
			}
		}
		return out
	case TagOK:
		out := []byte{TagOK}
		return binary.BigEndian.AppendUint64(out, uint64(resp.Affected))
	case TagError:
		out := []byte{TagError}
		out = binary.BigEndian.AppendUint16(out, resp.Code)
		return append(out, resp.Msg...)
	case TagVerdict:
		return append([]byte{TagVerdict}, resp.Verdict...)
	case TagPong:
		return []byte{TagPong}
	case TagSlow:
		// Slow-log entries are an ops payload, not a hot path: JSON keeps the
		// frame self-describing and lets aimctl render it without a second
		// schema. A nil log encodes as an empty array.
		entries := resp.Slow
		if entries == nil {
			entries = []obs.SlowEntry{}
		}
		body, err := json.Marshal(entries)
		if err != nil {
			return append([]byte{TagError}, fmt.Sprintf("\x00\x02slow encode: %v", err)...)
		}
		return append([]byte{TagSlow}, body...)
	default:
		return append([]byte{TagError}, fmt.Sprintf("\x00\x00bad tag %d", resp.Tag)...)
	}
}

// DecodeResponse parses a response payload. Every length and count is
// validated against the remaining payload, so a corrupt or adversarial
// frame yields an error, never a panic or an oversized allocation.
func DecodeResponse(p []byte) (*Response, error) {
	if len(p) == 0 {
		return nil, ErrZeroFrame
	}
	resp := &Response{Tag: p[0]}
	body := p[1:]
	switch resp.Tag {
	case TagRows:
		ncols, rest, err := takeUint16(body)
		if err != nil {
			return nil, err
		}
		cols := make([]string, 0, ncols)
		for i := 0; i < int(ncols); i++ {
			var s string
			if s, rest, err = takeString(rest); err != nil {
				return nil, err
			}
			cols = append(cols, s)
		}
		resp.Columns = cols
		nrowsU, rest, err := takeUint32(rest)
		if err != nil {
			return nil, err
		}
		nrows := int(nrowsU)
		// Each row costs at least the 2-byte width prefix; anything claiming
		// more rows than the payload could hold is corrupt.
		if nrows > len(rest)/2 {
			return nil, fmt.Errorf("server: row count %d exceeds payload", nrows)
		}
		rows := make([]sqltypes.Row, 0, nrows)
		for i := 0; i < nrows; i++ {
			var width uint16
			if width, rest, err = takeUint16(rest); err != nil {
				return nil, err
			}
			if int(width) > len(rest) {
				return nil, fmt.Errorf("server: row width %d exceeds payload", width)
			}
			row := make(sqltypes.Row, 0, width)
			for j := 0; j < int(width); j++ {
				var v sqltypes.Value
				if v, rest, err = takeValue(rest); err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			rows = append(rows, row)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("server: %d trailing bytes after rows", len(rest))
		}
		resp.Rows = rows
		return resp, nil
	case TagOK:
		if len(body) != 8 {
			return nil, fmt.Errorf("server: OK body must be 8 bytes, got %d", len(body))
		}
		resp.Affected = int64(binary.BigEndian.Uint64(body))
		return resp, nil
	case TagError:
		code, rest, err := takeUint16(body)
		if err != nil {
			return nil, err
		}
		resp.Code = code
		resp.Msg = string(rest)
		return resp, nil
	case TagVerdict:
		resp.Verdict = string(body)
		return resp, nil
	case TagPong:
		if len(body) != 0 {
			return nil, fmt.Errorf("server: pong carries no body")
		}
		return resp, nil
	case TagSlow:
		entries := []obs.SlowEntry{}
		if err := json.Unmarshal(body, &entries); err != nil {
			return nil, fmt.Errorf("server: slow body: %v", err)
		}
		resp.Slow = entries
		return resp, nil
	default:
		return nil, fmt.Errorf("server: unknown response tag 0x%02x", resp.Tag)
	}
}

// Value encoding: one kind byte, then a kind-specific payload. NULL has no
// payload; bools are one byte; ints and float bit patterns are 8 bytes;
// strings and bytes are u32-length-prefixed.
func appendValue(dst []byte, v sqltypes.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case sqltypes.KindNull:
		return dst
	case sqltypes.KindInt:
		return binary.BigEndian.AppendUint64(dst, uint64(v.Int()))
	case sqltypes.KindFloat:
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.Float()))
	case sqltypes.KindBool:
		if v.Bool() {
			return append(dst, 1)
		}
		return append(dst, 0)
	default: // KindString, KindBytes
		return appendString(dst, v.Str())
	}
}

func takeValue(p []byte) (sqltypes.Value, []byte, error) {
	if len(p) == 0 {
		return sqltypes.Null, nil, ErrTruncatedFrame
	}
	kind, rest := sqltypes.Kind(p[0]), p[1:]
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null, rest, nil
	case sqltypes.KindInt:
		if len(rest) < 8 {
			return sqltypes.Null, nil, ErrTruncatedFrame
		}
		return sqltypes.NewInt(int64(binary.BigEndian.Uint64(rest))), rest[8:], nil
	case sqltypes.KindFloat:
		if len(rest) < 8 {
			return sqltypes.Null, nil, ErrTruncatedFrame
		}
		return sqltypes.NewFloat(math.Float64frombits(binary.BigEndian.Uint64(rest))), rest[8:], nil
	case sqltypes.KindBool:
		if len(rest) < 1 {
			return sqltypes.Null, nil, ErrTruncatedFrame
		}
		return sqltypes.NewBool(rest[0] != 0), rest[1:], nil
	case sqltypes.KindString:
		s, rest, err := takeString(rest)
		if err != nil {
			return sqltypes.Null, nil, err
		}
		return sqltypes.NewString(s), rest, nil
	case sqltypes.KindBytes:
		s, rest, err := takeString(rest)
		if err != nil {
			return sqltypes.Null, nil, err
		}
		return sqltypes.NewBytes([]byte(s)), rest, nil
	default:
		return sqltypes.Null, nil, fmt.Errorf("server: unknown value kind %d", kind)
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func takeString(p []byte) (string, []byte, error) {
	n, rest, err := takeUint32(p)
	if err != nil {
		return "", nil, err
	}
	if uint64(n) > uint64(len(rest)) {
		return "", nil, fmt.Errorf("server: string length %d exceeds payload", n)
	}
	return string(rest[:n]), rest[n:], nil
}

func takeUint16(p []byte) (uint16, []byte, error) {
	if len(p) < 2 {
		return 0, nil, ErrTruncatedFrame
	}
	return binary.BigEndian.Uint16(p), p[2:], nil
}

func takeUint32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, ErrTruncatedFrame
	}
	return binary.BigEndian.Uint32(p), p[4:], nil
}
