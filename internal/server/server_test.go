package server

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
)

// startTestServer boots a server on an ephemeral loopback port around a
// small fixture and returns it with its address. Cleanup drains it.
func startTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	if opts.DB == nil {
		db := engine.New("servertest")
		db.MustExec(`CREATE TABLE kv (id INT, v INT, PRIMARY KEY (id))`)
		for i := 0; i < 200; i++ {
			db.MustExec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*3))
		}
		db.Analyze()
		opts.DB = db
	}
	s := New(opts)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown() }) //nolint:errcheck
	return s, addr
}

func TestServerQueryAndDML(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("tester"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT v FROM kv WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 21 {
		t.Fatalf("SELECT returned %+v", res.Rows)
	}
	if _, err := c.Query("UPDATE kv SET v = 99 WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query("SELECT v FROM kv WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 99 {
		t.Fatalf("UPDATE not visible: %+v", res.Rows)
	}
	// Typed errors for parse and exec failures, session stays usable after.
	if _, err := c.Query("SELEKT broken"); err == nil || !strings.Contains(err.Error(), "remote error 1") {
		t.Fatalf("parse error: %v", err)
	}
	if _, err := c.Query("SELECT v FROM missing WHERE id = 1"); err == nil || !strings.Contains(err.Error(), "remote error 2") {
		t.Fatalf("exec error: %v", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("session unusable after typed errors: %v", err)
	}
}

// TestServerConcurrentInterleavedSessions runs a mixed fleet — readers and
// one writer session — with interleaved frames on every connection, and
// asserts nothing is lost or cross-wired: each session's responses match
// its own requests.
func TestServerConcurrentInterleavedSessions(t *testing.T) {
	s, addr := startTestServer(t, Options{MaxConns: 32})
	const sessions = 12
	const perSession = 40
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			c, err := Dial(addr, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Hello(fmt.Sprintf("mix-%02d", sid)); err != nil {
				errs <- err
				return
			}
			r := rand.New(rand.NewSource(int64(sid)))
			for i := 0; i < perSession; i++ {
				if sid == 0 && i%4 == 0 {
					// The writer session interleaves DML through the write side
					// of the statement gate.
					if _, err := c.Query(fmt.Sprintf("UPDATE kv SET v = %d WHERE id = %d", i, r.Intn(200))); err != nil {
						errs <- fmt.Errorf("session %d stmt %d: %v", sid, i, err)
						return
					}
					continue
				}
				id := r.Intn(200)
				res, err := c.Query(fmt.Sprintf("SELECT id FROM kv WHERE id = %d", id))
				if err != nil {
					errs <- fmt.Errorf("session %d stmt %d: %v", sid, i, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].Int() != int64(id) {
					errs <- fmt.Errorf("session %d: asked id=%d, got %+v (cross-wired responses?)", sid, id, res.Rows)
					return
				}
			}
		}(sid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain after fleet: %v", err)
	}
}

func TestServerRejectsOversizedAndZeroFrames(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a frame beyond MaxFrame; the server must answer with a typed
	// CodeBadFrame error and cut the session.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(conn, MaxFrame)
	if err != nil {
		t.Fatalf("want typed error response, got read failure %v", err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Tag != TagError || resp.Code != CodeBadFrame {
		t.Fatalf("got %+v, want CodeBadFrame", resp)
	}

	conn2, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(make([]byte, 4)); err != nil { // zero-length frame
		t.Fatal(err)
	}
	payload, err = ReadFrame(conn2, MaxFrame)
	if err != nil {
		t.Fatalf("want typed error response, got read failure %v", err)
	}
	if resp, err := DecodeResponse(payload); err != nil || resp.Code != CodeBadFrame {
		t.Fatalf("zero frame: %+v, %v", resp, err)
	}
}

func TestServerReadDeadlineCutsStalledSession(t *testing.T) {
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{ReadTimeout: 50 * time.Millisecond, Obs: reg})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send half a frame header and stall; the deadline must cut us.
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled session was not cut by the read deadline")
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("server.connections_open").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("connections_open never returned to 0 after the cut")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerDrainingRefusesNewWork(t *testing.T) {
	s, addr := startTestServer(t, Options{})
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The drained listener refuses new connections...
	if _, err := Dial(addr, 200*time.Millisecond); err == nil {
		t.Fatal("dial succeeded after drain")
	}
	// ...and the old session is gone.
	if _, err := c.Query("SELECT v FROM kv WHERE id = 2"); err == nil {
		t.Fatal("statement succeeded on a drained server")
	}
}

func TestServerAutoWindowTunes(t *testing.T) {
	reg := obs.NewRegistry()
	s, addr := startTestServer(t, Options{WindowStatements: 25, Obs: reg})
	c, err := Dial(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		if _, err := c.Query(fmt.Sprintf("SELECT id FROM kv WHERE v = %d", r.Intn(600))); err != nil {
			t.Fatal(err)
		}
	}
	// Two auto windows sealed plus the final partial one on drain.
	if err := s.Shutdown(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.Tuner().Cycles; got < 3 {
		t.Fatalf("tuner ran %d cycles, want >= 3 (2 sealed + drain flush)", got)
	}
	if n := s.Collector().Buffered(); n != 0 {
		t.Fatalf("%d statements left unsealed after drain", n)
	}
	for _, line := range s.Tuner().Verdicts() {
		if strings.HasPrefix(line, "FATAL") {
			t.Fatalf("tuner aborted: %s", line)
		}
	}
}

// TestServerFailpoints arms the two server failpoint sites at 100% and
// checks both degrade exactly as documented: accept refuses the connection
// but keeps listening, read_frame tears the session like a broken socket.
func TestServerFailpoints(t *testing.T) {
	if failpoint.Enabled() {
		t.Skip("failpoints already active")
	}
	fp, err := failpoint.Parse("server.read_frame=err(1.0)", 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, addr := startTestServer(t, Options{Obs: reg})
	failpoint.Activate(fp)
	defer failpoint.Activate(nil)

	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping survived a torn read_frame")
	}
	if got := reg.Counter("server.read_errors").Value(); got == 0 {
		t.Fatal("read_frame failpoint fired but server.read_errors stayed 0")
	}

	// accept failures refuse the connection in flight but keep serving.
	fp2, err := failpoint.Parse("server.accept=err(1.0)", 1)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(fp2)
	if c2, err := Dial(addr, 500*time.Millisecond); err == nil {
		// The dial may complete before the server closes it; the session must
		// be dead either way.
		if err := c2.Ping(); err == nil {
			t.Fatal("session survived an accept failpoint")
		}
		c2.Close()
	}
	failpoint.Activate(nil)
	c3, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("server stopped listening after accept faults: %v", err)
	}
	defer c3.Close()
	if err := c3.Ping(); err != nil {
		t.Fatalf("server unusable after accept faults: %v", err)
	}
	if got := reg.Counter("server.accept_errors").Value(); got == 0 {
		t.Fatal("accept failpoint fired but server.accept_errors stayed 0")
	}
}
