package server

import (
	"fmt"
	"net"
	"time"

	"aim/internal/sqltypes"
)

// Client is a minimal wire-protocol client: one connection, synchronous
// request/response. The load generator and the CLIs use it; it is also the
// reference implementation of the client side of the framing.
type Client struct {
	conn    net.Conn
	timeout time.Duration
}

// Dial connects to an aimd server. timeout bounds each frame round-trip
// (0 = 30 seconds).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %v", addr, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// roundTrip sends one request frame and reads one response frame.
func (c *Client) roundTrip(req Request) (*Response, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	if err := WriteFrame(c.conn, EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.conn, MaxFrame)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}

// Hello declares the session label (deterministic window attribution).
func (c *Client) Hello(label string) error {
	resp, err := c.roundTrip(Request{Op: OpHello, SQL: label})
	if err != nil {
		return err
	}
	return resp.Err()
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Tag != TagPong {
		return resp.Err()
	}
	return nil
}

// Result is the client-side outcome of one statement.
type Result struct {
	Columns  []string
	Rows     []sqltypes.Row
	Affected int64
}

// Query executes one SQL statement. Server-side statement failures come
// back as errors carrying the remote code and message.
func (c *Client) Query(sql string) (*Result, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, SQL: sql})
	if err != nil {
		return nil, err
	}
	switch resp.Tag {
	case TagRows:
		return &Result{Columns: resp.Columns, Rows: resp.Rows}, nil
	case TagOK:
		return &Result{Affected: resp.Affected}, nil
	default:
		return nil, resp.Err()
	}
}

// Tune seals the server's current window and runs one tuning cycle,
// returning the rendered verdict line.
func (c *Client) Tune() (string, error) {
	resp, err := c.roundTrip(Request{Op: OpTune})
	if err != nil {
		return "", err
	}
	if resp.Tag != TagVerdict {
		return "", resp.Err()
	}
	return resp.Verdict, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
