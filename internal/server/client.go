package server

import (
	"fmt"
	"net"
	"time"

	"aim/internal/obs"
	"aim/internal/sqltypes"
)

// Client is a minimal wire-protocol client: one connection, synchronous
// request/response. The load generator and the CLIs use it; it is also the
// reference implementation of the client side of the framing.
type Client struct {
	conn    net.Conn
	timeout time.Duration
	// version is the server's advertised protocol version, learned from the
	// Hello response (0 until Hello succeeds — v1 framing assumed).
	version int64
}

// Dial connects to an aimd server. timeout bounds each frame round-trip
// (0 = 30 seconds).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %v", addr, err)
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// roundTrip sends one request frame and reads one response frame.
func (c *Client) roundTrip(req Request) (*Response, error) {
	c.conn.SetDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	if err := WriteFrame(c.conn, EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(c.conn, MaxFrame)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}

// Hello declares the session label (deterministic window attribution) and
// learns the server's protocol version from the response: a v2 server
// advertises ProtoVersion in Affected, a v1 server leaves it 0. The hello
// frame itself is unchanged from v1, so the exchange is safe against any
// server generation.
func (c *Client) Hello(label string) error {
	resp, err := c.roundTrip(Request{Op: OpHello, SQL: label})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	c.version = resp.Affected
	return nil
}

// Version returns the server's advertised protocol version (0 before Hello,
// or against a v1 server).
func (c *Client) Version() int64 { return c.version }

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	resp, err := c.roundTrip(Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Tag != TagPong {
		return resp.Err()
	}
	return nil
}

// Result is the client-side outcome of one statement.
type Result struct {
	Columns  []string
	Rows     []sqltypes.Row
	Affected int64
}

// Query executes one SQL statement. Server-side statement failures come
// back as errors carrying the remote code and message.
func (c *Client) Query(sql string) (*Result, error) {
	return c.query(Request{Op: OpQuery, SQL: sql})
}

// QueryTraced executes one SQL statement carrying a client trace ID. When
// the server negotiated v1 (or Hello was never sent) the trace is dropped
// and the statement goes out as a plain v1 Query — old servers see exactly
// the frames they always did. Trace IDs longer than MaxTraceID are
// truncated rather than rejected: an oversized ID is an annotation problem,
// not a reason to fail the statement.
func (c *Client) QueryTraced(trace, sql string) (*Result, error) {
	if c.version < 2 || trace == "" {
		return c.Query(sql)
	}
	if len(trace) > MaxTraceID {
		trace = trace[:MaxTraceID]
	}
	return c.query(Request{Op: OpQueryTraced, Trace: trace, SQL: sql})
}

func (c *Client) query(req Request) (*Result, error) {
	resp, err := c.roundTrip(req)
	if err != nil {
		return nil, err
	}
	switch resp.Tag {
	case TagRows:
		return &Result{Columns: resp.Columns, Rows: resp.Rows}, nil
	case TagOK:
		return &Result{Affected: resp.Affected}, nil
	default:
		return nil, resp.Err()
	}
}

// Slow retrieves the server's slow-query log (v2; errors against a v1
// server, which cannot answer the opcode).
func (c *Client) Slow() ([]obs.SlowEntry, error) {
	if c.version < 2 {
		return nil, fmt.Errorf("server: peer speaks protocol v%d; slow log needs v2", c.version)
	}
	resp, err := c.roundTrip(Request{Op: OpSlow})
	if err != nil {
		return nil, err
	}
	if resp.Tag != TagSlow {
		return nil, resp.Err()
	}
	return resp.Slow, nil
}

// Tune seals the server's current window and runs one tuning cycle,
// returning the rendered verdict line.
func (c *Client) Tune() (string, error) {
	resp, err := c.roundTrip(Request{Op: OpTune})
	if err != nil {
		return "", err
	}
	if resp.Tag != TagVerdict {
		return "", resp.Err()
	}
	return resp.Verdict, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
