package server

import (
	"fmt"
	"os"
	"testing"
	"time"

	"aim/internal/obs"
)

// TestRecorderOverheadSmoke checks that the full query flight recorder —
// registry spans, slow-query capture with sampling, trace IDs on every
// statement and a live time-series ticker — stays within 5% of a bare
// server on the statement round-trip path, plus absolute slack for timer
// noise. This is the serving-path analogue of the advisor-side
// TestMetricsOverheadSmoke; env-gated like its siblings because wall-clock
// comparisons are machine-sensitive (invoked by `make metricssmoke`).
func TestRecorderOverheadSmoke(t *testing.T) {
	if os.Getenv("AIM_METRICS_SMOKE") == "" {
		t.Skip("set AIM_METRICS_SMOKE=1 to run (invoked by make metricssmoke)")
	}
	const stmts = 400

	dial := func(addr string) *Client {
		t.Helper()
		c, err := Dial(addr, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.Hello("smoke"); err != nil {
			t.Fatal(err)
		}
		return c
	}

	_, plainAddr := startTestServer(t, Options{})
	plain := dial(plainAddr)

	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(256, time.Hour, 10)
	slow.Instrument(reg)
	series := obs.NewTimeSeries(reg, 64)
	stop := series.Start(5 * time.Millisecond)
	defer stop()
	_, fullAddr := startTestServer(t, Options{Obs: reg, SlowLog: slow})
	full := dial(fullAddr)

	timeRun := func(c *Client, traced bool) time.Duration {
		t.Helper()
		start := time.Now()
		for i := 0; i < stmts; i++ {
			sql := fmt.Sprintf("SELECT v FROM kv WHERE id = %d", i%200)
			var err error
			if traced {
				_, err = c.QueryTraced(fmt.Sprintf("t-0000-0-%d", i), sql)
			} else {
				_, err = c.Query(sql)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	// Warm both paths (plan caches, connection buffers) before timing, then
	// interleave best-of-N so ambient machine noise hits both variants.
	timeRun(plain, false)
	timeRun(full, true)
	const rounds = 5
	bestPlain, bestFull := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d := timeRun(plain, false); d < bestPlain {
			bestPlain = d
		}
		if d := timeRun(full, true); d < bestFull {
			bestFull = d
		}
	}

	if got := reg.Snapshot().Counters["slowlog.observed"]; got == 0 {
		t.Fatal("recorder was not actually capturing (slowlog.observed = 0)")
	}
	limit := bestPlain + bestPlain/20 + 20*time.Millisecond
	t.Logf("plain=%v recorder=%v limit=%v", bestPlain, bestFull, limit)
	if bestFull > limit {
		t.Errorf("recorder-on run %v exceeds %v (plain %v + 5%% + 20ms slack)",
			bestFull, limit, bestPlain)
	}
}
