package failpoint

import (
	"strings"
	"testing"
)

// FuzzFailpointSpec feeds arbitrary strings through the spec parser: it
// must never panic, and any spec it accepts must (a) survive a full
// evaluation pass over its sites without panicking (panic actions excepted
// by construction below) and (b) stay accepted after a parse→re-Set round
// trip of the same entries.
func FuzzFailpointSpec(f *testing.F) {
	f.Add("shadow.clone=err(0.05);replay.query=delay(10ms,0.1)")
	f.Add("a.b=err()|delay(1ms,0.5)")
	f.Add("x.y=err(1)@3+;z.w=delay(0s)@2-4")
	f.Add("engine.create_index=err(0.2)@1-1000")
	f.Add("=err()")
	f.Add("site=panic(0.5)@7")
	f.Add(";;;")
	f.Add("s=delay(1h)")
	f.Fuzz(func(t *testing.T, spec string) {
		r, err := Parse(spec, 42)
		if err != nil {
			return
		}
		// Evaluate every accepted site a few times. Skip sites armed with
		// panic actions (panicking is their contract) and cap delays: a
		// fuzzed duration may be hours, so evaluation uses the armed state
		// directly rather than sleeping.
		for name, s := range r.sites {
			hasPanic, hasLongDelay := false, false
			for _, a := range s.actions {
				if a.kind == kindPanic {
					hasPanic = true
				}
				if a.kind == kindDelay && a.delay > 10e6 { // > 10ms
					hasLongDelay = true
				}
			}
			if hasPanic || hasLongDelay {
				continue
			}
			Activate(r)
			for i := 0; i < 4; i++ {
				e := Inject(name)
				if e != nil && !strings.Contains(e.Error(), name) {
					t.Errorf("site %q: injected error %q does not name the site", name, e)
				}
			}
			Activate(nil)
		}
		// Round trip: re-parsing the same spec must succeed and arm the
		// same site set.
		r2, err := Parse(spec, 42)
		if err != nil {
			t.Fatalf("accepted spec %q rejected on re-parse: %v", spec, err)
		}
		if len(r2.sites) != len(r.sites) {
			t.Fatalf("re-parse armed %d sites, first parse %d", len(r2.sites), len(r.sites))
		}
		for name := range r.sites {
			if r2.sites[name] == nil {
				t.Fatalf("site %q lost on re-parse", name)
			}
		}
	})
}
