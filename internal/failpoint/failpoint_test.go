package failpoint

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"aim/internal/obs"
)

// arm activates a registry for the duration of the test.
func arm(t *testing.T, r *Registry) {
	t.Helper()
	Activate(r)
	t.Cleanup(func() { Activate(nil) })
}

func TestDisabledInjectIsNil(t *testing.T) {
	Activate(nil)
	if err := Inject("storage.clone"); err != nil {
		t.Fatalf("disabled inject returned %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled with no registry armed")
	}
}

func TestDisabledInjectZeroAlloc(t *testing.T) {
	Activate(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject("storage.clone"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Inject allocates %.1f per call, want 0", allocs)
	}
}

func TestErrAlwaysFires(t *testing.T) {
	r, err := Parse("engine.create_index=err()", 1)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	got := Inject("engine.create_index")
	if !errors.Is(got, ErrInjected) {
		t.Fatalf("err site returned %v", got)
	}
	if !strings.Contains(got.Error(), "engine.create_index") {
		t.Errorf("injected error %q does not name its site", got)
	}
	if err := Inject("unarmed.site"); err != nil {
		t.Fatalf("unarmed site returned %v", err)
	}
	if r.Hits("engine.create_index") != 1 || r.Injected("engine.create_index") != 1 {
		t.Errorf("hits=%d injected=%d, want 1/1",
			r.Hits("engine.create_index"), r.Injected("engine.create_index"))
	}
}

func TestProbabilityIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r, err := Parse("replay.query=err(0.3)", seed)
		if err != nil {
			t.Fatal(err)
		}
		arm(t, r)
		out := make([]bool, 200)
		for i := range out {
			out[i] = Inject("replay.query") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule differs at hit %d for identical seeds", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("fault schedules identical across different seeds")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Errorf("p=0.3 over 200 hits fired %d times, want roughly 60", fired)
	}
}

func TestHitCountTriggers(t *testing.T) {
	r := New(1)
	if err := r.Set("a", "err()@3"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("b", "err()@3+"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("c", "err()@2-4"); err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	fires := func(site string) []bool {
		out := make([]bool, 6)
		for i := range out {
			out[i] = Inject(site) != nil
		}
		return out
	}
	want := map[string][]bool{
		"a": {false, false, true, false, false, false},
		"b": {false, false, true, true, true, true},
		"c": {false, true, true, true, false, false},
	}
	for site, w := range want {
		got := fires(site)
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("site %s hit %d fired=%v want %v", site, i+1, got[i], w[i])
			}
		}
	}
}

func TestDelayAction(t *testing.T) {
	r, err := Parse("pool.task=delay(20ms)", 1)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	start := time.Now()
	if err := Inject("pool.task"); err != nil {
		t.Fatalf("delay action returned error %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("delay(20ms) slept only %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	r, err := Parse("shadow.clone=panic()", 1)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panic action did not panic")
		}
		if !strings.Contains(fmt.Sprint(p), "shadow.clone") {
			t.Errorf("panic %v does not name its site", p)
		}
	}()
	Inject("shadow.clone")
}

func TestMultipleActionsPerSite(t *testing.T) {
	r, err := Parse("replay.query=delay(1ms)|err()@2+", 1)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	if err := Inject("replay.query"); err != nil {
		t.Fatalf("hit 1 returned %v, want delay only", err)
	}
	if err := Inject("replay.query"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 returned %v, want injected error", err)
	}
	if got := r.Injected("replay.query"); got != 3 { // 2 delays + 1 err
		t.Errorf("injected = %d, want 3", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noequals",
		"site=",
		"site=unknown(1)",
		"site=err(2)",     // prob out of range
		"site=err(0)",     // prob out of range
		"site=delay()",    // missing duration
		"site=delay(abc)", // bad duration
		"site=err()@0",    // hit counts are 1-based
		"site=err()@5-2",  // empty window
		"Site=err()",      // upper case site name
		"site name=err()", // space in site name
		"site=err(0.5,x)", // err takes one arg
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
	good := []string{
		"",
		" ; ",
		"shadow.clone=err(0.05);replay.query=delay(10ms,0.1)",
		"a.b=err()|delay(1ms,0.5)|panic(0.001)@100+",
		"x.y_z=err(1)@2-2",
	}
	for _, spec := range good {
		if _, err := Parse(spec, 1); err != nil {
			t.Errorf("Parse(%q) failed: %v", spec, err)
		}
	}
}

func TestInstrumentCounters(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	t.Cleanup(func() { Instrument(nil) })
	r, err := Parse("a.b=err()", 1)
	if err != nil {
		t.Fatal(err)
	}
	arm(t, r)
	Inject("a.b")
	Inject("a.b")
	CountRetry()
	CountDegraded()
	if got := reg.Counter("faults.injected").Value(); got != 2 {
		t.Errorf("faults.injected = %d, want 2", got)
	}
	if got := reg.Counter("faults.retries").Value(); got != 1 {
		t.Errorf("faults.retries = %d, want 1", got)
	}
	if got := reg.Counter("faults.degraded").Value(); got != 1 {
		t.Errorf("faults.degraded = %d, want 1", got)
	}
}

func TestPolicyRetriesUntilSuccess(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 5, Base: time.Microsecond}
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestPolicyExhaustsAttempts(t *testing.T) {
	calls := 0
	want := errors.New("persistent")
	p := Policy{Attempts: 3, Base: time.Microsecond}
	if err := p.Do(func() error { calls++; return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestPolicyAbortStopsRetries(t *testing.T) {
	calls := 0
	inner := errors.New("fatal")
	p := Policy{Attempts: 5, Base: time.Microsecond}
	err := p.Do(func() error { calls++; return Abort(inner) })
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (abort must not retry)", calls)
	}
	if !errors.Is(err, inner) {
		t.Fatalf("err = %v, want unwrapped %v", err, inner)
	}
}

func TestPolicyDeadline(t *testing.T) {
	calls := 0
	p := Policy{Attempts: 1000, Base: 5 * time.Millisecond, Max: 5 * time.Millisecond, Deadline: 20 * time.Millisecond}
	start := time.Now()
	if err := p.Do(func() error { calls++; return errors.New("always") }); err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("deadline not enforced: ran %v over %d calls", elapsed, calls)
	}
	if calls >= 1000 {
		t.Fatal("deadline did not bound attempts")
	}
}

func TestPolicyZeroValueSingleAttempt(t *testing.T) {
	calls := 0
	var p Policy
	p.Do(func() error { calls++; return errors.New("x") })
	if calls != 1 {
		t.Fatalf("zero-value policy made %d attempts, want 1", calls)
	}
}
