// Package failpoint is a dependency-free, deterministic fault-injection
// registry for the continuous-tuning loop. AIM's no-regression guarantee
// (§VI) only holds if the machinery that enforces it — shadow clone builds,
// workload replay, index materialization, regression reverts — survives
// failures mid-flight, so this package makes failure a first-class,
// testable input: callers mark named *sites* on their fallible paths and
// tests (or operators, via AIM_FAILPOINTS) arm those sites with error,
// delay or panic actions fired by a seeded PRNG and/or hit-count triggers.
//
// Design rules (same discipline as internal/obs):
//
//   - Nil is off. With no registry activated, Inject is one atomic load and
//     a nil check — zero allocation, no locks — so production paths keep
//     failpoints compiled in permanently.
//   - Determinism. Every site draws from its own PRNG seeded by
//     (registry seed, site name), so a fixed seed yields the same fault
//     schedule per site regardless of how other sites interleave.
//   - Sites never change results. A site either fails the operation it
//     guards (the caller's error path must cope) or delays it; it never
//     alters data. The golden determinism suite runs with delay-armed
//     failpoints to prove recommendations are byte-identical.
//
// Site naming convention: "<package>.<operation>" in snake case
// (storage.clone, engine.create_index, replay.query). The registered sites
// are listed in DESIGN.md "Fault injection & failure semantics".
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aim/internal/obs"
)

// ErrInjected is the sentinel wrapped by every error an armed site returns;
// callers distinguish injected faults with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// action kinds.
const (
	kindErr = iota
	kindDelay
	kindPanic
)

// action is one armed behaviour of a site. A site may carry several actions
// (e.g. a delay and an error); they are evaluated in spec order.
type action struct {
	kind  int
	prob  float64       // firing probability per qualifying hit (0..1]
	delay time.Duration // kindDelay only
	from  int64         // first hit (1-based) the action applies to; 0 = 1
	to    int64         // last hit the action applies to; 0 = unbounded
	err   error         // pre-built kindErr error (avoids per-fire allocs)
}

// site is one named injection point's armed state.
type site struct {
	name    string
	actions []action

	mu       sync.Mutex
	rng      *rand.Rand
	hits     int64 // Inject evaluations
	injected int64 // actions fired (err, delay or panic)
}

// Registry is an immutable-after-build set of armed sites. Build one with
// New/Set or Parse, then Activate it; nil is the disabled state.
type Registry struct {
	seed  int64
	sites map[string]*site
}

// New returns an empty registry whose sites derive their PRNGs from seed.
func New(seed int64) *Registry {
	return &Registry{seed: seed, sites: map[string]*site{}}
}

// siteSeed mixes the registry seed with the site name so each site's fault
// schedule is independent of evaluation order at other sites.
func siteSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Set arms (or re-arms) a site from an action spec like "err(0.05)" or
// "delay(10ms,0.1)|err(0.01)@3+". See Parse for the grammar.
func (r *Registry) Set(name, spec string) error {
	if name == "" {
		return fmt.Errorf("failpoint: empty site name")
	}
	actions, err := parseActions(name, spec)
	if err != nil {
		return err
	}
	r.sites[name] = &site{
		name:    name,
		actions: actions,
		rng:     rand.New(rand.NewSource(siteSeed(r.seed, name))),
	}
	return nil
}

// Hits returns how many times the named site has been evaluated.
func (r *Registry) Hits(name string) int64 {
	if r == nil {
		return 0
	}
	s := r.sites[name]
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Injected returns how many faults the named site has fired.
func (r *Registry) Injected(name string) int64 {
	if r == nil {
		return 0
	}
	s := r.sites[name]
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// InjectedTotal sums fired faults across all sites.
func (r *Registry) InjectedTotal() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, s := range r.sites {
		s.mu.Lock()
		n += s.injected
		s.mu.Unlock()
	}
	return n
}

// SiteStatus is one armed site's state, exported for the /statusz telemetry
// endpoint.
type SiteStatus struct {
	Name     string `json:"name"`
	Actions  int    `json:"actions"`
	Hits     int64  `json:"hits"`
	Injected int64  `json:"injected"`
}

// Sites lists the registry's armed sites sorted by name (nil-safe, empty
// when disabled).
func (r *Registry) Sites() []SiteStatus {
	if r == nil {
		return nil
	}
	out := make([]SiteStatus, 0, len(r.sites))
	for _, s := range r.sites {
		s.mu.Lock()
		out = append(out, SiteStatus{Name: s.name, Actions: len(s.actions), Hits: s.hits, Injected: s.injected})
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ArmedSites lists the process-wide armed sites (empty when no registry is
// active).
func ArmedSites() []SiteStatus { return active.Load().Sites() }

// active is the process-wide armed registry; nil = disabled.
var active atomic.Pointer[Registry]

// Activate installs r as the process-wide registry (nil disables injection).
// Like pool.Instrument, this is process-global: arm before the run under
// test and disarm after.
func Activate(r *Registry) {
	if r == nil {
		active.Store(nil)
		return
	}
	active.Store(r)
}

// Active returns the currently armed registry (nil when disabled).
func Active() *Registry { return active.Load() }

// Enabled reports whether any registry is armed.
func Enabled() bool { return active.Load() != nil }

// metricsSet bundles the fault counters so they swap atomically as a unit
// (same pattern as internal/pool).
type metricsSet struct {
	injected *obs.Counter // faults fired by armed sites
	retries  *obs.Counter // retry attempts consumed by hardened callers
	degraded *obs.Counter // operations that gave up and degraded gracefully
}

var instr atomic.Pointer[metricsSet]

// Instrument attaches the fault counters to the registry (nil detaches):
// faults.injected, faults.retries and faults.degraded. Injection fires
// faults.injected itself; hardened callers report the other two through
// CountRetry/CountDegraded.
func Instrument(r *obs.Registry) {
	if r == nil {
		instr.Store(nil)
		return
	}
	instr.Store(&metricsSet{
		injected: r.Counter("faults.injected"),
		retries:  r.Counter("faults.retries"),
		degraded: r.Counter("faults.degraded"),
	})
}

// CountRetry records one retry attempt in faults.retries. Policy.Do calls
// this automatically; manual retry loops should too.
func CountRetry() {
	if m := instr.Load(); m != nil {
		m.retries.Inc()
	}
}

// CountDegraded records one graceful degradation (an operation that
// exhausted its retries and fell back to "no change") in faults.degraded.
func CountDegraded() {
	if m := instr.Load(); m != nil {
		m.degraded.Inc()
	}
}

// Inject evaluates the named site against the armed registry. With no
// registry armed it is one atomic load and a nil check (zero allocation).
// An armed err action returns an error wrapping ErrInjected; a delay action
// sleeps and continues; a panic action panics.
func Inject(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	s := r.sites[name]
	if s == nil {
		return nil
	}
	return s.inject()
}

func (s *site) inject() error {
	s.mu.Lock()
	s.hits++
	hit := s.hits
	var fire []action
	for _, a := range s.actions {
		if a.from > 0 && hit < a.from {
			continue
		}
		if a.to > 0 && hit > a.to {
			continue
		}
		if a.prob < 1 && s.rng.Float64() >= a.prob {
			continue
		}
		s.injected++
		fire = append(fire, a)
	}
	s.mu.Unlock()
	// Fire outside the lock: delays must not serialize other workers'
	// evaluations of the same site, and panics must not leave it held.
	var err error
	for _, a := range fire {
		if m := instr.Load(); m != nil {
			m.injected.Inc()
		}
		switch a.kind {
		case kindDelay:
			time.Sleep(a.delay)
		case kindPanic:
			panic(fmt.Sprintf("failpoint: injected panic at %s", s.name))
		case kindErr:
			if err == nil {
				err = a.err
			}
		}
	}
	return err
}
