package failpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a registry from a fault spec string, the format accepted by
// the AIM_FAILPOINTS environment variable and the CLIs' -failpoints flag:
//
//	spec    := entry *( ';' entry )
//	entry   := site '=' action *( '|' action )
//	action  := 'err'   '(' [prob] ')'          [trigger]
//	         | 'delay' '(' dur [',' prob] ')'  [trigger]
//	         | 'panic' '(' [prob] ')'          [trigger]
//	trigger := '@' N          -- fire only on the Nth evaluation (1-based)
//	         | '@' N '+'      -- fire on the Nth evaluation and after
//	         | '@' N '-' M    -- fire on evaluations N through M
//
// prob is a firing probability in (0, 1] (default 1); dur is a Go duration
// ("10ms"). Example:
//
//	AIM_FAILPOINTS="shadow.clone=err(0.05);replay.query=delay(10ms,0.1)"
//
// Whitespace around entries, sites and actions is ignored. Entries re-arm
// earlier entries for the same site (last wins).
func Parse(spec string, seed int64) (*Registry, error) {
	r := New(seed)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, actions, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("failpoint: entry %q: want site=action", entry)
		}
		name = strings.TrimSpace(name)
		if !validSiteName(name) {
			return nil, fmt.Errorf("failpoint: invalid site name %q", name)
		}
		if err := r.Set(name, actions); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// validSiteName enforces the "<package>.<operation>" snake-case convention:
// lower-case letters, digits, underscores and dots only.
func validSiteName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// parseActions parses the '|'-separated action list of one entry.
func parseActions(siteName, spec string) ([]action, error) {
	var out []action
	for _, raw := range strings.Split(spec, "|") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, fmt.Errorf("failpoint: site %s: empty action", siteName)
		}
		a, err := parseAction(siteName, raw)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("failpoint: site %s: no actions", siteName)
	}
	return out, nil
}

func parseAction(siteName, raw string) (action, error) {
	fail := func(format string, args ...any) (action, error) {
		return action{}, fmt.Errorf("failpoint: site %s: action %q: %s", siteName, raw, fmt.Sprintf(format, args...))
	}
	body, trigger, _ := strings.Cut(raw, "@")
	body = strings.TrimSpace(body)
	open := strings.IndexByte(body, '(')
	if open < 0 || !strings.HasSuffix(body, ")") {
		return fail("want kind(args)")
	}
	kindName := strings.TrimSpace(body[:open])
	argstr := body[open+1 : len(body)-1]
	var args []string
	if strings.TrimSpace(argstr) != "" {
		for _, a := range strings.Split(argstr, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}

	a := action{prob: 1}
	parseProb := func(s string) error {
		p, err := strconv.ParseFloat(s, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("probability %q must be in (0, 1]", s)
		}
		a.prob = p
		return nil
	}
	switch kindName {
	case "err":
		a.kind = kindErr
		if len(args) > 1 {
			return fail("err takes at most a probability")
		}
		if len(args) == 1 {
			if err := parseProb(args[0]); err != nil {
				return fail("%v", err)
			}
		}
		a.err = fmt.Errorf("%w at %s", ErrInjected, siteName)
	case "delay":
		a.kind = kindDelay
		if len(args) == 0 || len(args) > 2 {
			return fail("delay takes a duration and an optional probability")
		}
		d, err := time.ParseDuration(args[0])
		if err != nil || d < 0 {
			return fail("bad duration %q", args[0])
		}
		a.delay = d
		if len(args) == 2 {
			if err := parseProb(args[1]); err != nil {
				return fail("%v", err)
			}
		}
	case "panic":
		a.kind = kindPanic
		if len(args) > 1 {
			return fail("panic takes at most a probability")
		}
		if len(args) == 1 {
			if err := parseProb(args[0]); err != nil {
				return fail("%v", err)
			}
		}
	default:
		return fail("unknown action kind %q", kindName)
	}

	if trigger != "" {
		from, to, err := parseTrigger(strings.TrimSpace(trigger))
		if err != nil {
			return fail("%v", err)
		}
		a.from, a.to = from, to
	}
	return a, nil
}

// parseTrigger parses the hit-count window after '@': "N", "N+" or "N-M".
func parseTrigger(s string) (from, to int64, err error) {
	parseHit := func(v string) (int64, error) {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			return 0, fmt.Errorf("hit count %q must be a positive integer", v)
		}
		return n, nil
	}
	switch {
	case strings.HasSuffix(s, "+"):
		from, err = parseHit(strings.TrimSuffix(s, "+"))
		return from, 0, err
	case strings.Contains(s, "-"):
		lo, hi, _ := strings.Cut(s, "-")
		if from, err = parseHit(lo); err != nil {
			return 0, 0, err
		}
		if to, err = parseHit(hi); err != nil {
			return 0, 0, err
		}
		if to < from {
			return 0, 0, fmt.Errorf("hit window %q is empty", s)
		}
		return from, to, nil
	default:
		if from, err = parseHit(s); err != nil {
			return 0, 0, err
		}
		return from, from, nil
	}
}
