package failpoint

import (
	"fmt"
	"os"
)

// EnvVar is the environment variable the CLIs consult when the -failpoints
// flag is empty, so fault schedules can be armed without changing the
// command line (e.g. in a CI job's environment block).
const EnvVar = "AIM_FAILPOINTS"

// Setup parses and activates a fault spec for the whole process. The flag
// value wins; when it is empty the AIM_FAILPOINTS environment variable is
// consulted; when both are empty nothing is activated and injection stays
// on its zero-cost disabled path. Returns the activated registry (nil when
// nothing was armed).
func Setup(flagSpec string, seed int64) (*Registry, error) {
	spec := flagSpec
	if spec == "" {
		spec = os.Getenv(EnvVar)
	}
	if spec == "" {
		return nil, nil
	}
	r, err := Parse(spec, seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", EnvVar, err)
	}
	Activate(r)
	return r, nil
}
