package failpoint

import (
	"time"
)

// Policy is the bounded-retry/exponential-backoff primitive the
// continuous-tuning path wraps around fallible phases: shadow clone builds,
// per-index materialization, workload replays and regression reverts. The
// zero value retries nothing (one attempt, no sleeps).
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (<= 1 means a single attempt).
	Attempts int
	// Base is the sleep before the first retry; each subsequent retry
	// doubles it, capped at Max.
	Base time.Duration
	// Max caps the per-retry backoff sleep (0 = uncapped).
	Max time.Duration
	// Deadline is the phase's overall wall-clock budget measured from the
	// first attempt; once exceeded, Do stops retrying even if attempts
	// remain (0 = no deadline). This is the per-phase deadline of the
	// hardening policy: a phase that keeps failing must yield control back
	// to the loop rather than stall a tuning cycle indefinitely.
	Deadline time.Duration
}

// DefaultPolicy is the standard hardening policy: three attempts, 1ms base
// backoff capped at 8ms, 250ms phase deadline. The tuning loop runs on
// in-memory operations, so retry budgets are small; a real deployment
// would scale these to its I/O latencies.
func DefaultPolicy() Policy {
	return Policy{Attempts: 3, Base: time.Millisecond, Max: 8 * time.Millisecond, Deadline: 250 * time.Millisecond}
}

// abortError marks an error as non-retryable.
type abortError struct{ error }

func (a abortError) Unwrap() error { return a.error }

// Abort wraps err so Policy.Do returns it immediately without further
// attempts — for failures that retrying cannot fix (diverged clones,
// validation errors).
func Abort(err error) error {
	if err == nil {
		return nil
	}
	return abortError{err}
}

// Do runs fn until it succeeds, returning nil, or until attempts, the
// deadline, or an Abort-wrapped error stop it, returning the last error.
// Each retry is recorded in the faults.retries counter (see Instrument).
func (p Policy) Do(fn func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	start := time.Time{}
	if p.Deadline > 0 {
		start = time.Now()
	}
	backoff := p.Base
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			CountRetry()
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
				if p.Max > 0 && backoff > p.Max {
					backoff = p.Max
				}
			}
		}
		err = fn()
		if err == nil {
			return nil
		}
		if ae, ok := err.(abortError); ok {
			return ae.error
		}
		if p.Deadline > 0 && time.Since(start) >= p.Deadline {
			return err
		}
	}
	return err
}
