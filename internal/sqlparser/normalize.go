package sqlparser

import (
	"fmt"

	"aim/internal/sqltypes"
)

// Normalize returns the normalized (parameterized) form of a statement per
// §III-A1 of the AIM paper: every literal is replaced by `?` so queries with
// the same structure share a normalized text. IN lists collapse to a single
// `?` so the list length does not fragment the grouping. The extracted
// parameter values are returned in syntax order (IN lists contribute all of
// their members).
func Normalize(stmt Statement) (string, []sqltypes.Value) {
	n := &normalizer{}
	out := n.statement(stmt)
	return out.SQL(), n.params
}

// NormalizeSQL parses and normalizes in one step.
func NormalizeSQL(src string) (string, []sqltypes.Value, error) {
	stmt, err := Parse(src)
	if err != nil {
		return "", nil, err
	}
	norm, params := Normalize(stmt)
	return norm, params, nil
}

type normalizer struct {
	params []sqltypes.Value
}

func (n *normalizer) placeholder(v sqltypes.Value) Expr {
	ph := &Placeholder{Ordinal: len(n.params)}
	n.params = append(n.params, v)
	return ph
}

func (n *normalizer) statement(stmt Statement) Statement {
	switch s := stmt.(type) {
	case *Select:
		out := *s
		out.Exprs = make([]*SelectExpr, len(s.Exprs))
		for i, se := range s.Exprs {
			cp := *se
			if cp.Expr != nil {
				cp.Expr = n.expr(cp.Expr)
			}
			out.Exprs[i] = &cp
		}
		if s.Where != nil {
			out.Where = n.expr(s.Where)
		}
		out.GroupBy = n.exprs(s.GroupBy)
		out.OrderBy = make([]*OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			out.OrderBy[i] = &OrderItem{Expr: n.expr(o.Expr), Desc: o.Desc}
		}
		return &out
	case *Insert:
		out := *s
		out.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			out.Rows[i] = n.exprs(row)
		}
		// Multi-row inserts normalize to a single parameterized row so that
		// batch sizes do not fragment grouping.
		if len(out.Rows) > 1 {
			out.Rows = out.Rows[:1]
		}
		return &out
	case *Update:
		out := *s
		out.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			out.Set[i] = Assignment{Column: a.Column, Value: n.expr(a.Value)}
		}
		if s.Where != nil {
			out.Where = n.expr(s.Where)
		}
		return &out
	case *Delete:
		out := *s
		if s.Where != nil {
			out.Where = n.expr(s.Where)
		}
		return &out
	default:
		return stmt
	}
}

func (n *normalizer) exprs(in []Expr) []Expr {
	if in == nil {
		return nil
	}
	out := make([]Expr, len(in))
	for i, e := range in {
		out[i] = n.expr(e)
	}
	return out
}

func (n *normalizer) expr(e Expr) Expr {
	switch v := e.(type) {
	case *Literal:
		return n.placeholder(v.Val)
	case *Placeholder:
		cp := &Placeholder{Ordinal: len(n.params)}
		n.params = append(n.params, sqltypes.Null)
		return cp
	case *ColumnRef:
		return v
	case *BinaryExpr:
		return &BinaryExpr{Op: v.Op, Left: n.expr(v.Left), Right: n.expr(v.Right)}
	case *NotExpr:
		return &NotExpr{Inner: n.expr(v.Inner)}
	case *InExpr:
		// Collect every literal but render a single placeholder.
		for _, item := range v.List {
			if lit, ok := item.(*Literal); ok {
				n.params = append(n.params, lit.Val)
			}
		}
		return &InExpr{Left: n.expr(v.Left), List: []Expr{&Placeholder{}}, Not: v.Not}
	case *BetweenExpr:
		return &BetweenExpr{Left: n.expr(v.Left), Low: n.expr(v.Low), High: n.expr(v.High), Not: v.Not}
	case *LikeExpr:
		return &LikeExpr{Left: n.expr(v.Left), Pattern: n.expr(v.Pattern), Not: v.Not}
	case *IsNullExpr:
		return &IsNullExpr{Left: n.expr(v.Left), Not: v.Not}
	case *FuncExpr:
		return &FuncExpr{Name: v.Name, Args: n.exprs(v.Args), Star: v.Star}
	default:
		return e
	}
}

// Bind substitutes placeholder markers in stmt with the given parameter
// values, returning a deep copy. Placeholders are matched positionally in
// syntax order.
func Bind(stmt Statement, params []sqltypes.Value) (Statement, error) {
	b := &binder{params: params}
	out := b.statement(stmt)
	if b.err != nil {
		return nil, b.err
	}
	return out, nil
}

type binder struct {
	params []sqltypes.Value
	next   int
	err    error
}

func (b *binder) take() sqltypes.Value {
	if b.next >= len(b.params) {
		if b.err == nil {
			b.err = fmt.Errorf("sql: not enough bind parameters (have %d)", len(b.params))
		}
		return sqltypes.Null
	}
	v := b.params[b.next]
	b.next++
	return v
}

func (b *binder) statement(stmt Statement) Statement {
	switch s := stmt.(type) {
	case *Select:
		out := *s
		out.Exprs = make([]*SelectExpr, len(s.Exprs))
		for i, se := range s.Exprs {
			cp := *se
			if cp.Expr != nil {
				cp.Expr = b.expr(cp.Expr)
			}
			out.Exprs[i] = &cp
		}
		if s.Where != nil {
			out.Where = b.expr(s.Where)
		}
		out.GroupBy = b.exprs(s.GroupBy)
		out.OrderBy = make([]*OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			out.OrderBy[i] = &OrderItem{Expr: b.expr(o.Expr), Desc: o.Desc}
		}
		return &out
	case *Insert:
		out := *s
		out.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			out.Rows[i] = b.exprs(row)
		}
		return &out
	case *Update:
		out := *s
		out.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			out.Set[i] = Assignment{Column: a.Column, Value: b.expr(a.Value)}
		}
		if s.Where != nil {
			out.Where = b.expr(s.Where)
		}
		return &out
	case *Delete:
		out := *s
		if s.Where != nil {
			out.Where = b.expr(s.Where)
		}
		return &out
	default:
		return stmt
	}
}

func (b *binder) exprs(in []Expr) []Expr {
	if in == nil {
		return nil
	}
	out := make([]Expr, len(in))
	for i, e := range in {
		out[i] = b.expr(e)
	}
	return out
}

func (b *binder) expr(e Expr) Expr {
	switch v := e.(type) {
	case *Placeholder:
		return &Literal{Val: b.take()}
	case *Literal, *ColumnRef:
		return e
	case *BinaryExpr:
		return &BinaryExpr{Op: v.Op, Left: b.expr(v.Left), Right: b.expr(v.Right)}
	case *NotExpr:
		return &NotExpr{Inner: b.expr(v.Inner)}
	case *InExpr:
		return &InExpr{Left: b.expr(v.Left), List: b.exprs(v.List), Not: v.Not}
	case *BetweenExpr:
		return &BetweenExpr{Left: b.expr(v.Left), Low: b.expr(v.Low), High: b.expr(v.High), Not: v.Not}
	case *LikeExpr:
		return &LikeExpr{Left: b.expr(v.Left), Pattern: b.expr(v.Pattern), Not: v.Not}
	case *IsNullExpr:
		return &IsNullExpr{Left: b.expr(v.Left), Not: v.Not}
	case *FuncExpr:
		return &FuncExpr{Name: v.Name, Args: b.exprs(v.Args), Star: v.Star}
	default:
		return e
	}
}
