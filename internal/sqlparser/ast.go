package sqlparser

import (
	"fmt"
	"strings"

	"aim/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface {
	// SQL renders the statement back to dialect text.
	SQL() string
	stmt()
}

// Expr is any scalar or boolean expression.
type Expr interface {
	SQL() string
	expr()
}

// ColumnRef references table.column (Table may be empty before resolution).
type ColumnRef struct {
	Table  string // table name or alias as written; resolved by the binder
	Column string
}

func (c *ColumnRef) expr() {}

// SQL renders the reference.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

func (l *Literal) expr()       {}
func (l *Literal) SQL() string { return l.Val.String() }

// Placeholder is a `?` parameter marker.
type Placeholder struct {
	Ordinal int // zero-based position among the statement's placeholders
}

func (p *Placeholder) expr()       {}
func (p *Placeholder) SQL() string { return "?" }

// BinaryExpr applies Op to Left and Right. Comparison ops: = != < <= > >=
// <=>; arithmetic: + - * / %; logical: AND OR.
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

func (b *BinaryExpr) expr() {}

// SQL renders with minimal parenthesization of logical operands.
func (b *BinaryExpr) SQL() string {
	l, r := b.Left.SQL(), b.Right.SQL()
	if b.Op == "AND" || b.Op == "OR" {
		if inner, ok := b.Left.(*BinaryExpr); ok && inner.Op != b.Op && (inner.Op == "AND" || inner.Op == "OR") {
			l = "(" + l + ")"
		}
		if inner, ok := b.Right.(*BinaryExpr); ok && inner.Op != b.Op && (inner.Op == "AND" || inner.Op == "OR") {
			r = "(" + r + ")"
		}
	}
	return l + " " + b.Op + " " + r
}

// NotExpr negates Inner.
type NotExpr struct{ Inner Expr }

func (n *NotExpr) expr()       {}
func (n *NotExpr) SQL() string { return "NOT (" + n.Inner.SQL() + ")" }

// InExpr tests membership of Left in a literal list.
type InExpr struct {
	Left Expr
	List []Expr
	Not  bool
}

func (i *InExpr) expr() {}

// SQL renders the IN list.
func (i *InExpr) SQL() string {
	parts := make([]string, len(i.List))
	for j, e := range i.List {
		parts[j] = e.SQL()
	}
	op := "IN"
	if i.Not {
		op = "NOT IN"
	}
	return i.Left.SQL() + " " + op + " (" + strings.Join(parts, ", ") + ")"
}

// BetweenExpr tests Low <= Left <= High.
type BetweenExpr struct {
	Left, Low, High Expr
	Not             bool
}

func (b *BetweenExpr) expr() {}

// SQL renders the BETWEEN.
func (b *BetweenExpr) SQL() string {
	op := "BETWEEN"
	if b.Not {
		op = "NOT BETWEEN"
	}
	return b.Left.SQL() + " " + op + " " + b.Low.SQL() + " AND " + b.High.SQL()
}

// LikeExpr matches Left against a pattern with % and _ wildcards.
type LikeExpr struct {
	Left    Expr
	Pattern Expr
	Not     bool
}

func (l *LikeExpr) expr() {}

// SQL renders the LIKE.
func (l *LikeExpr) SQL() string {
	op := "LIKE"
	if l.Not {
		op = "NOT LIKE"
	}
	return l.Left.SQL() + " " + op + " " + l.Pattern.SQL()
}

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	Left Expr
	Not  bool
}

func (i *IsNullExpr) expr() {}

// SQL renders the IS [NOT] NULL.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.Left.SQL() + " IS NOT NULL"
	}
	return i.Left.SQL() + " IS NULL"
}

// FuncExpr is an aggregate or scalar function call. Star marks COUNT(*).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
	Star bool
}

func (f *FuncExpr) expr() {}

// SQL renders the call.
func (f *FuncExpr) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsAggregate reports whether Name is one of the supported aggregates.
func (f *FuncExpr) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// SelectExpr is one item of the projection list.
type SelectExpr struct {
	Expr  Expr   // nil when Star
	Alias string // optional
	Star  bool   // SELECT * or t.*
	Table string // for t.*
}

// SQL renders the projection item.
func (s *SelectExpr) SQL() string {
	if s.Star {
		if s.Table != "" {
			return s.Table + ".*"
		}
		return "*"
	}
	out := s.Expr.SQL()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// TableRef is one table in the FROM clause with an optional alias.
type TableRef struct {
	Name  string
	Alias string // empty when not aliased; effective alias = Alias or Name
}

// EffectiveAlias returns the name the table is referenced by.
func (t *TableRef) EffectiveAlias() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SQL renders the reference.
func (t *TableRef) SQL() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL renders the order item.
func (o *OrderItem) SQL() string {
	if o.Desc {
		return o.Expr.SQL() + " DESC"
	}
	return o.Expr.SQL()
}

// Select is a SELECT statement. Joins written with JOIN ... ON are folded
// into Tables plus Where conjuncts; StraightJoin records a fixed join order.
type Select struct {
	Distinct     bool
	Exprs        []*SelectExpr
	Tables       []*TableRef
	Where        Expr // nil when absent
	GroupBy      []Expr
	OrderBy      []*OrderItem
	Limit        int64 // -1 when absent
	Offset       int64 // 0 when absent
	StraightJoin bool
}

func (s *Select) stmt() {}

// SQL renders the statement.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, e := range s.Exprs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.SQL())
	}
	b.WriteString(" FROM ")
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
		if s.Offset > 0 {
			fmt.Fprintf(&b, " OFFSET %d", s.Offset)
		}
	}
	return b.String()
}

// Insert is an INSERT statement.
type Insert struct {
	Table   string
	Columns []string // empty = all columns in table order
	Rows    [][]Expr
}

func (i *Insert) stmt() {}

// SQL renders the statement.
func (i *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(i.Table)
	if len(i.Columns) > 0 {
		b.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for ri, row := range i.Rows {
		if ri > 0 {
			b.WriteString(", ")
		}
		parts := make([]string, len(row))
		for ci, e := range row {
			parts[ci] = e.SQL()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

// Assignment is one SET item of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (u *Update) stmt() {}

// SQL renders the statement.
func (u *Update) SQL() string {
	var b strings.Builder
	b.WriteString("UPDATE " + u.Table + " SET ")
	for i, a := range u.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.Value.SQL())
	}
	if u.Where != nil {
		b.WriteString(" WHERE " + u.Where.SQL())
	}
	return b.String()
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Expr
}

func (d *Delete) stmt() {}

// SQL renders the statement.
func (d *Delete) SQL() string {
	out := "DELETE FROM " + d.Table
	if d.Where != nil {
		out += " WHERE " + d.Where.SQL()
	}
	return out
}

// ColumnDef is one column of CREATE TABLE.
type ColumnDef struct {
	Name string
	Type sqltypes.Kind
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table      string
	Columns    []ColumnDef
	PrimaryKey []string
}

func (c *CreateTable) stmt() {}

// SQL renders the statement.
func (c *CreateTable) SQL() string {
	parts := make([]string, 0, len(c.Columns)+1)
	for _, col := range c.Columns {
		parts = append(parts, col.Name+" "+typeName(col.Type))
	}
	parts = append(parts, "PRIMARY KEY ("+strings.Join(c.PrimaryKey, ", ")+")")
	return "CREATE TABLE " + c.Table + " (" + strings.Join(parts, ", ") + ")"
}

func typeName(k sqltypes.Kind) string {
	switch k {
	case sqltypes.KindInt:
		return "INT"
	case sqltypes.KindFloat:
		return "FLOAT"
	case sqltypes.KindString:
		return "STRING"
	case sqltypes.KindBool:
		return "BOOL"
	default:
		return "STRING"
	}
}

// CreateIndex is a CREATE INDEX statement.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

func (c *CreateIndex) stmt() {}

// SQL renders the statement.
func (c *CreateIndex) SQL() string {
	return "CREATE INDEX " + c.Name + " ON " + c.Table + " (" + strings.Join(c.Columns, ", ") + ")"
}

// DropIndex is a DROP INDEX statement.
type DropIndex struct {
	Name string
}

func (d *DropIndex) stmt() {}

// SQL renders the statement.
func (d *DropIndex) SQL() string { return "DROP INDEX " + d.Name }

// WalkExpr calls fn for e and every sub-expression, depth-first. A false
// return stops descent into that subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch v := e.(type) {
	case *BinaryExpr:
		WalkExpr(v.Left, fn)
		WalkExpr(v.Right, fn)
	case *NotExpr:
		WalkExpr(v.Inner, fn)
	case *InExpr:
		WalkExpr(v.Left, fn)
		for _, x := range v.List {
			WalkExpr(x, fn)
		}
	case *BetweenExpr:
		WalkExpr(v.Left, fn)
		WalkExpr(v.Low, fn)
		WalkExpr(v.High, fn)
	case *LikeExpr:
		WalkExpr(v.Left, fn)
		WalkExpr(v.Pattern, fn)
	case *IsNullExpr:
		WalkExpr(v.Left, fn)
	case *FuncExpr:
		for _, x := range v.Args {
			WalkExpr(x, fn)
		}
	}
}

// ColumnsIn returns every column reference in e, in syntax order.
func ColumnsIn(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}
