package sqlparser

import (
	"strings"
	"testing"

	"aim/internal/sqltypes"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT id, name FROM students WHERE score > 10").(*Select)
	if len(s.Exprs) != 2 || len(s.Tables) != 1 {
		t.Fatalf("shape: %+v", s)
	}
	if s.Tables[0].Name != "students" {
		t.Errorf("table = %q", s.Tables[0].Name)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("where = %#v", s.Where)
	}
	if c := be.Left.(*ColumnRef); c.Column != "score" {
		t.Errorf("left = %v", c)
	}
	if l := be.Right.(*Literal); l.Val.Int() != 10 {
		t.Errorf("right = %v", l.Val)
	}
}

func TestParseSelectStarAndAliases(t *testing.T) {
	s := mustParse(t, "SELECT *, t.*, a + 1 AS b FROM t1 AS t").(*Select)
	if !s.Exprs[0].Star || s.Exprs[0].Table != "" {
		t.Error("bare star")
	}
	if !s.Exprs[1].Star || s.Exprs[1].Table != "t" {
		t.Error("qualified star")
	}
	if s.Exprs[2].Alias != "b" {
		t.Error("alias")
	}
	if s.Tables[0].EffectiveAlias() != "t" {
		t.Error("table alias")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := mustParse(t, "SELECT x FROM orders o WHERE o.id = 1").(*Select)
	if s.Tables[0].Alias != "o" {
		t.Errorf("implicit alias = %q", s.Tables[0].Alias)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, `SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.id = t2.t1_id
		INNER JOIN t3 ON t2.id = t3.t2_id WHERE t1.x > 5`).(*Select)
	if len(s.Tables) != 3 {
		t.Fatalf("tables = %d", len(s.Tables))
	}
	// ON conditions and WHERE fold into one conjunction: expect 3 conjuncts.
	conjuncts := 0
	var count func(e Expr)
	count = func(e Expr) {
		if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
			count(b.Left)
			count(b.Right)
			return
		}
		conjuncts++
	}
	count(s.Where)
	if conjuncts != 3 {
		t.Errorf("conjuncts = %d, want 3", conjuncts)
	}
}

func TestParseCommaJoin(t *testing.T) {
	s := mustParse(t, "SELECT t1.col1 FROM t1, t2, t3 WHERE t1.col2 = t3.col2 AND t2.col4 = t3.col7").(*Select)
	if len(s.Tables) != 3 {
		t.Fatalf("tables = %d", len(s.Tables))
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	s := mustParse(t, "SELECT city, COUNT(*) FROM users WHERE age > 18 GROUP BY city ORDER BY city DESC, age ASC LIMIT 10 OFFSET 5").(*Select)
	if len(s.GroupBy) != 1 {
		t.Error("group by")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order by")
	}
	if s.Limit != 10 || s.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", s.Limit, s.Offset)
	}
	fn := s.Exprs[1].Expr.(*FuncExpr)
	if fn.Name != "COUNT" || !fn.Star || !fn.IsAggregate() {
		t.Errorf("func = %+v", fn)
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT a FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 1 AND 5
		AND c LIKE 'abc%' AND d IS NOT NULL AND e IS NULL AND f NOT IN (9)
		AND g NOT BETWEEN 1 AND 2 AND NOT (h = 1 OR i = 2)`).(*Select)
	sql := s.SQL()
	for _, want := range []string{"IN (1, 2, 3)", "BETWEEN 1 AND 5", "LIKE 'abc%'",
		"IS NOT NULL", "IS NULL", "NOT IN (9)", "NOT BETWEEN 1 AND 2", "NOT ("} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a + 2 * 3 = 7").(*Select)
	eq := s.Where.(*BinaryExpr)
	add := eq.Left.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("expected + at top, got %s", add.Op)
	}
	mul := add.Right.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("expected * nested, got %s", mul.Op)
	}
}

func TestParseOrAndPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3").(*Select)
	or := s.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s, want OR", or.Op)
	}
	and := or.Left.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("left = %s, want AND", and.Op)
	}
}

func TestParseParenthesizedOr(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3").(*Select)
	and := s.Where.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("top = %s", and.Op)
	}
	if or := and.Left.(*BinaryExpr); or.Op != "OR" {
		t.Fatalf("left = %s", or.Op)
	}
}

func TestParseLiterals(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = -5 AND b = 2.5 AND c = 'it''s' AND d = NULL AND e = TRUE AND f = 1e3").(*Select)
	sql := s.SQL()
	for _, want := range []string{"-5", "2.5", "'it''s'", "NULL", "TRUE", "1000"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
}

func TestParsePlaceholders(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = ? AND b > ?").(*Select)
	n := 0
	WalkExpr(s.Where, func(e Expr) bool {
		if _, ok := e.(*Placeholder); ok {
			n++
		}
		return true
	})
	if n != 2 {
		t.Errorf("placeholders = %d", n)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO t VALUES (1, 2)").(*Insert)
	if len(ins2.Columns) != 0 || len(ins2.Rows) != 1 {
		t.Fatalf("%+v", ins2)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = 1, b = b + 1 WHERE id = 5").(*Update)
	if up.Table != "t" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE id = 5").(*Delete)
	if del.Table != "t" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
	del2 := mustParse(t, "DELETE FROM t").(*Delete)
	if del2.Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE users (id INT, name VARCHAR(32), score FLOAT, ok BOOL, PRIMARY KEY (id))").(*CreateTable)
	if ct.Table != "users" || len(ct.Columns) != 4 {
		t.Fatalf("%+v", ct)
	}
	if ct.Columns[1].Type != sqltypes.KindString {
		t.Error("varchar type")
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
	if _, err := Parse("CREATE TABLE t (a INT)"); err == nil {
		t.Error("missing PK accepted")
	}
}

func TestParseCreateDropIndex(t *testing.T) {
	ci := mustParse(t, "CREATE INDEX ix ON t (a, b)").(*CreateIndex)
	if ci.Name != "ix" || ci.Table != "t" || len(ci.Columns) != 2 {
		t.Fatalf("%+v", ci)
	}
	di := mustParse(t, "DROP INDEX ix ON t").(*DropIndex)
	if di.Name != "ix" {
		t.Fatalf("%+v", di)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t LIMIT x",
		"INSERT INTO t",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a FROM t WHERE a = 1e",
		"SELECT a FROM t WHERE a @ 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT id, name FROM students WHERE score > 10",
		"SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3) ORDER BY d DESC LIMIT 3",
		"SELECT city, COUNT(*) FROM users GROUP BY city",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"UPDATE t SET a = 2 WHERE id = 1",
		"DELETE FROM t WHERE id = 1",
		"CREATE INDEX ix ON t (a, b)",
	}
	for _, src := range srcs {
		first := mustParse(t, src)
		second := mustParse(t, first.SQL())
		if first.SQL() != second.SQL() {
			t.Errorf("round trip diverged:\n  1: %s\n  2: %s", first.SQL(), second.SQL())
		}
	}
}

func TestNormalize(t *testing.T) {
	norm, params, err := NormalizeSQL("SELECT id, name FROM students WHERE score > 17")
	if err != nil {
		t.Fatal(err)
	}
	if norm != "SELECT id, name FROM students WHERE score > ?" {
		t.Errorf("norm = %q", norm)
	}
	if len(params) != 1 || params[0].Int() != 17 {
		t.Errorf("params = %v", params)
	}
}

func TestNormalizeGroupsSimilarQueries(t *testing.T) {
	a, _, _ := NormalizeSQL("SELECT a FROM t WHERE x = 5 AND y IN (1,2,3)")
	b, _, _ := NormalizeSQL("SELECT a FROM t WHERE x = 9 AND y IN (4,5,6,7,8)")
	if a != b {
		t.Errorf("normalized forms differ:\n  %s\n  %s", a, b)
	}
	c, _, _ := NormalizeSQL("SELECT a FROM t WHERE x = 5 AND z IN (1)")
	if a == c {
		t.Error("different structure should not normalize equal")
	}
}

func TestNormalizeDML(t *testing.T) {
	a, _, _ := NormalizeSQL("INSERT INTO t (x, y) VALUES (1, 'a'), (2, 'b')")
	b, _, _ := NormalizeSQL("INSERT INTO t (x, y) VALUES (3, 'c')")
	if a != b {
		t.Errorf("multi-row insert should normalize to single row:\n  %s\n  %s", a, b)
	}
	u, params, _ := NormalizeSQL("UPDATE t SET a = 5 WHERE id = 3")
	if u != "UPDATE t SET a = ? WHERE id = ?" || len(params) != 2 {
		t.Errorf("update norm = %q params=%v", u, params)
	}
	d, _, _ := NormalizeSQL("DELETE FROM t WHERE id = 3")
	if d != "DELETE FROM t WHERE id = ?" {
		t.Errorf("delete norm = %q", d)
	}
}

func TestBindRestoresExecutableStatement(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x = ? AND y > ?")
	bound, err := Bind(stmt, []sqltypes.Value{sqltypes.NewInt(5), sqltypes.NewString("q")})
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT a FROM t WHERE x = 5 AND y > 'q'"
	if bound.SQL() != want {
		t.Errorf("bound = %q, want %q", bound.SQL(), want)
	}
	if _, err := Bind(stmt, []sqltypes.Value{sqltypes.NewInt(5)}); err == nil {
		t.Error("under-binding should fail")
	}
	// Original statement must be untouched.
	if !strings.Contains(stmt.SQL(), "?") {
		t.Error("Bind mutated the original statement")
	}
}

func TestColumnsIn(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE t.x = 1 AND y + z > 2").(*Select)
	cols := ColumnsIn(s.Where)
	if len(cols) != 3 {
		t.Fatalf("cols = %v", cols)
	}
	if cols[0].Table != "t" || cols[0].Column != "x" {
		t.Errorf("first = %+v", cols[0])
	}
}

func TestParseStraightJoin(t *testing.T) {
	s := mustParse(t, "SELECT STRAIGHT_JOIN a FROM t1, t2 WHERE t1.x = t2.y").(*Select)
	if !s.StraightJoin {
		t.Error("straight join flag not set")
	}
}

func TestParseWhitespaceAndCase(t *testing.T) {
	srcs := []string{
		"select ID , Name from Students where SCORE > 10",
		"SELECT\n\tid\nFROM\tstudents\r\nWHERE score>10",
		"SELECT id FROM students WHERE score > 10 ;",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseDeeplyNestedExpressions(t *testing.T) {
	where := "a = 1"
	for i := 0; i < 40; i++ {
		where = "(" + where + " OR b = 2)"
	}
	if _, err := Parse("SELECT a FROM t WHERE " + where); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
}

func TestParseNegativeAndExponentLiterals(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE x = -2.5e-3 AND y = -7").(*Select)
	conjs := s.Where.(*BinaryExpr)
	_ = conjs
	if !strings.Contains(s.SQL(), "-0.0025") {
		t.Errorf("SQL = %q", s.SQL())
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	srcs := []string{
		"SELECT a FROM t WHERE x = 5 AND y IN (1,2,3)",
		"SELECT a, COUNT(*) FROM t WHERE b BETWEEN 1 AND 2 GROUP BY a ORDER BY a LIMIT 3",
		"UPDATE t SET a = 1 WHERE b = 2",
	}
	for _, src := range srcs {
		n1, _, err := NormalizeSQL(src)
		if err != nil {
			t.Fatal(err)
		}
		// Normalizing the normalized text must be a fixpoint.
		n2, _, err := NormalizeSQL(n1)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", n1, err)
		}
		if n1 != n2 {
			t.Errorf("not idempotent:\n  %s\n  %s", n1, n2)
		}
	}
}

func TestBindRoundTripProperty(t *testing.T) {
	// parse → normalize → bind(params) must reproduce a statement with the
	// same normalized form.
	srcs := []string{
		"SELECT a FROM t WHERE x = 5 AND y > 2.5",
		"SELECT a FROM t WHERE x IN (7) AND s LIKE 'ab%'",
		"DELETE FROM t WHERE id = 42",
	}
	for _, src := range srcs {
		stmt := mustParse(t, src)
		norm, params := Normalize(stmt)
		normStmt := mustParse(t, norm)
		bound, err := Bind(normStmt, params)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		norm2, _ := Normalize(bound)
		if norm != norm2 {
			t.Errorf("round trip diverged:\n  %s\n  %s", norm, norm2)
		}
	}
}
