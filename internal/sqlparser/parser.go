package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"aim/internal/sqltypes"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

type parser struct {
	toks         []token
	i            int
	placeholders int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, found %q at offset %d", kw, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q, found %q at offset %d", op, p.peek().text, p.peek().pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q at offset %d", t.text, t.pos)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDropIndex()
	default:
		return nil, fmt.Errorf("sql: unsupported statement starting with %q", p.peek().text)
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	if p.acceptKeyword("STRAIGHT_JOIN") {
		sel.StraightJoin = true
	}
	for {
		se, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		sel.Exprs = append(sel.Exprs, se)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(sel); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = combineAnd(sel.Where, w)
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := &OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.acceptKeyword("OFFSET") {
			off, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			sel.Offset = off
		}
	}
	return sel, nil
}

// parseFrom handles `t1 [AS a] (, t2 | [INNER|LEFT] JOIN t2 [AS b] ON expr)*`.
// JOIN ... ON conditions are folded into the WHERE conjunction; the
// distinction does not matter for this engine's inner-join-only semantics.
func (p *parser) parseFrom(sel *Select) error {
	tr, err := p.parseTableRef()
	if err != nil {
		return err
	}
	sel.Tables = append(sel.Tables, tr)
	for {
		switch {
		case p.acceptOp(","):
			tr, err := p.parseTableRef()
			if err != nil {
				return err
			}
			sel.Tables = append(sel.Tables, tr)
		case p.isKeyword("JOIN") || p.isKeyword("INNER") || p.isKeyword("LEFT") || p.isKeyword("STRAIGHT_JOIN"):
			if p.acceptKeyword("STRAIGHT_JOIN") {
				sel.StraightJoin = true
			} else {
				p.acceptKeyword("INNER")
				p.acceptKeyword("LEFT")
				if err := p.expectKeyword("JOIN"); err != nil {
					return err
				}
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return err
			}
			sel.Tables = append(sel.Tables, tr)
			if p.acceptKeyword("ON") {
				cond, err := p.parseExpr()
				if err != nil {
					return err
				}
				sel.Where = combineAnd(sel.Where, cond)
			}
		default:
			return nil
		}
	}
}

func combineAnd(a, b Expr) Expr {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &BinaryExpr{Op: "AND", Left: a, Right: b}
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tr := &TableRef{Name: name}
	if p.acceptKeyword("AS") {
		tr.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.advance().text
	}
	return tr, nil
}

func (p *parser) parseSelectExpr() (*SelectExpr, error) {
	if p.acceptOp("*") {
		return &SelectExpr{Star: true}, nil
	}
	// t.* form: identifier '.' '*'
	if p.peek().kind == tokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokOp && p.toks[p.i+2].text == "*" {
		tbl := p.advance().text
		p.advance() // .
		p.advance() // *
		return &SelectExpr{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	se := &SelectExpr{Expr: e}
	if p.acceptKeyword("AS") {
		se.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.peek().kind == tokIdent {
		se.Alias = p.advance().text
	}
	return se, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t := p.peek()
	if t.kind != tokInt {
		return 0, fmt.Errorf("sql: expected integer, found %q at offset %d", t.text, t.pos)
	}
	p.advance()
	return strconv.ParseInt(t.text, 10, 64)
}

// Expression grammar (precedence low to high):
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | predicate
//	predicate:= additive [compOp additive | [NOT] IN (...) | [NOT] BETWEEN x AND y
//	             | [NOT] LIKE pattern | IS [NOT] NULL]
//	additive := multexpr (('+'|'-') multexpr)*
//	multexpr := primary (('*'|'/'|'%') primary)*
//	primary  := literal | ? | column | func(args) | '(' expr ')' | '-' primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.isKeyword("NOT") {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		save := p.i
		p.advance()
		if p.isKeyword("IN") || p.isKeyword("BETWEEN") || p.isKeyword("LIKE") {
			not = true
		} else {
			p.i = save
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{Left: left, Not: not}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKeyword("BETWEEN"):
		low, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Left: left, Low: low, High: high, Not: not}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Left: left, Pattern: pat, Not: not}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Left: left, Not: isNot}, nil
	}
	for _, op := range []string{"<=>", "<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.acceptOp("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad integer %q: %v", t.text, err)
		}
		return &Literal{Val: sqltypes.NewInt(v)}, nil
	case tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad float %q: %v", t.text, err)
		}
		return &Literal{Val: sqltypes.NewFloat(v)}, nil
	case tokString:
		p.advance()
		return &Literal{Val: sqltypes.NewString(t.text)}, nil
	case tokPlaceholder:
		p.advance()
		ph := &Placeholder{Ordinal: p.placeholders}
		p.placeholders++
		return ph, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: sqltypes.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q at offset %d", t.text, t.pos)
	case tokOp:
		switch t.text {
		case "(":
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "-":
			p.advance()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if lit, ok := inner.(*Literal); ok && lit.Val.IsNumeric() {
				if lit.Val.Kind() == sqltypes.KindInt {
					return &Literal{Val: sqltypes.NewInt(-lit.Val.Int())}, nil
				}
				return &Literal{Val: sqltypes.NewFloat(-lit.Val.Float())}, nil
			}
			return &BinaryExpr{Op: "-", Left: &Literal{Val: sqltypes.NewInt(0)}, Right: inner}, nil
		}
		return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.text, t.pos)
	case tokIdent:
		p.advance()
		// Function call?
		if p.acceptOp("(") {
			fn := &FuncExpr{Name: strings.ToUpper(t.text)}
			if p.acceptOp("*") {
				fn.Star = true
			} else if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, a)
					if !p.acceptOp(",") {
						break
					}
				}
				return fn, p.expectOp(")")
			} else {
				return fn, nil
			}
			return fn, p.expectOp(")")
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected end of input")
	}
}

func (p *parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		up.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		del.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, fmt.Errorf("sql: expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (*CreateTable, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Table: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, c)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ty, err := p.parseColumnType()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col, Type: ty})
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(ct.PrimaryKey) == 0 {
		return nil, fmt.Errorf("sql: CREATE TABLE %s requires PRIMARY KEY", name)
	}
	return ct, nil
}

func (p *parser) parseColumnType() (sqltypes.Kind, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokKeyword {
		return 0, fmt.Errorf("sql: expected column type, found %q", t.text)
	}
	p.advance()
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return sqltypes.KindInt, nil
	case "FLOAT", "DOUBLE", "DECIMAL", "REAL":
		return sqltypes.KindFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		// Optional length like VARCHAR(32).
		if p.acceptOp("(") {
			if _, err := p.parseIntLiteral(); err != nil {
				return 0, err
			}
			if err := p.expectOp(")"); err != nil {
				return 0, err
			}
		}
		return sqltypes.KindString, nil
	case "BOOL", "BOOLEAN":
		return sqltypes.KindBool, nil
	default:
		return 0, fmt.Errorf("sql: unknown column type %q", t.text)
	}
}

func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, c)
		if !p.acceptOp(",") {
			break
		}
	}
	return ci, p.expectOp(")")
}

func (p *parser) parseDropIndex() (*DropIndex, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Optional "ON table" suffix, accepted and ignored (index names are
	// globally unique in this catalog).
	if p.acceptKeyword("ON") {
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
	}
	return &DropIndex{Name: name}, nil
}
