// Package sqlparser implements a lexer and recursive-descent parser for the
// SQL dialect used throughout this repository, plus query normalization
// (parameterization) as defined in §III-A1 of the AIM paper.
//
// The dialect covers the statement shapes AIM reasons about: SELECT with
// joins, complex AND/OR filters, GROUP BY, ORDER BY and LIMIT; the DML
// statements INSERT/UPDATE/DELETE; and the DDL statements CREATE TABLE,
// CREATE INDEX and DROP INDEX.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokPlaceholder // ?
	tokOp          // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// keywords recognized by the lexer. Identifiers matching these (case
// insensitive) are produced as tokKeyword with upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true, "DISTINCT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true, "DROP": true,
	"PRIMARY": true, "KEY": true, "OFFSET": true, "STRAIGHT_JOIN": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("sql: %s at offset %d", fmt.Sprintf(format, args...), pos)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '?':
		l.pos++
		return token{kind: tokPlaceholder, text: "?", pos: start}, nil
	case c == '\'':
		return l.lexString()
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return l.lexOp()
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	kind := tokInt
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		kind = tokFloat
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		kind = tokFloat
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
			return token{}, l.errf(start, "malformed exponent")
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func (l *lexer) lexOp() (token, error) {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>", "<=>":
	}
	if l.pos+3 <= len(l.src) && l.src[l.pos:l.pos+3] == "<=>" {
		l.pos += 3
		return token{kind: tokOp, text: "<=>", pos: start}, nil
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.pos += 2
		t := two
		if t == "<>" {
			t = "!="
		}
		return token{kind: tokOp, text: t, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '.', ';', '%':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", rune(c))
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
