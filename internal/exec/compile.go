package exec

import (
	"fmt"
	"strings"

	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// CompiledExpr evaluates an expression against the flat env row buffer.
type CompiledExpr func(env []sqltypes.Value) (sqltypes.Value, error)

// Compile resolves every column reference in e against the layout and
// returns a closure tree. Placeholders must have been bound beforehand.
func Compile(e sqlparser.Expr, l *Layout) (CompiledExpr, error) {
	switch v := e.(type) {
	case *sqlparser.Literal:
		val := v.Val
		return func([]sqltypes.Value) (sqltypes.Value, error) { return val, nil }, nil
	case *sqlparser.Placeholder:
		return nil, fmt.Errorf("exec: unbound placeholder")
	case *sqlparser.ColumnRef:
		off, err := l.Resolve(v.Table, v.Column)
		if err != nil {
			return nil, err
		}
		return func(env []sqltypes.Value) (sqltypes.Value, error) { return env[off], nil }, nil
	case *sqlparser.BinaryExpr:
		return compileBinary(v, l)
	case *sqlparser.NotExpr:
		inner, err := Compile(v.Inner, l)
		if err != nil {
			return nil, err
		}
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			val, err := inner(env)
			if err != nil || val.IsNull() {
				return val, err
			}
			return sqltypes.NewBool(!val.Bool()), nil
		}, nil
	case *sqlparser.InExpr:
		return compileIn(v, l)
	case *sqlparser.BetweenExpr:
		return compileBetween(v, l)
	case *sqlparser.LikeExpr:
		return compileLike(v, l)
	case *sqlparser.IsNullExpr:
		inner, err := Compile(v.Left, l)
		if err != nil {
			return nil, err
		}
		not := v.Not
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			val, err := inner(env)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(val.IsNull() != not), nil
		}, nil
	case *sqlparser.FuncExpr:
		return compileScalarFunc(v, l)
	default:
		return nil, fmt.Errorf("exec: cannot compile %T", e)
	}
}

func compileBinary(v *sqlparser.BinaryExpr, l *Layout) (CompiledExpr, error) {
	left, err := Compile(v.Left, l)
	if err != nil {
		return nil, err
	}
	right, err := Compile(v.Right, l)
	if err != nil {
		return nil, err
	}
	op := v.Op
	switch op {
	case "AND":
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := left(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if !a.IsNull() && !a.Bool() {
				return sqltypes.NewBool(false), nil
			}
			b, err := right(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if !b.IsNull() && !b.Bool() {
				return sqltypes.NewBool(false), nil
			}
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(true), nil
		}, nil
	case "OR":
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := left(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if !a.IsNull() && a.Bool() {
				return sqltypes.NewBool(true), nil
			}
			b, err := right(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if !b.IsNull() && b.Bool() {
				return sqltypes.NewBool(true), nil
			}
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=", "<=>":
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := left(env)
			if err != nil {
				return sqltypes.Null, err
			}
			b, err := right(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if op == "<=>" {
				return sqltypes.NewBool(sqltypes.Compare(a, b) == 0), nil
			}
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null, nil
			}
			c := sqltypes.Compare(a, b)
			var r bool
			switch op {
			case "=":
				r = c == 0
			case "!=":
				r = c != 0
			case "<":
				r = c < 0
			case "<=":
				r = c <= 0
			case ">":
				r = c > 0
			case ">=":
				r = c >= 0
			}
			return sqltypes.NewBool(r), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := left(env)
			if err != nil {
				return sqltypes.Null, err
			}
			b, err := right(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null, nil
			}
			return arith(op, a, b)
		}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported operator %q", op)
	}
}

func arith(op string, a, b sqltypes.Value) (sqltypes.Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return sqltypes.Null, fmt.Errorf("exec: %s on non-numeric values", op)
	}
	if a.Kind() == sqltypes.KindInt && b.Kind() == sqltypes.KindInt && op != "/" {
		x, y := a.Int(), b.Int()
		switch op {
		case "+":
			return sqltypes.NewInt(x + y), nil
		case "-":
			return sqltypes.NewInt(x - y), nil
		case "*":
			return sqltypes.NewInt(x * y), nil
		case "%":
			if y == 0 {
				return sqltypes.Null, nil
			}
			return sqltypes.NewInt(x % y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case "+":
		return sqltypes.NewFloat(x + y), nil
	case "-":
		return sqltypes.NewFloat(x - y), nil
	case "*":
		return sqltypes.NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(x / y), nil
	case "%":
		if y == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewFloat(float64(int64(x) % int64(y))), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: bad arithmetic op %q", op)
}

func compileIn(v *sqlparser.InExpr, l *Layout) (CompiledExpr, error) {
	left, err := Compile(v.Left, l)
	if err != nil {
		return nil, err
	}
	items := make([]CompiledExpr, len(v.List))
	for i, item := range v.List {
		items[i], err = Compile(item, l)
		if err != nil {
			return nil, err
		}
	}
	not := v.Not
	return func(env []sqltypes.Value) (sqltypes.Value, error) {
		val, err := left(env)
		if err != nil {
			return sqltypes.Null, err
		}
		if val.IsNull() {
			return sqltypes.Null, nil
		}
		sawNull := false
		for _, item := range items {
			iv, err := item(env)
			if err != nil {
				return sqltypes.Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if sqltypes.Compare(val, iv) == 0 {
				return sqltypes.NewBool(!not), nil
			}
		}
		if sawNull {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(not), nil
	}, nil
}

func compileBetween(v *sqlparser.BetweenExpr, l *Layout) (CompiledExpr, error) {
	left, err := Compile(v.Left, l)
	if err != nil {
		return nil, err
	}
	lo, err := Compile(v.Low, l)
	if err != nil {
		return nil, err
	}
	hi, err := Compile(v.High, l)
	if err != nil {
		return nil, err
	}
	not := v.Not
	return func(env []sqltypes.Value) (sqltypes.Value, error) {
		val, err := left(env)
		if err != nil {
			return sqltypes.Null, err
		}
		lv, err := lo(env)
		if err != nil {
			return sqltypes.Null, err
		}
		hv, err := hi(env)
		if err != nil {
			return sqltypes.Null, err
		}
		if val.IsNull() || lv.IsNull() || hv.IsNull() {
			return sqltypes.Null, nil
		}
		in := sqltypes.Compare(val, lv) >= 0 && sqltypes.Compare(val, hv) <= 0
		return sqltypes.NewBool(in != not), nil
	}, nil
}

func compileLike(v *sqlparser.LikeExpr, l *Layout) (CompiledExpr, error) {
	left, err := Compile(v.Left, l)
	if err != nil {
		return nil, err
	}
	pat, err := Compile(v.Pattern, l)
	if err != nil {
		return nil, err
	}
	not := v.Not
	return func(env []sqltypes.Value) (sqltypes.Value, error) {
		val, err := left(env)
		if err != nil {
			return sqltypes.Null, err
		}
		pv, err := pat(env)
		if err != nil {
			return sqltypes.Null, err
		}
		if val.IsNull() || pv.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(val.Str(), pv.Str()) != not), nil
	}, nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte).
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matcher with backtracking on %.
	si, pi := 0, 0
	starSI, starPI := -1, -1
	for si < len(s) {
		if pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(pattern) && pattern[pi] == '%' {
			starPI = pi
			starSI = si
			pi++
		} else if starPI >= 0 {
			starSI++
			si = starSI
			pi = starPI + 1
		} else {
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// LikePrefix extracts the constant prefix of a LIKE pattern (text before the
// first wildcard). A non-empty prefix makes the predicate range-scannable.
func LikePrefix(pattern string) string {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern
	}
	return pattern[:i]
}

func compileScalarFunc(v *sqlparser.FuncExpr, l *Layout) (CompiledExpr, error) {
	if v.IsAggregate() {
		return nil, fmt.Errorf("exec: aggregate %s not allowed here", v.Name)
	}
	switch v.Name {
	case "ABS":
		if len(v.Args) != 1 {
			return nil, fmt.Errorf("exec: ABS takes 1 argument")
		}
		arg, err := Compile(v.Args[0], l)
		if err != nil {
			return nil, err
		}
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := arg(env)
			if err != nil || a.IsNull() {
				return a, err
			}
			if a.Kind() == sqltypes.KindInt && a.Int() < 0 {
				return sqltypes.NewInt(-a.Int()), nil
			}
			if a.Kind() == sqltypes.KindFloat && a.Float() < 0 {
				return sqltypes.NewFloat(-a.Float()), nil
			}
			return a, nil
		}, nil
	case "LENGTH":
		if len(v.Args) != 1 {
			return nil, fmt.Errorf("exec: LENGTH takes 1 argument")
		}
		arg, err := Compile(v.Args[0], l)
		if err != nil {
			return nil, err
		}
		return func(env []sqltypes.Value) (sqltypes.Value, error) {
			a, err := arg(env)
			if err != nil || a.IsNull() {
				return a, err
			}
			return sqltypes.NewInt(int64(len(a.Str()))), nil
		}, nil
	default:
		return nil, fmt.Errorf("exec: unknown function %s", v.Name)
	}
}
