package exec

import (
	"strings"
	"testing"

	"aim/internal/catalog"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/storage"
)

// fixture builds a store with orders(id, cust_id, status, amount) and
// customers(id, city, tier), plus an index on orders(cust_id, status).
func fixture(t testing.TB) (*storage.Store, *catalog.Schema) {
	t.Helper()
	schema := catalog.NewSchema()
	orders, err := catalog.NewTable("orders", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "cust_id", Type: sqltypes.KindInt},
		{Name: "status", Type: sqltypes.KindString},
		{Name: "amount", Type: sqltypes.KindFloat},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	customers, err := catalog.NewTable("customers", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "city", Type: sqltypes.KindString},
		{Name: "tier", Type: sqltypes.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if err := schema.AddTable(orders); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddTable(customers); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	ot, _ := store.CreateTable(orders)
	ct, _ := store.CreateTable(customers)
	statuses := []string{"new", "paid", "shipped", "done"}
	for i := int64(0); i < 400; i++ {
		err := ot.Insert(sqltypes.Row{
			sqltypes.NewInt(i),
			sqltypes.NewInt(i % 40),
			sqltypes.NewString(statuses[i%4]),
			sqltypes.NewFloat(float64(i) * 1.5),
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 40; i++ {
		city := "sf"
		if i%2 == 0 {
			city = "nyc"
		}
		err := ct.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewString(city), sqltypes.NewInt(i % 3)}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	ixDef := &catalog.Index{Name: "o_cust_status", Table: "orders", Columns: []string{"cust_id", "status"}}
	if err := schema.AddIndex(ixDef); err != nil {
		t.Fatal(err)
	}
	if _, err := ot.BuildIndex(ixDef, nil); err != nil {
		t.Fatal(err)
	}
	return store, schema
}

func singleLayout(schema *catalog.Schema, table string) *Layout {
	return NewLayout([]Instance{{Alias: table, Table: schema.Table(table)}})
}

func compileWhere(t testing.TB, l *Layout, where string) CompiledExpr {
	t.Helper()
	stmt, err := sqlparser.Parse("SELECT * FROM x WHERE " + where)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := Compile(stmt.(*sqlparser.Select).Where, l)
	if err != nil {
		t.Fatal(err)
	}
	return ce
}

func colOutput(t testing.TB, l *Layout, refs ...string) []OutputSpec {
	t.Helper()
	out := make([]OutputSpec, len(refs))
	for i, r := range refs {
		qual := ""
		if idx := strings.IndexByte(r, '.'); idx >= 0 {
			qual, r = r[:idx], r[idx+1:]
		}
		off, err := l.Resolve(qual, r)
		if err != nil {
			t.Fatal(err)
		}
		o := off
		out[i] = OutputSpec{Agg: -1, Expr: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[o], nil }}
	}
	return out
}

func TestCompileEvaluation(t *testing.T) {
	_, schema := fixture(t)
	l := singleLayout(schema, "orders")
	env := make([]sqltypes.Value, l.Width)
	env[0] = sqltypes.NewInt(7)         // id
	env[1] = sqltypes.NewInt(3)         // cust_id
	env[2] = sqltypes.NewString("paid") // status
	env[3] = sqltypes.NewFloat(10.5)    // amount

	cases := []struct {
		where string
		want  bool
	}{
		{"id = 7", true},
		{"id != 7", false},
		{"id + 1 = 8", true},
		{"id * 2 >= 14", true},
		{"amount / 2 > 5", true},
		{"amount - 0.5 = 10.0", true},
		{"id % 2 = 1", true},
		{"status = 'paid'", true},
		{"status LIKE 'pa%'", true},
		{"status LIKE '%id'", true},
		{"status LIKE 'p_id'", true},
		{"status LIKE 'x%'", false},
		{"status NOT LIKE 'x%'", true},
		{"id IN (1, 7, 9)", true},
		{"id NOT IN (1, 7, 9)", false},
		{"id BETWEEN 5 AND 9", true},
		{"id NOT BETWEEN 5 AND 9", false},
		{"id IS NULL", false},
		{"id IS NOT NULL", true},
		{"id = 7 AND status = 'paid'", true},
		{"id = 8 OR status = 'paid'", true},
		{"NOT (id = 8)", true},
		{"id <=> 7", true},
		{"LENGTH(status) = 4", true},
		{"ABS(0 - id) = 7", true},
	}
	for _, c := range cases {
		ce := compileWhere(t, l, c.where)
		got, err := passes(ce, env)
		if err != nil {
			t.Errorf("%s: %v", c.where, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestCompileNullSemantics(t *testing.T) {
	_, schema := fixture(t)
	l := singleLayout(schema, "orders")
	env := make([]sqltypes.Value, l.Width) // all NULL

	for _, where := range []string{"id = 1", "id != 1", "id < 1", "id IN (1,2)", "id BETWEEN 1 AND 2", "status LIKE 'a%'"} {
		ce := compileWhere(t, l, where)
		v, err := ce(env)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsNull() {
			t.Errorf("%s over NULL row = %v, want NULL", where, v)
		}
	}
	// IS NULL is true; <=> NULL literal is true.
	ce := compileWhere(t, l, "id IS NULL")
	if ok, _ := passes(ce, env); !ok {
		t.Error("IS NULL should pass")
	}
	ce = compileWhere(t, l, "id <=> NULL")
	if ok, _ := passes(ce, env); !ok {
		t.Error("<=> NULL should pass")
	}
	// Short-circuit: FALSE AND NULL = FALSE, TRUE OR NULL = TRUE.
	ce = compileWhere(t, l, "1 = 2 AND id = 1")
	if v, _ := ce(env); v.IsNull() || v.Bool() {
		t.Error("FALSE AND NULL should be FALSE")
	}
	ce = compileWhere(t, l, "1 = 1 OR id = 1")
	if v, _ := ce(env); v.IsNull() || !v.Bool() {
		t.Error("TRUE OR NULL should be TRUE")
	}
}

func TestCompileErrors(t *testing.T) {
	_, schema := fixture(t)
	l := singleLayout(schema, "orders")
	bad := []sqlparser.Expr{
		&sqlparser.ColumnRef{Column: "nope"},
		&sqlparser.ColumnRef{Table: "ghost", Column: "id"},
		&sqlparser.Placeholder{},
		&sqlparser.FuncExpr{Name: "NOSUCH"},
	}
	for _, e := range bad {
		if _, err := Compile(e, l); err == nil {
			t.Errorf("Compile(%s) should fail", e.SQL())
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		if likeMatch(c.s, c.p) != c.want {
			t.Errorf("likeMatch(%q, %q) != %v", c.s, c.p, c.want)
		}
	}
	if LikePrefix("abc%def") != "abc" || LikePrefix("xyz") != "xyz" || LikePrefix("%a") != "" {
		t.Error("LikePrefix wrong")
	}
}

func TestFullScanWithFilter(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout: l,
		Steps:  []Step{{Instance: 0, Filter: compileWhere(t, l, "cust_id = 5")}},
		Output: colOutput(t, l, "id", "amount"),
		Limit:  -1,
	}
	res, err := ex.Run(p, []string{"id", "amount"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	if res.Stats.RowsRead != 400 {
		t.Errorf("full scan RowsRead = %d, want 400", res.Stats.RowsRead)
	}
	if res.Stats.RowsSent != 10 {
		t.Errorf("RowsSent = %d", res.Stats.RowsSent)
	}
}

func TestIndexEqScan(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout: l,
		Steps: []Step{{
			Instance:  0,
			IndexName: "o_cust_status",
			EqKeys:    []KeySource{Literal(sqltypes.NewInt(5)), Literal(sqltypes.NewString("paid"))},
		}},
		Output: colOutput(t, l, "id"),
		Limit:  -1,
	}
	res, err := ex.Run(p, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// cust_id = 5: ids 5,45,...,365 (10 rows); status paid = id%4==1 → ids 45,125,205,285,365? id%40==5 and id%4==1: id≡5 (mod 40) → id%4 == 1 iff 5%4==1 yes all. Wait: 5%4=1 so all 10 rows are 'paid'? statuses[i%4] with i≡5 mod 40 → i%4 = 1 always → status "paid". So 10 rows.
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	// Index scan should touch ~20 rows (10 entries + 10 PK lookups), far
	// fewer than the 400-row full scan.
	if res.Stats.RowsRead > 30 {
		t.Errorf("index scan RowsRead = %d, want ~20", res.Stats.RowsRead)
	}
}

func TestIndexRangeScan(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	lo, hi := Literal(sqltypes.NewString("paid")), Literal(sqltypes.NewString("shipped"))
	p := &Plan{
		Layout: l,
		Steps: []Step{{
			Instance:  0,
			IndexName: "o_cust_status",
			EqKeys:    []KeySource{Literal(sqltypes.NewInt(5))},
			Range:     &RangeSpec{Lo: &lo, Hi: &hi, LoInc: true, HiInc: false},
		}},
		Output: colOutput(t, l, "id", "status"),
		Limit:  -1,
	}
	res, err := ex.Run(p, []string{"id", "status"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r[1].Str() != "paid" {
			t.Errorf("unexpected status %v", r[1])
		}
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestCoveringScanSkipsPKLookups(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	mk := func(covering bool) *Plan {
		return &Plan{
			Layout: l,
			Steps: []Step{{
				Instance:  0,
				IndexName: "o_cust_status",
				EqKeys:    []KeySource{Literal(sqltypes.NewInt(5))},
				Covering:  covering,
			}},
			Output: colOutput(t, l, "cust_id", "status", "id"),
			Limit:  -1,
		}
	}
	cov, err := ex.Run(mk(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	non, err := ex.Run(mk(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Rows) != len(non.Rows) {
		t.Fatalf("row count differs: %d vs %d", len(cov.Rows), len(non.Rows))
	}
	if cov.Stats.RowsRead >= non.Stats.RowsRead {
		t.Errorf("covering read %d rows, non-covering %d", cov.Stats.RowsRead, non.Stats.RowsRead)
	}
	if cov.Stats.PageReads >= non.Stats.PageReads {
		t.Errorf("covering pages %d, non-covering %d", cov.Stats.PageReads, non.Stats.PageReads)
	}
	// Covered values must match the base rows.
	for i := range cov.Rows {
		for j := range cov.Rows[i] {
			if sqltypes.Compare(cov.Rows[i][j], non.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, cov.Rows[i][j], non.Rows[i][j])
			}
		}
	}
}

func TestICPFiltersBeforePKLookup(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	icp := compileWhere(t, l, "status = 'paid'")
	p := &Plan{
		Layout: l,
		Steps: []Step{{
			Instance:  0,
			IndexName: "o_cust_status",
			EqKeys:    []KeySource{Literal(sqltypes.NewInt(4))},
			ICP:       icp,
		}},
		Output: colOutput(t, l, "id", "status"),
		Limit:  -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// cust_id=4 → ids ≡ 4 (mod 40) → status index i%4 = 0 → "new". None paid.
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(res.Rows))
	}
	// ICP should have examined 10 index entries but done zero PK lookups.
	if res.Stats.RowsRead != 10 {
		t.Errorf("RowsRead = %d, want 10 (entries only)", res.Stats.RowsRead)
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := NewLayout([]Instance{
		{Alias: "c", Table: schema.Table("customers")},
		{Alias: "o", Table: schema.Table("orders")},
	})
	custIDOff, _ := l.Resolve("c", "id")
	cityFilter := compileWhere(t, l, "c.city = 'nyc'")
	p := &Plan{
		Layout: l,
		Steps: []Step{
			{Instance: 0, Filter: cityFilter},
			{Instance: 1, IndexName: "o_cust_status", EqKeys: []KeySource{SlotRef(custIDOff)}},
		},
		Output: colOutput(t, l, "city", "amount"),
		Limit:  -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 20 nyc customers x 10 orders each.
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d, want 200", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[0].Str() != "nyc" {
			t.Fatal("join leaked non-nyc row")
		}
	}
}

func TestJoinMatchesFullScanSemantics(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := NewLayout([]Instance{
		{Alias: "c", Table: schema.Table("customers")},
		{Alias: "o", Table: schema.Table("orders")},
	})
	joinCond := compileWhere(t, l, "o.cust_id = c.id AND c.tier = 1")
	// Plan A: cross product + filter on the last step.
	planA := &Plan{
		Layout: l,
		Steps: []Step{
			{Instance: 0},
			{Instance: 1, Filter: joinCond},
		},
		Output: colOutput(t, l, "c.id", "city"),
		Limit:  -1,
	}
	// Plan B: index lookup join with tier filter on first step.
	custIDOff, _ := l.Resolve("c", "id")
	planB := &Plan{
		Layout: l,
		Steps: []Step{
			{Instance: 0, Filter: compileWhere(t, l, "c.tier = 1")},
			{Instance: 1, IndexName: "o_cust_status", EqKeys: []KeySource{SlotRef(custIDOff)}},
		},
		Output: colOutput(t, l, "c.id", "city"),
		Limit:  -1,
	}
	a, err := ex.Run(planA, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.Run(planB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) == 0 || len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	if b.Stats.RowsRead >= a.Stats.RowsRead {
		t.Errorf("index join should read fewer rows: %d vs %d", b.Stats.RowsRead, a.Stats.RowsRead)
	}
}

func TestHashAggregation(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	statusOff, _ := l.Resolve("", "status")
	amountOff, _ := l.Resolve("", "amount")
	p := &Plan{
		Layout:  l,
		Steps:   []Step{{Instance: 0}},
		Grouped: true,
		GroupBy: []CompiledExpr{func(env []sqltypes.Value) (sqltypes.Value, error) { return env[statusOff], nil }},
		Aggs: []AggSpec{
			{Func: AggCount},
			{Func: AggSum, Arg: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[amountOff], nil }},
			{Func: AggMin, Arg: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[amountOff], nil }},
			{Func: AggMax, Arg: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[amountOff], nil }},
			{Func: AggAvg, Arg: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[amountOff], nil }},
		},
		Output: []OutputSpec{
			{Agg: -1, Expr: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[statusOff], nil }},
			{Agg: 0}, {Agg: 1}, {Agg: 2}, {Agg: 3}, {Agg: 4},
		},
		Limit: -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() != 100 {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
		if r[2].IsNull() || r[3].IsNull() || r[4].IsNull() || r[5].IsNull() {
			t.Errorf("group %v has null aggregates", r[0])
		}
		avg := r[2].Float() / 100
		if diff := avg - r[5].Float(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("avg mismatch: %v vs %v", avg, r[5])
		}
	}
}

func TestStreamAggregationMatchesHash(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	custOff, _ := l.Resolve("", "cust_id")
	groupBy := []CompiledExpr{func(env []sqltypes.Value) (sqltypes.Value, error) { return env[custOff], nil }}
	mk := func(stream bool) *Plan {
		step := Step{Instance: 0}
		if stream {
			// Scan via the index on (cust_id, status): rows arrive in
			// cust_id order, so streaming aggregation is valid.
			step.IndexName = "o_cust_status"
		}
		return &Plan{
			Layout:       l,
			Steps:        []Step{step},
			Grouped:      true,
			GroupBy:      groupBy,
			GroupOrdered: stream,
			Aggs:         []AggSpec{{Func: AggCount}},
			Output: []OutputSpec{
				{Agg: -1, Expr: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[custOff], nil }},
				{Agg: 0},
			},
			Limit: -1,
		}
	}
	hash, err := ex.Run(mk(false), nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := ex.Run(mk(true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash.Rows) != 40 || len(stream.Rows) != 40 {
		t.Fatalf("groups: hash=%d stream=%d", len(hash.Rows), len(stream.Rows))
	}
	counts := map[int64]int64{}
	for _, r := range hash.Rows {
		counts[r[0].Int()] = r[1].Int()
	}
	for _, r := range stream.Rows {
		if counts[r[0].Int()] != r[1].Int() {
			t.Fatalf("stream group %v count %v != hash %v", r[0], r[1], counts[r[0].Int()])
		}
	}
}

func TestAggregateOverEmptyInput(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	amountOff, _ := l.Resolve("", "amount")
	p := &Plan{
		Layout:  l,
		Steps:   []Step{{Instance: 0, Filter: compileWhere(t, l, "id = -1")}},
		Grouped: true,
		Aggs: []AggSpec{
			{Func: AggCount},
			{Func: AggSum, Arg: func(env []sqltypes.Value) (sqltypes.Value, error) { return env[amountOff], nil }},
		},
		Output: []OutputSpec{{Agg: 0}, {Agg: 1}},
		Limit:  -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestOrderLimitOffsetDistinct(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout:   l,
		Steps:    []Step{{Instance: 0}},
		Output:   colOutput(t, l, "status"),
		Distinct: true,
		OrderBy:  []OrderSpec{{Col: 0, Desc: true}},
		Limit:    2,
		Offset:   1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Distinct statuses sorted desc: shipped, paid, new, done → offset 1,
	// limit 2 → paid, new.
	if res.Rows[0][0].Str() != "paid" || res.Rows[1][0].Str() != "new" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.SortRows == 0 {
		t.Error("sort not accounted")
	}
}

func TestOrderSatisfiedSkipsSort(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout:         l,
		Steps:          []Step{{Instance: 0, IndexName: "o_cust_status"}},
		Output:         colOutput(t, l, "cust_id"),
		OrderBy:        []OrderSpec{{Col: 0}},
		OrderSatisfied: true,
		Limit:          -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SortRows != 0 {
		t.Error("sort should be skipped")
	}
	for i := 1; i < len(res.Rows); i++ {
		if sqltypes.Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
			t.Fatal("index scan did not deliver sorted rows")
		}
	}
}

func TestHiddenTailTrimmed(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout:     l,
		Steps:      []Step{{Instance: 0}},
		Output:     colOutput(t, l, "status", "amount"),
		OrderBy:    []OrderSpec{{Col: 1, Desc: true}},
		HiddenTail: 1,
		Limit:      3,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Rows[0]) != 1 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.Rows[0]))
	}
}

func TestDMLInsertUpdateDelete(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	st, err := ex.Insert("orders", []sqltypes.Row{
		{sqltypes.NewInt(1000), sqltypes.NewInt(1), sqltypes.NewString("new"), sqltypes.NewFloat(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsWritten != 1 || st.IndexWrites != 1 {
		t.Errorf("insert stats = %+v", st)
	}
	if _, err := ex.Insert("ghost", nil); err == nil {
		t.Error("insert into missing table should fail")
	}

	l := singleLayout(schema, "orders")
	findPlan := &Plan{
		Layout: l,
		Steps:  []Step{{Instance: 0, Filter: compileWhere(t, l, "id = 1000")}},
		Limit:  -1,
	}
	amountOrd := schema.Table("orders").ColumnIndex("amount")
	st, err = ex.Update(findPlan, []Assignment{{
		Ordinal: amountOrd,
		Value:   func(env []sqltypes.Value) (sqltypes.Value, error) { return sqltypes.NewFloat(99), nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsSent != 1 {
		t.Errorf("update affected %d", st.RowsSent)
	}
	row, _ := store.Table("orders").GetByPK(
		store.Table("orders").PKKey(sqltypes.Row{sqltypes.NewInt(1000), sqltypes.Null, sqltypes.Null, sqltypes.Null}), nil)
	if row[3].Float() != 99 {
		t.Errorf("update not applied: %v", row)
	}

	st, err = ex.Delete(findPlan)
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsSent != 1 {
		t.Errorf("delete affected %d", st.RowsSent)
	}
	if store.Table("orders").RowCount() != 400 {
		t.Errorf("row count = %d, want 400", store.Table("orders").RowCount())
	}
	// Index must be consistent after the DML round trip.
	if store.Table("orders").Index("o_cust_status").Len() != 400 {
		t.Error("index out of sync after DML")
	}
}

func TestCPUSecondsModel(t *testing.T) {
	var s Stats
	if s.CPUSeconds() != 0 {
		t.Error("zero stats should cost 0")
	}
	s.PageReads = 100
	base := s.CPUSeconds()
	if base <= 0 {
		t.Error("page reads should cost")
	}
	s.SortRows = 1000
	if s.CPUSeconds() <= base {
		t.Error("sort should add cost")
	}
}

func TestInMultiRangeScan(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout: l,
		Steps: []Step{{
			Instance:  0,
			IndexName: "o_cust_status",
			In: []KeySource{
				Literal(sqltypes.NewInt(5)),
				Literal(sqltypes.NewInt(7)),
				Literal(sqltypes.NewInt(5)), // duplicate: must be deduped
				Literal(sqltypes.Null),      // NULL never matches
			},
		}},
		Output: colOutput(t, l, "cust_id"),
		Limit:  -1,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	// Output sorted by cust_id because values are scanned in order.
	for i := 1; i < len(res.Rows); i++ {
		if sqltypes.Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
			t.Fatal("IN scan output not sorted")
		}
	}
}

func TestLimitEarlyTermination(t *testing.T) {
	store, schema := fixture(t)
	ex := New(store)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout: l,
		Steps:  []Step{{Instance: 0}},
		Output: colOutput(t, l, "id"),
		Limit:  5,
	}
	res, err := ex.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Stats.RowsRead > 10 {
		t.Errorf("early termination read %d rows", res.Stats.RowsRead)
	}
	// With an unsatisfied ORDER BY, the full input must still be read.
	p2 := &Plan{
		Layout:  l,
		Steps:   []Step{{Instance: 0}},
		Output:  colOutput(t, l, "amount"),
		OrderBy: []OrderSpec{{Col: 0, Desc: true}},
		Limit:   5,
	}
	res2, err := ex.Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.RowsRead != 400 {
		t.Errorf("sorted limit read %d rows, want 400", res2.Stats.RowsRead)
	}
}
