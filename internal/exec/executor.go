package exec

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aim/internal/sqltypes"
	"aim/internal/storage"
)

// errStop aborts the join pipeline once a LIMIT target is reached.
var errStop = errors.New("exec: early stop")

// Executor runs physical plans against a store.
type Executor struct {
	Store *storage.Store
	// RowOnly disables the vectorized batch engine, forcing every plan
	// through the tuple-at-a-time row loop. The zero value (vectorized
	// execution on) is the production configuration; differential tests and
	// benchmarks flip it to pin the two engines against each other.
	RowOnly bool
	m       *execMetrics // nil when observability is off
	// arenas recycles batch scratch buffers (row views, selection vectors,
	// tri-state predicate lanes, decode slabs) across vectorized runs.
	arenas sync.Pool
}

// New returns an executor over the store.
func New(store *storage.Store) *Executor { return &Executor{Store: store} }

// Result is the output of a SELECT execution.
type Result struct {
	Columns []string
	Rows    []sqltypes.Row
	Stats   Stats
}

// Run executes a SELECT plan.
func (e *Executor) Run(p *Plan, columns []string) (*Result, error) {
	res := &Result{Columns: columns}
	env := make([]sqltypes.Value, p.Layout.Width)

	// Early termination: when no sort, grouping or dedup reorders rows,
	// LIMIT can stop the pipeline as soon as enough rows are produced.
	rowTarget := int64(-1)
	if !p.Grouped && !p.Distinct && p.Limit >= 0 && (len(p.OrderBy) == 0 || p.OrderSatisfied) {
		rowTarget = p.Limit + p.Offset
	}

	// The batch engine covers single-step pipelines without an early-stop
	// target. Join pipelines stay on the row loop (batching doesn't pay for
	// the inner steps of an index nested-loop join), and early-stop plans
	// must stop mid-scan at exactly the row the row loop would, which batch
	// reads cannot do without breaking Stats parity.
	if !e.RowOnly && rowTarget < 0 && len(p.Steps) == 1 {
		return e.runVectorized(p, res)
	}

	var outRows []sqltypes.Row
	emitEnvRow := func() error {
		row := make(sqltypes.Row, len(p.Output))
		for i, o := range p.Output {
			v, err := o.Expr(env)
			if err != nil {
				return err
			}
			row[i] = v
		}
		outRows = append(outRows, row)
		if rowTarget >= 0 && int64(len(outRows)) >= rowTarget {
			return errStop
		}
		return nil
	}

	if p.Grouped {
		agg := newAggregator(p)
		err := e.runSteps(p, 0, env, &res.Stats, func() error { return agg.absorb(env) })
		if err != nil {
			return nil, err
		}
		outRows, err = agg.finish()
		if err != nil {
			return nil, err
		}
	} else {
		if err := e.runSteps(p, 0, env, &res.Stats, emitEnvRow); err != nil && err != errStop {
			return nil, err
		}
	}

	return e.finish(p, outRows, res)
}

// finish applies the shared result tail — DISTINCT, ORDER BY, LIMIT/OFFSET,
// hidden-column trimming — and records stats. Both the row loop and the batch
// engine end here, so the tail semantics are identical by construction.
func (e *Executor) finish(p *Plan, outRows []sqltypes.Row, res *Result) (*Result, error) {
	if p.Distinct {
		outRows = distinctRows(outRows, p.HiddenTail, &res.Stats)
	}
	if len(p.OrderBy) > 0 && !p.OrderSatisfied {
		res.Stats.SortRows += int64(len(outRows))
		sortRows(outRows, p.OrderBy)
	}
	outRows = applyLimit(outRows, p.Limit, p.Offset)
	if p.HiddenTail > 0 {
		for i, r := range outRows {
			outRows[i] = r[:len(r)-p.HiddenTail]
		}
	}
	res.Rows = outRows
	res.Stats.RowsSent = int64(len(outRows))
	e.record(res.Stats)
	return res, nil
}

// runSteps drives the left-deep nested-loop pipeline. onRow is invoked once
// per fully joined env row.
func (e *Executor) runSteps(p *Plan, depth int, env []sqltypes.Value, st *Stats, onRow func() error) error {
	if depth == len(p.Steps) {
		return onRow()
	}
	step := &p.Steps[depth]
	inst := p.Layout.Instances[step.Instance]
	tbl := e.Store.Table(inst.Table.Name)
	if tbl == nil {
		return fmt.Errorf("exec: table %q not materialized", inst.Table.Name)
	}

	// Resolve equality-prefix values; a NULL equality key matches nothing.
	prefix := make([]sqltypes.Value, len(step.EqKeys))
	for i, k := range step.EqKeys {
		v := k.Resolve(env)
		if v.IsNull() {
			return nil
		}
		prefix[i] = v
	}

	if len(step.In) > 0 {
		// Multi-range read: one bounded scan per IN value, in value order so
		// the output remains sorted on the index columns.
		vals := make([]sqltypes.Value, 0, len(step.In))
		for _, ks := range step.In {
			v := ks.Resolve(env)
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return sqltypes.Compare(vals[i], vals[j]) < 0 })
		prev := sqltypes.Null
		for _, v := range vals {
			if !prev.IsNull() && sqltypes.Compare(prev, v) == 0 {
				continue // dedupe repeated IN values
			}
			prev = v
			full := append(append([]sqltypes.Value(nil), prefix...), v)
			lo, hi, hiInc, _ := scanBounds(full, nil, env) // non-null prefix: never empty
			var err error
			if step.IndexName == "" {
				err = e.scanClustered(p, depth, step, tbl, env, lo, hi, hiInc, st, onRow)
			} else {
				err = e.scanIndex(p, depth, step, tbl, env, lo, hi, hiInc, st, onRow)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	lo, hi, hiInc, empty := scanBounds(prefix, step.Range, env)
	if empty {
		return nil
	}
	if step.IndexName == "" {
		return e.scanClustered(p, depth, step, tbl, env, lo, hi, hiInc, st, onRow)
	}
	return e.scanIndex(p, depth, step, tbl, env, lo, hi, hiInc, st, onRow)
}

// scanBounds builds encoded byte bounds from the equality prefix and the
// optional range on the following column. The returned hiInc is real: an
// inclusive upper bound relies on the B+tree's prefix-inclusive bound
// semantics (keys equal to hi or extending it stay in range), which admits
// exactly the composite keys whose bounded columns match — no artificial
// 0xFF successor byte is appended. empty marks a scan statically proven to
// match nothing: a NULL range bound makes the comparison predicate NULL for
// every row, so the caller skips the scan outright instead of walking keys
// the residual filter would discard one by one.
func scanBounds(prefix []sqltypes.Value, rng *RangeSpec, env []sqltypes.Value) (lo, hi []byte, hiInc, empty bool) {
	base := sqltypes.EncodeKey(nil, prefix...)
	if rng == nil {
		if len(prefix) == 0 {
			return nil, nil, false, false // full scan
		}
		// Prefix-only: every key extending base.
		return base, base, true, false
	}
	lo = base
	if rng.Lo != nil {
		v := rng.Lo.Resolve(env)
		if v.IsNull() {
			return nil, nil, false, true
		}
		lo = sqltypes.EncodeKey(append([]byte(nil), base...), v)
		if !rng.LoInc {
			// Exclusive lower bound: skip every key extending lo. 0xFF sorts
			// after any value-encoding continuation byte (tags are <= 0x02),
			// so lo+0xFF lands past the last key whose bounded column equals
			// the bound and before the next column value's first key.
			lo = append(lo, 0xFF)
		}
	}
	if rng.Hi != nil {
		v := rng.Hi.Resolve(env)
		if v.IsNull() {
			return nil, nil, false, true
		}
		hi = sqltypes.EncodeKey(append([]byte(nil), base...), v)
		hiInc = rng.HiInc
	} else if len(base) > 0 {
		hi, hiInc = base, true
	}
	return lo, hi, hiInc, false
}

func (e *Executor) scanClustered(p *Plan, depth int, step *Step, tbl *storage.Table, env []sqltypes.Value, lo, hi []byte, hiInc bool, st *Stats, onRow func() error) error {
	base := p.Layout.Instances[step.Instance].Base
	ncols := len(p.Layout.Instances[step.Instance].Table.Columns)
	if e.m != nil {
		e.m.clusteredScans.Inc()
	}
	var scanned int64
	st.PageReads += int64(tbl.Data().Height())
	it := tbl.Data().SeekRange(lo, hi, hiInc)
	for ; it.Valid(); it.Next() {
		st.RowsRead++
		scanned++
		row := it.Value().(sqltypes.Row)
		copy(env[base:base+ncols], row)
		ok, err := passes(step.Filter, env)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := e.runSteps(p, depth+1, env, st, onRow); err != nil {
			return err
		}
	}
	st.PageReads += int64(it.LeavesWalked())
	if e.m != nil {
		e.m.clusteredRows.Add(scanned)
	}
	clearSegment(env, base, ncols)
	return nil
}

func (e *Executor) scanIndex(p *Plan, depth int, step *Step, tbl *storage.Table, env []sqltypes.Value, lo, hi []byte, hiInc bool, st *Stats, onRow func() error) error {
	ix := tbl.Index(step.IndexName)
	if ix == nil {
		return fmt.Errorf("exec: index %q not materialized on %s", step.IndexName, tbl.Def.Name)
	}
	inst := p.Layout.Instances[step.Instance]
	base := inst.Base
	ncols := len(inst.Table.Columns)
	keyCols := len(ix.Ordinals()) + len(tbl.Def.PrimaryKey)

	if e.m != nil {
		if step.Covering {
			e.m.indexOnlyScans.Inc()
		} else {
			e.m.indexScans.Inc()
		}
	}
	var scanned int64
	st.PageReads += int64(ix.Tree().Height())
	it := ix.Tree().SeekRange(lo, hi, hiInc)
	for ; it.Valid(); it.Next() {
		st.RowsRead++ // index entry examined
		scanned++
		needDecode := step.Covering || step.ICP != nil
		if needDecode {
			vals, _, err := sqltypes.DecodeKey(it.Key(), keyCols)
			if err != nil {
				return fmt.Errorf("exec: corrupt index entry: %v", err)
			}
			clearSegment(env, base, ncols)
			for i, o := range ix.Ordinals() {
				env[base+o] = vals[i]
			}
			for i, o := range tbl.Def.PrimaryKey {
				env[base+o] = vals[len(ix.Ordinals())+i]
			}
			if step.ICP != nil {
				ok, err := passes(step.ICP, env)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
		}
		if !step.Covering {
			pk := it.Value().([]byte)
			row, ok := tbl.GetByPK(pk, nil)
			if !ok {
				return fmt.Errorf("exec: dangling index entry in %s", step.IndexName)
			}
			st.RowsRead++
			st.PageReads += int64(tbl.Data().Height())
			copy(env[base:base+ncols], row)
		}
		ok, err := passes(step.Filter, env)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := e.runSteps(p, depth+1, env, st, onRow); err != nil {
			return err
		}
	}
	st.PageReads += int64(it.LeavesWalked())
	if e.m != nil {
		e.m.indexRows.Add(scanned)
	}
	clearSegment(env, base, ncols)
	return nil
}

func clearSegment(env []sqltypes.Value, base, n int) {
	for i := base; i < base+n; i++ {
		env[i] = sqltypes.Null
	}
}

func passes(f CompiledExpr, env []sqltypes.Value) (bool, error) {
	if f == nil {
		return true, nil
	}
	v, err := f(env)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}

// aggregator implements hash (or streaming) group-by aggregation.
type aggregator struct {
	p      *Plan
	groups map[string]*groupState
	order  []string // insertion order for deterministic output
	// streaming state
	stream    bool
	curKey    []byte
	curState  *groupState
	flushed   []sqltypes.Row
	streamErr error
}

type groupState struct {
	rep    sqltypes.Row // representative env row for non-aggregate outputs
	counts []int64
	sums   []float64
	mins   []sqltypes.Value
	maxs   []sqltypes.Value
}

func newAggregator(p *Plan) *aggregator {
	return &aggregator{p: p, groups: map[string]*groupState{}, stream: p.GroupOrdered}
}

func (a *aggregator) newState(env []sqltypes.Value) *groupState {
	n := len(a.p.Aggs)
	rep := make(sqltypes.Row, len(env))
	copy(rep, env)
	return &groupState{
		rep:    rep,
		counts: make([]int64, n),
		sums:   make([]float64, n),
		mins:   make([]sqltypes.Value, n),
		maxs:   make([]sqltypes.Value, n),
	}
}

func (a *aggregator) absorb(env []sqltypes.Value) error {
	var keyBytes []byte
	if len(a.p.GroupBy) > 0 {
		keyVals := make([]sqltypes.Value, len(a.p.GroupBy))
		for i, g := range a.p.GroupBy {
			v, err := g(env)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		keyBytes = sqltypes.EncodeKey(nil, keyVals...)
	}
	gs, err := a.state(keyBytes, env)
	if err != nil {
		return err
	}
	for i, spec := range a.p.Aggs {
		var v sqltypes.Value
		if spec.Arg != nil {
			var err error
			v, err = spec.Arg(env)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue // aggregates skip NULLs
			}
		}
		gs.add(i, spec.Func, &v)
	}
	return nil
}

// state returns the group state for the encoded key, creating it (and, in
// streaming mode, flushing the previous group) on first sight. Both the
// per-row absorb and the batch fast path route through here, so group
// identity, insertion order and stream flushing have a single definition.
func (a *aggregator) state(keyBytes []byte, env []sqltypes.Value) (*groupState, error) {
	if a.stream {
		if a.curState != nil && string(a.curKey) == string(keyBytes) {
			return a.curState, nil
		}
		if a.curState != nil {
			row, err := a.emitGroup(a.curState)
			if err != nil {
				return nil, err
			}
			a.flushed = append(a.flushed, row)
		}
		gs := a.newState(env)
		a.curState = gs
		a.curKey = append(a.curKey[:0], keyBytes...)
		return gs, nil
	}
	gs, ok := a.groups[string(keyBytes)]
	if !ok {
		gs = a.newState(env)
		a.groups[string(keyBytes)] = gs
		a.order = append(a.order, string(keyBytes))
	}
	return gs, nil
}

// add folds one non-NULL value (ignored for COUNT) into aggregate slot i.
// v is by pointer purely so hot loops avoid a Value copy per call; it is
// never mutated.
func (gs *groupState) add(i int, f AggFunc, v *sqltypes.Value) {
	switch f {
	case AggCount:
		gs.counts[i]++
	case AggSum, AggAvg:
		gs.counts[i]++
		gs.sums[i] += v.Float()
	case AggMin:
		if gs.counts[i] == 0 || sqltypes.ComparePtr(v, &gs.mins[i]) < 0 {
			gs.mins[i] = *v
		}
		gs.counts[i]++
	case AggMax:
		if gs.counts[i] == 0 || sqltypes.ComparePtr(v, &gs.maxs[i]) > 0 {
			gs.maxs[i] = *v
		}
		gs.counts[i]++
	}
}

func (a *aggregator) emitGroup(gs *groupState) (sqltypes.Row, error) {
	row := make(sqltypes.Row, len(a.p.Output))
	for i, o := range a.p.Output {
		if o.Agg >= 0 {
			row[i] = aggResult(a.p.Aggs[o.Agg], gs, o.Agg)
			continue
		}
		v, err := o.Expr(gs.rep)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

func aggResult(spec AggSpec, gs *groupState, i int) sqltypes.Value {
	switch spec.Func {
	case AggCount:
		return sqltypes.NewInt(gs.counts[i])
	case AggSum:
		if gs.counts[i] == 0 {
			return sqltypes.Null
		}
		return sqltypes.Float64ToValue(gs.sums[i])
	case AggAvg:
		if gs.counts[i] == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(gs.sums[i] / float64(gs.counts[i]))
	case AggMin:
		if gs.counts[i] == 0 {
			return sqltypes.Null
		}
		return gs.mins[i]
	case AggMax:
		if gs.counts[i] == 0 {
			return sqltypes.Null
		}
		return gs.maxs[i]
	}
	return sqltypes.Null
}

func (a *aggregator) finish() ([]sqltypes.Row, error) {
	if a.stream {
		if a.curState != nil {
			row, err := a.emitGroup(a.curState)
			if err != nil {
				return nil, err
			}
			a.flushed = append(a.flushed, row)
		}
		return a.flushed, nil
	}
	// A grouped query with no groups and no GROUP BY yields one row of
	// aggregates over the empty set.
	if len(a.groups) == 0 && len(a.p.GroupBy) == 0 {
		gs := a.newState(make([]sqltypes.Value, a.p.Layout.Width))
		row, err := a.emitGroup(gs)
		if err != nil {
			return nil, err
		}
		return []sqltypes.Row{row}, nil
	}
	out := make([]sqltypes.Row, 0, len(a.groups))
	for _, k := range a.order {
		row, err := a.emitGroup(a.groups[k])
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// distinctRows dedupes on the visible output prefix only: hidden ORDER BY
// tail columns are sort keys, not part of the SELECT DISTINCT row identity.
// (Deduping the full row let rows differing only in a hidden sort column
// survive, so SELECT DISTINCT a ... ORDER BY b returned duplicates of a.)
// The first occurrence wins, which also fixes which hidden sort key the
// surviving row carries into the sort — in pipeline order, deterministically.
func distinctRows(rows []sqltypes.Row, hidden int, st *Stats) []sqltypes.Row {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := string(sqltypes.EncodeKey(nil, r[:len(r)-hidden]...))
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	st.SortRows += int64(len(rows)) // dedup work accounted like a sort pass
	return out
}

func sortRows(rows []sqltypes.Row, specs []OrderSpec) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, s := range specs {
			c := sqltypes.Compare(rows[i][s.Col], rows[j][s.Col])
			if c == 0 {
				continue
			}
			if s.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

func applyLimit(rows []sqltypes.Row, limit, offset int64) []sqltypes.Row {
	if offset > 0 {
		if offset >= int64(len(rows)) {
			return nil
		}
		rows = rows[offset:]
	}
	if limit >= 0 && limit < int64(len(rows)) {
		rows = rows[:limit]
	}
	return rows
}
