package exec

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aim/internal/obs"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/storage"
)

// whereExpr parses a WHERE clause and returns its source expression, for
// plans that want both the compiled closure and the batch-compilable source.
func whereExpr(t testing.TB, where string) sqlparser.Expr {
	t.Helper()
	stmt, err := sqlparser.Parse("SELECT * FROM x WHERE " + where)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sqlparser.Select).Where
}

// renderResult serializes a Result byte-exactly: every value through the
// order-preserving key encoding (so 1 vs 1.0 vs "1" render differently) plus
// the full Stats struct. Two results render equal iff rows, row order, and
// every physical counter match.
func renderResult(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(hex.EncodeToString(sqltypes.EncodeKey(nil, r...)))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%+v\n", res.Stats)
	return b.String()
}

// runBothEngines executes the plan on the row engine and the batch engine,
// each with observability on and off, and requires all four results to be
// byte-identical. It returns the batch-engine result.
func runBothEngines(t testing.TB, store *storage.Store, p *Plan) *Result {
	t.Helper()
	var want string
	var out *Result
	for _, rowOnly := range []bool{true, false} {
		for _, withObs := range []bool{false, true} {
			ex := New(store)
			ex.RowOnly = rowOnly
			if withObs {
				ex.SetObs(obs.NewRegistry())
			}
			res, err := ex.Run(p, nil)
			if err != nil {
				t.Fatalf("rowOnly=%v obs=%v: %v", rowOnly, withObs, err)
			}
			got := renderResult(res)
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("engine divergence (rowOnly=%v obs=%v)\n--- row engine ---\n%s--- this run ---\n%s",
					rowOnly, withObs, want, got)
			}
			out = res
		}
	}
	return out
}

// vecOutputs builds direct-copy output specs (the batch projector fast path).
func vecOutputs(t testing.TB, l *Layout, refs ...string) []OutputSpec {
	t.Helper()
	out := make([]OutputSpec, len(refs))
	for i, r := range refs {
		qual := ""
		if idx := strings.IndexByte(r, '.'); idx >= 0 {
			qual, r = r[:idx], r[idx+1:]
		}
		off, err := l.Resolve(qual, r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ColOutput(off)
	}
	return out
}

// TestEngineDifferential pins the determinism contract of the vectorized
// engine: for every supported plan shape, Result rows and Stats counters are
// byte-identical to the row engine's, with observability on or off. Cases
// cover both the vectorized predicate kernels (FilterSrc set, vectorizable)
// and the per-row closure fallback (no source expression, or a shape the
// batch compiler rejects).
func TestEngineDifferential(t *testing.T) {
	store, schema := fixture(t)
	l := singleLayout(schema, "orders")

	filtered := func(step Step, where string, vectorizable bool) Step {
		step.Filter = compileWhere(t, l, where)
		if vectorizable {
			step.FilterSrc = whereExpr(t, where)
		}
		return step
	}
	nullLit := Literal(sqltypes.Null)
	loPaid := Literal(sqltypes.NewString("paid"))
	hiShipped := Literal(sqltypes.NewString("shipped"))

	cases := []struct {
		name string
		plan *Plan
	}{
		{"full-scan", &Plan{Layout: l,
			Steps:  []Step{{Instance: 0}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"full-scan-vec-filter", &Plan{Layout: l,
			Steps:  []Step{filtered(Step{Instance: 0}, "cust_id = 5 AND status != 'paid'", true)},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"full-scan-vec-or-not-between", &Plan{Layout: l,
			Steps: []Step{filtered(Step{Instance: 0},
				"(status BETWEEN 'paid' AND 'shipped' OR NOT (cust_id < 20)) AND status LIKE 'p%'", true)},
			Output: vecOutputs(t, l, "id", "status", "cust_id"), Limit: -1}},
		{"full-scan-vec-in-isnull", &Plan{Layout: l,
			Steps: []Step{filtered(Step{Instance: 0},
				"status IN ('paid', 'done') AND amount IS NOT NULL", true)},
			Output: vecOutputs(t, l, "id"), Limit: -1}},
		{"full-scan-fallback-arith", &Plan{Layout: l,
			// Arithmetic is not batch-compilable: exercises the closure fallback.
			Steps:  []Step{filtered(Step{Instance: 0}, "amount + 1 > 300", true)},
			Output: vecOutputs(t, l, "id", "amount"), Limit: -1}},
		{"full-scan-closure-only", &Plan{Layout: l,
			// No FilterSrc at all (hand-assembled plan): closure fallback.
			Steps:  []Step{filtered(Step{Instance: 0}, "status = 'done'", false)},
			Output: colOutput(t, l, "id"), Limit: -1}},
		{"index-eq", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5)), Literal(sqltypes.NewString("paid"))}}},
			Output: vecOutputs(t, l, "id"), Limit: -1}},
		{"index-eq-null-key", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{nullLit}}},
			Output: vecOutputs(t, l, "id"), Limit: -1}},
		{"index-prefix-scan", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(7))}}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"index-range-inc-exc", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))},
				Range:  &RangeSpec{Lo: &loPaid, Hi: &hiShipped, LoInc: true, HiInc: false}}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"index-range-exc-inc", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))},
				Range:  &RangeSpec{Lo: &loPaid, Hi: &hiShipped, LoInc: false, HiInc: true}}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"index-range-null-bound", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))},
				Range:  &RangeSpec{Lo: &nullLit, LoInc: true}}},
			Output: vecOutputs(t, l, "id"), Limit: -1}},
		{"covering", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))}, Covering: true}},
			Output: vecOutputs(t, l, "cust_id", "status", "id"), Limit: -1}},
		{"icp", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(4))},
				ICP:    compileWhere(t, l, "status = 'paid'"),
				ICPSrc: whereExpr(t, "status = 'paid'")}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"icp-plus-residual", &Plan{Layout: l,
			Steps: []Step{filtered(Step{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))},
				ICP:    compileWhere(t, l, "status >= 'paid'"),
				ICPSrc: whereExpr(t, "status >= 'paid'")},
				"amount > 100", true)},
			Output: vecOutputs(t, l, "id", "status", "amount"), Limit: -1}},
		{"in-multirange", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))},
				In: []KeySource{Literal(sqltypes.NewString("shipped")),
					Literal(sqltypes.NewString("paid")),
					Literal(sqltypes.NewString("paid")), nullLit}}},
			Output: vecOutputs(t, l, "id", "status"), Limit: -1}},
		{"group-hash", &Plan{Layout: l,
			Steps:   []Step{filtered(Step{Instance: 0}, "cust_id < 30", true)},
			Grouped: true,
			GroupBy: []CompiledExpr{argExpr(t, l, "status")},
			Aggs: []AggSpec{{Func: AggCount}, {Func: AggSum, Arg: argExpr(t, l, "amount")},
				{Func: AggMin, Arg: argExpr(t, l, "id")}, {Func: AggMax, Arg: argExpr(t, l, "id")},
				{Func: AggAvg, Arg: argExpr(t, l, "amount")}},
			Output: append([]OutputSpec{vecOutputs(t, l, "status")[0]},
				OutputSpec{Agg: 0}, OutputSpec{Agg: 1}, OutputSpec{Agg: 2},
				OutputSpec{Agg: 3}, OutputSpec{Agg: 4}),
			Limit: -1}},
		{"group-hash-fastpath", &Plan{Layout: l,
			// GroupByCols/ArgCol set (as the optimizer emits): exercises the
			// batch aggregation fast path against the closure-driven row path.
			Steps:       []Step{filtered(Step{Instance: 0}, "cust_id < 30", true)},
			Grouped:     true,
			GroupBy:     []CompiledExpr{argExpr(t, l, "status")},
			GroupByCols: []int{colOff(t, l, "status") + 1},
			Aggs: []AggSpec{{Func: AggCount},
				{Func: AggSum, Arg: argExpr(t, l, "amount"), ArgCol: colOff(t, l, "amount") + 1},
				{Func: AggMin, Arg: argExpr(t, l, "id"), ArgCol: colOff(t, l, "id") + 1},
				{Func: AggMax, Arg: argExpr(t, l, "id"), ArgCol: colOff(t, l, "id") + 1}},
			Output: append(vecOutputs(t, l, "status"),
				OutputSpec{Agg: 0}, OutputSpec{Agg: 1}, OutputSpec{Agg: 2}, OutputSpec{Agg: 3}),
			Limit: -1}},
		{"group-empty-input", &Plan{Layout: l,
			Steps:   []Step{filtered(Step{Instance: 0}, "cust_id = 9999", true)},
			Grouped: true,
			Aggs:    []AggSpec{{Func: AggCount}, {Func: AggSum, Arg: argExpr(t, l, "amount")}},
			Output:  []OutputSpec{{Agg: 0}, {Agg: 1}},
			Limit:   -1}},
		{"group-empty-null-eqkey", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{nullLit}}},
			Grouped: true,
			Aggs:    []AggSpec{{Func: AggCount}},
			Output:  []OutputSpec{{Agg: 0}},
			Limit:   -1}},
		{"group-stream", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))}}},
			Grouped: true, GroupOrdered: true,
			GroupBy: []CompiledExpr{argExpr(t, l, "status")},
			Aggs:    []AggSpec{{Func: AggCount}},
			Output:  append(vecOutputs(t, l, "status"), OutputSpec{Agg: 0}),
			Limit:   -1}},
		{"distinct-order-limit-offset", &Plan{Layout: l,
			Steps:    []Step{filtered(Step{Instance: 0}, "cust_id < 8", true)},
			Output:   vecOutputs(t, l, "status", "cust_id"),
			Distinct: true,
			OrderBy:  []OrderSpec{{Col: 1}, {Col: 0, Desc: true}},
			Limit:    5, Offset: 2}},
		{"order-satisfied", &Plan{Layout: l,
			Steps: []Step{{Instance: 0, IndexName: "o_cust_status",
				EqKeys: []KeySource{Literal(sqltypes.NewInt(5))}}},
			Output:         vecOutputs(t, l, "status", "id"),
			OrderBy:        []OrderSpec{{Col: 0}},
			OrderSatisfied: true,
			Limit:          -1}},
		{"hidden-tail", &Plan{Layout: l,
			Steps:      []Step{filtered(Step{Instance: 0}, "cust_id = 5", true)},
			Output:     vecOutputs(t, l, "status", "amount"),
			HiddenTail: 1,
			OrderBy:    []OrderSpec{{Col: 1, Desc: true}},
			Limit:      -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runBothEngines(t, store, tc.plan)
		})
	}
}

func colOff(t testing.TB, l *Layout, col string) int {
	t.Helper()
	off, err := l.Resolve("", col)
	if err != nil {
		t.Fatal(err)
	}
	return off
}

// argExpr compiles a bare column reference as an aggregate/group argument.
func argExpr(t testing.TB, l *Layout, col string) CompiledExpr {
	t.Helper()
	off, err := l.Resolve("", col)
	if err != nil {
		t.Fatal(err)
	}
	return func(env []sqltypes.Value) (sqltypes.Value, error) { return env[off], nil }
}

// TestDistinctDedupesVisiblePrefixOnly is the regression test for DISTINCT
// interacting with hidden ORDER BY columns: SELECT DISTINCT status ... ORDER
// BY id must dedupe on status alone, not on (status, hidden id). The old
// pipeline deduped the full row, so every (status, id) pair was unique and
// all 400 rows survived.
func TestDistinctDedupesVisiblePrefixOnly(t *testing.T) {
	store, schema := fixture(t)
	l := singleLayout(schema, "orders")
	p := &Plan{
		Layout:     l,
		Steps:      []Step{{Instance: 0}},
		Output:     vecOutputs(t, l, "status", "id"),
		HiddenTail: 1,
		Distinct:   true,
		OrderBy:    []OrderSpec{{Col: 1}},
		Limit:      -1,
	}
	res := runBothEngines(t, store, p)
	if len(res.Rows) != 4 {
		t.Fatalf("DISTINCT status rows = %d, want 4", len(res.Rows))
	}
	// First occurrence wins, so the surviving hidden ids are 0..3 and the
	// sorted statuses follow insertion order of the status cycle.
	want := []string{"new", "paid", "shipped", "done"}
	for i, r := range res.Rows {
		if len(r) != 1 {
			t.Fatalf("hidden tail not trimmed: row %v", r)
		}
		if r[0].Str() != want[i] {
			t.Errorf("row %d = %q, want %q", i, r[0].Str(), want[i])
		}
	}
}

// TestScanBoundsContract pins the fixed scanBounds behavior: hiInc is the
// caller's real inclusivity (no 0xFF successor fabrication), prefix-only
// scans are inclusive on the prefix, and NULL range bounds mark the scan
// statically empty.
func TestScanBoundsContract(t *testing.T) {
	five := sqltypes.NewInt(5)
	paid := sqltypes.NewString("paid")
	base := sqltypes.EncodeKey(nil, five)

	ksPaid := Literal(paid)
	ksNull := Literal(sqltypes.Null)

	lo, hi, hiInc, empty := scanBounds([]sqltypes.Value{five}, &RangeSpec{Hi: &ksPaid, HiInc: true}, nil)
	if empty || !hiInc {
		t.Fatalf("inclusive hi: hiInc=%v empty=%v, want true/false", hiInc, empty)
	}
	wantHi := sqltypes.EncodeKey(append([]byte(nil), base...), paid)
	if string(hi) != string(wantHi) {
		t.Fatalf("hi = %x, want exact encoded bound %x (no successor byte)", hi, wantHi)
	}
	if string(lo) != string(base) {
		t.Fatalf("lo = %x, want prefix %x", lo, base)
	}

	_, _, hiInc, _ = scanBounds([]sqltypes.Value{five}, &RangeSpec{Hi: &ksPaid, HiInc: false}, nil)
	if hiInc {
		t.Fatal("exclusive hi reported inclusive")
	}

	lo, hi, hiInc, empty = scanBounds([]sqltypes.Value{five}, nil, nil)
	if empty || !hiInc || string(lo) != string(base) || string(hi) != string(base) {
		t.Fatalf("prefix-only scan: lo=%x hi=%x hiInc=%v empty=%v", lo, hi, hiInc, empty)
	}

	for _, rng := range []*RangeSpec{{Lo: &ksNull, LoInc: true}, {Hi: &ksNull, HiInc: true}} {
		if _, _, _, empty := scanBounds([]sqltypes.Value{five}, rng, nil); !empty {
			t.Fatalf("NULL bound %+v not marked empty", rng)
		}
	}
}

// FuzzExecScanOracle executes randomized range/IN/ICP index plans on both
// engines and checks the produced row SET (order-independent) against a
// full-scan-plus-filter oracle evaluating the equivalent WHERE clause — and
// checks row-order and Stats parity between engines for each plan. It is the
// property-test half of the differential suite and runs in fuzzsmoke.
func FuzzExecScanOracle(f *testing.F) {
	store, schema := fixture(f)
	l := singleLayout(schema, "orders")
	statuses := []string{"aaa", "done", "new", "paid", "shipped", "zzz"}

	for seed := uint64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		cust := rng.Intn(45) // some values past the 0..39 domain
		step := Step{Instance: 0, IndexName: "o_cust_status",
			EqKeys: []KeySource{Literal(sqltypes.NewInt(int64(cust)))}}
		conds := []string{fmt.Sprintf("cust_id = %d", cust)}

		switch rng.Intn(4) {
		case 0: // prefix only
		case 1: // range on status, random bounds and inclusivity
			spec := &RangeSpec{LoInc: rng.Intn(2) == 0, HiInc: rng.Intn(2) == 0}
			if rng.Intn(3) > 0 {
				v := statuses[rng.Intn(len(statuses))]
				ks := Literal(sqltypes.NewString(v))
				spec.Lo = &ks
				op := ">"
				if spec.LoInc {
					op = ">="
				}
				conds = append(conds, fmt.Sprintf("status %s '%s'", op, v))
			}
			if rng.Intn(3) > 0 || spec.Lo == nil {
				v := statuses[rng.Intn(len(statuses))]
				ks := Literal(sqltypes.NewString(v))
				spec.Hi = &ks
				op := "<"
				if spec.HiInc {
					op = "<="
				}
				conds = append(conds, fmt.Sprintf("status %s '%s'", op, v))
			}
			step.Range = spec
		case 2: // IN multi-range with duplicates
			n := 1 + rng.Intn(3)
			var quoted []string
			for i := 0; i < n; i++ {
				v := statuses[rng.Intn(len(statuses))]
				step.In = append(step.In, Literal(sqltypes.NewString(v)))
				quoted = append(quoted, "'"+v+"'")
			}
			step.In = append(step.In, step.In[0]) // duplicate
			quoted = append(quoted, quoted[0])
			conds = append(conds, "status IN ("+strings.Join(quoted, ", ")+")")
		case 3: // full eq on both index columns
			v := statuses[rng.Intn(len(statuses))]
			step.EqKeys = append(step.EqKeys, Literal(sqltypes.NewString(v)))
			conds = append(conds, fmt.Sprintf("status = '%s'", v))
		}

		if rng.Intn(2) == 0 {
			icp := fmt.Sprintf("status != '%s'", statuses[rng.Intn(len(statuses))])
			step.ICP = compileWhere(t, l, icp)
			step.ICPSrc = whereExpr(t, icp)
			conds = append(conds, icp)
		}
		if rng.Intn(2) == 0 {
			res := fmt.Sprintf("amount <= %d", rng.Intn(700))
			step.Filter = compileWhere(t, l, res)
			step.FilterSrc = whereExpr(t, res)
			conds = append(conds, res)
		}

		outCols := []string{"id", "cust_id", "status", "amount"}
		indexPlan := &Plan{Layout: l, Steps: []Step{step},
			Output: vecOutputs(t, l, outCols...), Limit: -1}
		where := strings.Join(conds, " AND ")
		oraclePlan := &Plan{Layout: l,
			Steps: []Step{{Instance: 0,
				Filter:    compileWhere(t, l, where),
				FilterSrc: whereExpr(t, where)}},
			Output: vecOutputs(t, l, outCols...), Limit: -1}

		// Engine parity (rows, order, Stats) per plan; then set equality
		// between the index path and the oracle.
		got := runBothEngines(t, store, indexPlan)
		want := runBothEngines(t, store, oraclePlan)
		if gs, ws := sortedRowSet(got), sortedRowSet(want); gs != ws {
			t.Fatalf("index plan row set diverges from full-scan oracle\nWHERE %s\n--- index ---\n%s--- oracle ---\n%s",
				where, gs, ws)
		}
	})
}

func sortedRowSet(res *Result) string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = hex.EncodeToString(sqltypes.EncodeKey(nil, r...))
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n") + "\n"
}
