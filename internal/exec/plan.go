package exec

import (
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// KeySource supplies one index-key value: either a literal or a slot in the
// env buffer filled by an earlier join step (index nested-loop join).
type KeySource struct {
	Lit  sqltypes.Value
	Slot int // -1 = literal
}

// Resolve returns the concrete value for the current env row.
func (k KeySource) Resolve(env []sqltypes.Value) sqltypes.Value {
	if k.Slot >= 0 {
		return env[k.Slot]
	}
	return k.Lit
}

// Literal builds a literal key source.
func Literal(v sqltypes.Value) KeySource { return KeySource{Lit: v, Slot: -1} }

// SlotRef builds a key source reading a previously filled env slot.
func SlotRef(slot int) KeySource { return KeySource{Slot: slot} }

// RangeSpec bounds the index column following the equality prefix.
// Nil Lo/Hi means unbounded on that side.
type RangeSpec struct {
	Lo, Hi       *KeySource
	LoInc, HiInc bool
}

// Step accesses one table instance inside the join pipeline.
type Step struct {
	Instance  int    // FROM-instance ordinal this step fills
	IndexName string // "" = clustered primary key access
	// EqKeys bind the leading index (or PK) columns by equality.
	EqKeys []KeySource
	// Range optionally bounds the column right after the equality prefix.
	Range *RangeSpec
	// In enumerates values for the column right after the equality prefix
	// (multi-range read, MySQL-style IN handling). Mutually exclusive with
	// Range.
	In []KeySource
	// Covering executes an index-only read: the base row is never fetched
	// and only the index + PK columns of the instance are filled.
	Covering bool
	// ICP (index condition pushdown) is evaluated after filling only the
	// index and PK columns, before the base-row lookup.
	ICP CompiledExpr
	// Filter is the residual predicate evaluated once this instance (and
	// all earlier steps' instances) are filled.
	Filter CompiledExpr
	// ICPSrc/FilterSrc carry the source expressions behind ICP/Filter. The
	// batch engine compiles them into per-batch predicate kernels; when nil
	// (plans assembled without the optimizer) it falls back to evaluating
	// the compiled closure row by row, which is slower but identical.
	ICPSrc    sqlparser.Expr
	FilterSrc sqlparser.Expr
	// Desc is a human-readable access path description for EXPLAIN output.
	Desc string
}

// AggFunc enumerates supported aggregates.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*) when Arg == nil, else COUNT(expr)
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate computed per group.
type AggSpec struct {
	Func AggFunc
	Arg  CompiledExpr // nil for COUNT(*)
	// ArgCol is the env offset + 1 when Arg is a bare column reference
	// (0 = opaque or COUNT(*)). The batch engine reads the column directly
	// instead of calling Arg per row; both produce the same value.
	ArgCol int
}

// OutputSpec is one output column: either an aggregate result (Agg >= 0)
// or an expression evaluated over the env row (a group's representative row
// for grouped queries).
type OutputSpec struct {
	Agg  int // -1 when Expr is used
	Expr CompiledExpr
	// col is the env offset + 1 when the output is a bare column reference
	// (0 = opaque expression). The batch engine projects such outputs by
	// direct copy instead of calling Expr per row; both paths return the
	// same Value.
	col int
}

// ColOutput builds the output spec for a bare column reference at the given
// env offset. It sets both the direct-copy fast path and an equivalent
// closure, so row and batch engines project identically.
func ColOutput(off int) OutputSpec {
	return OutputSpec{
		Agg: -1,
		col: off + 1,
		Expr: func(env []sqltypes.Value) (sqltypes.Value, error) {
			return env[off], nil
		},
	}
}

// OrderSpec sorts output rows by the given output column.
type OrderSpec struct {
	Col  int
	Desc bool
}

// Plan is a complete physical plan for a SELECT.
type Plan struct {
	Layout  *Layout
	Steps   []Step
	Grouped bool
	GroupBy []CompiledExpr
	// GroupByCols carries, per GroupBy entry, the env offset + 1 when the
	// grouping expression is a bare column reference (0 = opaque). When every
	// entry is a column (and every aggregate arg likewise), the batch engine
	// computes group keys by direct reads into a reused buffer instead of
	// calling the GroupBy closures row by row. Nil disables the fast path.
	GroupByCols []int
	// GroupOrdered marks that rows arrive in group order (the access path
	// sorts by the grouping columns), enabling cheap streaming aggregation.
	GroupOrdered bool
	Aggs         []AggSpec
	Output       []OutputSpec
	// HiddenTail output columns exist only for sorting and are trimmed from
	// the final result.
	HiddenTail int
	Distinct   bool
	OrderBy    []OrderSpec
	// OrderSatisfied marks that the access path already delivers rows in
	// the requested order, so no sort is performed.
	OrderSatisfied bool
	Limit          int64 // -1 = no limit
	Offset         int64

	// Optimizer annotations.
	EstimatedCost float64
	EstimatedRows float64
	UsedIndexes   []string // index names the plan reads (not incl. clustered)
}

// Stats reports the physical work of one statement execution.
type Stats struct {
	RowsRead    int64 // base rows + index entries examined
	RowsSent    int64 // result rows (or rows affected for DML)
	PageReads   int64
	SortRows    int64
	RowsWritten int64
	IndexWrites int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.RowsRead += other.RowsRead
	s.RowsSent += other.RowsSent
	s.PageReads += other.PageReads
	s.SortRows += other.SortRows
	s.RowsWritten += other.RowsWritten
	s.IndexWrites += other.IndexWrites
}

// CPU cost model coefficients (seconds per unit of work). Page reads
// dominate, reflecting random I/O wait cycles that the paper's cpu_avg
// metric includes via CPU_IOWAIT.
const (
	CostPageRead   = 40e-6
	CostRowRead    = 1.5e-6
	CostSortRow    = 1.2e-6 // multiplied by log2(n)
	CostRowWrite   = 4e-6
	CostIndexWrite = 6e-6
)

// CPUSeconds converts physical work into modelled CPU seconds.
func (s Stats) CPUSeconds() float64 {
	sort := float64(s.SortRows)
	if s.SortRows > 1 {
		sort *= log2(float64(s.SortRows))
	}
	return CostPageRead*float64(s.PageReads) +
		CostRowRead*float64(s.RowsRead) +
		CostSortRow*sort +
		CostRowWrite*float64(s.RowsWritten) +
		CostIndexWrite*float64(s.IndexWrites)
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
