package exec

import (
	"fmt"

	"aim/internal/sqltypes"
	"aim/internal/storage"
)

// Insert adds rows to a table. Each row must already be in full table
// column order (the engine reorders named-column inserts beforehand).
func (e *Executor) Insert(tableName string, rows []sqltypes.Row) (Stats, error) {
	var st Stats
	tbl := e.Store.Table(tableName)
	if tbl == nil {
		return st, fmt.Errorf("exec: unknown table %q", tableName)
	}
	var m storage.Metrics
	for _, row := range rows {
		if err := tbl.Insert(row, &m); err != nil {
			return st, err
		}
	}
	st.RowsWritten = m.RowWrites
	st.IndexWrites = m.IndexWrites
	st.PageReads = m.PageReads
	st.RowsSent = int64(len(rows))
	e.record(st)
	return st, nil
}

// CollectPKs runs a single-table plan and returns the encoded primary keys
// of every matching row, for two-phase UPDATE/DELETE execution.
func (e *Executor) CollectPKs(p *Plan) ([][]byte, Stats, error) {
	if len(p.Steps) != 1 {
		return nil, Stats{}, fmt.Errorf("exec: DML plan must have exactly one step, got %d", len(p.Steps))
	}
	inst := p.Layout.Instances[p.Steps[0].Instance]
	tbl := e.Store.Table(inst.Table.Name)
	if tbl == nil {
		return nil, Stats{}, fmt.Errorf("exec: unknown table %q", inst.Table.Name)
	}
	var st Stats
	var pks [][]byte
	env := make([]sqltypes.Value, p.Layout.Width)
	pkVals := make([]sqltypes.Value, len(inst.Table.PrimaryKey))
	err := e.runSteps(p, 0, env, &st, func() error {
		for i, o := range inst.Table.PrimaryKey {
			pkVals[i] = env[inst.Base+o]
		}
		pks = append(pks, sqltypes.EncodeKey(nil, pkVals...))
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	return pks, st, nil
}

// Assignment sets one column (by table ordinal) to a compiled expression
// evaluated over the single-table env row.
type Assignment struct {
	Ordinal int
	Value   CompiledExpr
}

// Update applies assignments to every row matched by the plan. It returns
// stats including the number of rows affected in RowsSent.
func (e *Executor) Update(p *Plan, assigns []Assignment) (Stats, error) {
	pks, st, err := e.CollectPKs(p)
	if err != nil {
		return st, err
	}
	inst := p.Layout.Instances[p.Steps[0].Instance]
	tbl := e.Store.Table(inst.Table.Name)
	var m storage.Metrics
	env := make([]sqltypes.Value, p.Layout.Width)
	for _, pk := range pks {
		row, ok := tbl.GetByPK(pk, &m)
		if !ok {
			continue
		}
		copy(env[inst.Base:], row)
		newRow := row.Clone()
		for _, a := range assigns {
			v, err := a.Value(env)
			if err != nil {
				return st, err
			}
			newRow[a.Ordinal] = v
		}
		if err := tbl.Update(pk, newRow, &m); err != nil {
			return st, err
		}
	}
	st.RowsRead += m.RowsRead
	st.PageReads += m.PageReads
	st.RowsWritten += m.RowWrites
	st.IndexWrites += m.IndexWrites
	st.RowsSent = int64(len(pks))
	e.record(st)
	return st, nil
}

// Delete removes every row matched by the plan.
func (e *Executor) Delete(p *Plan) (Stats, error) {
	pks, st, err := e.CollectPKs(p)
	if err != nil {
		return st, err
	}
	inst := p.Layout.Instances[p.Steps[0].Instance]
	tbl := e.Store.Table(inst.Table.Name)
	var m storage.Metrics
	for _, pk := range pks {
		tbl.DeleteByPK(pk, &m)
	}
	st.RowsRead += m.RowsRead
	st.PageReads += m.PageReads
	st.RowsWritten += m.RowWrites
	st.IndexWrites += m.IndexWrites
	st.RowsSent = int64(len(pks))
	e.record(st)
	return st, nil
}
