package exec

import (
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
)

// Three-valued predicate lanes. The batch engine evaluates filters into one
// int8 lane per batch row instead of boxing a sqltypes.Value per row; only
// triTrue rows survive into the selection vector, matching passes().
const (
	triFalse int8 = iota
	triTrue
	triNull
)

// vecPred evaluates a predicate over a batch, writing the three-valued
// result for every row index listed in sel into out (indexed by row, not by
// selection position). Implementations never error: compileVec only emits
// kernels for expression shapes whose row-engine closures cannot error
// either, so error ordering is owned entirely by the fallback closure path.
type vecPred func(a *batchArena, rows []sqltypes.Row, sel []int32, out []int8)

// valSrc is a per-row scalar source: a column offset in the env row or a
// literal. It is the only operand shape the batch kernels accept; anything
// else (arithmetic, nested functions) falls back to the compiled closure.
type valSrc struct {
	off int // -1 = literal
	lit sqltypes.Value
}

func (s valSrc) get(row sqltypes.Row) sqltypes.Value {
	if s.off >= 0 {
		return row[s.off]
	}
	return s.lit
}

func compileValSrc(e sqlparser.Expr, l *Layout) (valSrc, bool) {
	switch v := e.(type) {
	case *sqlparser.Literal:
		return valSrc{off: -1, lit: v.Val}, true
	case *sqlparser.ColumnRef:
		off, err := l.Resolve(v.Table, v.Column)
		if err != nil {
			return valSrc{}, false
		}
		return valSrc{off: off}, true
	}
	return valSrc{}, false
}

func boolTri(b bool) int8 {
	if b {
		return triTrue
	}
	return triFalse
}

// compileVec builds a batch predicate kernel for e, or returns nil when the
// expression is not vectorizable — callers then evaluate the compiled row
// closure per batch row, which is slower but produces identical results and
// identical error ordering. A composite expression vectorizes only if every
// subexpression does: partial vectorization of AND/OR could evaluate an
// erroring branch the row engine would have short-circuited past.
func compileVec(e sqlparser.Expr, l *Layout) vecPred {
	if e == nil {
		return nil
	}
	switch v := e.(type) {
	case *sqlparser.Literal:
		val := v.Val
		res := triNull
		if !val.IsNull() {
			res = boolTri(val.Bool())
		}
		return func(_ *batchArena, _ []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				out[i] = res
			}
		}
	case *sqlparser.ColumnRef:
		src, ok := compileValSrc(e, l)
		if !ok {
			return nil
		}
		return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				val := src.get(rows[i])
				if val.IsNull() {
					out[i] = triNull
				} else {
					out[i] = boolTri(val.Bool())
				}
			}
		}
	case *sqlparser.BinaryExpr:
		return compileVecBinary(v, l)
	case *sqlparser.NotExpr:
		inner := compileVec(v.Inner, l)
		if inner == nil {
			return nil
		}
		return func(a *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
			inner(a, rows, sel, out)
			for _, i := range sel {
				switch out[i] {
				case triTrue:
					out[i] = triFalse
				case triFalse:
					out[i] = triTrue
				}
			}
		}
	case *sqlparser.InExpr:
		return compileVecIn(v, l)
	case *sqlparser.BetweenExpr:
		return compileVecBetween(v, l)
	case *sqlparser.LikeExpr:
		return compileVecLike(v, l)
	case *sqlparser.IsNullExpr:
		src, ok := compileValSrc(v.Left, l)
		if !ok {
			return nil
		}
		not := v.Not
		return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				out[i] = boolTri(src.get(rows[i]).IsNull() != not)
			}
		}
	}
	return nil
}

func compileVecBinary(v *sqlparser.BinaryExpr, l *Layout) vecPred {
	switch v.Op {
	case "AND", "OR":
		left := compileVec(v.Left, l)
		right := compileVec(v.Right, l)
		if left == nil || right == nil {
			return nil
		}
		if v.Op == "AND" {
			return vecAnd(left, right)
		}
		return vecOr(left, right)
	case "=", "!=", "<", "<=", ">", ">=", "<=>":
		ls, ok := compileValSrc(v.Left, l)
		if !ok {
			return nil
		}
		rs, ok := compileValSrc(v.Right, l)
		if !ok {
			return nil
		}
		return vecCmp(v.Op, ls, rs)
	}
	return nil
}

func vecCmp(op string, left, right valSrc) vecPred {
	if op == "<=>" {
		return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				out[i] = boolTri(sqltypes.Compare(left.get(rows[i]), right.get(rows[i])) == 0)
			}
		}
	}
	// Encode the operator as the set of accepted Compare signs; the kernel
	// loop then has no per-row indirect call.
	var accNeg, accZero, accPos bool
	switch op {
	case "=":
		accZero = true
	case "!=":
		accNeg, accPos = true, true
	case "<":
		accNeg = true
	case "<=":
		accNeg, accZero = true, true
	case ">":
		accPos = true
	case ">=":
		accZero, accPos = true, true
	default:
		return nil
	}
	if left.off >= 0 && right.off < 0 && !right.lit.IsNull() {
		// Column vs non-NULL literal, the dominant filter shape: hoist the
		// literal out of the loop, index the env row by pointer (no 40-byte
		// Value copies) and, for numeric literals, inline the comparison so
		// the loop has no function call at all. The kind switches reproduce
		// Compare's rank ordering (numbers < strings) exactly.
		lit := right.lit
		off := left.off
		switch lit.Kind() {
		case sqltypes.KindInt, sqltypes.KindBool:
			litI := lit.Int()
			litF := float64(litI)
			return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
				for _, i := range sel {
					av := &rows[i][off]
					var c int
					switch av.Kind() {
					case sqltypes.KindNull:
						out[i] = triNull
						continue
					case sqltypes.KindInt, sqltypes.KindBool:
						if ai := av.Int(); ai < litI {
							c = -1
						} else if ai > litI {
							c = 1
						}
					case sqltypes.KindFloat:
						if af := av.Float(); af < litF {
							c = -1
						} else if af > litF {
							c = 1
						}
					default: // string-ish outranks numeric
						c = 1
					}
					out[i] = boolTri(c < 0 && accNeg || c == 0 && accZero || c > 0 && accPos)
				}
			}
		case sqltypes.KindFloat:
			litF := lit.Float()
			return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
				for _, i := range sel {
					av := &rows[i][off]
					var c int
					switch av.Kind() {
					case sqltypes.KindNull:
						out[i] = triNull
						continue
					case sqltypes.KindInt, sqltypes.KindBool, sqltypes.KindFloat:
						if af := av.Float(); af < litF {
							c = -1
						} else if af > litF {
							c = 1
						}
					default:
						c = 1
					}
					out[i] = boolTri(c < 0 && accNeg || c == 0 && accZero || c > 0 && accPos)
				}
			}
		}
		return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				av := &rows[i][off]
				if av.IsNull() {
					out[i] = triNull
					continue
				}
				c := sqltypes.ComparePtr(av, &lit)
				out[i] = boolTri(c < 0 && accNeg || c == 0 && accZero || c > 0 && accPos)
			}
		}
	}
	return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		for _, i := range sel {
			av, bv := left.get(rows[i]), right.get(rows[i])
			if av.IsNull() || bv.IsNull() {
				out[i] = triNull
				continue
			}
			c := sqltypes.ComparePtr(&av, &bv)
			out[i] = boolTri(c < 0 && accNeg || c == 0 && accZero || c > 0 && accPos)
		}
	}
}

// vecAnd evaluates the right operand only where the left is not false,
// mirroring the row closure's short-circuit; for surviving rows the combine
// is false-dominant, then null-dominant, like SQL three-valued AND.
func vecAnd(left, right vecPred) vecPred {
	return func(a *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		left(a, rows, sel, out)
		sub := a.getSel()
		for _, i := range sel {
			if out[i] != triFalse {
				sub = append(sub, i)
			}
		}
		if len(sub) > 0 {
			rtri := a.getTri()
			right(a, rows, sub, rtri)
			for _, i := range sub {
				switch {
				case rtri[i] == triFalse:
					out[i] = triFalse
				case rtri[i] == triNull || out[i] == triNull:
					out[i] = triNull
				default:
					out[i] = triTrue
				}
			}
			a.putTri(rtri)
		}
		a.putSel(sub)
	}
}

func vecOr(left, right vecPred) vecPred {
	return func(a *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		left(a, rows, sel, out)
		sub := a.getSel()
		for _, i := range sel {
			if out[i] != triTrue {
				sub = append(sub, i)
			}
		}
		if len(sub) > 0 {
			rtri := a.getTri()
			right(a, rows, sub, rtri)
			for _, i := range sub {
				switch {
				case rtri[i] == triTrue:
					out[i] = triTrue
				case rtri[i] == triNull || out[i] == triNull:
					out[i] = triNull
				default:
					out[i] = triFalse
				}
			}
			a.putTri(rtri)
		}
		a.putSel(sub)
	}
}

func compileVecIn(v *sqlparser.InExpr, l *Layout) vecPred {
	src, ok := compileValSrc(v.Left, l)
	if !ok {
		return nil
	}
	items := make([]sqltypes.Value, 0, len(v.List))
	hasNull := false
	for _, item := range v.List {
		lit, ok := item.(*sqlparser.Literal)
		if !ok {
			return nil
		}
		if lit.Val.IsNull() {
			hasNull = true
			continue
		}
		items = append(items, lit.Val)
	}
	not := v.Not
	if src.off < 0 {
		// Literal LHS: resolve once, constant result for every row.
		val := src.lit
		res := triNull
		if !val.IsNull() {
			matched := false
			for j := range items {
				if sqltypes.ComparePtr(&val, &items[j]) == 0 {
					matched = true
					break
				}
			}
			switch {
			case matched:
				res = boolTri(!not)
			case hasNull:
				res = triNull
			default:
				res = boolTri(not)
			}
		}
		return func(_ *batchArena, _ []sqltypes.Row, sel []int32, out []int8) {
			for _, i := range sel {
				out[i] = res
			}
		}
	}
	off := src.off
	return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		for _, i := range sel {
			val := &rows[i][off]
			if val.IsNull() {
				out[i] = triNull
				continue
			}
			matched := false
			for j := range items {
				if sqltypes.ComparePtr(val, &items[j]) == 0 {
					matched = true
					break
				}
			}
			switch {
			case matched:
				out[i] = boolTri(!not)
			case hasNull:
				out[i] = triNull
			default:
				out[i] = boolTri(not)
			}
		}
	}
}

func compileVecBetween(v *sqlparser.BetweenExpr, l *Layout) vecPred {
	src, ok := compileValSrc(v.Left, l)
	if !ok {
		return nil
	}
	lo, ok := compileValSrc(v.Low, l)
	if !ok {
		return nil
	}
	hi, ok := compileValSrc(v.High, l)
	if !ok {
		return nil
	}
	not := v.Not
	return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		for _, i := range sel {
			row := rows[i]
			val, lv, hv := src.get(row), lo.get(row), hi.get(row)
			if val.IsNull() || lv.IsNull() || hv.IsNull() {
				out[i] = triNull
				continue
			}
			in := sqltypes.ComparePtr(&val, &lv) >= 0 && sqltypes.ComparePtr(&val, &hv) <= 0
			out[i] = boolTri(in != not)
		}
	}
}

func compileVecLike(v *sqlparser.LikeExpr, l *Layout) vecPred {
	src, ok := compileValSrc(v.Left, l)
	if !ok {
		return nil
	}
	pat, ok := compileValSrc(v.Pattern, l)
	if !ok {
		return nil
	}
	not := v.Not
	return func(_ *batchArena, rows []sqltypes.Row, sel []int32, out []int8) {
		for _, i := range sel {
			row := rows[i]
			val, pv := src.get(row), pat.get(row)
			if val.IsNull() || pv.IsNull() {
				out[i] = triNull
				continue
			}
			out[i] = boolTri(likeMatch(val.Str(), pv.Str()) != not)
		}
	}
}
