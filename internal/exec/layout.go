// Package exec implements the physical query executor: compiled expression
// evaluation, index/table access paths, nested-loop joins with index
// lookups, aggregation, sorting and DML with secondary-index maintenance.
// It consumes physical plans produced by the optimizer and reports detailed
// execution statistics (rows read/sent, page reads, modelled CPU seconds)
// that feed the AIM workload monitor.
package exec

import (
	"fmt"
	"strings"

	"aim/internal/catalog"
)

// Layout fixes the flat row-buffer positions for every table instance in a
// query. The combined environment row has one contiguous segment per FROM
// instance, in FROM order, regardless of the join order chosen by the
// optimizer.
type Layout struct {
	Instances []Instance
	Width     int
}

// Instance is one table instance (table + effective alias) in the FROM list.
type Instance struct {
	Alias string
	Table *catalog.Table
	Base  int // offset of this instance's first column in the env buffer
}

// NewLayout builds a layout for the given instances in FROM order.
func NewLayout(instances []Instance) *Layout {
	l := &Layout{Instances: instances}
	off := 0
	for i := range l.Instances {
		l.Instances[i].Base = off
		off += len(l.Instances[i].Table.Columns)
	}
	l.Width = off
	return l
}

// Resolve maps a (table-qualifier, column) reference to a flat env offset.
// An empty qualifier matches when exactly one instance has the column.
func (l *Layout) Resolve(qualifier, column string) (int, error) {
	if qualifier != "" {
		for _, in := range l.Instances {
			if strings.EqualFold(in.Alias, qualifier) {
				o := in.Table.ColumnIndex(column)
				if o < 0 {
					return 0, fmt.Errorf("exec: column %s.%s not found", qualifier, column)
				}
				return in.Base + o, nil
			}
		}
		return 0, fmt.Errorf("exec: unknown table %q", qualifier)
	}
	found := -1
	for _, in := range l.Instances {
		if o := in.Table.ColumnIndex(column); o >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("exec: ambiguous column %q", column)
			}
			found = in.Base + o
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("exec: unknown column %q", column)
	}
	return found, nil
}

// InstanceOf returns the ordinal of the instance with the given alias, or -1.
func (l *Layout) InstanceOf(alias string) int {
	for i, in := range l.Instances {
		if strings.EqualFold(in.Alias, alias) {
			return i
		}
	}
	return -1
}

// InstanceForOffset returns the instance ordinal owning a flat offset.
func (l *Layout) InstanceForOffset(off int) int {
	for i := len(l.Instances) - 1; i >= 0; i-- {
		if off >= l.Instances[i].Base {
			return i
		}
	}
	return -1
}
