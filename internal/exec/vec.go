package exec

import (
	"fmt"
	"sort"

	"aim/internal/sqltypes"
	"aim/internal/storage"
)

// batchSize is the number of rows a scan materializes per batch. Large
// enough that per-batch dispatch overhead vanishes against per-row work,
// small enough that a batch's row views and predicate lanes stay cache
// resident.
const batchSize = 1024

// batchArena bundles the reusable scratch buffers of one vectorized
// execution: key/value spans filled by ReadBatch, row views, the selection
// vector, a decode slab for index-only reads, and free lists for the
// tri-state lanes and sub-selections that nested AND/OR kernels borrow.
// Arenas are pooled on the Executor (sync.Pool), so steady-state replay
// allocates only the output rows that escape into Results.
type batchArena struct {
	keys []([]byte)
	vals []interface{}
	rows []sqltypes.Row
	sel  []int32
	slab []sqltypes.Value // decoded env rows for covering/ICP index reads
	dec  []sqltypes.Value // per-entry key decode scratch

	triFree [][]int8
	selFree [][]int32
}

func (e *Executor) getArena() *batchArena {
	if a, ok := e.arenas.Get().(*batchArena); ok {
		return a
	}
	return &batchArena{
		keys: make([][]byte, batchSize),
		vals: make([]interface{}, batchSize),
		rows: make([]sqltypes.Row, batchSize),
		sel:  make([]int32, 0, batchSize),
	}
}

func (e *Executor) putArena(a *batchArena) { e.arenas.Put(a) }

// envSlab returns a cleared-on-demand value slab of at least n values.
func (a *batchArena) envSlab(n int) []sqltypes.Value {
	if cap(a.slab) < n {
		a.slab = make([]sqltypes.Value, n)
	}
	return a.slab[:n]
}

func (a *batchArena) decBuf(n int) []sqltypes.Value {
	if cap(a.dec) < n {
		a.dec = make([]sqltypes.Value, n)
	}
	return a.dec[:n]
}

func (a *batchArena) getTri() []int8 {
	if k := len(a.triFree); k > 0 {
		b := a.triFree[k-1]
		a.triFree = a.triFree[:k-1]
		return b
	}
	return make([]int8, batchSize)
}

func (a *batchArena) putTri(b []int8) { a.triFree = append(a.triFree, b) }

func (a *batchArena) getSel() []int32 {
	if k := len(a.selFree); k > 0 {
		s := a.selFree[k-1]
		a.selFree = a.selFree[:k-1]
		return s[:0]
	}
	return make([]int32, 0, batchSize)
}

func (a *batchArena) putSel(s []int32) { a.selFree = append(a.selFree, s) }

// batchSink consumes filtered batches: either a projector building output
// rows or an adapter feeding the shared aggregator.
type batchSink interface {
	consume(rows []sqltypes.Row, sel []int32) error
	finishRows() ([]sqltypes.Row, error)
}

// batchProjector materializes output rows. When every output is a bare
// column reference it copies values out of the batch into one slab per
// batch (a single allocation covering all selected rows) instead of calling
// a closure per column per row. Output slabs escape into the Result and are
// never pooled.
type batchProjector struct {
	p       *Plan
	cols    []int // env offsets when ALL outputs are bare columns, else nil
	outRows []sqltypes.Row
}

func newBatchProjector(p *Plan) *batchProjector {
	s := &batchProjector{p: p}
	cols := make([]int, len(p.Output))
	for i, o := range p.Output {
		if o.Agg >= 0 || o.col == 0 {
			return s
		}
		cols[i] = o.col - 1
	}
	s.cols = cols
	return s
}

func (s *batchProjector) consume(rows []sqltypes.Row, sel []int32) error {
	outW := len(s.p.Output)
	if s.cols != nil && outW > 0 {
		slab := make([]sqltypes.Value, len(sel)*outW)
		for k, i := range sel {
			dst := slab[k*outW : (k+1)*outW : (k+1)*outW]
			src := rows[i]
			for j, off := range s.cols {
				dst[j] = src[off]
			}
			s.outRows = append(s.outRows, dst)
		}
		return nil
	}
	for _, i := range sel {
		env := rows[i]
		row := make(sqltypes.Row, outW)
		for j, o := range s.p.Output {
			v, err := o.Expr(env)
			if err != nil {
				return err
			}
			row[j] = v
		}
		s.outRows = append(s.outRows, row)
	}
	return nil
}

func (s *batchProjector) finishRows() ([]sqltypes.Row, error) { return s.outRows, nil }

// batchAggSink feeds selected rows into the shared aggregator. When every
// grouping expression and aggregate argument is a bare column, it computes
// group keys by direct reads into one reused buffer and folds values without
// per-row closure calls — but group identity, insertion order, stream
// flushing and the accumulation arithmetic all live in the aggregator, so
// the produced groups are identical to the row engine's by construction.
type batchAggSink struct {
	agg       *aggregator
	groupCols []int // env offsets; nil = closure fallback via absorb
	argCols   []int // per agg: env offset, or -1 for COUNT(*)
	keyBuf    []byte
	// Single-INT-group-column cache: skips the per-row key encode and string
	// map lookup for repeat groups. First sight of a group still registers it
	// through aggregator.state, so identity and insertion order are unchanged;
	// hash mode only, because streaming retires states on key change.
	intGroups map[int64]*groupState
	nullGroup *groupState
	// sumAgg is non-nil when every aggregate is COUNT/SUM/AVG — the pure
	// counter/adder arms of groupState.add — letting consume inline the
	// identical accumulation (same additions, same order) without a call
	// per value. MIN/MAX keep routing through add.
	sumAgg []bool
}

func newBatchAggSink(p *Plan) *batchAggSink {
	s := &batchAggSink{agg: newAggregator(p)}
	if len(p.GroupByCols) != len(p.GroupBy) {
		return s
	}
	groupCols := make([]int, len(p.GroupByCols))
	for i, c := range p.GroupByCols {
		if c == 0 {
			return s
		}
		groupCols[i] = c - 1
	}
	argCols := make([]int, len(p.Aggs))
	for i, spec := range p.Aggs {
		if spec.Arg == nil {
			argCols[i] = -1
			continue
		}
		if spec.ArgCol == 0 {
			return s
		}
		argCols[i] = spec.ArgCol - 1
	}
	s.groupCols, s.argCols = groupCols, argCols
	if len(groupCols) == 1 && !s.agg.stream {
		s.intGroups = map[int64]*groupState{}
	}
	sumAgg := make([]bool, len(p.Aggs))
	for i, spec := range p.Aggs {
		switch spec.Func {
		case AggCount:
		case AggSum, AggAvg:
			sumAgg[i] = true
		default:
			return s
		}
	}
	s.sumAgg = sumAgg
	return s
}

// lookup encodes the group key for env and resolves its state through the
// aggregator, the single source of truth for group identity.
func (s *batchAggSink) lookup(env sqltypes.Row) (*groupState, error) {
	s.keyBuf = s.keyBuf[:0]
	for _, c := range s.groupCols {
		s.keyBuf = sqltypes.EncodeKey(s.keyBuf, env[c])
	}
	return s.agg.state(s.keyBuf, env)
}

func (s *batchAggSink) consume(rows []sqltypes.Row, sel []int32) error {
	if s.argCols == nil {
		for _, i := range sel {
			if err := s.agg.absorb(rows[i]); err != nil {
				return err
			}
		}
		return nil
	}
	aggs := s.agg.p.Aggs
	for _, i := range sel {
		env := rows[i]
		var gs *groupState
		var err error
		if s.intGroups != nil {
			switch g := &env[s.groupCols[0]]; {
			case g.IsNull():
				if gs = s.nullGroup; gs == nil {
					if gs, err = s.lookup(env); err != nil {
						return err
					}
					s.nullGroup = gs
				}
			case g.Kind() == sqltypes.KindInt:
				var ok bool
				if gs, ok = s.intGroups[g.Int()]; !ok {
					if gs, err = s.lookup(env); err != nil {
						return err
					}
					s.intGroups[g.Int()] = gs
				}
			default:
				if gs, err = s.lookup(env); err != nil {
					return err
				}
			}
		} else if gs, err = s.lookup(env); err != nil {
			return err
		}
		if s.sumAgg != nil {
			// groupState.add's COUNT/SUM/AVG arms, inlined: identical
			// counter increments and float additions in identical order.
			for j, c := range s.argCols {
				if c < 0 {
					gs.counts[j]++ // COUNT(*)
					continue
				}
				v := &env[c]
				if v.IsNull() {
					continue // aggregates skip NULLs
				}
				gs.counts[j]++
				if s.sumAgg[j] {
					gs.sums[j] += v.Float()
				}
			}
			continue
		}
		for j := range aggs {
			c := s.argCols[j]
			v := &sqltypes.Null
			if c >= 0 {
				v = &env[c]
				if v.IsNull() {
					continue // aggregates skip NULLs
				}
			}
			gs.add(j, aggs[j].Func, v)
		}
	}
	return nil
}

func (s *batchAggSink) finishRows() ([]sqltypes.Row, error) { return s.agg.finish() }

// runVectorized executes a single-step plan batch-at-a-time: the scan fills
// reusable row batches, predicates run per batch into selection vectors, and
// projection/aggregation consume the selected rows. It produces byte-
// identical Result rows and Stats to the row loop; the result tail and the
// aggregator are literally shared, and the scan replicates the row loop's
// RowsRead/PageReads accounting (height probe up front, per-entry and
// per-lookup counts, leaves walked at the end).
func (e *Executor) runVectorized(p *Plan, res *Result) (*Result, error) {
	st := &res.Stats
	step := &p.Steps[0]
	inst := p.Layout.Instances[step.Instance]
	tbl := e.Store.Table(inst.Table.Name)
	if tbl == nil {
		return nil, fmt.Errorf("exec: table %q not materialized", inst.Table.Name)
	}
	a := e.getArena()
	defer e.putArena(a)
	if e.m != nil {
		e.m.batchStatements.Inc()
	}

	filterVec := compileVec(step.FilterSrc, p.Layout)
	icpVec := compileVec(step.ICPSrc, p.Layout)

	var sink batchSink
	if p.Grouped {
		sink = newBatchAggSink(p)
	} else {
		sink = newBatchProjector(p)
	}

	// Resolve the equality prefix; a NULL key matches nothing (but grouped
	// plans still emit their empty-input aggregate row via the sink).
	env := make([]sqltypes.Value, p.Layout.Width)
	prefix := make([]sqltypes.Value, len(step.EqKeys))
	skipScan := false
	for i, k := range step.EqKeys {
		v := k.Resolve(env)
		if v.IsNull() {
			skipScan = true
			break
		}
		prefix[i] = v
	}

	scan := func(lo, hi []byte, hiInc bool) error {
		if step.IndexName == "" {
			return e.vecScanClustered(step, tbl, inst, a, filterVec, sink, lo, hi, hiInc, st)
		}
		return e.vecScanIndex(step, tbl, inst, a, filterVec, icpVec, sink, lo, hi, hiInc, st)
	}

	switch {
	case skipScan:
	case len(step.In) > 0:
		// Multi-range read, identical value ordering to the row loop.
		vals := make([]sqltypes.Value, 0, len(step.In))
		for _, ks := range step.In {
			v := ks.Resolve(env)
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return sqltypes.Compare(vals[i], vals[j]) < 0 })
		prev := sqltypes.Null
		for _, v := range vals {
			if !prev.IsNull() && sqltypes.Compare(prev, v) == 0 {
				continue
			}
			prev = v
			full := append(append([]sqltypes.Value(nil), prefix...), v)
			lo, hi, hiInc, _ := scanBounds(full, nil, env)
			if err := scan(lo, hi, hiInc); err != nil {
				return nil, err
			}
		}
	default:
		lo, hi, hiInc, empty := scanBounds(prefix, step.Range, env)
		if !empty {
			if err := scan(lo, hi, hiInc); err != nil {
				return nil, err
			}
		}
	}

	outRows, err := sink.finishRows()
	if err != nil {
		return nil, err
	}
	return e.finish(p, outRows, res)
}

// applyPred narrows sel to rows passing the predicate, compacting in place.
// The vectorized kernel is preferred; a nil kernel falls back to the row
// closure evaluated per selected row (same order, same first error).
func applyPred(a *batchArena, vp vecPred, closure CompiledExpr, rows []sqltypes.Row, sel []int32) ([]int32, error) {
	if vp != nil {
		out := a.getTri()
		vp(a, rows, sel, out)
		kept := sel[:0]
		for _, i := range sel {
			if out[i] == triTrue {
				kept = append(kept, i)
			}
		}
		a.putTri(out)
		return kept, nil
	}
	if closure == nil {
		return sel, nil
	}
	kept := sel[:0]
	for _, i := range sel {
		ok, err := passes(closure, rows[i])
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept, i)
		}
	}
	return kept, nil
}

func (e *Executor) vecScanClustered(step *Step, tbl *storage.Table, inst Instance, a *batchArena, filterVec vecPred, sink batchSink, lo, hi []byte, hiInc bool, st *Stats) error {
	if e.m != nil {
		e.m.clusteredScans.Inc()
	}
	var scanned int64
	st.PageReads += int64(tbl.Data().Height())
	it := tbl.Data().SeekRange(lo, hi, hiInc)
	for {
		n := it.ReadBatch(nil, a.vals, batchSize)
		if n == 0 {
			break
		}
		st.RowsRead += int64(n)
		scanned += int64(n)
		if e.m != nil {
			e.m.batches.Inc()
		}
		rows := a.rows[:n]
		sel := a.sel[:0]
		for i := 0; i < n; i++ {
			// Single-step plans have a single-instance layout (base 0,
			// width == ncols), so the stored row IS the env row: no copy.
			rows[i] = a.vals[i].(sqltypes.Row)
			sel = append(sel, int32(i))
		}
		sel, err := applyPred(a, filterVec, step.Filter, rows, sel)
		if err != nil {
			return err
		}
		if err := sink.consume(rows, sel); err != nil {
			return err
		}
	}
	st.PageReads += int64(it.LeavesWalked())
	if e.m != nil {
		e.m.clusteredRows.Add(scanned)
	}
	return nil
}

func (e *Executor) vecScanIndex(step *Step, tbl *storage.Table, inst Instance, a *batchArena, filterVec, icpVec vecPred, sink batchSink, lo, hi []byte, hiInc bool, st *Stats) error {
	ix := tbl.Index(step.IndexName)
	if ix == nil {
		return fmt.Errorf("exec: index %q not materialized on %s", step.IndexName, tbl.Def.Name)
	}
	ncols := len(inst.Table.Columns)
	ords := ix.Ordinals()
	pks := tbl.Def.PrimaryKey
	keyCols := len(ords) + len(pks)
	needDecode := step.Covering || step.ICP != nil

	if e.m != nil {
		if step.Covering {
			e.m.indexOnlyScans.Inc()
		} else {
			e.m.indexScans.Inc()
		}
	}
	var scanned int64
	st.PageReads += int64(ix.Tree().Height())
	it := ix.Tree().SeekRange(lo, hi, hiInc)
	for {
		var n int
		if needDecode {
			n = it.ReadBatch(a.keys, a.vals, batchSize)
		} else {
			n = it.ReadBatch(nil, a.vals, batchSize)
		}
		if n == 0 {
			break
		}
		st.RowsRead += int64(n) // index entries examined
		scanned += int64(n)
		if e.m != nil {
			e.m.batches.Inc()
		}
		rows := a.rows[:n]
		sel := a.sel[:0]
		for i := 0; i < n; i++ {
			sel = append(sel, int32(i))
		}
		if needDecode {
			slab := a.envSlab(n * ncols)
			dec := a.decBuf(keyCols)
			for i := 0; i < n; i++ {
				row := slab[i*ncols : (i+1)*ncols : (i+1)*ncols]
				for j := range row {
					row[j] = sqltypes.Null
				}
				if _, err := sqltypes.DecodeKeyInto(dec, a.keys[i], keyCols); err != nil {
					return fmt.Errorf("exec: corrupt index entry: %v", err)
				}
				for j, o := range ords {
					row[o] = dec[j]
				}
				for j, o := range pks {
					row[o] = dec[len(ords)+j]
				}
				rows[i] = row
			}
			if step.ICP != nil {
				var err error
				sel, err = applyPred(a, icpVec, step.ICP, rows, sel)
				if err != nil {
					return err
				}
			}
		}
		if !step.Covering {
			dataHeight := int64(tbl.Data().Height())
			for _, i := range sel {
				pk := a.vals[i].([]byte)
				row, ok := tbl.GetByPK(pk, nil)
				if !ok {
					return fmt.Errorf("exec: dangling index entry in %s", step.IndexName)
				}
				st.RowsRead++
				st.PageReads += dataHeight
				// The base row replaces any decoded ICP view: the row loop
				// likewise overwrites the whole env segment after a lookup.
				rows[i] = row
			}
		}
		sel, err := applyPred(a, filterVec, step.Filter, rows, sel)
		if err != nil {
			return err
		}
		if err := sink.consume(rows, sel); err != nil {
			return err
		}
	}
	st.PageReads += int64(it.LeavesWalked())
	if e.m != nil {
		e.m.indexRows.Add(scanned)
	}
	return nil
}
