package exec

import "aim/internal/obs"

// execMetrics bundles the executor's observability handles. Per-operator
// counters split physical work by access path (clustered scan, index scan,
// index-only scan); the aggregate counters mirror Stats so the registry
// exposes cumulative rows/pages/CPU across every statement executed.
type execMetrics struct {
	statements *obs.Counter

	batchStatements *obs.Counter // statements run on the vectorized engine
	batches         *obs.Counter // row batches processed by the vectorized engine

	clusteredScans *obs.Counter // clustered (base-table) scan operators run
	indexScans     *obs.Counter // secondary-index scan operators run
	indexOnlyScans *obs.Counter // covering (index-only) scan operators run
	clusteredRows  *obs.Counter // rows examined by clustered scans
	indexRows      *obs.Counter // entries examined by index scans (both kinds)

	rowsRead    *obs.Counter
	rowsSent    *obs.Counter
	pageReads   *obs.Counter
	sortRows    *obs.Counter
	rowsWritten *obs.Counter
	indexWrites *obs.Counter
	cpuMicros   *obs.Counter   // modelled CPUSeconds, accumulated in µs
	stmtCPU     *obs.Histogram // modelled CPU seconds per statement
}

// SetObs attaches (nil registry: detaches) executor metrics under the
// exec.* namespace. Call before concurrent use.
func (e *Executor) SetObs(r *obs.Registry) {
	if r == nil {
		e.m = nil
		return
	}
	e.m = &execMetrics{
		statements:      r.Counter("exec.statements"),
		batchStatements: r.Counter("exec.batch_statements"),
		batches:         r.Counter("exec.batches"),
		clusteredScans:  r.Counter("exec.clustered_scans"),
		indexScans:      r.Counter("exec.index_scans"),
		indexOnlyScans:  r.Counter("exec.index_only_scans"),
		clusteredRows:   r.Counter("exec.clustered_rows"),
		indexRows:       r.Counter("exec.index_rows"),
		rowsRead:        r.Counter("exec.rows_read"),
		rowsSent:        r.Counter("exec.rows_sent"),
		pageReads:       r.Counter("exec.page_reads"),
		sortRows:        r.Counter("exec.sort_rows"),
		rowsWritten:     r.Counter("exec.rows_written"),
		indexWrites:     r.Counter("exec.index_writes"),
		cpuMicros:       r.Counter("exec.cpu_micros"),
		stmtCPU:         r.Histogram("exec.stmt_cpu_seconds"),
	}
}

// record folds one statement's physical stats into the registry counters.
func (e *Executor) record(st Stats) {
	m := e.m
	if m == nil {
		return
	}
	m.statements.Inc()
	m.rowsRead.Add(st.RowsRead)
	m.rowsSent.Add(st.RowsSent)
	m.pageReads.Add(st.PageReads)
	m.sortRows.Add(st.SortRows)
	m.rowsWritten.Add(st.RowsWritten)
	m.indexWrites.Add(st.IndexWrites)
	cpu := st.CPUSeconds()
	m.cpuMicros.Add(int64(cpu * 1e6))
	m.stmtCPU.Observe(cpu)
}
