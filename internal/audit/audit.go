// Package audit is the advisor's decision journal: an append-only JSON-lines
// log that records one causally-linked record per advisor event — a
// candidate generated from query structure, its ranking and knapsack verdict
// with the budget state, the shadow-validation verdict with its typed reason
// code, the adoption, and any later regression-driven revert. The paper's
// operational pitch (§VI-D, the no-regression guarantee) is that operators
// can trust automated index changes; this journal is what makes every change
// *auditable* after the fact: `aimctl explain <index>` reconstructs the full
// why-lineage of any index (or why a candidate was rejected) from the
// journal alone.
//
// Design rules:
//
//   - Nil is off. Every method is safe on a nil *Journal and the disabled
//     path costs one nil check — mirroring internal/obs, components hold a
//     journal handle unconditionally.
//   - Records never influence behaviour; they describe decisions already
//     taken.
//   - Writes are deterministic modulo the ts_us field: for a fixed seed and
//     workload, two runs produce byte-identical journals once timestamps are
//     stripped, so golden tests can pin them.
//   - Every record carries the obs span ID of the phase that produced it
//     (0 when observability is off), joinable against the -trace-out file.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Event discriminates journal record types.
type Event string

// The advisor event types, in causal order.
const (
	// EventCandidate: a candidate index was generated from query structure.
	EventCandidate Event = "candidate"
	// EventRank: the candidate was ranked (gain, maintenance discount) and
	// the knapsack decided to keep or cut it under the budget.
	EventRank Event = "rank"
	// EventShadow: a shadow validation produced a verdict covering the index.
	EventShadow Event = "shadow"
	// EventAdopt: the index was materialized on production.
	EventAdopt Event = "adopt"
	// EventRevert: the regression detector flagged the index and it was
	// dropped.
	EventRevert Event = "revert"
	// EventWindow: one sealed live-traffic window entered a tuning cycle.
	// The record maps each normalized query in the window to the concrete
	// statement IDs (wire trace IDs, or session#seq) that produced it — the
	// bridge that lets Explain resolve a later adoption back to the exact
	// live statements that drove it. Offline replays of the same window
	// write byte-identical window records.
	EventWindow Event = "window"
)

// WindowQuery is one normalized query inside an EventWindow record: the
// query, how many statements in the window executed it, and up to
// MaxWindowStatements concrete statement IDs in canonical window order.
type WindowQuery struct {
	Query string `json:"query"`
	Count int64  `json:"count"`
	// Statements holds trace IDs when the client supplied them, otherwise
	// "session#seq". Capped at MaxWindowStatements per query; Count carries
	// the true total.
	Statements []string `json:"statements,omitempty"`
}

// MaxWindowStatements caps the statement IDs journaled per window query, so
// a hot query repeated thousands of times per window costs a bounded line.
const MaxWindowStatements = 16

// Record is one journal line. Fields are event-specific; irrelevant ones
// stay zero and are omitted from the encoding. IndexKey is the canonical
// identity (catalog.Index.Key(): "table(col1,col2)") that links records of
// one index across events; Index is the catalog name when known.
type Record struct {
	Seq   int64 `json:"seq"`
	TSUS  int64 `json:"ts_us,omitempty"` // wall-clock unix microseconds
	Event Event `json:"event"`
	// SpanID is the obs span of the phase that produced this record
	// (advisor/generate for candidates, advisor/knapsack for rank records,
	// shadow/validate for verdicts, advisor/apply and regression/revert for
	// adoptions and reverts). 0 when no registry is attached.
	SpanID   uint64 `json:"span_id,omitempty"`
	IndexKey string `json:"index_key,omitempty"`
	Index    string `json:"index,omitempty"`
	Table    string `json:"table,omitempty"`

	// EventCandidate.
	PartialOrder string   `json:"partial_order,omitempty"`
	Sources      []string `json:"sources,omitempty"` // normalized source queries

	// EventRank.
	GainCPU        float64 `json:"gain_cpu,omitempty"`        // Eq. 7 share, CPU s/window
	MaintenanceCPU float64 `json:"maintenance_cpu,omitempty"` // Eq. 8 discount
	SizeBytes      int64   `json:"size_bytes,omitempty"`
	Selected       *bool   `json:"selected,omitempty"`
	// Decision is the knapsack outcome: "selected", "nonpositive_utility",
	// "duplicate_existing", "over_budget" or "prefix_redundant".
	Decision string `json:"decision,omitempty"`
	// BudgetBytes is the configured budget (0 = unlimited) and
	// BudgetUsedBytes the budget consumed when this decision was made.
	BudgetBytes     int64 `json:"budget_bytes,omitempty"`
	BudgetUsedBytes int64 `json:"budget_used_bytes,omitempty"`

	// EventShadow.
	Verdict    string `json:"verdict,omitempty"` // accepted|rejected|degraded
	ReasonCode string `json:"reason_code,omitempty"`
	Reason     string `json:"reason,omitempty"`
	Replays    int64  `json:"replays,omitempty"`
	// QueriesCompared/QueriesDiverged/QueriesUnreplayable summarize the
	// replay evidence behind the verdict.
	QueriesCompared     int `json:"queries_compared,omitempty"`
	QueriesDiverged     int `json:"queries_diverged,omitempty"`
	QueriesUnreplayable int `json:"queries_unreplayable,omitempty"`

	// EventRevert.
	Query     string  `json:"query,omitempty"` // regressed normalized query
	BeforeCPU float64 `json:"before_cpu,omitempty"`
	AfterCPU  float64 `json:"after_cpu,omitempty"`

	// EventWindow. Cycle is the 0-based tuning-cycle ordinal (omitted when
	// 0); Queries maps the window's normalized queries to live statement IDs.
	Cycle   int64         `json:"cycle,omitempty"`
	Queries []WindowQuery `json:"window_queries,omitempty"`
}

// Journal appends records to a writer, one JSON line each. Safe for
// concurrent use; nil is the disabled state.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	seq int64
	// now stamps ts_us; replaced in tests that need fully deterministic
	// bytes.
	now func() int64
	// closer is set when the journal owns the underlying file.
	closer io.Closer
	// err remembers the first write failure for Close/Err.
	err error
}

// New returns a journal appending to w.
func New(w io.Writer) *Journal {
	return &Journal{w: w, enc: json.NewEncoder(w), now: func() int64 { return time.Now().UnixMicro() }}
}

// Create opens (truncating) a journal file at path. Close releases it.
func Create(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("audit: %v", err)
	}
	bw := bufio.NewWriter(f)
	j := New(bw)
	j.closer = &flushCloser{bw: bw, f: f}
	return j, nil
}

type flushCloser struct {
	bw *bufio.Writer
	f  *os.File
}

func (fc *flushCloser) Close() error {
	if err := fc.bw.Flush(); err != nil {
		fc.f.Close()
		return err
	}
	return fc.f.Close()
}

// SetClock replaces the timestamp source (tests use a fixed clock to pin
// journal bytes exactly). No-op on nil.
func (j *Journal) SetClock(now func() int64) {
	if j == nil || now == nil {
		return
	}
	j.mu.Lock()
	j.now = now
	j.mu.Unlock()
}

// Append assigns the record's sequence number and timestamp and writes it as
// one JSON line. No-op on a nil journal. Write errors are remembered and
// surfaced by Close/Err rather than returned per record: journaling must
// never turn an advisor decision into a failure.
func (j *Journal) Append(r *Record) {
	if j == nil || r == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	r.Seq = j.seq
	r.TSUS = j.now()
	if err := j.enc.Encode(r); err != nil && j.err == nil {
		j.err = err
	}
}

// Seq returns the number of records appended so far (0 on nil).
func (j *Journal) Seq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Err returns the first write error encountered (nil on nil journal).
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the underlying file when the journal owns one
// (Create); otherwise it only reports any deferred write error.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		if err := j.closer.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.closer = nil
	}
	return j.err
}

// ReadRecords parses a journal stream back into records, tolerating a
// truncated final line (a crashed writer must not make the whole journal
// unreadable).
func ReadRecords(r io.Reader) ([]*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []*Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(b, rec); err != nil {
			if !sc.Scan() { // truncated tail: keep what parsed
				return out, nil
			}
			return out, fmt.Errorf("audit: line %d: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("audit: %v", err)
	}
	return out, nil
}

// ReadFile reads a journal file.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("audit: %v", err)
	}
	defer f.Close()
	return ReadRecords(f)
}
