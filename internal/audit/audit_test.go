package audit

import (
	"strings"
	"testing"
)

func boolPtr(b bool) *bool { return &b }

// sampleJournal writes one full adopted-then-reverted chain for
// events(user_id) plus a rejected candidate on events(kind,score).
func sampleJournal(j *Journal) {
	j.Append(&Record{Event: EventCandidate, SpanID: 2, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		PartialOrder: "<{user_id}>", Sources: []string{"SELECT score FROM events WHERE user_id = ?"}})
	j.Append(&Record{Event: EventCandidate, SpanID: 2, IndexKey: "events(kind,score)", Index: "aim_events_2", Table: "events",
		PartialOrder: "<{kind}, {score}>", Sources: []string{"SELECT id FROM events WHERE kind = ? AND score > ?"}})
	j.Append(&Record{Event: EventRank, SpanID: 3, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		GainCPU: 0.25, MaintenanceCPU: 0.01, SizeBytes: 64000, Selected: boolPtr(true), Decision: "selected",
		BudgetBytes: 100000, BudgetUsedBytes: 64000})
	j.Append(&Record{Event: EventRank, SpanID: 3, IndexKey: "events(kind,score)", Index: "aim_events_2", Table: "events",
		GainCPU: 0.02, MaintenanceCPU: 0.01, SizeBytes: 80000, Selected: boolPtr(false), Decision: "over_budget",
		BudgetBytes: 100000, BudgetUsedBytes: 64000})
	j.Append(&Record{Event: EventShadow, SpanID: 4, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		Verdict: "accepted", ReasonCode: "accepted", Reason: "accepted: 2/2 queries compared", Replays: 6, QueriesCompared: 2})
	j.Append(&Record{Event: EventAdopt, SpanID: 5, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events"})
	j.Append(&Record{Event: EventRevert, SpanID: 6, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		ReasonCode: "query_regressed", Query: "SELECT score FROM events WHERE user_id = ?", BeforeCPU: 0.001, AfterCPU: 0.004})
}

func TestJournalRoundTrip(t *testing.T) {
	var sb strings.Builder
	j := New(&sb)
	sampleJournal(j)
	if j.Seq() != 7 {
		t.Fatalf("seq = %d", j.Seq())
	}
	recs, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.Seq != int64(i+1) {
			t.Errorf("record %d seq = %d", i, r.Seq)
		}
		if r.TSUS == 0 {
			t.Errorf("record %d missing timestamp", i)
		}
	}
	if recs[4].Verdict != "accepted" || recs[4].QueriesCompared != 2 {
		t.Errorf("shadow record = %+v", recs[4])
	}
}

func TestJournalDeterministicModuloTimestamps(t *testing.T) {
	write := func(clock func() int64) string {
		var sb strings.Builder
		j := New(&sb)
		j.SetClock(clock)
		sampleJournal(j)
		return sb.String()
	}
	a := write(func() int64 { return 1111 })
	b := write(func() int64 { return 2222 })
	if a == b {
		t.Fatal("clocks did not differ; test is vacuous")
	}
	strip := func(s string) string { return strings.ReplaceAll(strings.ReplaceAll(s, `"ts_us":1111,`, ""), `"ts_us":2222,`, "") }
	if strip(a) != strip(b) {
		t.Errorf("journals differ beyond timestamps:\n%s\n---\n%s", strip(a), strip(b))
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Append(&Record{Event: EventAdopt})
	j.SetClock(func() int64 { return 0 })
	if j.Seq() != 0 || j.Err() != nil || j.Close() != nil {
		t.Error("nil journal misbehaved")
	}
}

func TestExplainLineage(t *testing.T) {
	var sb strings.Builder
	j := New(&sb)
	sampleJournal(j)
	recs, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}

	// The adopted-then-reverted index resolves by key, name and table.name.
	for _, ref := range []string{"events(user_id)", "aim_events_1", "events.aim_events_1"} {
		l, err := Explain(recs, ref)
		if err != nil {
			t.Fatalf("Explain(%q): %v", ref, err)
		}
		if !l.Adopted() || !l.Reverted() || !l.Complete() {
			t.Errorf("Explain(%q): adopted=%v reverted=%v complete=%v", ref, l.Adopted(), l.Reverted(), l.Complete())
		}
		if len(l.Candidates) != 1 || len(l.Ranks) != 1 || len(l.Shadows) != 1 {
			t.Errorf("Explain(%q): chain %d/%d/%d", ref, len(l.Candidates), len(l.Ranks), len(l.Shadows))
		}
	}

	// The rejected candidate explains its cut.
	l, err := Explain(recs, "events(kind,score)")
	if err != nil {
		t.Fatal(err)
	}
	if l.Adopted() || len(l.Ranks) != 1 || l.Ranks[0].Decision != "over_budget" {
		t.Errorf("rejected lineage = %+v", l)
	}
	var out strings.Builder
	l.Render(&out, map[uint64]SpanInfo{3: {Name: "advisor/knapsack", ID: 3}})
	for _, want := range []string{"status: candidate, not adopted", "over_budget", "budget 64000/100000 bytes used", "[span 3 advisor/knapsack]"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}

	// Unknown refs list the valid choices.
	if _, err := Explain(recs, "nope"); err == nil || !strings.Contains(err.Error(), "events(user_id)") {
		t.Errorf("unknown ref error = %v", err)
	}
}

func TestReadRecordsTruncatedTail(t *testing.T) {
	var sb strings.Builder
	j := New(&sb)
	sampleJournal(j)
	whole := sb.String()
	cut := whole[:len(whole)-10] // slice into the final JSON line
	recs, err := ReadRecords(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated journal errored: %v", err)
	}
	if len(recs) != 6 {
		t.Errorf("records = %d, want 6 (last line dropped)", len(recs))
	}
}

func TestParseTrace(t *testing.T) {
	trace := `{"name":"advisor","id":1,"parent":0,"start_us":10,"dur_us":5.0}
{"name":"advisor/generate","id":2,"parent":1,"start_us":11,"dur_us":2.5}
not json at all
`
	spans, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[2].Name != "advisor/generate" || spans[2].Parent != 1 {
		t.Errorf("spans = %+v", spans)
	}
}

// TestAdoptedThenReverted: only keys whose adopt precedes a revert count; a
// revert with no prior adopt (or records with no key) never do.
func TestAdoptedThenReverted(t *testing.T) {
	var sb strings.Builder
	j := New(&sb)
	sampleJournal(j) // events(user_id) adopted then reverted
	j.Append(&Record{Event: EventAdopt, IndexKey: "events(kind,score)", Index: "aim_events_2", Table: "events"})
	j.Append(&Record{Event: EventRevert, IndexKey: "orders(total)", Index: "ix_total", Table: "orders"})
	j.Append(&Record{Event: EventRevert})
	recs, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := AdoptedThenReverted(recs)
	if len(got) != 1 || got[0] != "events(user_id)" {
		t.Errorf("AdoptedThenReverted = %v, want [events(user_id)]", got)
	}
	if got := AdoptedThenReverted(nil); len(got) != 0 {
		t.Errorf("AdoptedThenReverted(nil) = %v", got)
	}
}

// TestExplainWindowStatements pins the flight-recorder lineage bridge: an
// EventWindow record preceding an adoption resolves the adopted index back
// to the concrete live statement IDs whose normalized queries the index
// serves — and only those. Journals without window records (offline runs)
// keep WindowStatements empty and render unchanged.
func TestExplainWindowStatements(t *testing.T) {
	var sb strings.Builder
	j := New(&sb)
	j.Append(&Record{Event: EventCandidate, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		PartialOrder: "<{user_id}>", Sources: []string{"SELECT score FROM events WHERE user_id = ?"}})
	j.Append(&Record{Event: EventWindow, Cycle: 0, Queries: []WindowQuery{
		{Query: "SELECT score FROM events WHERE user_id = ?", Count: 3,
			Statements: []string{"t-0001-0-1", "t-0002-0-4", "lg-0003#9"}},
		{Query: "SELECT id FROM other WHERE kind = ?", Count: 1,
			Statements: []string{"t-0009-1-1"}},
	}})
	// A later window must win over an earlier one: append a second window
	// before the adopt with refreshed statements.
	j.Append(&Record{Event: EventWindow, Cycle: 1, Queries: []WindowQuery{
		{Query: "SELECT score FROM events WHERE user_id = ?", Count: 2,
			Statements: []string{"t-0001-1-2", "t-0002-1-5"}},
	}})
	j.Append(&Record{Event: EventRank, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		Selected: boolPtr(true), Decision: "selected"})
	j.Append(&Record{Event: EventShadow, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events",
		Verdict: "accepted"})
	j.Append(&Record{Event: EventAdopt, IndexKey: "events(user_id)", Index: "aim_events_1", Table: "events"})
	recs, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	l, err := Explain(recs, "events(user_id)")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Complete() {
		t.Error("lineage incomplete")
	}
	want := []string{"t-0001-1-2", "t-0002-1-5"}
	if len(l.WindowStatements) != len(want) {
		t.Fatalf("WindowStatements = %v, want %v", l.WindowStatements, want)
	}
	for i := range want {
		if l.WindowStatements[i] != want[i] {
			t.Fatalf("WindowStatements = %v, want %v", l.WindowStatements, want)
		}
	}
	var out strings.Builder
	l.Render(&out, nil)
	if !strings.Contains(out.String(), "driven by    live statements t-0001-1-2, t-0002-1-5") {
		t.Errorf("render missing window statements:\n%s", out.String())
	}

	// Offline journal (no window events): empty resolution, no render line.
	var sb2 strings.Builder
	j2 := New(&sb2)
	sampleJournal(j2)
	recs2, err := ReadRecords(strings.NewReader(sb2.String()))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Explain(recs2, "events(user_id)")
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.WindowStatements) != 0 {
		t.Errorf("offline WindowStatements = %v", l2.WindowStatements)
	}
	var out2 strings.Builder
	l2.Render(&out2, nil)
	if strings.Contains(out2.String(), "driven by") {
		t.Errorf("offline render grew a window line:\n%s", out2.String())
	}

	// Window round-trip: the JSON carrier preserves query counts and caps.
	var winRec *Record
	for _, r := range recs {
		if r.Event == EventWindow && r.Cycle == 1 {
			winRec = r
		}
	}
	if winRec == nil || len(winRec.Queries) != 1 || winRec.Queries[0].Count != 2 {
		t.Fatalf("window record = %+v", winRec)
	}
}
