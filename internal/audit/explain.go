// Lineage reconstruction: given the flat journal, rebuild the causal chain
// candidate → rank → shadow verdict → adopt → revert for one index, resolve
// span IDs against an optional trace file, and render the why-lineage that
// `aimctl explain` prints.
package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Lineage is the reconstructed decision history of one index (identified by
// its canonical key). A candidate that never advanced has only the early
// records; an index that was adopted and later reverted has the full chain.
type Lineage struct {
	// Ref is the canonical index key the lineage was resolved to.
	Ref string
	// Names are the catalog index names seen for this key (usually one).
	Names []string
	// Candidates, Ranks, Shadows, Adopts, Reverts are the matching records
	// in journal order. Repeated tuning cycles append one entry per cycle.
	Candidates []*Record
	Ranks      []*Record
	Shadows    []*Record
	Adopts     []*Record
	Reverts    []*Record
	// WindowStatements are the concrete live statement IDs (wire trace IDs
	// or session#seq) from the sealed window that drove the first adoption —
	// resolved through the latest EventWindow record preceding it. Empty for
	// offline/batch journals, which carry no window records.
	WindowStatements []string
}

// Adopted reports whether the index was ever materialized.
func (l *Lineage) Adopted() bool { return len(l.Adopts) > 0 }

// Reverted reports whether the index was ever regression-reverted.
func (l *Lineage) Reverted() bool { return len(l.Reverts) > 0 }

// Complete reports whether the causal chain is closed: every adoption is
// preceded (in sequence order) by a candidate, a rank decision and an
// accepting shadow verdict for this index.
func (l *Lineage) Complete() bool {
	if !l.Adopted() {
		return false
	}
	adopt := l.Adopts[0]
	before := func(rs []*Record, pred func(*Record) bool) bool {
		for _, r := range rs {
			if r.Seq < adopt.Seq && pred(r) {
				return true
			}
		}
		return false
	}
	return before(l.Candidates, func(*Record) bool { return true }) &&
		before(l.Ranks, func(r *Record) bool { return r.Selected != nil && *r.Selected }) &&
		before(l.Shadows, func(r *Record) bool { return r.Verdict == "accepted" })
}

// matchRef reports whether a record belongs to the queried reference. A
// reference may be a canonical key "table(a,b)", a bare index name
// "aim_events_0a1b2c3d", or the "table.index" form.
func matchRef(r *Record, ref string) bool {
	if r.IndexKey == "" && r.Index == "" {
		return false
	}
	ref = strings.ToLower(strings.TrimSpace(ref))
	if strings.EqualFold(r.IndexKey, ref) || strings.EqualFold(r.Index, ref) {
		return true
	}
	if tbl, name, ok := strings.Cut(ref, "."); ok {
		return strings.EqualFold(r.Index, name) && strings.EqualFold(r.Table, tbl)
	}
	return false
}

// Explain resolves ref against the journal and rebuilds its lineage.
// Resolution is forgiving: the canonical key, the index name, or
// "table.index" all work. It fails with the known references when nothing
// matches, so a typo surfaces the valid choices.
func Explain(records []*Record, ref string) (*Lineage, error) {
	// Resolve ref to a canonical key first: name-based references must pull
	// in records of the same index that only carry the key.
	key := ""
	for _, r := range records {
		if matchRef(r, ref) {
			if r.IndexKey != "" {
				key = r.IndexKey
				break
			}
		}
	}
	if key == "" {
		refs := References(records)
		if len(refs) == 0 {
			return nil, fmt.Errorf("audit: journal has no index records")
		}
		return nil, fmt.Errorf("audit: no records for %q; journal knows: %s",
			ref, strings.Join(refs, ", "))
	}
	l := &Lineage{Ref: key}
	seenName := map[string]bool{}
	for _, r := range records {
		if !strings.EqualFold(r.IndexKey, key) && !matchRef(r, ref) {
			continue
		}
		if r.Index != "" && !seenName[r.Index] {
			seenName[r.Index] = true
			l.Names = append(l.Names, r.Index)
		}
		switch r.Event {
		case EventCandidate:
			l.Candidates = append(l.Candidates, r)
		case EventRank:
			l.Ranks = append(l.Ranks, r)
		case EventShadow:
			l.Shadows = append(l.Shadows, r)
		case EventAdopt:
			l.Adopts = append(l.Adopts, r)
		case EventRevert:
			l.Reverts = append(l.Reverts, r)
		}
	}
	l.WindowStatements = windowStatements(records, l)
	return l, nil
}

// windowStatements resolves an adopted index back to the live statements
// that drove it: the candidate records name the normalized queries the index
// serves, the latest EventWindow before the adoption names the statements
// that executed each query in that window. Nil when the index was never
// adopted or the journal has no window records (offline runs).
func windowStatements(records []*Record, l *Lineage) []string {
	if !l.Adopted() {
		return nil
	}
	adopt := l.Adopts[0]
	serves := map[string]bool{}
	for _, c := range l.Candidates {
		if c.Seq < adopt.Seq {
			for _, src := range c.Sources {
				serves[src] = true
			}
		}
	}
	var win *Record
	for _, r := range records {
		if r.Event == EventWindow && r.Seq < adopt.Seq {
			win = r // journal order: the last match is the latest window
		}
	}
	if win == nil {
		return nil
	}
	var out []string
	for _, wq := range win.Queries {
		if serves[wq.Query] {
			out = append(out, wq.Statements...)
		}
	}
	return out
}

// AdoptedThenReverted returns the sorted canonical keys of indexes whose
// journal shows an adoption followed (in sequence order) by a revert — the
// set whose full lineage the scenario suite reconstructs.
func AdoptedThenReverted(records []*Record) []string {
	adoptedAt := map[string]int64{}
	hit := map[string]bool{}
	for _, r := range records {
		if r.IndexKey == "" {
			continue
		}
		switch r.Event {
		case EventAdopt:
			if _, ok := adoptedAt[r.IndexKey]; !ok {
				adoptedAt[r.IndexKey] = r.Seq
			}
		case EventRevert:
			if seq, ok := adoptedAt[r.IndexKey]; ok && r.Seq > seq {
				hit[r.IndexKey] = true
			}
		}
	}
	out := make([]string, 0, len(hit))
	for k := range hit {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// References lists every distinct index reference in the journal (canonical
// keys, sorted) — the valid arguments to Explain.
func References(records []*Record) []string {
	seen := map[string]bool{}
	for _, r := range records {
		if r.IndexKey != "" && !seen[r.IndexKey] {
			seen[r.IndexKey] = true
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SpanInfo is one span parsed from a -trace-out file.
type SpanInfo struct {
	Name    string  `json:"name"`
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent"`
	StartUS int64   `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// ParseTrace reads a JSON-lines span trace (the -trace-out format) into a
// span-ID index, for resolving journal records to the phases that wrote
// them.
func ParseTrace(r io.Reader) (map[uint64]SpanInfo, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := map[uint64]SpanInfo{}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var si SpanInfo
		if err := json.Unmarshal(sc.Bytes(), &si); err != nil {
			continue // tolerate foreign or truncated lines
		}
		if si.ID != 0 {
			out[si.ID] = si
		}
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("audit: trace: %v", err)
	}
	return out, nil
}

// Render writes the human-readable why-lineage. spans may be nil; when
// given, each step is annotated with the phase span that produced it.
func (l *Lineage) Render(w io.Writer, spans map[uint64]SpanInfo) {
	name := l.Ref
	if len(l.Names) > 0 {
		name = l.Names[0] + " (" + l.Ref + ")"
	}
	fmt.Fprintf(w, "index %s\n", name)
	switch {
	case l.Reverted():
		fmt.Fprintf(w, "status: adopted, then regression-reverted\n")
	case l.Adopted():
		fmt.Fprintf(w, "status: adopted\n")
	case len(l.Ranks) > 0:
		fmt.Fprintf(w, "status: candidate, not adopted\n")
	default:
		fmt.Fprintf(w, "status: candidate generated, never ranked\n")
	}

	annot := func(r *Record) string {
		if r.SpanID == 0 {
			return ""
		}
		if si, ok := spans[r.SpanID]; ok {
			return fmt.Sprintf("  [span %d %s]", r.SpanID, si.Name)
		}
		return fmt.Sprintf("  [span %d]", r.SpanID)
	}
	for _, r := range l.Candidates {
		fmt.Fprintf(w, "#%-4d candidate    from %s; serves %s%s\n",
			r.Seq, r.PartialOrder, strings.Join(r.Sources, " | "), annot(r))
	}
	for _, r := range l.Ranks {
		verdictWord := "cut"
		if r.Selected != nil && *r.Selected {
			verdictWord = "kept"
		}
		budget := "unlimited budget"
		if r.BudgetBytes > 0 {
			budget = fmt.Sprintf("budget %d/%d bytes used", r.BudgetUsedBytes, r.BudgetBytes)
		}
		fmt.Fprintf(w, "#%-4d rank         gain %.6fs cpu/window, maintenance %.6fs, size %d bytes -> %s (%s, %s)%s\n",
			r.Seq, r.GainCPU, r.MaintenanceCPU, r.SizeBytes, verdictWord, r.Decision, budget, annot(r))
	}
	for _, r := range l.Shadows {
		fmt.Fprintf(w, "#%-4d shadow       %s [%s]: %s (%d queries compared, %d replays)%s\n",
			r.Seq, r.Verdict, r.ReasonCode, r.Reason, r.QueriesCompared, r.Replays, annot(r))
	}
	for _, r := range l.Adopts {
		fmt.Fprintf(w, "#%-4d adopt        materialized as %s%s\n", r.Seq, r.Index, annot(r))
	}
	// Offline journals have no window records; the line appears only for
	// live-traffic adoptions so batch goldens stay byte-identical.
	if len(l.WindowStatements) > 0 {
		fmt.Fprintf(w, "      driven by    live statements %s\n", strings.Join(l.WindowStatements, ", "))
	}
	for _, r := range l.Reverts {
		fmt.Fprintf(w, "#%-4d revert       %s [%s] regressed %.6fs -> %.6fs cpu_avg; index dropped%s\n",
			r.Seq, r.Query, r.ReasonCode, r.BeforeCPU, r.AfterCPU, annot(r))
	}
	if l.Adopted() && !l.Complete() {
		fmt.Fprintf(w, "warning: causal chain incomplete (adoption without candidate/rank/accepting-shadow records)\n")
	}
}
