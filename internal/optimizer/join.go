package optimizer

import (
	"aim/internal/catalog"
	"math"

	"aim/internal/queryinfo"
)

// joinResult is the outcome of the join-order search: a left-deep order of
// instance ordinals with the chosen access path for each position.
type joinResult struct {
	order []int
	paths []*accessPath
	cost  float64
	rows  float64 // estimated output cardinality of the join
}

// dpLimit caps the table count for exhaustive (Selinger) enumeration;
// larger joins fall back to a greedy ordering.
const dpLimit = 8

// searchJoinOrder picks a join order and access paths. indexes is the
// available index configuration (materialized plus hypothetical for what-if
// calls). When straight is true the FROM order is kept as written.
func (o *Optimizer) searchJoinOrder(info *queryinfo.Info, ctxs []*instanceContext, indexes *indexForTable, straight bool) *joinResult {
	n := len(ctxs)
	o.mJoinTables.Observe(float64(n))
	if straight || n == 1 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return o.costOrder(info, ctxs, indexes, order)
	}
	if n <= dpLimit {
		o.mJoinDP.Inc()
		return o.searchDP(info, ctxs, indexes)
	}
	o.mJoinGreedy.Inc()
	return o.searchGreedy(info, ctxs, indexes)
}

// indexForTable is the index configuration visible to one planning search:
// the schema's materialized indexes plus any hypothetical extras.
type indexForTable struct {
	list []*catalog.Index
}

// forInstance returns the candidate indexes for an instance; filtering by
// table happens inside enumeratePaths.
func (c *indexForTable) forInstance(int) []*catalog.Index { return c.list }

// costOrder evaluates one fixed order.
func (o *Optimizer) costOrder(info *queryinfo.Info, ctxs []*instanceContext, idx *indexForTable, order []int) *joinResult {
	res := &joinResult{order: order}
	placed := map[int]bool{}
	outer := 1.0
	for step, inst := range order {
		paths := o.enumeratePaths(ctxs[inst], placed, idx.forInstance(inst))
		best := o.pickPath(paths, outer)
		res.paths = append(res.paths, best)
		res.cost += outer * best.probeCost
		outer = o.joinedRows(info, ctxs, placed, inst, outer, best)
		placed[inst] = true
		_ = step
	}
	res.rows = outer
	return res
}

// joinedRows propagates cardinality after joining inst into the placed set.
func (o *Optimizer) joinedRows(info *queryinfo.Info, ctxs []*instanceContext, placed map[int]bool, inst int, outer float64, path *accessPath) float64 {
	rows := outer * path.outRows
	for _, e := range info.JoinEdges {
		other, _, _, ok := e.Other(inst)
		if ok && placed[other] {
			rows *= joinEdgeSelectivity(e, info, o.Stats)
		}
	}
	// Opaque multi-instance conjuncts that become evaluable now.
	for _, cj := range info.Conjuncts {
		if cj.Join != nil || cj.Atom != nil || len(cj.Instances) < 2 {
			continue
		}
		appliesNow := false
		allPlaced := true
		for _, i := range cj.Instances {
			if i == inst {
				appliesNow = true
			} else if !placed[i] {
				allPlaced = false
			}
		}
		if appliesNow && allPlaced {
			rows *= defaultConjunctSel
		}
	}
	if rows < 0 {
		rows = 0
	}
	return rows
}

// pickPath selects the cheapest path for the given number of outer probes.
// Probe count does not change the relative order of path costs in this
// model, but keeping the parameter makes the intent explicit.
func (o *Optimizer) pickPath(paths []*accessPath, outer float64) *accessPath {
	return bestPath(paths)
}

// searchDP runs Selinger-style dynamic programming over instance subsets.
func (o *Optimizer) searchDP(info *queryinfo.Info, ctxs []*instanceContext, idx *indexForTable) *joinResult {
	n := len(ctxs)
	type state struct {
		cost  float64
		rows  float64
		order []int
		paths []*accessPath
	}
	states := make([]*state, 1<<n)

	neighbors := info.JoinNeighbors()
	connectedTo := func(mask int, inst int) bool {
		for other := range neighbors[inst] {
			if mask&(1<<other) != 0 {
				return true
			}
		}
		return false
	}

	for size := 1; size <= n; size++ {
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) != size {
				continue
			}
			var best *state
			for inst := 0; inst < n; inst++ {
				if mask&(1<<inst) == 0 {
					continue
				}
				rest := mask &^ (1 << inst)
				var prev *state
				if rest == 0 {
					prev = &state{cost: 0, rows: 1}
				} else {
					prev = states[rest]
					if prev == nil {
						continue
					}
					// Prefer connected expansions: skip cartesian products
					// unless the remainder has no join edge to inst and no
					// other instance does either (handled by fallback pass).
					if !connectedTo(rest, inst) && anyConnected(rest, mask, neighbors) {
						continue
					}
				}
				placed := maskSet(rest)
				paths := o.enumeratePaths(ctxs[inst], placed, idx.forInstance(inst))
				ap := o.pickPath(paths, prev.rows)
				cost := prev.cost + prev.rows*ap.probeCost
				if best != nil && cost >= best.cost {
					continue
				}
				rows := o.joinedRows(info, ctxs, placed, inst, prev.rows, ap)
				order := append(append([]int(nil), prev.order...), inst)
				pp := append(append([]*accessPath(nil), prev.paths...), ap)
				best = &state{cost: cost, rows: rows, order: order, paths: pp}
			}
			states[mask] = best
		}
	}
	final := states[1<<n-1]
	if final == nil {
		// Shouldn't happen, but fall back to FROM order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return o.costOrder(info, ctxs, idx, order)
	}
	return &joinResult{order: final.order, paths: final.paths, cost: final.cost, rows: final.rows}
}

// anyConnected reports whether any instance outside rest (but inside mask)
// has a join edge into rest — i.e. a connected expansion exists.
func anyConnected(rest, mask int, neighbors []map[int]bool) bool {
	for inst := range neighbors {
		if mask&(1<<inst) == 0 || rest&(1<<inst) != 0 {
			continue
		}
		for other := range neighbors[inst] {
			if rest&(1<<other) != 0 {
				return true
			}
		}
	}
	return false
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func maskSet(mask int) map[int]bool {
	s := map[int]bool{}
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			s[i] = true
		}
		mask >>= 1
	}
	return s
}

// searchGreedy orders tables by repeatedly appending the cheapest next step.
func (o *Optimizer) searchGreedy(info *queryinfo.Info, ctxs []*instanceContext, idx *indexForTable) *joinResult {
	n := len(ctxs)
	res := &joinResult{}
	placed := map[int]bool{}
	outer := 1.0
	for len(res.order) < n {
		bestCost := math.Inf(1)
		bestInst := -1
		var bestAP *accessPath
		for inst := 0; inst < n; inst++ {
			if placed[inst] {
				continue
			}
			paths := o.enumeratePaths(ctxs[inst], placed, idx.forInstance(inst))
			ap := o.pickPath(paths, outer)
			// Prefer connected expansions by penalizing cartesian steps.
			penalty := 1.0
			if len(res.order) > 0 && !hasEdgeToPlaced(info, inst, placed) {
				penalty = 1e6
			}
			c := outer * ap.probeCost * penalty
			if c < bestCost {
				bestCost = c
				bestInst = inst
				bestAP = ap
			}
		}
		res.cost += outer * bestAP.probeCost
		outer = o.joinedRows(info, ctxs, placed, bestInst, outer, bestAP)
		placed[bestInst] = true
		res.order = append(res.order, bestInst)
		res.paths = append(res.paths, bestAP)
	}
	res.rows = outer
	return res
}

func hasEdgeToPlaced(info *queryinfo.Info, inst int, placed map[int]bool) bool {
	for _, e := range info.JoinEdges {
		other, _, _, ok := e.Other(inst)
		if ok && placed[other] {
			return true
		}
	}
	return false
}
