package optimizer

import (
	"fmt"
	"strings"

	"aim/internal/exec"
	"aim/internal/queryinfo"
	"aim/internal/sqlparser"
)

// BuildSelectPlan plans and constructs an executable physical plan for a
// fully bound SELECT (no placeholders). Only materialized schema indexes are
// considered.
func (o *Optimizer) BuildSelectPlan(sel *sqlparser.Select) (*exec.Plan, []string, error) {
	p, err := o.planSelect(sel, nil)
	if err != nil {
		return nil, nil, err
	}
	return o.buildExecPlan(sel, p)
}

func (o *Optimizer) buildExecPlan(sel *sqlparser.Select, p *planned) (*exec.Plan, []string, error) {
	info := p.info
	layout := info.Layout
	plan := &exec.Plan{
		Layout:         layout,
		Distinct:       sel.Distinct,
		Limit:          sel.Limit,
		Offset:         sel.Offset,
		OrderSatisfied: p.sorted,
		GroupOrdered:   p.gOrder,
		EstimatedCost:  p.cost,
		EstimatedRows:  p.rows,
	}

	// Steps in join order, with residual filters attached to the earliest
	// step at which they are evaluable.
	placedAt := make([]int, len(layout.Instances)) // instance -> step position
	for pos, inst := range p.join.order {
		placedAt[inst] = pos
	}
	stepFilters := make([][]sqlparser.Expr, len(p.join.order))
	for _, cj := range info.Conjuncts {
		last := 0
		for _, inst := range cj.Instances {
			if placedAt[inst] > last {
				last = placedAt[inst]
			}
		}
		stepFilters[last] = append(stepFilters[last], cj.Expr)
	}

	for pos, inst := range p.join.order {
		ap := p.join.paths[pos]
		step, err := o.buildStep(layout, inst, ap, stepFilters[pos])
		if err != nil {
			return nil, nil, err
		}
		plan.Steps = append(plan.Steps, *step)
		if ap.index != nil {
			plan.UsedIndexes = append(plan.UsedIndexes, ap.index.Name)
		}
	}

	if err := o.buildOutputs(sel, info, plan); err != nil {
		return nil, nil, err
	}

	var desc []string
	for pos, inst := range p.join.order {
		desc = append(desc, p.join.paths[pos].Desc(layout.Instances[inst].Alias))
	}
	return plan, desc, nil
}

// buildStep constructs one executable access step from an access path.
func (o *Optimizer) buildStep(layout *exec.Layout, inst int, ap *accessPath, filters []sqlparser.Expr) (*exec.Step, error) {
	step := &exec.Step{Instance: inst, Covering: ap.index != nil && ap.covering}
	if ap.index != nil {
		step.IndexName = ap.index.Name
	}
	for i, src := range ap.eq {
		switch {
		case src.atom != nil:
			if src.atom.EqValue == nil {
				return nil, fmt.Errorf("optimizer: cannot execute plan with unbound parameter on %s", src.atom.Column)
			}
			step.EqKeys = append(step.EqKeys, exec.Literal(*src.atom.EqValue))
		case src.join != nil:
			otherInst, _, otherCol, ok := src.join.Other(inst)
			if !ok {
				return nil, fmt.Errorf("optimizer: join edge does not touch instance %d", inst)
			}
			off, err := layout.Resolve(layout.Instances[otherInst].Alias, otherCol)
			if err != nil {
				return nil, err
			}
			step.EqKeys = append(step.EqKeys, exec.SlotRef(off))
		default:
			return nil, fmt.Errorf("optimizer: empty eq source at position %d", i)
		}
	}
	switch {
	case ap.inAtom != nil:
		if len(ap.inAtom.InValues) == 0 {
			return nil, fmt.Errorf("optimizer: cannot execute IN with unbound parameters")
		}
		for _, v := range ap.inAtom.InValues {
			step.In = append(step.In, exec.Literal(v))
		}
	case ap.rng != nil:
		spec := &exec.RangeSpec{LoInc: ap.rng.LoInc, HiInc: ap.rng.HiInc}
		if ap.rng.Lo != nil {
			ks := exec.Literal(*ap.rng.Lo)
			spec.Lo = &ks
		}
		if ap.rng.Hi != nil {
			ks := exec.Literal(*ap.rng.Hi)
			spec.Hi = &ks
		}
		if spec.Lo == nil && spec.Hi == nil {
			return nil, fmt.Errorf("optimizer: cannot execute range with unbound parameters")
		}
		step.Range = spec
	}

	// ICP: conjunction of pushdown-able atoms (only for non-covering index
	// access; covering scans evaluate everything in the residual filter,
	// and clustered access has no separate lookup to avoid).
	if ap.index != nil && !ap.covering && len(ap.icp) > 0 {
		icpExpr := andAll(atomExprs(ap.icp))
		ce, err := exec.Compile(icpExpr, layout)
		if err != nil {
			return nil, err
		}
		step.ICP = ce
		step.ICPSrc = icpExpr
	}

	if len(filters) > 0 {
		filterExpr := andAll(filters)
		ce, err := exec.Compile(filterExpr, layout)
		if err != nil {
			return nil, err
		}
		step.Filter = ce
		step.FilterSrc = filterExpr
	}
	step.Desc = ap.Desc(layout.Instances[inst].Alias)
	return step, nil
}

// buildExprOutput compiles one scalar output expression, using the direct
// column-copy spec for bare column references so the batch engine can project
// them without per-row closure calls.
func buildExprOutput(e sqlparser.Expr, layout *exec.Layout) (exec.OutputSpec, error) {
	if cr, ok := e.(*sqlparser.ColumnRef); ok {
		if off, err := layout.Resolve(cr.Table, cr.Column); err == nil {
			return exec.ColOutput(off), nil
		}
	}
	ce, err := exec.Compile(e, layout)
	if err != nil {
		return exec.OutputSpec{}, err
	}
	return exec.OutputSpec{Agg: -1, Expr: ce}, nil
}

func atomExprs(atoms []*queryinfo.Atom) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(atoms))
	for i, a := range atoms {
		out[i] = a.Expr
	}
	return out
}

func andAll(exprs []sqlparser.Expr) sqlparser.Expr {
	var out sqlparser.Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &sqlparser.BinaryExpr{Op: "AND", Left: out, Right: e}
		}
	}
	return out
}

// buildOutputs fills projection, aggregation, grouping and ordering specs.
func (o *Optimizer) buildOutputs(sel *sqlparser.Select, info *queryinfo.Info, plan *exec.Plan) error {
	layout := info.Layout
	type outCol struct {
		sql   string
		alias string
	}
	var outMeta []outCol

	addAgg := func(f *sqlparser.FuncExpr) (int, error) {
		spec := exec.AggSpec{}
		switch f.Name {
		case "COUNT":
			spec.Func = exec.AggCount
		case "SUM":
			spec.Func = exec.AggSum
		case "AVG":
			spec.Func = exec.AggAvg
		case "MIN":
			spec.Func = exec.AggMin
		case "MAX":
			spec.Func = exec.AggMax
		default:
			return 0, fmt.Errorf("optimizer: unsupported aggregate %s", f.Name)
		}
		if !f.Star {
			if len(f.Args) != 1 {
				return 0, fmt.Errorf("optimizer: %s needs exactly one argument", f.Name)
			}
			ce, err := exec.Compile(f.Args[0], layout)
			if err != nil {
				return 0, err
			}
			spec.Arg = ce
			if cr, ok := f.Args[0].(*sqlparser.ColumnRef); ok {
				if off, err := layout.Resolve(cr.Table, cr.Column); err == nil {
					spec.ArgCol = off + 1
				}
			}
		}
		plan.Aggs = append(plan.Aggs, spec)
		return len(plan.Aggs) - 1, nil
	}

	for _, se := range sel.Exprs {
		if se.Star {
			instances := layout.Instances
			if se.Table != "" {
				i := layout.InstanceOf(se.Table)
				if i < 0 {
					return fmt.Errorf("optimizer: unknown table %q", se.Table)
				}
				instances = layout.Instances[i : i+1]
			}
			for _, in := range instances {
				for _, col := range in.Table.ColumnNames() {
					off, err := layout.Resolve(in.Alias, col)
					if err != nil {
						return err
					}
					plan.Output = append(plan.Output, exec.ColOutput(off))
					outMeta = append(outMeta, outCol{sql: strings.ToLower(in.Alias + "." + col)})
				}
			}
			continue
		}
		if f, ok := se.Expr.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
			idx, err := addAgg(f)
			if err != nil {
				return err
			}
			plan.Output = append(plan.Output, exec.OutputSpec{Agg: idx})
			outMeta = append(outMeta, outCol{sql: strings.ToLower(f.SQL()), alias: strings.ToLower(se.Alias)})
			continue
		}
		spec, err := buildExprOutput(se.Expr, layout)
		if err != nil {
			return err
		}
		plan.Output = append(plan.Output, spec)
		outMeta = append(outMeta, outCol{sql: strings.ToLower(se.Expr.SQL()), alias: strings.ToLower(se.Alias)})
	}

	plan.Grouped = len(sel.GroupBy) > 0 || len(plan.Aggs) > 0
	for _, g := range sel.GroupBy {
		ce, err := exec.Compile(g, layout)
		if err != nil {
			return err
		}
		plan.GroupBy = append(plan.GroupBy, ce)
		col := 0
		if cr, ok := g.(*sqlparser.ColumnRef); ok {
			if off, err := layout.Resolve(cr.Table, cr.Column); err == nil {
				col = off + 1
			}
		}
		plan.GroupByCols = append(plan.GroupByCols, col)
	}

	// Map ORDER BY expressions to output columns, appending hidden columns
	// when the sort key is not part of the projection.
	for _, oi := range sel.OrderBy {
		sqlText := strings.ToLower(oi.Expr.SQL())
		col := -1
		for i, m := range outMeta {
			if m.sql == sqlText || (m.alias != "" && m.alias == sqlText) {
				col = i
				break
			}
		}
		// Unqualified column names also match qualified outputs.
		if col < 0 {
			for i, m := range outMeta {
				if strings.HasSuffix(m.sql, "."+sqlText) {
					col = i
					break
				}
			}
		}
		if col < 0 {
			if f, ok := oi.Expr.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
				idx, err := addAgg(f)
				if err != nil {
					return err
				}
				plan.Output = append(plan.Output, exec.OutputSpec{Agg: idx})
			} else {
				spec, err := buildExprOutput(oi.Expr, layout)
				if err != nil {
					return err
				}
				plan.Output = append(plan.Output, spec)
			}
			outMeta = append(outMeta, outCol{sql: sqlText})
			col = len(outMeta) - 1
			plan.HiddenTail++
		}
		plan.OrderBy = append(plan.OrderBy, exec.OrderSpec{Col: col, Desc: oi.Desc})
	}
	return nil
}

// BuildDMLPlan constructs the single-table locating plan for UPDATE/DELETE.
// It returns the plan plus the compiled SET assignments for updates.
func (o *Optimizer) BuildDMLPlan(stmt sqlparser.Statement) (*exec.Plan, []exec.Assignment, error) {
	var table string
	var where sqlparser.Expr
	var set []sqlparser.Assignment
	switch s := stmt.(type) {
	case *sqlparser.Update:
		table, where, set = s.Table, s.Where, s.Set
	case *sqlparser.Delete:
		table, where = s.Table, s.Where
	default:
		return nil, nil, fmt.Errorf("optimizer: BuildDMLPlan on %T", stmt)
	}
	sel := whereToSelect(table, where)
	p, err := o.planSelect(sel, nil)
	if err != nil {
		return nil, nil, err
	}
	plan, _, err := o.buildExecPlan(sel, p)
	if err != nil {
		return nil, nil, err
	}
	// The locating plan must not early-terminate or project.
	plan.Limit = -1
	plan.Grouped = false
	plan.Output = nil

	tbl := o.Schema.Table(table)
	var assigns []exec.Assignment
	for _, a := range set {
		ord := tbl.ColumnIndex(a.Column)
		if ord < 0 {
			return nil, nil, fmt.Errorf("optimizer: unknown column %q in SET", a.Column)
		}
		ce, err := exec.Compile(a.Value, plan.Layout)
		if err != nil {
			return nil, nil, err
		}
		assigns = append(assigns, exec.Assignment{Ordinal: ord, Value: ce})
	}
	return plan, assigns, nil
}
