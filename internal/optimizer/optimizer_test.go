package optimizer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aim/internal/catalog"
	"aim/internal/queryinfo"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/stats"
)

// fixedStats is a deterministic StatsProvider for optimizer unit tests.
type fixedStats map[string]*stats.TableStats

func (f fixedStats) TableStats(table string) *stats.TableStats { return f[table] }

func colStats(rows, ndv int64) *stats.ColumnStats {
	var vals []sqltypes.Value
	for i := int64(0); i < rows; i++ {
		vals = append(vals, sqltypes.NewInt(i%ndv))
	}
	return stats.BuildColumnStats(vals, rows, 16)
}

func testSetup(t *testing.T) (*catalog.Schema, fixedStats) {
	t.Helper()
	schema := catalog.NewSchema()
	mk := func(name string, rows int64, cols ...string) {
		cc := []catalog.Column{{Name: "id", Type: sqltypes.KindInt}}
		for _, c := range cols {
			cc = append(cc, catalog.Column{Name: c, Type: sqltypes.KindInt})
		}
		tbl, err := catalog.NewTable(name, cc, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		if err := schema.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	mk("big", 100000, "fk", "a", "b", "c")
	mk("small", 100, "x", "y")
	sp := fixedStats{
		"big": &stats.TableStats{RowCount: 100000, AvgRowSize: 40, Columns: map[string]*stats.ColumnStats{
			"id": colStats(2000, 2000), "fk": colStats(2000, 100), "a": colStats(2000, 50),
			"b": colStats(2000, 1000), "c": colStats(2000, 10),
		}},
		"small": &stats.TableStats{RowCount: 100, AvgRowSize: 24, Columns: map[string]*stats.ColumnStats{
			"id": colStats(100, 100), "x": colStats(100, 10), "y": colStats(100, 100),
		}},
	}
	// Fix the scaled row counts: BuildColumnStats above used sample rows.
	for _, ts := range sp {
		for _, cs := range ts.Columns {
			cs.Count = ts.RowCount
		}
	}
	return schema, sp
}

func estimate(t *testing.T, o *Optimizer, sql string, extra ...*catalog.Index) *Estimate {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	est, err := o.EstimateSelect(stmt.(*sqlparser.Select), extra)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestSmallTableDrivesJoin(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "big_fk", Table: "big", Columns: []string{"fk"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	stmt, _ := sqlparser.Parse("SELECT s.y FROM big b JOIN small s ON b.fk = s.id WHERE s.x = 3")
	p, err := o.planSelect(stmt.(*sqlparser.Select), nil)
	if err != nil {
		t.Fatal(err)
	}
	// small (filtered, 100 rows) should be the outer table, probing big via
	// the fk index.
	if p.join.order[0] != 1 {
		t.Fatalf("join order = %v (want small first)", p.join.order)
	}
	if p.join.paths[1].index == nil || p.join.paths[1].index.Name != "big_fk" {
		t.Fatalf("inner access = %+v", p.join.paths[1].Desc("big"))
	}
}

func TestStraightJoinRespectsOrder(t *testing.T) {
	schema, sp := testSetup(t)
	o := New(schema, sp)
	stmt, _ := sqlparser.Parse("SELECT STRAIGHT_JOIN s.y FROM big b, small s WHERE b.fk = s.id")
	p, err := o.planSelect(stmt.(*sqlparser.Select), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.join.order[0] != 0 {
		t.Fatalf("straight join reordered: %v", p.join.order)
	}
}

func TestMoreSelectiveIndexWins(t *testing.T) {
	schema, sp := testSetup(t)
	// b has NDV 1000 (selective), c has NDV 10 (not selective).
	if err := schema.AddIndex(&catalog.Index{Name: "ix_c", Table: "big", Columns: []string{"c"}}); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddIndex(&catalog.Index{Name: "ix_b", Table: "big", Columns: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	est := estimate(t, o, "SELECT a FROM big WHERE b = 5 AND c = 5")
	if len(est.Used) != 1 || est.Used[0].Index == nil || est.Used[0].Index.Name != "ix_b" {
		t.Fatalf("chose %v", est.Desc)
	}
}

func TestWiderIndexBeatsNarrowerForConjunction(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_a", Table: "big", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := schema.AddIndex(&catalog.Index{Name: "ix_ab", Table: "big", Columns: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	est := estimate(t, o, "SELECT c FROM big WHERE a = 5 AND b = 7")
	if est.Used[0].Index == nil || est.Used[0].Index.Name != "ix_ab" {
		t.Fatalf("chose %v", est.Desc)
	}
	if est.Used[0].EqLen != 2 {
		t.Fatalf("eq len = %d", est.Used[0].EqLen)
	}
}

func TestRangeAfterEqPrefix(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_ab", Table: "big", Columns: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	est := estimate(t, o, "SELECT c FROM big WHERE a = 5 AND b > 100")
	u := est.Used[0]
	if u.Index == nil || u.EqLen != 1 || !u.HasRange {
		t.Fatalf("access = %+v", u)
	}
}

func TestCoveringDetection(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_cov", Table: "big", Columns: []string{"b", "a"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	// id is the PK so (b, a) + id covers SELECT id, a WHERE b = _.
	est := estimate(t, o, "SELECT id, a FROM big WHERE b = 5")
	if !est.Used[0].Covering {
		t.Fatalf("should be covering: %v", est.Desc)
	}
	est2 := estimate(t, o, "SELECT c FROM big WHERE b = 5")
	if est2.Used[0].Index == nil || est2.Used[0].Covering {
		t.Fatalf("expected non-covering index access: %v", est2.Desc)
	}
	if est2.Used[0].EstLookups <= 0 {
		t.Fatal("non-covering access must estimate lookups")
	}
}

func TestHypotheticalIndexOnlyInEstimates(t *testing.T) {
	schema, sp := testSetup(t)
	o := New(schema, sp)
	hypo := &catalog.Index{Name: "h", Table: "big", Columns: []string{"a"}, Hypothetical: true}
	base := estimate(t, o, "SELECT id FROM big WHERE a = 1")
	with := estimate(t, o, "SELECT id FROM big WHERE a = 1", hypo)
	if with.Cost >= base.Cost {
		t.Fatal("hypothetical index ignored")
	}
	// A hypothetical index registered in the schema must not be used for
	// executable plans.
	if err := schema.AddIndex(hypo); err != nil {
		t.Fatal(err)
	}
	again := estimate(t, o, "SELECT id FROM big WHERE a = 1")
	if again.Used[0].Index != nil {
		t.Fatal("schema-registered hypothetical index used without extras")
	}
}

func TestOrderSatisfactionLogic(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_abc", Table: "big", Columns: []string{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT id FROM big WHERE a = 1 ORDER BY b", true},
		{"SELECT id FROM big WHERE a = 1 ORDER BY b, c", true},
		{"SELECT id FROM big WHERE a = 1 ORDER BY c", false},
		{"SELECT id FROM big WHERE a = 1 AND b = 2 ORDER BY c", true},
		{"SELECT id FROM big WHERE a = 1 ORDER BY b DESC", false},
		{"SELECT id FROM big WHERE a = 1 ORDER BY a, b", true}, // a is constant
	}
	for _, c := range cases {
		stmt, _ := sqlparser.Parse(c.sql)
		sel := stmt.(*sqlparser.Select)
		info, err := queryinfo.Analyze(sel, schema)
		if err != nil {
			t.Fatal(err)
		}
		ctx := newInstanceContext(info, 0)
		paths := o.enumeratePaths(ctx, map[int]bool{}, schema.Indexes())
		var ixPath *accessPath
		for _, p := range paths {
			if p.index != nil && p.index.Name == "ix_abc" {
				ixPath = p
			}
		}
		if ixPath == nil {
			t.Fatalf("%s: index path missing", c.sql)
		}
		if got := orderSatisfiedBy(ixPath, info); got != c.want {
			t.Errorf("%s: satisfied = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestGroupOrderingLogic(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_abc", Table: "big", Columns: []string{"a", "b", "c"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT a, COUNT(*) FROM big GROUP BY a", true},
		{"SELECT b, a, COUNT(*) FROM big GROUP BY b, a", true}, // permutation of prefix
		{"SELECT b, COUNT(*) FROM big GROUP BY b", false},
		{"SELECT b, COUNT(*) FROM big WHERE a = 1 GROUP BY b", true},
		{"SELECT c, COUNT(*) FROM big WHERE a = 1 GROUP BY c", false},
	}
	for _, c := range cases {
		stmt, _ := sqlparser.Parse(c.sql)
		sel := stmt.(*sqlparser.Select)
		info, err := queryinfo.Analyze(sel, schema)
		if err != nil {
			t.Fatal(err)
		}
		ctx := newInstanceContext(info, 0)
		paths := o.enumeratePaths(ctx, map[int]bool{}, schema.Indexes())
		var ixPath *accessPath
		for _, p := range paths {
			if p.index != nil {
				ixPath = p
			}
		}
		if ixPath == nil {
			ts := sp.TableStats("big")
			ixPath = o.fullIndexPath(ctx, schema.Index("ix_abc"), ts, float64(ts.RowCount), 1)
		}
		if got := groupOrderedBy(ixPath, info); got != c.want {
			t.Errorf("%s: ordered = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestCallCounting(t *testing.T) {
	schema, sp := testSetup(t)
	o := New(schema, sp)
	o.ResetCalls()
	for i := 0; i < 5; i++ {
		estimate(t, o, fmt.Sprintf("SELECT id FROM big WHERE a = %d", i))
	}
	if o.Calls() != 5 {
		t.Fatalf("calls = %d", o.Calls())
	}
	o.ResetCalls()
	if o.Calls() != 0 {
		t.Fatal("reset failed")
	}
}

func TestGreedyFallbackManyTables(t *testing.T) {
	schema, sp := testSetup(t)
	// Build a 10-table chain join to trigger the greedy path.
	prev := "small"
	sqlFrom := "small t0"
	where := ""
	for i := 1; i < 10; i++ {
		name := fmt.Sprintf("chain%d", i)
		tbl, err := catalog.NewTable(name, []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "ref", Type: sqltypes.KindInt},
		}, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		if err := schema.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
		sp[name] = &stats.TableStats{RowCount: 1000, Columns: map[string]*stats.ColumnStats{
			"id": colStats(1000, 1000), "ref": colStats(1000, 100),
		}}
		sqlFrom += fmt.Sprintf(", %s t%d", name, i)
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("t%d.ref = t%d.id", i, i-1)
		prev = name
	}
	_ = prev
	o := New(schema, sp)
	est := estimate(t, o, "SELECT t0.y FROM "+sqlFrom+" WHERE "+where)
	if est.Cost <= 0 || len(est.Used) != 10 {
		t.Fatalf("greedy plan: cost=%v used=%d", est.Cost, len(est.Used))
	}
}

func TestEstimateDMLInsertDeleteUpdate(t *testing.T) {
	schema, sp := testSetup(t)
	if err := schema.AddIndex(&catalog.Index{Name: "ix_a", Table: "big", Columns: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	o := New(schema, sp)
	for _, sql := range []string{
		"INSERT INTO big VALUES (1, 2, 3, 4, 5)",
		"DELETE FROM big WHERE a = 3",
		"UPDATE big SET a = 9 WHERE b = 1",
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		est, err := o.EstimateDML(stmt, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if est.TotalCost() <= 0 {
			t.Errorf("%s: zero cost", sql)
		}
		if _, ok := est.IndexMaintenance["big(a)"]; !ok {
			t.Errorf("%s: index maintenance missing (%v)", sql, est.IndexMaintenance)
		}
	}
	// Update that does not touch indexed columns pays no maintenance.
	stmt, _ := sqlparser.Parse("UPDATE big SET c = 1 WHERE b = 2")
	est, err := o.EstimateDML(stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.IndexMaintenance) != 0 {
		t.Errorf("unexpected maintenance: %v", est.IndexMaintenance)
	}
}

// TestIndexMonotonicityProperty: adding an index to the configuration must
// never increase the best plan's estimated cost — the optimizer can always
// ignore an unhelpful index.
func TestIndexMonotonicityProperty(t *testing.T) {
	schema, sp := testSetup(t)
	o := New(schema, sp)
	queries := []string{
		"SELECT id FROM big WHERE a = 1",
		"SELECT id FROM big WHERE a = 1 AND b > 5",
		"SELECT c, COUNT(*) FROM big WHERE a = 2 GROUP BY c",
		"SELECT b.id FROM big b JOIN small s ON b.fk = s.id WHERE s.x = 1",
		"SELECT id FROM big ORDER BY b LIMIT 5",
	}
	allCols := [][]string{{"a"}, {"b"}, {"c"}, {"fk"}, {"a", "b"}, {"b", "a"}, {"a", "b", "c"}, {"fk", "a"}}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		// Random base configuration, then add one random index.
		var base []*catalog.Index
		for _, cols := range allCols {
			if rng.Intn(3) == 0 {
				base = append(base, &catalog.Index{
					Name: "m_" + strings.Join(cols, "_"), Table: "big", Columns: cols, Hypothetical: true,
				})
			}
		}
		extraCols := allCols[rng.Intn(len(allCols))]
		extra := &catalog.Index{Name: "extra_ix", Table: "big", Columns: extraCols, Hypothetical: true}
		q := queries[rng.Intn(len(queries))]
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		sel := stmt.(*sqlparser.Select)
		before, err := o.EstimateSelectConfig(sel, base)
		if err != nil {
			t.Fatal(err)
		}
		after, err := o.EstimateSelectConfig(sel, append(append([]*catalog.Index(nil), base...), extra))
		if err != nil {
			t.Fatal(err)
		}
		if after.Cost > before.Cost*(1+1e-9) {
			t.Fatalf("adding %v increased cost for %q: %v -> %v", extraCols, q, before.Cost, after.Cost)
		}
	}
}

// TestEmptyTableEstimates: estimation must not panic or produce negative
// costs on empty tables.
func TestEmptyTableEstimates(t *testing.T) {
	schema, _ := testSetup(t)
	empty := fixedStats{
		"big":   &stats.TableStats{RowCount: 0, Columns: map[string]*stats.ColumnStats{}},
		"small": &stats.TableStats{RowCount: 0, Columns: map[string]*stats.ColumnStats{}},
	}
	o := New(schema, empty)
	est := estimate(t, o, "SELECT id FROM big WHERE a = 1 AND b > 2 ORDER BY c LIMIT 3")
	if est.Cost < 0 {
		t.Fatalf("negative cost %v", est.Cost)
	}
	est = estimate(t, o, "SELECT b.id FROM big b JOIN small s ON b.fk = s.id")
	if est.Cost < 0 {
		t.Fatal("negative join cost")
	}
}
