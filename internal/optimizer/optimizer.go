package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"aim/internal/catalog"
	"aim/internal/obs"
	"aim/internal/queryinfo"
	"aim/internal/sqlparser"
)

// Optimizer plans queries and serves what-if cost estimates.
type Optimizer struct {
	Schema *catalog.Schema
	Stats  StatsProvider
	calls  int64

	// Observability handles (nil = disabled; see SetObs). Metrics record
	// planning behaviour only — they never influence plan choice.
	mWhatIf     *obs.Histogram // per-invocation planning latency (seconds)
	mJoinTables *obs.Histogram // join-order search width (tables per search)
	mJoinDP     *obs.Counter   // Selinger DP searches
	mJoinGreedy *obs.Counter   // greedy fallback searches (> dpLimit tables)
}

// SetObs attaches (nil registry: detaches) optimizer metrics:
// optimizer.whatif_seconds latency histogram, optimizer.join_tables search
// width histogram, and optimizer.join_{dp,greedy}_searches counters. Call
// before concurrent planning starts.
func (o *Optimizer) SetObs(r *obs.Registry) {
	if r == nil {
		o.mWhatIf, o.mJoinTables, o.mJoinDP, o.mJoinGreedy = nil, nil, nil, nil
		return
	}
	o.mWhatIf = r.Histogram("optimizer.whatif_seconds")
	o.mJoinTables = r.Histogram("optimizer.join_tables")
	o.mJoinDP = r.Counter("optimizer.join_dp_searches")
	o.mJoinGreedy = r.Counter("optimizer.join_greedy_searches")
}

// New returns an optimizer over the schema and statistics provider.
func New(schema *catalog.Schema, sp StatsProvider) *Optimizer {
	return &Optimizer{Schema: schema, Stats: sp}
}

// Calls returns the number of optimizer invocations (plan/estimate calls)
// made so far. Index advisors are compared on this, per §VIII(a).
func (o *Optimizer) Calls() int64 { return atomic.LoadInt64(&o.calls) }

// ResetCalls zeroes the invocation counter.
func (o *Optimizer) ResetCalls() { atomic.StoreInt64(&o.calls, 0) }

// AddCalls adds n logical invocations to the counter. The cost cache uses
// it to replay the calls a memoized estimate originally consumed, so that
// Calls() stays the §VIII(a) what-if invocation count independent of
// caching.
func (o *Optimizer) AddCalls(n int64) { atomic.AddInt64(&o.calls, n) }

func (o *Optimizer) countCall() { atomic.AddInt64(&o.calls, 1) }

// UsedIndex describes one access decision inside a plan.
type UsedIndex struct {
	Instance   int
	Index      *catalog.Index // nil = clustered access
	EqLen      int
	HasRange   bool
	Covering   bool
	EstEntries float64 // index entries / rows scanned
	EstLookups float64 // primary-key lookups (disk seeks)
}

// Estimate is a what-if costing result.
type Estimate struct {
	Cost float64
	Rows float64
	Used []UsedIndex
	Desc []string
}

// UsedIndexKeys returns the catalog keys of the secondary indexes the plan
// reads.
func (e *Estimate) UsedIndexKeys() []string {
	var out []string
	for _, u := range e.Used {
		if u.Index != nil {
			out = append(out, u.Index.Key())
		}
	}
	return out
}

func (o *Optimizer) indexConfig(extra []*catalog.Index) *indexForTable {
	return o.indexConfigMode(extra, false)
}

// indexConfigMode assembles the visible index configuration. With replace
// set, only the extra indexes are visible — the schema's materialized
// indexes are hidden, which is how advisors cost cost(q, ∅) and arbitrary
// candidate configurations.
func (o *Optimizer) indexConfigMode(extra []*catalog.Index, replace bool) *indexForTable {
	cfg := &indexForTable{}
	seen := map[string]bool{}
	if !replace {
		for _, ix := range o.Schema.Indexes() {
			if ix.Hypothetical {
				continue
			}
			cfg.list = append(cfg.list, ix)
			seen[ix.Key()] = true
		}
	}
	for _, ix := range extra {
		if !seen[ix.Key()] {
			cfg.list = append(cfg.list, ix)
			seen[ix.Key()] = true
		}
	}
	return cfg
}

// planned is the internal result of the planning search.
type planned struct {
	info   *queryinfo.Info
	join   *joinResult
	cost   float64
	rows   float64
	sorted bool // ORDER BY satisfied by the access order
	gOrder bool // GROUP BY satisfied by the access order
}

// planSelect runs the full planning search for a SELECT under the given
// index configuration.
func (o *Optimizer) planSelect(sel *sqlparser.Select, extra []*catalog.Index) (*planned, error) {
	return o.planSelectMode(sel, extra, false)
}

func (o *Optimizer) planSelectMode(sel *sqlparser.Select, extra []*catalog.Index, replace bool) (*planned, error) {
	o.countCall()
	if o.mWhatIf != nil {
		defer func(t0 time.Time) { o.mWhatIf.Observe(time.Since(t0).Seconds()) }(time.Now())
	}
	info, err := queryinfo.Analyze(sel, o.Schema)
	if err != nil {
		return nil, err
	}
	cfg := o.indexConfigMode(extra, replace)
	ctxs := make([]*instanceContext, len(info.Layout.Instances))
	for i := range ctxs {
		ctxs[i] = newInstanceContext(info, i)
	}

	grouped := len(sel.GroupBy) > 0 || len(info.Aggregates) > 0

	if len(ctxs) == 1 {
		return o.planSingleTable(sel, info, ctxs[0], cfg, grouped), nil
	}

	jr := o.searchJoinOrder(info, ctxs, cfg, sel.StraightJoin)
	p := &planned{info: info, join: jr, cost: jr.cost, rows: jr.rows}
	o.addPostJoinCosts(sel, info, p, grouped)
	return p, nil
}

// planSingleTable considers every access path with full query-shape costing
// (sort avoidance, stream grouping, LIMIT early termination).
func (o *Optimizer) planSingleTable(sel *sqlparser.Select, info *queryinfo.Info, ctx *instanceContext, cfg *indexForTable, grouped bool) *planned {
	ts := o.Stats.TableStats(ctx.table.Name)
	rows := float64(1)
	if ts != nil && ts.RowCount > 0 {
		rows = float64(ts.RowCount)
	}
	outSel := ctx.opaqueSel
	for _, a := range ctx.allAtoms {
		outSel *= atomSelectivity(a, ts)
	}

	paths := o.enumeratePaths(ctx, map[int]bool{}, cfg.forInstance(0))
	// Also consider unbounded secondary-index scans: they can satisfy
	// ordering/grouping or serve covering reads.
	for _, ix := range cfg.forInstance(0) {
		if !strings.EqualFold(ix.Table, ctx.table.Name) {
			continue
		}
		paths = append(paths, o.fullIndexPath(ctx, ix, ts, rows, outSel))
	}

	var best *planned
	for _, ap := range paths {
		p := &planned{
			info: info,
			join: &joinResult{order: []int{0}, paths: []*accessPath{ap}},
			rows: ap.outRows,
		}
		cost := ap.probeCost
		p.sorted = orderSatisfiedBy(ap, info)
		p.gOrder = groupOrderedBy(ap, info)

		// LIMIT early termination scaling.
		if sel.Limit >= 0 && !grouped && !sel.Distinct && (len(info.OrderBy) == 0 || p.sorted) && ap.outRows > 0 {
			target := float64(sel.Limit + sel.Offset)
			if f := target / ap.outRows; f < 1 {
				cost *= f
				if cost < costPage {
					cost = costPage
				}
			}
		}
		p.cost = cost
		o.addShapeCosts(sel, info, p, grouped)
		if best == nil || p.cost < best.cost {
			best = p
		}
	}
	return best
}

// addPostJoinCosts applies sort/group costs for multi-table plans, where
// the access order is only credited for the first step's table.
func (o *Optimizer) addPostJoinCosts(sel *sqlparser.Select, info *queryinfo.Info, p *planned, grouped bool) {
	first := p.join.paths[0]
	firstInst := p.join.order[0]
	p.sorted = len(info.OrderBy) > 0 && allOnInstance(info.OrderBy, firstInst) && orderSatisfiedBy(first, info)
	p.gOrder = len(info.GroupBy) > 0 && allOnInstance(info.GroupBy, firstInst) && groupOrderedBy(first, info)
	o.addShapeCosts(sel, info, p, grouped)
}

func allOnInstance(cols []queryinfo.OrderColumn, inst int) bool {
	for _, c := range cols {
		if c.Instance != inst {
			return false
		}
	}
	return true
}

// addShapeCosts folds grouping / distinct / sorting costs into p.cost and
// adjusts the output row estimate.
func (o *Optimizer) addShapeCosts(sel *sqlparser.Select, info *queryinfo.Info, p *planned, grouped bool) {
	inputRows := p.rows
	outRows := inputRows
	if grouped {
		if len(sel.GroupBy) == 0 {
			outRows = 1
		} else {
			groups := o.estimateGroups(info, inputRows)
			outRows = groups
		}
		if p.gOrder {
			p.cost += inputRows * costSortRow * 0.1 // streaming aggregation
		} else {
			p.cost += inputRows * costSortRow // hash aggregation
		}
	}
	if sel.Distinct {
		p.cost += outRows * costSortRow
	}
	if len(sel.OrderBy) > 0 && !p.sorted {
		n := outRows
		if n > 1 {
			p.cost += n * log2f(n) * costSortRow
		}
	}
	if sel.Limit >= 0 && float64(sel.Limit) < outRows {
		outRows = float64(sel.Limit)
	}
	p.rows = outRows
}

func (o *Optimizer) estimateGroups(info *queryinfo.Info, inputRows float64) float64 {
	// Distinct combinations of the group columns, capped by input rows.
	groups := 1.0
	for _, g := range info.GroupBy {
		ts := o.Stats.TableStats(info.Layout.Instances[g.Instance].Table.Name)
		if ts == nil {
			continue
		}
		if cs := ts.Column(g.Column); cs != nil && cs.NDV > 0 {
			groups *= float64(cs.NDV)
		}
	}
	if groups > inputRows {
		groups = inputRows
	}
	if groups < 1 {
		groups = 1
	}
	return groups
}

func log2f(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}

// orderSatisfiedBy reports whether the access path delivers rows in the
// query's ORDER BY order (all-ascending only; the executor has no reverse
// scans).
func orderSatisfiedBy(ap *accessPath, info *queryinfo.Info) bool {
	if len(info.OrderBy) == 0 || len(info.OrderBy) != len(info.Select.OrderBy) {
		return false
	}
	eqBound := eqBoundSet(ap)
	// Order columns bound to constants are trivially ordered; drop them.
	var need []queryinfo.OrderColumn
	for _, oc := range info.OrderBy {
		if oc.Desc {
			return false
		}
		if !eqBound[oc.Column] {
			need = append(need, oc)
		}
	}
	pos := 0
	for _, oc := range need {
		matched := false
		for pos < len(ap.indexKey) {
			col := strings.ToLower(ap.indexKey[pos])
			if col == oc.Column {
				matched = true
				pos++
				break
			}
			if eqBound[col] {
				pos++
				continue
			}
			break
		}
		if !matched {
			return false
		}
	}
	return true
}

// groupOrderedBy reports whether the access path delivers rows clustered by
// the GROUP BY columns (any permutation of a key prefix after constants).
func groupOrderedBy(ap *accessPath, info *queryinfo.Info) bool {
	if len(info.GroupBy) == 0 || len(info.GroupBy) != len(info.Select.GroupBy) {
		return false
	}
	eqBound := eqBoundSet(ap)
	need := map[string]bool{}
	for _, gc := range info.GroupBy {
		if !eqBound[gc.Column] {
			need[gc.Column] = true
		}
	}
	pos := 0
	for len(need) > 0 && pos < len(ap.indexKey) {
		col := strings.ToLower(ap.indexKey[pos])
		if need[col] {
			delete(need, col)
			pos++
			continue
		}
		if eqBound[col] {
			pos++
			continue
		}
		break
	}
	return len(need) == 0
}

// eqBoundSet returns the columns bound by equality in the path's prefix.
func eqBoundSet(ap *accessPath) map[string]bool {
	out := map[string]bool{}
	for i, e := range ap.eq {
		col := strings.ToLower(ap.indexKey[i])
		_ = e
		out[col] = true
	}
	return out
}

// EstimateSelect costs a SELECT under the schema's materialized indexes
// plus the extra (typically hypothetical) indexes. The statement may contain
// placeholders; shape-only default selectivities apply to them.
func (o *Optimizer) EstimateSelect(sel *sqlparser.Select, extra []*catalog.Index) (*Estimate, error) {
	p, err := o.planSelect(sel, extra)
	if err != nil {
		return nil, err
	}
	return o.estimateFromPlanned(p), nil
}

// EstimateSelectConfig costs a SELECT under exactly the given index
// configuration, hiding the schema's materialized indexes. Advisors use it
// for cost(q, X) with arbitrary X, including X = ∅.
func (o *Optimizer) EstimateSelectConfig(sel *sqlparser.Select, config []*catalog.Index) (*Estimate, error) {
	p, err := o.planSelectMode(sel, config, true)
	if err != nil {
		return nil, err
	}
	return o.estimateFromPlanned(p), nil
}

func (o *Optimizer) estimateFromPlanned(p *planned) *Estimate {
	est := &Estimate{Cost: p.cost, Rows: p.rows}
	ts := func(name string) float64 {
		s := o.Stats.TableStats(name)
		if s == nil || s.RowCount == 0 {
			return 1
		}
		return float64(s.RowCount)
	}
	for i, ap := range p.join.paths {
		inst := p.join.order[i]
		table := p.info.Layout.Instances[inst].Table
		rows := ts(table.Name)
		u := UsedIndex{
			Instance:   inst,
			Index:      ap.index,
			EqLen:      len(ap.eq),
			HasRange:   ap.rng != nil || ap.inAtom != nil,
			Covering:   ap.covering,
			EstEntries: rows * ap.entrySel,
			EstLookups: 0,
		}
		if ap.index != nil && !ap.covering {
			u.EstLookups = rows * ap.lookupSel
		}
		est.Used = append(est.Used, u)
		est.Desc = append(est.Desc, ap.Desc(p.info.Layout.Instances[inst].Alias))
	}
	return est
}

// DMLEstimate is the cost breakdown for a DML statement under a
// configuration: the base cost of locating and mutating rows, plus the
// per-index maintenance overhead cost_u(q, i) of Eq. 8.
type DMLEstimate struct {
	BaseCost float64
	Rows     float64 // estimated affected rows
	// IndexMaintenance maps catalog.Index.Key() -> added maintenance cost.
	IndexMaintenance map[string]float64
}

// TotalCost returns base plus all maintenance costs. The sum runs in sorted
// key order so the float fold is bit-identical across runs (map iteration
// order would otherwise leak into advisor output at ULP granularity).
func (d *DMLEstimate) TotalCost() float64 {
	keys := make([]string, 0, len(d.IndexMaintenance))
	for k := range d.IndexMaintenance {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := d.BaseCost
	for _, k := range keys {
		t += d.IndexMaintenance[k]
	}
	return t
}

// EstimateDML costs INSERT/UPDATE/DELETE statements, attributing index
// maintenance per index (materialized schema indexes plus extras).
func (o *Optimizer) EstimateDML(stmt sqlparser.Statement, extra []*catalog.Index) (*DMLEstimate, error) {
	return o.estimateDMLMode(stmt, extra, false)
}

// EstimateDMLConfig costs a DML statement under exactly the given index
// configuration, hiding the schema's materialized indexes.
func (o *Optimizer) EstimateDMLConfig(stmt sqlparser.Statement, config []*catalog.Index) (*DMLEstimate, error) {
	return o.estimateDMLMode(stmt, config, true)
}

func (o *Optimizer) estimateDMLMode(stmt sqlparser.Statement, extra []*catalog.Index, replace bool) (*DMLEstimate, error) {
	o.countCall()
	out := &DMLEstimate{IndexMaintenance: map[string]float64{}}
	cfg := o.indexConfigMode(extra, replace)

	perEntryWrite := func(table string) float64 {
		ts := o.Stats.TableStats(table)
		rows := 1.0
		if ts != nil && ts.RowCount > 0 {
			rows = float64(ts.RowCount)
		}
		return treeHeight(rows)*costPage + costIndexWrite
	}

	switch s := stmt.(type) {
	case *sqlparser.Insert:
		tbl := o.Schema.Table(s.Table)
		if tbl == nil {
			return nil, fmt.Errorf("optimizer: unknown table %q", s.Table)
		}
		n := float64(len(s.Rows))
		if n == 0 {
			n = 1
		}
		out.Rows = n
		out.BaseCost = n * (perEntryWrite(s.Table) + costRowWrite)
		for _, ix := range cfg.list {
			if strings.EqualFold(ix.Table, s.Table) {
				out.IndexMaintenance[ix.Key()] += n * perEntryWrite(s.Table)
			}
		}
		return out, nil
	case *sqlparser.Update:
		sel := whereToSelect(s.Table, s.Where)
		p, err := o.planSelectMode(sel, extra, replace)
		if err != nil {
			return nil, err
		}
		out.Rows = p.rows
		out.BaseCost = p.cost + p.rows*costRowWrite
		setCols := map[string]bool{}
		for _, a := range s.Set {
			setCols[strings.ToLower(a.Column)] = true
		}
		for _, ix := range cfg.list {
			if !strings.EqualFold(ix.Table, s.Table) {
				continue
			}
			touched := false
			for _, c := range ix.Columns {
				if setCols[strings.ToLower(c)] {
					touched = true
					break
				}
			}
			if touched {
				// Entry delete + insert.
				out.IndexMaintenance[ix.Key()] += p.rows * 2 * perEntryWrite(s.Table)
			}
		}
		return out, nil
	case *sqlparser.Delete:
		sel := whereToSelect(s.Table, s.Where)
		p, err := o.planSelectMode(sel, extra, replace)
		if err != nil {
			return nil, err
		}
		out.Rows = p.rows
		out.BaseCost = p.cost + p.rows*costRowWrite
		for _, ix := range cfg.list {
			if strings.EqualFold(ix.Table, s.Table) {
				out.IndexMaintenance[ix.Key()] += p.rows * perEntryWrite(s.Table)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("optimizer: EstimateDML on %T", stmt)
	}
}

// whereToSelect wraps a DML WHERE clause as a single-table SELECT for
// planning and cardinality estimation.
func whereToSelect(table string, where sqlparser.Expr) *sqlparser.Select {
	return &sqlparser.Select{
		Exprs:  []*sqlparser.SelectExpr{{Star: true}},
		Tables: []*sqlparser.TableRef{{Name: table}},
		Where:  where,
		Limit:  -1,
	}
}

// EstimateStatement dispatches to EstimateSelect or EstimateDML, returning
// a single comparable cost.
func (o *Optimizer) EstimateStatement(stmt sqlparser.Statement, extra []*catalog.Index) (float64, error) {
	switch s := stmt.(type) {
	case *sqlparser.Select:
		est, err := o.EstimateSelect(s, extra)
		if err != nil {
			return 0, err
		}
		return est.Cost, nil
	case *sqlparser.Insert, *sqlparser.Update, *sqlparser.Delete:
		est, err := o.EstimateDML(s, extra)
		if err != nil {
			return 0, err
		}
		return est.TotalCost(), nil
	default:
		return 0, fmt.Errorf("optimizer: cannot estimate %T", stmt)
	}
}
