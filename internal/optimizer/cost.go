// Package optimizer implements a cost-based query optimizer over the
// storage engine: histogram-based selectivity estimation, per-table access
// path selection (full scan, index range scan, covering scan, ICP), join
// order enumeration, and physical plan construction for the executor.
//
// Crucially for AIM, the optimizer also implements the "what-if" API: it can
// cost queries under hypothetical (dataless) index configurations that exist
// only as catalog definitions plus statistics, never materialized. Every
// what-if invocation is counted, because advisor runtime comparisons in the
// paper hinge on how many optimizer calls each algorithm makes.
package optimizer

import (
	"aim/internal/exec"
	"aim/internal/queryinfo"
	"aim/internal/sqltypes"
	"aim/internal/stats"
)

// Cost model constants mirror the executor's accounting (exec.Cost*), so
// estimated costs are commensurable with observed CPU seconds.
const (
	costPage       = exec.CostPageRead
	costRow        = exec.CostRowRead
	costSortRow    = exec.CostSortRow
	costRowWrite   = exec.CostRowWrite
	costIndexWrite = exec.CostIndexWrite

	// entriesPerLeaf estimates B+tree leaf occupancy for page-count math.
	entriesPerLeaf = 48
	// defaultRangeSel is used when a range bound's value is unknown
	// (placeholder) or no histogram is available.
	defaultRangeSel = 0.30
	// defaultLikeSel is the selectivity of LIKE 'prefix%' with unknown prefix.
	defaultLikeSel = 0.10
	// defaultInCount is the assumed IN-list length for normalized queries.
	defaultInCount = 3
	// defaultConjunctSel is used for opaque (OR / expression) conjuncts.
	defaultConjunctSel = 0.5
)

// StatsProvider serves table statistics to the optimizer.
type StatsProvider interface {
	TableStats(table string) *stats.TableStats
}

// atomSelectivity estimates the fraction of a table's rows matching an atom.
func atomSelectivity(a *queryinfo.Atom, ts *stats.TableStats) float64 {
	if ts == nil || ts.RowCount == 0 {
		return defaultSel(a)
	}
	cs := ts.Column(a.Column)
	if cs == nil {
		return defaultSel(a)
	}
	switch a.Op {
	case queryinfo.OpEq, queryinfo.OpNullSafeEq:
		if a.EqValue == nil {
			if cs.NDV > 0 {
				return clamp(1 / float64(cs.NDV))
			}
			return 0.1
		}
		if a.EqValue.IsNull() {
			if a.Op == queryinfo.OpNullSafeEq {
				return cs.SelectivityIsNull()
			}
			return 0
		}
		return clamp(cs.SelectivityEq(*a.EqValue))
	case queryinfo.OpIn:
		n := len(a.InValues)
		if n == 0 {
			n = defaultInCount
		}
		if cs.NDV > 0 {
			return clamp(float64(n) / float64(cs.NDV))
		}
		return clamp(float64(n) * 0.05)
	case queryinfo.OpIsNull:
		return clamp(cs.SelectivityIsNull())
	case queryinfo.OpRange, queryinfo.OpLikePrefix:
		if a.Lo == nil && a.Hi == nil {
			return defaultSel(a)
		}
		lo, hi := sqltypes.Null, sqltypes.Null
		if a.Lo != nil {
			lo = *a.Lo
		}
		if a.Hi != nil {
			hi = *a.Hi
		}
		return clamp(cs.SelectivityRange(lo, hi, a.LoInc, a.HiInc))
	default:
		return defaultConjunctSel
	}
}

// defaultSel is the shape-only selectivity when no statistics apply.
func defaultSel(a *queryinfo.Atom) float64 {
	switch a.Op {
	case queryinfo.OpEq, queryinfo.OpNullSafeEq:
		return 0.05
	case queryinfo.OpIn:
		return 0.10
	case queryinfo.OpIsNull:
		return 0.05
	case queryinfo.OpLikePrefix:
		return defaultLikeSel
	case queryinfo.OpRange:
		return defaultRangeSel
	default:
		return defaultConjunctSel
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// joinEdgeSelectivity estimates the selectivity of an equi-join edge using
// the classic 1/max(NDV_l, NDV_r) formula.
func joinEdgeSelectivity(e queryinfo.JoinEdge, info *queryinfo.Info, sp StatsProvider) float64 {
	l := sp.TableStats(info.Layout.Instances[e.LeftInstance].Table.Name)
	r := sp.TableStats(info.Layout.Instances[e.RightInstance].Table.Name)
	maxNDV := int64(10)
	if l != nil {
		if cs := l.Column(e.LeftColumn); cs != nil && cs.NDV > maxNDV {
			maxNDV = cs.NDV
		}
	}
	if r != nil {
		if cs := r.Column(e.RightColumn); cs != nil && cs.NDV > maxNDV {
			maxNDV = cs.NDV
		}
	}
	return 1 / float64(maxNDV)
}

// scanPages estimates leaf pages touched when reading n entries sequentially.
func scanPages(n float64) float64 {
	p := n / entriesPerLeaf
	if p < 1 {
		p = 1
	}
	return p
}
