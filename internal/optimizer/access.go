package optimizer

import (
	"fmt"
	"strings"

	"aim/internal/catalog"
	"aim/internal/queryinfo"
	"aim/internal/stats"
)

// eqSource is one way to bind an index column by equality: a constant atom
// or a join edge to an already-placed table instance.
type eqSource struct {
	atom *queryinfo.Atom
	join *queryinfo.JoinEdge // this instance's column = placed instance's column
}

// accessPath is one way to read a table instance.
type accessPath struct {
	index    *catalog.Index // nil = clustered full/range access on the PK
	indexKey []string       // effective key columns (index cols, or PK cols)
	eq       []eqSource     // bindings for the leading key columns
	inAtom   *queryinfo.Atom
	rng      *queryinfo.Atom
	covering bool
	icp      []*queryinfo.Atom

	// entrySel is the fraction of the table's entries the scan visits.
	entrySel float64
	// lookupSel is the fraction requiring a PK lookup (after ICP).
	lookupSel float64
	// outSel is the fraction surviving all single-table predicates.
	outSel float64
	// probeCost is the modelled cost of one execution of this access.
	probeCost float64
	// outRows is table rows × outSel.
	outRows float64
}

// Desc renders the access path for EXPLAIN-style output.
func (ap *accessPath) Desc(table string) string {
	switch {
	case ap.index == nil && len(ap.eq) == 0 && ap.rng == nil && ap.inAtom == nil:
		return fmt.Sprintf("%s: full scan", table)
	case ap.index == nil:
		return fmt.Sprintf("%s: PK range (eq=%d)", table, len(ap.eq))
	default:
		kind := "ref"
		if ap.rng != nil || ap.inAtom != nil {
			kind = "range"
		}
		if ap.covering {
			kind += ",covering"
		}
		if len(ap.icp) > 0 {
			kind += ",icp"
		}
		return fmt.Sprintf("%s: index %s (%s) eq=%d", table, ap.index.Name, kind, len(ap.eq))
	}
}

// instanceContext gathers everything needed to enumerate access paths for
// one table instance.
type instanceContext struct {
	info  *queryinfo.Info
	inst  int
	table *catalog.Table
	// eqAtoms, inAtoms, rangeAtoms index single-table atoms by column.
	eqAtoms    map[string]*queryinfo.Atom
	inAtoms    map[string]*queryinfo.Atom
	rangeAtoms map[string]*queryinfo.Atom
	allAtoms   []*queryinfo.Atom
	// opaqueSel multiplies in non-atom single-instance conjunct defaults.
	opaqueSel float64
	// referenced columns of this instance (for covering checks).
	referenced []string
}

func newInstanceContext(info *queryinfo.Info, inst int) *instanceContext {
	c := &instanceContext{
		info:       info,
		inst:       inst,
		table:      info.Layout.Instances[inst].Table,
		eqAtoms:    map[string]*queryinfo.Atom{},
		inAtoms:    map[string]*queryinfo.Atom{},
		rangeAtoms: map[string]*queryinfo.Atom{},
		opaqueSel:  1,
		referenced: info.Referenced[inst],
	}
	for _, a := range info.FilterAtoms[inst] {
		c.allAtoms = append(c.allAtoms, a)
		switch a.Op {
		case queryinfo.OpEq, queryinfo.OpNullSafeEq, queryinfo.OpIsNull:
			c.eqAtoms[a.Column] = a
		case queryinfo.OpIn:
			c.inAtoms[a.Column] = a
		case queryinfo.OpRange, queryinfo.OpLikePrefix:
			// Keep the more selective-looking bound when duplicated.
			if _, dup := c.rangeAtoms[a.Column]; !dup {
				c.rangeAtoms[a.Column] = a
			}
		}
	}
	for _, cj := range info.Conjuncts {
		if len(cj.Instances) == 1 && cj.Instances[0] == inst && cj.Atom != nil && cj.Atom.Op == queryinfo.OpOther {
			c.opaqueSel *= defaultConjunctSel
		}
	}
	return c
}

// enumeratePaths builds every sensible access path for the instance, given
// the set of placed instances (for join-edge equality bindings) and the
// candidate index configuration.
func (o *Optimizer) enumeratePaths(ctx *instanceContext, placed map[int]bool, indexes []*catalog.Index) []*accessPath {
	ts := o.Stats.TableStats(ctx.table.Name)
	rows := float64(1)
	if ts != nil && ts.RowCount > 0 {
		rows = float64(ts.RowCount)
	}

	// Selectivity of all single-table predicates on this instance.
	outSel := ctx.opaqueSel
	for _, a := range ctx.allAtoms {
		outSel *= atomSelectivity(a, ts)
	}

	// Join-edge eq sources per column.
	joinEq := map[string]*queryinfo.JoinEdge{}
	for i := range ctx.info.JoinEdges {
		e := &ctx.info.JoinEdges[i]
		other, thisCol, _, ok := e.Other(ctx.inst)
		if ok && placed[other] {
			joinEq[thisCol] = e
		}
	}

	var paths []*accessPath

	// Full clustered scan is always available.
	full := &accessPath{
		indexKey:  ctx.table.PrimaryKeyNames(),
		entrySel:  1,
		lookupSel: 0,
		outSel:    outSel,
		covering:  true, // the clustered tree has every column
		probeCost: rows*costRow + scanPages(rows)*costPage,
		outRows:   rows * outSel,
	}
	paths = append(paths, full)

	// PK-prefix access (eq/range on leading primary key columns).
	if p := o.buildKeyedPath(ctx, nil, ctx.table.PrimaryKeyNames(), joinEq, ts, rows, outSel); p != nil {
		paths = append(paths, p)
	}

	// Secondary indexes.
	for _, ix := range indexes {
		if !strings.EqualFold(ix.Table, ctx.table.Name) {
			continue
		}
		if p := o.buildKeyedPath(ctx, ix, ix.Columns, joinEq, ts, rows, outSel); p != nil {
			paths = append(paths, p)
		}
	}
	return paths
}

// buildKeyedPath binds the key columns of one index (or the PK) and costs
// the resulting scan. It returns nil when the index is unusable (no leading
// binding) — except that an unbound secondary index can still be useful for
// covering or ordered reads, which the caller handles via fullIndexPath.
func (o *Optimizer) buildKeyedPath(ctx *instanceContext, ix *catalog.Index, keyCols []string, joinEq map[string]*queryinfo.JoinEdge, ts *stats.TableStats, rows, outSel float64) *accessPath {
	p := &accessPath{index: ix, indexKey: keyCols}
	entrySel := 1.0
	pos := 0
	for ; pos < len(keyCols); pos++ {
		col := strings.ToLower(keyCols[pos])
		if a, ok := ctx.eqAtoms[col]; ok {
			p.eq = append(p.eq, eqSource{atom: a})
			entrySel *= atomSelectivity(a, ts)
			continue
		}
		if e, ok := joinEq[col]; ok {
			p.eq = append(p.eq, eqSource{join: e})
			entrySel *= joinEdgeSelectivity(*e, ctx.info, o.Stats)
			continue
		}
		break
	}
	if pos < len(keyCols) {
		col := strings.ToLower(keyCols[pos])
		if a, ok := ctx.inAtoms[col]; ok {
			p.inAtom = a
			entrySel *= atomSelectivity(a, ts)
		} else if a, ok := ctx.rangeAtoms[col]; ok {
			p.rng = a
			entrySel *= atomSelectivity(a, ts)
		}
	}
	if len(p.eq) == 0 && p.inAtom == nil && p.rng == nil {
		return nil // no binding; the plain full-scan path already covers this
	}
	o.finishPath(ctx, p, ts, rows, entrySel, outSel)
	return p
}

// fullIndexPath builds an unbounded scan over a secondary index, useful only
// for covering or ordered reads. The caller decides when to consider it.
func (o *Optimizer) fullIndexPath(ctx *instanceContext, ix *catalog.Index, ts *stats.TableStats, rows, outSel float64) *accessPath {
	p := &accessPath{index: ix, indexKey: ix.Columns}
	o.finishPath(ctx, p, ts, rows, 1.0, outSel)
	return p
}

// finishPath computes covering/ICP and the probe cost.
func (o *Optimizer) finishPath(ctx *instanceContext, p *accessPath, ts *stats.TableStats, rows, entrySel, outSel float64) {
	p.entrySel = entrySel
	p.outSel = outSel
	p.outRows = rows * outSel

	if p.index != nil {
		p.covering = p.index.Covers(ctx.table, ctx.referenced)
		// ICP: atoms over index key + PK columns reduce PK lookups.
		avail := p.index.ColumnSet()
		for _, pk := range ctx.table.PrimaryKeyNames() {
			avail[strings.ToLower(pk)] = true
		}
		lookupSel := entrySel
		for _, a := range ctx.allAtoms {
			if !avail[a.Column] {
				continue
			}
			if usedInBinding(p, a) {
				continue
			}
			p.icp = append(p.icp, a)
			lookupSel *= atomSelectivity(a, ts)
		}
		p.lookupSel = lookupSel
	} else {
		p.covering = true
		p.lookupSel = 0
	}

	entries := rows * entrySel
	ranges := 1.0
	if p.inAtom != nil {
		n := len(p.inAtom.InValues)
		if n == 0 {
			n = defaultInCount
		}
		ranges = float64(n)
	}
	height := treeHeight(rows)
	cost := ranges*height*costPage + entries*costRow + scanPages(entries)*costPage
	if p.index != nil && !p.covering {
		lookups := rows * p.lookupSel
		cost += lookups * (height*costPage + costRow)
	}
	p.probeCost = cost
}

func usedInBinding(p *accessPath, a *queryinfo.Atom) bool {
	for _, e := range p.eq {
		if e.atom == a {
			return true
		}
	}
	return p.inAtom == a || p.rng == a
}

// treeHeight models the B+tree descent depth for a table of the given size.
func treeHeight(rows float64) float64 {
	h := 1.0
	for n := rows / entriesPerLeaf; n > 1; n /= entriesPerLeaf {
		h++
	}
	return h
}

// bestPath returns the cheapest path from the list.
func bestPath(paths []*accessPath) *accessPath {
	var best *accessPath
	for _, p := range paths {
		if best == nil || p.probeCost < best.probeCost {
			best = p
		}
	}
	return best
}
