// Package sim is the machine simulator behind the paper's wall-clock
// figures (Fig. 3 and Fig. 6): it replays a periodically repeating workload
// against the embedded engine in discrete ticks, converts the measured
// physical work into CPU-utilization percentages against a fixed capacity,
// and derives throughput as the completed fraction of the offered load.
// Index builds can be injected between ticks, reproducing the paper's
// "indexes created incrementally with sleeps in between" protocol.
package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"aim/internal/catalog"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/workload"
)

// Sampler draws one SQL statement of the replayed workload.
type Sampler func(r *rand.Rand) string

// Machine replays a workload against one database.
type Machine struct {
	DB      *engine.DB
	Sample  Sampler
	Monitor *workload.Monitor
	// QueriesPerTick is the offered load per tick.
	QueriesPerTick int
	// CapacitySeconds is the CPU budget per tick (cores × tick length).
	CapacitySeconds float64

	r *rand.Rand
}

// NewMachine builds a machine with a deterministic replay stream.
func NewMachine(db *engine.DB, sample Sampler, qpt int, capacity float64, seed int64) *Machine {
	return &Machine{
		DB:              db,
		Sample:          sample,
		Monitor:         workload.NewMonitor(),
		QueriesPerTick:  qpt,
		CapacitySeconds: capacity,
		r:               rand.New(rand.NewSource(seed)),
	}
}

// Tick is one simulated interval's observation.
type Tick struct {
	Index      int
	CPUPercent float64 // utilization against capacity, capped at 100
	Throughput float64 // completed statements this tick
	Errors     int
	Event      string // annotation, e.g. "index built"
}

// RunTick replays one tick of offered load and returns the observation.
// When demand exceeds capacity, the machine completes only the fraction
// that fits (queueing is not modelled; overload saturates at 100% CPU).
func (m *Machine) RunTick(tickIndex int) Tick {
	var cpu float64
	errs := 0
	for i := 0; i < m.QueriesPerTick; i++ {
		sql := m.Sample(m.r)
		res, err := m.DB.Exec(sql)
		if err != nil {
			errs++
			continue
		}
		cpu += res.Stats.CPUSeconds()
		m.Monitor.Record(sql, res.Stats)
	}
	t := Tick{Index: tickIndex, Errors: errs}
	util := cpu / m.CapacitySeconds
	completed := float64(m.QueriesPerTick - errs)
	if util > 1 {
		completed /= util // only the affordable fraction completes
		util = 1
	}
	t.CPUPercent = util * 100
	t.Throughput = completed
	return t
}

// BuildIndex materializes one index between ticks and charges its build
// cost as a CPU annotation (the paper shows these as utilization bumps).
func (m *Machine) BuildIndex(def *catalog.Index) (string, error) {
	return m.BuildIndexes([]*catalog.Index{def})
}

// buildPolicy retries a between-tick index build that failed wholesale
// (CreateIndexes already retries per-index builds and rolls the batch back
// all-or-nothing, so every attempt here starts from a clean catalog).
var buildPolicy = failpoint.DefaultPolicy()

// BuildIndexes materializes several indexes between ticks in one batch,
// letting the engine fan the per-index bulk builds out over the storage
// worker pool — the batched analogue of the paper's "indexes created
// incrementally with sleeps in between" protocol when a recommendation
// lands more than one index at once. A build that keeps failing after
// retries returns the error with the catalog unchanged; the simulation can
// carry on ticking and re-attempt on a later cycle.
func (m *Machine) BuildIndexes(defs []*catalog.Index) (string, error) {
	copies := make([]*catalog.Index, len(defs))
	names := make([]string, len(defs))
	for i, def := range defs {
		d := *def
		d.Columns = append([]string(nil), def.Columns...)
		d.Hypothetical = false
		copies[i] = &d
		names[i] = d.Name
	}
	err := buildPolicy.Do(func() error {
		_, err := m.DB.CreateIndexes(copies)
		return err
	})
	if err != nil {
		return "", err
	}
	m.DB.Analyze()
	return fmt.Sprintf("index built: %s", strings.Join(names, ", ")), nil
}

// Series is a labelled sequence of ticks from one machine.
type Series struct {
	Label string
	Ticks []Tick
}

// AvgCPU returns the mean CPU% over the last n ticks (n=0 → all).
func (s *Series) AvgCPU(n int) float64 {
	return avg(s.Ticks, n, func(t Tick) float64 { return t.CPUPercent })
}

// AvgThroughput returns the mean throughput over the last n ticks.
func (s *Series) AvgThroughput(n int) float64 {
	return avg(s.Ticks, n, func(t Tick) float64 { return t.Throughput })
}

func avg(ticks []Tick, n int, f func(Tick) float64) float64 {
	if len(ticks) == 0 {
		return 0
	}
	start := 0
	if n > 0 && n < len(ticks) {
		start = len(ticks) - n
	}
	sum := 0.0
	for _, t := range ticks[start:] {
		sum += f(t)
	}
	return sum / float64(len(ticks)-start)
}
