package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"aim/internal/catalog"
	"aim/internal/engine"
)

func machineFixture(t testing.TB, capacity float64) *Machine {
	t.Helper()
	db := engine.New("m")
	db.MustExec("CREATE TABLE t (id INT, a INT, b INT, PRIMARY KEY (id))")
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %d)", i, r.Intn(50), r.Intn(100)))
	}
	db.Analyze()
	sampler := func(r *rand.Rand) string {
		return fmt.Sprintf("SELECT b FROM t WHERE a = %d", r.Intn(50))
	}
	return NewMachine(db, sampler, 20, capacity, 7)
}

func TestRunTickRecordsWork(t *testing.T) {
	m := machineFixture(t, 1.0)
	tick := m.RunTick(0)
	if tick.CPUPercent <= 0 || tick.CPUPercent > 100 {
		t.Fatalf("cpu%% = %v", tick.CPUPercent)
	}
	if tick.Throughput != 20 {
		t.Fatalf("throughput = %v (under capacity everything completes)", tick.Throughput)
	}
	if m.Monitor.Len() == 0 {
		t.Fatal("monitor not recording")
	}
}

func TestOverloadSaturates(t *testing.T) {
	m := machineFixture(t, 0.0001) // tiny capacity
	tick := m.RunTick(0)
	if tick.CPUPercent != 100 {
		t.Fatalf("cpu%% = %v, want saturation", tick.CPUPercent)
	}
	if tick.Throughput >= 20 {
		t.Fatalf("throughput = %v, want degraded", tick.Throughput)
	}
}

func TestIndexBuildImprovesTicks(t *testing.T) {
	m := machineFixture(t, 1.0)
	before := m.RunTick(0)
	event, err := m.BuildIndex(&catalog.Index{Name: "ia", Table: "t", Columns: []string{"a"}, Hypothetical: true})
	if err != nil {
		t.Fatal(err)
	}
	if event == "" {
		t.Fatal("no event")
	}
	after := m.RunTick(1)
	if after.CPUPercent >= before.CPUPercent {
		t.Fatalf("cpu%% did not drop: %v -> %v", before.CPUPercent, after.CPUPercent)
	}
}

func TestSeriesAverages(t *testing.T) {
	s := Series{Label: "x", Ticks: []Tick{
		{CPUPercent: 10, Throughput: 1},
		{CPUPercent: 20, Throughput: 2},
		{CPUPercent: 30, Throughput: 3},
	}}
	if got := s.AvgCPU(0); got != 20 {
		t.Errorf("avg all = %v", got)
	}
	if got := s.AvgCPU(2); got != 25 {
		t.Errorf("avg last 2 = %v", got)
	}
	if got := s.AvgThroughput(1); got != 3 {
		t.Errorf("tput last = %v", got)
	}
	empty := Series{}
	if empty.AvgCPU(0) != 0 {
		t.Error("empty series")
	}
}

func TestErrorsCounted(t *testing.T) {
	m := machineFixture(t, 1.0)
	m.Sample = func(r *rand.Rand) string { return "SELECT nope FROM missing" }
	tick := m.RunTick(0)
	if tick.Errors != 20 || tick.Throughput != 0 {
		t.Fatalf("tick = %+v", tick)
	}
}
