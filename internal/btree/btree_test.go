package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("%08d", i)) }

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		if !tr.Put(key(i), i) {
			t.Fatalf("Put(%d) reported replace", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("nope")); ok {
		t.Fatal("Get(nope) found")
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	tr.Put(key(1), "a")
	if tr.Put(key(1), "b") {
		t.Fatal("replace reported insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, _ := tr.Get(key(1))
	if v.(string) != "b" {
		t.Fatalf("value = %v", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put(key(i), i)
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) not found", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, ok := tr.Get(key(i))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) presence = %v", i, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIterFullScan(t *testing.T) {
	tr := New()
	n := 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		tr.Put(key(i), i)
	}
	i := 0
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("position %d: key %s", i, it.Key())
		}
		if it.Value().(int) != i {
			t.Fatalf("position %d: value %v", i, it.Value())
		}
		i++
	}
	if i != n {
		t.Fatalf("scanned %d of %d", i, n)
	}
}

func TestSeekRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	for it := tr.SeekRange(key(10), key(20), false); it.Valid(); it.Next() {
		got = append(got, it.Value().(int))
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("exclusive range got %v", got)
	}
	got = nil
	for it := tr.SeekRange(key(10), key(20), true); it.Valid(); it.Next() {
		got = append(got, it.Value().(int))
	}
	if len(got) != 11 || got[10] != 20 {
		t.Fatalf("inclusive range got %v", got)
	}
	// Open lower bound.
	got = nil
	for it := tr.SeekRange(nil, key(3), false); it.Valid(); it.Next() {
		got = append(got, it.Value().(int))
	}
	if len(got) != 3 {
		t.Fatalf("open-low range got %v", got)
	}
	// Seek between keys lands on next key.
	it := tr.Seek([]byte("00000010x"))
	if !it.Valid() || it.Value().(int) != 11 {
		t.Fatalf("between-keys seek got %v", it.Value())
	}
}

func TestLeavesWalkedAccounting(t *testing.T) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Put(key(i), i)
	}
	it := tr.Seek(nil)
	for ; it.Valid(); it.Next() {
	}
	if it.LeavesWalked() < tr.Leaves() {
		t.Fatalf("full scan walked %d leaves, tree has %d", it.LeavesWalked(), tr.Leaves())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, want >= 2 for 10k keys", tr.Height())
	}
	// A narrow scan should touch far fewer leaves than the tree has.
	it2 := tr.SeekRange(key(500), key(510), false)
	for ; it2.Valid(); it2.Next() {
	}
	if it2.LeavesWalked() > 3 {
		t.Fatalf("narrow scan walked %d leaves", it2.LeavesWalked())
	}
}

// TestRandomOpsAgainstMap drives the tree with random operations and checks
// it always matches a reference map, plus structural invariants.
func TestRandomOpsAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := New()
	ref := map[string]int{}
	for op := 0; op < 20000; op++ {
		k := key(r.Intn(3000))
		switch r.Intn(3) {
		case 0, 1:
			v := r.Int()
			tr.Put(k, v)
			ref[string(k)] = v
		case 2:
			got := tr.Delete(k)
			_, want := ref[string(k)]
			if got != want {
				t.Fatalf("Delete(%s) = %v, want %v", k, got, want)
			}
			delete(ref, string(k))
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("iter position %d: %s want %s", i, it.Key(), keys[i])
		}
		if it.Value().(int) != ref[keys[i]] {
			t.Fatalf("iter value mismatch at %s", keys[i])
		}
		i++
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSortedInvariantProperty is a quick-check over random insertion sets.
func TestSortedInvariantProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		r := rand.New(rand.NewSource(seed))
		tr := New()
		for i := 0; i < n; i++ {
			b := make([]byte, 1+r.Intn(12))
			r.Read(b)
			tr.Put(b, i)
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKeyIsCopied(t *testing.T) {
	tr := New()
	k := []byte("abc")
	tr.Put(k, 1)
	k[0] = 'z'
	if _, ok := tr.Get([]byte("abc")); !ok {
		t.Fatal("tree aliased caller's key buffer")
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Put(key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 100000))
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Put(key(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (i * 37) % 99900
		it := tr.SeekRange(key(start), key(start+100), false)
		for ; it.Valid(); it.Next() {
		}
	}
}

// TestSeekRangePrefixInclusive pins the prefix-inclusive upper-bound
// semantics: an inclusive bound admits keys equal to it AND keys extending it
// byte-wise, which is how composite-index scans express "leading columns <= v"
// without appending an artificial successor byte.
func TestSeekRangePrefixInclusive(t *testing.T) {
	tr := New()
	// Composite-style keys: a short prefix followed by a suffix.
	put := func(s string) { tr.Put([]byte(s), s) }
	for _, s := range []string{"a|1", "a|2", "b|1", "b|2", "b|3", "c|1"} {
		put(s)
	}
	collect := func(from, to string, inc bool) []string {
		var got []string
		var f, h []byte
		if from != "" {
			f = []byte(from)
		}
		if to != "" {
			h = []byte(to)
		}
		for it := tr.SeekRange(f, h, inc); it.Valid(); it.Next() {
			got = append(got, it.Value().(string))
		}
		return got
	}
	// Inclusive bound "b" admits every key with prefix "b".
	got := collect("", "b", true)
	want := []string{"a|1", "a|2", "b|1", "b|2", "b|3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("prefix-inclusive got %v want %v", got, want)
	}
	// Exclusive bound "b" stops before the first "b"-prefixed key.
	got = collect("", "b", false)
	want = []string{"a|1", "a|2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("exclusive got %v want %v", got, want)
	}
	// An exact-key inclusive bound still admits the key itself.
	got = collect("b|2", "b|2", true)
	want = []string{"b|2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("exact inclusive got %v want %v", got, want)
	}
}

// TestReadBatchMatchesIteration drives ReadBatch and a plain Valid/Next loop
// over identical ranges and asserts the same entries in the same order AND
// the same LeavesWalked accounting, across batch sizes that straddle leaf
// boundaries.
func TestReadBatchMatchesIteration(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(key(i), i)
	}
	ranges := []struct {
		lo, hi int // -1 = nil bound
		inc    bool
	}{
		{-1, -1, false},
		{-1, 2500, false},
		{100, 4900, false},
		{100, 4900, true},
		{2000, 2000, true},
		{4999, -1, false},
		{0, 1, false},
	}
	for _, bs := range []int{1, 3, 64, 1024, 8192} {
		for _, rg := range ranges {
			var lo, hi []byte
			if rg.lo >= 0 {
				lo = key(rg.lo)
			}
			if rg.hi >= 0 {
				hi = key(rg.hi)
			}
			itA := tr.SeekRange(lo, hi, rg.inc)
			var wantVals []int
			for ; itA.Valid(); itA.Next() {
				wantVals = append(wantVals, itA.Value().(int))
			}
			itB := tr.SeekRange(lo, hi, rg.inc)
			keys := make([][]byte, bs)
			vals := make([]interface{}, bs)
			var gotVals []int
			for {
				m := itB.ReadBatch(keys, vals, bs)
				if m == 0 {
					break
				}
				for i := 0; i < m; i++ {
					v := vals[i].(int)
					if !bytes.Equal(keys[i], key(v)) {
						t.Fatalf("batch key/val mismatch at %d", v)
					}
					gotVals = append(gotVals, v)
				}
			}
			if fmt.Sprint(gotVals) != fmt.Sprint(wantVals) {
				t.Fatalf("bs=%d range=%v: batch entries diverge (%d vs %d)", bs, rg, len(gotVals), len(wantVals))
			}
			if itA.LeavesWalked() != itB.LeavesWalked() {
				t.Fatalf("bs=%d range=%v: LeavesWalked %d (batch) vs %d (loop)", bs, rg, itB.LeavesWalked(), itA.LeavesWalked())
			}
		}
	}
}
