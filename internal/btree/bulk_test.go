package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// sortedItems returns n strictly-increasing key/value items.
func sortedItems(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: key(i), Val: i}
	}
	return items
}

// assertEqualTrees checks both trees hold exactly the same entries in the
// same order and both pass Validate.
func assertEqualTrees(t *testing.T, got, want *Tree) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	ig, iw := got.Seek(nil), want.Seek(nil)
	for pos := 0; iw.Valid(); pos++ {
		if !ig.Valid() {
			t.Fatalf("got tree ended early at %d", pos)
		}
		if !bytes.Equal(ig.Key(), iw.Key()) {
			t.Fatalf("key mismatch at %d: %q vs %q", pos, ig.Key(), iw.Key())
		}
		if ig.Value() != iw.Value() {
			t.Fatalf("value mismatch at %d", pos)
		}
		ig.Next()
		iw.Next()
	}
	if ig.Valid() {
		t.Fatal("got tree has extra entries")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("got tree invalid: %v", err)
	}
	if err := want.Validate(); err != nil {
		t.Fatalf("want tree invalid: %v", err)
	}
}

func TestBulkLoadMatchesPut(t *testing.T) {
	for _, n := range []int{0, 1, 2, 57, 58, 100, 3650, 20000} {
		items := sortedItems(n)
		bulk := BulkLoad(items)
		inc := New()
		for _, it := range sortedItems(n) { // fresh keys: BulkLoad took ownership
			inc.Put(it.Key, it.Val)
		}
		assertEqualTrees(t, bulk, inc)
		if n > 0 {
			if v, ok := bulk.Get(key(n / 2)); !ok || v.(int) != n/2 {
				t.Fatalf("n=%d: Get(mid) = %v, %v", n, v, ok)
			}
		}
		// ~90% fill: at scale a bulk tree must not use more leaves than an
		// incremental one (whose pages are 50-100% full). Tiny trees can
		// round the other way (58 entries = 2 packed leaves vs 1 unsplit).
		if n >= 1000 && bulk.Leaves() > inc.Leaves() {
			t.Fatalf("n=%d: bulk used %d leaves, incremental %d", n, bulk.Leaves(), inc.Leaves())
		}
	}
}

func TestBulkLoadFill(t *testing.T) {
	tr := BulkLoad(sortedItems(100000))
	if fp := tr.FillPercent(); fp < 80 || fp > 95 {
		t.Fatalf("FillPercent = %.1f, want ~90", fp)
	}
}

func TestBulkLoadUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BulkLoad accepted unsorted input")
		}
	}()
	BulkLoad([]Item{{Key: key(2), Val: 2}, {Key: key(1), Val: 1}})
}

func TestBulkLoadThenMutate(t *testing.T) {
	tr := BulkLoad(sortedItems(5000))
	// A bulk-built tree must absorb regular Puts and Deletes.
	for i := 0; i < 5000; i += 3 {
		tr.Put([]byte(fmt.Sprintf("%08d-x", i)), -i)
	}
	for i := 0; i < 5000; i += 5 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) missing", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBulk(t *testing.T) {
	// Onto an empty tree.
	tr := New()
	if !tr.AppendBulk(sortedItems(500)) {
		t.Fatal("AppendBulk on empty tree rejected")
	}
	// Onto a populated tree, keys beyond the current max.
	more := make([]Item, 500)
	for i := range more {
		more[i] = Item{Key: key(500 + i), Val: 500 + i}
	}
	if !tr.AppendBulk(more) {
		t.Fatal("AppendBulk beyond max rejected")
	}
	want := New()
	for i := 0; i < 1000; i++ {
		want.Put(key(i), i)
	}
	assertEqualTrees(t, tr, want)

	// Overlapping keys must be rejected without mutation.
	before := tr.Len()
	if tr.AppendBulk([]Item{{Key: key(10), Val: 0}}) {
		t.Fatal("AppendBulk accepted overlapping key")
	}
	if tr.AppendBulk([]Item{{Key: key(2000), Val: 0}, {Key: key(1500), Val: 0}}) {
		t.Fatal("AppendBulk accepted unsorted input")
	}
	if tr.Len() != before {
		t.Fatal("rejected AppendBulk mutated the tree")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendBulkRepeatedBatches(t *testing.T) {
	tr := New()
	pos := 0
	for batch := 0; batch < 40; batch++ {
		n := 1 + (batch*37)%200
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Key: key(pos), Val: pos}
			pos++
		}
		if !tr.AppendBulk(items) {
			t.Fatalf("batch %d rejected", batch)
		}
	}
	if tr.Len() != pos {
		t.Fatalf("Len = %d, want %d", tr.Len(), pos)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	i := 0
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(i)) {
			t.Fatalf("position %d: key %s", i, it.Key())
		}
		i++
	}
}

func TestClone(t *testing.T) {
	src := New()
	perm := rand.New(rand.NewSource(5)).Perm(8000)
	for _, i := range perm {
		src.Put(key(i), i)
	}
	cl := src.Clone()
	assertEqualTrees(t, cl, src)
	// Page accounting must be preserved exactly.
	if cl.Leaves() != src.Leaves() {
		t.Fatalf("clone has %d leaves, source %d", cl.Leaves(), src.Leaves())
	}
	if cl.Height() != src.Height() {
		t.Fatalf("clone height %d, source %d", cl.Height(), src.Height())
	}
	// Mutations must not leak either way.
	cl.Put(key(9001), 9001)
	cl.Delete(key(0))
	if _, ok := src.Get(key(9001)); ok {
		t.Fatal("clone Put leaked into source")
	}
	if _, ok := src.Get(key(0)); !ok {
		t.Fatal("clone Delete leaked into source")
	}
	src.Delete(key(1))
	if _, ok := cl.Get(key(1)); !ok {
		t.Fatal("source Delete leaked into clone")
	}
	if err := src.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneEmpty(t *testing.T) {
	cl := New().Clone()
	if cl.Len() != 0 || cl.Leaves() != 1 || cl.Height() != 1 {
		t.Fatalf("empty clone: len=%d leaves=%d height=%d", cl.Len(), cl.Leaves(), cl.Height())
	}
	cl.Put(key(1), 1)
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteUnlinksEmptyLeaves(t *testing.T) {
	tr := New()
	n := 10000
	for i := 0; i < n; i++ {
		tr.Put(key(i), i)
	}
	full := tr.Leaves()
	// Delete a contiguous half: the vacated leaves must be unlinked and the
	// counter must come down with them.
	for i := 0; i < n/2; i++ {
		tr.Delete(key(i))
	}
	if tr.Leaves() >= full {
		t.Fatalf("leaves did not shrink: %d -> %d", full, tr.Leaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleted range must still be insertable and scannable.
	for i := 0; i < 100; i++ {
		tr.Put(key(i), -i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for it := tr.Seek(nil); it.Valid(); it.Next() {
		count++
	}
	if count != tr.Len() {
		t.Fatalf("scan saw %d, Len %d", count, tr.Len())
	}
	// Drain completely: the tree must reset to a single empty page.
	for it := tr.Seek(nil); it.Valid(); it.Next() {
	}
	for i := 0; i < n; i++ {
		tr.Delete(key(i))
	}
	if tr.Len() != 0 || tr.Leaves() != 1 || tr.Height() != 1 {
		t.Fatalf("drained tree: len=%d leaves=%d height=%d", tr.Len(), tr.Leaves(), tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Put(key(1), 1)
	if v, ok := tr.Get(key(1)); !ok || v.(int) != 1 {
		t.Fatal("reuse after drain failed")
	}
}

func TestDeleteRandomLeafAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	tr := New()
	live := map[int]bool{}
	for op := 0; op < 30000; op++ {
		i := r.Intn(4000)
		if r.Intn(3) == 0 {
			tr.Put(key(i), i)
			live[i] = true
		} else {
			tr.Delete(key(i))
			delete(live, i)
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutOwned(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		k := append([]byte(nil), key(i)...) // freshly allocated, handed over
		tr.PutOwned(k, i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(key(500)); !ok || v.(int) != 500 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// Replacement must not insert.
	if tr.PutOwned(append([]byte(nil), key(1)...), -1) {
		t.Fatal("replacement reported insert")
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestLeafStrideIteration(t *testing.T) {
	tr := New()
	n := 20000
	for i := 0; i < n; i++ {
		tr.Put(key(i), i)
	}
	// Visiting every other page reads roughly half the entries while
	// walking only the pages it reads.
	it := tr.Seek(nil)
	read, pages := 0, 0
	for it.Valid() {
		if pages%2 == 1 {
			it.SkipLeaf()
			pages++
			continue
		}
		for k := it.LeafLen(); k > 0 && it.Valid(); k-- {
			read++
			it.Next()
		}
		pages++
	}
	if read == 0 || read >= n {
		t.Fatalf("stride read %d of %d", read, n)
	}
	if got, want := read, n/2; got < want-degree || got > want+degree {
		t.Fatalf("stride read %d, want ~%d", got, want)
	}
}

func TestBulkLoadAgainstSortedRandomKeys(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	uniq := map[string]bool{}
	var keys []string
	for len(keys) < 5000 {
		b := make([]byte, 1+r.Intn(16))
		r.Read(b)
		if !uniq[string(b)] {
			uniq[string(b)] = true
			keys = append(keys, string(b))
		}
	}
	sort.Strings(keys)
	items := make([]Item, len(keys))
	inc := New()
	for i, k := range keys {
		items[i] = Item{Key: []byte(k), Val: i}
		inc.Put([]byte(k), i)
	}
	assertEqualTrees(t, BulkLoad(items), inc)
}

func BenchmarkBulkLoad(b *testing.B) {
	base := sortedItems(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items := make([]Item, len(base))
		copy(items, base)
		BulkLoad(items)
	}
}

func BenchmarkIncrementalLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := New()
		for j := 0; j < 100000; j++ {
			tr.PutOwned(key(j), j)
		}
	}
}

func BenchmarkTreeClone(b *testing.B) {
	src := BulkLoad(sortedItems(100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Clone()
	}
}
