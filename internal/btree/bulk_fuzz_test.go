package btree

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzBulkLoadEquivalence asserts that for any set of keys, BulkLoad over
// the sorted unique items produces a tree that is entry-for-entry and
// invariant-identical (via Validate) to one grown by incremental Put — and
// that AppendBulk over a sorted suffix agrees with both.
//
// The fuzz input is interpreted as a stream of length-prefixed keys:
// byte n (1-17 bytes of key material) followed by that many bytes.
func FuzzBulkLoadEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 'a', 1, 'b', 1, 'a'})
	f.Add([]byte{3, 'a', 'b', 'c', 2, 'a', 'b', 1, 'z', 4, 0, 0, 0, 0})
	// A seed large enough to force multi-level trees.
	var big []byte
	for i := 0; i < 4000; i++ {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i*2654435761))
		big = append(big, 8)
		big = append(big, k[:]...)
	}
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		uniq := map[string]int{}
		for i := 0; len(data) > 0; i++ {
			n := int(data[0])%17 + 1
			data = data[1:]
			if n > len(data) {
				n = len(data)
			}
			if n == 0 {
				break
			}
			uniq[string(data[:n])] = i // later values win, like repeated Put
			data = data[n:]
		}
		keys := make([]string, 0, len(uniq))
		for k := range uniq {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		items := make([]Item, len(keys))
		inc := New()
		for i, k := range keys {
			items[i] = Item{Key: []byte(k), Val: uniq[k]}
			inc.Put([]byte(k), uniq[k])
		}
		bulk := BulkLoad(items)

		appended := New()
		split := len(keys) / 2
		for _, k := range keys[:split] {
			appended.Put([]byte(k), uniq[k])
		}
		tail := make([]Item, 0, len(keys)-split)
		for _, k := range keys[split:] {
			tail = append(tail, Item{Key: []byte(k), Val: uniq[k]})
		}
		if !appended.AppendBulk(tail) {
			t.Fatal("AppendBulk rejected a sorted suffix beyond the current max")
		}

		for _, pair := range []struct {
			name string
			tr   *Tree
		}{{"bulk", bulk}, {"appended", appended}} {
			if err := pair.tr.Validate(); err != nil {
				t.Fatalf("%s: %v", pair.name, err)
			}
			if pair.tr.Len() != inc.Len() {
				t.Fatalf("%s: Len = %d, want %d", pair.name, pair.tr.Len(), inc.Len())
			}
			it, iw := pair.tr.Seek(nil), inc.Seek(nil)
			for iw.Valid() {
				if !it.Valid() || !bytes.Equal(it.Key(), iw.Key()) || it.Value() != iw.Value() {
					t.Fatalf("%s: entry mismatch", pair.name)
				}
				it.Next()
				iw.Next()
			}
			if it.Valid() {
				t.Fatalf("%s: extra entries", pair.name)
			}
		}
		if err := inc.Validate(); err != nil {
			t.Fatalf("incremental: %v", err)
		}
	})
}
