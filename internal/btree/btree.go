// Package btree implements an in-memory B+tree over []byte keys with
// bytewise ordering. It backs both clustered tables and secondary indexes.
//
// Leaves are chained, so range scans are sequential; the tree also exposes
// page-level accounting (leaf count, height) that the storage layer uses to
// model I/O cost: a range scan touching k entries across p leaves costs p
// page reads plus one root-to-leaf descent.
package btree

import (
	"bytes"
	"fmt"
)

// degree is the maximum number of keys per node. 64 keeps nodes around the
// size of a small database page for typical key lengths.
const degree = 64

type leaf struct {
	keys [][]byte
	vals []interface{}
	next *leaf
	prev *leaf
}

type inner struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is an in-memory B+tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	first  *leaf
	size   int
	height int
	leaves int
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l, height: 1, leaves: 1}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels from root to leaf, used to model the
// cost of a point lookup (one page read per level).
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf pages.
func (t *Tree) Leaves() int { return t.leaves }

// Get returns the value stored under key, if any.
func (t *Tree) Get(key []byte) (interface{}, bool) {
	l, _ := t.findLeaf(key)
	i, ok := l.search(key)
	if !ok {
		return nil, false
	}
	return l.vals[i], true
}

// findLeaf descends to the leaf that owns key and returns it with the
// descent path of inner nodes (root first).
func (t *Tree) findLeaf(key []byte) (*leaf, []*inner) {
	var path []*inner
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v, path
		case *inner:
			path = append(path, v)
			n = v.children[v.childIndex(key)]
		}
	}
}

// childIndex returns the index of the child that may contain key.
func (in *inner) childIndex(key []byte) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, in.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search finds key within the leaf, returning its index and whether it was
// found; when not found the index is the insertion point.
func (l *leaf) search(key []byte) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.keys) && bytes.Equal(l.keys[lo], key) {
		return lo, true
	}
	return lo, false
}

// Put inserts or replaces the value under key and reports whether the key
// was newly inserted.
func (t *Tree) Put(key []byte, val interface{}) bool {
	k := append([]byte(nil), key...)
	l, path := t.findLeaf(k)
	i, found := l.search(k)
	if found {
		l.vals[i] = val
		return false
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = k
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	t.size++
	if len(l.keys) > degree {
		t.splitLeaf(l, path)
	}
	return true
}

func (t *Tree) splitLeaf(l *leaf, path []*inner) {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([]interface{}(nil), l.vals[mid:]...),
		next: l.next,
		prev: l,
	}
	if l.next != nil {
		l.next.prev = right
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	t.leaves++
	t.insertIntoParent(path, l, right.keys[0], right)
}

func (t *Tree) insertIntoParent(path []*inner, left node, sep []byte, right node) {
	if len(path) == 0 {
		t.root = &inner{keys: [][]byte{sep}, children: []node{left, right}}
		t.height++
		return
	}
	parent := path[len(path)-1]
	i := parent.childIndex(sep)
	parent.keys = append(parent.keys, nil)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	if len(parent.keys) > degree {
		t.splitInner(parent, path[:len(path)-1])
	}
}

func (t *Tree) splitInner(in *inner, path []*inner) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.insertIntoParent(path, in, sep, right)
}

// Delete removes key and reports whether it was present. Underfull nodes are
// tolerated (no rebalancing); empty leaves are unlinked lazily during scans.
// This keeps deletion simple while preserving ordering invariants; the
// workloads here are insert-dominated.
func (t *Tree) Delete(key []byte) bool {
	l, _ := t.findLeaf(key)
	i, found := l.search(key)
	if !found {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size--
	return true
}

// Iter is a forward iterator positioned on a sequence of entries.
type Iter struct {
	l            *leaf
	i            int
	hi           []byte // exclusive upper bound key, nil = unbounded
	hiInclusive  bool
	valid        bool
	leavesWalked int
}

// Seek returns an iterator positioned at the first entry with key >= from.
// A nil from starts at the beginning.
func (t *Tree) Seek(from []byte) *Iter {
	it := &Iter{}
	if from == nil {
		it.l = t.first
		it.i = -1
		it.leavesWalked = 1
		it.advance()
		return it
	}
	l, _ := t.findLeaf(from)
	i, _ := l.search(from)
	it.l = l
	it.i = i - 1
	it.leavesWalked = 1
	it.advance()
	return it
}

// SeekRange returns an iterator over keys in [from, to). A nil bound is
// unbounded on that side. toInclusive makes the upper bound inclusive.
func (t *Tree) SeekRange(from, to []byte, toInclusive bool) *Iter {
	it := t.Seek(from)
	it.hi = to
	it.hiInclusive = toInclusive
	it.checkBound()
	return it
}

func (it *Iter) advance() {
	it.i++
	for it.l != nil && it.i >= len(it.l.keys) {
		it.l = it.l.next
		it.i = 0
		if it.l != nil {
			it.leavesWalked++
		}
	}
	it.valid = it.l != nil
	it.checkBound()
}

func (it *Iter) checkBound() {
	if !it.valid || it.hi == nil {
		return
	}
	c := bytes.Compare(it.l.keys[it.i], it.hi)
	if c > 0 || (c == 0 && !it.hiInclusive) {
		it.valid = false
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current key. The slice must not be modified.
func (it *Iter) Key() []byte { return it.l.keys[it.i] }

// Value returns the current value.
func (it *Iter) Value() interface{} { return it.l.vals[it.i] }

// Next advances to the next entry.
func (it *Iter) Next() { it.advance() }

// LeavesWalked returns how many leaf pages the iterator has touched, for
// I/O accounting.
func (it *Iter) LeavesWalked() int { return it.leavesWalked }

// Validate checks tree invariants and returns an error describing the first
// violation. It is used by tests.
func (t *Tree) Validate() error {
	var prev []byte
	count := 0
	for it := t.Seek(nil); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			return fmt.Errorf("btree: keys out of order: %x >= %x", prev, it.Key())
		}
		prev = it.Key()
		count++
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but iterated %d", t.size, count)
	}
	return t.validateNode(t.root, nil, nil)
}

func (t *Tree) validateNode(n node, lo, hi []byte) error {
	switch v := n.(type) {
	case *leaf:
		for _, k := range v.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: leaf key below lower bound")
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: leaf key above upper bound")
			}
		}
	case *inner:
		if len(v.children) != len(v.keys)+1 {
			return fmt.Errorf("btree: inner children/keys mismatch")
		}
		for i, c := range v.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = v.keys[i-1]
			}
			if i < len(v.keys) {
				chi = v.keys[i]
			}
			if err := t.validateNode(c, clo, chi); err != nil {
				return err
			}
		}
	}
	return nil
}
