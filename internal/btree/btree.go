// Package btree implements an in-memory B+tree over []byte keys with
// bytewise ordering. It backs both clustered tables and secondary indexes.
//
// Leaves are chained, so range scans are sequential; the tree also exposes
// page-level accounting (leaf count, height) that the storage layer uses to
// model I/O cost: a range scan touching k entries across p leaves costs p
// page reads plus one root-to-leaf descent.
package btree

import (
	"bytes"
	"fmt"
)

// degree is the maximum number of keys per node. 64 keeps nodes around the
// size of a small database page for typical key lengths.
const degree = 64

type leaf struct {
	keys [][]byte
	vals []interface{}
	next *leaf
	prev *leaf
}

type inner struct {
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is an in-memory B+tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	first  *leaf
	size   int
	height int
	leaves int
}

// New returns an empty tree.
func New() *Tree {
	l := &leaf{}
	return &Tree{root: l, first: l, height: 1, leaves: 1}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels from root to leaf, used to model the
// cost of a point lookup (one page read per level).
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf pages.
func (t *Tree) Leaves() int { return t.leaves }

// Get returns the value stored under key, if any.
func (t *Tree) Get(key []byte) (interface{}, bool) {
	l, _ := t.findLeaf(key)
	i, ok := l.search(key)
	if !ok {
		return nil, false
	}
	return l.vals[i], true
}

// findLeaf descends to the leaf that owns key and returns it with the
// descent path of inner nodes (root first).
func (t *Tree) findLeaf(key []byte) (*leaf, []*inner) {
	var path []*inner
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v, path
		case *inner:
			path = append(path, v)
			n = v.children[v.childIndex(key)]
		}
	}
}

// childIndex returns the index of the child that may contain key.
func (in *inner) childIndex(key []byte) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, in.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search finds key within the leaf, returning its index and whether it was
// found; when not found the index is the insertion point.
func (l *leaf) search(key []byte) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.keys) && bytes.Equal(l.keys[lo], key) {
		return lo, true
	}
	return lo, false
}

// Put inserts or replaces the value under key and reports whether the key
// was newly inserted. The key is copied on insert; the replacement path
// allocates nothing.
func (t *Tree) Put(key []byte, val interface{}) bool {
	return t.put(key, val, true)
}

// PutOwned is Put without the defensive key copy: the caller hands over
// ownership of a freshly-encoded buffer it will never modify. Builders that
// encode keys per entry (index builds, batch loads) use it to skip one
// allocation per insert.
func (t *Tree) PutOwned(key []byte, val interface{}) bool {
	return t.put(key, val, false)
}

func (t *Tree) put(key []byte, val interface{}, copyKey bool) bool {
	l, path := t.findLeaf(key)
	i, found := l.search(key)
	if found {
		l.vals[i] = val
		return false
	}
	k := key
	if copyKey {
		k = append([]byte(nil), key...)
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = k
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	t.size++
	if len(l.keys) > degree {
		t.splitLeaf(l, path)
	}
	return true
}

func (t *Tree) splitLeaf(l *leaf, path []*inner) {
	mid := len(l.keys) / 2
	right := &leaf{
		keys: append([][]byte(nil), l.keys[mid:]...),
		vals: append([]interface{}(nil), l.vals[mid:]...),
		next: l.next,
		prev: l,
	}
	if l.next != nil {
		l.next.prev = right
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	l.next = right
	t.leaves++
	t.insertIntoParent(path, l, right.keys[0], right)
}

func (t *Tree) insertIntoParent(path []*inner, left node, sep []byte, right node) {
	if len(path) == 0 {
		t.root = &inner{keys: [][]byte{sep}, children: []node{left, right}}
		t.height++
		return
	}
	parent := path[len(path)-1]
	i := parent.childIndex(sep)
	parent.keys = append(parent.keys, nil)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	if len(parent.keys) > degree {
		t.splitInner(parent, path[:len(path)-1])
	}
}

func (t *Tree) splitInner(in *inner, path []*inner) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &inner{
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.insertIntoParent(path, in, sep, right)
}

// Delete removes key and reports whether it was present. Underfull nodes
// are tolerated (no rebalancing), but a leaf that empties is unlinked from
// the chain and pruned from its ancestors immediately so Leaves()-based
// page accounting stays faithful after delete-heavy workloads.
func (t *Tree) Delete(key []byte) bool {
	l, path := t.findLeaf(key)
	i, found := l.search(key)
	if !found {
		return false
	}
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size--
	if len(l.keys) == 0 {
		t.unlinkLeaf(l, path)
	}
	return true
}

// unlinkLeaf removes a now-empty leaf from the chain and from the inner
// structure, pruning ancestors that would be left childless. The root leaf
// is kept as the empty tree's single page. Separators above the pruned
// subtree may end up lower than the actual minimum beneath them; that is
// safe — routing only requires separators to be lower bounds.
func (t *Tree) unlinkLeaf(l *leaf, path []*inner) {
	if len(path) == 0 {
		return
	}
	// Walk up past ancestors that would become childless; they are pruned
	// together with the leaf.
	var child node = l
	d := len(path) - 1
	for d >= 0 && len(path[d].children) == 1 {
		child = path[d]
		d--
	}
	if d < 0 {
		// Every ancestor had a single child: the tree is empty. Reset to a
		// fresh single-leaf tree.
		nl := &leaf{}
		t.root, t.first = nl, nl
		t.height, t.leaves = 1, 1
		return
	}
	p := path[d]
	ci := 0
	for j, c := range p.children {
		if c == child {
			ci = j
			break
		}
	}
	// Dropping child ci drops one separator with it: keys[ci-1] bounds it
	// from the left, except for child 0 whose right bound is keys[0].
	ki := ci - 1
	if ki < 0 {
		ki = 0
	}
	p.keys = append(p.keys[:ki], p.keys[ki+1:]...)
	p.children = append(p.children[:ci], p.children[ci+1:]...)
	if l.prev != nil {
		l.prev.next = l.next
	} else {
		t.first = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	}
	t.leaves--
}

// Item is one key/value pair handed to the bulk-construction paths.
type Item struct {
	Key []byte
	Val interface{}
}

// Bulk-construction fill factors. Leaves and inner nodes are packed to ~90%
// of capacity instead of 100% so a bulk-built tree absorbs follow-up Puts
// without immediately splitting every page, and so Leaves()/Height() page
// accounting matches what an incrementally-grown tree of the same size
// reports (incremental splits leave pages 50-100% full; 90% sits inside the
// same leaf-count ballpark while staying O(n/degree)).
const (
	bulkLeafFill = degree * 9 / 10 // entries per packed leaf
	bulkNodeFill = degree*9/10 + 1 // children per packed inner node
)

// BulkLoad builds a tree from strictly-increasing sorted items in O(n):
// items are packed directly into a chained leaf array and the inner levels
// are assembled bottom-up — no descents, no binary searches, no key copies.
// Ownership of the key slices transfers to the tree; callers must hand over
// freshly-encoded buffers they will not modify. Panics if the input is not
// strictly sorted (callers sort with bytes.Compare first).
func BulkLoad(items []Item) *Tree {
	t := &Tree{}
	bulkInto(t, items)
	return t
}

// bulkInto (re)initializes t from sorted items.
func bulkInto(t *Tree, items []Item) {
	if len(items) == 0 {
		l := &leaf{}
		t.root, t.first = l, l
		t.height, t.leaves, t.size = 1, 1, 0
		return
	}
	nLeaves := (len(items) + bulkLeafFill - 1) / bulkLeafFill
	// Distribute entries evenly so the last leaf is never a near-empty runt.
	base, extra := len(items)/nLeaves, len(items)%nLeaves
	nodes := make([]node, 0, nLeaves)
	lows := make([][]byte, 0, nLeaves)
	var prev *leaf
	var prevKey []byte
	pos := 0
	for i := 0; i < nLeaves; i++ {
		cnt := base
		if i < extra {
			cnt++
		}
		l := &leaf{
			keys: make([][]byte, cnt),
			vals: make([]interface{}, cnt),
			prev: prev,
		}
		for j := 0; j < cnt; j++ {
			it := items[pos]
			if prevKey != nil && bytes.Compare(prevKey, it.Key) >= 0 {
				panic(fmt.Sprintf("btree: BulkLoad input not strictly sorted at %d", pos))
			}
			prevKey = it.Key
			l.keys[j] = it.Key
			l.vals[j] = it.Val
			pos++
		}
		if prev != nil {
			prev.next = l
		}
		prev = l
		nodes = append(nodes, l)
		lows = append(lows, l.keys[0])
	}
	t.first = nodes[0].(*leaf)
	t.leaves = nLeaves
	t.size = len(items)
	t.height = 1
	t.root = t.buildInnerLevels(nodes, lows)
}

// buildInnerLevels assembles inner levels bottom-up over nodes whose
// smallest reachable keys are lows, returning the root and bumping height
// once per level built.
func (t *Tree) buildInnerLevels(nodes []node, lows [][]byte) node {
	for len(nodes) > 1 {
		nGroups := (len(nodes) + bulkNodeFill - 1) / bulkNodeFill
		base, extra := len(nodes)/nGroups, len(nodes)%nGroups
		next := make([]node, 0, nGroups)
		nextLows := make([][]byte, 0, nGroups)
		pos := 0
		for g := 0; g < nGroups; g++ {
			cnt := base
			if g < extra {
				cnt++
			}
			in := &inner{
				keys:     make([][]byte, cnt-1),
				children: make([]node, cnt),
			}
			copy(in.children, nodes[pos:pos+cnt])
			for j := 1; j < cnt; j++ {
				in.keys[j-1] = lows[pos+j]
			}
			next = append(next, in)
			nextLows = append(nextLows, lows[pos])
			pos += cnt
		}
		nodes, lows = next, nextLows
		t.height++
	}
	return nodes[0]
}

// AppendBulk appends strictly-increasing items, all greater than the
// current maximum key, in O(n + n/degree·height): the rightmost leaf is
// topped up, then whole packed leaves are spliced onto the rightmost spine.
// It reports whether the fast path applied; on false the tree is unchanged
// and the caller should fall back to Put. Ownership of the key slices
// transfers to the tree, as with BulkLoad.
func (t *Tree) AppendBulk(items []Item) bool {
	if len(items) == 0 {
		return true
	}
	for i := 1; i < len(items); i++ {
		if bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			return false
		}
	}
	if t.size == 0 {
		bulkInto(t, items)
		return true
	}
	last := t.lastLeaf()
	if bytes.Compare(last.keys[len(last.keys)-1], items[0].Key) >= 0 {
		return false
	}
	pos := 0
	for pos < len(items) && len(last.keys) < bulkLeafFill {
		last.keys = append(last.keys, items[pos].Key)
		last.vals = append(last.vals, items[pos].Val)
		t.size++
		pos++
	}
	for pos < len(items) {
		cnt := len(items) - pos
		if cnt > bulkLeafFill {
			cnt = bulkLeafFill
		}
		nl := &leaf{
			keys: make([][]byte, cnt),
			vals: make([]interface{}, cnt),
			prev: last,
		}
		for j := 0; j < cnt; j++ {
			nl.keys[j] = items[pos].Key
			nl.vals[j] = items[pos].Val
			pos++
		}
		last.next = nl
		t.leaves++
		t.size += cnt
		// Splice the new leaf into the rightmost spine; splits propagate
		// through insertIntoParent exactly as for incremental growth. The
		// path must be recomputed per leaf because splits restructure it.
		t.insertIntoParent(t.rightmostPath(), last, nl.keys[0], nl)
		last = nl
	}
	return true
}

// lastLeaf returns the rightmost leaf.
func (t *Tree) lastLeaf() *leaf {
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v
		case *inner:
			n = v.children[len(v.children)-1]
		}
	}
}

// rightmostPath returns the inner nodes along the rightmost spine, root
// first.
func (t *Tree) rightmostPath() []*inner {
	var path []*inner
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			return path
		}
		path = append(path, in)
		n = in.children[len(in.children)-1]
	}
}

// Clone returns a structurally identical copy of the tree in O(n): the leaf
// chain is copied page-for-page (preserving Leaves()/Height() accounting
// exactly) and the inner levels are rebuilt bottom-up. Key byte slices and
// values are shared with the original — both trees treat stored keys as
// immutable, so the share is safe and halves the memory cost of a clone.
func (t *Tree) Clone() *Tree {
	out := &Tree{}
	if t.size == 0 {
		l := &leaf{}
		out.root, out.first = l, l
		out.height, out.leaves = 1, 1
		return out
	}
	nodes := make([]node, 0, t.leaves)
	lows := make([][]byte, 0, t.leaves)
	var prev *leaf
	for l := t.first; l != nil; l = l.next {
		if len(l.keys) == 0 {
			continue // tolerated only transiently; never copied
		}
		nl := &leaf{
			keys: append([][]byte(nil), l.keys...),
			vals: append([]interface{}(nil), l.vals...),
			prev: prev,
		}
		if prev != nil {
			prev.next = nl
		}
		prev = nl
		nodes = append(nodes, nl)
		lows = append(lows, nl.keys[0])
	}
	out.first = nodes[0].(*leaf)
	out.leaves = len(nodes)
	out.size = t.size
	out.height = 1
	out.root = out.buildInnerLevels(nodes, lows)
	return out
}

// FillPercent returns the average leaf occupancy as a percentage of leaf
// capacity — the observability hook for bulk-load fill accounting.
func (t *Tree) FillPercent() float64 {
	if t.leaves == 0 {
		return 0
	}
	return 100 * float64(t.size) / float64(t.leaves*degree)
}

// Iter is a forward iterator positioned on a sequence of entries.
type Iter struct {
	l            *leaf
	i            int
	hi           []byte // exclusive upper bound key, nil = unbounded
	hiInclusive  bool
	valid        bool
	leavesWalked int
}

// Seek returns an iterator positioned at the first entry with key >= from.
// A nil from starts at the beginning.
func (t *Tree) Seek(from []byte) *Iter {
	it := &Iter{}
	if from == nil {
		it.l = t.first
		it.i = -1
		it.leavesWalked = 1
		it.advance()
		return it
	}
	l, _ := t.findLeaf(from)
	i, _ := l.search(from)
	it.l = l
	it.i = i - 1
	it.leavesWalked = 1
	it.advance()
	return it
}

// SeekRange returns an iterator over keys in [from, to). A nil bound is
// unbounded on that side. toInclusive makes the upper bound prefix-inclusive:
// keys equal to the bound or extending it byte-wise stay in range, so a
// composite-key tree can be scanned for "leading columns <= v" by passing the
// encoded v without manufacturing an artificial successor key.
func (t *Tree) SeekRange(from, to []byte, toInclusive bool) *Iter {
	it := t.Seek(from)
	it.hi = to
	it.hiInclusive = toInclusive
	it.checkBound()
	return it
}

func (it *Iter) advance() {
	it.i++
	for it.l != nil && it.i >= len(it.l.keys) {
		it.l = it.l.next
		it.i = 0
		if it.l != nil {
			it.leavesWalked++
		}
	}
	it.valid = it.l != nil
	it.checkBound()
}

func (it *Iter) checkBound() {
	if !it.valid || it.hi == nil {
		return
	}
	if !it.inBound(it.l.keys[it.i]) {
		it.valid = false
	}
}

// inBound reports whether key is inside the iterator's upper bound. The
// admitted key set is always a contiguous range downward-closed in key order:
// exclusive bounds admit key < hi, prefix-inclusive bounds additionally admit
// hi itself and every key extending it.
func (it *Iter) inBound(key []byte) bool {
	c := bytes.Compare(key, it.hi)
	if it.hiInclusive {
		return c <= 0 || bytes.HasPrefix(key, it.hi)
	}
	return c < 0
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current key. The slice must not be modified.
func (it *Iter) Key() []byte { return it.l.keys[it.i] }

// Value returns the current value.
func (it *Iter) Value() interface{} { return it.l.vals[it.i] }

// Next advances to the next entry.
func (it *Iter) Next() { it.advance() }

// ReadBatch copies up to max entries into vals (and keys, when non-nil) and
// advances past them, returning the number copied. It visits exactly the same
// entry sequence and walks exactly the same leaves as a Valid/Next loop —
// including the eager step into the next leaf after consuming a leaf's last
// entry — so LeavesWalked-based I/O accounting is identical either way. The
// fast path span-copies a whole leaf remainder with a single bound check on
// its last key, which is sound because the bound admits a downward-closed key
// range (see inBound).
func (it *Iter) ReadBatch(keys [][]byte, vals []interface{}, max int) int {
	n := 0
	for it.valid && n < max {
		l, i := it.l, it.i
		take := len(l.keys) - i
		if take > max-n {
			take = max - n
		}
		if it.hi != nil && !it.inBound(l.keys[i+take-1]) {
			// The span crosses the bound: copy the in-bound head and stop on
			// the first out-of-bound entry, like checkBound would.
			cut := 0
			for cut < take && it.inBound(l.keys[i+cut]) {
				cut++
			}
			copy(vals[n:], l.vals[i:i+cut])
			if keys != nil {
				copy(keys[n:], l.keys[i:i+cut])
			}
			it.i = i + cut
			it.valid = false
			return n + cut
		}
		copy(vals[n:], l.vals[i:i+take])
		if keys != nil {
			copy(keys[n:], l.keys[i:i+take])
		}
		n += take
		// Reposition on the last consumed entry and advance off it, so leaf
		// stepping and bound invalidation mirror per-entry iteration.
		it.i = i + take - 1
		it.advance()
	}
	return n
}

// LeavesWalked returns how many leaf pages the iterator has touched, for
// I/O accounting.
func (it *Iter) LeavesWalked() int { return it.leavesWalked }

// LeafLen returns the number of entries in the current leaf page, or 0 when
// the iterator is exhausted. Together with SkipLeaf it supports page-stride
// sampling (ANALYZE reads whole pages or skips them wholesale).
func (it *Iter) LeafLen() int {
	if !it.valid {
		return 0
	}
	return len(it.l.keys)
}

// SkipLeaf advances to the first entry of the next leaf page without
// visiting the remaining entries of the current one. The entered page
// counts as walked; the skipped remainder of the current page was already
// counted when the iterator entered it.
func (it *Iter) SkipLeaf() {
	if !it.valid {
		return
	}
	it.l = it.l.next
	for it.l != nil && len(it.l.keys) == 0 {
		it.l = it.l.next
	}
	it.i = 0
	it.valid = it.l != nil
	if it.valid {
		it.leavesWalked++
	}
	it.checkBound()
}

// Validate checks tree invariants and returns an error describing the first
// violation. It is used by tests.
func (t *Tree) Validate() error {
	var prev []byte
	count := 0
	for it := t.Seek(nil); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			return fmt.Errorf("btree: keys out of order: %x >= %x", prev, it.Key())
		}
		prev = it.Key()
		count++
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but iterated %d", t.size, count)
	}
	// Cross-check the leaves counter against the actual chain, the chain's
	// back-links, and the set of leaves reachable through the structure.
	chain := 0
	var prevL *leaf
	for l := t.first; l != nil; l = l.next {
		if l.prev != prevL {
			return fmt.Errorf("btree: broken prev link at chain position %d", chain)
		}
		if len(l.keys) == 0 && t.size > 0 {
			return fmt.Errorf("btree: empty leaf left in chain at position %d", chain)
		}
		chain++
		prevL = l
	}
	if chain != t.leaves {
		return fmt.Errorf("btree: leaves counter %d but chain has %d", t.leaves, chain)
	}
	var reachable []*leaf
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case *leaf:
			reachable = append(reachable, v)
		case *inner:
			for _, c := range v.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	if len(reachable) != chain {
		return fmt.Errorf("btree: structure reaches %d leaves but chain has %d", len(reachable), chain)
	}
	for i, l := range reachable {
		want := t.first
		for j := 0; j < i; j++ {
			want = want.next
		}
		if l != want {
			return fmt.Errorf("btree: structure leaf %d is not chain leaf %d", i, i)
		}
	}
	return t.validateNode(t.root, nil, nil)
}

func (t *Tree) validateNode(n node, lo, hi []byte) error {
	switch v := n.(type) {
	case *leaf:
		for _, k := range v.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: leaf key below lower bound")
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: leaf key above upper bound")
			}
		}
	case *inner:
		if len(v.children) != len(v.keys)+1 {
			return fmt.Errorf("btree: inner children/keys mismatch")
		}
		for i, c := range v.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = v.keys[i-1]
			}
			if i < len(v.keys) {
				chi = v.keys[i]
			}
			if err := t.validateNode(c, clo, chi); err != nil {
				return err
			}
		}
	}
	return nil
}
