// Package btree implements an in-memory copy-on-write B+tree over []byte
// keys with bytewise ordering. It backs both clustered tables and secondary
// indexes.
//
// The tree is persistent in the functional-data-structure sense: Clone is an
// O(1) root-pointer copy, after which both handles share the entire node
// graph. Writers path-copy from root to leaf — every node carries the epoch
// that created it, and a handle may mutate a node in place only when the
// node's epoch equals the handle's current epoch (the handle created the
// node since its last Clone). Clone hands *both* handles fresh epochs from a
// clock shared across the clone family, so neither side can touch a node the
// other can reach: readers traversing a snapshot root see a frozen,
// byte-stable image no matter what DML runs against live handles, with no
// locking on either side. Clone itself must be serialized with writers to
// the same handle (it reassigns the handle's epoch); everything after the
// clone — snapshot reads concurrent with live writes — is race-free.
//
// Iterators walk leaves through a per-iterator descent stack. (The previous
// implementation chained leaves with next/prev pointers; a split would have
// to relink shared siblings in place, which is exactly the cross-snapshot
// mutation copy-on-write forbids.) The tree still exposes the page-level
// accounting (leaf count, height, leaves walked) that the storage layer uses
// to model I/O cost: a range scan touching k entries across p leaves costs p
// page reads plus one root-to-leaf descent.
package btree

import (
	"bytes"
	"fmt"
	"sync/atomic"
)

// degree is the maximum number of keys per node. 64 keeps nodes around the
// size of a small database page for typical key lengths.
const degree = 64

type leaf struct {
	epoch uint64
	keys  [][]byte
	vals  []interface{}
}

type inner struct {
	epoch uint64
	// keys[i] is the smallest key reachable under children[i+1].
	keys     [][]byte
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// epochClock allocates write epochs for one clone family. It is shared by
// every Tree handle descended from the same New/BulkLoad call, and advanced
// atomically so concurrent clones of sibling trees never collide.
type epochClock struct{ n atomic.Uint64 }

func (c *epochClock) next() uint64 { return c.n.Add(1) }

// cowCopies counts nodes path-copied by writers across every tree in the
// process — the feed for the storage.cow_node_copies metric. One atomic add
// per copied node; copies happen at most O(height) per mutation and only
// when the mutated path is shared with a snapshot.
var cowCopies atomic.Int64

// COWNodeCopies returns the process-wide count of copy-on-write node copies.
func COWNodeCopies() int64 { return cowCopies.Load() }

// Tree is an in-memory copy-on-write B+tree handle. The zero value is not
// usable; call New, BulkLoad, or Clone an existing handle.
//
// A Tree is single-writer: mutations and Clone calls on the same handle must
// be serialized by the caller. Distinct handles of the same family (a live
// tree and its snapshots) are fully independent — reads on one may run
// concurrently with writes on another.
type Tree struct {
	root   node
	size   int
	height int
	leaves int
	// epoch is the write epoch of this handle: nodes tagged with it were
	// created by this handle since its last Clone and may be mutated in
	// place; any other node is shared and must be path-copied first.
	epoch uint64
	clock *epochClock
	// copies counts nodes this handle has path-copied, for per-tree
	// memory-amplification accounting.
	copies int64
}

// New returns an empty tree starting its own clone family.
func New() *Tree {
	c := &epochClock{}
	t := &Tree{clock: c, epoch: c.next()}
	t.root = &leaf{epoch: t.epoch}
	t.height, t.leaves = 1, 1
	return t
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels from root to leaf, used to model the
// cost of a point lookup (one page read per level).
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf pages.
func (t *Tree) Leaves() int { return t.leaves }

// COWCopies returns how many nodes this handle has path-copied since it was
// created (counters are not inherited by clones).
func (t *Tree) COWCopies() int64 { return t.copies }

// Epoch returns the handle's current write epoch, for invariant checks.
func (t *Tree) Epoch() uint64 { return t.epoch }

// Get returns the value stored under key, if any.
func (t *Tree) Get(key []byte) (interface{}, bool) {
	l, _ := t.findLeaf(key)
	i, ok := l.search(key)
	if !ok {
		return nil, false
	}
	return l.vals[i], true
}

// pathEntry records one inner node on a descent plus the child index taken.
type pathEntry struct {
	in  *inner
	idx int
}

// findLeaf descends to the leaf that owns key and returns it with the
// descent path (root first).
func (t *Tree) findLeaf(key []byte) (*leaf, []pathEntry) {
	var path []pathEntry
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v, path
		case *inner:
			i := v.childIndex(key)
			path = append(path, pathEntry{v, i})
			n = v.children[i]
		}
	}
}

// childIndex returns the index of the child that may contain key.
func (in *inner) childIndex(key []byte) int {
	lo, hi := 0, len(in.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, in.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// search finds key within the leaf, returning its index and whether it was
// found; when not found the index is the insertion point.
func (l *leaf) search(key []byte) (int, bool) {
	lo, hi := 0, len(l.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(l.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.keys) && bytes.Equal(l.keys[lo], key) {
		return lo, true
	}
	return lo, false
}

// ownLeaf returns a leaf this handle may mutate, path-copying when the leaf
// is shared with another handle. Key and value slices are shared with the
// copy — both sides treat stored keys and rows as immutable.
func (t *Tree) ownLeaf(l *leaf) *leaf {
	if l.epoch == t.epoch {
		return l
	}
	t.copies++
	cowCopies.Add(1)
	return &leaf{
		epoch: t.epoch,
		keys:  append([][]byte(nil), l.keys...),
		vals:  append([]interface{}(nil), l.vals...),
	}
}

// ownInner is ownLeaf for inner nodes.
func (t *Tree) ownInner(in *inner) *inner {
	if in.epoch == t.epoch {
		return in
	}
	t.copies++
	cowCopies.Add(1)
	return &inner{
		epoch:    t.epoch,
		keys:     append([][]byte(nil), in.keys...),
		children: append([]node(nil), in.children...),
	}
}

// ownPath makes every node on the descent writable by this handle — leaf
// first, then each ancestor bottom-up, relinking child pointers and the root
// as copies are made — and returns the owned leaf. path entries are updated
// in place so callers keep working with owned nodes.
func (t *Tree) ownPath(l *leaf, path []pathEntry) *leaf {
	nl := t.ownLeaf(l)
	var child node = nl
	for d := len(path) - 1; d >= 0; d-- {
		in := t.ownInner(path[d].in)
		in.children[path[d].idx] = child
		path[d].in = in
		child = in
	}
	if len(path) > 0 {
		t.root = path[0].in
	} else {
		t.root = nl
	}
	return nl
}

// Put inserts or replaces the value under key and reports whether the key
// was newly inserted. The key is copied on insert; the replacement path
// copies only the shared portion of the descent.
func (t *Tree) Put(key []byte, val interface{}) bool {
	return t.put(key, val, true)
}

// PutOwned is Put without the defensive key copy: the caller hands over
// ownership of a freshly-encoded buffer it will never modify. Builders that
// encode keys per entry (index builds, batch loads) use it to skip one
// allocation per insert.
func (t *Tree) PutOwned(key []byte, val interface{}) bool {
	return t.put(key, val, false)
}

func (t *Tree) put(key []byte, val interface{}, copyKey bool) bool {
	l, path := t.findLeaf(key)
	i, found := l.search(key)
	if found {
		l = t.ownPath(l, path)
		l.vals[i] = val
		return false
	}
	l = t.ownPath(l, path)
	k := key
	if copyKey {
		k = append([]byte(nil), key...)
	}
	l.keys = append(l.keys, nil)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = k
	l.vals = append(l.vals, nil)
	copy(l.vals[i+1:], l.vals[i:])
	l.vals[i] = val
	t.size++
	if len(l.keys) > degree {
		t.splitLeaf(l, path)
	}
	return true
}

// splitLeaf splits an owned, overfull leaf. The right half is a fresh node
// at the writer's epoch; no shared node is touched.
func (t *Tree) splitLeaf(l *leaf, path []pathEntry) {
	mid := len(l.keys) / 2
	right := &leaf{
		epoch: t.epoch,
		keys:  append([][]byte(nil), l.keys[mid:]...),
		vals:  append([]interface{}(nil), l.vals[mid:]...),
	}
	l.keys = l.keys[:mid:mid]
	l.vals = l.vals[:mid:mid]
	t.leaves++
	t.insertIntoParent(path, l, right.keys[0], right)
}

// insertIntoParent splices right under the lowest path entry (already owned
// by this handle), growing a new root when the path is empty.
func (t *Tree) insertIntoParent(path []pathEntry, left node, sep []byte, right node) {
	if len(path) == 0 {
		t.root = &inner{epoch: t.epoch, keys: [][]byte{sep}, children: []node{left, right}}
		t.height++
		return
	}
	parent := path[len(path)-1].in
	i := parent.childIndex(sep)
	parent.keys = append(parent.keys, nil)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
	if len(parent.keys) > degree {
		t.splitInner(parent, path[:len(path)-1])
	}
}

func (t *Tree) splitInner(in *inner, path []pathEntry) {
	mid := len(in.keys) / 2
	sep := in.keys[mid]
	right := &inner{
		epoch:    t.epoch,
		keys:     append([][]byte(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	t.insertIntoParent(path, in, sep, right)
}

// Delete removes key and reports whether it was present. Underfull nodes
// are tolerated (no rebalancing), but a leaf that empties is pruned from its
// ancestors immediately so Leaves()-based page accounting stays faithful
// after delete-heavy workloads.
func (t *Tree) Delete(key []byte) bool {
	l, path := t.findLeaf(key)
	i, found := l.search(key)
	if !found {
		return false
	}
	l = t.ownPath(l, path)
	l.keys = append(l.keys[:i], l.keys[i+1:]...)
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	t.size--
	if len(l.keys) == 0 {
		t.pruneLeaf(path)
	}
	return true
}

// pruneLeaf removes a now-empty leaf (the bottom of an owned path) from the
// inner structure, pruning ancestors that would be left childless. The root
// leaf is kept as the empty tree's single page. Separators above the pruned
// subtree may end up lower than the actual minimum beneath them; that is
// safe — routing only requires separators to be lower bounds.
func (t *Tree) pruneLeaf(path []pathEntry) {
	if len(path) == 0 {
		return
	}
	// Walk up past ancestors that would become childless; they are pruned
	// together with the leaf.
	d := len(path) - 1
	for d >= 0 && len(path[d].in.children) == 1 {
		d--
	}
	if d < 0 {
		// Every ancestor had a single child: the tree is empty. Reset to a
		// fresh single-leaf tree.
		t.root = &leaf{epoch: t.epoch}
		t.height, t.leaves = 1, 1
		return
	}
	p, ci := path[d].in, path[d].idx
	// Dropping child ci drops one separator with it: keys[ci-1] bounds it
	// from the left, except for child 0 whose right bound is keys[0].
	ki := ci - 1
	if ki < 0 {
		ki = 0
	}
	p.keys = append(p.keys[:ki], p.keys[ki+1:]...)
	p.children = append(p.children[:ci], p.children[ci+1:]...)
	t.leaves--
}

// Item is one key/value pair handed to the bulk-construction paths.
type Item struct {
	Key []byte
	Val interface{}
}

// Bulk-construction fill factors. Leaves and inner nodes are packed to ~90%
// of capacity instead of 100% so a bulk-built tree absorbs follow-up Puts
// without immediately splitting every page, and so Leaves()/Height() page
// accounting matches what an incrementally-grown tree of the same size
// reports (incremental splits leave pages 50-100% full; 90% sits inside the
// same leaf-count ballpark while staying O(n/degree)).
const (
	bulkLeafFill = degree * 9 / 10 // entries per packed leaf
	bulkNodeFill = degree*9/10 + 1 // children per packed inner node
)

// BulkLoad builds a tree from strictly-increasing sorted items in O(n):
// items are packed directly into leaves and the inner levels are assembled
// bottom-up — no descents, no binary searches, no key copies. Ownership of
// the key slices transfers to the tree; callers must hand over
// freshly-encoded buffers they will not modify. Panics if the input is not
// strictly sorted (callers sort with bytes.Compare first).
func BulkLoad(items []Item) *Tree {
	c := &epochClock{}
	t := &Tree{clock: c, epoch: c.next()}
	bulkInto(t, items)
	return t
}

// bulkInto (re)initializes t from sorted items. Every node is created fresh
// at t's epoch; nodes of any previous contents are abandoned to snapshots
// that still reference them.
func bulkInto(t *Tree, items []Item) {
	if len(items) == 0 {
		t.root = &leaf{epoch: t.epoch}
		t.height, t.leaves, t.size = 1, 1, 0
		return
	}
	nLeaves := (len(items) + bulkLeafFill - 1) / bulkLeafFill
	// Distribute entries evenly so the last leaf is never a near-empty runt.
	base, extra := len(items)/nLeaves, len(items)%nLeaves
	nodes := make([]node, 0, nLeaves)
	lows := make([][]byte, 0, nLeaves)
	var prevKey []byte
	pos := 0
	for i := 0; i < nLeaves; i++ {
		cnt := base
		if i < extra {
			cnt++
		}
		l := &leaf{
			epoch: t.epoch,
			keys:  make([][]byte, cnt),
			vals:  make([]interface{}, cnt),
		}
		for j := 0; j < cnt; j++ {
			it := items[pos]
			if prevKey != nil && bytes.Compare(prevKey, it.Key) >= 0 {
				panic(fmt.Sprintf("btree: BulkLoad input not strictly sorted at %d", pos))
			}
			prevKey = it.Key
			l.keys[j] = it.Key
			l.vals[j] = it.Val
			pos++
		}
		nodes = append(nodes, l)
		lows = append(lows, l.keys[0])
	}
	t.leaves = nLeaves
	t.size = len(items)
	t.height = 1
	t.root = t.buildInnerLevels(nodes, lows)
}

// buildInnerLevels assembles inner levels bottom-up over nodes whose
// smallest reachable keys are lows, returning the root and bumping height
// once per level built.
func (t *Tree) buildInnerLevels(nodes []node, lows [][]byte) node {
	for len(nodes) > 1 {
		nGroups := (len(nodes) + bulkNodeFill - 1) / bulkNodeFill
		base, extra := len(nodes)/nGroups, len(nodes)%nGroups
		next := make([]node, 0, nGroups)
		nextLows := make([][]byte, 0, nGroups)
		pos := 0
		for g := 0; g < nGroups; g++ {
			cnt := base
			if g < extra {
				cnt++
			}
			in := &inner{
				epoch:    t.epoch,
				keys:     make([][]byte, cnt-1),
				children: make([]node, cnt),
			}
			copy(in.children, nodes[pos:pos+cnt])
			for j := 1; j < cnt; j++ {
				in.keys[j-1] = lows[pos+j]
			}
			next = append(next, in)
			nextLows = append(nextLows, lows[pos])
			pos += cnt
		}
		nodes, lows = next, nextLows
		t.height++
	}
	return nodes[0]
}

// AppendBulk appends strictly-increasing items, all greater than the
// current maximum key, in O(n + n/degree·height): the rightmost leaf is
// topped up, then whole packed leaves are spliced onto the rightmost spine.
// It reports whether the fast path applied; on false the tree is unchanged
// and the caller should fall back to Put. Ownership of the key slices
// transfers to the tree, as with BulkLoad.
func (t *Tree) AppendBulk(items []Item) bool {
	if len(items) == 0 {
		return true
	}
	for i := 1; i < len(items); i++ {
		if bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			return false
		}
	}
	if t.size == 0 {
		bulkInto(t, items)
		return true
	}
	last, path := t.rightmostLeaf()
	if bytes.Compare(last.keys[len(last.keys)-1], items[0].Key) >= 0 {
		return false
	}
	// All preconditions hold: the append happens. Own the rightmost spine
	// once; every node created from here on carries the writer's epoch, so
	// later splice iterations descend through owned nodes only.
	last = t.ownPath(last, path)
	pos := 0
	for pos < len(items) && len(last.keys) < bulkLeafFill {
		last.keys = append(last.keys, items[pos].Key)
		last.vals = append(last.vals, items[pos].Val)
		t.size++
		pos++
	}
	for pos < len(items) {
		cnt := len(items) - pos
		if cnt > bulkLeafFill {
			cnt = bulkLeafFill
		}
		nl := &leaf{
			epoch: t.epoch,
			keys:  make([][]byte, cnt),
			vals:  make([]interface{}, cnt),
		}
		for j := 0; j < cnt; j++ {
			nl.keys[j] = items[pos].Key
			nl.vals[j] = items[pos].Val
			pos++
		}
		t.leaves++
		t.size += cnt
		// Splice the new leaf onto the rightmost spine; splits propagate
		// through insertIntoParent exactly as for incremental growth. The
		// path must be recomputed per leaf because splits restructure it.
		prev, spine := t.rightmostLeaf()
		t.insertIntoParent(spine, prev, nl.keys[0], nl)
	}
	return true
}

// rightmostLeaf returns the rightmost leaf and its descent path.
func (t *Tree) rightmostLeaf() (*leaf, []pathEntry) {
	var path []pathEntry
	n := t.root
	for {
		switch v := n.(type) {
		case *leaf:
			return v, path
		case *inner:
			i := len(v.children) - 1
			path = append(path, pathEntry{v, i})
			n = v.children[i]
		}
	}
}

// Clone returns an independent handle over the same contents in O(1): the
// root pointer and page accounting are copied, every node is shared, and
// both handles receive fresh write epochs so neither can mutate a node the
// other reaches — the first write to a shared path copies it. Key bytes and
// row values stay shared for the life of both handles.
//
// Clone must be serialized with writes to the receiver (it reassigns the
// receiver's epoch); the returned snapshot may then be read concurrently
// with writes to the receiver.
func (t *Tree) Clone() *Tree {
	out := *t
	t.epoch = t.clock.next()
	out.epoch = t.clock.next()
	out.copies = 0
	return &out
}

// FillPercent returns the average leaf occupancy as a percentage of leaf
// capacity — the observability hook for bulk-load fill accounting.
func (t *Tree) FillPercent() float64 {
	if t.leaves == 0 {
		return 0
	}
	return 100 * float64(t.size) / float64(t.leaves*degree)
}

// Footprint is the reachable size of one tree handle, for
// memory-amplification accounting (bytes shared vs copied across a clone
// family). Bytes counts key payloads plus fixed per-node and per-entry
// overheads; row values are excluded (they are shared by construction — DML
// replaces rows, never mutates them).
type Footprint struct {
	Nodes int
	Bytes int64
}

const (
	nodeOverhead  = 48 // node header + slice headers
	entryOverhead = 40 // key slice header + value interface
	childOverhead = 8  // child pointer
)

func nodeBytes(n node) int64 {
	switch v := n.(type) {
	case *leaf:
		b := int64(nodeOverhead)
		for _, k := range v.keys {
			b += int64(len(k)) + entryOverhead
		}
		return b
	case *inner:
		b := int64(nodeOverhead)
		for _, k := range v.keys {
			b += int64(len(k)) + entryOverhead
		}
		return b + int64(len(v.children))*childOverhead
	}
	return 0
}

func (t *Tree) walk(fn func(n node)) {
	var rec func(n node)
	rec = func(n node) {
		fn(n)
		if in, ok := n.(*inner); ok {
			for _, c := range in.children {
				rec(c)
			}
		}
	}
	rec(t.root)
}

// Footprint walks the handle and sums its reachable nodes.
func (t *Tree) Footprint() Footprint {
	var f Footprint
	t.walk(func(n node) {
		f.Nodes++
		f.Bytes += nodeBytes(n)
	})
	return f
}

// SharedFootprint reports the nodes (by pointer identity) reachable from
// both handles — the structurally shared portion of a clone pair.
func (t *Tree) SharedFootprint(other *Tree) Footprint {
	seen := map[node]bool{}
	other.walk(func(n node) { seen[n] = true })
	var f Footprint
	t.walk(func(n node) {
		if seen[n] {
			f.Nodes++
			f.Bytes += nodeBytes(n)
		}
	})
	return f
}

// Iter is a forward iterator positioned on a sequence of entries. It holds
// a descent stack into the tree it was opened on: iterating a snapshot is
// stable under any concurrent DML on other handles of the family, while
// mutating the iterated handle itself mid-iteration is undefined (open the
// iterator on a Clone instead).
type Iter struct {
	stack        []pathEntry
	l            *leaf
	i            int
	hi           []byte // exclusive upper bound key, nil = unbounded
	hiInclusive  bool
	valid        bool
	leavesWalked int
}

// Seek returns an iterator positioned at the first entry with key >= from.
// A nil from starts at the beginning.
func (t *Tree) Seek(from []byte) *Iter {
	it := &Iter{}
	n := t.root
	for {
		in, ok := n.(*inner)
		if !ok {
			break
		}
		i := 0
		if from != nil {
			i = in.childIndex(from)
		}
		it.stack = append(it.stack, pathEntry{in, i})
		n = in.children[i]
	}
	it.l = n.(*leaf)
	if from == nil {
		it.i = -1
	} else {
		i, _ := it.l.search(from)
		it.i = i - 1
	}
	it.leavesWalked = 1
	it.advance()
	return it
}

// SeekRange returns an iterator over keys in [from, to). A nil bound is
// unbounded on that side. toInclusive makes the upper bound prefix-inclusive:
// keys equal to the bound or extending it byte-wise stay in range, so a
// composite-key tree can be scanned for "leading columns <= v" by passing the
// encoded v without manufacturing an artificial successor key.
func (t *Tree) SeekRange(from, to []byte, toInclusive bool) *Iter {
	it := t.Seek(from)
	it.hi = to
	it.hiInclusive = toInclusive
	it.checkBound()
	return it
}

// nextLeaf steps the descent stack to the next leaf in key order, returning
// false (and clearing l) at the end of the tree. Empty leaves cannot occur
// below inner nodes (Delete prunes them immediately), so the landed leaf
// always has entries.
func (it *Iter) nextLeaf() bool {
	for len(it.stack) > 0 {
		f := &it.stack[len(it.stack)-1]
		if f.idx+1 < len(f.in.children) {
			f.idx++
			n := f.in.children[f.idx]
			for {
				in, ok := n.(*inner)
				if !ok {
					it.l = n.(*leaf)
					it.i = 0
					return true
				}
				it.stack = append(it.stack, pathEntry{in, 0})
				n = in.children[0]
			}
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	it.l = nil
	return false
}

func (it *Iter) advance() {
	it.i++
	for it.l != nil && it.i >= len(it.l.keys) {
		if it.nextLeaf() {
			it.leavesWalked++
		}
	}
	it.valid = it.l != nil
	it.checkBound()
}

func (it *Iter) checkBound() {
	if !it.valid || it.hi == nil {
		return
	}
	if !it.inBound(it.l.keys[it.i]) {
		it.valid = false
	}
}

// inBound reports whether key is inside the iterator's upper bound. The
// admitted key set is always a contiguous range downward-closed in key order:
// exclusive bounds admit key < hi, prefix-inclusive bounds additionally admit
// hi itself and every key extending it.
func (it *Iter) inBound(key []byte) bool {
	c := bytes.Compare(key, it.hi)
	if it.hiInclusive {
		return c <= 0 || bytes.HasPrefix(key, it.hi)
	}
	return c < 0
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iter) Valid() bool { return it.valid }

// Key returns the current key. The slice must not be modified.
func (it *Iter) Key() []byte { return it.l.keys[it.i] }

// Value returns the current value.
func (it *Iter) Value() interface{} { return it.l.vals[it.i] }

// Next advances to the next entry.
func (it *Iter) Next() { it.advance() }

// ReadBatch copies up to max entries into vals (and keys, when non-nil) and
// advances past them, returning the number copied. It visits exactly the same
// entry sequence and walks exactly the same leaves as a Valid/Next loop —
// including the eager step into the next leaf after consuming a leaf's last
// entry — so LeavesWalked-based I/O accounting is identical either way. The
// fast path span-copies a whole leaf remainder with a single bound check on
// its last key, which is sound because the bound admits a downward-closed key
// range (see inBound).
func (it *Iter) ReadBatch(keys [][]byte, vals []interface{}, max int) int {
	n := 0
	for it.valid && n < max {
		l, i := it.l, it.i
		take := len(l.keys) - i
		if take > max-n {
			take = max - n
		}
		if it.hi != nil && !it.inBound(l.keys[i+take-1]) {
			// The span crosses the bound: copy the in-bound head and stop on
			// the first out-of-bound entry, like checkBound would.
			cut := 0
			for cut < take && it.inBound(l.keys[i+cut]) {
				cut++
			}
			copy(vals[n:], l.vals[i:i+cut])
			if keys != nil {
				copy(keys[n:], l.keys[i:i+cut])
			}
			it.i = i + cut
			it.valid = false
			return n + cut
		}
		copy(vals[n:], l.vals[i:i+take])
		if keys != nil {
			copy(keys[n:], l.keys[i:i+take])
		}
		n += take
		// Reposition on the last consumed entry and advance off it, so leaf
		// stepping and bound invalidation mirror per-entry iteration.
		it.i = i + take - 1
		it.advance()
	}
	return n
}

// LeavesWalked returns how many leaf pages the iterator has touched, for
// I/O accounting.
func (it *Iter) LeavesWalked() int { return it.leavesWalked }

// LeafLen returns the number of entries in the current leaf page, or 0 when
// the iterator is exhausted. Together with SkipLeaf it supports page-stride
// sampling (ANALYZE reads whole pages or skips them wholesale).
func (it *Iter) LeafLen() int {
	if !it.valid {
		return 0
	}
	return len(it.l.keys)
}

// SkipLeaf advances to the first entry of the next leaf page without
// visiting the remaining entries of the current one. The entered page
// counts as walked; the skipped remainder of the current page was already
// counted when the iterator entered it.
func (it *Iter) SkipLeaf() {
	if !it.valid {
		return
	}
	if !it.nextLeaf() {
		it.valid = false
		return
	}
	it.leavesWalked++
	it.valid = true
	it.checkBound()
}

// Validate checks tree invariants and returns an error describing the first
// violation. Beyond ordering, size and page accounting it verifies the
// copy-on-write invariants of the handle:
//
//   - no reachable node carries an epoch newer than the handle's write epoch
//     (a violation means another handle mutated structure this one can see);
//   - epochs never increase from parent to child (owned nodes are only ever
//     linked beneath owned nodes — path-copying is top-down complete);
//   - no epoch exceeds the family clock (a forged or corrupted tag).
//
// The fault and scenario suites run this per cycle on every live tree, so a
// cross-snapshot in-place mutation would surface as a structural violation
// there even when no snapshot is currently observing the damage.
func (t *Tree) Validate() error {
	var prev []byte
	count := 0
	for it := t.Seek(nil); it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			return fmt.Errorf("btree: keys out of order: %x >= %x", prev, it.Key())
		}
		prev = it.Key()
		count++
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but iterated %d", t.size, count)
	}
	// Cross-check the leaves counter against the set of leaves reachable
	// through the structure, and forbid empty leaves in a non-empty tree.
	reachable := 0
	var err error
	t.walk(func(n node) {
		if l, ok := n.(*leaf); ok {
			reachable++
			if len(l.keys) == 0 && t.size > 0 && err == nil {
				err = fmt.Errorf("btree: empty leaf reachable at position %d", reachable-1)
			}
		}
	})
	if err != nil {
		return err
	}
	if reachable != t.leaves {
		return fmt.Errorf("btree: leaves counter %d but structure reaches %d", t.leaves, reachable)
	}
	if t.clock != nil {
		limit := t.clock.n.Load()
		if t.epoch > limit {
			return fmt.Errorf("btree: handle epoch %d exceeds family clock %d", t.epoch, limit)
		}
	}
	return t.validateNode(t.root, nil, nil, t.epoch)
}

func (t *Tree) validateNode(n node, lo, hi []byte, maxEpoch uint64) error {
	switch v := n.(type) {
	case *leaf:
		if v.epoch > maxEpoch {
			return fmt.Errorf("btree: leaf epoch %d above parent/handle epoch %d (cross-snapshot mutation)", v.epoch, maxEpoch)
		}
		for _, k := range v.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: leaf key below lower bound")
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: leaf key above upper bound")
			}
		}
	case *inner:
		if v.epoch > maxEpoch {
			return fmt.Errorf("btree: inner epoch %d above parent/handle epoch %d (cross-snapshot mutation)", v.epoch, maxEpoch)
		}
		if len(v.children) != len(v.keys)+1 {
			return fmt.Errorf("btree: inner children/keys mismatch")
		}
		for i, c := range v.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = v.keys[i-1]
			}
			if i < len(v.keys) {
				chi = v.keys[i]
			}
			if err := t.validateNode(c, clo, chi, v.epoch); err != nil {
				return err
			}
		}
	}
	return nil
}
