package btree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func TestSortItemsMatchesComparisonSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000, 50000} {
		keys := map[string]bool{}
		for len(keys) < n {
			k := make([]byte, 1+r.Intn(24))
			r.Read(k)
			keys[string(k)] = true
		}
		items := make([]Item, 0, n)
		for k := range keys {
			items = append(items, Item{Key: []byte(k), Val: k})
		}
		want := append([]Item(nil), items...)
		sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i].Key, want[j].Key) < 0 })
		SortItems(items)
		for i := range items {
			if !bytes.Equal(items[i].Key, want[i].Key) || items[i].Val != want[i].Val {
				t.Fatalf("n=%d: mismatch at %d: %q vs %q", n, i, items[i].Key, want[i].Key)
			}
		}
	}
}

func TestSortItemsSharedPrefixes(t *testing.T) {
	// Long shared prefixes force deep radix recursion; the suffix fallback
	// must compare from the current depth, not from the key start.
	prefix := bytes.Repeat([]byte{0xab}, 40)
	var items []Item
	for i := 999; i >= 0; i-- {
		items = append(items, Item{Key: append(append([]byte(nil), prefix...), byte(i/256), byte(i%256)), Val: i})
	}
	// One key that is exactly the shared prefix: shorter sorts first.
	items = append(items, Item{Key: append([]byte(nil), prefix...), Val: -1})
	SortItems(items)
	if items[0].Val != -1 {
		t.Fatalf("shortest key not first: %v", items[0].Val)
	}
	for i := 1; i < len(items); i++ {
		if bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			t.Fatalf("out of order at %d", i)
		}
	}
}
