package btree

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzCOWSnapshotEquivalence drives a fuzz-chosen op sequence (put / delete /
// clone-snapshot) against the tree and a pair of model maps, then checks that
// the live tree matches the live model, the most recent snapshot matches the
// model frozen at clone time, and both sides pass the full COW Validate.
func FuzzCOWSnapshotEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 2, 0, 3, 1, 1, 0, 4})
	f.Add([]byte{2, 0, 0, 1, 0, 2, 0, 1, 2, 1, 0, 2, 0, 3})
	f.Add([]byte{0, 10, 0, 20, 0, 30, 2, 1, 10, 1, 20, 0, 40, 2, 1, 30})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New()
		liveModel := map[string]int{}
		var snap *Tree
		var snapModel map[string]int

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%3, ops[i+1]
			k := fuzzKey(arg)
			switch op {
			case 0:
				tr.Put(k, i)
				liveModel[string(k)] = i
			case 1:
				tr.Delete(k)
				delete(liveModel, string(k))
			case 2:
				snap = tr.Clone()
				snapModel = map[string]int{}
				for kk, vv := range liveModel {
					snapModel[kk] = vv
				}
			}
		}

		checkModel(t, "live", tr, liveModel)
		if snap != nil {
			checkModel(t, "snapshot", snap, snapModel)
			if err := snap.Validate(); err != nil {
				t.Fatalf("snapshot Validate: %v", err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("live Validate: %v", err)
		}
	})
}

func fuzzKey(b byte) []byte {
	k := make([]byte, 2)
	binary.BigEndian.PutUint16(k, uint16(b)*257)
	return k
}

// checkModel asserts the tree's full ordered scan equals the sorted model.
func checkModel(t *testing.T, label string, tr *Tree, model map[string]int) {
	t.Helper()
	if tr.Len() != len(model) {
		t.Fatalf("%s: Len=%d, model=%d", label, tr.Len(), len(model))
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := tr.Seek(nil)
	for _, k := range keys {
		if !it.Valid() {
			t.Fatalf("%s: scan ended early, want key %x", label, k)
		}
		if string(it.Key()) != k {
			t.Fatalf("%s: scan key %x, want %x", label, it.Key(), k)
		}
		if got := it.Value().(int); got != model[k] {
			t.Fatalf("%s: key %x value %d, want %d", label, k, got, model[k])
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatalf("%s: scan has extra key %x", label, it.Key())
	}
	// Point lookups agree too.
	for _, k := range keys {
		v, ok := tr.Get([]byte(k))
		if !ok || v.(int) != model[k] {
			t.Fatalf("%s: Get(%x) = %v,%v want %d", label, k, v, ok, model[k])
		}
	}
}
