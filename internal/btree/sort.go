package btree

import (
	"bytes"
	"sort"
)

// SortItems sorts items by bytewise key order. It is the companion to
// BulkLoad for callers whose entries are not naturally sorted (secondary
// index keys emitted in clustered order): an MSD radix sort over the key
// bytes, O(n·keylen) instead of O(n log n) comparisons, which is what makes
// sort-then-bulk-load competitive with the clustered fast append. Equal
// keys keep their relative order only if they are identical byte strings,
// which BulkLoad rejects anyway — callers must guarantee unique keys.
func SortItems(items []Item) {
	if len(items) < 2 {
		return
	}
	aux := make([]Item, len(items))
	radixSortItems(items, aux, 0)
}

// radixCutoff is the bucket size below which comparison sort beats another
// counting pass.
const radixCutoff = 64

func radixSortItems(items, aux []Item, depth int) {
	for len(items) > radixCutoff {
		// Bucket 0 holds keys exhausted at this depth; byte b lands in b+1.
		var counts [257]int
		for i := range items {
			counts[bucketOf(items[i].Key, depth)]++
		}
		var offsets [257]int
		sum := 0
		for b, c := range counts {
			offsets[b] = sum
			sum += c
		}
		pos := offsets
		for i := range items {
			b := bucketOf(items[i].Key, depth)
			aux[pos[b]] = items[i]
			pos[b]++
		}
		copy(items, aux[:len(items)])
		// Recurse into every byte bucket except the largest, which is handled
		// by the enclosing loop (tail-call elimination bounds the stack by the
		// number of distinct branching prefixes, not the key length).
		largest := -1
		for b := 1; b <= 256; b++ {
			if counts[b] > 1 && (largest < 0 || counts[b] > counts[largest]) {
				largest = b
			}
		}
		for b := 1; b <= 256; b++ {
			if b != largest && counts[b] > 1 {
				radixSortItems(items[offsets[b]:offsets[b]+counts[b]], aux, depth+1)
			}
		}
		if largest < 0 {
			return
		}
		items = items[offsets[largest] : offsets[largest]+counts[largest]]
		aux = aux[:len(items)]
		depth++
	}
	sort.Sort(itemSuffixSort{items, depth})
}

// bucketOf maps the key byte at depth to a counting bucket: 0 for exhausted
// keys (shorter keys sort first, matching bytes.Compare), 1+b otherwise.
func bucketOf(key []byte, depth int) int {
	if depth >= len(key) {
		return 0
	}
	return int(key[depth]) + 1
}

type itemSuffixSort struct {
	items []Item
	depth int
}

func (s itemSuffixSort) Len() int { return len(s.items) }
func (s itemSuffixSort) Less(i, j int) bool {
	a, b := s.items[i].Key, s.items[j].Key
	if s.depth < len(a) {
		a = a[s.depth:]
	} else {
		a = nil
	}
	if s.depth < len(b) {
		b = b[s.depth:]
	} else {
		b = nil
	}
	return bytes.Compare(a, b) < 0
}
func (s itemSuffixSort) Swap(i, j int) { s.items[i], s.items[j] = s.items[j], s.items[i] }
