package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// scan renders the full contents of a tree as one string, for byte-identical
// snapshot comparisons.
func scan(t *Tree) string {
	var b bytes.Buffer
	for it := t.Seek(nil); it.Valid(); it.Next() {
		fmt.Fprintf(&b, "%s=%v\n", it.Key(), it.Value())
	}
	return b.String()
}

// TestSnapshotReadStability is the differential snapshot test: open a
// snapshot, record its full scan, run interleaved DML on the live handle,
// and assert an iteration of the snapshot — including one opened mid-DML and
// one opened before any DML — is byte-identical to the pre-DML scan.
func TestSnapshotReadStability(t *testing.T) {
	live := New()
	for i := 0; i < 5000; i++ {
		live.Put(key(i), i)
	}
	snap := live.Clone()
	want := scan(snap)

	// An iterator opened on the snapshot BEFORE the DML must also survive it:
	// it holds node pointers that the live writer is forbidden to touch.
	early := snap.Seek(nil)

	r := rand.New(rand.NewSource(42))
	for op := 0; op < 8000; op++ {
		i := r.Intn(6000)
		switch op % 3 {
		case 0:
			live.Put(key(i), -i)
		case 1:
			live.Delete(key(i))
		case 2:
			live.Put([]byte(fmt.Sprintf("%08d-new", i)), op)
		}
		if op%1000 == 0 {
			if got := scan(snap); got != want {
				t.Fatalf("snapshot drifted after %d live ops", op+1)
			}
		}
	}

	if got := scan(snap); got != want {
		t.Fatal("snapshot not byte-identical to pre-DML scan after live DML")
	}
	var earlyScan bytes.Buffer
	for ; early.Valid(); early.Next() {
		fmt.Fprintf(&earlyScan, "%s=%v\n", early.Key(), early.Value())
	}
	if earlyScan.String() != want {
		t.Fatal("iterator opened before DML observed live mutations")
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid after live DML: %v", err)
	}
	if err := live.Validate(); err != nil {
		t.Fatalf("live tree invalid: %v", err)
	}
	if live.COWCopies() == 0 {
		t.Fatal("live writer should have path-copied shared nodes")
	}
}

// TestSnapshotScanDuringDML is the -race variant: concurrent readers iterate
// a frozen snapshot while the single writer churns the live handle. The
// race detector proves the writer never touches a node the snapshot reaches.
func TestSnapshotScanDuringDML(t *testing.T) {
	live := New()
	for i := 0; i < 3000; i++ {
		live.Put(key(i), i)
	}
	snap := live.Clone()
	want := scan(snap)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				if got := scan(snap); got != want {
					t.Error("concurrent snapshot scan drifted")
					return
				}
			}
		}()
	}
	r := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		i := r.Intn(4000)
		if op%4 == 0 {
			live.Delete(key(i))
		} else {
			live.Put(key(i), op)
		}
	}
	wg.Wait()
	if err := live.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIsConstantWork pins the O(1) clone contract structurally: a clone
// performs no node copies itself, and the first write after a clone copies
// exactly one root-to-leaf path.
func TestCloneIsConstantWork(t *testing.T) {
	live := New()
	for i := 0; i < 50000; i++ {
		live.Put(key(i), i)
	}
	before := live.COWCopies()
	snap := live.Clone()
	if live.COWCopies() != before || snap.COWCopies() != 0 {
		t.Fatal("Clone itself copied nodes")
	}
	live.Put(key(5), -5) // replace: no splits, pure path copy
	if got, want := live.COWCopies()-before, int64(live.Height()); got != want {
		t.Fatalf("first post-clone write copied %d nodes, want height %d", got, want)
	}
	// Writing the same path again mutates in place: no further copies.
	at := live.COWCopies()
	live.Put(key(5), -6)
	if live.COWCopies() != at {
		t.Fatal("second write to an owned path still copied nodes")
	}
}

// TestSharedFootprintAccounting checks the bytes-shared/bytes-copied
// accounting the storage benchmarks report: right after a clone everything
// is shared; after writes the shared portion shrinks by exactly the copied
// paths while the snapshot's own footprint is unchanged.
func TestSharedFootprintAccounting(t *testing.T) {
	live := New()
	for i := 0; i < 20000; i++ {
		live.Put(key(i), i)
	}
	snap := live.Clone()
	full := live.Footprint()
	if sh := live.SharedFootprint(snap); sh != full {
		t.Fatalf("post-clone shared %+v, want full footprint %+v", sh, full)
	}
	snapBefore := snap.Footprint()
	for i := 0; i < 1000; i++ {
		live.Put(key(i), -i)
	}
	sh := live.SharedFootprint(snap)
	lf := live.Footprint()
	if sh.Nodes >= lf.Nodes || sh.Bytes >= lf.Bytes {
		t.Fatalf("after writes shared %+v not below live %+v", sh, lf)
	}
	if copied := lf.Nodes - sh.Nodes; int64(copied) != live.COWCopies() {
		t.Fatalf("unshared nodes %d != recorded copies %d", copied, live.COWCopies())
	}
	if snap.Footprint() != snapBefore {
		t.Fatal("live writes changed the snapshot's footprint")
	}
}

// TestValidateDetectsEpochViolations forges the two corruption shapes the
// extended Validate exists to catch: a node tagged newer than its parent
// (an in-place mutation that skipped path-copying) and a node tagged ahead
// of the family clock.
func TestValidateDetectsEpochViolations(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put(key(i), i)
	}
	snap := tr.Clone()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// Forge: pretend a live writer mutated a leaf the snapshot can reach by
	// re-tagging it with the live handle's (newer) epoch.
	root := snap.root.(*inner)
	l := root.children[0].(*leaf)
	saved := l.epoch
	l.epoch = tr.epoch
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate missed a cross-snapshot epoch violation")
	}
	l.epoch = saved

	// Forge: an epoch beyond anything the family clock ever allocated.
	l.epoch = snap.clock.n.Load() + 10
	snap.epoch = l.epoch + 1 // keep parent/handle ordering valid
	if err := snap.Validate(); err == nil {
		t.Fatal("Validate missed an epoch beyond the family clock")
	}
}

// TestSnapshotChainsDeep exercises repeated snapshots of snapshots with
// interleaved writes at every level — the regression-detector pattern of
// holding several historical snapshots at once.
func TestSnapshotChainsDeep(t *testing.T) {
	tr := New()
	ref := map[string]interface{}{}
	r := rand.New(rand.NewSource(13))
	type held struct {
		tree *Tree
		want string
	}
	var snaps []held
	for round := 0; round < 8; round++ {
		for op := 0; op < 2000; op++ {
			i := r.Intn(3000)
			if r.Intn(4) == 0 {
				tr.Delete(key(i))
				delete(ref, string(key(i)))
			} else {
				tr.Put(key(i), round*10000+op)
				ref[string(key(i))] = round*10000 + op
			}
		}
		s := tr.Clone()
		snaps = append(snaps, held{s, scan(s)})
		// Every held snapshot must still read exactly as frozen.
		for d, h := range snaps {
			if scan(h.tree) != h.want {
				t.Fatalf("round %d: snapshot %d drifted", round, d)
			}
			if err := h.tree.Validate(); err != nil {
				t.Fatalf("round %d: snapshot %d invalid: %v", round, d, err)
			}
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("live Len = %d, model %d", tr.Len(), len(ref))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
