package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"aim/internal/btree"
	"aim/internal/catalog"
	"aim/internal/sqltypes"
)

// benchRows is the fixture size for the storage fast-path benchmarks: large
// enough that tree height and leaf-chain length dominate, small enough that
// the incremental baselines still finish in a benchtime.
const benchRows = 100_000

var (
	benchOnce  sync.Once
	benchState *Store
)

// benchFixture returns a shared 100k-row store: one table with two
// materialized secondary indexes, loaded through the sorted batch path.
func benchFixture(tb testing.TB) *Store {
	tb.Helper()
	benchOnce.Do(func() {
		def, err := catalog.NewTable("events", []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "user_id", Type: sqltypes.KindInt},
			{Name: "kind", Type: sqltypes.KindString},
			{Name: "day", Type: sqltypes.KindInt},
		}, []string{"id"})
		if err != nil {
			tb.Fatal(err)
		}
		s := NewStore()
		tbl, err := s.CreateTable(def)
		if err != nil {
			tb.Fatal(err)
		}
		kinds := []string{"view", "click", "buy", "hide"}
		rows := make([]sqltypes.Row, benchRows)
		for i := range rows {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64((i * 7) % 9973)),
				sqltypes.NewString(kinds[i%len(kinds)]),
				sqltypes.NewInt(int64(i % 365)),
			}
		}
		if err := tbl.InsertBatch(rows, nil); err != nil {
			tb.Fatal(err)
		}
		for _, ix := range []*catalog.Index{
			{Name: "ix_events_user", Table: "events", Columns: []string{"user_id"}},
			{Name: "ix_events_kind_day", Table: "events", Columns: []string{"kind", "day"}},
		} {
			if _, err := tbl.BuildIndex(ix, nil); err != nil {
				tb.Fatal(err)
			}
		}
		benchState = s
	})
	return benchState
}

// cloneIncremental is the pre-bulk-path baseline: rebuild every tree by
// re-inserting each entry with Put, O(n log n) per tree.
func cloneIncremental(s *Store) *Store {
	out := &Store{tables: map[string]*Table{}, Workers: s.Workers}
	for name, t := range s.tables {
		nt := &Table{Def: t.Def, data: btree.New(), indexes: map[string]*Index{}, bytes: t.bytes}
		for it := t.data.Seek(nil); it.Valid(); it.Next() {
			nt.data.Put(it.Key(), it.Value())
		}
		for iname, ix := range t.indexes {
			nix := &Index{Def: ix.Def, ordinals: ix.ordinals, pkOrds: ix.pkOrds, bytes: ix.bytes, tree: btree.New()}
			for it := ix.tree.Seek(nil); it.Valid(); it.Next() {
				nix.tree.Put(it.Key(), it.Value())
			}
			nt.indexes[iname] = nix
		}
		out.tables[name] = nt
	}
	return out
}

// buildIndexIncremental is the pre-bulk-path BuildIndex baseline, matching
// the seed implementation: per-row entry-key encode, defensive pk copy, and
// one key-copying Put per entry into a growing tree.
func buildIndexIncremental(t *Table, def *catalog.Index) *Index {
	ix := &Index{Def: def, pkOrds: t.Def.PrimaryKey, tree: btree.New()}
	for _, c := range def.Columns {
		ix.ordinals = append(ix.ordinals, t.Def.ColumnIndex(c))
	}
	for it := t.data.Seek(nil); it.Valid(); it.Next() {
		row := it.Value().(sqltypes.Row)
		pk := append([]byte(nil), it.Key()...)
		ix.tree.Put(ix.entryKey(row), pk)
		ix.bytes += ix.entrySize(row)
	}
	return ix
}

var benchSink interface{}

func BenchmarkStoreClone(b *testing.B) {
	s := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = s.Clone()
	}
}

func BenchmarkStoreCloneIncremental(b *testing.B) {
	s := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = cloneIncremental(s)
	}
}

var benchBuildDef = &catalog.Index{Name: "ix_bench_user_day", Table: "events", Columns: []string{"user_id", "day"}}

func BenchmarkBuildIndex(b *testing.B) {
	tbl := benchFixture(b).Table("events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := tbl.PrepareIndex(benchBuildDef, nil)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ix
	}
}

func BenchmarkBuildIndexIncremental(b *testing.B) {
	tbl := benchFixture(b).Table("events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = buildIndexIncremental(tbl, benchBuildDef)
	}
}

// TestBenchStorageReport runs the storage fast-path benchmarks against their
// incremental baselines and records the results in BENCH_storage.json at the
// repo root. Wall-clock sensitive, so it is env-gated out of plain
// `go test ./...`; `make benchstorage` invokes it.
func TestBenchStorageReport(t *testing.T) {
	if os.Getenv("AIM_BENCH_STORAGE") == "" {
		t.Skip("set AIM_BENCH_STORAGE=1 to run (invoked by make benchstorage)")
	}
	benchFixture(t)

	type entry struct {
		NsPerOp    int64 `json:"ns_per_op"`
		Iterations int   `json:"iterations"`
	}
	run := func(f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{NsPerOp: r.NsPerOp(), Iterations: r.N}
	}
	bench := map[string]entry{
		"StoreClone":            run(BenchmarkStoreClone),
		"StoreCloneIncremental": run(BenchmarkStoreCloneIncremental),
		"BuildIndex":            run(BenchmarkBuildIndex),
		"BuildIndexIncremental": run(BenchmarkBuildIndexIncremental),
	}
	ratio := func(base, fast string) float64 {
		return float64(bench[base].NsPerOp) / float64(bench[fast].NsPerOp)
	}
	report := struct {
		Rows       int                `json:"rows"`
		GoVersion  string             `json:"go_version"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Benchmarks map[string]entry   `json:"benchmarks"`
		Speedup    map[string]float64 `json:"speedup"`
	}{
		Rows:       benchRows,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: bench,
		Speedup: map[string]float64{
			"clone":       ratio("StoreCloneIncremental", "StoreClone"),
			"build_index": ratio("BuildIndexIncremental", "BuildIndex"),
		},
	}
	for name, sp := range report.Speedup {
		t.Logf("%s speedup: %.2fx", name, sp)
		if sp < 3 {
			t.Errorf("%s fast path only %.2fx over the incremental baseline, want >= 3x", name, sp)
		}
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_storage.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote BENCH_storage.json: clone %.2fx, build_index %.2fx\n",
		report.Speedup["clone"], report.Speedup["build_index"])
}
