package storage

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"aim/internal/btree"
	"aim/internal/catalog"
	"aim/internal/sqltypes"
)

// benchRows is the default fixture size for the storage fast-path
// benchmarks: large enough that tree height dominates, small enough that the
// incremental baselines still finish in a benchtime.
const benchRows = 100_000

var (
	benchMu     sync.Mutex
	benchStates = map[int]*Store{}
)

// benchFixtureSized returns a cached store with rows event rows and two
// materialized secondary indexes, loaded through the sorted batch path.
// Callers must not mutate it directly — take a Clone and mutate that; COW
// keeps the shared fixture frozen.
func benchFixtureSized(tb testing.TB, rows int) *Store {
	tb.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchStates[rows]; ok {
		return s
	}
	def, err := catalog.NewTable("events", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "user_id", Type: sqltypes.KindInt},
		{Name: "kind", Type: sqltypes.KindString},
		{Name: "day", Type: sqltypes.KindInt},
	}, []string{"id"})
	if err != nil {
		tb.Fatal(err)
	}
	s := NewStore()
	tbl, err := s.CreateTable(def)
	if err != nil {
		tb.Fatal(err)
	}
	kinds := []string{"view", "click", "buy", "hide"}
	batch := make([]sqltypes.Row, rows)
	for i := range batch {
		batch[i] = sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64((i * 7) % 9973)),
			sqltypes.NewString(kinds[i%len(kinds)]),
			sqltypes.NewInt(int64(i % 365)),
		}
	}
	if err := tbl.InsertBatch(batch, nil); err != nil {
		tb.Fatal(err)
	}
	for _, ix := range []*catalog.Index{
		{Name: "ix_events_user", Table: "events", Columns: []string{"user_id"}},
		{Name: "ix_events_kind_day", Table: "events", Columns: []string{"kind", "day"}},
	} {
		if _, err := tbl.BuildIndex(ix, nil); err != nil {
			tb.Fatal(err)
		}
	}
	benchStates[rows] = s
	return s
}

func benchFixture(tb testing.TB) *Store { return benchFixtureSized(tb, benchRows) }

// cloneIncremental is the pre-COW deep-copy baseline: rebuild every tree by
// re-inserting each entry with Put, O(n log n) per tree. This is what
// Store.Clone cost before snapshots became O(1) root-pointer copies.
func cloneIncremental(s *Store) *Store {
	out := &Store{tables: map[string]*Table{}, Workers: s.Workers}
	for name, t := range s.tables {
		nt := &Table{Def: t.Def, data: btree.New(), indexes: map[string]*Index{}, bytes: t.bytes}
		for it := t.data.Seek(nil); it.Valid(); it.Next() {
			nt.data.Put(it.Key(), it.Value())
		}
		for iname, ix := range t.indexes {
			nix := &Index{Def: ix.Def, ordinals: ix.ordinals, pkOrds: ix.pkOrds, bytes: ix.bytes, tree: btree.New()}
			for it := ix.tree.Seek(nil); it.Valid(); it.Next() {
				nix.tree.Put(it.Key(), it.Value())
			}
			nt.indexes[iname] = nix
		}
		out.tables[name] = nt
	}
	return out
}

// buildIndexIncremental is the pre-bulk-path BuildIndex baseline, matching
// the seed implementation: per-row entry-key encode, defensive pk copy, and
// one key-copying Put per entry into a growing tree.
func buildIndexIncremental(t *Table, def *catalog.Index) *Index {
	ix := &Index{Def: def, pkOrds: t.Def.PrimaryKey, tree: btree.New()}
	for _, c := range def.Columns {
		ix.ordinals = append(ix.ordinals, t.Def.ColumnIndex(c))
	}
	for it := t.data.Seek(nil); it.Valid(); it.Next() {
		row := it.Value().(sqltypes.Row)
		pk := append([]byte(nil), it.Key()...)
		ix.tree.Put(ix.entryKey(row), pk)
		ix.bytes += ix.entrySize(row)
	}
	return ix
}

// eventRow rebuilds the fixture row for id i, for benchmark DML churn.
func eventRow(i int64) sqltypes.Row {
	kinds := []string{"view", "click", "buy", "hide"}
	return sqltypes.Row{
		sqltypes.NewInt(i),
		sqltypes.NewInt((i * 7) % 9973),
		sqltypes.NewString(kinds[i%int64(len(kinds))]),
		sqltypes.NewInt(i % 365),
	}
}

var benchSink interface{}

func BenchmarkStoreClone(b *testing.B) {
	s := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = s.Clone()
	}
}

func BenchmarkStoreCloneIncremental(b *testing.B) {
	s := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = cloneIncremental(s)
	}
}

// BenchmarkStoreSnapshot measures the O(1) snapshot path across row counts;
// the report run gates these timings as row-count-independent.
func BenchmarkStoreSnapshot(b *testing.B) {
	for _, rows := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			s := benchFixtureSized(b, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := s.Clone()
				snap.Release()
				benchSink = snap
			}
		})
	}
}

// BenchmarkCloneUnderDML measures the snapshot cycle a shadow validation
// round performs: take a snapshot of a store whose COW head is under write
// churn, so every clone lands on a freshly-copied path structure.
func BenchmarkCloneUnderDML(b *testing.B) {
	live := benchFixture(b).Clone() // private COW head; the fixture stays frozen
	tbl := live.Table("events")
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 32; k++ {
			id := int64(r.Intn(benchRows))
			if err := tbl.Update(tbl.PKKey(eventRow(id)), eventRow(id), nil); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		snap := live.Clone()
		snap.Release()
		benchSink = snap
	}
}

var benchBuildDef = &catalog.Index{Name: "ix_bench_user_day", Table: "events", Columns: []string{"user_id", "day"}}

func BenchmarkBuildIndex(b *testing.B) {
	tbl := benchFixture(b).Table("events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := tbl.PrepareIndex(benchBuildDef, nil)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = ix
	}
}

func BenchmarkBuildIndexIncremental(b *testing.B) {
	tbl := benchFixture(b).Table("events")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = buildIndexIncremental(tbl, benchBuildDef)
	}
}

// storeFootprint sums the btree footprints of every table and index tree.
func storeFootprint(s *Store) btree.Footprint {
	var f btree.Footprint
	for _, t := range s.tables {
		df := t.data.Footprint()
		f.Nodes += df.Nodes
		f.Bytes += df.Bytes
		for _, ix := range t.indexes {
			xf := ix.tree.Footprint()
			f.Nodes += xf.Nodes
			f.Bytes += xf.Bytes
		}
	}
	return f
}

// storeShared sums the structurally shared footprint between matching trees
// of a clone pair.
func storeShared(live, snap *Store) btree.Footprint {
	var f btree.Footprint
	for name, t := range live.tables {
		st := snap.tables[name]
		sf := t.data.SharedFootprint(st.data)
		f.Nodes += sf.Nodes
		f.Bytes += sf.Bytes
		for iname, ix := range t.indexes {
			xf := ix.tree.SharedFootprint(st.indexes[iname].tree)
			f.Nodes += xf.Nodes
			f.Bytes += xf.Bytes
		}
	}
	return f
}

// TestBenchStorageReport runs the storage fast-path benchmarks against their
// baselines and records the results in BENCH_storage.json at the repo root:
// snapshot ns/op across 10k/100k/1M rows (gated row-count-independent),
// COW clone vs the old deep-copy clone (gated >= 100x at 100k rows), index
// build vs incremental (gated >= 3x), and the memory amplification of a
// snapshot after 1000 DML ops (bytes shared vs copied). Wall-clock
// sensitive, so it is env-gated out of plain `go test ./...`;
// `make benchstorage` invokes it.
func TestBenchStorageReport(t *testing.T) {
	if os.Getenv("AIM_BENCH_STORAGE") == "" {
		t.Skip("set AIM_BENCH_STORAGE=1 to run (invoked by make benchstorage)")
	}

	type entry struct {
		NsPerOp    int64 `json:"ns_per_op"`
		Iterations int   `json:"iterations"`
	}
	run := func(f func(*testing.B)) entry {
		r := testing.Benchmark(f)
		return entry{NsPerOp: r.NsPerOp(), Iterations: r.N}
	}
	bench := map[string]entry{
		"StoreClone":            run(BenchmarkStoreClone),
		"StoreCloneIncremental": run(BenchmarkStoreCloneIncremental),
		"CloneUnderDML":         run(BenchmarkCloneUnderDML),
		"BuildIndex":            run(BenchmarkBuildIndex),
		"BuildIndexIncremental": run(BenchmarkBuildIndexIncremental),
	}

	// Snapshot latency across row counts: O(1) means flat.
	snapshotNs := map[string]int64{}
	var minNs, maxNs int64
	for _, rows := range []int{10_000, 100_000, 1_000_000} {
		rows := rows
		e := run(func(b *testing.B) {
			s := benchFixtureSized(b, rows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := s.Clone()
				snap.Release()
				benchSink = snap
			}
		})
		snapshotNs[fmt.Sprintf("%d", rows)] = e.NsPerOp
		if minNs == 0 || e.NsPerOp < minNs {
			minNs = e.NsPerOp
		}
		if e.NsPerOp > maxNs {
			maxNs = e.NsPerOp
		}
	}
	flatness := float64(maxNs) / float64(minNs)
	t.Logf("snapshot ns/op by rows: %v (flatness %.2fx)", snapshotNs, flatness)
	if flatness > 10 {
		t.Errorf("snapshot latency varies %.2fx across 10k..1M rows, want row-count-independent (<= 10x)", flatness)
	}

	// Memory amplification: snapshot a 100k store, run 1000 DML ops on the
	// live head, and report how much of the store is still shared.
	const dmlOps = 1000
	live := benchFixture(t).Clone()
	snap := live.Clone()
	tbl := live.Table("events")
	r := rand.New(rand.NewSource(21))
	for i := 0; i < dmlOps; i++ {
		id := int64(r.Intn(benchRows))
		if err := tbl.Update(tbl.PKKey(eventRow(id)), eventRow(id), nil); err != nil {
			t.Fatal(err)
		}
	}
	total := storeFootprint(live)
	shared := storeShared(live, snap)
	snap.Release()
	live.Release()

	ratio := func(base, fast string) float64 {
		return float64(bench[base].NsPerOp) / float64(bench[fast].NsPerOp)
	}
	report := struct {
		Rows           int                `json:"rows"`
		GoVersion      string             `json:"go_version"`
		GOMAXPROCS     int                `json:"gomaxprocs"`
		Benchmarks     map[string]entry   `json:"benchmarks"`
		SnapshotNsRows map[string]int64   `json:"snapshot_ns_by_rows"`
		CloneFlatness  float64            `json:"clone_flatness_ratio"`
		Speedup        map[string]float64 `json:"speedup"`
		Memory         struct {
			DMLOps        int     `json:"dml_ops"`
			LiveBytes     int64   `json:"live_bytes"`
			SharedBytes   int64   `json:"shared_bytes"`
			CopiedBytes   int64   `json:"copied_bytes"`
			SharedPercent float64 `json:"shared_percent"`
		} `json:"memory_amplification"`
	}{
		Rows:           benchRows,
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Benchmarks:     bench,
		SnapshotNsRows: snapshotNs,
		CloneFlatness:  flatness,
		Speedup: map[string]float64{
			"clone":       ratio("StoreCloneIncremental", "StoreClone"),
			"build_index": ratio("BuildIndexIncremental", "BuildIndex"),
		},
	}
	report.Memory.DMLOps = dmlOps
	report.Memory.LiveBytes = total.Bytes
	report.Memory.SharedBytes = shared.Bytes
	report.Memory.CopiedBytes = total.Bytes - shared.Bytes
	report.Memory.SharedPercent = 100 * float64(shared.Bytes) / float64(total.Bytes)

	t.Logf("clone speedup: %.0fx, build_index speedup: %.2fx", report.Speedup["clone"], report.Speedup["build_index"])
	t.Logf("memory after %d DML ops: %.1f%% shared (%d of %d bytes)",
		dmlOps, report.Memory.SharedPercent, shared.Bytes, total.Bytes)
	if report.Speedup["clone"] < 100 {
		t.Errorf("COW clone only %.0fx over the deep-copy baseline at %d rows, want >= 100x", report.Speedup["clone"], benchRows)
	}
	if report.Speedup["build_index"] < 3 {
		t.Errorf("build_index fast path only %.2fx over the incremental baseline, want >= 3x", report.Speedup["build_index"])
	}
	if report.Memory.SharedPercent < 50 {
		t.Errorf("only %.1f%% of the store shared after %d DML ops — structural sharing is not holding", report.Memory.SharedPercent, dmlOps)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_storage.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote BENCH_storage.json: clone %.0fx, flatness %.2fx, shared %.1f%%\n",
		report.Speedup["clone"], flatness, report.Memory.SharedPercent)
}
