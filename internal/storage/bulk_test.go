package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"aim/internal/catalog"
	"aim/internal/obs"
	"aim/internal/sqltypes"
)

// seededStore builds a store with two tables, secondary indexes, and rows
// inserted in a shuffled (non-PK) order so clone equivalence is exercised
// on trees grown incrementally.
func seededStore(t testing.TB, rows int) *Store {
	t.Helper()
	s := NewStore()
	users, err := catalog.NewTable("users", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "name", Type: sqltypes.KindString},
		{Name: "age", Type: sqltypes.KindInt},
		{Name: "city", Type: sqltypes.KindString},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := catalog.NewTable("orders", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "user_id", Type: sqltypes.KindInt},
		{Name: "amount", Type: sqltypes.KindInt},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	ut, _ := s.CreateTable(users)
	ot, _ := s.CreateTable(orders)
	r := rand.New(rand.NewSource(17))
	for _, i := range r.Perm(rows) {
		if err := ut.Insert(userRow(int64(i), fmt.Sprintf("u%d", i), int64(i%80), fmt.Sprintf("c%d", i%13)), nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range r.Perm(rows * 2) {
		row := sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % rows)), sqltypes.NewInt(int64(i % 997))}
		if err := ot.Insert(row, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ut.BuildIndex(&catalog.Index{Name: "u_city_age", Table: "users", Columns: []string{"city", "age"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ot.BuildIndex(&catalog.Index{Name: "o_user", Table: "orders", Columns: []string{"user_id"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ot.BuildIndex(&catalog.Index{Name: "o_amount", Table: "orders", Columns: []string{"amount"}}, nil); err != nil {
		t.Fatal(err)
	}
	return s
}

// renderStore serializes every table and index entry plus the page
// accounting, for byte-identical comparisons.
func renderStore(s *Store) string {
	var b strings.Builder
	var names []string
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		fmt.Fprintf(&b, "table %s rows=%d bytes=%d leaves=%d height=%d\n",
			name, t.RowCount(), t.DataSize(), t.Data().Leaves(), t.Data().Height())
		for it := t.Data().Seek(nil); it.Valid(); it.Next() {
			fmt.Fprintf(&b, "  %x -> %v\n", it.Key(), it.Value())
		}
		var ixNames []string
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			ix := t.indexes[n]
			fmt.Fprintf(&b, "index %s len=%d bytes=%d leaves=%d height=%d\n",
				n, ix.Len(), ix.SizeBytes(), ix.Tree().Leaves(), ix.Tree().Height())
			for it := ix.Tree().Seek(nil); it.Valid(); it.Next() {
				fmt.Fprintf(&b, "  %x -> %x\n", it.Key(), it.Value())
			}
		}
	}
	return b.String()
}

func TestCloneBulkEquivalence(t *testing.T) {
	s := seededStore(t, 500)
	clone := s.Clone()
	if got, want := renderStore(clone), renderStore(s); got != want {
		t.Fatal("clone is not entry-identical to the source")
	}
	// Tree invariants hold on every cloned tree.
	for _, tbl := range clone.tables {
		if err := tbl.Data().Validate(); err != nil {
			t.Fatal(err)
		}
		for _, ix := range tbl.indexes {
			if err := ix.Tree().Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Clone isolation: mutations on one side must not appear on the other.
	ct := clone.Table("users")
	if err := ct.Insert(userRow(100000, "new", 1, "zz"), nil); err != nil {
		t.Fatal(err)
	}
	if !ct.DeleteByPK(ct.PKKey(userRow(3, "", 0, "")), nil) {
		t.Fatal("delete on clone failed")
	}
	st := s.Table("users")
	if _, ok := st.GetByPK(st.PKKey(userRow(100000, "", 0, "")), nil); ok {
		t.Fatal("clone insert leaked into source")
	}
	if _, ok := st.GetByPK(st.PKKey(userRow(3, "", 0, "")), nil); !ok {
		t.Fatal("clone delete leaked into source")
	}
}

func TestCloneDeterministicAcrossWorkers(t *testing.T) {
	s := seededStore(t, 300)
	var want string
	for _, workers := range []int{1, 2, 8} {
		s.Workers = workers
		got := renderStore(s.Clone())
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("clone at workers=%d diverged from workers=1", workers)
		}
	}
	// Instrumentation must not perturb the clone either.
	Instrument(obs.NewRegistry())
	defer Instrument(nil)
	s.Workers = 4
	if renderStore(s.Clone()) != want {
		t.Fatal("instrumented clone diverged")
	}
}

func TestCloneInheritsWorkers(t *testing.T) {
	s := seededStore(t, 10)
	s.Workers = 3
	if got := s.Clone().Workers; got != 3 {
		t.Fatalf("clone Workers = %d, want 3", got)
	}
}

func TestBuildIndexBulkMatchesIncremental(t *testing.T) {
	s := seededStore(t, 400)
	tbl := s.Table("users")
	var m Metrics
	ix, err := tbl.BuildIndex(&catalog.Index{Name: "u_age", Table: "users", Columns: []string{"age"}}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != tbl.RowCount() {
		t.Fatalf("index len %d, rows %d", ix.Len(), tbl.RowCount())
	}
	if m.RowsRead != int64(tbl.RowCount()) || m.IndexWrites != int64(tbl.RowCount()) {
		t.Fatalf("metrics = %+v", m)
	}
	// Reference: the entry set produced by per-row maintenance.
	ref := NewTable(tbl.Def)
	for it := tbl.Data().Seek(nil); it.Valid(); it.Next() {
		if err := ref.Insert(it.Value().(sqltypes.Row), nil); err != nil {
			t.Fatal(err)
		}
	}
	rix, err := ref.BuildIndex(&catalog.Index{Name: "u_age", Table: "users", Columns: []string{"age"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ia, ib := ix.Tree().Seek(nil), rix.Tree().Seek(nil)
	for ib.Valid() {
		if !ia.Valid() || string(ia.Key()) != string(ib.Key()) || string(ia.Value().([]byte)) != string(ib.Value().([]byte)) {
			t.Fatal("bulk-built index diverged from incremental reference")
		}
		ia.Next()
		ib.Next()
	}
	if ia.Valid() {
		t.Fatal("bulk-built index has extra entries")
	}
}

func TestInsertBatchSortedFastPath(t *testing.T) {
	mk := func() *Table { return newUsersTable(t) }
	rows := make([]sqltypes.Row, 2000)
	for i := range rows {
		rows[i] = userRow(int64(i), fmt.Sprintf("u%d", i), int64(i%70), fmt.Sprintf("c%d", i%9))
	}

	batched := mk()
	var bm Metrics
	if err := batched.InsertBatch(rows, &bm); err != nil {
		t.Fatal(err)
	}
	serial := mk()
	for _, row := range rows {
		if err := serial.Insert(row, nil); err != nil {
			t.Fatal(err)
		}
	}
	if batched.RowCount() != serial.RowCount() || batched.DataSize() != serial.DataSize() {
		t.Fatalf("batch: rows=%d bytes=%d, serial: rows=%d bytes=%d",
			batched.RowCount(), batched.DataSize(), serial.RowCount(), serial.DataSize())
	}
	ia, ib := batched.Data().Seek(nil), serial.Data().Seek(nil)
	for ib.Valid() {
		if !ia.Valid() || string(ia.Key()) != string(ib.Key()) {
			t.Fatal("batched clustered tree diverged")
		}
		ia.Next()
		ib.Next()
	}
	if err := batched.Data().Validate(); err != nil {
		t.Fatal(err)
	}
	if bm.RowWrites != 2000 {
		t.Fatalf("RowWrites = %d", bm.RowWrites)
	}
	// The bulk path must charge far fewer page writes than one descent per
	// row.
	if bm.PageReads >= 2000 {
		t.Fatalf("bulk path charged %d page reads", bm.PageReads)
	}

	// A second sorted batch appends onto the non-empty table.
	more := make([]sqltypes.Row, 500)
	for i := range more {
		more[i] = userRow(int64(2000+i), "x", 1, "c")
	}
	if err := batched.InsertBatch(more, nil); err != nil {
		t.Fatal(err)
	}
	if batched.RowCount() != 2500 {
		t.Fatalf("RowCount = %d", batched.RowCount())
	}
	if err := batched.Data().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchMaintainsIndexes(t *testing.T) {
	tbl := newUsersTable(t)
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "by_city", Table: "users", Columns: []string{"city"}}, nil); err != nil {
		t.Fatal(err)
	}
	rows := make([]sqltypes.Row, 1000)
	for i := range rows {
		rows[i] = userRow(int64(i), "u", int64(i%50), fmt.Sprintf("c%02d", i%17))
	}
	if err := tbl.InsertBatch(rows, nil); err != nil {
		t.Fatal(err)
	}
	ix := tbl.Index("by_city")
	if ix.Len() != 1000 {
		t.Fatalf("index len = %d", ix.Len())
	}
	if err := ix.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBatchUnsortedFallback(t *testing.T) {
	tbl := newUsersTable(t)
	rows := []sqltypes.Row{
		userRow(5, "e", 5, "c"),
		userRow(1, "a", 1, "c"),
		userRow(3, "c", 3, "c"),
	}
	if err := tbl.InsertBatch(rows, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 3 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	if err := tbl.Data().Validate(); err != nil {
		t.Fatal(err)
	}
	// Duplicates within an unsorted batch fail at the offending row.
	if err := tbl.InsertBatch([]sqltypes.Row{userRow(10, "x", 1, "c"), userRow(5, "dup", 1, "c")}, nil); err == nil {
		t.Fatal("duplicate accepted")
	}
	// A sorted batch overlapping existing keys routes to the fallback and
	// fails cleanly too.
	if err := tbl.InsertBatch([]sqltypes.Row{userRow(3, "dup", 1, "c"), userRow(20, "y", 1, "c")}, nil); err == nil {
		t.Fatal("overlapping duplicate accepted")
	}
}

func TestInsertBatchIsolatedFromCaller(t *testing.T) {
	tbl := newUsersTable(t)
	rows := []sqltypes.Row{userRow(1, "ann", 30, "sf")}
	if err := tbl.InsertBatch(rows, nil); err != nil {
		t.Fatal(err)
	}
	rows[0][1] = sqltypes.NewString("mutated")
	got, _ := tbl.GetByPK(tbl.PKKey(userRow(1, "", 0, "")), nil)
	if got[1].Str() != "ann" {
		t.Fatal("stored row aliases caller's slice")
	}
}
