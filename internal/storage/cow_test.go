package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"aim/internal/obs"
)

// dmlChurn runs a deterministic mix of inserts, updates, and deletes against
// the live store's users table.
func dmlChurn(t testing.TB, s *Store, seed int64, ops, keyspace int) {
	t.Helper()
	tbl := s.Table("users")
	r := rand.New(rand.NewSource(seed))
	for op := 0; op < ops; op++ {
		i := int64(r.Intn(keyspace))
		key := tbl.PKKey(userRow(i, "", 0, ""))
		switch op % 3 {
		case 0:
			row := userRow(i, fmt.Sprintf("mut%d", op), i%80, "cX")
			if _, ok := tbl.GetByPK(key, nil); ok {
				if err := tbl.Update(key, row, nil); err != nil {
					t.Fatal(err)
				}
			} else if err := tbl.Insert(row, nil); err != nil {
				t.Fatal(err)
			}
		case 1:
			tbl.DeleteByPK(key, nil)
		case 2:
			row := userRow(int64(keyspace)+int64(op), fmt.Sprintf("new%d", op), int64(op%80), "cY")
			if err := tbl.Insert(row, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestStoreSnapshotStabilityUnderDML is the store-level differential test:
// an O(1) snapshot must render byte-identically to its clone-time state while
// the live store absorbs inserts, updates, and deletes — across base tables
// and every secondary index.
func TestStoreSnapshotStabilityUnderDML(t *testing.T) {
	s := seededStore(t, 2000)
	snap := s.Clone()
	defer snap.Release()
	want := renderStore(snap)

	dmlChurn(t, s, 99, 5000, 2500)

	if got := renderStore(snap); got != want {
		t.Fatal("snapshot render drifted under live DML")
	}
	for _, tbl := range snap.tables {
		if err := tbl.Data().Validate(); err != nil {
			t.Fatalf("snapshot table %s: %v", tbl.Def.Name, err)
		}
		for _, ix := range tbl.indexes {
			if err := ix.Tree().Validate(); err != nil {
				t.Fatalf("snapshot index %s: %v", ix.Def.Name, err)
			}
		}
	}
	for _, tbl := range s.tables {
		if err := tbl.Data().Validate(); err != nil {
			t.Fatalf("live table %s: %v", tbl.Def.Name, err)
		}
		for _, ix := range tbl.indexes {
			if err := ix.Tree().Validate(); err != nil {
				t.Fatalf("live index %s: %v", ix.Def.Name, err)
			}
		}
	}
}

// TestSnapshotScrapeDuringDML is the -race store variant: concurrent
// goroutines render the frozen snapshot and scrape an instrumented registry
// while the main goroutine runs DML against the live store — the pattern a
// telemetry scrape hits when it lands mid shadow-validation.
func TestSnapshotScrapeDuringDML(t *testing.T) {
	r := obs.NewRegistry()
	Instrument(r)
	defer Instrument(nil)

	s := seededStore(t, 1000)
	snap := s.Clone()
	defer snap.Release()
	want := renderStore(snap)

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				if renderStore(snap) != want {
					t.Error("concurrent snapshot render drifted")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 50; rep++ {
			snap := r.Snapshot()
			if _, ok := snap.Gauges["storage.cow_node_copies"]; !ok {
				t.Error("scrape missing storage.cow_node_copies")
				return
			}
		}
	}()
	dmlChurn(t, s, 7, 8000, 1200)
	wg.Wait()
}

// TestSnapshotMetrics checks the new observability surface end to end:
// snapshots_live tracks Clone/Release, shared_bytes reports the structurally
// shared store size at clone time, and cow_node_copies advances as the live
// writer path-copies shared nodes.
func TestSnapshotMetrics(t *testing.T) {
	r := obs.NewRegistry()
	Instrument(r)
	defer Instrument(nil)

	s := seededStore(t, 500)
	copiesBefore := r.Snapshot().Gauges["storage.cow_node_copies"]

	snap := s.Clone()
	g := r.Snapshot().Gauges
	if got := g["storage.snapshots_live"]; got != 1 {
		t.Fatalf("snapshots_live after clone = %v, want 1", got)
	}
	if got := g["storage.shared_bytes"]; got <= 0 {
		t.Fatalf("shared_bytes after clone = %v, want > 0", got)
	}

	second := s.Clone()
	if got := r.Snapshot().Gauges["storage.snapshots_live"]; got != 2 {
		t.Fatalf("snapshots_live after second clone = %v, want 2", got)
	}

	dmlChurn(t, s, 3, 500, 600)
	if got := r.Snapshot().Gauges["storage.cow_node_copies"]; got <= copiesBefore {
		t.Fatalf("cow_node_copies did not advance under DML: %v -> %v", copiesBefore, got)
	}

	snap.Release()
	snap.Release() // idempotent
	second.Release()
	if got := r.Snapshot().Gauges["storage.snapshots_live"]; got != 0 {
		t.Fatalf("snapshots_live after releases = %v, want 0", got)
	}

	// Release on a non-snapshot (origin) store is a no-op.
	s.Release()
	if got := r.Snapshot().Gauges["storage.snapshots_live"]; got != 0 {
		t.Fatalf("snapshots_live after origin Release = %v, want 0", got)
	}
}

// TestSnapshotSharedFootprint ties store-level clones to the btree
// amplification accounting: immediately after a clone the users trees share
// everything; after DML the shared set shrinks while the snapshot side is
// untouched.
func TestSnapshotSharedFootprint(t *testing.T) {
	s := seededStore(t, 2000)
	snap := s.Clone()
	defer snap.Release()

	live := s.Table("users").Data()
	frozen := snap.Table("users").Data()
	if live.SharedFootprint(frozen) != live.Footprint() {
		t.Fatal("clone did not share the full users tree")
	}
	before := frozen.Footprint()
	dmlChurn(t, s, 11, 2000, 2500)
	sh := live.SharedFootprint(frozen)
	if sh.Bytes >= live.Footprint().Bytes {
		t.Fatal("shared bytes did not shrink under DML")
	}
	if frozen.Footprint() != before {
		t.Fatal("DML changed the snapshot tree footprint")
	}
}
