// Package storage implements the row store: clustered primary-key tables
// backed by B+trees, secondary indexes maintained on every DML, and
// page/row-level accounting used by the cost model and workload monitor.
//
// A secondary index entry is keyed by enc(index columns..., primary key
// columns...) so that duplicate index-column values remain unique, exactly
// like InnoDB secondary indexes; the entry value is the primary-key encoding
// used for the back-lookup into the clustered tree.
package storage

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"aim/internal/btree"
	"aim/internal/catalog"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/sqltypes"
)

// metricsSet bundles the storage layer's observability handles so they swap
// atomically as a unit (same pattern as internal/pool).
type metricsSet struct {
	bulkRows     *obs.Counter   // entries loaded through a bulk path
	clones       *obs.Counter   // store snapshots taken
	snapshots    *obs.Gauge     // snapshot handles taken minus released
	sharedBytes  *obs.Gauge     // store bytes structurally shared at the last snapshot
	cloneSeconds *obs.Histogram // wall clock per Store.Clone
	buildSeconds *obs.Histogram // wall clock per index build
	leafFill     *obs.Histogram // leaf fill % of bulk-built trees
}

// instr holds the active metrics set; nil means instrumentation is off.
var instr atomic.Pointer[metricsSet]

// Instrument attaches storage metrics to the registry (nil detaches):
// storage.{bulk_rows,clones} counters, the
// storage.{snapshots_live,shared_bytes} gauges, the monotone
// storage.cow_node_copies gauge (fed by the btree writer's path-copy
// counter, sampled at scrape time), and the
// storage.{clone_seconds,index_build_seconds,bulk_leaf_fill} histograms.
// Metrics never influence behaviour — clones and builds are byte-identical
// with instrumentation on or off.
func Instrument(r *obs.Registry) {
	if r == nil {
		instr.Store(nil)
		return
	}
	r.GaugeFunc("storage.cow_node_copies", btree.COWNodeCopies)
	instr.Store(&metricsSet{
		bulkRows:     r.Counter("storage.bulk_rows"),
		clones:       r.Counter("storage.clones"),
		snapshots:    r.Gauge("storage.snapshots_live"),
		sharedBytes:  r.Gauge("storage.shared_bytes"),
		cloneSeconds: r.Histogram("storage.clone_seconds"),
		buildSeconds: r.Histogram("storage.index_build_seconds"),
		leafFill:     r.Histogram("storage.bulk_leaf_fill"),
	})
}

// Metrics accumulates physical work done by storage operations. The
// executor aggregates these into per-query execution statistics.
type Metrics struct {
	RowsRead    int64 // rows fetched from base tables or index entries visited
	PageReads   int64 // B+tree pages touched (descents + leaves walked)
	IndexWrites int64 // secondary index entry mutations
	RowWrites   int64 // base row mutations
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.RowsRead += other.RowsRead
	m.PageReads += other.PageReads
	m.IndexWrites += other.IndexWrites
	m.RowWrites += other.RowWrites
}

// Index is a materialized secondary index.
type Index struct {
	Def      *catalog.Index
	tree     *btree.Tree
	ordinals []int // table column ordinals of the key columns
	pkOrds   []int
	bytes    int64
}

// Tree exposes the underlying B+tree for scans.
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Ordinals returns the table column ordinals of the index key columns.
func (ix *Index) Ordinals() []int { return ix.ordinals }

// SizeBytes returns the approximate materialized size of the index.
func (ix *Index) SizeBytes() int64 { return ix.bytes }

// Len returns the number of entries.
func (ix *Index) Len() int { return ix.tree.Len() }

// entryKey builds the full index entry key for a row.
func (ix *Index) entryKey(row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, 0, len(ix.ordinals)+len(ix.pkOrds))
	for _, o := range ix.ordinals {
		vals = append(vals, row[o])
	}
	for _, o := range ix.pkOrds {
		vals = append(vals, row[o])
	}
	return sqltypes.EncodeKey(nil, vals...)
}

func (ix *Index) entrySize(row sqltypes.Row) int64 {
	n := 0
	for _, o := range ix.ordinals {
		n += row[o].StorageSize()
	}
	for _, o := range ix.pkOrds {
		n += row[o].StorageSize() * 2 // key suffix + value payload
	}
	return int64(n) + 16 // per-entry overhead
}

// Table is a clustered table plus its materialized secondary indexes.
type Table struct {
	Def     *catalog.Table
	data    *btree.Tree // pk key -> sqltypes.Row
	indexes map[string]*Index
	bytes   int64
}

// NewTable creates an empty table for the definition.
func NewTable(def *catalog.Table) *Table {
	return &Table{Def: def, data: btree.New(), indexes: map[string]*Index{}}
}

// Data exposes the clustered tree for scans.
func (t *Table) Data() *btree.Tree { return t.data }

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return t.data.Len() }

// DataSize returns the approximate clustered data size in bytes.
func (t *Table) DataSize() int64 { return t.bytes }

// Indexes returns the materialized secondary indexes keyed by lower-cased
// index name.
func (t *Table) Indexes() map[string]*Index { return t.indexes }

// Index returns the named materialized index, or nil.
func (t *Table) Index(name string) *Index { return t.indexes[strings.ToLower(name)] }

// PKKey builds the clustered key for a full row.
func (t *Table) PKKey(row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(t.Def.PrimaryKey))
	for i, o := range t.Def.PrimaryKey {
		vals[i] = row[o]
	}
	return sqltypes.EncodeKey(nil, vals...)
}

// Insert adds a row, maintaining every secondary index. It fails on
// duplicate primary keys or column-count mismatch.
func (t *Table) Insert(row sqltypes.Row, m *Metrics) error {
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, len(t.Def.Columns), len(row))
	}
	key := t.PKKey(row)
	if _, exists := t.data.Get(key); exists {
		return fmt.Errorf("storage: duplicate primary key in table %s", t.Def.Name)
	}
	stored := row.Clone()
	// PKKey and entryKey encode fresh buffers: hand ownership to the trees
	// instead of paying Put's defensive copy.
	t.data.PutOwned(key, stored)
	t.bytes += int64(stored.Size()) + 16
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		ix.tree.PutOwned(ix.entryKey(stored), key)
		ix.bytes += ix.entrySize(stored)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return nil
}

// InsertBatch adds rows in one call. When the batch arrives in strictly
// increasing primary-key order and appends beyond the table's current
// maximum key (the common case: generators and ETL loads emit PK order),
// the clustered tree takes the O(n) bulk-append path and secondary index
// entries are built sort-then-bulk per index; otherwise it falls back to
// per-row Insert. Duplicate keys fail the batch before any mutation on the
// fast path, and at the offending row on the fallback path.
func (t *Table) InsertBatch(rows []sqltypes.Row, m *Metrics) error {
	if len(rows) == 0 {
		return nil
	}
	for _, row := range rows {
		if len(row) != len(t.Def.Columns) {
			return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, len(t.Def.Columns), len(row))
		}
	}
	items := make([]btree.Item, len(rows))
	sorted := true
	var batchBytes int64
	for i, row := range rows {
		stored := row.Clone()
		items[i] = btree.Item{Key: t.PKKey(stored), Val: stored}
		batchBytes += int64(stored.Size()) + 16
		if i > 0 && bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			sorted = false
		}
	}
	fastPath := sorted
	if fastPath {
		// AppendBulk itself rejects overlap with existing keys, but probe the
		// first key up front so a mid-function failure cannot half-apply.
		if _, exists := t.data.Get(items[0].Key); exists {
			fastPath = false
		}
	}
	if fastPath && !t.data.AppendBulk(items) {
		fastPath = false
	}
	if !fastPath {
		for _, it := range items {
			if err := t.insertStored(it.Key, it.Val.(sqltypes.Row), m); err != nil {
				return err
			}
		}
		return nil
	}
	t.bytes += batchBytes
	if m != nil {
		m.RowWrites += int64(len(rows))
		// Bulk appends write whole pages, not per-row root-to-leaf descents.
		m.PageReads += int64(len(rows)+1)/int64(bulkPageEntries) + 1
	}
	for _, ix := range t.indexes {
		entries := make([]btree.Item, len(items))
		for i := range items {
			stored := items[i].Val.(sqltypes.Row)
			entries[i] = btree.Item{Key: ix.entryKey(stored), Val: items[i].Key}
			ix.bytes += ix.entrySize(stored)
		}
		btree.SortItems(entries)
		if !ix.tree.AppendBulk(entries) {
			for _, e := range entries {
				ix.tree.PutOwned(e.Key, e.Val)
			}
		}
		if m != nil {
			m.IndexWrites += int64(len(entries))
			m.PageReads += int64(len(entries)+1)/int64(bulkPageEntries) + 1
		}
	}
	if ms := instr.Load(); ms != nil {
		ms.bulkRows.Add(int64(len(rows)))
		ms.leafFill.Observe(t.data.FillPercent())
	}
	return nil
}

// bulkPageEntries approximates entries per written page for bulk-append
// I/O accounting (≈90% of the btree degree).
const bulkPageEntries = 57

// insertStored is Insert for a row whose clustered key is already encoded.
func (t *Table) insertStored(key []byte, stored sqltypes.Row, m *Metrics) error {
	if _, exists := t.data.Get(key); exists {
		return fmt.Errorf("storage: duplicate primary key in table %s", t.Def.Name)
	}
	t.data.PutOwned(key, stored)
	t.bytes += int64(stored.Size()) + 16
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		ix.tree.PutOwned(ix.entryKey(stored), key)
		ix.bytes += ix.entrySize(stored)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return nil
}

// GetByPK fetches the row with the given encoded primary key.
func (t *Table) GetByPK(key []byte, m *Metrics) (sqltypes.Row, bool) {
	if m != nil {
		m.PageReads += int64(t.data.Height())
	}
	v, ok := t.data.Get(key)
	if !ok {
		return nil, false
	}
	if m != nil {
		m.RowsRead++
	}
	return v.(sqltypes.Row), true
}

// DeleteByPK removes the row with the given encoded primary key, updating
// all secondary indexes. It reports whether a row was removed.
func (t *Table) DeleteByPK(key []byte, m *Metrics) bool {
	v, ok := t.data.Get(key)
	if !ok {
		return false
	}
	row := v.(sqltypes.Row)
	t.data.Delete(key)
	t.bytes -= int64(row.Size()) + 16
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(row))
		ix.bytes -= ix.entrySize(row)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return true
}

// Update replaces the row stored under key with newRow (which may change
// primary key columns), maintaining secondary indexes. Index entries are
// only rewritten when their key columns changed.
func (t *Table) Update(key []byte, newRow sqltypes.Row, m *Metrics) error {
	v, ok := t.data.Get(key)
	if !ok {
		return fmt.Errorf("storage: update of missing row in table %s", t.Def.Name)
	}
	oldRow := v.(sqltypes.Row)
	newKey := t.PKKey(newRow)
	stored := newRow.Clone()
	if string(newKey) != string(key) {
		if _, exists := t.data.Get(newKey); exists {
			return fmt.Errorf("storage: duplicate primary key on update in table %s", t.Def.Name)
		}
		t.data.Delete(key)
	}
	t.data.PutOwned(newKey, stored)
	t.bytes += int64(stored.Size()) - int64(oldRow.Size())
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		oldEntry := ix.entryKey(oldRow)
		newEntry := ix.entryKey(stored)
		if string(oldEntry) == string(newEntry) {
			continue
		}
		ix.tree.Delete(oldEntry)
		ix.tree.PutOwned(newEntry, newKey)
		ix.bytes += ix.entrySize(stored) - ix.entrySize(oldRow)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return nil
}

// BuildIndex materializes a new secondary index over the current table
// contents. The definition must reference only existing columns.
func (t *Table) BuildIndex(def *catalog.Index, m *Metrics) (*Index, error) {
	ix, err := t.PrepareIndex(def, m)
	if err != nil {
		return nil, err
	}
	if err := t.AttachIndex(ix); err != nil {
		return nil, err
	}
	return ix, nil
}

// PrepareIndex builds a secondary index over the current table contents
// without attaching it, so several index builds over the same table can run
// concurrently (builds only read the clustered tree; AttachIndex serializes
// the map write). Entry keys are collected in one clustered scan, sorted
// bytewise when the scan order does not already match (secondary entry keys
// are generally not PK-ordered), and bulk-loaded in O(n).
func (t *Table) PrepareIndex(def *catalog.Index, m *Metrics) (*Index, error) {
	lower := strings.ToLower(def.Name)
	if _, dup := t.indexes[lower]; dup {
		return nil, fmt.Errorf("storage: index %q already materialized", def.Name)
	}
	start := time.Now()
	ix := &Index{Def: def, pkOrds: t.Def.PrimaryKey}
	for _, c := range def.Columns {
		o := t.Def.ColumnIndex(c)
		if o < 0 {
			return nil, fmt.Errorf("storage: index %q references unknown column %q", def.Name, c)
		}
		ix.ordinals = append(ix.ordinals, o)
	}
	items := make([]btree.Item, 0, t.data.Len())
	vals := make([]sqltypes.Value, len(ix.ordinals))
	var scratch []byte
	sorted := true
	for it := t.data.Seek(nil); it.Valid(); it.Next() {
		row := it.Value().(sqltypes.Row)
		// The stored clustered key is immutable: share it as the entry value
		// and splice its bytes into the entry key instead of re-encoding the
		// pk columns (key encoding is concatenative per value).
		pk := it.Key()
		for i, o := range ix.ordinals {
			vals[i] = row[o]
		}
		scratch = sqltypes.EncodeKey(scratch[:0], vals...)
		key := make([]byte, len(scratch)+len(pk))
		copy(key[copy(key, scratch):], pk)
		if sorted && len(items) > 0 && bytes.Compare(items[len(items)-1].Key, key) >= 0 {
			sorted = false
		}
		items = append(items, btree.Item{Key: key, Val: pk})
		ix.bytes += ix.entrySize(row)
		if m != nil {
			m.RowsRead++
			m.IndexWrites++
		}
	}
	// Sorted-input detection: an index whose columns form a PK prefix emits
	// entries already in clustered order — skip the sort for those.
	if !sorted {
		btree.SortItems(items)
	}
	// Entry keys are unique (PK suffix) and freshly encoded: ownership
	// transfers to the tree, no re-copy.
	ix.tree = btree.BulkLoad(items)
	if m != nil {
		m.PageReads += int64(t.data.Leaves() + ix.tree.Leaves())
	}
	if ms := instr.Load(); ms != nil {
		ms.bulkRows.Add(int64(len(items)))
		ms.leafFill.Observe(ix.tree.FillPercent())
		ms.buildSeconds.Observe(time.Since(start).Seconds())
	}
	return ix, nil
}

// AttachIndex registers a prepared index on the table. It fails if an index
// with the same name is already attached.
func (t *Table) AttachIndex(ix *Index) error {
	lower := strings.ToLower(ix.Def.Name)
	if _, dup := t.indexes[lower]; dup {
		return fmt.Errorf("storage: index %q already materialized", ix.Def.Name)
	}
	t.indexes[lower] = ix
	return nil
}

// DropIndex removes a materialized index and reports whether it existed.
func (t *Table) DropIndex(name string) bool {
	lower := strings.ToLower(name)
	if _, ok := t.indexes[lower]; !ok {
		return false
	}
	delete(t.indexes, lower)
	return true
}

// Store is a collection of tables keyed by lower-cased name.
type Store struct {
	tables map[string]*Table
	// Workers bounds the fan-out of parallel index builds
	// (engine.CreateIndexes; 0 = GOMAXPROCS). Builds are structural —
	// byte-identical at any worker count — so this only trades wall clock
	// for cores. Clone no longer fans out (copy-on-write snapshots are O(1)
	// pointer copies), but clones still inherit the setting for the builds
	// they run. Set before concurrent use.
	Workers int
	// snapshot/released drive the storage.snapshots_live gauge: Clone marks
	// the new handle a snapshot, Release retires it. Best-effort accounting
	// only; a never-released snapshot is simply garbage-collected.
	snapshot bool
	released bool
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: map[string]*Table{}} }

// CreateTable adds an empty table for def.
func (s *Store) CreateTable(def *catalog.Table) (*Table, error) {
	key := strings.ToLower(def.Name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", def.Name)
	}
	t := NewTable(def)
	s.tables[key] = t
	return t, nil
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) *Table { return s.tables[strings.ToLower(name)] }

// TotalIndexBytes sums the size of all materialized secondary indexes.
func (s *Store) TotalIndexBytes() int64 {
	var n int64
	for _, t := range s.tables {
		for _, ix := range t.indexes {
			n += ix.bytes
		}
	}
	return n
}

// CloneChecked is Clone behind the "storage.clone" failpoint: the fault
// harness arms it to make snapshots die before they are taken, and hardened
// callers (shadow validation, the engine's CloneChecked) retry or degrade.
// Plain Clone stays infallible for callers with no failure path. Note the
// semantics shift with copy-on-write snapshots: the fault no longer models a
// row-copy dying mid-build (there is no row copy), it models the snapshot
// being refused outright — callers observe the identical error surface.
func (s *Store) CloneChecked() (*Store, error) {
	if err := failpoint.Inject("storage.clone"); err != nil {
		return nil, err
	}
	return s.Clone(), nil
}

// Clone takes a copy-on-write snapshot of the store in O(1) per tree:
// every B+tree is shared structurally via btree.Clone (a root-pointer copy
// that re-epochs both handles), and only the per-table/per-index metadata —
// maps, definitions, byte accounting — is copied. Rows and key bytes are
// shared outright (both are treated as immutable once stored — all mutations
// replace rows); tree nodes are shared until a writer on either handle
// path-copies them. Cost is proportional to the number of tables and
// indexes, independent of row count.
//
// Clone must be serialized with writers to this store (it re-epochs the
// source trees); the returned snapshot may then be read concurrently with
// live DML on the source — this is the substrate for the MyShadow clone
// environment and the regression detector's historical snapshots.
func (s *Store) Clone() *Store {
	start := time.Now()
	out := &Store{tables: make(map[string]*Table, len(s.tables)), Workers: s.Workers, snapshot: true}
	var shared int64
	for name, t := range s.tables {
		nt := &Table{Def: t.Def, data: t.data.Clone(), indexes: make(map[string]*Index, len(t.indexes)), bytes: t.bytes}
		shared += t.bytes
		for iname, ix := range t.indexes {
			def := *ix.Def
			def.Columns = append([]string(nil), ix.Def.Columns...)
			nt.indexes[iname] = &Index{
				Def:      &def,
				tree:     ix.tree.Clone(),
				ordinals: append([]int(nil), ix.ordinals...),
				pkOrds:   ix.pkOrds,
				bytes:    ix.bytes,
			}
			shared += ix.bytes
		}
		out.tables[name] = nt
	}
	if ms := instr.Load(); ms != nil {
		ms.clones.Inc()
		ms.snapshots.Add(1)
		ms.sharedBytes.Set(shared)
		ms.cloneSeconds.Observe(time.Since(start).Seconds())
	}
	return out
}

// Release retires a snapshot handle for the storage.snapshots_live gauge.
// Idempotent, and a no-op on stores that are not snapshots. Dropping a
// snapshot without releasing it is safe (the garbage collector reclaims
// unshared nodes); Release only keeps the gauge honest for long-running
// services.
func (s *Store) Release() {
	if !s.snapshot || s.released {
		return
	}
	s.released = true
	if ms := instr.Load(); ms != nil {
		ms.snapshots.Add(-1)
	}
}
