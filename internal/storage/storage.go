// Package storage implements the row store: clustered primary-key tables
// backed by B+trees, secondary indexes maintained on every DML, and
// page/row-level accounting used by the cost model and workload monitor.
//
// A secondary index entry is keyed by enc(index columns..., primary key
// columns...) so that duplicate index-column values remain unique, exactly
// like InnoDB secondary indexes; the entry value is the primary-key encoding
// used for the back-lookup into the clustered tree.
package storage

import (
	"fmt"
	"strings"

	"aim/internal/btree"
	"aim/internal/catalog"
	"aim/internal/sqltypes"
)

// Metrics accumulates physical work done by storage operations. The
// executor aggregates these into per-query execution statistics.
type Metrics struct {
	RowsRead    int64 // rows fetched from base tables or index entries visited
	PageReads   int64 // B+tree pages touched (descents + leaves walked)
	IndexWrites int64 // secondary index entry mutations
	RowWrites   int64 // base row mutations
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.RowsRead += other.RowsRead
	m.PageReads += other.PageReads
	m.IndexWrites += other.IndexWrites
	m.RowWrites += other.RowWrites
}

// Index is a materialized secondary index.
type Index struct {
	Def      *catalog.Index
	tree     *btree.Tree
	ordinals []int // table column ordinals of the key columns
	pkOrds   []int
	bytes    int64
}

// Tree exposes the underlying B+tree for scans.
func (ix *Index) Tree() *btree.Tree { return ix.tree }

// Ordinals returns the table column ordinals of the index key columns.
func (ix *Index) Ordinals() []int { return ix.ordinals }

// SizeBytes returns the approximate materialized size of the index.
func (ix *Index) SizeBytes() int64 { return ix.bytes }

// Len returns the number of entries.
func (ix *Index) Len() int { return ix.tree.Len() }

// entryKey builds the full index entry key for a row.
func (ix *Index) entryKey(row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, 0, len(ix.ordinals)+len(ix.pkOrds))
	for _, o := range ix.ordinals {
		vals = append(vals, row[o])
	}
	for _, o := range ix.pkOrds {
		vals = append(vals, row[o])
	}
	return sqltypes.EncodeKey(nil, vals...)
}

func (ix *Index) entrySize(row sqltypes.Row) int64 {
	n := 0
	for _, o := range ix.ordinals {
		n += row[o].StorageSize()
	}
	for _, o := range ix.pkOrds {
		n += row[o].StorageSize() * 2 // key suffix + value payload
	}
	return int64(n) + 16 // per-entry overhead
}

// Table is a clustered table plus its materialized secondary indexes.
type Table struct {
	Def     *catalog.Table
	data    *btree.Tree // pk key -> sqltypes.Row
	indexes map[string]*Index
	bytes   int64
}

// NewTable creates an empty table for the definition.
func NewTable(def *catalog.Table) *Table {
	return &Table{Def: def, data: btree.New(), indexes: map[string]*Index{}}
}

// Data exposes the clustered tree for scans.
func (t *Table) Data() *btree.Tree { return t.data }

// RowCount returns the number of rows.
func (t *Table) RowCount() int { return t.data.Len() }

// DataSize returns the approximate clustered data size in bytes.
func (t *Table) DataSize() int64 { return t.bytes }

// Indexes returns the materialized secondary indexes keyed by lower-cased
// index name.
func (t *Table) Indexes() map[string]*Index { return t.indexes }

// Index returns the named materialized index, or nil.
func (t *Table) Index(name string) *Index { return t.indexes[strings.ToLower(name)] }

// PKKey builds the clustered key for a full row.
func (t *Table) PKKey(row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(t.Def.PrimaryKey))
	for i, o := range t.Def.PrimaryKey {
		vals[i] = row[o]
	}
	return sqltypes.EncodeKey(nil, vals...)
}

// Insert adds a row, maintaining every secondary index. It fails on
// duplicate primary keys or column-count mismatch.
func (t *Table) Insert(row sqltypes.Row, m *Metrics) error {
	if len(row) != len(t.Def.Columns) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.Def.Name, len(t.Def.Columns), len(row))
	}
	key := t.PKKey(row)
	if _, exists := t.data.Get(key); exists {
		return fmt.Errorf("storage: duplicate primary key in table %s", t.Def.Name)
	}
	stored := row.Clone()
	t.data.Put(key, stored)
	t.bytes += int64(stored.Size()) + 16
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		ix.tree.Put(ix.entryKey(stored), key)
		ix.bytes += ix.entrySize(stored)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return nil
}

// GetByPK fetches the row with the given encoded primary key.
func (t *Table) GetByPK(key []byte, m *Metrics) (sqltypes.Row, bool) {
	if m != nil {
		m.PageReads += int64(t.data.Height())
	}
	v, ok := t.data.Get(key)
	if !ok {
		return nil, false
	}
	if m != nil {
		m.RowsRead++
	}
	return v.(sqltypes.Row), true
}

// DeleteByPK removes the row with the given encoded primary key, updating
// all secondary indexes. It reports whether a row was removed.
func (t *Table) DeleteByPK(key []byte, m *Metrics) bool {
	v, ok := t.data.Get(key)
	if !ok {
		return false
	}
	row := v.(sqltypes.Row)
	t.data.Delete(key)
	t.bytes -= int64(row.Size()) + 16
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(row))
		ix.bytes -= ix.entrySize(row)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return true
}

// Update replaces the row stored under key with newRow (which may change
// primary key columns), maintaining secondary indexes. Index entries are
// only rewritten when their key columns changed.
func (t *Table) Update(key []byte, newRow sqltypes.Row, m *Metrics) error {
	v, ok := t.data.Get(key)
	if !ok {
		return fmt.Errorf("storage: update of missing row in table %s", t.Def.Name)
	}
	oldRow := v.(sqltypes.Row)
	newKey := t.PKKey(newRow)
	stored := newRow.Clone()
	if string(newKey) != string(key) {
		if _, exists := t.data.Get(newKey); exists {
			return fmt.Errorf("storage: duplicate primary key on update in table %s", t.Def.Name)
		}
		t.data.Delete(key)
	}
	t.data.Put(newKey, stored)
	t.bytes += int64(stored.Size()) - int64(oldRow.Size())
	if m != nil {
		m.RowWrites++
		m.PageReads += int64(t.data.Height())
	}
	for _, ix := range t.indexes {
		oldEntry := ix.entryKey(oldRow)
		newEntry := ix.entryKey(stored)
		if string(oldEntry) == string(newEntry) {
			continue
		}
		ix.tree.Delete(oldEntry)
		ix.tree.Put(newEntry, newKey)
		ix.bytes += ix.entrySize(stored) - ix.entrySize(oldRow)
		if m != nil {
			m.IndexWrites++
			m.PageReads += int64(ix.tree.Height())
		}
	}
	return nil
}

// BuildIndex materializes a new secondary index over the current table
// contents. The definition must reference only existing columns.
func (t *Table) BuildIndex(def *catalog.Index, m *Metrics) (*Index, error) {
	lower := strings.ToLower(def.Name)
	if _, dup := t.indexes[lower]; dup {
		return nil, fmt.Errorf("storage: index %q already materialized", def.Name)
	}
	ix := &Index{Def: def, tree: btree.New(), pkOrds: t.Def.PrimaryKey}
	for _, c := range def.Columns {
		o := t.Def.ColumnIndex(c)
		if o < 0 {
			return nil, fmt.Errorf("storage: index %q references unknown column %q", def.Name, c)
		}
		ix.ordinals = append(ix.ordinals, o)
	}
	for it := t.data.Seek(nil); it.Valid(); it.Next() {
		row := it.Value().(sqltypes.Row)
		key := append([]byte(nil), it.Key()...)
		ix.tree.Put(ix.entryKey(row), key)
		ix.bytes += ix.entrySize(row)
		if m != nil {
			m.RowsRead++
			m.IndexWrites++
		}
	}
	if m != nil {
		m.PageReads += int64(t.data.Leaves() + ix.tree.Leaves())
	}
	t.indexes[lower] = ix
	return ix, nil
}

// DropIndex removes a materialized index and reports whether it existed.
func (t *Table) DropIndex(name string) bool {
	lower := strings.ToLower(name)
	if _, ok := t.indexes[lower]; !ok {
		return false
	}
	delete(t.indexes, lower)
	return true
}

// Store is a collection of tables keyed by lower-cased name.
type Store struct {
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: map[string]*Table{}} }

// CreateTable adds an empty table for def.
func (s *Store) CreateTable(def *catalog.Table) (*Table, error) {
	key := strings.ToLower(def.Name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", def.Name)
	}
	t := NewTable(def)
	s.tables[key] = t
	return t, nil
}

// Table returns the named table, or nil.
func (s *Store) Table(name string) *Table { return s.tables[strings.ToLower(name)] }

// TotalIndexBytes sums the size of all materialized secondary indexes.
func (s *Store) TotalIndexBytes() int64 {
	var n int64
	for _, t := range s.tables {
		for _, ix := range t.indexes {
			n += ix.bytes
		}
	}
	return n
}

// Clone produces a deep logical copy of the store: rows are shared (they
// are treated as immutable once stored — all mutations replace rows), trees
// are rebuilt. This is the substrate for the MyShadow clone environment.
func (s *Store) Clone() *Store {
	out := NewStore()
	for name, t := range s.tables {
		nt := NewTable(t.Def)
		for it := t.data.Seek(nil); it.Valid(); it.Next() {
			nt.data.Put(it.Key(), it.Value())
		}
		nt.bytes = t.bytes
		for iname, ix := range t.indexes {
			def := *ix.Def
			def.Columns = append([]string(nil), ix.Def.Columns...)
			nix := &Index{Def: &def, tree: btree.New(), ordinals: append([]int(nil), ix.ordinals...), pkOrds: ix.pkOrds, bytes: ix.bytes}
			for it := ix.tree.Seek(nil); it.Valid(); it.Next() {
				nix.tree.Put(it.Key(), it.Value())
			}
			nt.indexes[iname] = nix
		}
		out.tables[name] = nt
	}
	return out
}
