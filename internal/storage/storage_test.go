package storage

import (
	"math/rand"
	"testing"

	"aim/internal/catalog"
	"aim/internal/sqltypes"
)

func newUsersTable(t *testing.T) *Table {
	t.Helper()
	def, err := catalog.NewTable("users", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "name", Type: sqltypes.KindString},
		{Name: "age", Type: sqltypes.KindInt},
		{Name: "city", Type: sqltypes.KindString},
	}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return NewTable(def)
}

func userRow(id int64, name string, age int64, city string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewInt(age), sqltypes.NewString(city)}
}

func TestInsertAndGet(t *testing.T) {
	tbl := newUsersTable(t)
	var m Metrics
	if err := tbl.Insert(userRow(1, "ann", 30, "sf"), &m); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(userRow(1, "dup", 1, "x"), &m); err == nil {
		t.Fatal("duplicate pk accepted")
	}
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(2)}, &m); err == nil {
		t.Fatal("short row accepted")
	}
	row, ok := tbl.GetByPK(tbl.PKKey(userRow(1, "", 0, "")), &m)
	if !ok || row[1].Str() != "ann" {
		t.Fatalf("GetByPK = %v, %v", row, ok)
	}
	if m.RowWrites != 1 || m.RowsRead != 1 || m.PageReads == 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestInsertIsolatedFromCaller(t *testing.T) {
	tbl := newUsersTable(t)
	row := userRow(1, "ann", 30, "sf")
	if err := tbl.Insert(row, nil); err != nil {
		t.Fatal(err)
	}
	row[1] = sqltypes.NewString("mutated")
	got, _ := tbl.GetByPK(tbl.PKKey(userRow(1, "", 0, "")), nil)
	if got[1].Str() != "ann" {
		t.Fatal("stored row aliases caller's slice")
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	tbl := newUsersTable(t)
	for i := int64(0); i < 100; i++ {
		city := "sf"
		if i%3 == 0 {
			city = "nyc"
		}
		if err := tbl.Insert(userRow(i, "u", i%10, city), nil); err != nil {
			t.Fatal(err)
		}
	}
	var m Metrics
	ix, err := tbl.BuildIndex(&catalog.Index{Name: "by_city_age", Table: "users", Columns: []string{"city", "age"}}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatalf("index has %d entries", ix.Len())
	}
	if m.IndexWrites != 100 || m.RowsRead != 100 {
		t.Errorf("build metrics = %+v", m)
	}
	// Insert maintains the index.
	if err := tbl.Insert(userRow(200, "x", 5, "la"), nil); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 101 {
		t.Fatal("insert did not maintain index")
	}
	// Delete maintains the index.
	if !tbl.DeleteByPK(tbl.PKKey(userRow(200, "", 0, "")), nil) {
		t.Fatal("delete failed")
	}
	if ix.Len() != 100 {
		t.Fatal("delete did not maintain index")
	}
	// Update rewrites only changed entries.
	key := tbl.PKKey(userRow(1, "", 0, ""))
	row, _ := tbl.GetByPK(key, nil)
	updated := row.Clone()
	updated[3] = sqltypes.NewString("tokyo")
	if err := tbl.Update(key, updated, nil); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatal("update broke index size")
	}
	// The new entry must be findable by a range scan over city='tokyo'.
	lo := sqltypes.EncodeKey(nil, sqltypes.NewString("tokyo"))
	found := 0
	for it := ix.Tree().Seek(lo); it.Valid(); it.Next() {
		k := it.Key()
		if len(k) < len(lo) || string(k[:len(lo)]) != string(lo) {
			break
		}
		found++
	}
	if found != 1 {
		t.Fatalf("tokyo entries = %d", found)
	}
}

func TestUpdateChangesPrimaryKey(t *testing.T) {
	tbl := newUsersTable(t)
	if err := tbl.Insert(userRow(1, "a", 10, "sf"), nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(userRow(2, "b", 20, "sf"), nil); err != nil {
		t.Fatal(err)
	}
	key1 := tbl.PKKey(userRow(1, "", 0, ""))
	// Moving row 1 onto pk 2 must fail.
	if err := tbl.Update(key1, userRow(2, "a", 10, "sf"), nil); err == nil {
		t.Fatal("pk collision on update accepted")
	}
	// Moving to a fresh pk works.
	if err := tbl.Update(key1, userRow(3, "a", 10, "sf"), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.GetByPK(key1, nil); ok {
		t.Fatal("old pk still present")
	}
	if _, ok := tbl.GetByPK(tbl.PKKey(userRow(3, "", 0, "")), nil); !ok {
		t.Fatal("new pk missing")
	}
	if tbl.RowCount() != 2 {
		t.Fatalf("row count = %d", tbl.RowCount())
	}
}

// TestIndexConsistencyUnderRandomDML is the core storage invariant: after
// arbitrary interleaved inserts/updates/deletes, every index must contain
// exactly one entry per row, each pointing to the right primary key.
func TestIndexConsistencyUnderRandomDML(t *testing.T) {
	tbl := newUsersTable(t)
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "i_age", Table: "users", Columns: []string{"age"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "i_city_name", Table: "users", Columns: []string{"city", "name"}}, nil); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	live := map[int64]sqltypes.Row{}
	for op := 0; op < 5000; op++ {
		id := int64(r.Intn(500))
		switch r.Intn(3) {
		case 0:
			row := userRow(id, randWord(r), int64(r.Intn(50)), randWord(r))
			err := tbl.Insert(row, nil)
			if _, exists := live[id]; exists {
				if err == nil {
					t.Fatal("duplicate insert accepted")
				}
			} else if err != nil {
				t.Fatal(err)
			} else {
				live[id] = row
			}
		case 1:
			if _, exists := live[id]; !exists {
				continue
			}
			row := userRow(id, randWord(r), int64(r.Intn(50)), randWord(r))
			if err := tbl.Update(tbl.PKKey(row), row, nil); err != nil {
				t.Fatal(err)
			}
			live[id] = row
		case 2:
			ok := tbl.DeleteByPK(tbl.PKKey(userRow(id, "", 0, "")), nil)
			_, exists := live[id]
			if ok != exists {
				t.Fatalf("delete(%d) = %v, live = %v", id, ok, exists)
			}
			delete(live, id)
		}
	}
	if tbl.RowCount() != len(live) {
		t.Fatalf("row count %d != live %d", tbl.RowCount(), len(live))
	}
	for _, ix := range tbl.Indexes() {
		if ix.Len() != len(live) {
			t.Fatalf("index %s has %d entries, want %d", ix.Def.Name, ix.Len(), len(live))
		}
		for it := ix.Tree().Seek(nil); it.Valid(); it.Next() {
			pk := it.Value().([]byte)
			row, ok := tbl.GetByPK(pk, nil)
			if !ok {
				t.Fatalf("index %s has dangling entry", ix.Def.Name)
			}
			// The index key prefix must match the row's column values.
			want := ix.entryKey(row)
			if string(want) != string(it.Key()) {
				t.Fatalf("index %s entry key mismatch for pk row %v", ix.Def.Name, row)
			}
		}
	}
}

func randWord(r *rand.Rand) string {
	words := []string{"sf", "nyc", "la", "tokyo", "paris", "berlin", "lima", "oslo"}
	return words[r.Intn(len(words))]
}

func TestSizeAccounting(t *testing.T) {
	tbl := newUsersTable(t)
	if tbl.DataSize() != 0 {
		t.Fatal("empty table has size")
	}
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(userRow(i, "abc", i, "sf"), nil); err != nil {
			t.Fatal(err)
		}
	}
	size := tbl.DataSize()
	if size <= 0 {
		t.Fatal("size not positive")
	}
	ix, err := tbl.BuildIndex(&catalog.Index{Name: "i", Table: "users", Columns: []string{"age"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("index size not positive")
	}
	before := ix.SizeBytes()
	if err := tbl.Insert(userRow(99, "abc", 9, "sf"), nil); err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() <= before {
		t.Fatal("insert did not grow index size")
	}
	tbl.DeleteByPK(tbl.PKKey(userRow(99, "", 0, "")), nil)
	if ix.SizeBytes() != before {
		t.Fatal("delete did not restore index size")
	}
}

func TestStoreCloneIsolation(t *testing.T) {
	s := NewStore()
	def, _ := catalog.NewTable("t", []catalog.Column{
		{Name: "id", Type: sqltypes.KindInt},
		{Name: "v", Type: sqltypes.KindInt},
	}, []string{"id"})
	tbl, err := s.CreateTable(def)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(def); err == nil {
		t.Fatal("duplicate table accepted")
	}
	for i := int64(0); i < 50; i++ {
		tbl.Insert(sqltypes.Row{sqltypes.NewInt(i), sqltypes.NewInt(i * 2)}, nil)
	}
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "iv", Table: "t", Columns: []string{"v"}}, nil); err != nil {
		t.Fatal(err)
	}
	clone := s.Clone()
	ct := clone.Table("t")
	if ct.RowCount() != 50 || ct.Index("iv") == nil {
		t.Fatal("clone incomplete")
	}
	// Mutating the clone must not affect the original.
	ct.Insert(sqltypes.Row{sqltypes.NewInt(999), sqltypes.NewInt(0)}, nil)
	ct.DeleteByPK(ct.PKKey(sqltypes.Row{sqltypes.NewInt(1), sqltypes.Null}), nil)
	if tbl.RowCount() != 50 {
		t.Fatal("clone mutation leaked")
	}
	if tbl.Index("iv").Len() != 50 {
		t.Fatal("clone index mutation leaked")
	}
	if s.TotalIndexBytes() <= 0 {
		t.Fatal("TotalIndexBytes")
	}
}

func TestDropIndex(t *testing.T) {
	tbl := newUsersTable(t)
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "i", Table: "users", Columns: []string{"age"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "i", Table: "users", Columns: []string{"age"}}, nil); err == nil {
		t.Fatal("duplicate build accepted")
	}
	if !tbl.DropIndex("I") {
		t.Fatal("drop failed")
	}
	if tbl.DropIndex("i") {
		t.Fatal("double drop succeeded")
	}
	// After a drop, inserts must not touch the old index.
	if err := tbl.Insert(userRow(1, "a", 1, "b"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIndexUnknownColumn(t *testing.T) {
	tbl := newUsersTable(t)
	if _, err := tbl.BuildIndex(&catalog.Index{Name: "bad", Table: "users", Columns: []string{"nope"}}, nil); err == nil {
		t.Fatal("unknown column accepted")
	}
}
