package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"aim/internal/audit"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/loadgen"
	"aim/internal/obs"
	"aim/internal/regression"
	"aim/internal/server"
	"aim/internal/shadow"
)

// ServeSuiteOptions parameterizes the live-serving acceptance suite: a real
// aimd server on loopback, a seeded concurrent client fleet, and the
// determinism cross-checks that tie a networked run back to the offline
// batch loop.
type ServeSuiteOptions struct {
	// Clients, Rounds, PerRound shape the fleet (see loadgen.Options).
	Clients  int
	Rounds   int
	PerRound int
	// Seed fixes the statement streams and the fixture data.
	Seed int64
	// Rows sizes the events table.
	Rows int
	// Parallelism is the advisor worker-count sweep; every setting must
	// produce byte-identical verdicts, journals and index sets.
	Parallelism []int
	// Timeout bounds each client frame round-trip (0 = loadgen default).
	Timeout time.Duration
	// JournalPath, when set, receives the last run's normalized decision
	// journal (one JSON line per record) — the soak artifact.
	JournalPath string
	// TimeSeriesPath, when set, receives the last run's /timeseriesz-shaped
	// sample ring (one tick per round) — the flight-recorder soak artifact.
	TimeSeriesPath string
}

// DefaultServeSuiteOptions is the CI "servesuite" configuration: 16
// concurrent clients, 6 tuned rounds, worker sweep 1/2/4.
func DefaultServeSuiteOptions() ServeSuiteOptions {
	return ServeSuiteOptions{
		Clients:     16,
		Rounds:      6,
		PerRound:    20,
		Seed:        23,
		Rows:        2000,
		Parallelism: []int{1, 2, 4},
	}
}

// ServeRunResult is the outcome of one live fleet run at one worker count.
type ServeRunResult struct {
	Workers    int
	Statements int64
	Rows       int64
	// Verdicts are the per-round tuning verdict lines.
	Verdicts []string
	// Journal is the normalized decision journal (ts_us and span_id zeroed;
	// both depend on wall clock or allocation order, not on decisions).
	Journal []string
	// IndexKeys is the automation-adopted index set after the run.
	IndexKeys []string
	Adoptions int
	Reverted  int
	// DrainSeconds is the observed graceful-drain wall clock.
	DrainSeconds float64
	// TimeSeries is the run's sample ring (one tick per round barrier),
	// marshaled in the /timeseriesz payload shape.
	TimeSeries json.RawMessage
	// TracedAdoptions counts adopted indexes whose audit lineage resolved to
	// concrete traced statement IDs; a run with adoptions must have at least
	// one.
	TracedAdoptions int
}

// ServeSuiteResult aggregates the sweep plus the two offline references.
type ServeSuiteResult struct {
	// ReferenceKeys is the index set the offline experiments.Loop replay of
	// the same statement stream converges to; every live run must match it.
	ReferenceKeys []string
	// ReferenceVerdicts are the verdict lines an offline single-threaded
	// tuner replay of the same windows renders; live runs must match them
	// byte for byte.
	ReferenceVerdicts []string
	// ReferenceJournal is the offline tuner replay's normalized decision
	// journal — window records included, with the same deterministic trace
	// IDs the fleet sends. Every live run's journal must equal it.
	ReferenceJournal []string
	Runs             []ServeRunResult
}

// serveSampler is the fleet's read-only statement mix: two hot filter
// shapes on unindexed columns (the advisor must converge) plus a cold
// range probe. Read-only keeps the fixture state frozen within a round, so
// execution statistics depend only on the statement and the index set —
// the property that makes a concurrent networked run replayable offline.
func serveSampler(_, _, _ int, r *rand.Rand) string {
	switch r.Intn(8) {
	case 0, 1:
		return fmt.Sprintf("SELECT id FROM events WHERE kind = %d AND score > %d", r.Intn(8), r.Intn(900))
	case 2:
		return fmt.Sprintf("SELECT id FROM events WHERE day = %d", r.Intn(365))
	default:
		return fmt.Sprintf("SELECT score FROM events WHERE user_id = %d", r.Intn(150))
	}
}

// serveFixture builds the serving database: one events table with the hot
// filter columns unindexed.
func serveFixture(rows int, seed int64) *engine.DB {
	db := engine.New("serve")
	db.MustExec(`CREATE TABLE events (id INT, user_id INT, kind INT, day INT, score INT, PRIMARY KEY (id))`)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO events VALUES (%d, %d, %d, %d, %d)",
			i, r.Intn(150), r.Intn(8), r.Intn(365), r.Intn(1000)))
	}
	db.Analyze()
	return db
}

func serveAdvisorCfg(workers int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	cfg.Parallelism = workers
	return cfg
}

// RunServeSuite executes the acceptance suite:
//
//  1. An offline experiments.Loop replay of the precomputed fleet stream
//     establishes the reference index set.
//  2. An offline single-threaded server.Tuner replay of the same windows
//     establishes the reference verdict lines.
//  3. For each worker count, a real server is booted on loopback and the
//     seeded fleet drives it over TCP with a tuning cycle at every round
//     barrier; the run must drain cleanly and match both references.
//
// It returns an error on the first violated invariant: a statement error, a
// dirty drain, a leftover buffered statement, an ungated adoption, an
// incomplete adoption lineage, or any cross-run divergence.
func RunServeSuite(opts ServeSuiteOptions) (*ServeSuiteResult, error) {
	if opts.Clients <= 0 || opts.Rounds <= 0 || opts.PerRound <= 0 || opts.Rows <= 0 {
		return nil, fmt.Errorf("serve: all sizes must be positive: %+v", opts)
	}
	if len(opts.Parallelism) == 0 {
		opts.Parallelism = []int{1}
	}
	lgOpts := loadgen.Options{
		Clients:       opts.Clients,
		Rounds:        opts.Rounds,
		PerRound:      opts.PerRound,
		Seed:          opts.Seed,
		Sample:        serveSampler,
		TuneEachRound: true,
		TraceIDs:      true,
		Timeout:       opts.Timeout,
	}
	stream := loadgen.Stream(lgOpts)

	out := &ServeSuiteResult{}
	var err error
	if out.ReferenceKeys, err = serveLoopReplay(opts, stream); err != nil {
		return nil, err
	}
	if len(out.ReferenceKeys) == 0 {
		return nil, fmt.Errorf("serve: offline replay adopted no indexes; fixture is not exercising the loop")
	}
	refKeys2, refVerdicts, refJournal, err := serveTunerReplay(opts, stream)
	if err != nil {
		return nil, err
	}
	out.ReferenceVerdicts = refVerdicts
	out.ReferenceJournal = refJournal
	if !equalStrings(out.ReferenceKeys, refKeys2) {
		return nil, fmt.Errorf("serve: offline loop and offline tuner disagree: %v vs %v", out.ReferenceKeys, refKeys2)
	}

	for _, workers := range opts.Parallelism {
		run, err := serveLiveRun(opts, lgOpts, workers)
		if err != nil {
			return nil, fmt.Errorf("serve: workers=%d: %v", workers, err)
		}
		if !equalStrings(run.IndexKeys, out.ReferenceKeys) {
			return nil, fmt.Errorf("serve: workers=%d adopted %v, offline replay adopted %v", workers, run.IndexKeys, out.ReferenceKeys)
		}
		if !equalStrings(run.Verdicts, out.ReferenceVerdicts) {
			return nil, fmt.Errorf("serve: workers=%d verdicts diverge from offline replay:\n live:   %s\n replay: %s",
				workers, strings.Join(run.Verdicts, " | "), strings.Join(out.ReferenceVerdicts, " | "))
		}
		if !equalStrings(run.Journal, out.ReferenceJournal) {
			return nil, fmt.Errorf("serve: workers=%d journal diverges from offline tuner replay (%d vs %d records)",
				workers, len(run.Journal), len(out.ReferenceJournal))
		}
		if run.Adoptions > 0 && run.TracedAdoptions == 0 {
			return nil, fmt.Errorf("serve: workers=%d adopted %d indexes but no lineage resolved to traced statements", workers, run.Adoptions)
		}
		out.Runs = append(out.Runs, *run)
	}

	if opts.JournalPath != "" && len(out.Runs) > 0 {
		last := out.Runs[len(out.Runs)-1]
		data := strings.Join(last.Journal, "\n") + "\n"
		if err := os.WriteFile(opts.JournalPath, []byte(data), 0o644); err != nil {
			return nil, fmt.Errorf("serve: journal artifact: %v", err)
		}
	}
	if opts.TimeSeriesPath != "" && len(out.Runs) > 0 {
		last := out.Runs[len(out.Runs)-1]
		if err := os.WriteFile(opts.TimeSeriesPath, append([]byte(nil), last.TimeSeries...), 0o644); err != nil {
			return nil, fmt.Errorf("serve: timeseries artifact: %v", err)
		}
	}
	return out, nil
}

// serveLoopReplay replays the fleet stream through the batch
// experiments.Loop — the machinery the fault and scenario suites certify —
// and returns the index set it adopts. One loop cycle consumes one round's
// statements in the canonical window order.
func serveLoopReplay(opts ServeSuiteOptions, stream [][]string) ([]string, error) {
	db := serveFixture(opts.Rows, opts.Seed)
	cfg := serveAdvisorCfg(1)
	pos := make([]int, len(stream))
	loop := &Loop{
		DB:       db,
		Adv:      core.NewAdvisor(db, cfg),
		Detector: regression.NewDetector(0.5),
		Gate:     shadow.DefaultGate(),
		Sample: func(cycle int, _ *rand.Rand) string {
			s := stream[cycle][pos[cycle]]
			pos[cycle]++
			return s
		},
		R: rand.New(rand.NewSource(opts.Seed)),
	}
	perWindow := opts.Clients * opts.PerRound
	for round := 0; round < opts.Rounds; round++ {
		if _, err := loop.RunCycle(perWindow); err != nil {
			return nil, fmt.Errorf("serve: loop replay round %d: %v", round, err)
		}
		if err := checkLoopInvariants(db); err != nil {
			return nil, fmt.Errorf("serve: loop replay round %d: %v", round, err)
		}
	}
	return automationIndexKeys(db), nil
}

// serveTunerReplay replays the fleet stream through the server's own Tuner,
// single-threaded with no statement gate, building each round's window in
// the canonical (session, seq) order the live collector seals — including
// the deterministic trace IDs the fleet sends. Its verdict lines and its
// normalized decision journal (window records included) are the references
// a live run must reproduce byte for byte.
func serveTunerReplay(opts ServeSuiteOptions, stream [][]string) ([]string, []string, []string, error) {
	db := serveFixture(opts.Rows, opts.Seed)
	var buf bytes.Buffer
	jrn := audit.New(&buf)
	jrn.SetClock(func() int64 { return 0 })
	db.SetAudit(jrn)
	cfg := serveAdvisorCfg(1)
	tuner := &server.Tuner{
		DB:       db,
		Adv:      core.NewAdvisor(db, cfg),
		Detector: regression.NewDetector(0.5),
		Gate:     shadow.DefaultGate(),
	}
	var verdicts []string
	seq := make([]uint64, opts.Clients)
	for round := 0; round < opts.Rounds; round++ {
		w := make([]server.Record, 0, len(stream[round]))
		for c := 0; c < opts.Clients; c++ {
			for i := 0; i < opts.PerRound; i++ {
				sql := stream[round][c*opts.PerRound+i]
				res, err := db.Exec(sql)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("serve: tuner replay round %d %s: %v", round, sql, err)
				}
				seq[c]++
				w = append(w, server.Record{Session: loadgen.Label(c), Seq: seq[c],
					Trace: loadgen.Trace(c, round, i), SQL: sql, Stats: res.Stats})
			}
		}
		server.SortWindow(w)
		line, err := tuner.CycleWindow(w)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("serve: tuner replay round %d: %v", round, err)
		}
		verdicts = append(verdicts, line)
	}
	if err := jrn.Close(); err != nil {
		return nil, nil, nil, fmt.Errorf("serve: tuner replay journal: %v", err)
	}
	records, err := audit.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: tuner replay journal: %v", err)
	}
	journal, err := normalizeJournal(records)
	if err != nil {
		return nil, nil, nil, err
	}
	return automationIndexKeys(db), verdicts, journal, nil
}

// serveLiveRun boots a real server on an ephemeral loopback port, drives
// the fleet over TCP, drains, and audits the run.
func serveLiveRun(opts ServeSuiteOptions, lgOpts loadgen.Options, workers int) (*ServeRunResult, error) {
	reg := obs.NewRegistry()
	db := serveFixture(opts.Rows, opts.Seed)
	db.SetObs(reg)
	var buf bytes.Buffer
	jrn := audit.New(&buf)
	jrn.SetClock(func() int64 { return 0 })
	db.SetAudit(jrn)

	// Full flight recorder on: slow-query capture with a threshold no
	// loopback statement crosses (so the ring content is pure deterministic
	// 1-in-N sampling) and a per-round time-series tick. The determinism
	// cross-checks below thereby certify the recorder never perturbs tuning.
	slow := obs.NewSlowLog(256, time.Hour, 100)
	slow.Instrument(reg)
	series := obs.NewTimeSeries(reg, opts.Rounds+1)
	lgOpts.OnRound = func(int) { series.Tick(time.Now()) }

	cfg := serveAdvisorCfg(workers)
	srv := server.New(server.Options{
		DB:         db,
		AdvisorCfg: &cfg,
		Obs:        reg,
		SlowLog:    slow,
		// The whole fleet plus the control connection must be admitted at
		// once — a bounded accept that parks client N+1 would deadlock the
		// round barrier. WindowStatements stays 0: the barriers own the cycle
		// boundaries, which is what makes window membership deterministic.
		MaxConns: opts.Clients + 2,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lgOpts.Addr = addr
	res, lgErr := loadgen.Run(lgOpts)

	// Always drain, even on a failed fleet, so the listener is released.
	drainErr := srv.Shutdown()
	if lgErr != nil {
		return nil, lgErr
	}
	if len(res.Errors) > 0 {
		return nil, fmt.Errorf("%d statement errors, first: %s", len(res.Errors), res.Errors[0])
	}
	if drainErr != nil {
		return nil, fmt.Errorf("dirty drain: %v", drainErr)
	}
	if open := reg.Gauge("server.connections_open").Value(); open != 0 {
		return nil, fmt.Errorf("connections_open = %d after drain", open)
	}
	if n := srv.Collector().Buffered(); n != 0 {
		return nil, fmt.Errorf("%d statements left unsealed after drain", n)
	}
	if want := int64(opts.Clients) * int64(opts.Rounds) * int64(opts.PerRound); res.Statements != want {
		return nil, fmt.Errorf("fleet executed %d statements, want %d", res.Statements, want)
	}
	total := int64(opts.Clients) * int64(opts.Rounds) * int64(opts.PerRound)
	snap := reg.Snapshot()
	if got := snap.Counters["slowlog.observed"]; got != total {
		return nil, fmt.Errorf("slow log observed %d statements, want %d", got, total)
	}
	// Nothing crosses the 1h threshold, so the ring holds exactly the
	// deterministic 1-in-100 sample of the fleet's statements.
	wantSampled := (total + 99) / 100
	if got := int64(slow.Len()); got != wantSampled {
		return nil, fmt.Errorf("slow log holds %d entries, want %d sampled", got, wantSampled)
	}
	for _, line := range srv.Tuner().Verdicts() {
		if strings.HasPrefix(line, "FATAL") {
			return nil, fmt.Errorf("tuner aborted: %s", line)
		}
	}

	if err := jrn.Close(); err != nil {
		return nil, fmt.Errorf("journal: %v", err)
	}
	records, err := audit.ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("journal: %v", err)
	}
	traced, err := auditAdoptions(records)
	if err != nil {
		return nil, err
	}
	normalized, err := normalizeJournal(records)
	if err != nil {
		return nil, err
	}
	seriesJSON, err := series.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("timeseries: %v", err)
	}

	t := srv.Tuner()
	return &ServeRunResult{
		Workers:         workers,
		Statements:      res.Statements,
		Rows:            res.Rows,
		Verdicts:        res.Verdicts,
		Journal:         normalized,
		IndexKeys:       automationIndexKeys(db),
		Adoptions:       t.Adoptions,
		Reverted:        t.Reverted,
		DrainSeconds:    reg.Histogram("server.drain_seconds").Sum(),
		TimeSeries:      seriesJSON,
		TracedAdoptions: traced,
	}, nil
}

// auditAdoptions asserts the zero-ungated-adoptions invariant from the
// journal itself: every adopt record must close a complete lineage —
// candidate, selecting rank decision and an accepting shadow verdict, all
// before the adoption. It returns how many adopted indexes additionally
// resolved to concrete traced statement IDs via the preceding window record.
func auditAdoptions(records []*audit.Record) (int, error) {
	seen := map[string]bool{}
	traced := 0
	for _, r := range records {
		if r.Event != audit.EventAdopt || seen[r.IndexKey] {
			continue
		}
		seen[r.IndexKey] = true
		lin, err := audit.Explain(records, r.IndexKey)
		if err != nil {
			return 0, fmt.Errorf("lineage %s: %v", r.IndexKey, err)
		}
		if !lin.Complete() {
			return 0, fmt.Errorf("ungated adoption: %s has an incomplete lineage (candidates=%d ranks=%d shadows=%d)",
				r.IndexKey, len(lin.Candidates), len(lin.Ranks), len(lin.Shadows))
		}
		if len(lin.WindowStatements) > 0 && strings.HasPrefix(lin.WindowStatements[0], "t-") {
			traced++
		}
	}
	return traced, nil
}

// normalizeJournal re-renders records with wall-clock timestamps and span
// IDs zeroed: both vary run to run (span IDs are allocation-order-dependent
// under concurrency) without carrying decision content.
func normalizeJournal(records []*audit.Record) ([]string, error) {
	out := make([]string, len(records))
	for i, r := range records {
		c := *r
		c.TSUS = 0
		c.SpanID = 0
		b, err := json.Marshal(&c)
		if err != nil {
			return nil, err
		}
		out[i] = string(b)
	}
	return out, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
