package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"aim/internal/audit"
	"aim/internal/core"
	"aim/internal/obs"
	"aim/internal/regression"
	"aim/internal/scenarios"
	"aim/internal/shadow"
)

// ScenarioOptions parameterizes one adversarial-scenario run.
type ScenarioOptions struct {
	// Cycles overrides the scenario profile's full cycle count (0 = profile).
	Cycles int
	// Seed fixes the setup data and the statement stream.
	Seed int64
	// Parallelism bounds the advisor's what-if worker pools (0 = GOMAXPROCS).
	// The result must be byte-identical across values — the determinism test
	// sweeps it.
	Parallelism int
	// Obs, when non-nil, collects the loop's counters.
	Obs *obs.Registry
	// Audit, when non-nil, receives the decision journal.
	Audit *audit.Journal
}

// ScenarioResult is the outcome of one scenario run: the loop counters plus
// the stability accounting the assertions are made against.
type ScenarioResult struct {
	Name   string
	Cycles int

	Adoptions           int
	ApplyFailures       int
	DegradedValidations int
	Reverted            int

	// MaxFlipsKey/MaxFlips identify the most oscillation-prone index (a flip
	// is a re-adoption after a revert).
	MaxFlipsKey string
	MaxFlips    int
	// AdoptedThenReverted is the sorted key set whose audit lineage the
	// suite reconstructs end to end.
	AdoptedThenReverted []string
	// FirstRevertAfterTrap is the 1-based window of the earliest revert at
	// or after the profile's TrapCycle (0 = none happened).
	FirstRevertAfterTrap int
	// MaxRevertLatency is the largest adopt-to-revert gap in windows.
	MaxRevertLatency int
	// FinalIndexKeys is the automation index set at the end of the run.
	FinalIndexKeys []string
	// Transitions is the deterministic per-key adopt/revert rendering,
	// compared byte for byte across worker counts.
	Transitions string
}

// Render writes the result as a stable, worker-count-independent summary.
func (res *ScenarioResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scenario %s: %d cycles\n", res.Name, res.Cycles)
	fmt.Fprintf(&sb, "adoptions=%d apply_failures=%d degraded=%d reverted=%d\n",
		res.Adoptions, res.ApplyFailures, res.DegradedValidations, res.Reverted)
	fmt.Fprintf(&sb, "max_flips=%d (%s) first_revert_after_trap=%d max_revert_latency=%d\n",
		res.MaxFlips, res.MaxFlipsKey, res.FirstRevertAfterTrap, res.MaxRevertLatency)
	fmt.Fprintf(&sb, "final=%s\n", strings.Join(res.FinalIndexKeys, " "))
	fmt.Fprintf(&sb, "adopted_then_reverted=%s\n", strings.Join(res.AdoptedThenReverted, " "))
	sb.WriteString(res.Transitions)
	return sb.String()
}

// Violations checks the result against the profile's stability bounds and
// returns one message per violated bound (empty = scenario passed). Bounds
// that need the trap to have happened are skipped when the run was too short
// to reach it.
func (res *ScenarioResult) Violations(p scenarios.Profile) []string {
	var out []string
	if res.DegradedValidations > 0 && res.Adoptions == 0 && p.RequireAdoption {
		out = append(out, fmt.Sprintf("no adoption and %d degraded validations", res.DegradedValidations))
	} else if p.RequireAdoption && res.Adoptions == 0 {
		out = append(out, "loop never adopted an index")
	}
	if res.MaxFlips > p.MaxFlipsPerKey {
		out = append(out, fmt.Sprintf("index %s flipped %d times, bound %d",
			res.MaxFlipsKey, res.MaxFlips, p.MaxFlipsPerKey))
	}
	trapWindow := p.TrapCycle + 1 // windows are 1-based, cycles 0-based
	pastTrap := res.Cycles > p.TrapCycle
	if p.RequireRevert && pastTrap {
		if res.FirstRevertAfterTrap == 0 {
			out = append(out, fmt.Sprintf("no revert at or after trap cycle %d", p.TrapCycle))
		} else if p.RevertWithin > 0 && res.FirstRevertAfterTrap > trapWindow+p.RevertWithin {
			out = append(out, fmt.Sprintf("first revert at window %d, later than trap+%d",
				res.FirstRevertAfterTrap, p.RevertWithin))
		}
	}
	final := map[string]bool{}
	for _, k := range res.FinalIndexKeys {
		final[k] = true
	}
	// Containment bounds describe the post-trap steady state; a run cut off
	// before the trap (or before the revert deadline) has not reached it.
	settled := pastTrap && (p.RevertWithin == 0 || res.Cycles > p.TrapCycle+p.RevertWithin)
	if settled {
		for _, k := range p.FinalContains {
			if !final[k] {
				out = append(out, fmt.Sprintf("final index set %v is missing %s", res.FinalIndexKeys, k))
			}
		}
		for _, k := range p.FinalExcludes {
			if final[k] {
				out = append(out, fmt.Sprintf("final index set still contains %s", k))
			}
		}
	}
	return out
}

// RunScenario drives the continuous-tuning loop through one adversarial
// scenario under the profile's loop policy, with the same per-cycle
// invariants as the fault suite: an accepted-but-degraded shadow verdict is
// fatal (it would be an ungated adoption), and the catalog/store cross-check
// runs after every cycle.
func RunScenario(sc scenarios.Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	p := sc.Profile()
	cycles := opts.Cycles
	if cycles <= 0 {
		cycles = p.Cycles
	}
	if p.WindowStatements <= 0 {
		return nil, fmt.Errorf("scenario %s: profile has no window size", sc.Name())
	}
	r := rand.New(rand.NewSource(opts.Seed))
	db, err := sc.Setup(r)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		db.SetObs(opts.Obs)
	}
	if opts.Audit != nil {
		db.SetAudit(opts.Audit)
	}
	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	cfg.Parallelism = opts.Parallelism

	threshold := p.DetectorThreshold
	if threshold <= 0 {
		threshold = 0.5
	}
	det := regression.NewDetector(threshold)
	det.ConfirmWindows = p.ConfirmWindows
	det.AnchorWindows = p.AnchorWindows
	det.RevertCooldown = p.RevertCooldown

	stab := regression.NewStability()
	if opts.Obs != nil {
		stab.SetObs(opts.Obs)
	}
	loop := &Loop{
		DB:               db,
		Adv:              core.NewAdvisor(db, cfg),
		Detector:         det,
		Gate:             shadow.DefaultGate(),
		Sample:           sc.Statement,
		Advance:          sc.Advance,
		R:                r,
		MaintenanceGuard: p.MaintenanceGuard,
		ApplyDrops:       p.ApplyDrops,
		DropAfterUnused:  p.DropAfterUnused,
		Stab:             stab,
	}
	for i := 0; i < cycles; i++ {
		if _, err := loop.RunCycle(p.WindowStatements); err != nil {
			return nil, fmt.Errorf("scenario %s cycle %d: %v", sc.Name(), i, err)
		}
		if err := checkLoopInvariants(db); err != nil {
			return nil, fmt.Errorf("scenario %s cycle %d: %v", sc.Name(), i, err)
		}
	}

	res := &ScenarioResult{
		Name:                sc.Name(),
		Cycles:              cycles,
		Adoptions:           loop.Adoptions,
		ApplyFailures:       loop.ApplyFailures,
		DegradedValidations: loop.DegradedValidations,
		Reverted:            loop.Reverted,
		AdoptedThenReverted: stab.AdoptedThenReverted(),
		MaxRevertLatency:    stab.MaxRevertLatency(),
		FinalIndexKeys:      automationIndexKeys(db),
	}
	res.MaxFlipsKey, res.MaxFlips = stab.MaxFlips()
	if _, w, ok := stab.FirstRevertAt(p.TrapCycle + 1); ok {
		res.FirstRevertAfterTrap = w
	}
	var tr strings.Builder
	stab.Render(&tr)
	res.Transitions = tr.String()
	return res, nil
}
