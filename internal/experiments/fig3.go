package experiments

import (
	"math/rand"

	"aim/internal/core"
	"aim/internal/obs"
	"aim/internal/sim"
	"aim/internal/workloads/products"
)

// Fig3Result holds the control/test CPU% and throughput series of one
// product's convergence experiment (Fig. 3a-3f).
type Fig3Result struct {
	Product string
	Control sim.Series // DBA-tuned machine, untouched
	Test    sim.Series // drops all indexes, then AIM rebuilds incrementally
	// Markers are tick indexes of notable events on the test machine.
	DropTick     int
	AIMStartTick int
	IndexTicks   []int
}

// Fig3Options parameterizes the convergence run.
type Fig3Options struct {
	WarmTicks      int // both machines with DBA indexes
	ObserveTicks   int // test machine unindexed, workload observed
	RecoverTicks   int // after AIM starts creating indexes
	QueriesPerTick int
	Capacity       float64 // CPU seconds per tick
	BuildEvery     int     // ticks between incremental index builds
	Seed           int64
	J              int
	// Obs, when non-nil, instruments both machines' databases.
	Obs *obs.Registry
}

// DefaultFig3Options keeps runs laptop-sized.
func DefaultFig3Options() Fig3Options {
	return Fig3Options{
		WarmTicks:      6,
		ObserveTicks:   10,
		RecoverTicks:   16,
		QueriesPerTick: 60,
		Capacity:       0.35,
		BuildEvery:     2,
		Seed:           3,
		J:              2,
	}
}

// RunFig3 reproduces the Fig. 3 protocol for one product: control and test
// machines share hardware, data and workload; the test machine drops every
// secondary index and AIM recreates them from the observed workload with
// incremental builds.
func RunFig3(spec products.Spec, opts Fig3Options) (*Fig3Result, error) {
	control, err := products.Build(spec)
	if err != nil {
		return nil, err
	}
	if err := control.ApplyDBAIndexes(); err != nil {
		return nil, err
	}
	test, err := products.Build(spec) // same seed → same data/workload
	if err != nil {
		return nil, err
	}
	if err := test.ApplyDBAIndexes(); err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		control.DB.SetObs(opts.Obs)
		test.DB.SetObs(opts.Obs)
	}

	mkSampler := func(p *products.Product, seed int64) sim.Sampler {
		return func(r *rand.Rand) string { return p.SampleStatement(r) }
	}
	controlM := sim.NewMachine(control.DB, mkSampler(control, opts.Seed), opts.QueriesPerTick, opts.Capacity, opts.Seed)
	testM := sim.NewMachine(test.DB, mkSampler(test, opts.Seed), opts.QueriesPerTick, opts.Capacity, opts.Seed)

	res := &Fig3Result{Product: spec.Name}
	res.Control.Label = "control (DBA)"
	res.Test.Label = "test (AIM)"
	tick := 0
	step := func() {
		res.Control.Ticks = append(res.Control.Ticks, controlM.RunTick(tick))
		res.Test.Ticks = append(res.Test.Ticks, testM.RunTick(tick))
		tick++
	}

	for i := 0; i < opts.WarmTicks; i++ {
		step()
	}
	// Drop all secondary indexes on the test machine.
	res.DropTick = tick
	test.DropAllSecondaryIndexes()
	testM.Monitor.Reset() // observe the unindexed workload fresh
	for i := 0; i < opts.ObserveTicks; i++ {
		step()
	}

	// AIM runs on the statistics observed since the drop.
	res.AIMStartTick = tick
	cfg := core.DefaultConfig()
	cfg.J = opts.J
	cfg.Selection.MinExecutions = 1
	cfg.Selection.TopK = 0
	adv := core.NewAdvisor(test.DB, cfg)
	rec, err := adv.Recommend(testM.Monitor)
	if err != nil {
		return nil, err
	}

	// Incremental builds with "sleeps" (plain ticks) in between, per §VI-C.
	next := 0
	for i := 0; i < opts.RecoverTicks; i++ {
		if next < len(rec.Create) && i%opts.BuildEvery == 0 {
			if _, err := testM.BuildIndex(rec.Create[next]); err == nil {
				res.IndexTicks = append(res.IndexTicks, tick)
			}
			next++
		}
		step()
	}
	return res, nil
}
