package experiments

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aim/internal/engine"
	"aim/internal/sqlparser"
	"aim/internal/sqltypes"
	"aim/internal/workloads/products"
)

// ExecBenchOptions parameterizes the replay/serving hot-path benchmark: a
// products-style database at Rows total rows, its DBA index set applied, and
// a fixed set of sampled read statements replayed through both execution
// engines. Join statements are measured separately — the batch engine
// deliberately routes join pipelines to the row loop, so they gauge fallback
// overhead, not vectorization gain.
type ExecBenchOptions struct {
	Rows           int   // total rows across all tables (default 100_000)
	Tables         int   // table count (default 2)
	Statements     int   // single-table read statements in the replay set (default 64)
	JoinStatements int   // join statements measured separately (default 8)
	Seed           int64 // workload generator seed (default 1)
}

// DefaultExecBenchOptions returns the configuration used by `make benchexec`.
func DefaultExecBenchOptions() ExecBenchOptions {
	return ExecBenchOptions{Rows: 100_000, Tables: 2, Statements: 64, JoinStatements: 8, Seed: 1}
}

// ExecBenchEntry mirrors one Go benchmark result; one op = one statement.
type ExecBenchEntry struct {
	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int   `json:"iterations"`
}

// ExecBenchResult reports both engines over both statement classes.
type ExecBenchResult struct {
	Rows           int
	Statements     int
	JoinStatements int

	RowEngine     ExecBenchEntry // single-table replay, tuple-at-a-time
	VecEngine     ExecBenchEntry // single-table replay, vectorized batches
	JoinRowEngine ExecBenchEntry
	JoinVecEngine ExecBenchEntry
}

// Speedup is row-engine ns over batch-engine ns for the single-table replay
// set — the number the >= 2x acceptance gate reads.
func (r *ExecBenchResult) Speedup() float64 {
	return float64(r.RowEngine.NsPerOp) / float64(r.VecEngine.NsPerOp)
}

// JoinSpeedup is the same ratio for join statements; expected ~1.0 since
// both engines run join pipelines on the row loop.
func (r *ExecBenchResult) JoinSpeedup() float64 {
	if r.JoinVecEngine.NsPerOp == 0 {
		return 1
	}
	return float64(r.JoinRowEngine.NsPerOp) / float64(r.JoinVecEngine.NsPerOp)
}

// execBenchSink defeats dead-code elimination across replay iterations.
var execBenchSink int64

// RunExecBench builds the workload, cross-checks engine parity on every
// statement in the replay set, then measures both engines. Statements are
// parsed once up front: the benchmark times plan + execute, not the parser.
func RunExecBench(opts ExecBenchOptions) (*ExecBenchResult, error) {
	if opts.Rows <= 0 {
		opts.Rows = 100_000
	}
	if opts.Tables <= 0 {
		opts.Tables = 2
	}
	if opts.Statements <= 0 {
		opts.Statements = 64
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	spec := products.Spec{
		Name: "ExecBench", Tables: opts.Tables, JoinQueries: 6,
		Type: products.ReadHeavy, TargetDBA: 12,
		RowsPerTable: opts.Rows / opts.Tables, Seed: 100 + opts.Seed,
	}
	p, err := products.Build(spec)
	if err != nil {
		return nil, err
	}
	if err := p.ApplyDBAIndexes(); err != nil {
		return nil, err
	}
	p.DB.Analyze()

	r := rand.New(rand.NewSource(opts.Seed))
	var reads, joins []sqlparser.Statement
	for attempts := 0; (len(reads) < opts.Statements || len(joins) < opts.JoinStatements) && attempts < 10_000; attempts++ {
		sql := p.SampleRead(r)
		isJoin := strings.Contains(sql, "JOIN")
		if isJoin && len(joins) >= opts.JoinStatements {
			continue
		}
		if !isJoin && len(reads) >= opts.Statements {
			continue
		}
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("execbench: sampled statement %q: %v", sql, err)
		}
		if isJoin {
			joins = append(joins, stmt)
		} else {
			reads = append(reads, stmt)
		}
	}
	if len(reads) < opts.Statements {
		return nil, fmt.Errorf("execbench: sampled only %d/%d single-table statements", len(reads), opts.Statements)
	}

	// Determinism gate before timing anything: every replayed statement must
	// produce byte-identical rows and Stats on both engines.
	for _, stmt := range append(append([]sqlparser.Statement(nil), reads...), joins...) {
		if err := checkEngineParity(p.DB, stmt); err != nil {
			return nil, err
		}
	}

	res := &ExecBenchResult{Rows: opts.Tables * spec.RowsPerTable,
		Statements: len(reads), JoinStatements: len(joins)}
	measure := func(stmts []sqlparser.Statement, rowOnly bool) (ExecBenchEntry, error) {
		if len(stmts) == 0 {
			return ExecBenchEntry{}, nil
		}
		p.DB.SetRowOnlyExec(rowOnly)
		var benchErr error
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := p.DB.ExecStmt(stmts[i%len(stmts)])
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				execBenchSink += out.Stats.RowsSent
			}
		})
		if benchErr != nil {
			return ExecBenchEntry{}, benchErr
		}
		return ExecBenchEntry{NsPerOp: br.NsPerOp(), Iterations: br.N}, nil
	}
	if res.RowEngine, err = measure(reads, true); err != nil {
		return nil, err
	}
	if res.VecEngine, err = measure(reads, false); err != nil {
		return nil, err
	}
	if res.JoinRowEngine, err = measure(joins, true); err != nil {
		return nil, err
	}
	if res.JoinVecEngine, err = measure(joins, false); err != nil {
		return nil, err
	}
	p.DB.SetRowOnlyExec(false)
	return res, nil
}

// checkEngineParity executes stmt on the row engine and the batch engine and
// fails unless rows (values and order) and every Stats counter match.
func checkEngineParity(db *engine.DB, stmt sqlparser.Statement) error {
	render := func(rowOnly bool) (string, error) {
		db.SetRowOnlyExec(rowOnly)
		out, err := db.ExecStmt(stmt)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, row := range out.Rows {
			b.WriteString(hex.EncodeToString(sqltypes.EncodeKey(nil, row...)))
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%+v", out.Stats)
		return b.String(), nil
	}
	rowRes, err := render(true)
	if err != nil {
		return err
	}
	vecRes, err := render(false)
	if err != nil {
		return err
	}
	if rowRes != vecRes {
		return fmt.Errorf("execbench: engine divergence on %s\n--- row ---\n%s\n--- vec ---\n%s",
			stmt.SQL(), rowRes, vecRes)
	}
	return nil
}
