package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"aim/internal/catalog"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/workload"
)

// Loop is the shared cycle driver behind the fault suite and the scenario
// suite: one database plus the continuous-tuning machinery (advisor, shadow
// gate, regression detector) driven cycle by cycle, with the per-cycle
// safety ordering both suites assert on — a window is executed and recorded,
// the advisor recommends, every creation passes the shadow gate or nothing
// changes, and the detector gets the last word. The zero values of the
// policy fields reproduce the original fault-suite behavior exactly.
type Loop struct {
	DB       *engine.DB
	Adv      *core.Advisor
	Detector *regression.Detector
	Gate     shadow.Gate
	// Sample draws the next workload statement for the given cycle.
	Sample func(cycle int, r *rand.Rand) string
	// Advance, when set, runs scenario-side effects (schema migrations, load
	// surges) at the start of each cycle, before the window executes.
	Advance func(db *engine.DB, cycle int, r *rand.Rand) error
	R       *rand.Rand

	// MaintenanceGuard additionally runs the detector's write-amplification
	// economics check each cycle (ObserveMaintenance).
	MaintenanceGuard bool
	// ApplyDrops retires automation indexes the advisor reports unused for
	// DropAfterUnused consecutive windows, journaled as "unused_index"
	// reverts. Off, unused indexes are only ever removed by regressions.
	ApplyDrops      bool
	DropAfterUnused int

	// Stab, when set, records every adopt/revert transition for the
	// stability assertions (flip counts, revert latency).
	Stab *regression.Stability

	// Cycle counts RunCycle calls; the counters below aggregate outcomes.
	Cycle               int
	Adoptions           int
	ApplyFailures       int
	DegradedValidations int
	Reverted            int

	unusedStreak map[string]int
}

// RunCycle drives one tuning cycle: replay a workload window, recommend,
// gate creations through shadow validation, apply only on acceptance, then
// run the regression detector and revert what it flags. Every failure path
// degrades to "no change this cycle"; an accepted-but-degraded verdict is
// the one fatal error, because it would be an ungated adoption.
func (l *Loop) RunCycle(windowStatements int) (adopted []*catalog.Index, err error) {
	cycle := l.Cycle
	l.Cycle++
	if l.Stab != nil {
		l.Stab.BeginWindow()
	}
	if l.Advance != nil {
		if err := l.Advance(l.DB, cycle, l.R); err != nil {
			return nil, fmt.Errorf("advance cycle %d: %v", cycle, err)
		}
	}
	mon := workload.NewMonitor()
	for i := 0; i < windowStatements; i++ {
		sql := l.Sample(cycle, l.R)
		res, err := l.DB.Exec(sql)
		if err != nil {
			continue
		}
		mon.Record(sql, res.Stats)
	}

	rec, err := l.Adv.Recommend(mon)
	if err != nil {
		return nil, fmt.Errorf("recommend: %v", err)
	}
	// Candidates inside their revert cooldown are not re-proposed this
	// cycle: an index the loop just reverted must wait the cooldown out, or
	// a borderline workload flips it adopt/revert forever.
	create := rec.Create
	if l.Detector != nil {
		kept := make([]*catalog.Index, 0, len(create))
		for _, ix := range create {
			if l.Detector.InCooldown(ix.Key()) {
				continue
			}
			kept = append(kept, ix)
		}
		create = kept
	}
	if len(create) > 0 {
		report, err := shadow.Validate(l.DB, create, mon, l.Gate)
		if err != nil {
			return nil, fmt.Errorf("validate: %v", err)
		}
		if report.Accepted && report.Degraded {
			return nil, fmt.Errorf("degraded verdict accepted: %s", report.Reason)
		}
		if report.Degraded {
			l.DegradedValidations++
		}
		if report.Accepted {
			// Only the validated creations are applied; unused-index drops go
			// through the explicit retirement path below so that nothing
			// changes the physical design without either a gate verdict or a
			// journaled revert reason.
			if _, err := l.Adv.Apply(&core.Recommendation{Create: create}); err != nil {
				// CreateIndexes rolled the batch back; the cycle ends with
				// the catalog unchanged and a later cycle re-validates.
				l.ApplyFailures++
			} else {
				l.Adoptions++
				adopted = create
				if l.Stab != nil {
					l.Stab.NoteAdopted(indexKeys(create)...)
				}
			}
		}
	}

	if l.ApplyDrops && l.Detector != nil {
		l.retireUnused(rec.Drop)
	}

	if l.Detector != nil {
		regs := l.Detector.Observe(l.DB, mon)
		if l.MaintenanceGuard {
			regs = append(regs, l.Detector.ObserveMaintenance(l.DB, mon)...)
		}
		if len(regs) > 0 {
			keys := l.Detector.Revert(l.DB, regs)
			l.Reverted += len(keys)
			if l.Stab != nil {
				l.Stab.NoteReverted(keys...)
			}
		}
	}
	return adopted, nil
}

// retireUnused ages automation indexes through the advisor's unused-drop
// proposals: an index reported unused for DropAfterUnused consecutive
// windows is dropped through the detector's revert path (idempotent drop,
// "unused_index" journal record, cooldown registration). One busy window
// resets the streak.
func (l *Loop) retireUnused(drop []*catalog.Index) {
	if l.unusedStreak == nil {
		l.unusedStreak = map[string]int{}
	}
	after := l.DropAfterUnused
	if after <= 0 {
		after = 3
	}
	unused := map[string]*catalog.Index{}
	for _, ix := range drop {
		if ix.Hypothetical || ix.CreatedBy == "" || ix.CreatedBy == "dba" {
			continue
		}
		unused[ix.Key()] = ix
	}
	for k := range l.unusedStreak {
		if _, ok := unused[k]; !ok {
			delete(l.unusedStreak, k)
		}
	}
	keys := make([]string, 0, len(unused))
	for k := range unused {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l.unusedStreak[k]++
		if l.unusedStreak[k] < after {
			continue
		}
		delete(l.unusedStreak, k)
		reg := &regression.Regression{
			ReasonCode:     "unused_index",
			SuspectIndexes: []*catalog.Index{unused[k]},
		}
		dropped := l.Detector.Revert(l.DB, []*regression.Regression{reg})
		l.Reverted += len(dropped)
		if l.Stab != nil {
			l.Stab.NoteReverted(dropped...)
		}
	}
}

func indexKeys(ixs []*catalog.Index) []string {
	out := make([]string, len(ixs))
	for i, ix := range ixs {
		out[i] = ix.Key()
	}
	return out
}
