package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// serveSuiteOptions picks the run size: the full 16-client acceptance run
// when AIM_SERVE_SUITE=1 (the CI "servesuite" job via `make servesuite`), a
// reduced fleet otherwise so the tier-1 `go test` stays fast. AIM_SERVE_SOAK=1
// grows the run into the nightly soak, and AIM_SERVE_JOURNAL names the
// decision-journal artifact it leaves behind.
func serveSuiteOptions(t *testing.T) ServeSuiteOptions {
	opts := DefaultServeSuiteOptions()
	switch {
	case os.Getenv("AIM_SERVE_SOAK") == "1":
		opts.Rounds = 40
		opts.PerRound = 25
	case os.Getenv("AIM_SERVE_SUITE") != "1":
		opts.Clients = 4
		opts.Rounds = 3
		opts.PerRound = 12
		opts.Rows = 600
		opts.Parallelism = []int{1, 2}
		if testing.Short() {
			opts.Rounds = 2
			opts.Parallelism = []int{2}
		}
	}
	opts.JournalPath = os.Getenv("AIM_SERVE_JOURNAL")
	opts.TimeSeriesPath = os.Getenv("AIM_SERVE_TIMESERIES")
	return opts
}

// TestServeSuite boots a real aimd server on loopback for every advisor
// worker count in the sweep, drives a seeded concurrent client fleet over
// TCP with a tuning cycle at each round barrier, and asserts the live-path
// acceptance invariants:
//
//   - the fleet completes with zero statement errors and the server drains
//     cleanly (no forced connections, connections_open back to 0, no
//     buffered statements left behind);
//   - the adopted index set equals the offline experiments.Loop replay of
//     the same statement stream — the machinery the fault and scenario
//     suites certify;
//   - the per-round verdict lines are byte-identical across worker counts
//     AND to an offline single-threaded tuner replay;
//   - the normalized decision journals are identical across worker counts;
//   - every adoption closes a complete audit lineage (candidate → selected
//     rank → accepting shadow verdict → adopt): zero ungated adoptions.
func TestServeSuite(t *testing.T) {
	opts := serveSuiteOptions(t)
	res, err := RunServeSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(opts.Parallelism) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(opts.Parallelism))
	}
	t.Logf("reference index set: %v", res.ReferenceKeys)
	for _, run := range res.Runs {
		t.Logf("workers=%d stmts=%d rows=%d adoptions=%d traced=%d reverted=%d drain=%.3fs journal=%d records",
			run.Workers, run.Statements, run.Rows, run.Adoptions, run.TracedAdoptions, run.Reverted, run.DrainSeconds, len(run.Journal))
		if run.Adoptions == 0 {
			t.Errorf("workers=%d: live run adopted nothing", run.Workers)
		}
		if run.TracedAdoptions == 0 {
			t.Errorf("workers=%d: no adoption lineage resolved to traced statement IDs", run.Workers)
		}
		var ts struct {
			Samples []struct {
				Rates map[string]float64 `json:"rates,omitempty"`
			} `json:"samples"`
		}
		if err := json.Unmarshal(run.TimeSeries, &ts); err != nil {
			t.Fatalf("workers=%d: timeseries not JSON: %v", run.Workers, err)
		}
		if len(ts.Samples) != opts.Rounds {
			t.Errorf("workers=%d: %d timeseries samples, want one per round (%d)", run.Workers, len(ts.Samples), opts.Rounds)
		}
		if len(ts.Samples) > 1 && ts.Samples[1].Rates["server.frames"] <= 0 {
			t.Errorf("workers=%d: timeseries has no server.frames rate: %+v", run.Workers, ts.Samples[1])
		}
	}
	// RunServeSuite already failed hard on any divergence; spot-check the
	// cross-run verdict equality here too so a future refactor of the
	// harness cannot silently drop the assertion.
	for i := 1; i < len(res.Runs); i++ {
		if !equalStrings(res.Runs[i].Verdicts, res.Runs[0].Verdicts) {
			t.Errorf("verdicts diverge between workers=%d and workers=%d", res.Runs[0].Workers, res.Runs[i].Workers)
		}
	}
}
