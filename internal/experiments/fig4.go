// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (§VI): Table II, Figures 3-6 and the
// continuous-tuning study. Each harness returns structured rows/series; the
// aimbench command prints them and bench_test.go wraps them as Go
// benchmarks. Absolute numbers differ from the paper (different substrate);
// the shapes — who wins, AIM's flat runtime, crossovers at small budgets —
// are the reproduction target.
package experiments

import (
	"fmt"
	"time"

	"aim/internal/baselines"
	"aim/internal/engine"
	"aim/internal/obs"
	"aim/internal/workload"
	"aim/internal/workloads/job"
	"aim/internal/workloads/tpch"
)

// Fig4Point is one (budget, algorithm) measurement.
type Fig4Point struct {
	Algorithm      string
	BudgetBytes    int64
	RelativeCost   float64 // estimated workload cost / unindexed cost
	Runtime        time.Duration
	OptimizerCalls int64
	IndexCount     int
}

// Fig4Result holds one benchmark's sweep.
type Fig4Result struct {
	Benchmark string
	Points    []Fig4Point
}

// Fig4Options parameterizes the sweep.
type Fig4Options struct {
	Benchmark string  // "tpch" or "job"
	Scale     float64 // dataset scale
	Seed      int64
	// BudgetFractions of the full (unconstrained AIM) recommendation size.
	BudgetFractions []float64
	MaxWidth        int // like the paper: 4 for TPC-H, 3 for JOB
	Algorithms      []baselines.Advisor
	// Obs, when non-nil, instruments the benchmark database (what-if
	// latency, cost-cache and executor metrics, advisor spans).
	Obs *obs.Registry
}

// DefaultFig4Options mirrors §VI-B: AIM vs DTA vs Extend.
func DefaultFig4Options(benchmark string) Fig4Options {
	width := 4
	if benchmark == "job" {
		width = 3
	}
	return Fig4Options{
		Benchmark:       benchmark,
		Scale:           0.2,
		Seed:            11,
		BudgetFractions: []float64{0.1, 0.25, 0.5, 0.75, 1.0},
		MaxWidth:        width,
		Algorithms: []baselines.Advisor{
			&baselines.AIM{J: 2, MaxWidth: width, EnableCovering: true},
			&baselines.DTA{MaxWidth: width},
			&baselines.Extend{MaxWidth: width},
		},
	}
}

// buildBenchmark constructs the analytical database + workload monitor with
// every query recorded once (purely analytical comparison, like §VI-B).
// reg (may be nil) is attached before the workload replay so executor
// metrics cover it.
func buildBenchmark(name string, scale float64, seed int64, reg *obs.Registry) (*engine.DB, []*workload.QueryStats, error) {
	var db *engine.DB
	var queries []string
	var err error
	switch name {
	case "tpch":
		db, err = tpch.Build(scale, seed)
		queries = tpch.Queries(seed)
	case "job":
		db, err = job.Build(scale, seed)
		queries = job.Queries(seed)
	default:
		return nil, nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	if err != nil {
		return nil, nil, err
	}
	if reg != nil {
		db.SetObs(reg)
	}
	mon := workload.NewMonitor()
	for _, q := range queries {
		res, execErr := db.Exec(q)
		if execErr != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %v", name, execErr)
		}
		if err := mon.Record(q, res.Stats); err != nil {
			return nil, nil, err
		}
	}
	return db, mon.Representative(workload.SelectionConfig{MinExecutions: 1}), nil
}

// RunFig4 sweeps storage budgets for every algorithm on one benchmark,
// producing the data behind Figures 4a-4d.
func RunFig4(opts Fig4Options) (*Fig4Result, error) {
	db, queries, err := buildBenchmark(opts.Benchmark, opts.Scale, opts.Seed, opts.Obs)
	if err != nil {
		return nil, err
	}
	unindexed := baselines.WorkloadCost(db, queries, nil)
	if unindexed <= 0 {
		return nil, fmt.Errorf("experiments: zero unindexed cost")
	}

	// Reference size: the unconstrained AIM recommendation.
	ref, err := (&baselines.AIM{J: 2, MaxWidth: opts.MaxWidth, EnableCovering: true}).Recommend(db, queries, 0)
	if err != nil {
		return nil, err
	}
	fullBytes := int64(0)
	for _, ix := range ref.Indexes {
		fullBytes += db.EstimateIndexSize(ix)
	}
	if fullBytes == 0 {
		fullBytes = 1 << 20
	}

	res := &Fig4Result{Benchmark: opts.Benchmark}
	for _, frac := range opts.BudgetFractions {
		budget := int64(float64(fullBytes) * frac)
		for _, algo := range opts.Algorithms {
			r, err := algo.Recommend(db, queries, budget)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %v", algo.Name(), err)
			}
			cost := baselines.WorkloadCost(db, queries, r.Indexes)
			res.Points = append(res.Points, Fig4Point{
				Algorithm:      algo.Name(),
				BudgetBytes:    budget,
				RelativeCost:   cost / unindexed,
				Runtime:        r.Elapsed,
				OptimizerCalls: r.OptimizerCalls,
				IndexCount:     len(r.Indexes),
			})
		}
	}
	return res, nil
}
