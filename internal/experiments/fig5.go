package experiments

import (
	"aim/internal/baselines"
	"aim/internal/obs"
)

// Fig5Row is one query's estimated processing cost under each algorithm's
// configuration at the fixed budget (Fig. 5a/5b).
type Fig5Row struct {
	Query     string // "Q1".."Q22"
	Unindexed float64
	// Costs maps algorithm name -> estimated cost with its configuration.
	Costs map[string]float64
	// Affected marks queries whose cost changed under any configuration
	// (Fig. 5a shows only those).
	Affected bool
}

// Fig5Options parameterizes the per-query comparison.
type Fig5Options struct {
	Scale          float64
	Seed           int64
	BudgetFraction float64 // of the unconstrained AIM size (≈15 GB in paper)
	MaxWidth       int
	Algorithms     []baselines.Advisor
	// Obs, when non-nil, instruments the benchmark database.
	Obs *obs.Registry
}

// DefaultFig5Options mirrors the paper's TPC-H SF10 / 15 GB setting.
func DefaultFig5Options() Fig5Options {
	return Fig5Options{
		Scale:          0.2,
		Seed:           11,
		BudgetFraction: 0.75,
		MaxWidth:       4,
		Algorithms: []baselines.Advisor{
			&baselines.AIM{J: 2, MaxWidth: 4, EnableCovering: true},
			&baselines.DTA{MaxWidth: 4},
			&baselines.Extend{MaxWidth: 4},
		},
	}
}

// RunFig5 computes per-query costs on TPC-H for each algorithm's selected
// configuration at the common budget.
func RunFig5(opts Fig5Options) ([]*Fig5Row, error) {
	db, queries, err := buildBenchmark("tpch", opts.Scale, opts.Seed, opts.Obs)
	if err != nil {
		return nil, err
	}
	ref, err := (&baselines.AIM{J: 2, MaxWidth: opts.MaxWidth, EnableCovering: true}).Recommend(db, queries, 0)
	if err != nil {
		return nil, err
	}
	fullBytes := int64(0)
	for _, ix := range ref.Indexes {
		fullBytes += db.EstimateIndexSize(ix)
	}
	budget := int64(float64(fullBytes) * opts.BudgetFraction)

	rows := make([]*Fig5Row, 0, len(queries))
	for i := range queries {
		rows = append(rows, &Fig5Row{Query: queryLabel(i), Costs: map[string]float64{}})
	}
	// Unindexed per-query costs.
	for i, q := range queries {
		c := baselines.WorkloadCost(db, queries[i:i+1], nil)
		rows[i].Unindexed = c
		_ = q
	}
	for _, algo := range opts.Algorithms {
		r, err := algo.Recommend(db, queries, budget)
		if err != nil {
			return nil, err
		}
		for i := range queries {
			c := baselines.WorkloadCost(db, queries[i:i+1], r.Indexes)
			rows[i].Costs[algo.Name()] = c
			if c < rows[i].Unindexed*0.999 {
				rows[i].Affected = true
			}
		}
	}
	return rows, nil
}

func queryLabel(i int) string {
	return "Q" + itoa(i+1)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
