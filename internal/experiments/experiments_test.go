package experiments

import (
	"testing"

	"aim/internal/baselines"
	"aim/internal/sim"
	"aim/internal/workloads/products"
)

// fastProduct is a reduced spec for CI-speed experiment tests.
func fastProduct() products.Spec {
	return products.Spec{Name: "Product T", Tables: 8, JoinQueries: 10, Type: products.Balanced,
		TargetDBA: 24, RowsPerTable: 900, Seed: 7}
}

func TestRunTable2Product(t *testing.T) {
	opts := DefaultTable2Options()
	opts.WorkloadStatements = 400
	row, err := RunTable2Product(fastProduct(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if row.DBAIndexCount == 0 || row.AIMIndexCount == 0 {
		t.Fatalf("row = %+v", row)
	}
	if row.Jaccard <= 0 || row.Jaccard > 1 {
		t.Fatalf("jaccard = %v", row.Jaccard)
	}
	if row.DBABytes <= 0 || row.AIMBytes <= 0 {
		t.Fatalf("bytes = %d / %d", row.DBABytes, row.AIMBytes)
	}
	// The paper's qualitative claim: AIM matches manual tuning with a
	// similar-or-smaller set; allow slack but catch blowups.
	if row.AIMIndexCount > row.DBAIndexCount*2 {
		t.Errorf("AIM set much larger than DBA: %d vs %d", row.AIMIndexCount, row.DBAIndexCount)
	}
}

func TestRunFig3Convergence(t *testing.T) {
	opts := DefaultFig3Options()
	opts.WarmTicks, opts.ObserveTicks, opts.RecoverTicks = 3, 4, 8
	opts.QueriesPerTick = 30
	res, err := RunFig3(fastProduct(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Control.Ticks) != len(res.Test.Ticks) {
		t.Fatal("series length mismatch")
	}
	// After the drop, the test machine must be measurably worse than in
	// its warm phase; after AIM rebuilds, it must recover.
	warm := avgCPURange(res.Test, 0, res.DropTick)
	degraded := avgCPURange(res.Test, res.DropTick, res.AIMStartTick)
	final := res.Test.AvgCPU(3)
	if degraded <= warm*1.05 {
		t.Errorf("dropping indexes did not hurt: warm=%.1f degraded=%.1f", warm, degraded)
	}
	if final >= degraded*0.95 {
		t.Errorf("AIM did not recover: degraded=%.1f final=%.1f", degraded, final)
	}
	if len(res.IndexTicks) == 0 {
		t.Error("no incremental builds recorded")
	}
	// Control stays roughly flat (its physical design never changes).
	cWarm := avgCPURange(res.Control, 0, res.DropTick)
	cEnd := res.Control.AvgCPU(3)
	if cEnd > cWarm*1.6+5 {
		t.Errorf("control drifted: %v -> %v", cWarm, cEnd)
	}
}

// avgCPURange averages CPU%% of ticks [lo, hi) in a series.
func avgCPURange(s sim.Series, lo, hi int) float64 {
	if hi > len(s.Ticks) {
		hi = len(s.Ticks)
	}
	if lo >= hi {
		return 0
	}
	sum := 0.0
	for _, t := range s.Ticks[lo:hi] {
		sum += t.CPUPercent
	}
	return sum / float64(hi-lo)
}

func TestRunFig4TPCHShape(t *testing.T) {
	opts := DefaultFig4Options("tpch")
	opts.Scale = 0.05
	opts.BudgetFractions = []float64{0.3, 1.0}
	res, err := RunFig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 { // 2 budgets x 3 algorithms
		t.Fatalf("points = %d", len(res.Points))
	}
	byAlgo := map[string][]Fig4Point{}
	for _, p := range res.Points {
		byAlgo[p.Algorithm] = append(byAlgo[p.Algorithm], p)
		if p.RelativeCost <= 0 || p.RelativeCost > 1.3 {
			t.Errorf("%s: relative cost %v out of range", p.Algorithm, p.RelativeCost)
		}
	}
	for algo, pts := range byAlgo {
		// All algorithms must beat the unindexed baseline at full budget.
		last := pts[len(pts)-1]
		if last.RelativeCost >= 1 {
			t.Errorf("%s: no improvement at full budget (%v)", algo, last.RelativeCost)
		}
	}
	// The runtime shape: AIM's optimizer-call count is far below DTA and
	// Extend at every budget.
	for i := range byAlgo["AIM"] {
		aim := byAlgo["AIM"][i].OptimizerCalls
		if aim*2 > byAlgo["DTA"][i].OptimizerCalls || aim*2 > byAlgo["Extend"][i].OptimizerCalls {
			t.Errorf("AIM calls (%d) not clearly below DTA (%d) / Extend (%d)",
				aim, byAlgo["DTA"][i].OptimizerCalls, byAlgo["Extend"][i].OptimizerCalls)
		}
	}
}

func TestRunFig4JOBShape(t *testing.T) {
	opts := DefaultFig4Options("job")
	opts.Scale = 0.05
	opts.BudgetFractions = []float64{1.0}
	res, err := RunFig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Algorithm == "AIM" && p.RelativeCost >= 1 {
			t.Errorf("AIM did not improve JOB: %v", p.RelativeCost)
		}
	}
}

func TestRunFig4UnknownBenchmark(t *testing.T) {
	opts := DefaultFig4Options("tpch")
	opts.Benchmark = "nope"
	if _, err := RunFig4(opts); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunFig5PerQueryCosts(t *testing.T) {
	opts := DefaultFig5Options()
	opts.Scale = 0.05
	opts.Algorithms = []baselines.Advisor{
		&baselines.AIM{J: 2, MaxWidth: 4, EnableCovering: true},
		&baselines.Extend{MaxWidth: 3},
	}
	rows, err := RunFig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	affected := 0
	for _, r := range rows {
		if r.Unindexed <= 0 {
			t.Errorf("%s: no unindexed cost", r.Query)
		}
		if len(r.Costs) != 2 {
			t.Errorf("%s: costs = %v", r.Query, r.Costs)
		}
		if r.Affected {
			affected++
		}
	}
	if affected == 0 {
		t.Error("no queries affected by indexes")
	}
}

func TestRunFig6JoinParameter(t *testing.T) {
	opts := DefaultFig6Options()
	opts.Rows = 1500
	opts.PhaseTicks = 3
	opts.QueriesPerTick = 15
	res, err := RunFig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions per §VI-C: AIM's final throughput beats the greedy
	// baseline, and j=2 is at least as good as j=1.
	if res.AIMFinalThroughput < res.GIAFinalThroughput {
		t.Errorf("AIM throughput %.1f below GIA %.1f", res.AIMFinalThroughput, res.GIAFinalThroughput)
	}
	if res.J2Throughput+0.5 < res.J1Throughput {
		t.Errorf("j=2 (%v) worse than j=1 (%v)", res.J2Throughput, res.J1Throughput)
	}
	if len(res.AIM.Ticks) != len(res.GIA.Ticks) {
		t.Error("series mismatch")
	}
	if res.JStartTicks[1] == 0 || res.JStartTicks[2] <= res.JStartTicks[1] {
		t.Error("phase markers wrong")
	}
}

func TestRunContinuousTuning(t *testing.T) {
	opts := DefaultContinuousOptions()
	opts.Rows = 2000
	opts.WindowStatements = 120
	res, err := RunContinuous(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewIndexes == 0 {
		t.Fatal("shift did not trigger new indexes")
	}
	if !res.ShadowAccepted {
		t.Fatal("shadow gate rejected the fix")
	}
	if res.Phase3CPU >= res.Phase2CPU {
		t.Errorf("re-tuning did not save CPU: %v -> %v", res.Phase2CPU, res.Phase3CPU)
	}
	if res.ImprovedQueries == 0 {
		t.Error("no queries improved")
	}
	if res.CPUSavingFraction <= 0 {
		t.Error("no savings fraction")
	}
}
