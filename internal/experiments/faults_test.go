package experiments

import (
	"os"
	"reflect"
	"testing"

	"aim/internal/failpoint"
	"aim/internal/obs"
)

// faultSuiteOptions picks the sweep size: the full 1000-cycle acceptance
// run when AIM_FAULT_SUITE=1 (the CI "faults" job via `make faultsuite`),
// a reduced but rate-complete sweep otherwise so the tier-1 `go test`
// stays fast.
func faultSuiteOptions(t *testing.T) FaultSuiteOptions {
	opts := DefaultFaultSuiteOptions()
	if os.Getenv("AIM_FAULT_SUITE") != "1" {
		opts.Cycles = 30
		if testing.Short() {
			opts.Cycles = 8
		}
	}
	return opts
}

// TestTuningLoopUnderFaults drives the continuous-tuning loop through the
// fault-rate sweep and asserts the three hardening invariants: the loop
// never adopts a non-gated index (checked inside runCycle: Accepted implies
// not Degraded), never leaks a partially built or half-dropped index into
// the catalog (checkLoopInvariants after every cycle), and converges to the
// fault-free recommendation set once the faults stop.
func TestTuningLoopUnderFaults(t *testing.T) {
	if failpoint.Enabled() {
		t.Fatal("failpoints already active; refusing to run the suite on top")
	}
	opts := faultSuiteOptions(t)
	reg := obs.NewRegistry()
	failpoint.Instrument(reg)
	defer failpoint.Instrument(nil)
	opts.Obs = reg

	res, err := RunFaultSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerRate) != len(opts.Rates) {
		t.Fatalf("got %d rate results, want %d", len(res.PerRate), len(opts.Rates))
	}
	for _, rr := range res.PerRate {
		t.Logf("rate=%.2f faults=%d adoptions=%d apply_failures=%d degraded=%d reverted=%d",
			rr.Rate, rr.FaultsInjected, rr.Adoptions, rr.ApplyFailures, rr.DegradedValidations, rr.Reverted)
		if !reflect.DeepEqual(rr.FinalIndexKeys, res.ReferenceKeys) {
			t.Errorf("rate %g: final index set %v diverged from fault-free reference %v",
				rr.Rate, rr.FinalIndexKeys, res.ReferenceKeys)
		}
	}
	// The highest rate must actually have injected faults — otherwise the
	// suite silently tested nothing.
	last := res.PerRate[len(res.PerRate)-1]
	if last.FaultsInjected == 0 {
		t.Fatalf("rate %g injected zero faults; sites are not wired", last.Rate)
	}
	if got := reg.Counter("faults.injected").Value(); got == 0 {
		t.Error("faults.injected counter never incremented")
	}
}

// TestFaultSuiteRejectsBadOptions pins the guard against zero-sized sweeps.
func TestFaultSuiteRejectsBadOptions(t *testing.T) {
	if _, err := RunFaultSuite(FaultSuiteOptions{}); err == nil {
		t.Fatal("zero-value options must be rejected")
	}
}
