package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// TestBenchExecReport measures replay throughput of the vectorized batch
// engine against the row engine on the products workload and records the
// results in BENCH_exec.json at the repo root. Wall-clock sensitive, so it
// is env-gated out of plain `go test ./...`; `make benchexec` invokes it.
// RunExecBench cross-checks byte-identical rows and Stats on every replayed
// statement before any timing, so a passing report also certifies parity.
func TestBenchExecReport(t *testing.T) {
	if os.Getenv("AIM_BENCH_EXEC") == "" {
		t.Skip("set AIM_BENCH_EXEC=1 to run (invoked by make benchexec)")
	}
	res, err := RunExecBench(DefaultExecBenchOptions())
	if err != nil {
		t.Fatal(err)
	}

	report := struct {
		Rows       int                       `json:"rows"`
		GoVersion  string                    `json:"go_version"`
		GOMAXPROCS int                       `json:"gomaxprocs"`
		Benchmarks map[string]ExecBenchEntry `json:"benchmarks"`
		Speedup    map[string]float64        `json:"speedup"`
	}{
		Rows:       res.Rows,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: map[string]ExecBenchEntry{
			"ReplayRowEngine":     res.RowEngine,
			"ReplayVecEngine":     res.VecEngine,
			"ReplayJoinRowEngine": res.JoinRowEngine,
			"ReplayJoinVecEngine": res.JoinVecEngine,
		},
		Speedup: map[string]float64{
			"replay":      res.Speedup(),
			"join_replay": res.JoinSpeedup(),
		},
	}
	t.Logf("replay speedup: %.2fx over %d statements (%d rows); join fallback: %.2fx over %d statements",
		res.Speedup(), res.Statements, res.Rows, res.JoinSpeedup(), res.JoinStatements)
	if sp := res.Speedup(); sp < 2 {
		t.Errorf("vectorized replay only %.2fx over the row engine, want >= 2x", sp)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_exec.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote BENCH_exec.json: replay %.2fx, join fallback %.2fx\n",
		res.Speedup(), res.JoinSpeedup())
}

// TestExecBenchSmoke runs a miniature configuration on every plain test run:
// it exercises the workload build, the pre-timing engine-parity gate, and
// both measurement paths without wall-clock assertions.
func TestExecBenchSmoke(t *testing.T) {
	res, err := RunExecBench(ExecBenchOptions{Rows: 2_000, Tables: 2, Statements: 8, JoinStatements: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements != 8 {
		t.Fatalf("replay set has %d statements, want 8", res.Statements)
	}
	if res.VecEngine.NsPerOp <= 0 || res.RowEngine.NsPerOp <= 0 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
}
