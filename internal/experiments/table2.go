package experiments

import (
	"math/rand"

	"aim/internal/core"
	"aim/internal/obs"
	"aim/internal/workload"
	"aim/internal/workloads/products"
)

// Table2Row is one product's DBA-vs-AIM comparison (Table II).
type Table2Row struct {
	Product       string
	Tables        int
	JoinQueries   int
	WorkloadType  string
	DBAIndexCount int
	AIMIndexCount int
	DBABytes      int64
	AIMBytes      int64
	Jaccard       float64
}

// Table2Options parameterizes the comparison.
type Table2Options struct {
	// Products restricts which specs run (nil = all of Table II).
	Products []products.Spec
	// WorkloadStatements is how many statements are replayed to build the
	// observed workload window.
	WorkloadStatements int
	Seed               int64
	// J is AIM's join parameter.
	J int
	// Obs, when non-nil, instruments each product database.
	Obs *obs.Registry
}

// DefaultTable2Options runs every product with a moderate window.
func DefaultTable2Options() Table2Options {
	return Table2Options{WorkloadStatements: 1500, Seed: 5, J: 2}
}

// RunTable2 reproduces the Table II experiment for one product: replay the
// workload on the unindexed database, run AIM from scratch, and compare
// the resulting set with the DBA's.
func RunTable2Product(spec products.Spec, opts Table2Options) (*Table2Row, error) {
	p, err := products.Build(spec)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		p.DB.SetObs(opts.Obs)
	}
	// Observe the workload with no secondary indexes (the "from scratch"
	// protocol of §VI-A). The window scales with the number of query
	// templates so that every template is observed a few times.
	r := rand.New(rand.NewSource(opts.Seed))
	n := opts.WorkloadStatements
	if minN := p.NumTemplates() * 8; n < minN {
		n = minN
	}
	mon, err := replayProduct(p, r, n)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig()
	cfg.J = opts.J
	cfg.Selection.MinExecutions = 1
	cfg.Selection.TopK = 0
	adv := core.NewAdvisor(p.DB, cfg)
	rec, err := adv.Recommend(mon)
	if err != nil {
		return nil, err
	}

	row := &Table2Row{
		Product:       spec.Name,
		Tables:        spec.Tables,
		JoinQueries:   spec.JoinQueries,
		WorkloadType:  spec.Type.String(),
		DBAIndexCount: len(p.DBAIndexes),
		AIMIndexCount: len(rec.Create),
		Jaccard:       products.Jaccard(p.DBAIndexes, rec.Create),
	}
	for _, ix := range p.DBAIndexes {
		row.DBABytes += p.DB.EstimateIndexSize(ix)
	}
	row.AIMBytes = rec.TotalCreateBytes()
	return row, nil
}

// RunTable2 runs the comparison for every requested product.
func RunTable2(opts Table2Options) ([]*Table2Row, error) {
	specs := opts.Products
	if specs == nil {
		specs = products.Catalog
	}
	var rows []*Table2Row
	for _, spec := range specs {
		row, err := RunTable2Product(spec, opts)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// replayProduct executes sampled statements and collects the monitor.
func replayProduct(p *products.Product, r *rand.Rand, n int) (*workload.Monitor, error) {
	mon := workload.NewMonitor()
	for i := 0; i < n; i++ {
		sql := p.SampleStatement(r)
		res, execErr := p.DB.Exec(sql)
		if execErr != nil {
			return nil, execErr
		}
		if err := mon.Record(sql, res.Stats); err != nil {
			return nil, err
		}
	}
	return mon, nil
}
