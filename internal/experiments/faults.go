package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/failpoint"
	"aim/internal/obs"
	"aim/internal/regression"
	"aim/internal/shadow"
)

// FaultSuiteOptions parameterizes the fault-injection study of the
// continuous-tuning loop: N tuning cycles run with every loop failpoint
// armed at a given rate, then the faults stop and the loop drains to its
// steady state.
type FaultSuiteOptions struct {
	// Cycles is the number of tuning cycles driven while faults are armed.
	Cycles int
	// DrainCycles is the number of fault-free cycles afterwards; the loop
	// must converge to the fault-free recommendation set within them.
	DrainCycles int
	// Rates are the per-site fault probabilities to sweep.
	Rates []float64
	// Seed fixes the workload stream and every failpoint PRNG.
	Seed int64
	// Rows sizes the table; WindowStatements sizes each cycle's workload.
	Rows             int
	WindowStatements int
	// Obs, when non-nil, collects the faults.* counters for the run.
	Obs *obs.Registry
}

// DefaultFaultSuiteOptions is the configuration the CI "faults" job runs:
// the acceptance sweep of 1000 cycles at rates 1%, 5% and 20%.
func DefaultFaultSuiteOptions() FaultSuiteOptions {
	return FaultSuiteOptions{
		Cycles:           1000,
		DrainCycles:      8,
		Rates:            []float64{0.01, 0.05, 0.2},
		Seed:             23,
		Rows:             1500,
		WindowStatements: 30,
	}
}

// FaultRateResult is the outcome of one fault-rate sweep.
type FaultRateResult struct {
	Rate                float64
	Cycles              int
	FaultsInjected      int64
	Adoptions           int
	ApplyFailures       int
	DegradedValidations int
	Reverted            int
	// FinalIndexKeys is the sorted catalog-key set of automation-created
	// indexes after the drain phase — compared against the reference run.
	FinalIndexKeys []string
}

// FaultSuiteResult aggregates the sweep.
type FaultSuiteResult struct {
	// ReferenceKeys is the automation index set a fault-free run converges
	// to; every rate's FinalIndexKeys must match it byte for byte.
	ReferenceKeys []string
	PerRate       []FaultRateResult
}

// faultSpec arms every continuous-tuning failpoint at rate p. Error
// actions hit each fallible phase; the shadow clone additionally panics at
// p/10 (validation must degrade, not die); replay and pool tasks jitter
// with short delays to shake out timing assumptions.
func faultSpec(p float64) string {
	entries := []string{
		fmt.Sprintf("storage.clone=err(%g)", p),
		fmt.Sprintf("shadow.clone=err(%g)|panic(%g)", p, p/10),
		fmt.Sprintf("replay.query=err(%g)|delay(200us,%g)", p, p),
		fmt.Sprintf("engine.create_index=err(%g)", p),
		fmt.Sprintf("engine.drop_index=err(%g)", p),
		fmt.Sprintf("regression.observe=err(%g)", p),
		fmt.Sprintf("costcache.lookup=err(%g)", p),
		fmt.Sprintf("pool.task=delay(50us,%g)", p),
	}
	return strings.Join(entries, ";")
}

// newTuningLoop builds the fixture: one table, a read workload whose hot
// filter column is unindexed, so the fault-free advisor converges on a
// stable one-index recommendation set. The loop runs with the default
// policy (no cooldown, no unused-drop retirement, no maintenance guard),
// which is the original fault-suite behavior.
func newTuningLoop(opts FaultSuiteOptions) *Loop {
	db := engine.New("faults")
	if opts.Obs != nil {
		db.SetObs(opts.Obs)
	}
	db.MustExec(`CREATE TABLE events (id INT, user_id INT, kind INT, score INT, PRIMARY KEY (id))`)
	r := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO events VALUES (%d, %d, %d, %d)",
			i, r.Intn(150), r.Intn(8), r.Intn(1000)))
	}
	db.Analyze()
	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	return &Loop{
		DB:       db,
		Adv:      core.NewAdvisor(db, cfg),
		Detector: regression.NewDetector(0.5),
		Sample: func(_ int, r *rand.Rand) string {
			if r.Intn(4) == 0 {
				return fmt.Sprintf("SELECT id FROM events WHERE kind = %d AND score > %d", r.Intn(8), r.Intn(900))
			}
			return fmt.Sprintf("SELECT score FROM events WHERE user_id = %d", r.Intn(150))
		},
		R:    r,
		Gate: shadow.DefaultGate(),
	}
}

// automationIndexKeys returns the sorted catalog keys of non-DBA,
// non-hypothetical indexes — the set the loop has adopted.
func automationIndexKeys(db *engine.DB) []string {
	var keys []string
	for _, ix := range db.Schema.Indexes() {
		if ix.Hypothetical || ix.CreatedBy == "dba" {
			continue
		}
		keys = append(keys, ix.Key())
	}
	sort.Strings(keys)
	return keys
}

// checkLoopInvariants cross-checks catalog against store and validates
// every index tree: a partially built or half-dropped index must never be
// visible, no matter which phase a fault interrupted. Tree.Validate also
// enforces the copy-on-write epoch invariants (node epoch <= parent epoch <=
// handle epoch <= family clock), so every per-cycle audit here doubles as a
// cross-snapshot mutation check on the stores the shadow clones came from.
func checkLoopInvariants(db *engine.DB) error {
	for _, ix := range db.Schema.Indexes() {
		if ix.Hypothetical {
			return fmt.Errorf("hypothetical index %q leaked into the schema", ix.Name)
		}
		tbl := db.Store.Table(ix.Table)
		if tbl == nil {
			return fmt.Errorf("index %q references missing table %q", ix.Name, ix.Table)
		}
		mat := tbl.Index(ix.Name)
		if mat == nil {
			return fmt.Errorf("index %q registered but not materialized", ix.Name)
		}
		if err := mat.Tree().Validate(); err != nil {
			return fmt.Errorf("index %q tree invalid: %v", ix.Name, err)
		}
		if got, want := mat.Len(), tbl.RowCount(); got != want {
			return fmt.Errorf("index %q has %d entries for %d rows (partial build leaked)", ix.Name, got, want)
		}
	}
	// No orphans: every materialized index must be in the catalog.
	for _, t := range db.Schema.Tables() {
		tbl := db.Store.Table(t.Name)
		if tbl == nil {
			continue
		}
		for name := range tbl.Indexes() {
			if db.Schema.Index(name) == nil {
				return fmt.Errorf("materialized index %q missing from catalog (partial drop leaked)", name)
			}
		}
		if err := tbl.Data().Validate(); err != nil {
			return fmt.Errorf("table %q clustered tree invalid: %v", t.Name, err)
		}
	}
	return nil
}

// RunFaultSuite executes the sweep: a fault-free reference run first, then
// one armed run per rate. It returns an error on the first violated
// invariant — a non-gated adoption, a leaked partial build, or a final
// index set that differs from the reference after the faults stop.
func RunFaultSuite(opts FaultSuiteOptions) (*FaultSuiteResult, error) {
	if opts.Cycles <= 0 || opts.DrainCycles <= 0 || opts.Rows <= 0 || opts.WindowStatements <= 0 {
		return nil, fmt.Errorf("faults: all sizes must be positive: %+v", opts)
	}
	// Reference: the recommendation set a fault-free loop converges to.
	ref := newTuningLoop(opts)
	for i := 0; i < opts.DrainCycles; i++ {
		if _, err := ref.RunCycle(opts.WindowStatements); err != nil {
			return nil, fmt.Errorf("reference cycle %d: %v", i, err)
		}
	}
	out := &FaultSuiteResult{ReferenceKeys: automationIndexKeys(ref.DB)}
	if len(out.ReferenceKeys) == 0 {
		return nil, fmt.Errorf("faults: reference run adopted no indexes; fixture is not exercising the loop")
	}

	for _, rate := range opts.Rates {
		fp, err := failpoint.Parse(faultSpec(rate), opts.Seed)
		if err != nil {
			return nil, err
		}
		loop := newTuningLoop(opts)
		failpoint.Activate(fp)
		for i := 0; i < opts.Cycles; i++ {
			if _, err := loop.RunCycle(opts.WindowStatements); err != nil {
				failpoint.Activate(nil)
				return nil, fmt.Errorf("rate %g cycle %d: %v", rate, i, err)
			}
			if err := checkLoopInvariants(loop.DB); err != nil {
				failpoint.Activate(nil)
				return nil, fmt.Errorf("rate %g cycle %d: %v", rate, i, err)
			}
		}
		failpoint.Activate(nil)
		// Faults stop; the loop must converge to the reference set.
		for i := 0; i < opts.DrainCycles; i++ {
			if _, err := loop.RunCycle(opts.WindowStatements); err != nil {
				return nil, fmt.Errorf("rate %g drain cycle %d: %v", rate, i, err)
			}
			if err := checkLoopInvariants(loop.DB); err != nil {
				return nil, fmt.Errorf("rate %g drain cycle %d: %v", rate, i, err)
			}
		}
		out.PerRate = append(out.PerRate, FaultRateResult{
			Rate:                rate,
			Cycles:              opts.Cycles,
			FaultsInjected:      fp.InjectedTotal(),
			Adoptions:           loop.Adoptions,
			ApplyFailures:       loop.ApplyFailures,
			DegradedValidations: loop.DegradedValidations,
			Reverted:            loop.Reverted,
			FinalIndexKeys:      automationIndexKeys(loop.DB),
		})
	}
	return out, nil
}
