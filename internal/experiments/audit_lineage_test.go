package experiments

import (
	"regexp"
	"strings"
	"testing"

	"aim/internal/audit"
	"aim/internal/obs"
)

// runAuditedContinuous executes the seeded continuous-tuning study with a
// decision journal and span trace attached, returning the parsed journal,
// the span index and the raw journal bytes.
func runAuditedContinuous(t *testing.T) (*ContinuousResult, []*audit.Record, map[uint64]audit.SpanInfo, string) {
	t.Helper()
	var jb strings.Builder
	jrn := audit.New(&jb)
	var tb obs.TraceBuffer
	reg := obs.NewRegistry()
	reg.SetTraceWriter(&tb)
	opts := DefaultContinuousOptions()
	opts.Obs = reg
	opts.Audit = jrn
	res, err := RunContinuous(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ReadRecords(strings.NewReader(jb.String()))
	if err != nil {
		t.Fatal(err)
	}
	spans, err := audit.ParseTrace(strings.NewReader(tb.String()))
	if err != nil {
		t.Fatal(err)
	}
	return res, recs, spans, jb.String()
}

// TestContinuousAuditLineage is the acceptance check for the decision
// journal: over a seeded continuous-tuning run, the journal alone must
// reconstruct a complete candidate→rank→shadow→adopt chain for at least one
// adopted index AND one later-reverted index, with every span ID resolvable
// against the trace.
func TestContinuousAuditLineage(t *testing.T) {
	res, recs, spans, _ := runAuditedContinuous(t)
	if !res.ShadowAccepted || res.RevertedIndexes == 0 {
		t.Fatalf("run shape changed: accepted=%v reverted=%d", res.ShadowAccepted, res.RevertedIndexes)
	}

	adoptedComplete, revertedComplete := 0, 0
	for _, ref := range audit.References(recs) {
		l, err := audit.Explain(recs, ref)
		if err != nil {
			t.Fatal(err)
		}
		if l.Adopted() && l.Complete() {
			adoptedComplete++
			if l.Reverted() {
				revertedComplete++
			}
		}
	}
	if adoptedComplete < 1 || revertedComplete < 1 {
		t.Errorf("complete chains: adopted=%d reverted=%d, want >=1 each", adoptedComplete, revertedComplete)
	}

	// Every journal record must carry a span ID that resolves in the trace.
	for _, r := range recs {
		if r.SpanID == 0 {
			t.Errorf("record #%d (%s %s) has no span ID", r.Seq, r.Event, r.IndexKey)
			continue
		}
		if _, ok := spans[r.SpanID]; !ok {
			t.Errorf("record #%d span %d not in trace", r.Seq, r.SpanID)
		}
	}
}

// TestContinuousExplainGolden pins the rendered `aimctl explain` output for
// the reverted index across two identical seeded runs (the repo's golden
// idiom: run-vs-run comparison at full precision), and spot-checks the
// narrative content of one run.
func TestContinuousExplainGolden(t *testing.T) {
	render := func() (string, string) {
		_, recs, spans, journal := runAuditedContinuous(t)
		var reverted string
		for _, ref := range audit.References(recs) {
			l, err := audit.Explain(recs, ref)
			if err != nil {
				t.Fatal(err)
			}
			if l.Reverted() {
				var sb strings.Builder
				l.Render(&sb, spans)
				reverted = sb.String()
			}
		}
		if reverted == "" {
			t.Fatal("no reverted index in run")
		}
		return reverted, journal
	}

	out1, journal1 := render()
	out2, journal2 := render()
	if out1 != out2 {
		t.Errorf("explain output differs between identical runs:\n--- run1 ---\n%s--- run2 ---\n%s", out1, out2)
	}
	strip := regexp.MustCompile(`"ts_us":\d+,?`)
	if strip.ReplaceAllString(journal1, "") != strip.ReplaceAllString(journal2, "") {
		t.Error("journal bytes differ beyond timestamps between identical runs")
	}

	for _, want := range []string{
		"status: adopted, then regression-reverted",
		"candidate",
		"rank",
		"selected",
		"shadow       accepted [accepted]",
		"adopt        materialized as",
		"revert",
		"query_regressed",
		"[span ",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("explain output missing %q:\n%s", want, out1)
		}
	}
	// Span annotations must resolve to phase names, proving the join against
	// the trace worked (a bare "[span N]" means the ID was missing).
	for _, phase := range []string{"advisor/generate", "advisor/knapsack", "shadow/validate", "advisor/apply", "regression/revert"} {
		if !strings.Contains(out1, phase) {
			t.Errorf("explain output missing span phase %q:\n%s", phase, out1)
		}
	}
}
