package experiments

import (
	"fmt"
	"math/rand"

	"aim/internal/baselines"
	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/obs"
	"aim/internal/sim"
	"aim/internal/workload"
)

// Fig6Result is the join-parameter study (Fig. 6): AIM with increasing j
// versus a greedy incremental algorithm (GIA ≈ Extend) on a transactional
// workload full of composite-key joins.
type Fig6Result struct {
	AIM sim.Series // phases: unindexed, then j=1, j=2, j=3
	GIA sim.Series // phases: unindexed, then greedy configuration
	// Phase boundaries (tick indexes) on the AIM machine.
	JStartTicks map[int]int
	// Summary statistics mirroring the paper's reported numbers.
	AIMFinalThroughput float64
	GIAFinalThroughput float64
	AIMFinalCPU        float64
	GIAFinalCPU        float64
	J1Throughput       float64
	J2Throughput       float64
	J3Throughput       float64
}

// ThroughputGainOverGIA returns AIM's relative throughput advantage (the
// paper reports ≈ 27%).
func (r *Fig6Result) ThroughputGainOverGIA() float64 {
	if r.GIAFinalThroughput == 0 {
		return 0
	}
	return (r.AIMFinalThroughput - r.GIAFinalThroughput) / r.GIAFinalThroughput
}

// CPUReductionOverGIA returns AIM's relative CPU saving (paper: ≈ 4.8%).
func (r *Fig6Result) CPUReductionOverGIA() float64 {
	if r.GIAFinalCPU == 0 {
		return 0
	}
	return (r.GIAFinalCPU - r.AIMFinalCPU) / r.GIAFinalCPU
}

// J2GainOverJ1 returns the throughput gain from j=1 to j=2 (paper: ≈ 16%).
func (r *Fig6Result) J2GainOverJ1() float64 {
	if r.J1Throughput == 0 {
		return 0
	}
	return (r.J2Throughput - r.J1Throughput) / r.J1Throughput
}

// J3GainOverJ2 returns the (insignificant, per the paper) j=2→3 gain.
func (r *Fig6Result) J3GainOverJ2() float64 {
	if r.J2Throughput == 0 {
		return 0
	}
	return (r.J3Throughput - r.J2Throughput) / r.J2Throughput
}

// Fig6Options parameterizes the study.
type Fig6Options struct {
	Rows           int
	QueriesPerTick int
	Capacity       float64
	PhaseTicks     int // ticks per phase (unindexed, j=1, j=2, j=3)
	Seed           int64
	// Obs, when non-nil, instruments both machines' databases.
	Obs *obs.Registry
}

// DefaultFig6Options keeps the study laptop-sized.
func DefaultFig6Options() Fig6Options {
	return Fig6Options{Rows: 2000, QueriesPerTick: 20, Capacity: 1.3, PhaseTicks: 6, Seed: 13}
}

// buildJoinHeavyDB creates the transactional schema of the study. Three
// query families exercise the join parameter:
//
//   - a pairwise composite join with three sub-predicates (k1,k2,k3), each
//     individually unselective — the case where greedy one-column-at-a-time
//     exploration stalls (§VI-C);
//   - a hub joined to two spokes on single columns (k1 with spoke_a, m1
//     with spoke_b): only a coordinated (k1,m1) hub index helps, which
//     requires join powerset exploration with j >= 2;
//   - a three-spoke variant (k1,m1,p1) in j = 3 territory.
//
// A selective point-lookup family (u1) gives the greedy baseline a first
// profitable single-column step, so it partially recovers — as in Fig. 6.
func buildJoinHeavyDB(rows int, seed int64) (*engine.DB, sim.Sampler, error) {
	db := engine.New("joinheavy")
	ddl := []string{
		`CREATE TABLE hub (id INT, k1 INT, k2 INT, k3 INT, m1 INT, p1 INT, u1 INT, val INT, PRIMARY KEY (id))`,
		`CREATE TABLE spoke_a (id INT, k1 INT, k2 INT, k3 INT, region INT, PRIMARY KEY (id))`,
		`CREATE TABLE spoke_b (id INT, m1 INT, carrier INT, PRIMARY KEY (id))`,
		`CREATE TABLE spoke_c (id INT, p1 INT, tier INT, PRIMARY KEY (id))`,
	}
	for _, d := range ddl {
		if _, err := db.Exec(d); err != nil {
			return nil, nil, err
		}
	}
	r := rand.New(rand.NewSource(seed))
	// Composite keys: each column has only `card` distinct values, so a
	// single-column index is weak but the pair/triple is nearly unique.
	card := 14
	for i := 0; i < rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO hub VALUES (%d, %d, %d, %d, %d, %d, %d, %d)",
			i, r.Intn(card), r.Intn(card), r.Intn(card), r.Intn(card), r.Intn(card), r.Intn(rows/2), r.Intn(1000)))
	}
	for i := 0; i < rows/4; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO spoke_a VALUES (%d, %d, %d, %d, %d)",
			i, r.Intn(card), r.Intn(card), r.Intn(card), r.Intn(20)))
		db.MustExec(fmt.Sprintf("INSERT INTO spoke_b VALUES (%d, %d, %d)",
			i, r.Intn(card), r.Intn(15)))
		db.MustExec(fmt.Sprintf("INSERT INTO spoke_c VALUES (%d, %d, %d)",
			i, r.Intn(card), r.Intn(12)))
	}
	db.Analyze()
	sampler := func(r *rand.Rand) string {
		switch r.Intn(10) {
		case 0, 1: // pairwise composite join (3 sub-predicates).
			return fmt.Sprintf(`SELECT SUM(h.val) FROM spoke_a a JOIN hub h
				ON h.k1 = a.k1 AND h.k2 = a.k2 AND h.k3 = a.k3
				WHERE a.region = %d`, r.Intn(20))
		case 2, 3, 4: // hub joins two spokes on single columns (j >= 2).
			return fmt.Sprintf(`SELECT COUNT(*) FROM spoke_a a JOIN hub h ON h.k1 = a.k1
				JOIN spoke_b b ON b.m1 = h.m1
				WHERE a.region = %d AND b.carrier = %d`, r.Intn(20), r.Intn(15))
		case 5: // three spokes (j = 3 territory).
			return fmt.Sprintf(`SELECT COUNT(*) FROM spoke_a a JOIN hub h ON h.k1 = a.k1
				JOIN spoke_b b ON b.m1 = h.m1
				JOIN spoke_c c ON c.p1 = h.p1
				WHERE a.region = %d AND a.k2 = %d AND b.carrier = %d AND c.tier = %d`,
				r.Intn(20), r.Intn(14), r.Intn(15), r.Intn(12))
		case 6: // point write.
			return fmt.Sprintf("UPDATE hub SET val = %d WHERE id = %d", r.Intn(1000), r.Intn(rows))
		default: // selective point lookup: greedy's profitable first step.
			return fmt.Sprintf("SELECT val, k1 FROM hub WHERE u1 = %d", r.Intn(rows/2))
		}
	}
	return db, sampler, nil
}

// RunFig6 executes the join-parameter study.
func RunFig6(opts Fig6Options) (*Fig6Result, error) {
	aimDB, aimSampler, err := buildJoinHeavyDB(opts.Rows, opts.Seed)
	if err != nil {
		return nil, err
	}
	giaDB, giaSampler, err := buildJoinHeavyDB(opts.Rows, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.Obs != nil {
		aimDB.SetObs(opts.Obs)
		giaDB.SetObs(opts.Obs)
	}
	aimM := sim.NewMachine(aimDB, aimSampler, opts.QueriesPerTick, opts.Capacity, opts.Seed)
	giaM := sim.NewMachine(giaDB, giaSampler, opts.QueriesPerTick, opts.Capacity, opts.Seed)

	res := &Fig6Result{JStartTicks: map[int]int{}}
	res.AIM.Label = "AIM"
	res.GIA.Label = "GIA"
	tick := 0
	run := func(n int) {
		for i := 0; i < n; i++ {
			res.AIM.Ticks = append(res.AIM.Ticks, aimM.RunTick(tick))
			res.GIA.Ticks = append(res.GIA.Ticks, giaM.RunTick(tick))
			tick++
		}
	}

	// Phase 0: both unindexed, observing.
	run(opts.PhaseTicks)

	// GIA machine: greedy incremental configuration, applied once.
	giaQueries := giaM.Monitor.Representative(repAll())
	giaRec, err := (&baselines.Extend{MaxWidth: 4}).Recommend(giaDB, giaQueries, 0)
	if err != nil {
		return nil, err
	}
	for _, ix := range giaRec.Indexes {
		if _, err := giaM.BuildIndex(ix); err != nil {
			return nil, err
		}
	}

	// AIM machine: increasing join parameter, incremental per phase.
	built := map[string]bool{}
	for _, j := range []int{1, 2, 3} {
		res.JStartTicks[j] = tick
		cfg := core.DefaultConfig()
		cfg.J = j
		cfg.Selection.MinExecutions = 1
		cfg.Selection.TopK = 0
		adv := core.NewAdvisor(aimDB, cfg)
		rec, err := adv.Recommend(aimM.Monitor)
		if err != nil {
			return nil, err
		}
		for _, ix := range rec.Create {
			if built[ix.Key()] {
				continue
			}
			built[ix.Key()] = true
			if _, err := aimM.BuildIndex(ix); err != nil {
				return nil, err
			}
		}
		run(opts.PhaseTicks)
		tp := res.AIM.AvgThroughput(opts.PhaseTicks - 1)
		switch j {
		case 1:
			res.J1Throughput = tp
		case 2:
			res.J2Throughput = tp
		case 3:
			res.J3Throughput = tp
		}
	}

	last := opts.PhaseTicks
	res.AIMFinalThroughput = res.AIM.AvgThroughput(last)
	res.GIAFinalThroughput = res.GIA.AvgThroughput(last)
	res.AIMFinalCPU = res.AIM.AvgCPU(last)
	res.GIAFinalCPU = res.GIA.AvgCPU(last)
	return res, nil
}

func repAll() workload.SelectionConfig {
	return workload.SelectionConfig{MinExecutions: 1, IncludeDML: true}
}
