package experiments

import (
	"fmt"
	"math/rand"

	"aim/internal/core"
	"aim/internal/engine"
	"aim/internal/obs"
	"aim/internal/regression"
	"aim/internal/shadow"
	"aim/internal/workload"
)

// ContinuousResult summarizes the §VI-D continuous-tuning study: AIM runs
// periodically; when the workload shifts (a "code push" introduces new
// unindexed queries), the next run detects and fixes them, gated by the
// shadow validation; a regression detector watches the windows.
type ContinuousResult struct {
	// Phase1CPU / Phase2CPU / Phase3CPU are average per-window CPU seconds:
	// steady state, after the workload shift, and after re-tuning.
	Phase1CPU float64
	Phase2CPU float64
	Phase3CPU float64
	// ImprovedQueries counts queries whose cpu_avg improved after
	// re-tuning, and OrderOfMagnitude those improved by ≥10×.
	ImprovedQueries    int
	OrderOfMagnitude   int
	NewIndexes         int
	ShadowAccepted     bool
	RegressionsFlagged int
	// CPUSavingFraction is (phase2 - phase3) / phase2 — the paper reports
	// ~2% at fleet level; a single shifted database shows much more.
	CPUSavingFraction float64
}

// ContinuousOptions parameterizes the study.
type ContinuousOptions struct {
	Rows             int
	WindowStatements int
	Seed             int64
	// Obs, when non-nil, instruments the database (shadow-gate verdicts,
	// regression-window counters, advisor spans all land in this registry).
	Obs *obs.Registry
}

// DefaultContinuousOptions keeps the study small.
func DefaultContinuousOptions() ContinuousOptions {
	return ContinuousOptions{Rows: 4000, WindowStatements: 250, Seed: 23}
}

// RunContinuous executes the workload-shift scenario.
func RunContinuous(opts ContinuousOptions) (*ContinuousResult, error) {
	db := engine.New("continuous")
	if opts.Obs != nil {
		db.SetObs(opts.Obs)
	}
	db.MustExec(`CREATE TABLE events (id INT, user_id INT, kind INT, day INT, score INT, payload VARCHAR(8), PRIMARY KEY (id))`)
	r := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Rows; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO events VALUES (%d, %d, %d, %d, %d, 'p%d')",
			i, r.Intn(300), r.Intn(10), r.Intn(365), r.Intn(1000), r.Intn(6)))
	}
	db.Analyze()

	oldQueries := func(r *rand.Rand) string {
		return fmt.Sprintf("SELECT score FROM events WHERE user_id = %d AND kind = %d", r.Intn(300), r.Intn(10))
	}
	// The "code push": new dashboard queries on (day, score) with ordering.
	newQueries := func(r *rand.Rand) string {
		if r.Intn(2) == 0 {
			return fmt.Sprintf("SELECT id, score FROM events WHERE day = %d AND score > %d", r.Intn(365), r.Intn(800))
		}
		return fmt.Sprintf("SELECT id FROM events WHERE day BETWEEN %d AND %d ORDER BY day LIMIT 20", r.Intn(300), 320)
	}

	window := func(sample func(*rand.Rand) string) (*workload.Monitor, float64) {
		mon := workload.NewMonitor()
		cpu := 0.0
		for i := 0; i < opts.WindowStatements; i++ {
			sql := sample(r)
			res, err := db.Exec(sql)
			if err != nil {
				continue
			}
			mon.Record(sql, res.Stats)
			cpu += res.Stats.CPUSeconds()
		}
		return mon, cpu
	}

	cfg := core.DefaultConfig()
	cfg.Selection.MinExecutions = 1
	adv := core.NewAdvisor(db, cfg)
	detector := regression.NewDetector(0.5)
	out := &ContinuousResult{}

	// Phase 1: steady state — tune the original workload to convergence.
	mon1, _ := window(oldQueries)
	if rec, err := adv.Recommend(mon1); err == nil && len(rec.Create) > 0 {
		if _, err := adv.Apply(rec); err != nil {
			return nil, err
		}
	}
	mon1b, cpu1 := window(oldQueries)
	detector.Observe(db, mon1b)
	out.Phase1CPU = cpu1

	// Phase 2: workload shift (50/50 old and new queries), untuned.
	mixed := func(r *rand.Rand) string {
		if r.Intn(2) == 0 {
			return oldQueries(r)
		}
		return newQueries(r)
	}
	mon2, cpu2 := window(mixed)
	out.Phase2CPU = cpu2
	out.RegressionsFlagged = len(detector.Observe(db, mon2))

	// Periodic AIM run detects the new inefficient queries; the shadow gate
	// validates before production applies. Validation failures degrade to
	// "no change" — the loop ticks on untuned rather than aborting, exactly
	// as the production deployment would ride out a MyShadow outage.
	rec, err := adv.Recommend(mon2)
	if err != nil {
		return nil, err
	}
	out.NewIndexes = len(rec.Create)
	report, err := shadow.Validate(db, rec.Create, mon2, shadow.DefaultGate())
	if err != nil {
		report = &shadow.Report{Degraded: true, Reason: err.Error()}
	}
	out.ShadowAccepted = report.Accepted
	if report.Accepted {
		if _, err := adv.Apply(rec); err != nil {
			return nil, err
		}
	}

	// Phase 3: same mixed workload after re-tuning.
	mon3, cpu3 := window(mixed)
	out.Phase3CPU = cpu3
	if cpu2 > 0 {
		out.CPUSavingFraction = (cpu2 - cpu3) / cpu2
	}

	// Per-query improvement accounting (≥10× = "order of magnitude").
	for _, q2 := range mon2.Queries() {
		q3 := mon3.Get(q2.Normalized)
		if q3 == nil || q2.CPUAvg() == 0 {
			continue
		}
		if q3.CPUAvg() < q2.CPUAvg()*0.95 {
			out.ImprovedQueries++
			if q3.CPUAvg() <= q2.CPUAvg()/10 {
				out.OrderOfMagnitude++
			}
		}
	}
	return out, nil
}
